package crowdsky

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRunAllParallelisms(t *testing.T) {
	d := Toy()
	want := Oracle(d)
	for _, p := range []Parallelism{Serial, ByDominatingSets, BySkylineLayers} {
		res, err := Run(d, NewPerfectCrowd(d), RunConfig{Parallelism: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(res.Skyline) != len(want) {
			t.Errorf("%v: skyline size %d, want %d", p, len(res.Skyline), len(want))
		}
		prec, rec := PrecisionRecall(res.Skyline, want, KnownSkyline(d))
		if prec != 1 || rec != 1 {
			t.Errorf("%v: accuracy %.2f/%.2f under a perfect crowd", p, prec, rec)
		}
	}
}

func TestRunValidation(t *testing.T) {
	d := Toy()
	if _, err := Run(nil, NewPerfectCrowd(d), RunConfig{}); err == nil {
		t.Errorf("nil dataset accepted")
	}
	if _, err := Run(d, nil, RunConfig{}); err == nil {
		t.Errorf("nil platform accepted")
	}
	if _, err := Run(d, NewPerfectCrowd(d), RunConfig{Parallelism: Parallelism(99)}); err == nil {
		t.Errorf("bad parallelism accepted")
	}
	if _, err := RunBaseline(nil, nil, nil); err == nil {
		t.Errorf("baseline nil args accepted")
	}
}

func TestZeroPruningDefaultsToFull(t *testing.T) {
	d := Toy()
	res, err := Run(d, NewPerfectCrowd(d), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Full pruning on the toy dataset asks exactly 12 questions
	// (Example 6); the default config must enable it.
	if res.Questions != 12 {
		t.Errorf("default pruning asked %d questions, want 12", res.Questions)
	}
	// Ablation escape hatch: explicit no-pruning asks more.
	res, err = Run(d, NewPerfectCrowd(d), RunConfig{DisableDefaultPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions <= 12 {
		t.Errorf("unpruned run asked %d questions, want more than 12", res.Questions)
	}
}

func TestRunBaselineCostsMore(t *testing.T) {
	d := Movies()
	base, err := RunBaseline(d, NewPerfectCrowd(d), StaticVoting(5))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Run(d, NewPerfectCrowd(d), RunConfig{Voting: StaticVoting(5)})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Cost >= base.Cost {
		t.Errorf("CrowdSky cost $%.2f >= baseline $%.2f", cs.Cost, base.Cost)
	}
}

func TestSimulatedCrowdDeterminism(t *testing.T) {
	d := Movies()
	run := func() *Result {
		pf := NewSimulatedCrowd(d, CrowdConfig{Reliability: 0.8, Seed: 42})
		res, err := Run(d, pf, RunConfig{Voting: StaticVoting(5)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Questions != b.Questions || len(a.Skyline) != len(b.Skyline) {
		t.Errorf("same seed produced different runs: %+v vs %+v", a, b)
	}
	for i := range a.Skyline {
		if a.Skyline[i] != b.Skyline[i] {
			t.Errorf("skylines differ at %d", i)
		}
	}
}

func TestNewDatasetAndGenerate(t *testing.T) {
	d, err := NewDataset([][]float64{{1, 2}}, [][]float64{{3}})
	if err != nil || d.N() != 1 {
		t.Fatalf("NewDataset: %v", err)
	}
	g, err := Generate(GenerateConfig{N: 10, KnownDims: 2, CrowdDims: 1, Distribution: AntiCorrelated},
		rand.New(rand.NewSource(1)))
	if err != nil || g.N() != 10 {
		t.Fatalf("Generate: %v", err)
	}
}

func TestReadCSVThroughPublicAPI(t *testing.T) {
	csv := "name,x,y,z\na,1,2,3\nb,2,1,4\n"
	d, err := ReadCSV(strings.NewReader(csv), CSVOptions{
		NameColumn:   "name",
		KnownColumns: []string{"x", "y"},
		CrowdColumns: []string{"z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, NewPerfectCrowd(d), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 2 {
		t.Errorf("skyline = %v, want both tuples (incomparable)", res.Skyline)
	}
}

func TestInteractiveCrowdThroughPublicAPI(t *testing.T) {
	d, err := NewDataset([][]float64{{1}, {2}}, [][]float64{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	// Tuple 0 dominates tuple 1 in AK; one question decides A's fate...
	// actually DS(1) = {0}, so the single question is (0, 1). Answer "1":
	// tuple 0 preferred, killing tuple 1.
	pf := NewInteractiveCrowd(d, strings.NewReader("1\n"), &out)
	res, err := Run(d, pf, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 1 || res.Skyline[0] != 0 {
		t.Errorf("skyline = %v, want [0]", res.Skyline)
	}
	if !strings.Contains(out.String(), "preferred") {
		t.Errorf("prompt missing: %q", out.String())
	}
}

func TestDynamicVotingPolicy(t *testing.T) {
	d := Toy()
	p := DynamicVoting(d, 5)
	pp, ok := p.(interface {
		WorkersAt(progress float64, freq int) int
	})
	if !ok {
		t.Fatalf("dynamic policy is not progress-aware")
	}
	if pp.WorkersAt(0.1, 0) <= pp.WorkersAt(0.9, 0) {
		t.Errorf("dynamic policy does not favor early questions")
	}
	// SmartVoting boosts high-importance questions relative to the toy
	// dataset's frequency distribution.
	sp := SmartVoting(d, 5)
	if sp.Workers(1000) <= sp.Workers(0) {
		t.Errorf("smart policy does not favor important questions")
	}
}

func TestParallelismString(t *testing.T) {
	if Serial.String() != "serial" || ByDominatingSets.String() != "parallel-dset" ||
		BySkylineLayers.String() != "parallel-sl" {
		t.Errorf("parallelism names wrong")
	}
	if !strings.Contains(Parallelism(9).String(), "9") {
		t.Errorf("unknown parallelism name")
	}
}

func TestPublicBudgetAndRoundRobin(t *testing.T) {
	d := Movies()
	res, err := Run(d, NewPerfectCrowd(d), RunConfig{Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions > 5 || !res.Truncated {
		t.Errorf("budgeted run: questions=%d truncated=%v", res.Questions, res.Truncated)
	}
	// Round-robin on a single crowd attribute is a no-op.
	plain, err := Run(d, NewPerfectCrowd(d), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(d, NewPerfectCrowd(d), RunConfig{RoundRobinAC: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Questions != rr.Questions {
		t.Errorf("round-robin changed single-attribute run: %d vs %d", plain.Questions, rr.Questions)
	}
}

module crowdsky

go 1.22

// Command skylint is the repository's static-analysis gate: it runs the
// five CrowdSky-specific analyzers of internal/lint (guardedby, detrange,
// niltrace, floateq, errdrop) and, by default, `go vet`, over the given
// package patterns. A non-empty finding set exits 1, so CI can require it:
//
//	go run ./cmd/skylint ./...
//
// Flags:
//
//	-novet      skip the go vet pass (the analyzers still run)
//	-list       print the analyzers and exit
//
// Findings are file:line:col-prefixed, one per line. See
// docs/STATIC_ANALYSIS.md for what each analyzer enforces and how to
// suppress a finding with a `skylint:ignore` comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"crowdsky/internal/lint"
)

func main() {
	novet := flag.Bool("novet", false, "skip the go vet pass")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(os.Stderr, "skylint: running go vet: %v\n", err)
			}
			failed = true
		}
	}

	findings, err := lint.Run(".", patterns, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "skylint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 || failed {
		os.Exit(1)
	}
}

// Command skylint is the repository's static-analysis gate: it runs the
// fourteen CrowdSky-specific analyzers of internal/lint — the AST
// contract checks (detrange, floateq, errdrop), the flow-sensitive
// concurrency/trace checks (lockorder, ctxleak, wgbalance, goroleak,
// traceschema), the interprocedural hot-path checks (hotalloc, recvcopy,
// purity) and the SSA value-flow checks (nilness, lockset, crowdtaint) —
// and, by default, `go vet`, over the given package patterns. The
// retired niltrace and guardedby analyzers live on as deprecated aliases
// of nilness and lockset (suppression comments and baselines written
// against the old names keep working). A non-empty finding set exits 1,
// so CI can require it:
//
//	go run ./cmd/skylint ./...
//
// Flags:
//
//	-novet           skip the go vet pass (the analyzers still run)
//	-list            print the analyzers and exit
//	-tests           also analyze in-package _test.go files
//	-json            print findings as a JSON array instead of text lines
//	-sarif FILE      additionally write a SARIF 2.1.0 report ("-" = stdout)
//	-baseline FILE   suppress findings matched by the baseline file; stale
//	                 entries fail the run (defaults to .skylint-baseline.json
//	                 when that file exists)
//	-callgraph       dump the interprocedural call graph (one line per
//	                 function, "[hot:scope]"-tagged, edges indented) and
//	                 exit without running analyzers
//
// Text findings are file:line:col-prefixed, one per line, sorted by
// (file, line, col, analyzer) so CI output is stable and diffable. See
// docs/STATIC_ANALYSIS.md for what each analyzer enforces, the
// `skylint:ignore` suppression comment, and the baseline format.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"crowdsky/internal/lint"
	"crowdsky/internal/lint/loader"
)

const defaultBaseline = ".skylint-baseline.json"

func main() {
	novet := flag.Bool("novet", false, "skip the go vet pass")
	list := flag.Bool("list", false, "list the analyzers and exit")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	jsonOut := flag.Bool("json", false, "print findings as JSON")
	sarifPath := flag.String("sarif", "", "write a SARIF 2.1.0 report to this file (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "baseline file of grandfathered findings (default "+defaultBaseline+" if present)")
	dumpGraph := flag.Bool("callgraph", false, "dump the interprocedural call graph and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			for _, alias := range a.Aliases {
				fmt.Printf("%-12s deprecated alias of %s; update suppressions and baselines\n", alias, a.Name)
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *dumpGraph {
		dump, err := lint.DumpCallGraph(".", patterns, loader.Options{Tests: *tests})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylint: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(dump)
		return
	}

	failed := false
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(os.Stderr, "skylint: running go vet: %v\n", err)
			}
			failed = true
		}
	}

	findings, err := lint.Run(".", patterns, lint.All(), loader.Options{Tests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skylint: %v\n", err)
		os.Exit(2)
	}

	// Baseline: explicit flag, or the default file when it exists.
	bl := *baselinePath
	if bl == "" {
		if _, statErr := os.Stat(defaultBaseline); statErr == nil {
			bl = defaultBaseline
		}
	}
	if bl != "" {
		entries, err := lint.LoadBaseline(bl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylint: %v\n", err)
			os.Exit(2)
		}
		var stale []lint.BaselineEntry
		findings, stale = lint.ApplyBaseline(findings, entries)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "skylint: stale baseline entry in %s: %s %q in %s no longer fires — remove it\n",
				bl, e.Analyzer, e.Message, e.File)
			failed = true
		}
	}

	if *sarifPath != "" {
		doc, err := lint.ToSARIF(findings, lint.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylint: encoding SARIF: %v\n", err)
			os.Exit(2)
		}
		if *sarifPath == "-" {
			fmt.Println(string(doc))
		} else if err := os.WriteFile(*sarifPath, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "skylint: writing SARIF: %v\n", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		doc, err := lint.ToJSON(findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylint: encoding JSON: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(doc))
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 || failed {
		os.Exit(1)
	}
}

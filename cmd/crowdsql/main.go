// Command crowdsql executes the paper's SKYLINE OF query dialect
// (Example 1) over CSV tables.
//
// Tables live in a directory as <name>.csv files; a query names the table
// in FROM. Attributes in SKYLINE OF that are not stored columns are
// crowdsourced: with -interactive you answer the pair-wise questions, and
// otherwise a simulated crowd answers from the table's latent "_<attr>"
// column (which must exist).
//
// Examples:
//
//	crowdsql -dir ./tables "SELECT * FROM movie_db WHERE year >= 2010
//	    SKYLINE OF box_office MAX, romantic MAX"
//	crowdsql -dir ./tables -interactive "SELECT * FROM movie_db
//	    SKYLINE OF box_office MAX, romantic MAX"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crowdsky"
	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/query"
	"crowdsky/internal/voting"
)

func main() {
	var (
		dir         = flag.String("dir", ".", "directory holding <table>.csv files")
		interactive = flag.Bool("interactive", false, "answer crowd questions on the terminal")
		reliability = flag.Float64("reliability", 1.0, "simulated worker correctness probability")
		workers     = flag.Int("workers", 1, "workers per question (majority voting)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		schedule    = flag.String("schedule", "sl", "round scheduling: serial, dset or sl")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crowdsql [flags] \"SELECT * FROM ... SKYLINE OF ...\"")
		os.Exit(2)
	}

	opt := query.ExecOptions{}
	switch *schedule {
	case "serial":
		opt.Scheduling = query.ScheduleSerial
	case "dset":
		opt.Scheduling = query.ScheduleDominatingSets
	case "sl":
		opt.Scheduling = query.ScheduleSkylineLayers
	default:
		fmt.Fprintf(os.Stderr, "unknown -schedule %q\n", *schedule)
		os.Exit(2)
	}
	if *workers > 1 {
		opt.Options = core.AllPruning()
		opt.Options.Voting = voting.Static{Omega: *workers}
	}
	switch {
	case *interactive:
		opt.Platform = func(d *dataset.Dataset) crowd.Platform {
			return crowdsky.NewInteractiveCrowd(d, os.Stdin, os.Stderr)
		}
	case *reliability < 1:
		opt.Platform = func(d *dataset.Dataset) crowd.Platform {
			return crowdsky.NewSimulatedCrowd(d, crowdsky.CrowdConfig{
				Reliability: *reliability,
				Seed:        *seed,
			})
		}
	}

	res, err := query.Run(flag.Arg(0), query.DirCatalog{Dir: *dir}, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, ","))
	}
	fmt.Fprintf(os.Stderr, "-- %d rows; known attrs %v, crowd attrs %v; %d questions, %d rounds, $%.2f\n",
		len(res.Rows), res.KnownAttrs, res.CrowdAttrs, res.Questions, res.Rounds, res.Cost)
}

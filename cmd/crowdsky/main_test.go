package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadDatasetDemos(t *testing.T) {
	cases := map[string]int{"toy": 12, "rectangles": 50, "movies": 50, "mlb": 40}
	for demo, wantN := range cases {
		d, err := loadDataset(demo, "", "", "", "")
		if err != nil {
			t.Fatalf("%s: %v", demo, err)
		}
		if d.N() != wantN {
			t.Errorf("%s: n = %d, want %d", demo, d.N(), wantN)
		}
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	if _, err := loadDataset("bogus", "", "", "", ""); err == nil {
		t.Errorf("unknown demo accepted")
	}
	if _, err := loadDataset("", "", "", "", ""); err == nil {
		t.Errorf("missing csv accepted")
	}
	if _, err := loadDataset("", "some.csv", "", "", ""); err == nil {
		t.Errorf("missing -known accepted")
	}
	if _, err := loadDataset("", "/nonexistent/file.csv", "", "a", ""); err == nil {
		t.Errorf("unreadable csv accepted")
	}
}

func TestLoadDatasetFromCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	csv := "title,gross,year,rating\nAlpha,100,2001,7.5\nBeta,200,2003,8.1\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDataset("", path, "title", "-gross,-year", "-rating")
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || d.KnownDims() != 2 || d.CrowdDims() != 1 {
		t.Fatalf("shape wrong: %v", d)
	}
	if d.Name(0) != "Alpha" {
		t.Errorf("name = %q", d.Name(0))
	}
}

func TestDescribeTuple(t *testing.T) {
	d, err := loadDataset("toy", "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	got := describeTuple(d, d.Index("b"))
	if !strings.Contains(got, "b (") || !strings.Contains(got, "A1=1") {
		t.Errorf("describeTuple = %q", got)
	}
}

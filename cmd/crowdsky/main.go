// Command crowdsky runs a crowd-enabled skyline query over a CSV file.
//
// The crowd is either simulated from a latent column (for experiments) or
// the operator, answering the pair-wise questions interactively.
//
// Examples:
//
//	# Simulated crowd: the "rating" column holds the latent ground truth,
//	# larger box office / year / rating preferred.
//	crowdsky -csv movies.csv -name title -known -box_office,-year \
//	         -crowd -rating -reliability 0.8 -workers 5
//
//	# Interactive crowd: you answer every comparison on the terminal.
//	crowdsky -csv movies.csv -name title -known -box_office,-year \
//	         -crowd -rating -interactive
//
//	# Built-in demo datasets: -demo toy|rectangles|movies|mlb.
//	crowdsky -demo movies
//
// Column syntax: a leading "-" marks a larger-is-better column (values are
// flipped to the internal smaller-is-better convention).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"

	"crowdsky"
	"crowdsky/internal/crowdserve"
	"crowdsky/internal/journal"
)

func main() {
	var (
		csvPath     = flag.String("csv", "", "input CSV file")
		nameCol     = flag.String("name", "", "column holding tuple names")
		knownCols   = flag.String("known", "", "comma-separated known attribute columns (prefix - for larger-is-better)")
		crowdCols   = flag.String("crowd", "", "comma-separated crowd attribute columns (latent ground truth for simulation)")
		demo        = flag.String("demo", "", "built-in dataset: toy, rectangles, movies or mlb")
		interactive = flag.Bool("interactive", false, "ask the operator instead of simulating")
		reliability = flag.Float64("reliability", 0.9, "simulated worker correctness probability")
		workers     = flag.Int("workers", 5, "workers per question (majority voting)")
		dynamic     = flag.Bool("dynamic", false, "use dynamic (importance-weighted) voting")
		parallel    = flag.String("parallel", "sl", "round scheduling: serial, dset or sl")
		seed        = flag.Int64("seed", 1, "simulation seed")
		server      = flag.String("server", "", "crowdserve marketplace URL (e.g. http://localhost:8800); overrides -interactive/-reliability")
		journalPath = flag.String("journal", "", "JSONL journal file: answers are logged, and an existing journal resumes the run without re-asking")
		tracePath   = flag.String("trace", "", "write structured JSONL trace events (rounds, prunings, escalations) to this file")
		verbose     = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelDebug
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

	d, err := loadDataset(*demo, *csvPath, *nameCol, *knownCols, *crowdCols)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	slog.Debug("dataset loaded", "tuples", d.N(), "known", d.KnownDims(), "crowd", d.CrowdDims())

	var pf crowdsky.Platform
	switch {
	case *server != "":
		pf = crowdserve.NewClient(*server)
	case *interactive:
		pf = crowdsky.NewInteractiveCrowd(d, os.Stdin, os.Stderr)
	default:
		pf = crowdsky.NewSimulatedCrowd(d, crowdsky.CrowdConfig{
			Reliability: *reliability,
			Seed:        *seed,
		})
	}

	if *journalPath != "" {
		wrapped, cleanup, err := withJournal(*journalPath, pf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cleanup()
		pf = wrapped
	}

	// Ctrl-C cancels the run context so a marketplace-backed run stops
	// polling promptly instead of waiting out its poll interval.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := crowdsky.RunConfig{Context: ctx}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tracer := crowdsky.NewJSONLTracer(f)
		cfg.Tracer = tracer
		slog.Debug("tracing enabled", "file", *tracePath)
		defer func() {
			if err := crowdsky.TracerErr(tracer); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
		}()
	}
	switch *parallel {
	case "serial":
		cfg.Parallelism = crowdsky.Serial
	case "dset":
		cfg.Parallelism = crowdsky.ByDominatingSets
	case "sl":
		cfg.Parallelism = crowdsky.BySkylineLayers
	default:
		fmt.Fprintf(os.Stderr, "unknown -parallel %q (want serial, dset or sl)\n", *parallel)
		os.Exit(2)
	}
	if *workers > 1 {
		if *dynamic {
			cfg.Voting = crowdsky.DynamicVoting(d, *workers)
		} else {
			cfg.Voting = crowdsky.StaticVoting(*workers)
		}
	}

	res, err := crowdsky.Run(d, pf, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("crowdsourced skyline (%d of %d tuples):\n", len(res.Skyline), d.N())
	for _, t := range res.Skyline {
		fmt.Printf("  %s\n", describeTuple(d, t))
	}
	fmt.Printf("questions: %d   rounds: %d   worker answers: %d   cost: $%.2f\n",
		res.Questions, res.Rounds, res.WorkerAnswers, res.Cost)
	if res.Contradictions > 0 {
		fmt.Printf("contradictory crowd answers dropped: %d\n", res.Contradictions)
	}
}

// withJournal wraps the platform with journaling and resume: existing
// entries in path are replayed for free, new answers are appended. A
// journal torn by a crash is recovered to its intact prefix — the file is
// truncated at the corruption point before appending resumes, so the torn
// bytes can never concatenate with a fresh record.
func withJournal(path string, pf crowdsky.Platform) (crowdsky.Platform, func(), error) {
	var entries []journal.Entry
	if data, err := os.ReadFile(path); err == nil {
		var stats journal.RecoverStats
		entries, stats, err = journal.Recover(bytes.NewReader(data))
		if err != nil {
			return nil, nil, fmt.Errorf("reading journal %s: %w", path, err)
		}
		if stats.Dropped > 0 {
			fmt.Fprintf(os.Stderr,
				"WARNING: journal %s is torn: kept %d intact answers, dropped %d corrupt record(s); truncating to the intact prefix\n",
				path, len(entries), stats.Dropped)
			if err := os.Truncate(path, stats.IntactBytes); err != nil {
				return nil, nil, fmt.Errorf("truncating torn journal %s: %w", path, err)
			}
		}
		fmt.Fprintf(os.Stderr, "resuming from journal %s (%d answers)\n", path, len(entries))
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	jp, err := journal.NewPlatform(pf, entries, journal.NewWriter(f))
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return jp, func() { f.Close() }, nil
}

func loadDataset(demo, csvPath, nameCol, knownCols, crowdCols string) (*crowdsky.Dataset, error) {
	switch demo {
	case "toy":
		return crowdsky.Toy(), nil
	case "rectangles":
		return crowdsky.Rectangles(), nil
	case "movies":
		return crowdsky.Movies(), nil
	case "mlb":
		return crowdsky.MLBPitchers(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown -demo %q (want toy, rectangles, movies or mlb)", demo)
	}
	if csvPath == "" {
		return nil, fmt.Errorf("specify -csv <file> or -demo <name>")
	}
	if knownCols == "" {
		return nil, fmt.Errorf("-known is required with -csv")
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	split := func(s string) []string {
		if s == "" {
			return nil
		}
		parts := strings.Split(s, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	return crowdsky.ReadCSV(f, crowdsky.CSVOptions{
		NameColumn:   nameCol,
		KnownColumns: split(knownCols),
		CrowdColumns: split(crowdCols),
	})
}

func describeTuple(d *crowdsky.Dataset, t int) string {
	var b strings.Builder
	b.WriteString(d.Name(t))
	b.WriteString(" (")
	for j := 0; j < d.KnownDims(); j++ {
		if j > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%g", d.KnownAttrName(j), d.Known(t, j))
	}
	b.WriteString(")")
	return b.String()
}

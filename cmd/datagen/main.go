// Command datagen emits synthetic skyline benchmark datasets as CSV, in
// the format cmd/crowdsky consumes. The known attributes follow the chosen
// distribution; one latent column per crowd attribute carries the ground
// truth used by simulated crowds.
//
// Example:
//
//	datagen -n 4000 -known 4 -crowd 1 -dist ANT -seed 7 > ant4k.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"crowdsky/internal/dataset"
)

func main() {
	var (
		n     = flag.Int("n", 1000, "cardinality")
		known = flag.Int("known", 4, "number of known attributes |AK|")
		crowd = flag.Int("crowd", 1, "number of crowd attributes |AC|")
		dist  = flag.String("dist", "IND", "distribution: IND, ANT or COR")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	dd, err := dataset.ParseDistribution(*dist)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d, err := dataset.Generate(dataset.GenerateConfig{
		N: *n, KnownDims: *known, CrowdDims: *crowd, Distribution: dd,
	}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := dataset.WriteCSV(os.Stdout, d); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command crowdserved runs the HTTP crowdsourcing marketplace
// (internal/crowdserve): requesters post rounds of pair-wise questions,
// workers poll for assignments and submit judgments.
//
//	crowdserved -addr :8800
//
// For demos without humans, -simworkers N spawns N simulated workers that
// answer from a built-in dataset's ground truth:
//
//	crowdserved -addr :8800 -simworkers 5 -demo movies -reliability 0.9
//
// A crowd-enabled skyline query can then run against the marketplace:
//
//	crowdsky -demo movies -server http://localhost:8800
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdsky"
	"crowdsky/internal/crowd"
	"crowdsky/internal/crowdserve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8800", "listen address")
		simWorkers  = flag.Int("simworkers", 0, "number of simulated workers to run against this server")
		demo        = flag.String("demo", "movies", "dataset whose latent values simulated workers answer from: toy, rectangles, movies or mlb")
		reliability = flag.Float64("reliability", 0.9, "simulated worker correctness probability")
		lease       = flag.Duration("lease", crowdserve.DefaultLease, "assignment lease duration")
		seed        = flag.Int64("seed", 1, "simulated worker seed")
		state       = flag.String("state", "", "snapshot file: state is restored at startup and saved on SIGINT/SIGTERM and periodically")
	)
	flag.Parse()

	srv := crowdserve.NewServer()
	srv.SetLease(*lease)

	if *state != "" {
		if err := srv.LoadFile(*state); err != nil {
			fmt.Fprintf(os.Stderr, "loading state: %v\n", err)
			os.Exit(1)
		}
		// Periodic snapshots plus a final one on shutdown signals.
		go func() {
			for range time.Tick(10 * time.Second) {
				if err := srv.SaveFile(*state); err != nil {
					fmt.Fprintf(os.Stderr, "saving state: %v\n", err)
				}
			}
		}()
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigCh
			if err := srv.SaveFile(*state); err != nil {
				fmt.Fprintf(os.Stderr, "saving state: %v\n", err)
			}
			os.Exit(0)
		}()
	}

	if *simWorkers > 0 {
		var d *crowdsky.Dataset
		switch *demo {
		case "toy":
			d = crowdsky.Toy()
		case "rectangles":
			d = crowdsky.Rectangles()
		case "movies":
			d = crowdsky.Movies()
		case "mlb":
			d = crowdsky.MLBPitchers()
		default:
			fmt.Fprintf(os.Stderr, "unknown -demo %q\n", *demo)
			os.Exit(2)
		}
		baseURL := "http://localhost" + *addr
		if (*addr)[0] != ':' {
			baseURL = "http://" + *addr
		}
		go func() {
			// Give the listener a moment; workers retry anyway.
			time.Sleep(100 * time.Millisecond)
			crowdserve.SimulateWorkers(context.Background(), baseURL, crowdserve.WorkerConfig{
				Count:       *simWorkers,
				Truth:       crowd.DatasetTruth{Data: d},
				Reliability: *reliability,
				Seed:        *seed,
			})
		}()
		fmt.Fprintf(os.Stderr, "running %d simulated workers (reliability %.2f) against %s dataset\n",
			*simWorkers, *reliability, *demo)
	}

	fmt.Fprintf(os.Stderr, "crowdserved listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

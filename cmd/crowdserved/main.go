// Command crowdserved runs the HTTP crowdsourcing marketplace
// (internal/crowdserve): requesters post rounds of pair-wise questions,
// workers poll for assignments and submit judgments.
//
//	crowdserved -addr :8800
//
// For demos without humans, -simworkers N spawns N simulated workers that
// answer from a built-in dataset's ground truth:
//
//	crowdserved -addr :8800 -simworkers 5 -demo movies -reliability 0.9
//
// A crowd-enabled skyline query can then run against the marketplace:
//
//	crowdsky -demo movies -server http://localhost:8800
//
// Observability: GET /metrics serves Prometheus text (request counters,
// latency histograms, marketplace gauges) and /debug/pprof/ serves the Go
// profiler endpoints. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdsky"
	"crowdsky/internal/crowd"
	"crowdsky/internal/crowdserve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8800", "listen address")
		simWorkers  = flag.Int("simworkers", 0, "number of simulated workers to run against this server")
		demo        = flag.String("demo", "movies", "dataset whose latent values simulated workers answer from: toy, rectangles, movies or mlb")
		reliability = flag.Float64("reliability", 0.9, "simulated worker correctness probability")
		lease       = flag.Duration("lease", crowdserve.DefaultLease, "assignment lease duration")
		seed        = flag.Int64("seed", 1, "simulated worker seed")
		state       = flag.String("state", "", "snapshot file: state is restored at startup and saved on SIGINT/SIGTERM and periodically")
		tracePath   = flag.String("trace", "", "write server-side JSONL span events (lease waits, judgments, vote resolution) to this file")
		verbose     = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	// One context for the whole process: SIGINT/SIGTERM cancels it, and
	// everything — simulated workers, the snapshot loop, the HTTP server —
	// winds down from there so in-flight judgments finish and the final
	// snapshot sees them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := crowdserve.NewServer()
	srv.SetLease(*lease)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			logger.Error("creating trace file", "file", *tracePath, "err", err)
			os.Exit(1)
		}
		defer f.Close()
		tracer := crowdsky.NewJSONLTracer(f)
		srv.SetTracer(tracer)
		defer func() {
			if err := crowdsky.TracerErr(tracer); err != nil {
				logger.Error("trace writes failed", "file", *tracePath, "err", err)
			}
		}()
		logger.Info("server-side tracing enabled", "file", *tracePath)
	}

	if *state != "" {
		if err := srv.LoadFile(*state); err != nil {
			logger.Error("loading state", "file", *state, "err", err)
			os.Exit(1)
		}
		logger.Debug("state restored", "file", *state)
		// Periodic snapshots; the final authoritative one happens after
		// Shutdown below, once no handler can still mutate state.
		go func() {
			tick := time.NewTicker(10 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := srv.SaveFile(*state); err != nil {
						logger.Error("saving state", "file", *state, "err", err)
					}
				}
			}
		}()
	}

	if *simWorkers > 0 {
		var d *crowdsky.Dataset
		switch *demo {
		case "toy":
			d = crowdsky.Toy()
		case "rectangles":
			d = crowdsky.Rectangles()
		case "movies":
			d = crowdsky.Movies()
		case "mlb":
			d = crowdsky.MLBPitchers()
		default:
			logger.Error("unknown -demo", "demo", *demo)
			os.Exit(2)
		}
		baseURL := "http://localhost" + *addr
		if (*addr)[0] != ':' {
			baseURL = "http://" + *addr
		}
		go func() {
			// Give the listener a moment; workers retry anyway.
			time.Sleep(100 * time.Millisecond)
			crowdserve.SimulateWorkers(ctx, baseURL, crowdserve.WorkerConfig{
				Count:       *simWorkers,
				Truth:       crowd.DatasetTruth{Data: d},
				Reliability: *reliability,
				Seed:        *seed,
			})
		}()
		logger.Info("running simulated workers", "count", *simWorkers, "reliability", *reliability, "dataset", *demo)
	}

	// The marketplace handler (including GET /metrics) mounts at the root;
	// the Go profiler mounts under /debug/pprof/.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("crowdserved listening", "addr", *addr)

	select {
	case err := <-errCh:
		logger.Error("server exited", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight handlers (judgment
	// submissions, round posts) finish, then snapshot the settled state so
	// a restart resumes exactly where the workers left off.
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("graceful shutdown incomplete", "err", err)
	}
	if *state != "" {
		if err := srv.SaveFile(*state); err != nil {
			logger.Error("saving final state", "file", *state, "err", err)
			os.Exit(1)
		}
		logger.Info("final state saved", "file", *state)
	}
}

// Command experiments regenerates the tables and figures of the CrowdSky
// paper's evaluation (Section 6) as text output.
//
// Usage:
//
//	experiments -fig 6a                 # one experiment
//	experiments -all                    # everything
//	experiments -all -scale 1 -runs 10  # full paper scale, 10-run averages
//	experiments -list                   # show available experiment ids
//
// Scale multiplies the paper's cardinality grid (default 0.25 keeps a full
// -all regeneration to a couple of minutes on a laptop; 1.0 is paper
// scale). Runs is the number of averaged repetitions (the paper uses 10).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"crowdsky/internal/experiments"
	"crowdsky/internal/telemetry"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id to run (e.g. 6a, 12b, table1, q-accuracy)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list available experiment ids")
		scale   = flag.Float64("scale", 0.25, "cardinality scale factor (1.0 = paper scale)")
		runs    = flag.Int("runs", 3, "averaged repetitions per sweep point (paper: 10)")
		seed    = flag.Int64("seed", 1, "base random seed")
		verbose = flag.Bool("v", false, "print per-point progress")
		outDir  = flag.String("out", "", "also write each figure as CSV into this directory")
		trace   = flag.String("trace", "", "write one JSONL span per experiment to this file (inspect with skytrace)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelDebug
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

	cfg := experiments.Config{Runs: *runs, Seed: *seed, Scale: *scale}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	slog.Debug("experiment config", "runs", *runs, "scale", *scale, "seed", *seed)

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != "":
		for _, id := range strings.Split(*fig, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	default:
		fmt.Fprintln(os.Stderr, "specify -fig <id> or -all; -list shows the ids")
		os.Exit(2)
	}

	// With -trace, the whole invocation is a root span and every
	// experiment a child, so skytrace's waterfall shows which figures
	// dominate an -all regeneration.
	var tracer telemetry.Tracer
	ctx := context.Background()
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		jsonl := telemetry.NewJSONL(f)
		tracer = jsonl
		defer func() {
			if err := jsonl.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
		}()
		var root *telemetry.Span
		ctx, root = telemetry.StartSpan(ctx, tracer, "experiments")
		defer root.End()
	}

	for i, id := range ids {
		runner, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; -list shows the ids\n", id)
			os.Exit(2)
		}
		if i > 0 {
			fmt.Println()
		}
		_, span := telemetry.StartSpan(ctx, tracer, "experiment")
		span.SetAttr("id", id)
		if *outDir != "" {
			if builder, hasFig := experiments.FigureBuilders[id]; hasFig {
				err := exportCSV(cfg, *outDir, id, builder)
				span.End()
				if err != nil {
					fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
					os.Exit(1)
				}
				continue
			}
		}
		err := runner(cfg, os.Stdout)
		span.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// exportCSV builds the figure once, renders it to stdout and writes the
// CSV next to it.
func exportCSV(cfg experiments.Config, dir, id string, builder func(experiments.Config) (*experiments.Figure, error)) error {
	fig, err := builder(cfg)
	if err != nil {
		return err
	}
	if err := fig.Render(os.Stdout); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "fig"+id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return fig.WriteCSV(f)
}

package main

import (
	"strings"
	"testing"
	"time"

	"crowdsky/internal/telemetry"
)

// synthetic trace: a 100ms run containing one 80ms round; inside the
// round a 5ms submit and a 70ms wait; under the wait (via cross-process
// propagation) a lease_wait and a judgment.
func syntheticEvents(t *testing.T) []telemetry.Event {
	t.Helper()
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tid := strings.Repeat("ab", 16)
	sid := func(i byte) string { return strings.Repeat(string([]byte{'a' + i}), 16) }
	sc := func(i byte) telemetry.SpanContext { return telemetry.SpanContext{TraceID: tid, SpanID: sid(i)} }

	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	span := func(i byte, parent byte, name string, startMS, endMS int, attrs map[string]string) []telemetry.Event {
		pid := ""
		if parent != 0 {
			pid = sid(parent)
		}
		return []telemetry.Event{
			telemetry.SpanStart(sc(i), pid, name, at(startMS)),
			telemetry.SpanEnd(sc(i), name, attrs, at(endMS), time.Duration(endMS-startMS)*time.Millisecond),
		}
	}

	var evs []telemetry.Event
	evs = append(evs, telemetry.RunStart("crowdsky", 12, 1))
	evs[0].Time = at(0)
	evs = append(evs, span(1, 0, "run", 0, 100, map[string]string{"questions": "3", "rounds": "1"})...)
	evs = append(evs, span(2, 1, "qgen", 1, 3, nil)...)
	evs = append(evs, span(3, 1, "round", 5, 85, map[string]string{"round": "1"})...)
	evs = append(evs, span(4, 3, "round_submit", 5, 10, nil)...)
	evs = append(evs, span(5, 3, "round_wait", 12, 84, nil)...)
	evs = append(evs, span(6, 5, "lease_wait", 13, 30, map[string]string{"a": "0", "b": "1", "attr": "0"})...)
	evs = append(evs, span(7, 5, "judgment", 30, 75, map[string]string{"a": "0", "b": "1", "attr": "0"})...)
	re := telemetry.RunEnd(3, 1, 2)
	re.Time = at(100)
	evs = append(evs, re)
	return evs
}

func TestBuildTracesTree(t *testing.T) {
	traces := buildTraces(syntheticEvents(t))
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.roots) != 1 || tr.roots[0].Name != "run" {
		t.Fatalf("roots = %+v, want single run root", tr.roots)
	}
	run := tr.roots[0]
	if run.Duration() != 100*time.Millisecond {
		t.Errorf("run duration = %v, want 100ms", run.Duration())
	}
	var names []string
	for _, c := range run.children {
		names = append(names, c.Name)
	}
	if strings.Join(names, ",") != "qgen,round" {
		t.Errorf("run children = %v, want [qgen round]", names)
	}
	if tr.unfinished() != 0 {
		t.Errorf("unfinished = %d, want 0", tr.unfinished())
	}
}

func TestCriticalPathAndPhases(t *testing.T) {
	traces := buildTraces(syntheticEvents(t))
	run := traces[0].roots[0]
	path := criticalPath(run)
	var names []string
	for _, s := range path {
		names = append(names, s.Name)
	}
	want := "run,qgen,round,round_submit,round_wait,lease_wait,judgment"
	if strings.Join(names, ",") != want {
		t.Fatalf("critical path = %v, want %s", names, want)
	}
	self := selfTimes(path)
	if self[path[0]] == 0 {
		t.Error("run must have nonzero self time (the gaps between children)")
	}
	phases := phaseAttribution(run)
	// lease_wait (17ms) + judgment (45ms) + round_wait self (72-62=10ms)
	if phases["crowd-wait"] < 70*time.Millisecond {
		t.Errorf("crowd-wait = %v, want >= 70ms", phases["crowd-wait"])
	}
	if phases["compute"] != 2*time.Millisecond {
		t.Errorf("compute = %v, want 2ms (the qgen span)", phases["compute"])
	}
	var total time.Duration
	for _, d := range phases {
		total += d
	}
	if total != run.Duration() {
		t.Errorf("phase times sum to %v, want the run duration %v", total, run.Duration())
	}
}

func TestTopQuestions(t *testing.T) {
	traces := buildTraces(syntheticEvents(t))
	top := topQuestions(traces[0], 5)
	if len(top) != 1 {
		t.Fatalf("got %d questions, want 1", len(top))
	}
	q := top[0]
	if q.LeaseWait != 17*time.Millisecond || q.Judgment != 45*time.Millisecond || q.Assignments != 1 {
		t.Errorf("question stat = %+v", q)
	}
}

func TestAnalyzeTraceOutput(t *testing.T) {
	events := syntheticEvents(t)
	traces := buildTraces(events)
	var sb strings.Builder
	analyzeTrace(&sb, traces[0], events, true, 3)
	out := sb.String()
	for _, want := range []string{
		"run", "critical path", "phase attribution", "crowd-wait",
		"slowest questions", "0 vs 1 (attr 0)",
		"run span 100ms vs run_start→run_end frame 100ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// A torn stream (span_end without span_start) must still produce a span
// anchored by its duration rather than being dropped.
func TestBuildTracesTornStart(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	sc := telemetry.SpanContext{TraceID: strings.Repeat("cd", 16), SpanID: strings.Repeat("e", 16)}
	evs := []telemetry.Event{
		telemetry.SpanEnd(sc, "round", nil, base.Add(50*time.Millisecond), 40*time.Millisecond),
	}
	traces := buildTraces(evs)
	if len(traces) != 1 || len(traces[0].roots) != 1 {
		t.Fatalf("traces = %+v", traces)
	}
	s := traces[0].roots[0]
	if s.Duration() != 40*time.Millisecond {
		t.Errorf("duration = %v, want 40ms reconstructed from duration_ms", s.Duration())
	}
}

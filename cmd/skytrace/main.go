// Command skytrace analyzes span traces produced by `crowdsky -trace`,
// `crowdserved -trace` and `experiments -trace`: it pairs the
// span_start/span_end events in one or more JSONL files (requester and
// marketplace traces merge by trace ID), renders a latency waterfall per
// run, extracts the critical path that bounds wall-clock, attributes
// trace time to phases (crowd-wait vs. compute vs. voting vs. RPC), and
// ranks the slowest questions.
//
// Usage:
//
//	skytrace run.jsonl                    # waterfall + phase table
//	skytrace -critical-path run.jsonl     # also print the critical path
//	skytrace -top 10 run.jsonl srv.jsonl  # slowest questions, both sides
//
// The paper's latency model is round-structured (Section 4): wall-clock
// is crowd rounds, not machine compute. skytrace makes that decomposition
// visible for a real deployment: a slow run attributes to queue wait
// (lease_wait), worker think time (judgment), voting escalation, or the
// machine part (index_build/question generation).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"crowdsky/internal/telemetry"
)

func main() {
	criticalFlag := flag.Bool("critical-path", false, "print the critical path of each run")
	topFlag := flag.Int("top", 0, "print the N slowest questions by crowd time")
	traceFlag := flag.String("trace-id", "", "only analyze the given trace ID")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: skytrace [flags] trace.jsonl [more.jsonl...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzes crowdsky span traces; merge requester and server files by listing both.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var events []telemetry.Event
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		evs, err := telemetry.ReadEvents(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		events = append(events, evs...)
	}

	traces := buildTraces(events)
	if *traceFlag != "" {
		var keep []*trace
		for _, tr := range traces {
			if tr.id == *traceFlag {
				keep = append(keep, tr)
			}
		}
		traces = keep
	}
	if len(traces) == 0 {
		fatalf("no spans found (was the trace recorded with span support?)")
	}

	out := os.Stdout
	for _, tr := range traces {
		analyzeTrace(out, tr, events, *criticalFlag, *topFlag)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "skytrace: "+format+"\n", args...)
	os.Exit(1)
}

// analyzeTrace prints every report for one trace.
func analyzeTrace(w io.Writer, tr *trace, events []telemetry.Event, critical bool, top int) {
	fmt.Fprintf(w, "trace %s  (%d spans", tr.id, len(tr.spans))
	if n := tr.unfinished(); n > 0 {
		fmt.Fprintf(w, ", %d unfinished", n)
	}
	fmt.Fprintln(w, ")")
	for _, root := range tr.roots {
		fmt.Fprintln(w)
		renderWaterfall(w, root)
		if root.Name == "run" {
			crossCheckRun(w, root, events)
		}
		if critical {
			fmt.Fprintln(w)
			renderCriticalPath(w, root)
		}
		fmt.Fprintln(w)
		renderPhases(w, root)
	}
	if top > 0 {
		fmt.Fprintln(w)
		renderTop(w, tr, top)
	}
	fmt.Fprintln(w)
}

// crossCheckRun compares the root run span against the flat
// run_start/run_end frame of the same stream — the two must agree, which
// is the cheap self-test that span timing is trustworthy.
func crossCheckRun(w io.Writer, root *spanRec, events []telemetry.Event) {
	var start, end *telemetry.Event
	for i := range events {
		switch events[i].Type {
		case telemetry.EventRunStart:
			if start == nil {
				start = &events[i]
			}
		case telemetry.EventRunEnd:
			if end == nil {
				end = &events[i]
			}
		}
	}
	if start == nil || end == nil {
		return
	}
	frame := end.Time.Sub(start.Time)
	fmt.Fprintf(w, "  run span %s vs run_start→run_end frame %s (questions=%s rounds=%s)\n",
		fmtDur(root.Duration()), fmtDur(frame), root.Attrs["questions"], root.Attrs["rounds"])
}

// spanRec is one reconstructed span: a paired span_start/span_end, or an
// unfinished span_start (End zero, duration zero).
type spanRec struct {
	TraceID  string
	SpanID   string
	ParentID string
	Name     string
	Start    time.Time
	End      time.Time
	Attrs    map[string]string
	Finished bool

	children []*spanRec
}

// Duration is the span's wall time (zero for unfinished spans).
func (s *spanRec) Duration() time.Duration {
	if !s.Finished {
		return 0
	}
	return s.End.Sub(s.Start)
}

// trace is every span sharing one trace ID, organized as a forest.
type trace struct {
	id    string
	spans map[string]*spanRec
	roots []*spanRec
}

func (tr *trace) unfinished() int {
	n := 0
	for _, s := range tr.spans {
		if !s.Finished {
			n++
		}
	}
	return n
}

// buildTraces pairs span events and assembles one forest per trace ID,
// ordered by first span start. Spans whose parent is missing from the
// stream (e.g. only the server's file was given) become roots.
func buildTraces(events []telemetry.Event) []*trace {
	byTrace := make(map[string]*trace)
	var order []string
	for i := range events {
		e := &events[i]
		if e.Type != telemetry.EventSpanStart && e.Type != telemetry.EventSpanEnd {
			continue
		}
		tr := byTrace[e.TraceID]
		if tr == nil {
			tr = &trace{id: e.TraceID, spans: make(map[string]*spanRec)}
			byTrace[e.TraceID] = tr
			order = append(order, e.TraceID)
		}
		s := tr.spans[e.SpanID]
		if s == nil {
			s = &spanRec{TraceID: e.TraceID, SpanID: e.SpanID}
			tr.spans[e.SpanID] = s
		}
		switch e.Type {
		case telemetry.EventSpanStart:
			s.Name, s.ParentID, s.Start = e.Name, e.ParentID, e.Time
		case telemetry.EventSpanEnd:
			s.End, s.Finished = e.Time, true
			if s.Name == "" {
				s.Name = e.Name
			}
			if len(e.Attrs) > 0 {
				s.Attrs = e.Attrs
			}
			if s.Start.IsZero() {
				// span_end without its span_start (torn stream): anchor
				// the span at its end minus the recorded duration.
				s.Start = e.Time.Add(-time.Duration(e.DurationMS * float64(time.Millisecond)))
			}
		}
	}
	var out []*trace
	for _, id := range order {
		tr := byTrace[id]
		for _, s := range tr.spans {
			if p, ok := tr.spans[s.ParentID]; ok && s.ParentID != "" {
				p.children = append(p.children, s)
			} else {
				tr.roots = append(tr.roots, s)
			}
		}
		for _, s := range tr.spans {
			sortSpans(s.children)
		}
		sortSpans(tr.roots)
		out = append(out, tr)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return firstStart(out[i]).Before(firstStart(out[j]))
	})
	return out
}

func firstStart(tr *trace) time.Time {
	if len(tr.roots) == 0 {
		return time.Time{}
	}
	return tr.roots[0].Start
}

// sortSpans orders spans by start time, span ID as the deterministic
// tie-break.
func sortSpans(spans []*spanRec) {
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// renderWaterfall prints the span tree with per-span offset bars scaled
// to the root's duration.
func renderWaterfall(w io.Writer, root *spanRec) {
	const barWidth = 32
	total := root.Duration()
	var walk func(s *spanRec, depth int)
	walk = func(s *spanRec, depth int) {
		bar := waterfallBar(s, root, barWidth, total)
		label := strings.Repeat("  ", depth) + s.Name
		state := ""
		if !s.Finished {
			state = "  (unfinished)"
		}
		fmt.Fprintf(w, "  %-32s %10s  |%s|%s%s\n", clip(label, 32), fmtDur(s.Duration()), bar, spanDetail(s), state)
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

// waterfallBar renders one span's position within the root's interval.
func waterfallBar(s, root *spanRec, width int, total time.Duration) string {
	if total <= 0 {
		return strings.Repeat(" ", width)
	}
	frac := func(t time.Time) int {
		f := float64(t.Sub(root.Start)) / float64(total)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return int(f * float64(width))
	}
	lo, hi := frac(s.Start), frac(s.End)
	if !s.Finished {
		hi = lo
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > width {
		hi = width
	}
	return strings.Repeat(" ", lo) + strings.Repeat("█", hi-lo) + strings.Repeat(" ", width-hi)
}

// spanDetail picks the interesting attrs for the waterfall line.
func spanDetail(s *spanRec) string {
	keys := []string{"algo", "round", "questions", "worker", "a", "b", "polls", "requeued"}
	var parts []string
	for _, k := range keys {
		if v, ok := s.Attrs[k]; ok {
			parts = append(parts, k+"="+v)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "  " + strings.Join(parts, " ")
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// criticalPath returns the chain of spans that bounds the root's
// wall-clock: starting from the root's end, repeatedly step to the child
// covering the latest time not yet accounted for, then recurse into it.
// Spans that extend past their parent (cross-process children whose
// lifetime outlives the request that created them) are not followed.
func criticalPath(root *spanRec) []*spanRec {
	var path []*spanRec
	var walk func(s *spanRec)
	walk = func(s *spanRec) {
		path = append(path, s)
		cursor := s.End
		kids := append([]*spanRec(nil), s.children...)
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].End.After(kids[j].End) })
		var chain []*spanRec
		for _, k := range kids {
			if !k.Finished || k.End.After(cursor) || !k.Start.Before(cursor) {
				continue
			}
			chain = append(chain, k)
			cursor = k.Start
		}
		// chain was collected latest-first; replay it in time order.
		for i := len(chain) - 1; i >= 0; i-- {
			walk(chain[i])
		}
	}
	walk(root)
	return path
}

// selfTimes returns, for each span on the critical path, the share of its
// duration not covered by its own on-path children — the time the trace
// actually attributes to that span.
func selfTimes(path []*spanRec) map[*spanRec]time.Duration {
	onPath := make(map[*spanRec]bool, len(path))
	for _, s := range path {
		onPath[s] = true
	}
	out := make(map[*spanRec]time.Duration, len(path))
	for _, s := range path {
		covered := time.Duration(0)
		for _, c := range s.children {
			if onPath[c] {
				covered += c.Duration()
			}
		}
		self := s.Duration() - covered
		if self < 0 {
			self = 0
		}
		out[s] = self
	}
	return out
}

// renderCriticalPath prints the chain with per-span self time.
func renderCriticalPath(w io.Writer, root *spanRec) {
	path := criticalPath(root)
	self := selfTimes(path)
	fmt.Fprintf(w, "  critical path (%d spans, %s total):\n", len(path), fmtDur(root.Duration()))
	for _, s := range path {
		fmt.Fprintf(w, "    %-28s self %10s  of %10s%s\n", clip(s.Name, 28), fmtDur(self[s]), fmtDur(s.Duration()), spanDetail(s))
	}
}

// phase buckets for attribution. Every span name maps to one phase;
// unknown names count as "other" so new instrumentation is never silently
// dropped.
func phaseOf(name string) string {
	switch name {
	case "lease_wait", "judgment", "round_wait":
		return "crowd-wait"
	case "vote_resolve":
		return "voting"
	case "index_build", "qgen", "p1", "p2", "p3_order":
		return "compute"
	case "round_submit", "server_round":
		return "rpc"
	case "run", "round", "experiment":
		return "orchestration"
	default:
		if strings.HasPrefix(name, "http ") {
			return "rpc"
		}
		return "other"
	}
}

var phaseOrder = []string{"crowd-wait", "voting", "compute", "rpc", "orchestration", "other"}

// phaseAttribution sums critical-path self time per phase.
func phaseAttribution(root *spanRec) map[string]time.Duration {
	path := criticalPath(root)
	self := selfTimes(path)
	out := make(map[string]time.Duration)
	for _, s := range path {
		out[phaseOf(s.Name)] += self[s]
	}
	return out
}

// renderPhases prints the attribution table for one root span.
func renderPhases(w io.Writer, root *spanRec) {
	phases := phaseAttribution(root)
	total := root.Duration()
	fmt.Fprintf(w, "  phase attribution (critical-path time):\n")
	for _, p := range phaseOrder {
		d, ok := phases[p]
		if !ok || d == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d) / float64(total)
		}
		fmt.Fprintf(w, "    %-14s %10s  %5.1f%%\n", p, fmtDur(d), pct)
	}
}

// questionStat aggregates the crowd time of one question across its
// assignments (lease waits + judgments, including requeued attempts).
type questionStat struct {
	Key         string // "a vs b (attr k)"
	LeaseWait   time.Duration
	Judgment    time.Duration
	Assignments int
}

func (q questionStat) total() time.Duration { return q.LeaseWait + q.Judgment }

// topQuestions ranks questions by total crowd time, slowest first.
func topQuestions(tr *trace, n int) []questionStat {
	agg := make(map[string]*questionStat)
	var order []string
	for _, s := range tr.spans {
		if s.Name != "lease_wait" && s.Name != "judgment" {
			continue
		}
		a, b, attr := s.Attrs["a"], s.Attrs["b"], s.Attrs["attr"]
		if a == "" || b == "" {
			continue
		}
		key := fmt.Sprintf("%s vs %s (attr %s)", a, b, attr)
		q := agg[key]
		if q == nil {
			q = &questionStat{Key: key}
			agg[key] = q
			order = append(order, key)
		}
		switch s.Name {
		case "lease_wait":
			q.LeaseWait += s.Duration()
		case "judgment":
			q.Judgment += s.Duration()
			q.Assignments++
		}
	}
	out := make([]questionStat, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].total() != out[j].total() {
			return out[i].total() > out[j].total()
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

func renderTop(w io.Writer, tr *trace, n int) {
	top := topQuestions(tr, n)
	if len(top) == 0 {
		fmt.Fprintf(w, "  no per-question spans (record the server side with crowdserved -trace)\n")
		return
	}
	fmt.Fprintf(w, "  slowest questions (lease wait + judgment):\n")
	for _, q := range top {
		fmt.Fprintf(w, "    %-24s %10s  (wait %s, judge %s, %d judgments)\n",
			clip(q.Key, 24), fmtDur(q.total()), fmtDur(q.LeaseWait), fmtDur(q.Judgment), q.Assignments)
	}
}

// Command bench is the perf-trajectory harness for the machine part: it
// times the dominance constructions — the row-scan kernels and the
// columnar index that replaced them on the hot path — across dataset
// cardinalities and writes the measurements as JSON, so any two PRs can
// be compared by diffing their checked-in BENCH_*.json files.
//
//	go run ./cmd/bench -out BENCH_PR4.json
//	go run ./cmd/bench -quick -out bench-smoke.json   # CI smoke, n=1000 only
//	go run ./cmd/bench -sizes 1000,10000 -out -       # custom sizes, stdout
//	go run ./cmd/bench -quick -out s.json -compare BENCH_PR4.json
//
// -compare prints a Markdown table against a baseline report (only ops
// measured in both at the same n), flagging ns/op regressions above 10%.
// It is a soft gate: regressions are reported, never a non-zero exit —
// CI appends the table to the job summary.
//
// Each op is measured with testing.Benchmark (standard ns/op, B/op,
// allocs/op semantics). The *_scan ops are the pre-index kernels kept in
// internal/skyline as references; the *_index ops include the index build
// in every iteration, so scan-vs-index rows are an end-to-end
// before/after comparison at equal work. See docs/PERFORMANCE.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"crowdsky/internal/core"
	"crowdsky/internal/dataset"
	"crowdsky/internal/skyline"
)

// result is one (op, n) measurement.
type result struct {
	Op          string  `json:"op"`
	N           int     `json:"n"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report is the file schema. Environment fields make cross-machine diffs
// honest: only compare files with matching cpu/go fields.
type report struct {
	Schema    string   `json:"schema"`
	Generated string   `json:"generated"`
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Sizes     []int    `json:"sizes"`
	Results   []result `json:"results"`
}

// op is one machine-part construction under measurement.
type op struct {
	name  string
	bench func(d *dataset.Dataset) func(b *testing.B)
}

func ops() []op {
	return []op{
		// index_build is pinned to one worker so the row measures the
		// serial kernel across reports regardless of the host's core
		// count; index_build_parallel (below, per -cores) is the
		// multi-core row, and serial÷parallel at equal n is the speedup.
		{"index_build", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				defer skyline.SetMaxWorkers(skyline.SetMaxWorkers(1))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					skyline.NewIndex(d)
				}
			}
		}},
		// index_add measures resurrecting one tuple into a warm dynamic
		// index. The paired Remove that makes the Add legal runs with the
		// timer stopped, so ns/op is the Add alone (wall clock per
		// iteration is higher; the reported number is correct).
		{"index_add", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				ix := skyline.NewIndex(d)
				ix.Remove(0)
				ix.Add(0) // convert + warm before the clock starts
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					t := i % d.N()
					ix.Remove(t)
					b.StartTimer()
					ix.Add(t)
				}
			}
		}},
		// index_remove mirrors index_add with the roles swapped.
		{"index_remove", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				ix := skyline.NewIndex(d)
				ix.Remove(0)
				ix.Add(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					t := i % d.N()
					b.StartTimer()
					ix.Remove(t)
					b.StopTimer()
					ix.Add(t)
					b.StartTimer()
				}
			}
		}},
		// steady_state_round is one serving round of the session layer
		// (answer folding, completeness checks, request regeneration) via
		// the same core.RoundBench harness the zero-alloc gate holds at
		// 0 allocs/op.
		{"steady_state_round", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				rb := core.NewRoundBench(d, core.AllPruning(), 64)
				defer rb.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rb.Round()
				}
			}
		}},
		{"dominating_sets_scan", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					skyline.DominatingSetsParallel(d)
				}
			}
		}},
		{"dominating_sets_index", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					skyline.NewIndex(d).DominatingSets()
				}
			}
		}},
		{"immediate_dominators_scan", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				sets := skyline.DominatingSetsParallel(d)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					skyline.ImmediateDominatorsParallel(d, sets)
				}
			}
		}},
		{"immediate_dominators_index", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					skyline.NewIndex(d).ImmediateDominators()
				}
			}
		}},
		{"oracle_skyline_scan", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					skyline.OracleSkylineParallel(d)
				}
			}
		}},
		{"oracle_skyline_index", func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					skyline.NewIndex(d).OracleSkyline()
				}
			}
		}},
	}
}

// parallelOps returns one index_build_parallel op per requested worker
// count. The default (cores = [0]) is a single row at all cores, named
// plainly so reports from different machines keep comparable keys; an
// explicit -cores list names each row with its count, which is how the
// speedup curve in docs/PERFORMANCE.md is produced.
func parallelOps(cores []int) []op {
	var out []op
	for _, c := range cores {
		c := c
		name := "index_build_parallel"
		if c > 0 {
			name = fmt.Sprintf("index_build_parallel@%d", c)
		}
		out = append(out, op{name, func(d *dataset.Dataset) func(*testing.B) {
			return func(b *testing.B) {
				defer skyline.SetMaxWorkers(skyline.SetMaxWorkers(c))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					skyline.NewIndex(d)
				}
			}
		}})
	}
	return out
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseCores parses the -cores flag: empty means one all-cores row.
func parseCores(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{0}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, c)
	}
	return out, nil
}

func main() {
	var (
		outPath   = flag.String("out", "BENCH_PR4.json", "output file, or - for stdout")
		sizesCS   = flag.String("sizes", "1000,5000,10000,20000", "comma-separated dataset cardinalities")
		quick     = flag.Bool("quick", false, "smoke mode: n=1000 only (overrides -sizes)")
		seed      = flag.Int64("seed", 1, "dataset generator seed")
		baseCmp   = flag.String("compare", "", "baseline BENCH_*.json: print a Markdown ns/op comparison and flag >10% regressions (never fails the run)")
		coresCS   = flag.String("cores", "", "comma-separated worker counts for index_build_parallel rows (e.g. 1,2,4,8); empty = one row at all cores")
		chaos     = flag.Bool("chaos", false, "run the fault-injection resilience session instead of benchmarks; exits non-zero on any invariant violation")
		chaosSeed = flag.Int64("chaos-seed", 1234, "fault plan seed for -chaos (same seed, same fault schedule)")
		chaosDir  = flag.String("chaos-dir", "chaos-artifacts", "directory for -chaos failure artifacts (journals, server trace)")
	)
	flag.Parse()

	if *chaos {
		os.Exit(runChaos(*chaosSeed, *chaosDir, os.Stdout))
	}

	sizes, err := parseSizes(*sizesCS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	if *quick {
		sizes = []int{1000}
	}
	cores, err := parseCores(*coresCS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	allOps := append(ops(), parallelOps(cores)...)

	rep := report{
		Schema:    "crowdsky-bench/1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Sizes:     sizes,
	}
	for _, n := range sizes {
		// The machine-part workload of the paper's evaluation: 4 known
		// attributes, 2 crowd attributes, independent distribution.
		d := dataset.MustGenerate(dataset.GenerateConfig{
			N: n, KnownDims: 4, CrowdDims: 2, Distribution: dataset.Independent,
		}, rand.New(rand.NewSource(*seed)))
		for _, o := range allOps {
			start := time.Now()
			r := testing.Benchmark(o.bench(d))
			rep.Results = append(rep.Results, result{
				Op:          o.name,
				N:           n,
				Iterations:  r.N,
				NsPerOp:     float64(r.NsPerOp()),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
			fmt.Fprintf(os.Stderr, "%-28s n=%-6d %12d ns/op %12d B/op %8d allocs/op (%s)\n",
				o.name, n, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp(),
				time.Since(start).Round(time.Millisecond))
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d results)\n", *outPath, len(rep.Results))
	}

	if *baseCmp != "" {
		data, err := os.ReadFile(*baseCmp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: compare:", err)
			os.Exit(1)
		}
		var base report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintln(os.Stderr, "bench: compare:", err)
			os.Exit(1)
		}
		// Soft gate by design (see package comment): the exit code stays 0
		// even with regressions, because CI machines are not the baseline
		// machine and a hard gate on cross-machine ns/op would flake.
		compareReports(os.Stdout, *baseCmp, base, rep, 0.10)
	}
}

// compareReports writes a Markdown comparison of cur against base to w:
// one row per (op, n) measured in both, with the ns/op delta, flagging
// regressions above threshold. Returns the number of flagged rows.
func compareReports(w io.Writer, baseName string, base, cur report, threshold float64) int {
	type key struct {
		op string
		n  int
	}
	baseline := make(map[key]result, len(base.Results))
	for _, r := range base.Results {
		baseline[key{r.Op, r.N}] = r
	}
	fmt.Fprintf(w, "### Bench comparison vs %s\n\n", baseName)
	if base.Go != cur.Go || base.GOARCH != cur.GOARCH || base.CPUs != cur.CPUs {
		fmt.Fprintf(w, "> environment differs from baseline (%s/%s/%d CPUs vs %s/%s/%d CPUs) — deltas are indicative only\n\n",
			cur.Go, cur.GOARCH, cur.CPUs, base.Go, base.GOARCH, base.CPUs)
	}
	fmt.Fprintln(w, "| op | n | baseline ns/op | current ns/op | delta | B/op | allocs/op |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|")
	regressions, compared := 0, 0
	for _, r := range cur.Results {
		b, ok := baseline[key{r.Op, r.N}]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		compared++
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := ""
		if delta > threshold {
			mark = " ⚠️"
			regressions++
		}
		// Memory columns show baseline→current so an allocation creeping
		// onto a zero-alloc op is visible at a glance; a regression from
		// 0 allocs/op is flagged like a time regression (machine-stable,
		// unlike ns/op, so the mark is trustworthy cross-machine).
		allocMark := ""
		if b.AllocsPerOp == 0 && r.AllocsPerOp > 0 {
			allocMark = " ⚠️"
			regressions++
		}
		fmt.Fprintf(w, "| %s | %d | %.0f | %.0f | %+.1f%%%s | %s | %s%s |\n",
			r.Op, r.N, b.NsPerOp, r.NsPerOp, 100*delta, mark,
			deltaCount(b.BytesPerOp, r.BytesPerOp), deltaCount(b.AllocsPerOp, r.AllocsPerOp), allocMark)
	}
	switch {
	case compared == 0:
		fmt.Fprintln(w, "\nno overlapping (op, n) measurements — nothing compared")
	case regressions > 0:
		fmt.Fprintf(w, "\n**%d of %d ops regressed more than %.0f%% ns/op or started allocating** (soft gate — not failing the job)\n", regressions, compared, 100*threshold)
	default:
		fmt.Fprintf(w, "\nno ns/op regressions above %.0f%% across %d compared ops\n", 100*threshold, compared)
	}
	return regressions
}

// deltaCount renders a memory column: the current value alone when
// unchanged, "base→cur" when it moved.
func deltaCount(base, cur int64) string {
	if base == cur {
		return fmt.Sprintf("%d", cur)
	}
	return fmt.Sprintf("%d→%d", base, cur)
}

package main

import (
	"strings"
	"testing"
)

func TestCompareReportsFlagsRegressions(t *testing.T) {
	base := report{
		Go: "go1.22", GOARCH: "amd64", CPUs: 8,
		Results: []result{
			{Op: "index_build", N: 1000, NsPerOp: 1000},
			{Op: "oracle_skyline_index", N: 1000, NsPerOp: 2000},
			{Op: "only_in_base", N: 1000, NsPerOp: 50},
		},
	}
	cur := report{
		Go: "go1.22", GOARCH: "amd64", CPUs: 8,
		Results: []result{
			{Op: "index_build", N: 1000, NsPerOp: 1200},          // +20%: regression
			{Op: "oracle_skyline_index", N: 1000, NsPerOp: 1900}, // -5%: fine
			{Op: "only_in_current", N: 1000, NsPerOp: 10},        // no baseline
		},
	}
	var sb strings.Builder
	got := compareReports(&sb, "BENCH_PR4.json", base, cur, 0.10)
	if got != 1 {
		t.Errorf("regressions = %d, want 1\n%s", got, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "index_build | 1000 | 1000 | 1200 | +20.0% ⚠️ | 0 | 0 |") {
		t.Errorf("regression row missing or mis-rendered:\n%s", out)
	}
	if !strings.Contains(out, "1 of 2 ops regressed") {
		t.Errorf("summary line wrong:\n%s", out)
	}
	if strings.Contains(out, "only_in_base") || strings.Contains(out, "only_in_current") {
		t.Errorf("non-overlapping ops must be skipped:\n%s", out)
	}
	if strings.Contains(out, "environment differs") {
		t.Errorf("matching environments flagged as different:\n%s", out)
	}
}

func TestCompareReportsEnvMismatchAndClean(t *testing.T) {
	base := report{Go: "go1.21", GOARCH: "arm64", CPUs: 4,
		Results: []result{{Op: "index_build", N: 1000, NsPerOp: 1000}}}
	cur := report{Go: "go1.22", GOARCH: "amd64", CPUs: 8,
		Results: []result{{Op: "index_build", N: 1000, NsPerOp: 1050}}}
	var sb strings.Builder
	if got := compareReports(&sb, "b.json", base, cur, 0.10); got != 0 {
		t.Errorf("regressions = %d, want 0", got)
	}
	out := sb.String()
	if !strings.Contains(out, "environment differs") {
		t.Errorf("env mismatch not noted:\n%s", out)
	}
	if !strings.Contains(out, "no ns/op regressions above 10%") {
		t.Errorf("clean summary missing:\n%s", out)
	}
}

// TestCompareReportsMemoryColumns pins the B/op and allocs/op rendering:
// unchanged values print bare, changed values print base→cur, and an op
// that was allocation-free in the baseline but allocates now counts as a
// regression even with ns/op flat (allocation counts are machine-stable,
// so this flag is reliable where the timing gate is soft).
func TestCompareReportsMemoryColumns(t *testing.T) {
	base := report{Go: "go1.22", GOARCH: "amd64", CPUs: 8,
		Results: []result{
			{Op: "index_dominates", N: 1000, NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
			{Op: "index_build", N: 1000, NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 12},
		}}
	cur := report{Go: "go1.22", GOARCH: "amd64", CPUs: 8,
		Results: []result{
			{Op: "index_dominates", N: 1000, NsPerOp: 101, BytesPerOp: 16, AllocsPerOp: 1},
			{Op: "index_build", N: 1000, NsPerOp: 1010, BytesPerOp: 4096, AllocsPerOp: 12},
		}}
	var sb strings.Builder
	got := compareReports(&sb, "b.json", base, cur, 0.10)
	if got != 1 {
		t.Errorf("regressions = %d, want 1 (new allocation on a zero-alloc op)\n%s", got, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "| 0→16 | 0→1 ⚠️ |") {
		t.Errorf("changed memory columns mis-rendered:\n%s", out)
	}
	if !strings.Contains(out, "| 4096 | 12 |") {
		t.Errorf("unchanged memory columns mis-rendered:\n%s", out)
	}
}

func TestCompareReportsNoOverlap(t *testing.T) {
	var sb strings.Builder
	compareReports(&sb, "b.json", report{}, report{
		Results: []result{{Op: "x", N: 1, NsPerOp: 5}},
	}, 0.10)
	if !strings.Contains(sb.String(), "nothing compared") {
		t.Errorf("empty overlap not reported:\n%s", sb.String())
	}
}

// Chaos mode: `bench -chaos` runs a full crowd-skyline session against an
// in-process marketplace under seeded fault injection — transport resets,
// 503s, latency, truncated bodies, misbehaving workers, and a requester
// crash that tears the journal mid-write — then resumes from the
// recovered journal and checks the paper's two invariants:
//
//  1. the crowdsourced skyline equals the oracle skyline;
//  2. no answer that survived in the journal is purchased again.
//
// The run writes a JSON verdict to -out and leaves its artifacts (the
// torn journal, the recovered journal, the server-side trace) under
// -chaos-dir for CI to upload on failure. Any invariant violation exits
// non-zero — unlike the perf comparison, this is a hard gate: the
// invariants are exact properties, not machine-dependent timings.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/crowdserve"
	"crowdsky/internal/dataset"
	"crowdsky/internal/faultinject"
	"crowdsky/internal/journal"
	"crowdsky/internal/metrics"
	"crowdsky/internal/telemetry"
)

// chaosReport is the JSON verdict of one chaos run.
type chaosReport struct {
	Schema           string            `json:"schema"`
	Seed             int64             `json:"seed"`
	SkylineOK        bool              `json:"skyline_ok"`
	Skyline          []int             `json:"skyline"`
	Oracle           []int             `json:"oracle"`
	FaultsInjected   map[string]uint64 `json:"faults_injected"`
	JournalTorn      bool              `json:"journal_torn"`
	RecoveredRecords int               `json:"recovered_records"`
	DroppedRecords   int               `json:"dropped_records"`
	ReplayedAnswers  int               `json:"replayed_answers"`
	ReaskedPairs     int               `json:"reasked_pairs"`
	LiveQuestions    int               `json:"live_questions"`
	ServerQuestions  int               `json:"server_questions"`
	Violations       []string          `json:"violations"`
}

// errChaosAbort is the sentinel the simulated requester crash panics with.
var errChaosAbort = errors.New("chaos: injected requester crash")

// chaosAbortPlatform crashes the requester after maxRounds crowd rounds,
// mid-session, the way a killed process would.
type chaosAbortPlatform struct {
	inner     crowd.Platform
	rounds    int
	maxRounds int
}

func (a *chaosAbortPlatform) Ask(reqs []crowd.Request) []crowd.Answer {
	if len(reqs) == 0 {
		return a.inner.Ask(reqs)
	}
	a.rounds++
	if a.rounds > a.maxRounds {
		panic(errChaosAbort)
	}
	return a.inner.Ask(reqs)
}
func (a *chaosAbortPlatform) Stats() *crowd.Stats { return a.inner.Stats() }

// chaosAskRecorder remembers every question that reached the live
// platform — every question that cost money.
type chaosAskRecorder struct {
	inner crowd.Platform
	mu    sync.Mutex
	asked []crowd.Question
}

func (r *chaosAskRecorder) Ask(reqs []crowd.Request) []crowd.Answer {
	r.mu.Lock()
	for _, q := range reqs {
		r.asked = append(r.asked, q.Q)
	}
	r.mu.Unlock()
	return r.inner.Ask(reqs)
}
func (r *chaosAskRecorder) Stats() *crowd.Stats { return r.inner.Stats() }

// runChaos executes the chaos session and returns the process exit code.
func runChaos(seed int64, dir string, out io.Writer) int {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	rep, err := chaosSession(seed, dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	fmt.Fprintln(out, string(enc))
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "chaos: %d invariant violation(s); artifacts in %s\n",
			len(rep.Violations), dir)
		return 1
	}
	fmt.Fprintf(os.Stderr, "chaos: invariants hold (seed %d, %d faults injected, %d journal records recovered)\n",
		seed, totalFaults(rep.FaultsInjected), rep.RecoveredRecords)
	return 0
}

func totalFaults(m map[string]uint64) uint64 {
	var n uint64
	for _, c := range m {
		n += c
	}
	return n
}

// chaosSession drives the crash-and-resume scenario end to end.
func chaosSession(seed int64, dir string) (*chaosReport, error) {
	// The session context is created before anything that can fail, so
	// every return path — including early setup errors — runs its cancel.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	d := dataset.Toy()
	plan := faultinject.NewPlan(seed)
	reg := telemetry.NewRegistry()
	plan.InstrumentMetrics(reg)
	recoveredCounter := reg.NewCounter("journal_recovered_records_total",
		"Journal records salvaged from the intact prefix after an unclean shutdown.")

	// Server-side trace is a failure artifact: it shows what the
	// marketplace was doing when an invariant broke.
	traceFile, err := os.Create(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		return nil, err
	}
	defer traceFile.Close()
	tracer := telemetry.NewJSONL(traceFile)

	srv := crowdserve.NewServer()
	srv.SetLease(250 * time.Millisecond)
	srv.SetTracer(tracer)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		crowdserve.SimulateWorkers(ctx, ts.URL, crowdserve.WorkerConfig{
			Count:        3,
			Truth:        crowd.DatasetTruth{Data: d},
			Reliability:  1,
			PollInterval: time.Millisecond,
			Seed:         seed + 1,
			Faults: &faultinject.WorkerFaults{
				Plan:       plan,
				PNoShow:    0.10,
				PDuplicate: 0.10,
				PStale:     0.05,
				StaleDelay: 400 * time.Millisecond,
			},
		})
	}()

	// A registry accepts each family once, so only the first client gets
	// instrumented; the chaos verdict reads fault counts from the plan,
	// not the registry, so nothing is lost.
	instrumented := false
	newClient := func() *crowdserve.Client {
		c := crowdserve.NewClient(ts.URL)
		c.HTTPClient = &http.Client{Transport: &faultinject.Transport{
			Plan: plan,
			Config: faultinject.TransportConfig{
				PResetBefore: 0.05,
				PResetAfter:  0.05,
				P503:         0.05,
				PTruncate:    0.05,
				PLatency:     0.10,
				MaxLatency:   2 * time.Millisecond,
			},
		}}
		c.PollInterval = 2 * time.Millisecond
		c.RetryBase = time.Millisecond
		c.RetryMax = 50 * time.Millisecond
		c.MaxAttempts = 12
		if !instrumented {
			instrumented = true
			c.InstrumentMetrics(reg)
		}
		return c
	}

	// Session 1: journal through a TornWriter and crash after three crowd
	// rounds — the tear lands mid-record, as a real crash between write
	// and fsync would leave it.
	journalPath := filepath.Join(dir, "journal.jsonl")
	var torn bytes.Buffer
	tw := &faultinject.TornWriter{W: &torn, Cutoff: 300, Plan: plan}
	p1, err := journal.NewPlatform(newClient(), nil, journal.NewWriter(tw))
	if err != nil {
		return nil, err
	}
	if err := func() (rerr error) {
		defer func() {
			if r := recover(); r != nil {
				if r != errChaosAbort { //nolint:errorlint // sentinel identity, not a wrapped chain
					panic(r)
				}
				return
			}
			rerr = errors.New("session 1 completed; the injected crash never fired")
		}()
		core.CrowdSky(d, &chaosAbortPlatform{inner: p1, maxRounds: 3}, core.AllPruning())
		return nil
	}(); err != nil {
		return nil, err
	}
	if err := os.WriteFile(journalPath, torn.Bytes(), 0o644); err != nil {
		return nil, err
	}

	rep := &chaosReport{
		Schema:      "crowdsky-chaos/1",
		Seed:        seed,
		JournalTorn: tw.Torn(),
	}

	// Recovery: salvage the intact prefix, exactly as `crowdsky -journal`
	// does after an unclean shutdown.
	recovered, st, err := journal.Recover(bytes.NewReader(torn.Bytes()))
	if err != nil {
		return nil, err
	}
	recoveredCounter.Add(uint64(len(recovered)))
	rep.RecoveredRecords = len(recovered)
	rep.DroppedRecords = st.Dropped
	if !tw.Torn() {
		rep.Violations = append(rep.Violations,
			"journal was never torn: the crash scenario did not exercise recovery")
	}

	// Session 2: resume from the recovered prefix, recording every live
	// question so re-purchases are provable.
	rec := &chaosAskRecorder{inner: newClient()}
	var log2 bytes.Buffer
	p2, err := journal.NewPlatform(rec, recovered, journal.NewWriter(&log2))
	if err != nil {
		return nil, err
	}
	res := core.CrowdSky(d, p2, core.AllPruning())
	cancel()
	<-workersDone

	rep.Skyline = res.Skyline
	rep.Oracle = core.Oracle(d)
	rep.SkylineOK = metrics.SameSet(rep.Skyline, rep.Oracle)
	rep.ReplayedAnswers = p2.Replayed()
	rep.LiveQuestions = len(rec.asked)
	if !rep.SkylineOK {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"skyline %v differs from oracle %v", rep.Skyline, rep.Oracle))
	}
	if rep.ReplayedAnswers != len(recovered) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"replayed %d answers, want every recovered record (%d)", rep.ReplayedAnswers, len(recovered)))
	}

	// No paid pair asked twice: nothing the journal preserved may appear
	// among session 2's live questions, in either orientation.
	paid := make(map[crowd.Question]bool, 2*len(recovered))
	for _, e := range recovered {
		paid[crowd.Question{A: e.A, B: e.B, Attr: e.Attr}] = true
		paid[crowd.Question{A: e.B, B: e.A, Attr: e.Attr}] = true
	}
	for _, q := range rec.asked {
		if paid[q] {
			rep.ReaskedPairs++
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"recovered pair (%d,%d,attr=%d) was purchased again", q.A, q.B, q.Attr))
		}
	}

	rep.FaultsInjected = make(map[string]uint64)
	for k, n := range plan.Counts() {
		rep.FaultsInjected[string(k)] = n
	}
	if len(rep.FaultsInjected) == 0 {
		rep.Violations = append(rep.Violations,
			"zero faults injected: the chaos run proved nothing")
	}

	if stats, err := fetchChaosStats(ts.URL); err == nil {
		rep.ServerQuestions = stats.Questions
	}

	// Leave both journals behind as artifacts: the torn original and the
	// clean resumed one.
	if err := os.WriteFile(filepath.Join(dir, "journal-resumed.jsonl"), log2.Bytes(), 0o644); err != nil {
		return nil, err
	}
	// Surface trace-write failures before the verdict so a failing run's
	// artifact is known-complete.
	if err := tracer.Err(); err != nil {
		return nil, fmt.Errorf("trace writes failed: %w", err)
	}
	return rep, nil
}

type chaosStats struct {
	Rounds    int `json:"rounds"`
	Questions int `json:"questions"`
}

func fetchChaosStats(baseURL string) (chaosStats, error) {
	resp, err := http.Get(baseURL + "/api/stats")
	if err != nil {
		return chaosStats{}, err
	}
	defer resp.Body.Close()
	var st chaosStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return chaosStats{}, err
	}
	return st, nil
}

// Movies: the paper's Q2 scenario (Section 6.2 and Example 1). A movie
// table records box office and release year, but "how good is this movie"
// exists only in people's heads — a crowd attribute. The example compares
// CrowdSky against the sort-based baseline on questions, rounds and
// dollars, then shows the skyline movies.
//
// Run with: go run ./examples/movies
package main

import (
	"fmt"

	"crowdsky"
)

func main() {
	d := crowdsky.Movies()
	fmt.Printf("Q2: %d movies; known = {box_office, release_year}, crowd = {rating}\n\n", d.N())

	// Simulated AMT-style crowd: reliable Masters-grade workers, 5 per
	// question, majority voting.
	newCrowd := func() crowdsky.Platform {
		return crowdsky.NewSimulatedCrowd(d, crowdsky.CrowdConfig{Reliability: 0.9, Seed: 7})
	}

	cs, err := crowdsky.Run(d, newCrowd(), crowdsky.RunConfig{
		Parallelism: crowdsky.BySkylineLayers,
		Voting:      crowdsky.StaticVoting(5),
	})
	if err != nil {
		panic(err)
	}
	base, err := crowdsky.RunBaseline(d, newCrowd(), crowdsky.StaticVoting(5))
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-12s %10s %8s %8s\n", "method", "questions", "rounds", "cost")
	fmt.Printf("%-12s %10d %8d %7s%.2f\n", "Baseline", base.Questions, base.Rounds, "$", base.Cost)
	fmt.Printf("%-12s %10d %8d %7s%.2f\n\n", "CrowdSky", cs.Questions, cs.Rounds, "$", cs.Cost)

	fmt.Println("crowdsourced skyline movies:")
	for _, t := range cs.Skyline {
		year := 2013 - int(d.Known(t, 1))
		gross := 3000 - d.Known(t, 0)
		fmt.Printf("  %-52s (%d, $%.0fM)\n", d.Name(t), year, gross)
	}

	prec, rec := crowdsky.PrecisionRecall(cs.Skyline, crowdsky.Oracle(d), crowdsky.KnownSkyline(d))
	fmt.Printf("\naccuracy vs latent ground truth: precision %.2f, recall %.2f\n", prec, rec)
}

// Quickstart: compute a crowd-enabled skyline over the paper's running
// example (Figure 1) with a perfect simulated crowd, then repeat with noisy
// workers and majority voting.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"crowdsky"
)

func main() {
	// The toy dataset: 12 tuples, two known attributes (A1, A2), one crowd
	// attribute (A3) whose values only the crowd can compare.
	d := crowdsky.Toy()
	fmt.Printf("dataset: %v\n\n", d)

	// --- 1. Perfect crowd: the cost/latency setting of the paper --------
	pf := crowdsky.NewPerfectCrowd(d)
	res, err := crowdsky.Run(d, pf, crowdsky.RunConfig{
		Parallelism: crowdsky.BySkylineLayers, // fewest rounds
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("perfect crowd, full pruning, skyline-layer parallelism:")
	printSkyline(d, res)

	// --- 2. Noisy crowd with majority voting ----------------------------
	noisy := crowdsky.NewSimulatedCrowd(d, crowdsky.CrowdConfig{
		Reliability: 0.8, // each worker is right 80% of the time
		Seed:        42,
	})
	res, err = crowdsky.Run(d, noisy, crowdsky.RunConfig{
		Voting: crowdsky.StaticVoting(5), // 5 workers per question
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("noisy crowd (p=0.8), 5-worker majority voting:")
	printSkyline(d, res)

	// Grade the noisy result against the latent ground truth.
	prec, rec := crowdsky.PrecisionRecall(res.Skyline, crowdsky.Oracle(d), crowdsky.KnownSkyline(d))
	fmt.Printf("accuracy vs ground truth: precision %.2f, recall %.2f\n", prec, rec)
}

func printSkyline(d *crowdsky.Dataset, res *crowdsky.Result) {
	fmt.Print("  skyline: ")
	for i, t := range res.Skyline {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(d.Name(t))
	}
	fmt.Printf("\n  questions=%d rounds=%d cost=$%.2f\n\n", res.Questions, res.Rounds, res.Cost)
}

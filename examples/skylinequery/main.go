// Skylinequery: the paper's Example 1 as a running program. A movie table
// stores year and box office; "romantic" exists nowhere in the data, so
// the SKYLINE OF clause sends its comparisons to a (simulated) crowd.
//
// Run with: go run ./examples/skylinequery
package main

import (
	"fmt"
	"strings"

	"crowdsky"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/query"
)

// movieDB is the stored table. The "_romantic" column is the latent ground
// truth a simulated crowd answers from (it would not exist in a production
// table — real humans would).
const movieDB = `title,year,box_office,_romantic
The Notebook Returns,2013,120,9.1
Explosion Max,2014,820,1.2
Love in Winter,2011,95,8.7
Space Punchers,2012,640,2.0
A Quiet Paris,2015,230,8.9
Robo Crash 4,2015,710,1.5
Candlelight,2010,60,8.2
Mediocre Sunset,2013,180,6.0
`

const sql = `SELECT * FROM movie_db
WHERE year >= 2010 AND year <= 2015
SKYLINE OF box_office MAX, romantic MAX`

func main() {
	tbl, err := query.ReadTable("movie_db", strings.NewReader(movieDB))
	if err != nil {
		panic(err)
	}
	cat := query.MemCatalog{"movie_db": tbl}

	fmt.Println(sql)
	fmt.Println()

	res, err := query.Run(sql, cat, query.ExecOptions{
		Scheduling: query.ScheduleSkylineLayers,
		Platform: func(d *dataset.Dataset) crowd.Platform {
			// 90%-reliable workers; in production this would be an
			// interactive or crowdserve-backed platform.
			return crowdsky.NewSimulatedCrowd(d, crowdsky.CrowdConfig{Reliability: 0.9, Seed: 4})
		},
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("known attributes:  %v (machine-evaluated)\n", res.KnownAttrs)
	fmt.Printf("crowd attributes:  %v (asked to the crowd)\n\n", res.CrowdAttrs)
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, " | "))
	}
	fmt.Printf("\n%d crowd questions in %d rounds ($%.2f)\n", res.Questions, res.Rounds, res.Cost)
}

// MLB: the paper's Q3 scenario (Section 6.2). Pitcher statistics (wins,
// strikeouts, ERA) are known; "how valuable is this pitcher" is subjective
// and crowdsourced. The paper validates the result against the 2013 Cy
// Young award candidates. This example also demonstrates dynamic voting:
// important questions (those whose answer prunes many comparisons) get
// more workers at the same total budget.
//
// Run with: go run ./examples/mlb
package main

import (
	"fmt"

	"crowdsky"
)

func main() {
	d := crowdsky.MLBPitchers()
	fmt.Printf("Q3: %d pitchers; known = {wins, strike_outs, ERA}, crowd = {valuable}\n\n", d.N())

	run := func(name string, vote crowdsky.Policy, seed int64) *crowdsky.Result {
		pf := crowdsky.NewSimulatedCrowd(d, crowdsky.CrowdConfig{Reliability: 0.8, Seed: seed})
		res, err := crowdsky.Run(d, pf, crowdsky.RunConfig{
			Parallelism: crowdsky.ByDominatingSets,
			Voting:      vote,
		})
		if err != nil {
			panic(err)
		}
		prec, rec := crowdsky.PrecisionRecall(res.Skyline, crowdsky.Oracle(d), crowdsky.KnownSkyline(d))
		fmt.Printf("%-14s questions=%3d rounds=%3d workers=%4d precision=%.2f recall=%.2f\n",
			name, res.Questions, res.Rounds, res.WorkerAnswers, prec, rec)
		return res
	}

	// Same expected worker budget; dynamic voting reallocates workers from
	// unimportant to important questions (Section 5).
	var last *crowdsky.Result
	for seed := int64(1); seed <= 3; seed++ {
		run(fmt.Sprintf("static ω=5 #%d", seed), crowdsky.StaticVoting(5), seed)
		last = run(fmt.Sprintf("dynamic #%d", seed), crowdsky.DynamicVoting(d, 5), seed)
	}
	if last == nil {
		return
	}

	fmt.Println("\ncrowdsourced skyline (compare: 2013 Cy Young candidates were")
	fmt.Println("Kershaw, Scherzer, Darvish, Colon, Wainwright, Iwakuma):")
	for _, t := range last.Skyline {
		wins := 30 - int(d.Known(t, 0))
		so := 300 - int(d.Known(t, 1))
		era := d.Known(t, 2)
		fmt.Printf("  %-18s %2dW %3dSO %.2f ERA\n", d.Name(t), wins, so, era)
	}
}

// Marketplace: the full distributed deployment in one process — an HTTP
// crowdsourcing marketplace (the AMT stand-in), a fleet of simulated
// workers polling it over HTTP, and a CrowdSky query driving rounds of
// questions through the marketplace, exactly as a production requester
// would.
//
// Run with: go run ./examples/marketplace
package main

import (
	"context"
	"fmt"
	"net/http/httptest"

	"crowdsky"
	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/crowdserve"
	"crowdsky/internal/voting"
)

func main() {
	d := crowdsky.MLBPitchers()
	fmt.Printf("marketplace demo: Q3 (%d pitchers), crowd attribute 'valuable'\n\n", d.N())

	// 1. The marketplace server (would be `crowdserved` in production).
	server := crowdserve.NewServer()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	fmt.Printf("marketplace at %s\n", ts.URL)

	// 2. A fleet of workers polling over HTTP (real humans on AMT; here
	// simulated at 90%% reliability).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		crowdserve.SimulateWorkers(ctx, ts.URL, crowdserve.WorkerConfig{
			Count:       8,
			Truth:       crowd.DatasetTruth{Data: d},
			Reliability: 0.9,
			Seed:        11,
		})
	}()
	fmt.Println("8 workers polling for assignments")

	// 3. The requester: CrowdSky with skyline-layer scheduling and
	// 3-worker majority voting, every question travelling over HTTP.
	client := crowdserve.NewClient(ts.URL)
	opts := core.AllPruning()
	opts.Voting = voting.Static{Omega: 3}
	res := core.ParallelSL(d, client, opts)

	cancel()
	<-done

	fmt.Printf("\ncrowdsourced skyline (%d questions in %d rounds, %d judgments, $%.2f):\n",
		res.Questions, res.Rounds, res.WorkerAnswers, res.Cost)
	for _, t := range res.Skyline {
		fmt.Printf("  %s\n", d.Name(t))
	}
	prec, rec := crowdsky.PrecisionRecall(res.Skyline, crowdsky.Oracle(d), crowdsky.KnownSkyline(d))
	fmt.Printf("accuracy vs ground truth: precision %.2f, recall %.2f\n", prec, rec)
}

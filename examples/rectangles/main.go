// Rectangles: the paper's Q1 scenario (Section 6.2). Fifty rectangles of
// sizes (30+3i)x(40+5i); width and height are known, and the crowd judges
// which of two (randomly rotated, in the paper's AMT images) rectangles has
// the larger area. Because the crowd attribute has an exact ground truth,
// the example sweeps worker reliability and shows how majority voting
// repairs individual errors — the paper reports precision = recall = 1.0
// with 5-worker voting.
//
// Run with: go run ./examples/rectangles
package main

import (
	"fmt"

	"crowdsky"
)

func main() {
	d := crowdsky.Rectangles()
	fmt.Printf("Q1: %d rectangles; known = {width, height}, crowd = {area}\n\n", d.N())

	fmt.Printf("%-12s %-8s %10s %10s %10s\n", "reliability", "workers", "questions", "precision", "recall")
	for _, p := range []float64{1.0, 0.9, 0.8, 0.7} {
		for _, omega := range []int{1, 5} {
			// Average accuracy over a few seeds.
			var precSum, recSum float64
			var questions int
			const runs = 5
			for seed := int64(0); seed < runs; seed++ {
				pf := crowdsky.NewSimulatedCrowd(d, crowdsky.CrowdConfig{Reliability: p, Seed: seed})
				cfg := crowdsky.RunConfig{Parallelism: crowdsky.BySkylineLayers}
				if omega > 1 {
					cfg.Voting = crowdsky.StaticVoting(omega)
				}
				res, err := crowdsky.Run(d, pf, cfg)
				if err != nil {
					panic(err)
				}
				prec, rec := crowdsky.PrecisionRecall(res.Skyline, crowdsky.Oracle(d), crowdsky.KnownSkyline(d))
				precSum += prec
				recSum += rec
				questions = res.Questions
			}
			fmt.Printf("%-12.1f %-8d %10d %10.2f %10.2f\n",
				p, omega, questions, precSum/runs, recSum/runs)
		}
	}

	fmt.Println("\nThe dataset is a total chain (both dimensions grow with i), so the")
	fmt.Println("true skyline is the single largest rectangle; every question merely")
	fmt.Println("validates a non-skyline tuple, which is why CrowdSky needs ~1 question")
	fmt.Println("per tuple while the sort-based baseline needs hundreds (Figure 12a).")
}

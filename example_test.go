package crowdsky_test

import (
	"fmt"
	"strings"

	"crowdsky"
)

// The package-level example: run the paper's Q2 movie query against a
// perfect crowd and print the skyline.
func Example() {
	d := crowdsky.Movies()
	res, err := crowdsky.Run(d, crowdsky.NewPerfectCrowd(d), crowdsky.RunConfig{
		Parallelism: crowdsky.BySkylineLayers,
	})
	if err != nil {
		panic(err)
	}
	for _, t := range res.Skyline {
		fmt.Println(d.Name(t))
	}
	// Output:
	// Avatar
	// The Avengers
	// The Dark Knight Rises
	// The Lord of the Rings: The Fellowship of the Ring
	// Inception
}

// Run with the paper's toy dataset: full pruning asks exactly the 12
// questions of Example 6 regardless of scheduling.
func ExampleRun() {
	d := crowdsky.Toy()
	for _, p := range []crowdsky.Parallelism{
		crowdsky.Serial, crowdsky.ByDominatingSets, crowdsky.BySkylineLayers,
	} {
		res, err := crowdsky.Run(d, crowdsky.NewPerfectCrowd(d), crowdsky.RunConfig{Parallelism: p})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d questions in %d rounds\n", p, res.Questions, res.Rounds)
	}
	// Output:
	// serial: 12 questions in 12 rounds
	// parallel-dset: 12 questions in 9 rounds
	// parallel-sl: 12 questions in 6 rounds
}

// RunBaseline contrasts the sort-based baseline's spend with CrowdSky's.
func ExampleRunBaseline() {
	d := crowdsky.Toy()
	base, err := crowdsky.RunBaseline(d, crowdsky.NewPerfectCrowd(d), nil)
	if err != nil {
		panic(err)
	}
	cs, err := crowdsky.Run(d, crowdsky.NewPerfectCrowd(d), crowdsky.RunConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline: %d questions, crowdsky: %d questions\n", base.Questions, cs.Questions)
	// Output:
	// baseline: 32 questions, crowdsky: 12 questions
}

// A budget-capped run (the fixed-budget setting of the compared work) stops
// at the cap and reports truncation.
func ExampleRunConfig_budget() {
	d := crowdsky.Toy()
	res, err := crowdsky.Run(d, crowdsky.NewPerfectCrowd(d), crowdsky.RunConfig{Budget: 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("questions=%d truncated=%v skyline=%d tuples\n",
		res.Questions, res.Truncated, len(res.Skyline))
	// Output:
	// questions=4 truncated=true skyline=9 tuples
}

// ReadCSV builds a dataset from tabular data; "-col" marks larger-is-better
// columns.
func ExampleReadCSV() {
	csv := strings.NewReader("name,price,stars\ncheap,40,3\nfancy,220,5\nbad,90,2\n")
	d, err := crowdsky.ReadCSV(csv, crowdsky.CSVOptions{
		NameColumn:   "name",
		KnownColumns: []string{"price"},  // smaller preferred
		CrowdColumns: []string{"-stars"}, // larger preferred, crowdsourced
	})
	if err != nil {
		panic(err)
	}
	res, err := crowdsky.Run(d, crowdsky.NewPerfectCrowd(d), crowdsky.RunConfig{})
	if err != nil {
		panic(err)
	}
	for _, t := range res.Skyline {
		fmt.Println(d.Name(t))
	}
	// Output:
	// cheap
	// fancy
}

// PrecisionRecall grades a noisy result against the ground truth using the
// paper's newly-retrieved-tuples methodology.
func ExamplePrecisionRecall() {
	d := crowdsky.Rectangles()
	pf := crowdsky.NewSimulatedCrowd(d, crowdsky.CrowdConfig{Reliability: 0.9, Seed: 2})
	res, err := crowdsky.Run(d, pf, crowdsky.RunConfig{Voting: crowdsky.StaticVoting(5)})
	if err != nil {
		panic(err)
	}
	prec, rec := crowdsky.PrecisionRecall(res.Skyline, crowdsky.Oracle(d), crowdsky.KnownSkyline(d))
	fmt.Printf("precision %.2f recall %.2f\n", prec, rec)
	// Output:
	// precision 1.00 recall 1.00
}

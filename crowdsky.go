// Package crowdsky is a from-scratch Go implementation of CrowdSky
// (Lee, Lee, Kim: "CrowdSky: Skyline Computation with Crowdsourcing",
// EDBT 2016): skyline queries over relations whose crowd attributes have no
// stored values, with the missing pair-wise preferences obtained from a
// crowdsourcing platform.
//
// The package optimizes the paper's three key factors:
//
//   - monetary cost — dominating-set question generation with the three
//     pruning methods P1/P2/P3 minimizes the number of questions;
//   - latency — two parallelization strategies (by dominating sets and by
//     skyline layers) pack independent questions into shared rounds;
//   - accuracy — static or dynamic majority voting assigns workers per
//     question, weighting important questions more heavily.
//
// # Quick start
//
//	d := crowdsky.Movies() // box office & year known, rating crowdsourced
//	platform := crowdsky.NewSimulatedCrowd(d, crowdsky.CrowdConfig{
//	    Reliability: 0.9,
//	    Seed:        1,
//	})
//	res, err := crowdsky.Run(d, platform, crowdsky.RunConfig{
//	    Parallelism: crowdsky.BySkylineLayers,
//	    Voting:      crowdsky.StaticVoting(5),
//	})
//
// res.Skyline lists the crowdsourced skyline tuples; res.Questions,
// res.Rounds and res.Cost report the budget spent.
//
// Real crowds plug in through the Platform interface; the package ships a
// perfect oracle, a configurable noisy simulator, an interactive stdin
// platform, and record/replay wrappers.
package crowdsky

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
	"crowdsky/internal/skyline"
	"crowdsky/internal/telemetry"
	"crowdsky/internal/voting"
)

// Dataset is a relation with known attributes (machine-readable, smaller
// preferred) and crowd attributes (values missing; only a crowd can compare
// them). See NewDataset, Generate and the embedded datasets.
type Dataset = dataset.Dataset

// GenerateConfig describes a synthetic dataset (the paper's Table 4 grid).
type GenerateConfig = dataset.GenerateConfig

// Distribution selects the synthetic data distribution.
type Distribution = dataset.Distribution

// Synthetic data distributions of the skyline benchmark.
const (
	Independent    = dataset.Independent
	AntiCorrelated = dataset.AntiCorrelated
	Correlated     = dataset.Correlated
)

// Platform is a crowdsourcing marketplace: one Ask call is one round of
// parallel questions.
type Platform = crowd.Platform

// Result reports a crowd-enabled skyline run: the skyline tuple indices and
// the question/round/worker/cost accounting.
type Result = core.Result

// Policy decides the number of workers per question from the question's
// importance.
type Policy = voting.Policy

// Tracer receives structured trace events from a run: round boundaries,
// P1/P2/P3 prunings, vote escalations and budget truncation. See
// NewJSONLTracer for the file-backed implementation and
// docs/OBSERVABILITY.md for the event schema.
type Tracer = telemetry.Tracer

// TraceEvent is one structured trace event.
type TraceEvent = telemetry.Event

// NewJSONLTracer returns a Tracer writing one JSON event per line to w
// (the `crowdsky -trace out.jsonl` format). Writes are unbuffered; write
// errors are sticky and never abort the run — check them afterwards with
// TracerErr.
func NewJSONLTracer(w io.Writer) Tracer { return telemetry.NewJSONL(w) }

// TracerErr returns the first write error of a NewJSONLTracer tracer, and
// nil for any other tracer.
func TracerErr(t Tracer) error {
	if j, ok := t.(*telemetry.JSONL); ok {
		return j.Err()
	}
	return nil
}

// NewDataset builds a dataset from per-tuple known and latent
// crowd-attribute rows; all attributes use MIN semantics (smaller
// preferred). The latent values are only consulted by simulated crowds.
func NewDataset(known, latent [][]float64) (*Dataset, error) {
	return dataset.New(known, latent)
}

// Generate builds a synthetic benchmark dataset.
func Generate(cfg GenerateConfig, rng *rand.Rand) (*Dataset, error) {
	return dataset.Generate(cfg, rng)
}

// ReadCSV parses a dataset from CSV; see dataset.CSVOptions for the column
// mapping ("-col" flips a larger-is-better column to MIN semantics).
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	return dataset.ReadCSV(r, opts)
}

// CSVOptions maps CSV columns onto known/crowd attributes.
type CSVOptions = dataset.CSVOptions

// Toy returns the paper's 12-tuple running-example dataset (Figure 1).
func Toy() *Dataset { return dataset.Toy() }

// Rectangles returns the paper's Q1 dataset: 50 rectangles, area
// crowdsourced.
func Rectangles() *Dataset { return dataset.Rectangles() }

// Movies returns the paper's Q2 dataset: 50 movies, rating crowdsourced.
func Movies() *Dataset { return dataset.Movies() }

// MLBPitchers returns the paper's Q3 dataset: 40 pitchers, value
// crowdsourced.
func MLBPitchers() *Dataset { return dataset.MLBPitchers() }

// Parallelism selects how questions are scheduled into rounds.
type Parallelism int

const (
	// Serial asks one pair-wise comparison per round (Algorithm 1). It
	// minimizes monetary cost but has the highest latency.
	Serial Parallelism = iota
	// ByDominatingSets partitions tuples by dominating-set size and runs
	// disjoint pipelines in shared rounds (Section 4.1). Same questions as
	// Serial, about an order of magnitude fewer rounds.
	ByDominatingSets
	// BySkylineLayers starts a tuple's pipeline as soon as its direct
	// dominators are complete (Algorithm 2, Section 4.2). Fewest rounds;
	// may ask a few percent more questions.
	BySkylineLayers
)

// String names the strategy.
func (p Parallelism) String() string {
	switch p {
	case Serial:
		return "serial"
	case ByDominatingSets:
		return "parallel-dset"
	case BySkylineLayers:
		return "parallel-sl"
	default:
		return fmt.Sprintf("Parallelism(%d)", int(p))
	}
}

// Pruning toggles the paper's three question-pruning methods. The zero
// value disables all three (pure dominating-set questioning); use
// AllPruning for the full CrowdSky configuration.
type Pruning struct {
	P1 bool // early pruning of complete non-skyline tuples (Section 3.2)
	P2 bool // transitive reduction of dominating sets in AC (Section 3.3)
	P3 bool // probing dominating sets (Section 3.4)
}

// AllPruning enables P1+P2+P3, the full CrowdSky configuration.
func AllPruning() Pruning { return Pruning{P1: true, P2: true, P3: true} }

// RunConfig configures Run.
type RunConfig struct {
	// Pruning selects the enabled pruning methods. The zero value means
	// full pruning (P1+P2+P3) unless DisableDefaultPruning is set.
	Pruning Pruning
	// DisableDefaultPruning makes a zero Pruning mean "no pruning" instead
	// of the full stack. Intended for ablation studies.
	DisableDefaultPruning bool
	// Parallelism selects the round scheduling strategy.
	Parallelism Parallelism
	// Voting assigns workers per question; nil means one worker per
	// question (appropriate for trusted or simulated-perfect crowds).
	Voting Policy
	// RoundRobinAC asks the crowd attributes of a pair one at a time and
	// skips the rest once the pair's outcome is decided (Section 6.1's
	// round-robin strategy). Only meaningful with several crowd
	// attributes.
	RoundRobinAC bool
	// Budget, when positive, caps the number of crowd questions (the
	// fixed-budget setting of Lofi et al. [12]). An exhausted budget sets
	// Result.Truncated and reads out optimistically: every tuple not yet
	// proven dominated is reported.
	Budget int
	// Tracer, when non-nil, receives structured trace events during the
	// run. Nil disables tracing at no measurable cost.
	Tracer Tracer
	// Context, when non-nil, is the run's base context: cancelling it
	// aborts context-aware platforms (the HTTP marketplace client) between
	// polls, and trace spans started under it parent the run's span tree.
	Context context.Context
}

// StaticVoting returns the static majority-voting policy: omega workers for
// every question (omega should be odd; the paper uses 5).
func StaticVoting(omega int) Policy { return voting.Static{Omega: omega} }

// DynamicVoting returns the paper's tuned dynamic majority-voting policy
// (Section 6.1): the first 30% of the run's questions get omega+2 workers
// and the last 30% get omega−2, at the same expected total budget as
// StaticVoting(omega). Early answers matter most because the preference
// tree reuses them transitively across many later pruning decisions. In
// our evaluation this trades a little precision for a solid recall gain;
// see SmartVoting for the variant that improves both.
func DynamicVoting(_ *Dataset, omega int) Policy {
	return voting.NewAnnealed(omega)
}

// SmartVoting returns the context-aware dynamic policy (an extension
// beyond the paper): early questions and top-importance questions
// (freq(u,v) in the top 5% for d) get omega+2 workers, while checks that
// still have backup dominators pending get omega−2. It beats static voting
// on both precision and recall at roughly 10-20% more worker budget.
func SmartVoting(d *Dataset, omega int) Policy {
	ix := skyline.NewIndex(d)
	sets := ix.DominatingSets()
	fc := ix.FreqCounter()
	var freqs []int
	const probeCap = 32
	for t, ds := range sets {
		for _, s := range ds {
			freqs = append(freqs, fc.Freq(s, t))
		}
		count := 0
		for i := 0; i < len(ds) && count < probeCap; i++ {
			for j := i + 1; j < len(ds) && count < probeCap; j++ {
				freqs = append(freqs, fc.Freq(ds[i], ds[j]))
				count++
			}
		}
	}
	sort.Ints(freqs)
	beta := 0
	if len(freqs) > 0 {
		idx := int(0.95 * float64(len(freqs)))
		if idx >= len(freqs) {
			idx = len(freqs) - 1
		}
		beta = freqs[idx]
	}
	return voting.NewSmart(omega, beta)
}

// Run computes the crowd-enabled skyline of d, asking pf for every missing
// preference. It implements the paper's CrowdSky algorithm with the
// configured pruning, parallelism and voting.
func Run(d *Dataset, pf Platform, cfg RunConfig) (*Result, error) {
	if d == nil {
		return nil, fmt.Errorf("crowdsky: nil dataset")
	}
	if pf == nil {
		return nil, fmt.Errorf("crowdsky: nil platform")
	}
	pruning := cfg.Pruning
	if pruning == (Pruning{}) && !cfg.DisableDefaultPruning {
		pruning = AllPruning()
	}
	opts := core.Options{
		P1: pruning.P1, P2: pruning.P2, P3: pruning.P3,
		Voting:       cfg.Voting,
		RoundRobinAC: cfg.RoundRobinAC,
		MaxQuestions: cfg.Budget,
		Tracer:       cfg.Tracer,
		Context:      cfg.Context,
	}
	switch cfg.Parallelism {
	case Serial:
		return core.CrowdSky(d, pf, opts), nil
	case ByDominatingSets:
		return core.ParallelDSet(d, pf, opts), nil
	case BySkylineLayers:
		return core.ParallelSL(d, pf, opts), nil
	default:
		return nil, fmt.Errorf("crowdsky: unknown parallelism %v", cfg.Parallelism)
	}
}

// RunBaseline computes the skyline with the paper's sort-based baseline
// (crowd-powered tournament sort of every crowd attribute). It asks far
// more questions than Run; provided for comparison studies.
func RunBaseline(d *Dataset, pf Platform, vote Policy) (*Result, error) {
	if d == nil || pf == nil {
		return nil, fmt.Errorf("crowdsky: nil dataset or platform")
	}
	return core.Baseline(d, pf, core.TournamentSort, vote), nil
}

// CrowdConfig configures NewSimulatedCrowd.
type CrowdConfig struct {
	// Reliability is each worker's probability of answering correctly
	// (the paper's p; its experiments use 0.8). 1 gives a perfect crowd.
	Reliability float64
	// PoolSize bounds the worker pool; 0 means unbounded identical
	// workers.
	PoolSize int
	// SpammerFraction is the fraction of pool workers answering randomly.
	SpammerFraction float64
	// Epsilon widens the latent-value band considered "equally preferred".
	Epsilon float64
	// Screen enables agreement-based worker screening (the programmatic
	// AMT "Masters" filter): workers who persistently disagree with the
	// majority stop receiving questions.
	Screen bool
	// Seed drives all simulated randomness.
	Seed int64
}

// NewSimulatedCrowd builds a noisy simulated platform answering from d's
// latent crowd-attribute values with majority voting over the workers the
// voting policy assigns.
func NewSimulatedCrowd(d *Dataset, cfg CrowdConfig) Platform {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool, err := crowd.NewPool(crowd.PoolConfig{
		Size:            cfg.PoolSize,
		Reliability:     cfg.Reliability,
		SpammerFraction: cfg.SpammerFraction,
	}, rng)
	if err != nil {
		// Invalid probabilities; fall back to a perfect crowd rather than
		// panic, surfacing the issue through deterministic answers.
		return crowd.NewPerfect(crowd.DatasetTruth{Data: d, Epsilon: cfg.Epsilon})
	}
	pf := crowd.NewSimulated(crowd.DatasetTruth{Data: d, Epsilon: cfg.Epsilon}, pool, rng)
	if cfg.Screen {
		pf.Quality = crowd.NewQuality()
	}
	return pf
}

// NewPerfectCrowd builds a platform whose answers always match d's latent
// ground truth — the setting under which the paper analyzes cost and
// latency.
func NewPerfectCrowd(d *Dataset) Platform {
	return crowd.NewPerfect(crowd.DatasetTruth{Data: d})
}

// NewInteractiveCrowd builds a platform that asks a human through in/out
// (used by cmd/crowdsky): answer 1, 2 or = per question.
func NewInteractiveCrowd(d *Dataset, in io.Reader, out io.Writer) Platform {
	return &crowd.Interactive{
		In:       in,
		Out:      out,
		Describe: func(t int) string { return d.Name(t) },
		AttrName: func(a int) string { return d.CrowdAttrName(a) },
	}
}

// Oracle returns the ground-truth skyline over all attributes, computed
// from the latent values. Only meaningful for datasets with latent values
// (synthetic or embedded); use it to grade accuracy.
func Oracle(d *Dataset) []int { return core.Oracle(d) }

// KnownSkyline returns the skyline over the known attributes only — the
// tuples that are in the skyline regardless of any crowd answer.
func KnownSkyline(d *Dataset) []int { return skyline.KnownSkyline(d) }

// PrecisionRecall grades a computed skyline against a reference following
// the paper's Section 6 methodology: only tuples newly retrieved by
// crowdsourcing (outside the known-attribute skyline) are compared, falling
// back to whole-skyline comparison when that delta is empty.
func PrecisionRecall(got, want, knownSkyline []int) (precision, recall float64) {
	return metrics.PrecisionRecall(got, want, knownSkyline)
}

package crowdsky

// One benchmark per table/figure of the paper's evaluation (Section 6).
// Each bench regenerates the experiment at a reduced scale (so the full
// suite runs in minutes) and reports the paper's metric — questions,
// rounds, dollars, precision/recall — via b.ReportMetric, alongside the
// usual ns/op. cmd/experiments regenerates the same experiments at
// configurable (up to paper) scale.

import (
	"math/rand"
	"testing"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/experiments"
	"crowdsky/internal/metrics"
	"crowdsky/internal/skyline"
	"crowdsky/internal/voting"
)

// benchCfg is the reduced-scale experiment configuration used by the
// figure benchmarks: 10% of the paper's cardinalities, one run (the bench
// loop supplies repetition).
func benchCfg(seed int64) experiments.Config {
	return experiments.Config{Runs: 1, Seed: seed, Scale: 0.1}
}

func reportSeries(b *testing.B, fig *experiments.Figure, unit string) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Y) > 0 {
			// Report the final sweep point (largest cardinality /
			// dimensionality), the headline comparison of each figure.
			b.ReportMetric(s.Y[len(s.Y)-1], s.Name+"_"+unit)
		}
	}
}

func benchFigure(b *testing.B, run func(cfg experiments.Config) (*experiments.Figure, error), unit string) {
	b.Helper()
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = run(benchCfg(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig, unit)
}

// --- Table 1-3: the toy walkthroughs -----------------------------------

func BenchmarkTable1DominatingSets(b *testing.B) {
	d := dataset.Toy()
	total := 0
	for i := 0; i < b.N; i++ {
		sets := skyline.DominatingSets(d)
		total = 0
		for _, s := range sets {
			total += len(s)
		}
	}
	b.ReportMetric(float64(total), "questions") // 26 per Example 3
}

func BenchmarkTable2CrowdSkyToy(b *testing.B) {
	d := dataset.Toy()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = core.CrowdSky(d, crowd.NewPerfect(crowd.DatasetTruth{Data: d}), core.AllPruning())
	}
	b.ReportMetric(float64(res.Questions), "questions") // 12 per Example 6
}

func BenchmarkTable3ParallelSLToy(b *testing.B) {
	d := dataset.Toy()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = core.ParallelSL(d, crowd.NewPerfect(crowd.DatasetTruth{Data: d}), core.AllPruning())
	}
	b.ReportMetric(float64(res.Questions), "questions") // 12 per Example 8
	b.ReportMetric(float64(res.Rounds), "rounds")       // 6 per Example 8
}

// --- Figures 6-7: number of questions ----------------------------------

func BenchmarkFig6aQuestionsINDCardinality(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig6(cfg, "a")
	}, "questions")
}

func BenchmarkFig6bQuestionsINDKnownDims(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig6(cfg, "b")
	}, "questions")
}

func BenchmarkFig6cQuestionsINDCrowdDims(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig6(cfg, "c")
	}, "questions")
}

func BenchmarkFig7aQuestionsANTCardinality(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig7(cfg, "a")
	}, "questions")
}

func BenchmarkFig7bQuestionsANTKnownDims(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig7(cfg, "b")
	}, "questions")
}

func BenchmarkFig7cQuestionsANTCrowdDims(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig7(cfg, "c")
	}, "questions")
}

// --- Figures 8-9: number of rounds --------------------------------------

func BenchmarkFig8aRoundsINDCardinality(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig8(cfg, "a")
	}, "rounds")
}

func BenchmarkFig8bRoundsANTCardinality(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig8(cfg, "b")
	}, "rounds")
}

func BenchmarkFig9aRoundsINDKnownDims(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig9(cfg, "a")
	}, "rounds")
}

func BenchmarkFig9bRoundsANTKnownDims(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig9(cfg, "b")
	}, "rounds")
}

// --- Figures 10-11: accuracy under noisy workers ------------------------

func BenchmarkFig10aPrecisionVoting(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig10(cfg, "a")
	}, "precision")
}

func BenchmarkFig10bRecallVoting(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig10(cfg, "b")
	}, "recall")
}

func BenchmarkFig11aPrecisionVsExisting(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig11(cfg, "a")
	}, "precision")
}

func BenchmarkFig11bRecallVsExisting(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		return experiments.Fig11(cfg, "b")
	}, "recall")
}

// --- Figure 12 and Section 6.2: real-life queries -----------------------

func BenchmarkFig12aMonetaryCost(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		cfg.Scale = 1 // the real datasets are small; run them as-is
		return experiments.Fig12(cfg, "a")
	}, "dollars")
}

func BenchmarkFig12bRealRounds(b *testing.B) {
	benchFigure(b, func(cfg experiments.Config) (*experiments.Figure, error) {
		cfg.Scale = 1
		return experiments.Fig12(cfg, "b")
	}, "rounds")
}

func BenchmarkRealAccuracy(b *testing.B) {
	var results []experiments.RealAccuracyResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg := experiments.Config{Runs: 1, Seed: int64(i)}
		results, err = experiments.RealAccuracy(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.Precision, r.Query+"_precision")
		b.ReportMetric(r.Recall, r.Query+"_recall")
	}
}

// --- Ablations and micro-benchmarks beyond the paper's figures ----------

// BenchmarkAblationPruning sweeps the pruning stages on a mid-size
// independent dataset, isolating each stage's question savings (the
// decomposition behind Figures 6-7).
func BenchmarkAblationPruning(b *testing.B) {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"DSet", core.Options{}},
		{"P1", core.Options{P1: true}},
		{"P1P2", core.Options{P1: true, P2: true}},
		{"P1P2P3", core.AllPruning()},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			d := dataset.MustGenerate(dataset.GenerateConfig{
				N: 400, KnownDims: 4, CrowdDims: 1, Distribution: dataset.Independent,
			}, rand.New(rand.NewSource(1)))
			var res *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = core.CrowdSky(d, crowd.NewPerfect(crowd.DatasetTruth{Data: d}), cfg.opts)
			}
			b.ReportMetric(float64(res.Questions), "questions")
		})
	}
}

// BenchmarkAblationSorters compares the two baseline sorters' cost/latency
// trade-off (Section 3's tournament vs bitonic choice).
func BenchmarkAblationSorters(b *testing.B) {
	for _, algo := range []core.SortAlgorithm{core.TournamentSort, core.BitonicSort} {
		b.Run(algo.String(), func(b *testing.B) {
			d := dataset.MustGenerate(dataset.GenerateConfig{
				N: 200, KnownDims: 2, CrowdDims: 1, Distribution: dataset.Independent,
			}, rand.New(rand.NewSource(1)))
			var res *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = core.Baseline(d, crowd.NewPerfect(crowd.DatasetTruth{Data: d}), algo, nil)
			}
			b.ReportMetric(float64(res.Questions), "questions")
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
	}
}

// BenchmarkMachinePartThroughput measures the pure machine-side cost of a
// full CrowdSky run (dominating sets, preference graph, pruning) with a
// zero-latency crowd — the overhead a deployment pays beyond waiting for
// workers.
func BenchmarkMachinePartThroughput(b *testing.B) {
	d := dataset.MustGenerate(dataset.GenerateConfig{
		N: 1000, KnownDims: 4, CrowdDims: 1, Distribution: dataset.AntiCorrelated,
	}, rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CrowdSky(d, crowd.NewPerfect(crowd.DatasetTruth{Data: d}), core.AllPruning())
	}
}

// BenchmarkVotingAccuracyTradeoff quantifies static vs dynamic voting error
// rates at equal budget on one mid-size noisy run.
func BenchmarkVotingAccuracyTradeoff(b *testing.B) {
	d := dataset.MustGenerate(dataset.GenerateConfig{
		N: 300, KnownDims: 4, CrowdDims: 1, Distribution: dataset.Independent,
	}, rand.New(rand.NewSource(3)))
	policies := []struct {
		name   string
		policy voting.Policy
	}{
		{"static", voting.Static{Omega: 5}},
		{"dynamic", experiments.DynamicPolicy(d, 5)},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			var prec, rec float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				pool, err := crowd.NewPool(crowd.PoolConfig{Reliability: 0.8}, rng)
				if err != nil {
					b.Fatal(err)
				}
				pf := crowd.NewSimulated(crowd.DatasetTruth{Data: d}, pool, rng)
				opts := core.AllPruning()
				opts.Voting = p.policy
				res := core.CrowdSky(d, pf, opts)
				prec, rec = metrics.PrecisionRecall(res.Skyline, core.Oracle(d), skyline.KnownSkyline(d))
			}
			b.ReportMetric(prec, "precision")
			b.ReportMetric(rec, "recall")
		})
	}
}

// BenchmarkAblationProbeOrder settles the paper's internal contradiction
// about P3's probing order (Algorithm 1 line 11 says ascending freq, the
// Section 3.4 prose says highest first) by measuring all three orderings.
func BenchmarkAblationProbeOrder(b *testing.B) {
	orders := []struct {
		name  string
		order core.ProbeOrder
	}{
		{"freq-desc", core.FreqDescending},
		{"freq-asc", core.FreqAscending},
		{"pair-order", core.PairOrder},
	}
	for _, o := range orders {
		b.Run(o.name, func(b *testing.B) {
			d := dataset.MustGenerate(dataset.GenerateConfig{
				N: 600, KnownDims: 4, CrowdDims: 1, Distribution: dataset.AntiCorrelated,
			}, rand.New(rand.NewSource(5)))
			opts := core.AllPruning()
			opts.ProbeOrder = o.order
			var res *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = core.CrowdSky(d, crowd.NewPerfect(crowd.DatasetTruth{Data: d}), opts)
			}
			b.ReportMetric(float64(res.Questions), "questions")
		})
	}
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrecisionRecall(t *testing.T) {
	known := []int{1, 2}
	cases := []struct {
		name      string
		got, want []int
		p, r      float64
	}{
		{"perfect", []int{1, 2, 3, 4}, []int{1, 2, 3, 4}, 1, 1},
		{"missed one", []int{1, 2, 3}, []int{1, 2, 3, 4}, 1, 0.5},
		{"extra one", []int{1, 2, 3, 4, 5}, []int{1, 2, 3, 4}, 2.0 / 3.0, 1},
		{"disjoint", []int{1, 2, 5}, []int{1, 2, 3}, 0, 0},
		{"known only vs known only (Q1 case)", []int{1, 2}, []int{1, 2}, 1, 1},
		{"got empty delta", []int{1, 2}, []int{1, 2, 3}, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, r := PrecisionRecall(c.got, c.want, known)
			if math.Abs(p-c.p) > 1e-12 || math.Abs(r-c.r) > 1e-12 {
				t.Errorf("P,R = %v,%v want %v,%v", p, r, c.p, c.r)
			}
		})
	}
}

// TestPrecisionRecallBounds: precision and recall always land in [0,1].
func TestPrecisionRecallBounds(t *testing.T) {
	prop := func(got, want, known []int) bool {
		p, r := PrecisionRecall(got, want, known)
		return p >= 0 && p <= 1 && r >= 0 && r <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Errorf("F1(0,0) != 0")
	}
	if math.Abs(F1(1, 1)-1) > 1e-12 {
		t.Errorf("F1(1,1) != 1")
	}
	if math.Abs(F1(0.5, 1)-2.0/3.0) > 1e-12 {
		t.Errorf("F1(0.5,1) = %v", F1(0.5, 1))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
	s = Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 || math.Abs(s.Std-2) > 1e-12 || s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSameSet(t *testing.T) {
	if !SameSet([]int{1, 2, 3}, []int{3, 2, 1}) {
		t.Errorf("order should not matter")
	}
	if !SameSet([]int{1, 1, 2}, []int{2, 1}) {
		t.Errorf("duplicates should not matter")
	}
	if SameSet([]int{1, 2}, []int{1, 3}) || SameSet([]int{1}, []int{1, 2}) {
		t.Errorf("different sets reported equal")
	}
	if !SameSet(nil, nil) {
		t.Errorf("empty sets differ")
	}
}

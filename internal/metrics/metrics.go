// Package metrics implements the accuracy and aggregation measures of
// Section 6: precision and recall over the newly retrieved skyline tuples
// SKY_A(R) − SKY_AK(R), and multi-run mean/standard-deviation summaries
// (the paper reports averages over 10 runs).
package metrics

import "math"

// PrecisionRecall grades a computed skyline against the ground truth.
// Following Section 6.1, only tuples newly retrieved by crowdsourcing
// count: members of knownSkyline (SKY_AK(R), correct by construction) are
// excluded from both sides. When the exclusion empties both sides — as in
// query Q1, whose skyline over A equals the skyline over AK — the full
// skylines are compared instead, matching the paper's "same skyline as the
// ground truth, yielding Precision = 1.0 and Recall = 1.0" reading.
//
// Precision is |got ∩ want| / |got| and recall is |got ∩ want| / |want|;
// an empty denominator yields 1 when the other side is empty too, else 0.
func PrecisionRecall(got, want, knownSkyline []int) (precision, recall float64) {
	base := toSet(knownSkyline)
	g := deltaSet(got, base)
	w := deltaSet(want, base)
	if len(g) == 0 && len(w) == 0 {
		g = toSet(got)
		w = toSet(want)
	}
	hit := 0
	for t := range g {
		if w[t] {
			hit++
		}
	}
	precision = ratio(hit, len(g), len(w))
	recall = ratio(hit, len(w), len(g))
	return precision, recall
}

// F1 combines precision and recall into the balanced F-measure.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

func toSet(ids []int) map[int]bool {
	s := make(map[int]bool, len(ids))
	for _, t := range ids {
		s[t] = true
	}
	return s
}

func deltaSet(ids []int, base map[int]bool) map[int]bool {
	s := make(map[int]bool, len(ids))
	for _, t := range ids {
		if !base[t] {
			s[t] = true
		}
	}
	return s
}

func ratio(hit, denom, other int) float64 {
	if denom == 0 {
		if other == 0 {
			return 1
		}
		return 0
	}
	return float64(hit) / float64(denom)
}

// Summary aggregates a series of per-run measurements.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes the mean, population standard deviation, minimum and
// maximum of vals. An empty input yields a zero Summary.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vals), Min: vals[0], Max: vals[0]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	varsum := 0.0
	for _, v := range vals {
		d := v - s.Mean
		varsum += d * d
	}
	s.Std = math.Sqrt(varsum / float64(len(vals)))
	return s
}

// SameSet reports whether two index slices contain exactly the same
// elements, regardless of order or duplicates.
func SameSet(a, b []int) bool {
	as, bs := toSet(a), toSet(b)
	if len(as) != len(bs) {
		return false
	}
	for t := range as {
		if !bs[t] {
			return false
		}
	}
	return true
}

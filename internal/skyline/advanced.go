package skyline

import (
	"sort"

	"crowdsky/internal/dataset"
)

// This file implements two further machine skyline algorithms beyond BNL
// and SFS, both classics of the literature the paper builds on:
//
//   - DivideConquer: the median-partitioning algorithm of Börzsönyi et al.
//     (the paper's reference [2], which also defined the benchmark data).
//   - SkyTree: pivot-based space partitioning with region-level dominance
//     and incomparability skipping, following the BSkyTree idea of Lee and
//     Hwang (the paper's reference [10], the source of the
//     sharing-incomparability property CrowdSky's Lemma 1 exploits).
//
// All skyline algorithms in this package are cross-validated against each
// other by property tests; CrowdSky's machine part can use any of them.

// DivideConquer computes SKY_AK(R) by recursive median partitioning on the
// first attribute: solve both halves, then remove tuples of the
// worse half dominated by skyline tuples of the better half. Returns
// tuple indices in ascending order.
func DivideConquer(d *dataset.Dataset) []int {
	n := d.N()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sky := dcSkyline(d, idx, 0)
	sort.Ints(sky)
	return sky
}

// dcSkyline solves the skyline of the given tuples, recursing on the
// median of attribute attr (cycling through attributes as recursion
// deepens to avoid degenerate splits on duplicated values).
func dcSkyline(d *dataset.Dataset, idx []int, depth int) []int {
	if len(idx) <= 8 {
		return bnlOn(d, idx)
	}
	attr := depth % d.KnownDims()
	// Partition around the median value of attr.
	vals := make([]float64, len(idx))
	for i, t := range idx {
		vals[i] = d.Known(t, attr)
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	var better, worse []int
	for _, t := range idx {
		if d.Known(t, attr) < median {
			better = append(better, t)
		} else {
			worse = append(worse, t)
		}
	}
	if len(better) == 0 || len(worse) == 0 {
		// Degenerate split (many duplicates): fall back to a scan.
		return bnlOn(d, idx)
	}
	skyBetter := dcSkyline(d, better, depth+1)
	skyWorse := dcSkyline(d, worse, depth+1)
	// Merge: a worse-half skyline tuple survives only if no better-half
	// skyline tuple dominates it.
	merged := make([]int, len(skyBetter), len(skyBetter)+len(skyWorse))
	copy(merged, skyBetter)
	for _, t := range skyWorse {
		dominated := false
		for _, s := range skyBetter {
			if DominatesKnown(d, s, t) {
				dominated = true
				break
			}
		}
		if !dominated {
			merged = append(merged, t)
		}
	}
	return merged
}

// bnlOn runs a window scan over an index subset.
func bnlOn(d *dataset.Dataset, idx []int) []int {
	var window []int
	for _, t := range idx {
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if dominated {
				keep = append(keep, w)
				continue
			}
			switch {
			case DominatesKnown(d, w, t):
				dominated = true
				keep = append(keep, w)
			case DominatesKnown(d, t, w):
				// evicted
			default:
				keep = append(keep, w)
			}
		}
		window = keep
		if !dominated {
			window = append(window, t)
		}
	}
	return window
}

// SkyTree computes SKY_AK(R) with pivot-based space partitioning: a pivot
// tuple splits the data into 2^d lattice regions by the per-attribute
// comparison bitmask; regions whose mask is a strict superset of another's
// can only contain dominated-or-incomparable tuples, so whole branch pairs
// are skipped without any tuple-level test (the sharing-incomparability
// idea of [10]). Returns tuple indices in ascending order.
func SkyTree(d *dataset.Dataset) []int {
	if d.KnownDims() > 16 {
		// Mask arithmetic below packs one bit per attribute; fall back for
		// absurd dimensionalities.
		return SFS(d)
	}
	n := d.N()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var sky []int
	skyTreeRec(d, idx, &sky)
	sort.Ints(sky)
	return sky
}

// skyTreeRec appends the skyline of idx to out.
func skyTreeRec(d *dataset.Dataset, idx []int, out *[]int) {
	if len(idx) == 0 {
		return
	}
	if len(idx) <= 16 {
		*out = append(*out, bnlOn(d, idx)...)
		return
	}
	dk := d.KnownDims()
	// Pivot: the tuple minimizing the attribute sum (cheap and central,
	// keeping the lattice balanced).
	pivot := idx[0]
	best := attrSum(d, pivot)
	for _, t := range idx[1:] {
		if s := attrSum(d, t); s < best {
			best = s
			pivot = t
		}
	}
	// Partition by comparison mask against the pivot: bit j set means the
	// tuple is strictly worse than the pivot on attribute j. Tuples the
	// pivot dominates are dropped outright; mask 0 then only holds exact
	// twins of the pivot (the pivot's minimal sum forbids anything
	// dominating it), which stay in play as incomparable tuples.
	// At most one region per surviving tuple and one per non-empty mask,
	// whichever bound is tighter.
	nRegions := len(idx)
	if dk < 10 && (1<<dk)-1 < nRegions {
		nRegions = (1 << dk) - 1
	}
	regions := make(map[int][]int, nRegions)
	for _, t := range idx {
		if t == pivot {
			continue
		}
		if DominatesKnown(d, pivot, t) {
			continue // the pivot alone settles t
		}
		mask := 0
		for j := 0; j < dk; j++ {
			if d.Known(t, j) > d.Known(pivot, j) {
				mask |= 1 << j
			}
		}
		regions[mask] = append(regions[mask], t)
	}
	*out = append(*out, pivot)

	// Region-level pruning: tuples in region A can only dominate tuples in
	// region B if A's mask is a subset of B's (on every attribute where A
	// is worse than the pivot, B must be too). Solve regions in ascending
	// popcount order; filter each region's tuples against the local
	// skylines of its subset regions, then recurse.
	masks := make([]int, 0, len(regions))
	for m := range regions {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(a, b int) bool {
		pa, pb := popcount(masks[a]), popcount(masks[b])
		if pa != pb {
			return pa < pb
		}
		return masks[a] < masks[b]
	})
	localSky := make(map[int][]int, len(masks))
	for _, m := range masks {
		candidates := regions[m]
		// Filter against solved subset regions only (sharing
		// incomparability: disjoint-mask regions need no tests).
		var survivors []int
		for _, t := range candidates {
			dominated := false
			for _, m2 := range masks {
				if m2 == m || m2&m != m2 || popcount(m2) >= popcount(m) {
					continue
				}
				for _, s := range localSky[m2] {
					if DominatesKnown(d, s, t) {
						dominated = true
						break
					}
				}
				if dominated {
					break
				}
			}
			if !dominated {
				survivors = append(survivors, t)
			}
		}
		var regionSky []int
		skyTreeRec(d, survivors, &regionSky)
		localSky[m] = regionSky
		*out = append(*out, regionSky...)
	}
}

func attrSum(d *dataset.Dataset, t int) float64 {
	sum := 0.0
	for j := 0; j < d.KnownDims(); j++ {
		sum += d.Known(t, j)
	}
	return sum
}

func popcount(v int) int {
	c := 0
	for v != 0 {
		v &= v - 1
		c++
	}
	return c
}

package skyline

import (
	"sort"

	"crowdsky/internal/dataset"
)

// BNL computes SKY_AK(R) with the block-nested-loops algorithm of
// Börzsönyi et al.: maintain a window of incomparable candidates; each
// incoming tuple is dropped if dominated, replaces any window tuples it
// dominates, and joins the window otherwise. Returns tuple indices in
// ascending order.
func BNL(d *dataset.Dataset) []int {
	var window []int
	for t := 0; t < d.N(); t++ {
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if dominated {
				keep = append(keep, w)
				continue
			}
			switch {
			case DominatesKnown(d, w, t):
				dominated = true
				keep = append(keep, w)
			case DominatesKnown(d, t, w):
				// w is evicted.
			default:
				keep = append(keep, w)
			}
		}
		window = keep
		if !dominated {
			window = append(window, t)
		}
	}
	sort.Ints(window)
	return window
}

// SFS computes SKY_AK(R) with the sort-filter-skyline algorithm: tuples are
// scanned in ascending order of an entropy-like monotone score (here the
// attribute sum), which guarantees no later tuple can dominate an earlier
// one, so a single filtering pass suffices. Returns tuple indices in
// ascending order.
func SFS(d *dataset.Dataset) []int {
	n := d.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	score := make([]float64, n)
	for i := 0; i < n; i++ {
		row := d.KnownRow(i)
		for _, v := range row {
			score[i] += v
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return score[order[a]] < score[order[b]] })

	var sky []int
	for _, t := range order {
		dominated := false
		for _, s := range sky {
			if DominatesKnown(d, s, t) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, t)
		}
	}
	sort.Ints(sky)
	return sky
}

// KnownSkyline computes SKY_AK(R). It is an alias for SFS, the faster of
// the implemented machine algorithms; BNL is retained as an independent
// implementation for cross-checking.
func KnownSkyline(d *dataset.Dataset) []int { return SFS(d) }

// Layers computes the skyline layers SL1, SL2, ... of Definition 6: SL1 is
// SKY_AK(R) and SL_i is the skyline of what remains after peeling the first
// i-1 layers. Every tuple appears in exactly one layer. Each layer's
// indices are in ascending order.
func Layers(d *dataset.Dataset) [][]int {
	n := d.N()
	remaining := make([]bool, n)
	for i := range remaining {
		remaining[i] = true
	}
	left := n
	var layers [][]int
	for left > 0 {
		var layer []int
		for t := 0; t < n; t++ {
			if !remaining[t] {
				continue
			}
			dominated := false
			for s := 0; s < n && !dominated; s++ {
				if s != t && remaining[s] && DominatesKnown(d, s, t) {
					dominated = true
				}
			}
			if !dominated {
				layer = append(layer, t)
			}
		}
		for _, t := range layer {
			remaining[t] = false
		}
		left -= len(layer)
		layers = append(layers, layer)
	}
	return layers
}

// TopKDominating returns the k tuples with the highest domination counts
// over the known attributes (most-dominating first, ties by index) — the
// top-k dominating query of the dominant-graph line of work the paper
// cites ([27]). Unlike the skyline it always returns exactly
// min(k, n) tuples, which makes it a useful companion readout when the
// skyline itself is too large.
func TopKDominating(d *dataset.Dataset, k int) []int {
	n := d.N()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	counts := make([]int, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s != t && DominatesKnown(d, s, t) {
				counts[s]++
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if counts[order[a]] != counts[order[b]] {
			return counts[order[a]] > counts[order[b]]
		}
		return order[a] < order[b]
	})
	return order[:k]
}

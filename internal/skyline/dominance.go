// Package skyline is the machine-only skyline substrate: dominance tests
// over the known attributes, classic skyline algorithms (BNL, SFS), skyline
// layers (Definition 6), dominating sets (Definition 5), immediate
// dominators c(t) for the skyline-layer parallelization, co-domination
// frequencies freq(u,v) (Sections 3.4 and 5), and a ground-truth oracle
// over the full attribute set A = AK ∪ AC.
//
// Everything here runs without crowds; the crowd-enabled algorithms in
// package core build on these primitives for their machine part, and the
// experiments use the oracle for accuracy measurement.
package skyline

import "crowdsky/internal/dataset"

// DominatesKnown reports s ≺AK t (Definition 1 restricted to AK): s is no
// worse than t on every known attribute and strictly better on at least
// one. Smaller values are preferred.
func DominatesKnown(d *dataset.Dataset, s, t int) bool {
	sr, tr := d.KnownRow(s), d.KnownRow(t)
	strict := false
	for j := range sr {
		switch {
		case sr[j] > tr[j]:
			return false
		case sr[j] < tr[j]:
			strict = true
		}
	}
	return strict
}

// EqualKnown reports whether s and t have identical values on every known
// attribute (the degenerate case of Algorithm 1, lines 1-3).
func EqualKnown(d *dataset.Dataset, s, t int) bool {
	sr, tr := d.KnownRow(s), d.KnownRow(t)
	for j := range sr {
		if !EqEps(sr[j], tr[j]) {
			return false
		}
	}
	return true
}

// IncomparableKnown reports s ≺≻AK t: neither tuple dominates the other on
// the known attributes and they are not identical.
func IncomparableKnown(d *dataset.Dataset, s, t int) bool {
	return !DominatesKnown(d, s, t) && !DominatesKnown(d, t, s) && !EqualKnown(d, s, t)
}

// dominatesFull reports s ≺A t over all of A = AK ∪ AC using the latent
// crowd values. Only the oracle may use this.
func dominatesFull(d *dataset.Dataset, s, t int) bool {
	strict := false
	sr, tr := d.KnownRow(s), d.KnownRow(t)
	for j := range sr {
		switch {
		case sr[j] > tr[j]:
			return false
		case sr[j] < tr[j]:
			strict = true
		}
	}
	for j := 0; j < d.CrowdDims(); j++ {
		sv, tv := d.Latent(s, j), d.Latent(t, j)
		switch {
		case sv > tv:
			return false
		case sv < tv:
			strict = true
		}
	}
	return strict
}

// OracleSkyline computes SKY_A(R) from the latent ground truth: the set of
// tuples not dominated over the full attribute set. It is the accuracy
// reference for every experiment (Section 6) and must never be consulted by
// a crowd-enabled algorithm.
func OracleSkyline(d *dataset.Dataset) []int {
	var sky []int
	n := d.N()
	for t := 0; t < n; t++ {
		dominated := false
		for s := 0; s < n && !dominated; s++ {
			if s != t && dominatesFull(d, s, t) {
				dominated = true
			}
		}
		if !dominated {
			sky = append(sky, t)
		}
	}
	return sky
}

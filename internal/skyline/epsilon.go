package skyline

import "math"

// Eps is the tolerance under which two attribute values are considered
// equal. Attribute values flow through CSV parsing, synthetic generators
// and float arithmetic, so exact == misclassifies values that differ only
// in the last few bits; the paper's semantics ("identical values on every
// known attribute", Algorithm 1 lines 1-3) intend value equality, not bit
// equality. The tolerance is absolute: attribute values in this
// repository are either raw dataset units or normalized to [0, 1], and
// 1e-9 sits far below any meaningful attribute difference in both.
const Eps = 1e-9

// EqEps reports a == b within the Eps tolerance — the only sanctioned
// float equality in dominance code (the floateq analyzer forbids ==/!=).
func EqEps(a, b float64) bool {
	return math.Abs(a-b) <= Eps
}

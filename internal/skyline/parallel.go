package skyline

import (
	"runtime"
	"sync"

	"crowdsky/internal/dataset"
)

// The machine part of a crowd-enabled query is quadratic in the
// cardinality (dominating sets, oracle grading). The constructions are
// embarrassingly parallel across target tuples, so they shard across
// CPUs; results are deterministic regardless of scheduling because each
// shard owns disjoint output slots.
//
// The *Parallel functions below are the row-scan kernels: they walk
// [][]float64 rows and re-run DominatesKnown per pair per construction.
// Hot callers should build a skyline.Index (engine.go) instead, which
// computes the dominance relation once over a columnar layout and derives
// every construction from the bitmap. The scan kernels stay as the
// independent reference implementations for the differential tests and
// as the "before" side of the benchmark trajectory.

// parallelThreshold is the tuple count below which sharding costs more
// than it saves. It is a variable (not a const) so tests can lower it to
// drive the sharded paths, race detector included, on small inputs.
var parallelThreshold = 2048

// maxWorkers caps the build/derivation parallelism; 0 means
// runtime.NumCPU(). See SetMaxWorkers.
var maxWorkers = 0

// SetMaxWorkers caps the number of workers the sharded kernels and the
// parallel index build use (0 restores the runtime.NumCPU() default) and
// returns the previous cap. Every kernel writes disjoint output slots, so
// the result is bit-for-bit identical for every worker count — the knob
// exists for the bench harness (serial-vs-parallel build rows, the
// core-scaling curve) and for the differential tests that prove that
// invariant. It is not synchronized with in-flight builds; set it between
// builds only.
func SetMaxWorkers(n int) (prev int) {
	prev = maxWorkers
	maxWorkers = n
	return prev
}

// workerCount returns the effective worker cap.
func workerCount() int {
	if maxWorkers > 0 {
		return maxWorkers
	}
	return runtime.NumCPU()
}

// shard runs fn over [0, n) in parallel chunks and waits for completion.
func shard(n int, fn func(lo, hi int)) { shardSized(n, n, fn) }

// shardSized runs fn over [0, units) in parallel chunks, deciding whether
// to fan out from workload (the number of tuples the pass touches) rather
// than from the unit count. Passes whose natural partition is coarser
// than tuples — the word-sharded dominating-set scatter partitions bitmap
// words, each worth 64 tuples — stay parallel when the work justifies it
// even though their unit count alone would sit under the threshold.
func shardSized(units, workload int, fn func(lo, hi int)) {
	workers := workerCount()
	if workers > units {
		workers = units
	}
	if workers <= 1 || workload < parallelThreshold {
		fn(0, units)
		return
	}
	var wg sync.WaitGroup
	chunk := (units + workers - 1) / workers
	for lo := 0; lo < units; lo += chunk {
		hi := lo + chunk
		if hi > units {
			hi = units
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// DominatingSetsParallel computes the same result as DominatingSets using
// all CPUs, one row scan per pair. Prefer (*Index).DominatingSets when
// other constructions over the same dataset are needed too.
func DominatingSetsParallel(d *dataset.Dataset) [][]int {
	n := d.N()
	sets := make([][]int, n)
	shard(n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			for s := 0; s < n; s++ {
				if s != t && DominatesKnown(d, s, t) {
					sets[t] = append(sets[t], s)
				}
			}
		}
	})
	return sets
}

// OracleSkylineParallel computes the same result as OracleSkyline using
// all CPUs. (*Index).OracleSkyline grades from the dominance bitmap
// instead when an index is already built.
func OracleSkylineParallel(d *dataset.Dataset) []int {
	n := d.N()
	flags := make([]bool, n)
	shard(n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dominated := false
			for s := 0; s < n && !dominated; s++ {
				if s != t && dominatesFull(d, s, t) {
					dominated = true
				}
			}
			flags[t] = !dominated
		}
	})
	var sky []int
	for t, in := range flags {
		if in {
			sky = append(sky, t)
		}
	}
	return sky
}

// ImmediateDominatorsParallel computes the same result as
// ImmediateDominators using all CPUs, O(|DS|²·d) per target.
// (*Index).ImmediateDominators replaces the inner rescan with one bitset
// intersection test per member.
func ImmediateDominatorsParallel(d *dataset.Dataset, sets [][]int) [][]int {
	n := d.N()
	im := make([][]int, n)
	shard(n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			ds := sets[t]
			for _, s := range ds {
				immediate := true
				for _, x := range ds {
					if x != s && DominatesKnown(d, s, x) {
						immediate = false
						break
					}
				}
				if immediate {
					im[t] = append(im[t], s)
				}
			}
		}
	})
	return im
}

package skyline

import (
	"runtime"
	"sync"

	"crowdsky/internal/dataset"
)

// The machine part of a crowd-enabled query is quadratic in the
// cardinality (dominating sets, oracle grading). The constructions are
// embarrassingly parallel across target tuples, so they shard across
// CPUs; results are deterministic regardless of scheduling because each
// shard owns disjoint output slots.
//
// The *Parallel functions below are the row-scan kernels: they walk
// [][]float64 rows and re-run DominatesKnown per pair per construction.
// Hot callers should build a skyline.Index (engine.go) instead, which
// computes the dominance relation once over a columnar layout and derives
// every construction from the bitmap. The scan kernels stay as the
// independent reference implementations for the differential tests and
// as the "before" side of the benchmark trajectory.

// parallelThreshold is the tuple count below which sharding costs more
// than it saves. It is a variable (not a const) so tests can lower it to
// drive the sharded paths, race detector included, on small inputs.
var parallelThreshold = 2048

// shard runs fn over [0, n) in parallel chunks and waits for completion.
func shard(n int, fn func(lo, hi int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parallelThreshold {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// DominatingSetsParallel computes the same result as DominatingSets using
// all CPUs, one row scan per pair. Prefer (*Index).DominatingSets when
// other constructions over the same dataset are needed too.
func DominatingSetsParallel(d *dataset.Dataset) [][]int {
	n := d.N()
	sets := make([][]int, n)
	shard(n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			for s := 0; s < n; s++ {
				if s != t && DominatesKnown(d, s, t) {
					sets[t] = append(sets[t], s)
				}
			}
		}
	})
	return sets
}

// OracleSkylineParallel computes the same result as OracleSkyline using
// all CPUs. (*Index).OracleSkyline grades from the dominance bitmap
// instead when an index is already built.
func OracleSkylineParallel(d *dataset.Dataset) []int {
	n := d.N()
	flags := make([]bool, n)
	shard(n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dominated := false
			for s := 0; s < n && !dominated; s++ {
				if s != t && dominatesFull(d, s, t) {
					dominated = true
				}
			}
			flags[t] = !dominated
		}
	})
	var sky []int
	for t, in := range flags {
		if in {
			sky = append(sky, t)
		}
	}
	return sky
}

// ImmediateDominatorsParallel computes the same result as
// ImmediateDominators using all CPUs, O(|DS|²·d) per target.
// (*Index).ImmediateDominators replaces the inner rescan with one bitset
// intersection test per member.
func ImmediateDominatorsParallel(d *dataset.Dataset, sets [][]int) [][]int {
	n := d.N()
	im := make([][]int, n)
	shard(n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			ds := sets[t]
			for _, s := range ds {
				immediate := true
				for _, x := range ds {
					if x != s && DominatesKnown(d, s, x) {
						immediate = false
						break
					}
				}
				if immediate {
					im[t] = append(im[t], s)
				}
			}
		}
	})
	return im
}

package skyline

import (
	"crowdsky/internal/bitset"
	"crowdsky/internal/dataset"
)

// DominatingSets computes DS(t) = {s : s ≺AK t} for every tuple
// (Definition 5). The result is indexed by tuple: sets[t] lists the
// dominators of t in ascending index order. Tuples in SKY_AK(R) have empty
// dominating sets.
func DominatingSets(d *dataset.Dataset) [][]int {
	n := d.N()
	sets := make([][]int, n)
	for t := 0; t < n; t++ {
		for s := 0; s < n; s++ {
			if s != t && DominatesKnown(d, s, t) {
				sets[t] = append(sets[t], s)
			}
		}
	}
	return sets
}

// ImmediateDominators computes c(t) for every tuple: the dominators of t
// that have no intermediate dominator between themselves and t, i.e.
// c(t) = {s ∈ DS(t) : ¬∃x ∈ DS(t) with s ≺AK x}. These are the direct
// edges of the dominance graph drawn across skyline layers in Figure 5, and
// drive the dependency check of Algorithm 2 (ParallelSL). sets must be the
// result of DominatingSets on the same dataset.
func ImmediateDominators(d *dataset.Dataset, sets [][]int) [][]int {
	n := d.N()
	im := make([][]int, n)
	for t := 0; t < n; t++ {
		ds := sets[t]
		for _, s := range ds {
			immediate := true
			for _, x := range ds {
				if x != s && DominatesKnown(d, s, x) {
					immediate = false
					break
				}
			}
			if immediate {
				im[t] = append(im[t], s)
			}
		}
	}
	return im
}

// FreqCounter answers co-domination frequency queries
//
//	freq(u,v) = |{x ∈ R : u ≺AK x ∧ v ≺AK x}|
//
// used both to order probing questions (Section 3.4) and to grade question
// importance for dynamic voting (Section 5). It precomputes, for each
// tuple, the bit set of tuples it dominates, so each query is a single
// AND-popcount pass.
type FreqCounter struct {
	// dominated[u] = {x : u ≺AK x}. When pos is nil both the row index u
	// and the member bits x are original tuple indices; an index-backed
	// counter (Index.FreqCounter) stores rows and bits in sorted-position
	// space and remaps queries through pos. Frequencies are counts, so the
	// relabeling is invisible to callers.
	dominated []bitset.Set
	pos       []int // original index -> row; nil means identity
}

// NewFreqCounter builds the counter from the dominating sets of d (the
// inverse relation of what it stores). sets must come from DominatingSets
// on the same dataset.
func NewFreqCounter(d *dataset.Dataset, sets [][]int) *FreqCounter {
	n := d.N()
	fc := &FreqCounter{dominated: make([]bitset.Set, n)}
	for u := 0; u < n; u++ {
		fc.dominated[u] = bitset.New(n)
	}
	for t, ds := range sets {
		for _, s := range ds {
			fc.dominated[s].Add(t)
		}
	}
	return fc
}

// Freq returns freq(u,v), the number of tuples dominated by both u and v
// on the known attributes. Tuples excluded from an alive-restricted index
// dominate nothing, so any query involving one returns 0.
//
//skylint:hotpath
func (fc *FreqCounter) Freq(u, v int) int {
	if fc.pos != nil {
		u, v = fc.pos[u], fc.pos[v]
		if u < 0 || v < 0 {
			return 0
		}
	}
	return fc.dominated[u].AndCount(fc.dominated[v])
}

package skyline

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crowdsky/internal/dataset"
)

func randData(seed int64, n, dk, dc int, dist dataset.Distribution) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	return dataset.MustGenerate(dataset.GenerateConfig{N: n, KnownDims: dk, CrowdDims: dc, Distribution: dist}, rng)
}

func TestDominance(t *testing.T) {
	d := dataset.MustNew([][]float64{
		{1, 1}, // 0 dominates everything below
		{2, 2}, // 1
		{1, 2}, // 2
		{2, 1}, // 3
		{1, 1}, // 4: duplicate of 0
	}, [][]float64{{0}, {0}, {0}, {0}, {0}})
	if !DominatesKnown(d, 0, 1) || DominatesKnown(d, 1, 0) {
		t.Errorf("plain dominance wrong")
	}
	if !DominatesKnown(d, 0, 2) || !DominatesKnown(d, 0, 3) {
		t.Errorf("weak+strict dominance wrong")
	}
	if DominatesKnown(d, 2, 3) || DominatesKnown(d, 3, 2) {
		t.Errorf("incomparable pair reported dominated")
	}
	if !IncomparableKnown(d, 2, 3) {
		t.Errorf("IncomparableKnown wrong")
	}
	if DominatesKnown(d, 0, 4) || DominatesKnown(d, 4, 0) {
		t.Errorf("identical tuples dominate each other")
	}
	if !EqualKnown(d, 0, 4) || EqualKnown(d, 0, 1) {
		t.Errorf("EqualKnown wrong")
	}
	if IncomparableKnown(d, 0, 4) {
		t.Errorf("identical tuples reported incomparable")
	}
}

// TestBNLvsSFS: two independent skyline implementations agree on random
// data (cross-validation property).
func TestBNLvsSFS(t *testing.T) {
	prop := func(seed int64, rawN uint8, rawDK, rawDist uint8) bool {
		n := int(rawN)%100 + 1
		dk := int(rawDK)%4 + 1
		dist := dataset.Distribution(int(rawDist) % 3)
		d := randData(seed, n, dk, 0, dist)
		a := BNL(d)
		b := SFS(d)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSkylineDefinition: every skyline member is undominated and every
// non-member is dominated (the defining property, checked brute-force).
func TestSkylineDefinition(t *testing.T) {
	d := randData(3, 80, 3, 0, dataset.AntiCorrelated)
	sky := KnownSkyline(d)
	inSky := make(map[int]bool)
	for _, s := range sky {
		inSky[s] = true
	}
	for t2 := 0; t2 < d.N(); t2++ {
		dominated := false
		for s := 0; s < d.N(); s++ {
			if s != t2 && DominatesKnown(d, s, t2) {
				dominated = true
				break
			}
		}
		if inSky[t2] == dominated {
			t.Errorf("tuple %d: inSkyline=%v dominated=%v", t2, inSky[t2], dominated)
		}
	}
}

// TestLayersPartition: skyline layers partition the dataset; each layer is
// the skyline of what remains; no tuple in layer i is dominated by a tuple
// in layer j > i.
func TestLayersPartition(t *testing.T) {
	d := randData(5, 60, 2, 0, dataset.Independent)
	layers := Layers(d)
	seen := make(map[int]int)
	total := 0
	for li, layer := range layers {
		total += len(layer)
		for _, t2 := range layer {
			if prev, dup := seen[t2]; dup {
				t.Fatalf("tuple %d in layers %d and %d", t2, prev, li)
			}
			seen[t2] = li
		}
	}
	if total != d.N() {
		t.Fatalf("layers cover %d of %d tuples", total, d.N())
	}
	for s := 0; s < d.N(); s++ {
		for t2 := 0; t2 < d.N(); t2++ {
			if s != t2 && DominatesKnown(d, s, t2) && seen[s] >= seen[t2] {
				t.Errorf("dominator %d (layer %d) not in earlier layer than %d (layer %d)",
					s, seen[s], t2, seen[t2])
			}
		}
	}
}

// TestDominatingSetsDefinition: DS(t) is exactly the set of tuples
// dominating t, and |DS| is monotone along dominance (Lemma 3).
func TestDominatingSetsDefinition(t *testing.T) {
	d := randData(7, 50, 3, 0, dataset.AntiCorrelated)
	sets := DominatingSets(d)
	for t2 := 0; t2 < d.N(); t2++ {
		in := make(map[int]bool)
		for _, s := range sets[t2] {
			in[s] = true
			if !DominatesKnown(d, s, t2) {
				t.Errorf("DS(%d) contains non-dominator %d", t2, s)
			}
		}
		for s := 0; s < d.N(); s++ {
			if s != t2 && DominatesKnown(d, s, t2) && !in[s] {
				t.Errorf("DS(%d) misses dominator %d", t2, s)
			}
		}
		// Lemma 3: s ∈ DS(t) implies |DS(s)| < |DS(t)|.
		for _, s := range sets[t2] {
			if len(sets[s]) >= len(sets[t2]) {
				t.Errorf("|DS(%d)| = %d >= |DS(%d)| = %d despite dominance",
					s, len(sets[s]), t2, len(sets[t2]))
			}
		}
	}
}

// TestImmediateDominatorsDefinition: c(t) ⊆ DS(t) with no intermediate
// dominator, and every DS member is reachable from some immediate
// dominator through the dominance DAG.
func TestImmediateDominatorsDefinition(t *testing.T) {
	d := randData(11, 40, 2, 0, dataset.Independent)
	sets := DominatingSets(d)
	imm := ImmediateDominators(d, sets)
	for t2 := 0; t2 < d.N(); t2++ {
		inDS := make(map[int]bool)
		for _, s := range sets[t2] {
			inDS[s] = true
		}
		for _, s := range imm[t2] {
			if !inDS[s] {
				t.Errorf("c(%d) contains %d outside DS", t2, s)
			}
			for _, x := range sets[t2] {
				if x != s && DominatesKnown(d, s, x) {
					t.Errorf("c(%d) member %d has intermediate %d", t2, s, x)
				}
			}
		}
		// Completeness: every DS member dominates (or is) some immediate
		// dominator — i.e. the immediate set covers the DS upward.
		for _, s := range sets[t2] {
			covered := false
			for _, c := range imm[t2] {
				if c == s || DominatesKnown(d, s, c) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("DS(%d) member %d not covered by c(t)", t2, s)
			}
		}
	}
}

// TestFreqCounter: freq(u,v) equals the brute-force co-domination count.
func TestFreqCounter(t *testing.T) {
	d := randData(13, 40, 2, 0, dataset.AntiCorrelated)
	sets := DominatingSets(d)
	fc := NewFreqCounter(d, sets)
	for u := 0; u < d.N(); u++ {
		for v := u + 1; v < d.N(); v++ {
			want := 0
			for x := 0; x < d.N(); x++ {
				if x != u && x != v && DominatesKnown(d, u, x) && DominatesKnown(d, v, x) {
					want++
				}
			}
			if got := fc.Freq(u, v); got != want {
				t.Fatalf("freq(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

// TestOracleSkylineSubsetsKnown: the full skyline always contains the
// AK skyline (complete skyline tuples stay skyline, Example 2).
func TestOracleSkylineSubsetsKnown(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d := randData(seed, 60, 2, 2, dataset.Independent)
		known := KnownSkyline(d)
		full := OracleSkyline(d)
		inFull := make(map[int]bool)
		for _, t2 := range full {
			inFull[t2] = true
		}
		for _, t2 := range known {
			if !inFull[t2] {
				t.Errorf("seed %d: AK skyline tuple %d missing from full skyline", seed, t2)
			}
		}
	}
}

func TestSortedOutputs(t *testing.T) {
	d := randData(17, 70, 3, 0, dataset.AntiCorrelated)
	for name, sky := range map[string][]int{"BNL": BNL(d), "SFS": SFS(d), "Oracle": OracleSkyline(d)} {
		if !sort.IntsAreSorted(sky) {
			t.Errorf("%s output not sorted", name)
		}
	}
}

// TestAdvancedAlgorithmsAgree cross-validates DivideConquer and SkyTree
// against SFS on random datasets of every distribution, including
// duplicate-heavy ones.
func TestAdvancedAlgorithmsAgree(t *testing.T) {
	prop := func(seed int64, rawN uint8, rawDK, rawDist uint8) bool {
		n := int(rawN)%150 + 1
		dk := int(rawDK)%5 + 1
		dist := dataset.Distribution(int(rawDist) % 3)
		d := randData(seed, n, dk, 0, dist)
		want := SFS(d)
		for name, algo := range map[string]func(*dataset.Dataset) []int{
			"DivideConquer": DivideConquer,
			"SkyTree":       SkyTree,
		} {
			got := algo(d)
			if len(got) != len(want) {
				t.Logf("%s: size %d, want %d (seed %d n %d dk %d %v)", name, len(got), len(want), seed, n, dk, dist)
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("%s: mismatch at %d (seed %d)", name, i, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestAdvancedAlgorithmsWithDuplicates: exact duplicate rows exercise the
// degenerate splits of DivideConquer and the twin regions of SkyTree.
func TestAdvancedAlgorithmsWithDuplicates(t *testing.T) {
	known := [][]float64{
		{1, 1}, {1, 1}, {1, 1}, // triple twin, all skyline
		{2, 0.5}, {2, 0.5}, // twin pair, skyline
		{3, 3}, {3, 3}, // twin pair, dominated
		{0.5, 2},
	}
	latent := make([][]float64, len(known))
	for i := range latent {
		latent[i] = []float64{0}
	}
	d := dataset.MustNew(known, latent)
	want := SFS(d)
	if len(want) != 6 {
		t.Fatalf("reference skyline = %v", want)
	}
	for name, algo := range map[string]func(*dataset.Dataset) []int{
		"BNL":           BNL,
		"DivideConquer": DivideConquer,
		"SkyTree":       SkyTree,
	} {
		got := algo(d)
		if len(got) != len(want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestParallelConstructionsMatchSerial: the CPU-sharded constructions are
// bit-identical to their serial counterparts (above and below the
// sharding threshold).
func TestParallelConstructionsMatchSerial(t *testing.T) {
	for _, n := range []int{50, 2100} {
		d := randData(19, n, 3, 1, dataset.AntiCorrelated)
		serialSets := DominatingSets(d)
		parSets := DominatingSetsParallel(d)
		for i := range serialSets {
			if len(serialSets[i]) != len(parSets[i]) {
				t.Fatalf("n=%d: DS(%d) sizes differ", n, i)
			}
			for j := range serialSets[i] {
				if serialSets[i][j] != parSets[i][j] {
					t.Fatalf("n=%d: DS(%d) differs at %d", n, i, j)
				}
			}
		}
		so := OracleSkyline(d)
		po := OracleSkylineParallel(d)
		if len(so) != len(po) {
			t.Fatalf("n=%d: oracle sizes differ", n)
		}
		for i := range so {
			if so[i] != po[i] {
				t.Fatalf("n=%d: oracle differs at %d", n, i)
			}
		}
		si := ImmediateDominators(d, serialSets)
		pi := ImmediateDominatorsParallel(d, serialSets)
		for i := range si {
			if len(si[i]) != len(pi[i]) {
				t.Fatalf("n=%d: c(%d) sizes differ", n, i)
			}
		}
	}
}

// TestTopKDominating: domination counts are correct, the ordering is
// descending, and the top-1 of a dominated chain is its head.
func TestTopKDominating(t *testing.T) {
	d := dataset.MustNew([][]float64{
		{1, 1}, // dominates everyone
		{2, 2},
		{3, 3},
		{9, 0.5}, // incomparable with the chain, dominates nobody
	}, [][]float64{{0}, {0}, {0}, {0}})
	top := TopKDominating(d, 2)
	if len(top) != 2 || top[0] != 0 || top[1] != 1 {
		t.Errorf("top-2 = %v, want [0 1]", top)
	}
	if got := TopKDominating(d, 99); len(got) != d.N() {
		t.Errorf("k > n returned %d tuples", len(got))
	}
	if TopKDominating(d, 0) != nil {
		t.Errorf("k = 0 returned tuples")
	}
	// The most-dominating tuple always belongs to the skyline on
	// distinct-valued data.
	rd := randData(23, 60, 3, 0, dataset.Independent)
	top1 := TopKDominating(rd, 1)[0]
	inSky := false
	for _, s := range KnownSkyline(rd) {
		if s == top1 {
			inSky = true
		}
	}
	if !inSky {
		t.Errorf("top-1 dominating tuple %d not in the skyline", top1)
	}
}

package skyline

import (
	"math/bits"

	"crowdsky/internal/bitset"
)

// This file is the incremental side of the dominance engine: Add and
// Remove toggle tuples in and out of the indexed set without rebuilding.
//
// The layout is the key invariant. A dynamic index keeps the positions of
// every tuple of the dataset — score order, column layout, run bounds,
// attribute orders, and duplicate groups are all value-dependent and
// never change — and tracks liveness as a bit per position. Removing a
// tuple clears its bits out of the neighbors' rows (the positions to
// touch are exactly the set bits of its own two rows, so the cost is
// proportional to its degree, read O(n/64) words per row); adding one
// back recomputes its dominance frontier with one compare sweep over the
// alive positions, pruned by the score order to the candidate prefix and
// suffix, and scatters single bits into the affected rows. No other row
// is rewritten, which is what makes an Add/Remove cycle orders of
// magnitude cheaper than NewIndexAlive at equal results: the fuzz and
// differential tests hold a mutated index bit-identical to a from-scratch
// rebuild over the same alive set.
//
// Mutations require exclusive access and bump the generation counter;
// derived artifacts (DominatingSets and everything layered on it) are
// invalidated lazily by generation, while FreqCounter wraps the live
// bitmap and must simply be re-derived after a mutation.

// dynState is the mutable liveness state of an index that went dynamic.
// The scratch sets make the steady state allocation-free: every Add
// reuses the same two full-width rows for its compare sweep.
type dynState struct {
	aliveBits bitset.Set // positions currently indexed
	dead      int        // number of cleared bits in aliveBits
	le, ge    bitset.Set // addKernel scratch: weak dominators / dominated
}

// makeDynamic converts the index to the dynamic layout on first mutation.
// An unrestricted index only needs its truncated dominator rows widened
// to full width (mutations may set any bit); an alive-restricted index
// first rebuilds the full-dataset layout, then replays the build-time
// restriction as removals, landing in the identical logical state with
// every position addressable.
func (ix *Index) makeDynamic() {
	if ix.dyn != nil {
		return
	}
	if ix.alive != nil {
		wasAlive := ix.alive
		full := NewIndex(ix.d)
		ix.m, ix.order, ix.pos, ix.cols = full.m, full.order, full.pos, full.cols
		ix.runStart, ix.runEnd = full.runStart, full.runEnd
		ix.attrOrder, ix.dupOf, ix.dupGroups = full.attrOrder, full.dupOf, full.dupGroups
		ix.domBy, ix.dom, ix.counts = full.domBy, full.dom, full.counts
		ix.stats.Pairs = full.stats.Pairs
		ix.alive = nil
		ix.initDyn()
		for t, a := range wasAlive {
			if !a {
				p := ix.pos[t]
				ix.dyn.aliveBits.Remove(p)
				ix.dyn.dead++
				ix.removeKernel(p)
			}
		}
		// Same dominance relation as before the conversion, so the
		// generation stands; the memo just re-derives from the new arrays.
		ix.setsMu.Lock()
		ix.setsValid = false
		ix.setsMu.Unlock()
		return
	}
	ix.initDyn()
}

// initDyn widens the dominator rows to full width and installs the
// liveness state with every position alive.
func (ix *Index) initDyn() {
	m := ix.m
	wide := bitset.Carve(m, m)
	for p, row := range ix.domBy {
		copy(wide[p], row)
		ix.domBy[p] = wide[p]
	}
	aux := bitset.Carve(3, m)
	alive := aux[0]
	for w := range alive {
		alive[w] = ^uint64(0)
	}
	if r := uint(m) & 63; r != 0 {
		alive[len(alive)-1] = 1<<r - 1
	}
	ix.dyn = &dynState{aliveBits: alive, le: aux[1], ge: aux[2]}
}

// Alive reports whether tuple t is currently in the indexed set.
func (ix *Index) Alive(t int) bool {
	p := ix.pos[t]
	return p >= 0 && ix.aliveAt(p)
}

// Add returns tuple t (an index into the dataset) to the indexed set and
// reports whether the index changed (false when t was already alive). The
// first mutation converts the index to its dynamic layout; after that an
// Add costs one pruned compare sweep plus one bit per affected neighbor
// row, allocation-free. Mutations require exclusive access.
func (ix *Index) Add(t int) bool {
	ix.makeDynamic()
	p := ix.pos[t]
	if ix.dyn.aliveBits.Has(p) {
		return false
	}
	ix.addKernel(p)
	ix.dyn.aliveBits.Add(p)
	ix.dyn.dead--
	ix.gen++
	return true
}

// Remove deletes tuple t (an index into the dataset) from the indexed
// set and reports whether the index changed (false when t was already
// dead). Dead tuples dominate nothing, are dominated by nothing, and
// leave every skyline and dominating-set derivation exactly as a
// from-scratch build over the remaining tuples would. Mutations require
// exclusive access.
func (ix *Index) Remove(t int) bool {
	ix.makeDynamic()
	p := ix.pos[t]
	if !ix.dyn.aliveBits.Has(p) {
		return false
	}
	ix.dyn.aliveBits.Remove(p)
	ix.dyn.dead++
	ix.removeKernel(p)
	ix.gen++
	return true
}

// addKernel computes the dominance frontier of position p against the
// alive positions and writes it into the bitmap. The compare sweep is
// pruned by the score order — dominators can only sort before the end of
// p's equal-score run, dominated positions only after its start — and
// produces the weak ≤/≥ sets; subtracting p's exact-duplicate group
// (weak both ways, strict neither) leaves the strict sets, exactly as
// the batch build's duplicate pass does. p itself is not yet alive, so
// it never appears in its own frontier.
//
//skylint:hotpath
func (ix *Index) addKernel(p int) {
	m, dims, cols := ix.m, ix.dims, ix.cols
	dyn := ix.dyn
	le, ge := dyn.le, dyn.ge
	hiLe := ix.runEnd[p]   // candidates for q ≺AK p: score(q) ≤ score(p)
	loGe := ix.runStart[p] // candidates for p ≺AK q: score(q) ≥ score(p)
	for wq := range le {
		var lw, gw uint64
		base := wq << 6
		for b := dyn.aliveBits[wq]; b != 0; b &= b - 1 {
			k := bits.TrailingZeros64(b)
			q := base + k
			if q < hiLe {
				leq := true
				for j := 0; j < dims; j++ {
					if cols[j*m+q] > cols[j*m+p] {
						leq = false
						break
					}
				}
				if leq {
					lw |= 1 << uint(k)
				}
			}
			if q >= loGe {
				geq := true
				for j := 0; j < dims; j++ {
					if cols[j*m+q] < cols[j*m+p] {
						geq = false
						break
					}
				}
				if geq {
					gw |= 1 << uint(k)
				}
			}
		}
		le[wq], ge[wq] = lw, gw
	}
	if g := ix.dupOf[p]; g >= 0 {
		for _, q := range ix.dupGroups[g] {
			le.Remove(int(q))
			ge.Remove(int(q))
		}
	}

	pw, pb := p>>6, uint64(1)<<(uint(p)&63)
	rowBy, rowDom := ix.domBy[p], ix.dom[p]
	leCount, pairs := 0, 0
	for wq := range le {
		rowBy[wq] = le[wq]
		rowDom[wq] = ge[wq]
		for w := le[wq]; w != 0; w &= w - 1 {
			q := wq<<6 + bits.TrailingZeros64(w)
			ix.dom[q][pw] |= pb
			leCount++
			pairs++
		}
		for w := ge[wq]; w != 0; w &= w - 1 {
			q := wq<<6 + bits.TrailingZeros64(w)
			ix.domBy[q][pw] |= pb
			ix.counts[q]++
			pairs++
		}
	}
	ix.counts[p] = leCount
	ix.stats.Pairs += pairs
}

// removeKernel clears position p out of the bitmap: every neighbor to
// touch is a set bit of p's own two rows, so the work is one word scan
// per row plus one masked write per dominance pair of p.
//
//skylint:hotpath
func (ix *Index) removeKernel(p int) {
	pw, pb := p>>6, uint64(1)<<(uint(p)&63)
	rowBy, rowDom := ix.domBy[p], ix.dom[p]
	pairs := 0
	for wq := range rowBy {
		for w := rowBy[wq]; w != 0; w &= w - 1 {
			q := wq<<6 + bits.TrailingZeros64(w)
			ix.dom[q][pw] &^= pb
			pairs++
		}
		rowBy[wq] = 0
		for w := rowDom[wq]; w != 0; w &= w - 1 {
			q := wq<<6 + bits.TrailingZeros64(w)
			ix.domBy[q][pw] &^= pb
			ix.counts[q]--
			pairs++
		}
		rowDom[wq] = 0
	}
	ix.counts[p] = 0
	ix.stats.Pairs -= pairs
}

package skyline

import (
	"math/rand"
	"reflect"
	"testing"

	"crowdsky/internal/dataset"
)

// checkDynamicAgainstRebuild asserts that a mutated index is logically
// identical to a from-scratch build over the same alive set: the full
// pair-wise dominance relation, the dominating sets, the known skyline,
// and — when everything is alive — the oracle skyline.
func checkDynamicAgainstRebuild(t *testing.T, d *dataset.Dataset, ix *Index, alive []bool) {
	t.Helper()
	n := d.N()
	want := NewIndexAlive(d, alive)
	for s := 0; s < n; s++ {
		for tt := 0; tt < n; tt++ {
			if got, exp := ix.Dominates(s, tt), want.Dominates(s, tt); got != exp {
				t.Fatalf("Dominates(%d,%d) = %v after mutations, rebuild says %v", s, tt, got, exp)
			}
		}
	}
	if got, exp := ix.DominatingSets(), want.DominatingSets(); !reflect.DeepEqual(got, exp) {
		t.Fatalf("DominatingSets diverged from rebuild\n got %v\nwant %v", got, exp)
	}
	if got, exp := ix.KnownSkyline(), want.KnownSkyline(); !sameMembers(got, exp) {
		t.Fatalf("KnownSkyline diverged from rebuild: got %v, want %v", got, exp)
	}
	if got, exp := ix.ImmediateDominators(), want.ImmediateDominators(); !reflect.DeepEqual(got, exp) {
		t.Fatalf("ImmediateDominators diverged from rebuild")
	}
	aliveCount := 0
	for tt := 0; tt < n; tt++ {
		if alive == nil || alive[tt] {
			aliveCount++
		}
		if got := ix.Alive(tt); got != (alive == nil || alive[tt]) {
			t.Fatalf("Alive(%d) = %v, want %v", tt, got, !got)
		}
	}
	if ix.N() != aliveCount {
		t.Fatalf("N() = %d after mutations, want %d", ix.N(), aliveCount)
	}
	if allAlive := aliveCount == n; allAlive {
		if !ix.Matches(d) {
			t.Fatalf("Matches(d) = false with every tuple alive")
		}
		if got, exp := ix.OracleSkyline(), OracleSkyline(d); !reflect.DeepEqual(got, exp) {
			t.Fatalf("OracleSkyline diverged after mutation round-trip: got %v, want %v", got, exp)
		}
	} else if ix.Matches(d) {
		t.Fatalf("Matches(d) = true with %d tuples dead", n-aliveCount)
	}
}

// TestIncrementalDifferential interleaves random Add/Remove sequences
// with full rebuild comparisons across the dataset zoo.
func TestIncrementalDifferential(t *testing.T) {
	for name, d := range indexDatasets(t) {
		d := d
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			n := d.N()
			rng := rand.New(rand.NewSource(int64(len(name))*977 + 5))
			ix := NewIndex(d)
			alive := make([]bool, n)
			for i := range alive {
				alive[i] = true
			}
			steps := 6 * n
			if steps > 400 {
				steps = 400
			}
			for step := 0; step < steps; step++ {
				tt := rng.Intn(n)
				if alive[tt] {
					if !ix.Remove(tt) {
						t.Fatalf("Remove(%d) reported no change for an alive tuple", tt)
					}
				} else {
					if !ix.Add(tt) {
						t.Fatalf("Add(%d) reported no change for a dead tuple", tt)
					}
				}
				alive[tt] = !alive[tt]
				if step%37 == 17 {
					checkDynamicAgainstRebuild(t, d, ix, alive)
				}
			}
			checkDynamicAgainstRebuild(t, d, ix, alive)
			// Resurrect everything: the index must land exactly where a
			// fresh unrestricted build does, oracle included.
			for tt := 0; tt < n; tt++ {
				if !alive[tt] {
					ix.Add(tt)
					alive[tt] = true
				}
			}
			checkDynamicAgainstRebuild(t, d, ix, alive)
		})
	}
}

// TestIncrementalFromRestricted mutates an index that was built with an
// alive restriction: the first mutation must transparently adopt the
// full-dataset layout while preserving the restricted dominance state.
func TestIncrementalFromRestricted(t *testing.T) {
	d := randData(61, 180, 3, 2, dataset.AntiCorrelated)
	n := d.N()
	rng := rand.New(rand.NewSource(61))
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = rng.Intn(3) != 0
	}
	ix := NewIndexAlive(d, alive)
	// First mutation converts; do a removal of an alive tuple.
	first := -1
	for tt := 0; tt < n; tt++ {
		if alive[tt] {
			first = tt
			break
		}
	}
	ix.Remove(first)
	alive[first] = false
	checkDynamicAgainstRebuild(t, d, ix, alive)
	for tt := 0; tt < n; tt++ {
		if !alive[tt] {
			ix.Add(tt)
			alive[tt] = true
		}
	}
	checkDynamicAgainstRebuild(t, d, ix, alive)
}

// TestGenerationCounter pins the mutation-visibility contract: the
// generation moves exactly on state changes, no-ops don't bump it, and
// the DominatingSets memo keys off it.
func TestGenerationCounter(t *testing.T) {
	d := randData(62, 60, 3, 1, dataset.Independent)
	ix := NewIndex(d)
	if ix.Generation() != 0 {
		t.Fatalf("fresh index generation = %d, want 0", ix.Generation())
	}
	before := ix.DominatingSets()
	if !ix.Remove(3) || ix.Generation() != 1 {
		t.Fatalf("Remove did not bump generation (gen=%d)", ix.Generation())
	}
	if ix.Remove(3) || ix.Generation() != 1 {
		t.Fatalf("no-op Remove bumped generation (gen=%d)", ix.Generation())
	}
	after := ix.DominatingSets()
	if reflect.DeepEqual(before, after) && len(before[3]) > 0 {
		t.Fatalf("DominatingSets memo not invalidated by Remove")
	}
	if after[3] != nil {
		t.Fatalf("dead tuple kept a dominating set: %v", after[3])
	}
	if !ix.Add(3) || ix.Generation() != 2 {
		t.Fatalf("Add did not bump generation (gen=%d)", ix.Generation())
	}
	if ix.Add(3) || ix.Generation() != 2 {
		t.Fatalf("no-op Add bumped generation (gen=%d)", ix.Generation())
	}
	restored := ix.DominatingSets()
	if !reflect.DeepEqual(restored, before) {
		t.Fatalf("Remove+Add round trip changed DominatingSets")
	}
	if !ix.Matches(d) {
		t.Fatalf("Matches(d) = false after round trip")
	}
}

// FuzzIncrementalIndex drives random interleaved Add/Remove/query
// sequences from fuzzed bytes: every checkpoint must match a from-scratch
// NewIndexAlive rebuild exactly (bitmaps, dominating sets, KnownSkyline,
// and OracleSkyline once everything is alive again).
func FuzzIncrementalIndex(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 2, 1})
	f.Add(int64(2), []byte{9, 9, 9, 0, 4, 7, 4, 7})
	f.Add(int64(3), []byte{5, 17, 3, 3, 11, 2, 8, 13, 1, 0})
	f.Add(int64(6), []byte{1, 0, 1, 0, 1, 0})
	f.Add(int64(9), []byte{20, 6, 14, 6, 20, 5, 0, 19})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		seed &= 1<<62 - 1 // shape arithmetic needs a non-negative seed
		n := int(seed%21)*3 + 4
		dk := int(seed%4) + 1
		dc := int(seed % 3)
		d := randData(seed, n, dk, dc, dataset.Distribution(seed%3))
		if seed%2 == 0 {
			d = withDuplicates(t, d, seed)
		}
		ix := NewIndex(d)
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		for i, b := range ops {
			tt := int(b) % n
			changed := false
			if alive[tt] {
				changed = ix.Remove(tt)
			} else {
				changed = ix.Add(tt)
			}
			if !changed {
				t.Fatalf("op %d: mutation of tuple %d reported no change", i, tt)
			}
			alive[tt] = !alive[tt]
			if i%5 == 4 {
				checkDynamicAgainstRebuild(t, d, ix, alive)
			}
		}
		checkDynamicAgainstRebuild(t, d, ix, alive)
		for tt := 0; tt < n; tt++ {
			if !alive[tt] {
				ix.Add(tt)
				alive[tt] = true
			}
		}
		checkDynamicAgainstRebuild(t, d, ix, alive)
	})
}

package skyline

import (
	"math/rand"
	"reflect"
	"testing"

	"crowdsky/internal/dataset"
)

// naiveTranspose64 is the obvious three-line bit transpose the fast one
// must match.
func naiveTranspose64(in [64]uint64) [64]uint64 {
	var out [64]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if in[j]&(1<<uint(i)) != 0 {
				out[i] |= 1 << uint(j)
			}
		}
	}
	return out
}

func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := [][64]uint64{{}, {1}, {0: 1 << 63}, {63: 1}}
	var diag, dense [64]uint64
	for i := range diag {
		diag[i] = 1 << uint(i)
		dense[i] = ^uint64(0)
	}
	cases = append(cases, diag, dense)
	for c := 0; c < 32; c++ {
		var m [64]uint64
		for i := range m {
			m[i] = rng.Uint64()
		}
		cases = append(cases, m)
	}
	for ci, in := range cases {
		got := in
		transpose64(&got)
		if want := naiveTranspose64(in); got != want {
			t.Fatalf("case %d: transpose64 disagrees with naive transpose", ci)
		}
		back := got
		transpose64(&back)
		if back != in {
			t.Fatalf("case %d: transpose64 is not an involution", ci)
		}
	}
}

// withDuplicates returns a copy of d where some rows are exact duplicates
// and some share an attribute sum without being equal, exercising the
// equal-score-run handling of the index.
func withDuplicates(t *testing.T, d *dataset.Dataset, seed int64) *dataset.Dataset {
	t.Helper()
	n := d.N()
	rng := rand.New(rand.NewSource(seed))
	known := make([][]float64, n)
	latent := make([][]float64, n)
	for i := 0; i < n; i++ {
		known[i] = append([]float64(nil), d.KnownRow(i)...)
		latent[i] = make([]float64, d.CrowdDims())
		for j := range latent[i] {
			latent[i][j] = d.Latent(i, j)
		}
	}
	for k := 0; k < n/4; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		copy(known[i], known[j]) // exact AK duplicate, distinct AC
	}
	for k := 0; k < n/4 && d.KnownDims() >= 2; k++ {
		// Same sum, different tuple: swap two attributes of a copied row.
		i, j := rng.Intn(n), rng.Intn(n)
		copy(known[i], known[j])
		known[i][0], known[i][1] = known[i][1], known[i][0]
	}
	return dataset.MustNew(known, latent)
}

func indexDatasets(t *testing.T) map[string]*dataset.Dataset {
	t.Helper()
	out := map[string]*dataset.Dataset{
		"IND":        randData(11, 300, 4, 2, dataset.Independent),
		"ANT":        randData(12, 300, 4, 2, dataset.AntiCorrelated),
		"COR":        randData(13, 300, 4, 2, dataset.Correlated),
		"IND-1d":     randData(14, 120, 1, 1, dataset.Independent),
		"ANT-wide":   randData(15, 150, 6, 3, dataset.AntiCorrelated),
		"no-crowd":   randData(16, 200, 3, 0, dataset.Independent),
		"tiny":       randData(17, 2, 2, 1, dataset.Independent),
		"singleton":  randData(18, 1, 3, 1, dataset.Independent),
		"duplicates": nil,
	}
	out["duplicates"] = withDuplicates(t, randData(19, 240, 3, 2, dataset.Independent), 19)
	return out
}

// checkIndexAgainstNaive asserts every Index derivation is bit-for-bit
// the naive construction's result, including nil-versus-empty and
// ordering.
func checkIndexAgainstNaive(t *testing.T, d *dataset.Dataset) {
	t.Helper()
	ix := NewIndex(d)

	wantSets := DominatingSets(d)
	gotSets := ix.DominatingSets()
	if !reflect.DeepEqual(gotSets, wantSets) {
		t.Fatalf("DominatingSets: index disagrees with naive\n got %v\nwant %v", gotSets, wantSets)
	}
	for tt, s := range wantSets {
		if (s == nil) != (gotSets[tt] == nil) {
			t.Fatalf("DominatingSets: nil-ness mismatch at tuple %d", tt)
		}
	}
	if &gotSets[0] != &ix.DominatingSets()[0] {
		t.Fatalf("DominatingSets not memoized")
	}

	wantIm := ImmediateDominators(d, wantSets)
	if gotIm := ix.ImmediateDominators(); !reflect.DeepEqual(gotIm, wantIm) {
		t.Fatalf("ImmediateDominators: index disagrees with naive\n got %v\nwant %v", gotIm, wantIm)
	}

	wantFC := NewFreqCounter(d, wantSets)
	gotFC := ix.FreqCounter()
	n := d.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if got, want := gotFC.Freq(u, v), wantFC.Freq(u, v); got != want {
				t.Fatalf("Freq(%d,%d) = %d, naive %d", u, v, got, want)
			}
		}
	}

	if got, want := ix.OracleSkyline(), OracleSkyline(d); !reflect.DeepEqual(got, want) {
		t.Fatalf("OracleSkyline: index %v, naive %v", got, want)
	}
	if got, want := ix.KnownSkyline(), KnownSkyline(d); !sameMembers(got, want) {
		t.Fatalf("KnownSkyline: index %v, naive %v", got, want)
	}
	for s := 0; s < n; s++ {
		for tt := 0; tt < n; tt++ {
			if got, want := ix.Dominates(s, tt), s != tt && DominatesKnown(d, s, tt); got != want {
				t.Fatalf("Dominates(%d,%d) = %v, DominatesKnown %v", s, tt, got, want)
			}
		}
	}

	st := ix.Stats()
	pairs := 0
	for _, s := range wantSets {
		pairs += len(s)
	}
	if st.Pairs != pairs || st.N != n || st.Dims != d.KnownDims() || st.BitmapBytes <= 0 {
		t.Fatalf("Stats %+v inconsistent (want pairs %d, n %d)", st, pairs, n)
	}
	if !ix.Matches(d) || ix.Matches(randData(99, 4, 2, 0, dataset.Independent)) {
		t.Fatalf("Matches wrong")
	}
}

func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}

func TestIndexMatchesNaive(t *testing.T) {
	for name, d := range indexDatasets(t) {
		d := d
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			checkIndexAgainstNaive(t, d)
		})
	}
}

func TestIndexAliveMatchesNaive(t *testing.T) {
	d := randData(31, 250, 4, 2, dataset.Independent)
	n := d.N()
	rng := rand.New(rand.NewSource(31))
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = rng.Intn(4) != 0
	}
	ix := NewIndexAlive(d, alive)

	wantSets := make([][]int, n)
	for tt := 0; tt < n; tt++ {
		if !alive[tt] {
			continue
		}
		for s := 0; s < n; s++ {
			if s != tt && alive[s] && DominatesKnown(d, s, tt) {
				wantSets[tt] = append(wantSets[tt], s)
			}
		}
	}
	if got := ix.DominatingSets(); !reflect.DeepEqual(got, wantSets) {
		t.Fatalf("alive DominatingSets: index disagrees with naive restriction")
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := 0
			if alive[u] && alive[v] {
				for x := 0; x < n; x++ {
					if alive[x] && x != u && x != v && DominatesKnown(d, u, x) && DominatesKnown(d, v, x) {
						want++
					}
				}
			}
			if got := ix.FreqCounter().Freq(u, v); got != want {
				t.Fatalf("alive Freq(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("OracleSkyline on a restricted index should panic")
		}
	}()
	ix.OracleSkyline()
}

func TestIndexAliveAllTrueMatchesUnrestricted(t *testing.T) {
	d := randData(32, 100, 3, 1, dataset.Independent)
	alive := make([]bool, d.N())
	for i := range alive {
		alive[i] = true
	}
	ix := NewIndexAlive(d, alive)
	if !ix.Matches(d) {
		t.Fatalf("all-true mask should normalize to unrestricted")
	}
	ix.OracleSkyline() // must not panic
}

// TestIndexParallelPath forces the sharded kernels on a small dataset so
// the race detector sees the concurrent tile writes, transpose blocks and
// derivation shards.
func TestIndexParallelPath(t *testing.T) {
	old := parallelThreshold
	parallelThreshold = 1
	t.Cleanup(func() { parallelThreshold = old })
	for _, dist := range []dataset.Distribution{dataset.Independent, dataset.AntiCorrelated} {
		checkIndexAgainstNaive(t, randData(41+int64(dist), 130, 3, 2, dist))
	}
}

// TestIndexManyChunks crosses the candidate-chunk boundary so multi-tile
// targets and the chunk clamping are exercised.
func TestIndexManyChunks(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential")
	}
	d := randData(51, indexCandChunk+300, 3, 1, dataset.AntiCorrelated)
	ix := NewIndex(d)
	if got, want := ix.DominatingSets(), DominatingSetsParallel(d); !reflect.DeepEqual(got, want) {
		t.Fatalf("DominatingSets disagrees across chunk boundary")
	}
	if got, want := ix.OracleSkyline(), OracleSkylineParallel(d); !reflect.DeepEqual(got, want) {
		t.Fatalf("OracleSkyline disagrees across chunk boundary")
	}
}

// requireBitIdentical compares two indexes over the same dataset word
// for word: layout, every dominator row, every transposed row, counts,
// and the pair total. This is the "parallel build is deterministic"
// contract — not just equal derivations, the identical bitmap.
func requireBitIdentical(t *testing.T, ref, got *Index, workers int) {
	t.Helper()
	if !reflect.DeepEqual(got.order, ref.order) || !reflect.DeepEqual(got.counts, ref.counts) {
		t.Fatalf("workers=%d: layout or counts differ from serial build", workers)
	}
	if got.stats.Pairs != ref.stats.Pairs {
		t.Fatalf("workers=%d: pairs = %d, serial %d", workers, got.stats.Pairs, ref.stats.Pairs)
	}
	for p := range ref.domBy {
		if !reflect.DeepEqual(got.domBy[p], ref.domBy[p]) {
			t.Fatalf("workers=%d: dominator row %d differs from serial build", workers, p)
		}
		if !reflect.DeepEqual(got.dom[p], ref.dom[p]) {
			t.Fatalf("workers=%d: transposed row %d differs from serial build", workers, p)
		}
	}
	if !reflect.DeepEqual(got.DominatingSets(), ref.DominatingSets()) {
		t.Fatalf("workers=%d: DominatingSets differ from serial build", workers)
	}
}

// TestIndexWorkerCountDeterminism builds the same datasets at 1, 2, 3, 4
// and 8 workers with the fan-out threshold floored, covering both
// parallel schedules (chunk pool when chunks outnumber workers, sharded
// target loop otherwise), and requires every build to be bit-for-bit the
// one-worker result.
func TestIndexWorkerCountDeterminism(t *testing.T) {
	oldT := parallelThreshold
	parallelThreshold = 1
	t.Cleanup(func() { parallelThreshold = oldT; SetMaxWorkers(0) })
	shapes := map[string]*dataset.Dataset{
		"IND":  randData(71, 260, 4, 0, dataset.Independent),
		"ANT":  randData(72, 300, 3, 0, dataset.AntiCorrelated),
		"dups": withDuplicates(t, randData(73, 220, 3, 1, dataset.Independent), 73),
		"tiny": randData(75, 3, 2, 0, dataset.Independent),
	}
	if !testing.Short() {
		// Three candidate chunks: workers 2 and 3 take the chunk pool,
		// 4 and 8 fall back to the sharded target loop.
		shapes["multi-chunk"] = randData(74, 2*indexCandChunk+100, 3, 0, dataset.AntiCorrelated)
	}
	for name, d := range shapes {
		t.Run(name, func(t *testing.T) {
			SetMaxWorkers(1)
			ref := NewIndex(d)
			for _, w := range []int{2, 3, 4, 8} {
				SetMaxWorkers(w)
				requireBitIdentical(t, ref, NewIndex(d), w)
			}
			SetMaxWorkers(0)
		})
	}
}

// FuzzIndex drives the full differential battery from fuzzed shape and
// seed bytes.
func FuzzIndex(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(3), uint8(2), uint8(0))
	f.Add(int64(2), uint8(24), uint8(1), uint8(0), uint8(1))
	f.Add(int64(3), uint8(7), uint8(5), uint8(3), uint8(2))
	f.Add(int64(4), uint8(1), uint8(2), uint8(1), uint8(0))
	f.Add(int64(5), uint8(16), uint8(4), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, n, dk, dc, dist uint8) {
		nn := int(n%24) + 1
		dkk := int(dk%5) + 1
		dcc := int(dc % 4)
		d := randData(seed, nn, dkk, dcc, dataset.Distribution(dist%3))
		if seed%2 == 0 {
			d = withDuplicates(t, d, seed)
		}
		checkIndexAgainstNaive(t, d)
	})
}

package skyline

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crowdsky/internal/bitset"
	"crowdsky/internal/dataset"
)

// This file is the columnar dominance engine. Every crowd-enabled run
// needs the same quadratic machine part — dominating sets (Definition 5),
// immediate dominators (Figure 5), co-domination frequencies (Sections 3.4
// and 5) and ground-truth grading — and the row-pointer kernels in
// domsets.go/parallel.go recompute the underlying pair-wise dominance
// tests for each construction independently. Index computes the dominance
// relation exactly once, as a bitmap, and derives everything else from it:
//
//   - the known attributes are materialized into a flat column-major (SoA)
//     float64 layout, so the kernel streams contiguous memory instead of
//     chasing [][]float64 row pointers;
//   - tuples are sorted by a monotone score (the attribute sum, the SFS
//     ordering already used in algorithms.go): s ≺AK t implies
//     score(s) ≤ score(t), so a tuple's dominators all live in the sorted
//     prefix up to the end of its equal-score run — roughly halving the
//     candidate space and bounding each bitmap row;
//   - the bitmap dom(t) = {s : s ≺AK t} is built in cache-blocked
//     candidate chunks with a rank kernel: per attribute the chunk's
//     sorted-prefix bitmaps ("the r smallest candidates") are
//     materialized once, every target's per-attribute rank selects one
//     prefix row, and the dominator words are the AND of the selected
//     rows — 64 dominance tests collapse into dims word-ANDs with no
//     float comparison in the hot loop. Exact-duplicate groups (identical
//     known rows, which would survive the weak-AND) are cleared in a
//     final pass, restoring strictness;
//   - DominatingSets is an exact-size counting transpose (no
//     append-regrow), ImmediateDominators is a bitset intersection test
//     per (dominator, target) pair instead of an O(|DS|²·d) rescan,
//     FreqCounter wraps the transposed bitmap for free, and OracleSkyline
//     grades from the bitmap plus the latent values.
//
// The derivations are bit-for-bit identical to the naive constructions;
// index_test.go and the differential oracle fuzz harness enforce that.

// indexCandChunk is the number of candidate positions per cache block.
// The rank kernel materializes (indexCandChunk+1) sorted-prefix bitmap
// rows of indexCandChunk/64 words per attribute — at 1024 candidates
// that is 128 KiB per attribute, so a 4-attribute chunk table stays
// L2-resident while every target scans it. Must be a multiple of 64 so
// chunk word ranges never straddle a bitmap word.
const indexCandChunk = 1024

// IndexStats describes one build, for telemetry and the bench harness.
type IndexStats struct {
	// N is the number of tuples indexed (alive tuples when restricted).
	N int
	// Dims is the number of known attributes.
	Dims int
	// Pairs is the number of dominance pairs recorded in the bitmap.
	Pairs int
	// BitmapBytes is the memory held by the two bitmaps (dominators-of
	// and dominated-by).
	BitmapBytes int64
	// BuildDuration is the wall-clock time of the build, including the
	// transpose.
	BuildDuration time.Duration
}

// Index is a dominance index over the known attributes of a dataset
// (optionally restricted to a subset of alive tuples). Build it once per
// run with NewIndex/NewIndexAlive and derive every machine-part
// construction from it; the derivations never re-run a pair-wise
// dominance test. After construction an Index is safe for concurrent
// readers; the slices returned by DominatingSets and ImmediateDominators
// are shared and must not be modified.
//
// An Index is also a live structure: Add and Remove (dynamic.go) toggle
// tuples in and out of the indexed set in O(n·dims) compare work and
// O(n/64) words of bitmap updates per dimension, instead of a rebuild.
// Mutations require exclusive access (no concurrent readers during an
// Add/Remove) and bump a generation counter that lazily invalidates the
// memoized derivations.
type Index struct {
	d    *dataset.Dataset
	n    int // d.N()
	m    int // laid-out positions (alive tuples at build; all n once dynamic)
	dims int

	alive []bool // nil when unrestricted; nil in dynamic mode (see dyn)

	order    []int     // position -> original tuple index
	pos      []int     // original tuple index -> position; -1 when dead
	cols     []float64 // column-major over positions: cols[j*m+p]
	runStart []int     // per position: start of its equal-score run
	runEnd   []int     // per position: end (exclusive) of its equal-score run

	// attrOrder[j] holds the positions in ascending order of attribute j
	// (ties arbitrary but deterministic). The build derives the chunk
	// prefix tables and target ranks from it; it is retained because the
	// duplicate bookkeeping of the dynamic path shares its equal-value
	// grouping.
	attrOrder [][]int32

	// dupOf[p] is the exact-duplicate group of position p (-1 when its
	// known row is unique); dupGroups lists each group's member
	// positions. The relation depends only on attribute values, never on
	// aliveness, so it is computed once at build time and consulted by
	// both OracleSkyline (AK-identical tuples are decided by AC alone)
	// and the incremental add kernel (duplicates are weak, never strict).
	dupOf     []int32
	dupGroups [][]int32

	// domBy[p] = {q : order[q] ≺AK order[p]} with bits keyed by position.
	// Rows are truncated to the words covering [0, runEnd[p]): no
	// dominator can sort after the target's equal-score run. Dynamic
	// mode widens every row to full width so mutations can set any bit.
	domBy []bitset.Set
	// dom[q] = {p : order[q] ≺AK order[p]}, the transpose, full width.
	dom    []bitset.Set
	counts []int // |DS| per position

	// gen counts mutations; the memoized derivations record the
	// generation they were computed at and rebuild lazily when it moved.
	gen uint64

	setsMu    sync.Mutex
	sets      [][]int // memoized DominatingSets, indexed by original tuple
	setsValid bool
	setsGen   uint64

	dyn *dynState // non-nil once the index went dynamic (dynamic.go)

	stats IndexStats
}

// NewIndex builds the dominance index over every tuple of d.
func NewIndex(d *dataset.Dataset) *Index { return NewIndexAlive(d, nil) }

// NewIndexAlive builds the index over the tuples with alive[t] == true;
// dead tuples get empty dominating sets and are never candidates, exactly
// like the alive-restricted naive construction in package core. A nil or
// all-true mask builds the unrestricted index.
func NewIndexAlive(d *dataset.Dataset, alive []bool) *Index {
	start := time.Now()
	n := d.N()
	if alive != nil {
		all := true
		for t := 0; t < n; t++ {
			if !alive[t] {
				all = false
				break
			}
		}
		if all {
			alive = nil
		} else {
			alive = append([]bool(nil), alive...)
		}
	}
	ix := &Index{d: d, n: n, dims: d.KnownDims(), alive: alive}
	ix.layout()
	ix.buildBitmap()
	ix.transpose()
	words := 0
	for p := 0; p < ix.m; p++ {
		words += len(ix.domBy[p]) + len(ix.dom[p])
	}
	ix.stats.N = ix.m
	ix.stats.Dims = ix.dims
	ix.stats.BitmapBytes = int64(words) * 8
	ix.stats.BuildDuration = time.Since(start)
	return ix
}

// layout sorts the alive tuples by ascending attribute-sum score (ties by
// original index, so the order is deterministic) and materializes the
// column-major value layout plus the equal-score run bounds.
//
// Summing left to right is monotone under component-wise ≤, so
// s ≺AK t implies score(s) ≤ score(t) even with rounding; strictness can
// be lost to rounding, which is why a tuple's equal-score run is included
// in its candidate range.
func (ix *Index) layout() {
	d, n := ix.d, ix.n
	order := make([]int, 0, n)
	for t := 0; t < n; t++ {
		if ix.alive == nil || ix.alive[t] {
			order = append(order, t)
		}
	}
	m := len(order)
	score := make([]float64, n)
	for _, t := range order {
		s := 0.0
		for _, v := range d.KnownRow(t) {
			s += v
		}
		score[t] = s
	}
	sort.Slice(order, func(x, y int) bool {
		// skylint:ignore floateq exact score ties define the runs; an epsilon would break the prefix invariant
		if score[order[x]] != score[order[y]] {
			return score[order[x]] < score[order[y]]
		}
		return order[x] < order[y]
	})
	pos := make([]int, n)
	for t := range pos {
		pos[t] = -1
	}
	for p, t := range order {
		pos[t] = p
	}
	cols := make([]float64, m*ix.dims)
	for p, t := range order {
		row := d.KnownRow(t)
		for j, v := range row {
			cols[j*m+p] = v
		}
	}
	runStart := make([]int, m)
	runEnd := make([]int, m)
	for lo := 0; lo < m; {
		hi := lo + 1
		// skylint:ignore floateq runs are exact-score ties by construction
		for hi < m && score[order[hi]] == score[order[lo]] {
			hi++
		}
		for p := lo; p < hi; p++ {
			runStart[p], runEnd[p] = lo, hi
		}
		lo = hi
	}
	ix.m, ix.order, ix.pos, ix.cols = m, order, pos, cols
	ix.runStart, ix.runEnd = runStart, runEnd
}

// indexAccum merges the per-shard pair counts of the bitmap kernel.
type indexAccum struct {
	mu    sync.Mutex
	pairs int // skylint:guardedby mu
}

// buildBitmap runs the rank kernel. Per candidate chunk it materializes,
// for every attribute, the chunk's sorted-prefix bitmaps prefix[r] =
// "the r smallest chunk candidates on this attribute" and every target's
// rank (how many chunk candidates are ≤ the target, ties included). The
// weak dominators of a target inside the chunk are then
//
//	AND over attributes of prefix[rank(target)]
//
// written word-wise into the target's bitmap row — no float comparison
// in the hot loop. Weak dominance over-counts exactly the candidates
// with a bit-identical known row (and the target itself), so a final
// pass clears each exact-duplicate group and counts the rows.
//
// Two parallel schedules produce the identical bitmap: when there are at
// least as many chunks as workers, whole chunks are claimed from an
// atomic counter and processed with per-worker scratch tables (chunks
// write disjoint word columns of the target rows, so no locks); with few
// chunks the serial chunk loop shards the target AND loop instead (shards
// own disjoint target ranges over read-only tables). Either way every
// output word has exactly one writer, so the result is bit-for-bit
// identical to the one-worker build.
func (ix *Index) buildBitmap() {
	m, dims := ix.m, ix.dims

	// Exact-size row allocation from one backing array: row p covers the
	// words of [0, runEnd[p]).
	rowWords := make([]int, m)
	total := 0
	for p := 0; p < m; p++ {
		rowWords[p] = (ix.runEnd[p] + 63) >> 6
		total += rowWords[p]
	}
	backing := make([]uint64, total)
	ix.domBy = make([]bitset.Set, m)
	off := 0
	for p := 0; p < m; p++ {
		ix.domBy[p] = bitset.Set(backing[off : off+rowWords[p] : off+rowWords[p]])
		off += rowWords[p]
	}
	ix.counts = make([]int, m)
	ix.dupOf = make([]int32, m)
	for p := range ix.dupOf {
		ix.dupOf[p] = -1
	}
	if m == 0 || dims == 0 {
		// No attributes means no strict preference anywhere: empty rows.
		ix.attrOrder = make([][]int32, dims)
		for j := range ix.attrOrder {
			ix.attrOrder[j] = []int32{}
		}
		return
	}

	ix.buildAttrOrder()

	const cw = indexCandChunk >> 6 // words per full chunk
	nchunks := (m + indexCandChunk - 1) / indexCandChunk
	workers := workerCount()
	if workers > 1 && m >= parallelThreshold && nchunks >= workers {
		// Chunk pool: each worker owns private scratch tables and claims
		// chunk indices from the counter until they run out.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				prefix := make([]uint64, dims*(indexCandChunk+1)*cw)
				rank := make([]int32, dims*m)
				for {
					c := int(next.Add(1)) - 1
					if c >= nchunks {
						return
					}
					ix.buildChunk(c*indexCandChunk, prefix, rank, false)
				}
			}()
		}
		wg.Wait()
	} else {
		prefix := make([]uint64, dims*(indexCandChunk+1)*cw)
		rank := make([]int32, dims*m)
		for cbase := 0; cbase < m; cbase += indexCandChunk {
			if !ix.buildChunk(cbase, prefix, rank, true) {
				break
			}
		}
	}

	ix.buildDupGroups()

	var acc indexAccum
	shard(m, func(lo, hi int) {
		localPairs := 0
		for p := lo; p < hi; p++ {
			row := ix.domBy[p]
			if g := ix.dupOf[p]; g >= 0 {
				for _, q := range ix.dupGroups[g] {
					row.Remove(int(q)) // duplicates (incl. self) are weak only
				}
			} else {
				row.Remove(p)
			}
			c := row.Count()
			ix.counts[p] = c
			localPairs += c
		}
		acc.mu.Lock()
		acc.pairs += localPairs
		acc.mu.Unlock()
	})
	acc.mu.Lock()
	ix.stats.Pairs = acc.pairs
	acc.mu.Unlock()
}

// buildAttrOrder materializes the global per-attribute value order
// (ascending, ties by position, which the stable index guarantees to be
// deterministic): the source of both chunk-sorted prefixes and target
// ranks. Attributes sort independently, so they sort on separate workers.
func (ix *Index) buildAttrOrder() {
	m, dims, cols := ix.m, ix.dims, ix.cols
	ix.attrOrder = make([][]int32, dims)
	shardSized(dims, m, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			ord := make([]int32, m)
			for p := range ord {
				ord[p] = int32(p)
			}
			col := cols[j*m : (j+1)*m]
			sort.Slice(ord, func(x, y int) bool { return col[ord[x]] < col[ord[y]] })
			ix.attrOrder[j] = ord
		}
	})
}

// buildChunk processes one candidate chunk: it fills the caller-owned
// prefix/rank scratch tables for every attribute, then ANDs the selected
// prefix rows into the word column this chunk owns of every target row.
// With shardTargets the AND loop fans out across workers (the serial
// chunk schedule); otherwise the caller is one of several chunk workers
// and runs it inline. Returns false when the chunk — and, runEnd being
// nondecreasing, every later one — has no targets.
func (ix *Index) buildChunk(cbase int, prefix []uint64, rank []int32, shardTargets bool) bool {
	m, dims, cols := ix.m, ix.dims, ix.cols
	const cw = indexCandChunk >> 6
	cend := cbase + indexCandChunk
	if cend > m {
		cend = m
	}
	// A target's candidates stop at its equal-score run, and runEnd is
	// nondecreasing in position, so the targets of this chunk are the
	// suffix starting at the first position whose run reaches past cbase.
	tlo := sort.Search(m, func(p int) bool { return ix.runEnd[p] > cbase })
	if tlo == m {
		return false
	}

	for j := 0; j < dims; j++ {
		ptab := prefix[j*(indexCandChunk+1)*cw:]
		for w := 0; w < cw; w++ {
			ptab[w] = 0 // rank-0 row
		}
		col := cols[j*m : (j+1)*m]
		rnk := rank[j*m:]
		ord := ix.attrOrder[j]
		// Walk the global order in equal-value groups: admit the
		// group's chunk members into the running prefix first, then
		// stamp every group member's rank, so rank counts ties.
		cnt := 0
		for lo := 0; lo < m; {
			hi := lo + 1
			v := col[ord[lo]]
			// skylint:ignore floateq rank groups mirror the exact <=/< of DominatesKnown
			for hi < m && col[ord[hi]] == v {
				hi++
			}
			for i := lo; i < hi; i++ {
				p := int(ord[i])
				if p < cbase || p >= cend {
					continue
				}
				src := ptab[cnt*cw : cnt*cw+cw]
				cnt++
				dst := ptab[cnt*cw : cnt*cw+cw]
				copy(dst, src)
				b := uint(p - cbase)
				dst[b>>6] |= 1 << (b & 63)
			}
			for i := lo; i < hi; i++ {
				rnk[ord[i]] = int32(cnt)
			}
			lo = hi
		}
	}

	wbase := cbase >> 6
	and := func(lo, hi int) {
		for pt := tlo + lo; pt < tlo+hi; pt++ {
			row := ix.domBy[pt]
			lim := len(row) - wbase
			if lim > cw {
				lim = cw
			}
			p0 := prefix[int(rank[pt])*cw:]
			row = row[wbase : wbase+lim]
			for w := 0; w < lim; w++ {
				v := p0[w]
				for j := 1; j < dims; j++ {
					v &= prefix[(j*(indexCandChunk+1)+int(rank[j*m+pt]))*cw+w]
				}
				row[w] = v
			}
		}
	}
	if shardTargets {
		shard(m-tlo, and)
	} else {
		and(0, m-tlo)
	}
	return true
}

// buildDupGroups computes the exact-duplicate groups: tuples with
// bit-identical known rows are mutually weakly-dominating but never
// strictly, and they necessarily share an equal-score run, so only
// multi-tuple runs need the row comparison. The relation depends only on
// attribute values, so the groups stay valid across Add/Remove cycles of
// the dynamic path.
func (ix *Index) buildDupGroups() {
	ix.dupGroups = nil
	var members []int32
	for lo := 0; lo < ix.m; lo = ix.runEnd[lo] {
		hi := ix.runEnd[lo]
		if hi-lo < 2 {
			continue
		}
		members = members[:0]
		for p := lo; p < hi; p++ {
			members = append(members, int32(p))
		}
		sort.Slice(members, func(x, y int) bool { return ix.rowLess(int(members[x]), int(members[y])) })
		for a := 0; a < len(members); {
			b := a + 1
			for b < len(members) && ix.rowEqual(int(members[a]), int(members[b])) {
				b++
			}
			if b-a >= 2 {
				g := append([]int32(nil), members[a:b]...)
				for _, p := range g {
					ix.dupOf[p] = int32(len(ix.dupGroups))
				}
				ix.dupGroups = append(ix.dupGroups, g)
			}
			a = b
		}
	}
}

// rowLess orders positions by their known rows lexicographically.
func (ix *Index) rowLess(p, q int) bool {
	for j := 0; j < ix.dims; j++ {
		pv, qv := ix.cols[j*ix.m+p], ix.cols[j*ix.m+q]
		// skylint:ignore floateq duplicate grouping must be bit-exact to match DominatesKnown
		if pv != qv {
			return pv < qv
		}
	}
	return false
}

// rowEqual reports bit-exact equality of two positions' known rows.
func (ix *Index) rowEqual(p, q int) bool {
	for j := 0; j < ix.dims; j++ {
		// skylint:ignore floateq duplicate grouping must be bit-exact to match DominatesKnown
		if ix.cols[j*ix.m+p] != ix.cols[j*ix.m+q] {
			return false
		}
	}
	return true
}

// transpose builds dom (dominated-by rows) from domBy (dominators-of
// rows) with 64×64 bit-block transposes. Shards own disjoint destination
// row blocks, so writes never race.
func (ix *Index) transpose() {
	m := ix.m
	words := (m + 63) >> 6
	backing := make([]uint64, m*words)
	ix.dom = make([]bitset.Set, m)
	for p := 0; p < m; p++ {
		ix.dom[p] = bitset.Set(backing[p*words : (p+1)*words : (p+1)*words])
	}
	blocks := words
	// Partition units are 64-row blocks, so the fan-out decision weighs
	// the tuple count, not the block count.
	shardSized(blocks, m, func(lo, hi int) {
		var blk [64]uint64
		for bc := lo; bc < hi; bc++ { // destination row block = source word column
			for br := 0; br < blocks; br++ { // source row block = destination word column
				any := false
				for k := 0; k < 64; k++ {
					var wv uint64
					if pt := br<<6 + k; pt < m {
						if row := ix.domBy[pt]; bc < len(row) {
							wv = row[bc]
						}
					}
					blk[k] = wv
					any = any || wv != 0
				}
				if !any {
					continue
				}
				transpose64(&blk)
				for k := 0; k < 64; k++ {
					if ps := bc<<6 + k; ps < m && blk[k] != 0 {
						ix.dom[ps][br] = blk[k]
					}
				}
			}
		}
	})
}

// transpose64 transposes a 64×64 bit matrix in place: afterwards, bit j
// of word i is the former bit i of word j (Hacker's Delight 7-3 adapted
// to 64 bits and the bit-k-is-column-k convention: each pass swaps the
// off-diagonal blocks of the current block size, halving it).
func transpose64(a *[64]uint64) {
	mask := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := ((a[k] >> j) ^ a[k+int(j)]) & mask
			a[k] ^= t << j
			a[k+int(j)] ^= t
		}
		mask ^= mask << (j >> 1)
	}
}

// Stats returns the build statistics.
func (ix *Index) Stats() IndexStats { return ix.stats }

// N returns the number of tuples currently indexed (alive).
func (ix *Index) N() int {
	if ix.dyn != nil {
		return ix.m - ix.dyn.dead
	}
	return ix.m
}

// Matches reports whether the index currently covers exactly this
// dataset — built over it with no alive restriction and with every tuple
// presently alive — i.e. whether a caller holding d may adopt it
// wholesale. An index that drifted away through Remove calls stops
// matching until the removals are undone; pair it with Generation to
// detect mutation between two looks at the same index.
func (ix *Index) Matches(d *dataset.Dataset) bool { return ix.d == d && ix.allAlive() }

// allAlive reports whether every tuple of the dataset is indexed: no
// build-time restriction and no outstanding dynamic removals.
func (ix *Index) allAlive() bool {
	return ix.alive == nil && (ix.dyn == nil || ix.dyn.dead == 0)
}

// aliveAt reports whether position p is currently indexed (always true
// until the index goes dynamic and the tuple is removed).
func (ix *Index) aliveAt(p int) bool { return ix.dyn == nil || ix.dyn.aliveBits.Has(p) }

// Generation returns the mutation counter: it starts at zero and every
// successful Add or Remove increments it, so equal generations from the
// same Index imply identical dominance state. Derived caches
// (DominatingSets, and through it ImmediateDominators) key off it to
// rebuild lazily after mutations.
func (ix *Index) Generation() uint64 { return ix.gen }

// Dominates reports order-theoretic dominance s ≺AK t straight from the
// bitmap. Dead tuples dominate nothing and are dominated by nothing.
//
//skylint:hotpath
func (ix *Index) Dominates(s, t int) bool {
	ps, pt := ix.pos[s], ix.pos[t]
	if ps < 0 || pt < 0 {
		return false
	}
	return ps>>6 < len(ix.domBy[pt]) && ix.domBy[pt].Has(ps)
}

// DominatingSets returns DS(t) = {s : s ≺AK t} for every tuple, indexed
// by original tuple index with dominators in ascending index order —
// bit-for-bit the result of the naive DominatingSets (dead tuples and
// skyline tuples get nil sets). The first call materializes the sets by
// transposed counting fill: every set is carved at its exact size from
// one backing array, so nothing regrows. The result is memoized and
// shared; callers must not modify it. Add/Remove invalidate the memo (by
// generation), so the next call rebuilds against the mutated bitmap.
func (ix *Index) DominatingSets() [][]int {
	ix.setsMu.Lock()
	defer ix.setsMu.Unlock()
	if !ix.setsValid || ix.setsGen != ix.gen {
		ix.buildSets()
		ix.setsValid = true
		ix.setsGen = ix.gen
	}
	return ix.sets
}

func (ix *Index) buildSets() {
	m, n := ix.m, ix.n
	total := 0
	off := make([]int, m+1)
	for p := 0; p < m; p++ {
		off[p+1] = off[p] + ix.counts[p]
		total += ix.counts[p]
	}
	backing := make([]int, total)
	cursor := append([]int(nil), off[:m]...)
	// The scatter walks sources in ascending original index, so every
	// target's set fills in ascending dominator order without a sort.
	// Workers own disjoint word ranges of the transposed rows — hence
	// disjoint target-position ranges, cursors, and backing segments — so
	// the parallel fill writes every slot exactly once, in the same order
	// as the serial one.
	words := (m + 63) >> 6
	shardSized(words, m, func(wlo, whi int) {
		for u := 0; u < n; u++ {
			ps := ix.pos[u]
			if ps < 0 {
				continue
			}
			row := ix.dom[ps]
			for wi := wlo; wi < whi; wi++ {
				w := row[wi]
				for w != 0 {
					pt := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					backing[cursor[pt]] = u
					cursor[pt]++
				}
			}
		}
	})
	sets := make([][]int, n)
	for p := 0; p < m; p++ {
		if ix.counts[p] > 0 {
			sets[ix.order[p]] = backing[off[p]:off[p+1]:off[p+1]]
		}
	}
	ix.sets = sets
}

// ImmediateDominators returns c(t) for every tuple: the members of DS(t)
// with no intermediate dominator, identical to the naive
// ImmediateDominators over this index's dominating sets. Each membership
// test is one early-exit bitset intersection — s is immediate iff the set
// of tuples s dominates is disjoint from DS(t) — instead of an
// O(|DS|·d) rescan per member.
func (ix *Index) ImmediateDominators() [][]int {
	sets := ix.DominatingSets()
	im := make([][]int, ix.n)
	shard(ix.m, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			t := ix.order[p]
			ds := sets[t]
			if len(ds) == 0 {
				continue
			}
			dominators := ix.domBy[p]
			for _, s := range ds {
				if !ix.dom[ix.pos[s]].Intersects(dominators) {
					im[t] = append(im[t], s)
				}
			}
		}
	})
	return im
}

// FreqCounter returns a co-domination frequency counter backed by the
// index's bitmap; building it costs nothing beyond the index itself.
func (ix *Index) FreqCounter() *FreqCounter {
	return &FreqCounter{dominated: ix.dom, pos: ix.pos}
}

// KnownSkyline returns SKY_AK over the indexed tuples — exactly the
// alive tuples with empty dominating sets — in ascending index order.
func (ix *Index) KnownSkyline() []int {
	var sky []int
	for t := 0; t < ix.n; t++ {
		if p := ix.pos[t]; p >= 0 && ix.counts[p] == 0 && ix.aliveAt(p) {
			sky = append(sky, t)
		}
	}
	return sky
}

// OracleSkyline computes SKY_A(R) from the bitmap plus the latent crowd
// values, identical to the naive OracleSkyline: a tuple is dominated over
// A = AK ∪ AC iff some AK-dominator also weakly precedes it on every
// crowd attribute, or some AK-identical tuple strictly precedes it in AC.
// AK-identical tuples are exactly the members of the target's duplicate
// group, so the second case walks the persisted group instead of
// re-comparing rows. Like the naive oracle it may only be used for
// grading, never by a crowd-enabled algorithm.
func (ix *Index) OracleSkyline() []int {
	if !ix.allAlive() {
		panic("skyline: OracleSkyline needs an unrestricted index")
	}
	d, m := ix.d, ix.m
	dc := d.CrowdDims()
	inSky := make([]bool, m)
	shard(m, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			t := ix.order[p]
			dominated := false
		scan:
			for wi, w := range ix.domBy[p] {
				for w != 0 {
					s := ix.order[wi<<6+bits.TrailingZeros64(w)]
					w &= w - 1
					// s ≺AK t already holds, so s ≺A t iff s is nowhere
					// worse on the crowd attributes.
					if latentWeaklyPrefers(d, s, t, dc) {
						dominated = true
						break scan
					}
				}
			}
			if g := ix.dupOf[p]; g >= 0 && !dominated {
				for _, qp := range ix.dupGroups[g] {
					q := int(qp)
					if q == p {
						continue
					}
					if latentStrictlyDominates(d, ix.order[q], t, dc) {
						dominated = true
						break
					}
				}
			}
			inSky[p] = !dominated
		}
	})
	var sky []int
	for t := 0; t < ix.n; t++ {
		if inSky[ix.pos[t]] {
			sky = append(sky, t)
		}
	}
	return sky
}

// latentWeaklyPrefers reports that s is no worse than t on every crowd
// attribute.
func latentWeaklyPrefers(d *dataset.Dataset, s, t, dc int) bool {
	for j := 0; j < dc; j++ {
		if d.Latent(s, j) > d.Latent(t, j) {
			return false
		}
	}
	return true
}

// latentStrictlyDominates reports s ≺AC t: no worse everywhere, strictly
// better somewhere.
func latentStrictlyDominates(d *dataset.Dataset, s, t, dc int) bool {
	strict := false
	for j := 0; j < dc; j++ {
		sv, tv := d.Latent(s, j), d.Latent(t, j)
		if sv > tv {
			return false
		}
		if sv < tv {
			strict = true
		}
	}
	return strict
}

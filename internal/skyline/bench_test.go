package skyline

import (
	"fmt"
	"testing"

	"crowdsky/internal/dataset"
)

// Micro-benchmarks for the machine substrate: algorithm families across
// distributions and the sharded constructions.

func benchData(b *testing.B, n, dk int, dist dataset.Distribution) *dataset.Dataset {
	b.Helper()
	return randData(1, n, dk, 0, dist)
}

func BenchmarkSkylineAlgorithms(b *testing.B) {
	algos := []struct {
		name string
		run  func(*dataset.Dataset) []int
	}{
		{"BNL", BNL},
		{"SFS", SFS},
		{"DivideConquer", DivideConquer},
		{"SkyTree", SkyTree},
	}
	for _, dist := range []dataset.Distribution{dataset.Independent, dataset.AntiCorrelated} {
		d := benchData(b, 2000, 4, dist)
		for _, a := range algos {
			b.Run(fmt.Sprintf("%s/%s", a.name, dist), func(b *testing.B) {
				var size int
				for i := 0; i < b.N; i++ {
					size = len(a.run(d))
				}
				b.ReportMetric(float64(size), "skyline_size")
			})
		}
	}
}

func BenchmarkDominatingSets(b *testing.B) {
	d := benchData(b, 4000, 4, dataset.Independent)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DominatingSets(d)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DominatingSetsParallel(d)
		}
	})
	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewIndex(d).DominatingSets()
		}
	})
}

// BenchmarkIndexBuild isolates the one-time cost of the columnar engine:
// layout, sort, tiled bitmap kernel, and transpose.
func BenchmarkIndexBuild(b *testing.B) {
	for _, n := range []int{1000, 4000, 10000} {
		d := benchData(b, n, 4, dataset.Independent)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var pairs int
			for i := 0; i < b.N; i++ {
				pairs = NewIndex(d).Stats().Pairs
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkImmediateDominators pits the O(|DS|²·d) row rescan against the
// bitset intersection tests of the index (index build included, since the
// scan kernel gets its sets input for free).
func BenchmarkImmediateDominators(b *testing.B) {
	d := benchData(b, 4000, 4, dataset.Independent)
	sets := DominatingSetsParallel(d)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ImmediateDominatorsParallel(d, sets)
		}
	})
	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewIndex(d).ImmediateDominators()
		}
	})
}

// BenchmarkOracleSkyline compares the row-scan oracle with the
// bitmap-backed readout (index build included).
func BenchmarkOracleSkyline(b *testing.B) {
	d := randData(1, 4000, 4, 2, dataset.Independent)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			OracleSkylineParallel(d)
		}
	})
	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewIndex(d).OracleSkyline()
		}
	})
}

func BenchmarkLayers(b *testing.B) {
	d := benchData(b, 1000, 4, dataset.AntiCorrelated)
	var count int
	for i := 0; i < b.N; i++ {
		count = len(Layers(d))
	}
	b.ReportMetric(float64(count), "layers")
}

func BenchmarkFreqCounter(b *testing.B) {
	d := benchData(b, 2000, 4, dataset.Independent)
	sets := DominatingSets(d)
	fc := NewFreqCounter(d, sets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc.Freq(i%d.N(), (i*31+7)%d.N())
	}
}

package skyline

import (
	"math/rand"
	"testing"

	"crowdsky/internal/dataset"
)

// TestZeroAlloc is the CI gate for the dominance query kernels: once an
// index (or frequency counter) is built, point queries must not allocate.
// Dominates is two array loads and a bit test; Freq is one AND-popcount
// pass over pre-built rows. A regression here means a query started
// materializing state that belongs in the build phase.
func TestZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := dataset.MustGenerate(dataset.GenerateConfig{
		N: 256, KnownDims: 4, CrowdDims: 2, Distribution: dataset.Independent,
	}, rng)
	ix := NewIndex(d)
	fc := NewFreqCounter(d, DominatingSets(d))
	query := func() {
		for s := 0; s < 16; s++ {
			for u := 0; u < 16; u++ {
				_ = ix.Dominates(s, u)
				_ = fc.Freq(s, u)
			}
		}
	}
	if avg := testing.AllocsPerRun(100, query); avg != 0 {
		t.Fatalf("index query allocated %.2f times per run; want 0", avg)
	}
}

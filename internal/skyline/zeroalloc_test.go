package skyline

import (
	"math/rand"
	"testing"

	"crowdsky/internal/dataset"
)

// TestZeroAlloc is the CI gate for the dominance query kernels: once an
// index (or frequency counter) is built, point queries must not allocate.
// Dominates is two array loads and a bit test; Freq is one AND-popcount
// pass over pre-built rows. A regression here means a query started
// materializing state that belongs in the build phase.
func TestZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := dataset.MustGenerate(dataset.GenerateConfig{
		N: 256, KnownDims: 4, CrowdDims: 2, Distribution: dataset.Independent,
	}, rng)
	ix := NewIndex(d)
	fc := NewFreqCounter(d, DominatingSets(d))
	query := func() {
		for s := 0; s < 16; s++ {
			for u := 0; u < 16; u++ {
				_ = ix.Dominates(s, u)
				_ = fc.Freq(s, u)
			}
		}
	}
	if avg := testing.AllocsPerRun(100, query); avg != 0 {
		t.Fatalf("index query allocated %.2f times per run; want 0", avg)
	}
}

// TestZeroAllocIncremental gates the incremental kernels: once the index
// has gone dynamic (the first mutation converts the layout and installs
// the pooled scratch rows), a Remove/Add cycle must not allocate — the
// compare sweep writes into the reused scratch sets and every bitmap bit
// it touches lives in rows carved at conversion time.
func TestZeroAllocIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := dataset.MustGenerate(dataset.GenerateConfig{
		N: 512, KnownDims: 4, CrowdDims: 0, Distribution: dataset.AntiCorrelated,
	}, rng)
	ix := NewIndex(d)
	ix.Remove(7) // convert to the dynamic layout once
	ix.Add(7)
	step := func() {
		for t2 := 100; t2 < 108; t2++ {
			ix.Remove(t2)
		}
		for t2 := 100; t2 < 108; t2++ {
			ix.Add(t2)
		}
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("incremental update allocated %.2f times per run; want 0", avg)
	}
}

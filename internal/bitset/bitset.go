// Package bitset implements a fixed-capacity bit set used for dense
// reachability and domination bookkeeping. Tuple indices are small dense
// integers throughout this repository, which makes word-packed bitsets both
// the fastest and the most memory-frugal representation for transitive
// closures (package prefgraph) and co-domination counts (package skyline).
package bitset

import "math/bits"

// Set is a bit set over [0, n) packed into 64-bit words. The zero value is
// an empty set of capacity 0; use New to size it.
type Set []uint64

// New returns an empty bit set able to hold n bits.
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Add sets bit i.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Remove clears bit i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Or sets s to the union s | t. Both sets must have the same capacity.
func (s Set) Or(t Set) {
	for i, w := range t {
		s[i] |= w
	}
}

// OrPlus sets s to the union s | t with element i added, in a single
// word pass. It fuses the Add(i)+Or(t) sequence of the closure
// propagation hot paths (package prefgraph) so the row is touched once.
// t must not exceed s's capacity and i must be within it.
func (s Set) OrPlus(t Set, i int) {
	for w, v := range t {
		s[w] |= v
	}
	s[i>>6] |= 1 << (uint(i) & 63)
}

// OrChanged is like Or but reports whether s changed.
func (s Set) OrChanged(t Set) bool {
	changed := false
	for i, w := range t {
		nw := s[i] | w
		if nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

// AndNot sets s to the difference s &^ t.
func (s Set) AndNot(t Set) {
	for i, w := range t {
		s[i] &^= w
	}
}

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// And sets s to the intersection s & t. Both sets must have the same
// capacity.
func (s Set) And(t Set) {
	for i, w := range t {
		s[i] &= w
	}
}

// Equal reports whether s and t hold exactly the same elements. Both sets
// must have the same capacity.
func (s Set) Equal(t Set) bool {
	for i, w := range t {
		if s[i] != w {
			return false
		}
	}
	return true
}

// AndCount returns |s & t| without materializing the intersection.
func (s Set) AndCount(t Set) int {
	c := 0
	for i, w := range t {
		c += bits.OnesCount64(s[i] & w)
	}
	return c
}

// Intersects reports whether s and t share at least one element, stopping
// at the first common word. The sets may have different capacities; only
// the common prefix is examined, which is exact when the shorter set's
// missing words are known to be zero (the truncated-row convention of the
// skyline dominance bitmaps).
func (s Set) Intersects(t Set) bool {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Clear removes all elements.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// ForEach calls fn for every set bit in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Members appends the indices of all set bits to dst and returns it.
func (s Set) Members(dst []int) []int {
	s.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}

// Carve returns count independent n-bit Sets carved from one backing
// allocation: two heap objects instead of count+1. Structures that hold
// one set per element — the preference-graph closures, the dominance
// bitmap rows — pay O(1) allocations for their whole lifetime this way,
// and the rows land adjacent in memory in index order, which is the
// order the word-scan kernels walk them. Each carved set has full
// capacity (appending to one cannot spill into its neighbor).
func Carve(count, n int) []Set {
	words := (n + 63) / 64
	backing := make([]uint64, count*words)
	sets := make([]Set, count)
	for i := range sets {
		sets[i] = Set(backing[i*words : (i+1)*words : (i+1)*words])
	}
	return sets
}

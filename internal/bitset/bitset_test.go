package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Count() != 0 {
		t.Fatalf("fresh set non-empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(129)
	if !s.Has(0) || !s.Has(63) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Errorf("Has wrong across word boundaries")
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Errorf("Remove broken")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 64, 129}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("ForEach = %v, want %v", got, want)
	}
	if m := s.Members(nil); len(m) != 3 || m[2] != 129 {
		t.Errorf("Members = %v", m)
	}
	c := s.Clone()
	c.Clear()
	if c.Count() != 0 || s.Count() != 3 {
		t.Errorf("Clone/Clear aliasing")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(200)
	b := New(200)
	a.Add(1)
	a.Add(100)
	b.Add(100)
	b.Add(150)
	if a.AndCount(b) != 1 {
		t.Errorf("AndCount = %d, want 1", a.AndCount(b))
	}
	u := a.Clone()
	u.Or(b)
	if u.Count() != 3 || !u.Has(150) {
		t.Errorf("Or wrong: %v", u.Members(nil))
	}
	if u.OrChanged(b) {
		t.Errorf("OrChanged reported change on superset")
	}
	fresh := New(200)
	if !fresh.OrChanged(a) || fresh.Count() != 2 {
		t.Errorf("OrChanged failed to apply")
	}
	u.AndNot(b)
	if u.Has(100) || u.Has(150) || !u.Has(1) {
		t.Errorf("AndNot wrong: %v", u.Members(nil))
	}
	i := a.Clone()
	i.And(b)
	if i.Count() != 1 || !i.Has(100) {
		t.Errorf("And wrong: %v", i.Members(nil))
	}
	if !a.Equal(a.Clone()) {
		t.Errorf("Equal(clone) = false")
	}
	if a.Equal(b) {
		t.Errorf("Equal on different sets = true")
	}
}

func TestOrPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		const n = 300
		s, u, ref := New(n), New(n), New(n)
		for k := 0; k < 40; k++ {
			s.Add(rng.Intn(n))
			u.Add(rng.Intn(n))
		}
		i := rng.Intn(n)
		copy(ref, s)
		ref.Or(u)
		ref.Add(i)
		s.OrPlus(u, i)
		if !s.Equal(ref) {
			t.Fatalf("trial %d: OrPlus differs from Add+Or", trial)
		}
	}
	// Shorter operand: only the common prefix is unioned, like Or.
	s, u := New(200), New(64)
	u.Add(5)
	s.OrPlus(u, 199)
	if !s.Has(5) || !s.Has(199) || s.Count() != 2 {
		t.Fatalf("OrPlus with short operand: %v", s.Members(nil))
	}
}

func TestCarve(t *testing.T) {
	sets := Carve(5, 130)
	if len(sets) != 5 {
		t.Fatalf("Carve returned %d sets", len(sets))
	}
	for i, s := range sets {
		if len(s) != len(New(130)) {
			t.Fatalf("set %d has %d words, want %d", i, len(s), len(New(130)))
		}
		s.Add(i)
		s.Add(129)
	}
	for i, s := range sets {
		if s.Count() != 2 || !s.Has(i) || !s.Has(129) {
			t.Fatalf("set %d leaked bits from a neighbor: %v", i, s.Members(nil))
		}
	}
	// Appending to a carved set must not clobber its neighbor.
	grown := append(sets[0], ^uint64(0))
	_ = grown
	if sets[1].Count() != 2 {
		t.Fatalf("append to carved set spilled into neighbor")
	}
	if got := Carve(0, 10); len(got) != 0 {
		t.Fatalf("Carve(0, n) = %v", got)
	}
	if got := Carve(3, 0); len(got) != 3 || len(got[0]) != 0 {
		t.Fatalf("Carve(n, 0) wrong shape")
	}
}

// TestAgainstMapModel drives random operations against a map-based model.
func TestAgainstMapModel(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 300
		s := New(n)
		model := map[int]bool{}
		for step := 0; step < 500; step++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Add(i)
				model[i] = true
			} else {
				s.Remove(i)
				delete(model, i)
			}
		}
		if s.Count() != len(model) {
			return false
		}
		var got, want []int
		got = s.Members(got)
		for i := range model {
			want = append(want, i)
		}
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

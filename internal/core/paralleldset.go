package core

import (
	"sort"

	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
)

// ParallelDSet runs the dominating-set partitioning parallelization of
// Section 4.1. Tuples are grouped by the size of their (initial)
// dominating sets — same-size tuples cannot dominate each other (Lemma 3),
// removing dependency C1 — and each group is split into batches of tuples
// with pair-wise disjoint dominating sets, removing dependency C2. Groups
// and batches run sequentially; within a batch, every tuple contributes its
// next question to a shared round, so the batch's latency is the longest
// single-tuple pipeline rather than the sum (Example 7).
//
// The questions asked are exactly those of the serial CrowdSky run with the
// same pruning options; only their arrangement into rounds differs.
func ParallelDSet(d *dataset.Dataset, pf crowd.Platform, opts Options) *Result {
	ss := newSession(d, pf, opts)
	defer ss.release()
	ss.emitRunStart("parallel-dset")
	ss.preprocessDegenerate()
	sets := ss.prepMachine()

	n := d.N()
	inSkyline := make([]bool, n)
	nonSkyline := make([]bool, n)
	var order []int
	for t := 0; t < n; t++ {
		if !ss.alive[t] {
			continue
		}
		if len(sets[t]) == 0 {
			inSkyline[t] = true
			continue
		}
		order = append(order, t)
	}
	// Group by initial dominating-set size, ascending (the partitioning of
	// Section 4.1; sizes are taken before pruning so Lemma 3 applies).
	sort.SliceStable(order, func(x, y int) bool {
		return len(sets[order[x]]) < len(sets[order[y]])
	})

	for lo := 0; lo < len(order); {
		hi := lo
		size := len(sets[order[lo]])
		for hi < len(order) && len(sets[order[hi]]) == size {
			hi++
		}
		group := order[lo:hi]
		lo = hi

		for _, batch := range disjointBatches(ss, group, sets, nonSkyline, opts, n) {
			evals := make([]*tupleEval, len(batch))
			for i, t := range batch {
				evals[i] = newTupleEval(ss, t, sets[t], opts, nonSkyline)
			}
			runLockstep(ss, evals)
			for _, te := range evals {
				if te.killed {
					nonSkyline[te.t] = true
				} else {
					inSkyline[te.t] = true
				}
			}
		}
	}
	return ss.finish(inSkyline)
}

// disjointBatches greedily partitions a same-size group into batches whose
// members have pair-wise disjoint dominating sets. The disjointness check
// uses the sets as CrowdSky would see them at question-generation time —
// after the P1 removal of complete non-skyline members and the P2
// reduction to SKY_AC (Algorithm 1, line 9) — because dependency C2 only
// concerns the members that can still appear in probing and Q(t)
// questions. Checking the reduced sets admits much larger batches on
// dense dominance structures without reintroducing C2.
func disjointBatches(ss *session, group []int, sets [][]int, nonSkyline []bool, opts Options, n int) [][]int {
	type batch struct {
		members []int
		used    []bool
	}
	var batches []*batch
	effective := func(t int) []int {
		var out []int
		for _, s := range sets[t] {
			if opts.P1 && nonSkyline[s] {
				continue
			}
			out = append(out, s)
		}
		if opts.P2 {
			kept := out[:0]
			for _, u := range out {
				dominated := false
				for _, v := range out {
					if v != u && ss.acDominates(v, u) {
						dominated = true
						break
					}
				}
				if !dominated {
					kept = append(kept, u)
				}
			}
			out = kept
		}
		return out
	}
	for _, t := range group {
		ds := effective(t)
		placed := false
		for _, b := range batches {
			overlap := false
			for _, s := range ds {
				if b.used[s] {
					overlap = true
					break
				}
			}
			if !overlap {
				b.members = append(b.members, t)
				for _, s := range ds {
					b.used[s] = true
				}
				placed = true
				break
			}
		}
		if !placed {
			b := &batch{used: make([]bool, n)}
			b.members = append(b.members, t)
			for _, s := range ds {
				b.used[s] = true
			}
			batches = append(batches, b)
		}
	}
	out := make([][]int, len(batches))
	for i, b := range batches {
		out[i] = b.members
	}
	return out
}

// runLockstep drives a set of tuple pipelines round by round: each round,
// every still-active tuple contributes its next crowd-needing pair; pairs
// requested by several tuples are asked once. The loop ends when every
// pipeline is complete.
func runLockstep(ss *session, evals []*tupleEval) {
	active := append([]*tupleEval(nil), evals...)
	for len(active) > 0 && ss.budgetLeft() {
		var reqs []crowd.Request
		seen := make(map[pair]bool, len(active))
		next := active[:0]
		for _, te := range active {
			p, ok := te.next(ss)
			if !ok {
				continue
			}
			next = append(next, te)
			if !seen[p] {
				seen[p] = true
				reqs = ss.unknownAttrs(p.a(), p.b(), te.pendingBackup, reqs)
			}
		}
		active = next
		ss.askRound(reqs)
	}
}

package core

import (
	"sort"

	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/skyline"
	"crowdsky/internal/sortcrowd"
	"crowdsky/internal/voting"
)

// SortAlgorithm selects the crowd-powered sorting algorithm used by the
// Baseline method.
type SortAlgorithm int

const (
	// TournamentSort is the paper's baseline sorter (Section 6.1): fewest
	// comparisons, O(n log n) rounds.
	TournamentSort SortAlgorithm = iota
	// BitonicSort trades more comparisons for O(log² n) rounds; the paper
	// names it as the other candidate sorting baseline (Section 3).
	BitonicSort
)

// String names the algorithm for experiment output.
func (a SortAlgorithm) String() string {
	if a == BitonicSort {
		return "bitonic"
	}
	return "tournament"
}

// Baseline computes the crowdsourced skyline with the paper's sort-based
// baseline: a crowd-powered sort produces the total order of tuples on
// each crowd attribute, and a machine skyline over the known attributes
// plus the obtained ranks yields the result. It asks every comparison the
// sort needs regardless of skyline relevance, which is what CrowdSky's
// pruning avoids.
//
// policy assigns workers per question (freq-independent here: the baseline
// has no importance signal). A nil policy uses one worker.
func Baseline(d *dataset.Dataset, pf crowd.Platform, algo SortAlgorithm, policy voting.Policy) *Result {
	if policy == nil {
		policy = voting.Static{Omega: 1}
	}
	n := d.N()
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	// ranks[j][t] = position of tuple t in the total order of crowd
	// attribute j (0 = most preferred).
	ranks := make([][]int, d.CrowdDims())
	for j := range ranks {
		attr := j
		ask := func(pairs [][2]int) []crowd.Preference {
			reqs := make([]crowd.Request, len(pairs))
			for i, p := range pairs {
				reqs[i] = crowd.Request{
					Q:       crowd.Question{A: p[0], B: p[1], Attr: attr},
					Workers: policy.Workers(0),
				}
			}
			answers := pf.Ask(reqs)
			prefs := make([]crowd.Preference, len(answers))
			for i, a := range answers {
				prefs[i] = a.Pref
			}
			return prefs
		}
		var order []int
		if algo == BitonicSort {
			order = sortcrowd.Bitonic(items, ask)
		} else {
			order = sortcrowd.Tournament(items, ask)
		}
		ranks[j] = make([]int, n)
		for pos, t := range order {
			ranks[j][t] = pos
		}
	}

	// Machine skyline over AK values plus the crowd-derived ranks.
	var sky []int
	for t := 0; t < n; t++ {
		dominated := false
		for s := 0; s < n && !dominated; s++ {
			if s != t && dominatesWithRanks(d, ranks, s, t) {
				dominated = true
			}
		}
		if !dominated {
			sky = append(sky, t)
		}
	}
	sort.Ints(sky)
	st := pf.Stats().Snapshot()
	return &Result{
		Skyline:       sky,
		Questions:     st.Questions,
		Rounds:        st.Rounds,
		WorkerAnswers: st.WorkerAnswers,
		Cost:          pf.Stats().Cost(crowd.DefaultReward),
	}
}

// dominatesWithRanks reports dominance over AK values plus crowd-attribute
// ranks (smaller rank = more preferred). Ranks from a total order are
// distinct, so any AK weak dominance plus a rank advantage is strict.
func dominatesWithRanks(d *dataset.Dataset, ranks [][]int, s, t int) bool {
	strict := false
	sr, tr := d.KnownRow(s), d.KnownRow(t)
	for j := range sr {
		switch {
		case sr[j] > tr[j]:
			return false
		case sr[j] < tr[j]:
			strict = true
		}
	}
	for _, r := range ranks {
		switch {
		case r[s] > r[t]:
			return false
		case r[s] < r[t]:
			strict = true
		}
	}
	return strict
}

// Unary computes the crowdsourced skyline with the quantitative-question
// approach the paper simulates for its comparison against Lofi et al. [12]
// (Section 6.1, Figure 11): one unary question per tuple per crowd
// attribute estimates the missing value, all questions run in a single
// round (one-shot strategy), and a machine skyline over the known
// attributes plus the estimates yields the result.
func Unary(d *dataset.Dataset, up crowd.UnaryPlatform, workers int) *Result {
	n := d.N()
	m := d.CrowdDims()
	reqs := make([]crowd.UnaryRequest, 0, n*m)
	for t := 0; t < n; t++ {
		for j := 0; j < m; j++ {
			reqs = append(reqs, crowd.UnaryRequest{Tuple: t, Attr: j, Workers: workers})
		}
	}
	estimates := up.Estimate(reqs)
	est := make([][]float64, n) // est[t][j]
	for i, r := range reqs {
		if est[r.Tuple] == nil {
			est[r.Tuple] = make([]float64, m)
		}
		est[r.Tuple][r.Attr] = estimates[i]
	}

	var sky []int
	for t := 0; t < n; t++ {
		dominated := false
		for s := 0; s < n && !dominated; s++ {
			if s != t && dominatesWithEstimates(d, est, s, t) {
				dominated = true
			}
		}
		if !dominated {
			sky = append(sky, t)
		}
	}
	sort.Ints(sky)
	st := up.Stats().Snapshot()
	return &Result{
		Skyline:       sky,
		Questions:     st.Questions,
		Rounds:        st.Rounds,
		WorkerAnswers: st.WorkerAnswers,
		Cost:          up.Stats().Cost(crowd.DefaultReward),
	}
}

// dominatesWithEstimates reports dominance over AK values plus estimated
// crowd-attribute values (smaller = more preferred).
func dominatesWithEstimates(d *dataset.Dataset, est [][]float64, s, t int) bool {
	strict := false
	sr, tr := d.KnownRow(s), d.KnownRow(t)
	for j := range sr {
		switch {
		case sr[j] > tr[j]:
			return false
		case sr[j] < tr[j]:
			strict = true
		}
	}
	for j := range est[s] {
		switch {
		case est[s][j] > est[t][j]:
			return false
		case est[s][j] < est[t][j]:
			strict = true
		}
	}
	return strict
}

// Oracle computes the ground-truth skyline over A from the latent values.
// It is re-exported here so downstream users of the core package can grade
// accuracy without importing the skyline substrate directly.
func Oracle(d *dataset.Dataset) []int { return skyline.OracleSkylineParallel(d) }

package core

import (
	"fmt"

	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
)

// ParallelSL runs Algorithm 2: the skyline-layer parallelization of
// Section 4.2. The dominance relationships of AK are organized as skyline
// layers with direct (immediate-dominator) edges c(t); a tuple's question
// pipeline starts as soon as every tuple in c(t) is complete, which implies
// every tuple in DS(t) is complete. All active pipelines contribute one
// question per round.
//
// Unlike ParallelDSet, concurrently active tuples may probe overlapping
// dominating sets (dependency C2 is deliberately violated, Section 4.2),
// which can ask a few extra questions in exchange for far fewer rounds;
// the paper measures the overhead at roughly 10%.
func ParallelSL(d *dataset.Dataset, pf crowd.Platform, opts Options) *Result {
	ss := newSession(d, pf, opts)
	defer ss.release()
	ss.emitRunStart("parallel-sl")
	ss.preprocessDegenerate()
	sets := ss.prepMachine()
	imm := ss.ix.ImmediateDominators()

	n := d.N()
	inSkyline := make([]bool, n)
	nonSkyline := make([]bool, n)
	complete := make([]bool, n)
	var waiting []int
	for t := 0; t < n; t++ {
		if !ss.alive[t] {
			continue
		}
		if len(sets[t]) == 0 {
			// SL1 = SKY_AK(R): complete skyline tuples from the start
			// (Algorithm 2, line 4).
			inSkyline[t] = true
			complete[t] = true
			continue
		}
		waiting = append(waiting, t)
	}

	var active []*tupleEval
	remaining := len(waiting)
	for remaining > 0 {
		// Settle: activate every tuple whose direct dominators are all
		// complete, and retire every pipeline that can finish without
		// further crowd input. Activation and zero-cost completion can
		// cascade, so repeat until stable.
		for {
			progress := false
			keepWaiting := waiting[:0]
			for _, t := range waiting {
				if allComplete(imm[t], complete) {
					active = append(active, newTupleEval(ss, t, sets[t], opts, nonSkyline))
					progress = true
				} else {
					keepWaiting = append(keepWaiting, t)
				}
			}
			waiting = keepWaiting
			keepActive := active[:0]
			for _, te := range active {
				if _, ok := te.next(ss); !ok {
					if te.killed {
						nonSkyline[te.t] = true
					} else {
						inSkyline[te.t] = true
					}
					complete[te.t] = true
					remaining--
					progress = true
				} else {
					keepActive = append(keepActive, te)
				}
			}
			active = keepActive
			if !progress {
				break
			}
		}
		if !ss.budgetLeft() {
			// Budget exhausted: optimistic readout for everything still
			// open (active pipelines not killed, and tuples still waiting).
			for _, te := range active {
				if te.killed {
					nonSkyline[te.t] = true
				} else {
					inSkyline[te.t] = true
				}
			}
			for _, t := range waiting {
				inSkyline[t] = true
			}
			break
		}
		if len(active) == 0 {
			if remaining > 0 {
				// Cannot happen: the dominance DAG is acyclic, so some
				// waiting tuple always has all direct dominators complete.
				panic(fmt.Sprintf("core: ParallelSL stalled with %d incomplete tuples", remaining))
			}
			break
		}
		// One round: every active pipeline contributes its pending pair;
		// duplicates across pipelines are asked once.
		var reqs []crowd.Request
		seen := make(map[pair]bool, len(active))
		for _, te := range active {
			p, ok := te.next(ss)
			if !ok {
				continue // completes in the next settle pass
			}
			if !seen[p] {
				seen[p] = true
				reqs = ss.unknownAttrs(p.a(), p.b(), te.pendingBackup, reqs)
			}
		}
		ss.askRound(reqs)
	}
	return ss.finish(inSkyline)
}

func allComplete(ids []int, complete []bool) bool {
	for _, s := range ids {
		if !complete[s] {
			return false
		}
	}
	return true
}

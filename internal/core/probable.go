package core

import (
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
)

// TupleProbability is a tuple's estimated chance of belonging to the final
// skyline, given the answers collected so far.
type TupleProbability struct {
	Tuple       int
	Probability float64
	// Survived is how many dominating-set members the tuple is already
	// known to beat; Unresolved is how many are still undecided.
	Survived, Unresolved int
}

// ProbabilisticResult extends Result with per-tuple skyline probabilities,
// the readout of the fixed-budget setting of Lofi et al. [12]: instead of
// the optimistic yes/no of Result.Skyline, every tuple carries its chance
// of surviving the questions the budget did not cover.
type ProbabilisticResult struct {
	Result
	// Probabilities has one entry per alive tuple, ascending by tuple
	// index. Complete tuples carry probability exactly 0 or 1.
	Probabilities []TupleProbability
}

// CrowdSkyProbabilistic runs the serial CrowdSky algorithm (typically with
// Options.MaxQuestions set) and estimates each tuple's skyline probability
// under a rank model: if a tuple is already known more preferred than m of
// its remaining dominating-set members and k members are unresolved, the
// chance that it is the most preferred of the whole group is
// (m+1)/(m+k+1) — the probability that a uniformly ranked item that is
// already the minimum of m+1 items stays minimal when k more items join.
// With several crowd attributes the per-attribute probabilities multiply
// (independence across attributes, matching the synthetic generator).
//
// Complete tuples get probability 1 (skyline) or 0 (dominated); with an
// unlimited budget every tuple is complete and the probabilities collapse
// to the exact skyline indicator.
func CrowdSkyProbabilistic(d *dataset.Dataset, pf crowd.Platform, opts Options) *ProbabilisticResult {
	ss := newSession(d, pf, opts)
	defer ss.release()
	ss.emitRunStart("crowdsky-probabilistic")
	ss.preprocessDegenerate()
	sets := ss.prepMachine()

	n := d.N()
	inSkyline := make([]bool, n)
	nonSkyline := make([]bool, n)
	evals := make(map[int]*tupleEval, n)
	var order []int
	for t := 0; t < n; t++ {
		if !ss.alive[t] {
			continue
		}
		if len(sets[t]) == 0 {
			inSkyline[t] = true
			continue
		}
		order = append(order, t)
	}
	if opts.P1 {
		sortByDSSize(order, sets)
	}
	for _, t := range order {
		te := newTupleEval(ss, t, sets[t], opts, nonSkyline)
		evals[t] = te
		for {
			p, ok := te.next(ss)
			if !ok || !ss.budgetLeft() {
				break
			}
			ss.askPairNow(p.a(), p.b())
		}
		if te.killed {
			nonSkyline[t] = true
		} else {
			inSkyline[t] = true
		}
	}
	base := ss.finish(inSkyline)

	out := &ProbabilisticResult{Result: *base}
	for t := 0; t < n; t++ {
		if !ss.alive[t] {
			continue
		}
		tp := TupleProbability{Tuple: t}
		switch {
		case len(sets[t]) == 0:
			tp.Probability = 1 // SKY_AK: complete skyline tuple
		case nonSkyline[t]:
			tp.Probability = 0
		default:
			te := evals[t]
			survived, unresolved := te.tally(ss)
			tp.Survived, tp.Unresolved = survived, unresolved
			tp.Probability = float64(survived+1) / float64(survived+unresolved+1)
		}
		out.Probabilities = append(out.Probabilities, tp)
	}
	return out
}

// tally counts, over the remaining dominating-set members, how many the
// tuple has survived and how many are unresolved.
func (te *tupleEval) tally(ss *session) (survived, unresolved int) {
	for _, s := range te.ds {
		if !te.inDS[s] {
			continue
		}
		switch {
		case ss.pairKnown(s, te.t):
			if !ss.acWeaklyPrefers(s, te.t) {
				survived++
			}
		default:
			unresolved++
		}
	}
	return survived, unresolved
}

package core

import (
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
)

// CrowdSky runs Algorithm 1: the serial crowd-enabled skyline computation
// that minimizes monetary cost. Tuples outside SKY_AK(R) are evaluated one
// by one — in ascending order of dominating-set size when P1 is enabled —
// and for each, the probing questions (P3) and the dominating-set
// questions Q(t) are asked one pair per round until the tuple is complete
// (Definition 4).
//
// With a perfect platform the returned skyline equals the ground-truth
// skyline over A (Theorem 1); with a noisy platform accuracy depends on
// the voting policy in opts.
func CrowdSky(d *dataset.Dataset, pf crowd.Platform, opts Options) *Result {
	ss := newSession(d, pf, opts)
	defer ss.release()
	ss.emitRunStart("crowdsky")
	ss.preprocessDegenerate()
	sets := ss.prepMachine()

	n := d.N()
	inSkyline := make([]bool, n)
	nonSkyline := make([]bool, n)
	var order []int
	for t := 0; t < n; t++ {
		if !ss.alive[t] {
			continue
		}
		if len(sets[t]) == 0 {
			// SKY_AK tuples are complete skyline tuples from the start
			// (Example 2): nothing can dominate them in A.
			inSkyline[t] = true
			continue
		}
		order = append(order, t)
	}
	if opts.P1 {
		// Lemma 3: ascending |DS(t)| guarantees every member of DS(t) is
		// complete before t is evaluated.
		sortByDSSize(order, sets)
	}

	for _, t := range order {
		te := newTupleEval(ss, t, sets[t], opts, nonSkyline)
		for {
			p, ok := te.next(ss)
			if !ok || !ss.budgetLeft() {
				break
			}
			ss.askPairNow(p.a(), p.b())
		}
		if te.killed {
			nonSkyline[t] = true
		} else {
			// Complete skyline tuple — or, with an exhausted budget, the
			// optimistic readout: not yet proven dominated.
			inSkyline[t] = true
		}
	}
	return ss.finish(inSkyline)
}

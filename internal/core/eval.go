package core

import (
	"context"
	"sort"
	"strconv"

	"crowdsky/internal/telemetry"
)

// tupleEval is the per-tuple question pipeline shared by the serial
// algorithm and both parallelizations: optional P1/P2 reduction of the
// dominating set at construction, then the P3 probing questions, then the
// Q(t) questions generated from what remains of DS(t), with the C3 early
// break once t is determined to be a non-skyline tuple.
//
// The pipeline is driven by repeatedly calling next, which performs every
// zero-cost step (answers already inferable from the preference tree) and
// returns the next pair that actually needs crowd input. The caller asks
// the pair (alone for the serial algorithm, batched with other tuples'
// pairs for the parallel ones) and calls next again.
type tupleEval struct {
	t    int
	ds   []int  // current dominating set, shrinking as probing resolves dominance
	inDS []bool // membership mask for ds, indexed by tuple

	probe   []pair // P3 probing questions, most important first
	probeAt int

	askAt  int  // next index into ds for the Q(t) phase
	killed bool // t determined to be a complete non-skyline tuple
	done   bool

	// pendingBackup is the number of further dominators pending against t
	// after the pair last returned by next (0 for probes); it feeds the
	// Backup field of voting.Context.
	pendingBackup int
}

// newTupleEval builds the pipeline for tuple t from its dominating set.
// When P1 is on, complete non-skyline tuples are dropped from the set
// (Corollary 1); when P2 is on, the set is reduced to SKY_AC(DS(t)) using
// the preference tree (Corollary 2); when P3 is on, the probing question
// list P(t) is generated and sorted by descending co-domination frequency
// (Section 3.4).
func newTupleEval(ss *session, t int, ds []int, opts Options, nonSkyline []bool) *tupleEval {
	// The whole construction is the question-generation phase of tuple t;
	// under tracing it becomes a "qgen" span with one sub-span per enabled
	// pruning method, so skytrace can attribute machine time to P1/P2/P3.
	var qctx context.Context
	var qspan *telemetry.Span
	if ss.trace != nil {
		qctx, qspan = telemetry.StartSpan(ss.runContext(), ss.trace, "qgen")
		qspan.SetAttr("tuple", strconv.Itoa(t))
	}
	phase := func(name string) *telemetry.Span {
		if qspan == nil {
			return nil
		}
		_, s := telemetry.StartSpan(qctx, ss.trace, name)
		return s
	}
	te := &tupleEval{t: t, inDS: make([]bool, ss.d.N())}
	var p1span *telemetry.Span
	if opts.P1 {
		p1span = phase("p1")
	}
	for _, s := range ds {
		if opts.P1 && nonSkyline[s] {
			continue
		}
		te.ds = append(te.ds, s)
		te.inDS[s] = true
	}
	if ss.trace != nil && opts.P1 && len(te.ds) < len(ds) {
		ss.trace.Emit(telemetry.P1Prune(t, len(ds), len(te.ds)))
	}
	p1span.End()
	if opts.P2 {
		p2span := phase("p2")
		before := len(te.ds)
		te.reduceToACSkyline(ss)
		if ss.trace != nil && len(te.ds) < before {
			ss.trace.Emit(telemetry.P2Reduce(t, before, len(te.ds)))
		}
		p2span.End()
	}
	if opts.P3 && len(te.ds) > 1 {
		p3span := phase("p3_order")
		for i := 0; i < len(te.ds); i++ {
			for j := i + 1; j < len(te.ds); j++ {
				te.probe = append(te.probe, makePair(te.ds[i], te.ds[j]))
			}
		}
		// Order by freq(u,v) per Options.ProbeOrder; ties keep pair order
		// for determinism.
		switch opts.ProbeOrder {
		case FreqAscending:
			sort.SliceStable(te.probe, func(x, y int) bool {
				return ss.freq(te.probe[x].a(), te.probe[x].b()) < ss.freq(te.probe[y].a(), te.probe[y].b())
			})
		case PairOrder:
			// generation order
		default: // FreqDescending
			sort.SliceStable(te.probe, func(x, y int) bool {
				return ss.freq(te.probe[x].a(), te.probe[x].b()) > ss.freq(te.probe[y].a(), te.probe[y].b())
			})
		}
		p3span.End()
	}
	qspan.SetAttr("ds", strconv.Itoa(len(te.ds)))
	qspan.End()
	return te
}

// reduceToACSkyline drops every member of ds that is AC-dominated by
// another member, according to the current preference tree.
func (te *tupleEval) reduceToACSkyline(ss *session) {
	keep := te.ds[:0]
	for _, u := range te.ds {
		dominated := false
		for _, v := range te.ds {
			if v != u && ss.acDominates(v, u) {
				dominated = true
				break
			}
		}
		if dominated {
			te.inDS[u] = false
		} else {
			keep = append(keep, u)
		}
	}
	te.ds = keep
}

// remove drops tuple u from the dominating set.
func (te *tupleEval) remove(u int) {
	if !te.inDS[u] {
		return
	}
	te.inDS[u] = false
	keep := te.ds[:0]
	for _, s := range te.ds {
		if s != u {
			keep = append(keep, s)
		}
	}
	te.ds = keep
}

// remainingAfter counts the dominators still pending against t after the
// one at askAt.
func (te *tupleEval) remainingAfter() int {
	count := 0
	for i := te.askAt + 1; i < len(te.ds); i++ {
		if te.inDS[te.ds[i]] {
			count++
		}
	}
	return count
}

// next advances the pipeline past every step answerable from the
// preference tree and returns the next pair requiring crowd input. ok is
// false when the tuple is complete; the outcome is then in te.killed.
func (te *tupleEval) next(ss *session) (p pair, ok bool) {
	if te.done {
		return 0, false
	}
	// Probing phase (P3).
	for te.probeAt < len(te.probe) {
		pr := te.probe[te.probeAt]
		// Skip pairs whose members were already pruned away.
		if !te.inDS[pr.a()] || !te.inDS[pr.b()] {
			te.probeAt++
			continue
		}
		if !ss.pairKnown(pr.a(), pr.b()) {
			// Under round-robin, a partially answered probe whose members
			// are already known incomparable needs no further attributes.
			if !(ss.roundRobin && ss.pairIncomparable(pr.a(), pr.b())) {
				te.pendingBackup = 0
				return pr, true
			}
		}
		// Resolved: apply its pruning effect for free.
		switch {
		case ss.acDominates(pr.a(), pr.b()):
			te.remove(pr.b())
			if ss.trace != nil {
				ss.trace.Emit(telemetry.P3Resolve(te.t, pr.b()))
			}
		case ss.acDominates(pr.b(), pr.a()):
			te.remove(pr.a())
			if ss.trace != nil {
				ss.trace.Emit(telemetry.P3Resolve(te.t, pr.a()))
			}
		}
		te.probeAt++
	}
	// Q(t) phase: compare t against each remaining dominator. The paper's
	// early break (Algorithm 1 lines 21-24) falls out naturally: the first
	// dominator with s ⪯AC t completes t as a non-skyline tuple.
	for te.askAt < len(te.ds) {
		s := te.ds[te.askAt]
		if !te.inDS[s] {
			te.askAt++
			continue
		}
		if ss.acWeaklyPrefers(s, te.t) {
			// s ≺AK t and s ⪯AC t, hence s ≺A t: complete non-skyline.
			te.killed = true
			te.done = true
			return 0, false
		}
		if ss.roundRobin && ss.cannotWeaklyPrefer(s, te.t) {
			// Round-robin: t already won an attribute against s, so s can
			// never dominate t; skip s's remaining attributes.
			te.askAt++
			continue
		}
		if !ss.pairKnown(s, te.t) {
			te.pendingBackup = te.remainingAfter()
			return makePair(s, te.t), true
		}
		// Fully known and s does not weakly prefer t: s cannot dominate t.
		te.askAt++
	}
	te.done = true
	return 0, false
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
	"crowdsky/internal/skyline"
	"crowdsky/internal/voting"
)

func randomDataset(seed int64, n, dk, dc int, dist dataset.Distribution) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	return dataset.MustGenerate(dataset.GenerateConfig{
		N: n, KnownDims: dk, CrowdDims: dc, Distribution: dist,
	}, rng)
}

func perfect(d *dataset.Dataset) *crowd.Perfect {
	return crowd.NewPerfect(crowd.DatasetTruth{Data: d})
}

// TestCrowdSkyMatchesOracle is the Theorem 1 property: under a perfect
// crowd, every pruning configuration returns exactly the ground-truth
// skyline over A, on random datasets of both distributions and several
// dimensionalities.
func TestCrowdSkyMatchesOracle(t *testing.T) {
	prop := func(seed int64, rawN uint8, rawDK, rawDC, rawDist uint8, p1, p2, p3 bool) bool {
		n := int(rawN)%60 + 2
		dk := int(rawDK)%4 + 1
		dc := int(rawDC)%3 + 1
		dist := dataset.Distribution(int(rawDist) % 3)
		d := randomDataset(seed, n, dk, dc, dist)
		want := skyline.OracleSkyline(d)
		res := CrowdSky(d, perfect(d), Options{P1: p1, P2: p2, P3: p3})
		if !metrics.SameSet(res.Skyline, want) {
			t.Logf("seed=%d n=%d dk=%d dc=%d dist=%v p=%v%v%v: got %v want %v",
				seed, n, dk, dc, dist, p1, p2, p3, res.Skyline, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelMatchesOracle: both parallelizations return the ground-truth
// skyline under a perfect crowd (they inherit CrowdSky's pruning
// correctness, Section 4.2).
func TestParallelMatchesOracle(t *testing.T) {
	prop := func(seed int64, rawN uint8, rawDC uint8, useSL bool) bool {
		n := int(rawN)%60 + 2
		dc := int(rawDC)%2 + 1
		d := randomDataset(seed, n, 2, dc, dataset.AntiCorrelated)
		want := skyline.OracleSkyline(d)
		var res *Result
		if useSL {
			res = ParallelSL(d, perfect(d), AllPruning())
		} else {
			res = ParallelDSet(d, perfect(d), AllPruning())
		}
		return metrics.SameSet(res.Skyline, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPruningMonotonicity: each added pruning method reduces the average
// number of questions (the ordering of Figures 6-7). Averaged over seeds
// because a different evaluation order can shift a handful of questions
// either way on an individual dataset.
func TestPruningMonotonicity(t *testing.T) {
	for _, dist := range []dataset.Distribution{dataset.Independent, dataset.AntiCorrelated} {
		var dset, p1, p12, p123 int
		for seed := int64(0); seed < 25; seed++ {
			d := randomDataset(seed, 50, 2, 1, dist)
			q := func(opts Options) int { return CrowdSky(d, perfect(d), opts).Questions }
			dset += q(Options{})
			p1 += q(Options{P1: true})
			p12 += q(Options{P1: true, P2: true})
			p123 += q(AllPruning())
		}
		if p1 > dset {
			t.Errorf("%v: P1 asked %d on average > DSet %d", dist, p1, dset)
		}
		if p12 > p1 {
			t.Errorf("%v: P1+P2 asked %d on average > P1 %d", dist, p12, p1)
		}
		// P3's probing only amortizes once enough tuples share dominating
		// sets; at n=50 its probes cost more than they save (see
		// EXPERIMENTS.md). TestP3PaysOffAtScale covers the paper-scale
		// ordering.
		if p123 > p12*3/2 {
			t.Errorf("%v: P1+P2+P3 asked %d on average, far above P1+P2 %d", dist, p123, p12)
		}
	}
}

// TestP3PaysOffAtScale: at the paper's default cardinality the probing
// method P3 reduces questions below P1+P2 (Figures 6a/7a ordering). The
// amortization needs thousands of tuples, so this test is skipped in
// -short mode.
func TestP3PaysOffAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale cardinality; skipped with -short")
	}
	d := randomDataset(0, 4000, 4, 1, dataset.Independent)
	p12 := CrowdSky(d, perfect(d), Options{P1: true, P2: true}).Questions
	p123 := CrowdSky(d, perfect(d), AllPruning()).Questions
	if p123 >= p12 {
		t.Errorf("at n=4000: P1+P2+P3 asked %d >= P1+P2 %d", p123, p12)
	}
}

// TestSerialRoundsEqualQuestions: the serial algorithm asks one pair per
// round, so for |AC| = 1 rounds == questions (the Serial line of
// Figure 8).
func TestSerialRoundsEqualQuestions(t *testing.T) {
	d := randomDataset(7, 50, 2, 1, dataset.Independent)
	res := CrowdSky(d, perfect(d), AllPruning())
	if res.Rounds != res.Questions {
		t.Errorf("serial: rounds %d != questions %d", res.Rounds, res.Questions)
	}
}

// TestParallelRoundsOrdering: ParallelSL uses no more rounds than
// ParallelDSet, which uses no more rounds than Serial (Figures 8-9), and
// ParallelDSet asks essentially the same number of questions as Serial
// (Section 6.1: "ParallelDSet generates the same number of questions for
// Serial" — batching can shift the preference tree's growth order by a
// question or two, so the check allows 5% slack).
func TestParallelRoundsOrdering(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		for _, dist := range []dataset.Distribution{dataset.Independent, dataset.AntiCorrelated} {
			d := randomDataset(seed, 60, 3, 1, dist)
			serial := CrowdSky(d, perfect(d), AllPruning())
			pd := ParallelDSet(d, perfect(d), AllPruning())
			psl := ParallelSL(d, perfect(d), AllPruning())
			if pd.Rounds > serial.Rounds {
				t.Errorf("seed %d %v: ParallelDSet rounds %d > serial %d", seed, dist, pd.Rounds, serial.Rounds)
			}
			if psl.Rounds > pd.Rounds {
				t.Errorf("seed %d %v: ParallelSL rounds %d > ParallelDSet %d", seed, dist, psl.Rounds, pd.Rounds)
			}
			diff := pd.Questions - serial.Questions
			if diff < 0 {
				diff = -diff
			}
			if diff*20 > serial.Questions {
				t.Errorf("seed %d %v: ParallelDSet questions %d deviate >5%% from serial %d",
					seed, dist, pd.Questions, serial.Questions)
			}
		}
	}
}

// TestBaselineMatchesOracle: with a perfect crowd the sort-based baseline
// also finds the exact skyline (its problem is cost, not correctness).
func TestBaselineMatchesOracle(t *testing.T) {
	for _, algo := range []SortAlgorithm{TournamentSort, BitonicSort} {
		for seed := int64(0); seed < 10; seed++ {
			d := randomDataset(seed, 40, 2, 1, dataset.Independent)
			want := skyline.OracleSkyline(d)
			res := Baseline(d, perfect(d), algo, nil)
			if !metrics.SameSet(res.Skyline, want) {
				t.Errorf("%v seed %d: baseline skyline %v != oracle %v", algo, seed, res.Skyline, want)
			}
		}
	}
}

// TestBaselineAsksMore: CrowdSky with full pruning asks fewer questions
// than the sort-based baseline on non-trivial independent datasets (the
// headline of Figure 6).
func TestBaselineAsksMore(t *testing.T) {
	d := randomDataset(3, 100, 4, 1, dataset.Independent)
	base := Baseline(d, perfect(d), TournamentSort, nil)
	cs := CrowdSky(d, perfect(d), AllPruning())
	if cs.Questions >= base.Questions {
		t.Errorf("CrowdSky asked %d questions, baseline %d; want CrowdSky < baseline",
			cs.Questions, base.Questions)
	}
}

// TestUnaryPerfectSigmaZero: with zero noise the unary method recovers the
// exact skyline.
func TestUnaryPerfectSigmaZero(t *testing.T) {
	d := randomDataset(5, 50, 2, 1, dataset.Independent)
	up := crowd.NewSimulatedUnary(crowd.DatasetTruth{Data: d}, 0, rand.New(rand.NewSource(1)))
	res := Unary(d, up, 1)
	if !metrics.SameSet(res.Skyline, skyline.OracleSkyline(d)) {
		t.Errorf("unary with σ=0 missed the oracle skyline")
	}
	if res.Rounds != 1 {
		t.Errorf("unary rounds = %d, want 1 (one-shot)", res.Rounds)
	}
	if res.Questions != d.N() {
		t.Errorf("unary questions = %d, want n = %d", res.Questions, d.N())
	}
}

// TestDegeneratePreprocessing: tuples with identical AK values are resolved
// by the crowd before the main algorithm (Algorithm 1, lines 1-3), and the
// result still matches the oracle.
func TestDegeneratePreprocessing(t *testing.T) {
	known := [][]float64{
		{1, 2}, {1, 2}, // identical in AK; latent decides
		{3, 1}, {0.5, 4},
	}
	latent := [][]float64{{0.9}, {0.1}, {0.5}, {0.3}}
	d := dataset.MustNew(known, latent)
	res := CrowdSky(d, perfect(d), AllPruning())
	want := skyline.OracleSkyline(d)
	if !metrics.SameSet(res.Skyline, want) {
		t.Errorf("skyline %v, want %v", res.Skyline, want)
	}
}

// TestDegenerateTwins: tuples identical in AK and equal in AC share fate:
// both appear in the skyline when undominated.
func TestDegenerateTwins(t *testing.T) {
	known := [][]float64{
		{1, 2}, {1, 2},
		{2, 1},
	}
	latent := [][]float64{{0.5}, {0.5}, {0.7}}
	d := dataset.MustNew(known, latent)
	res := CrowdSky(d, perfect(d), AllPruning())
	want := skyline.OracleSkyline(d)
	if !metrics.SameSet(res.Skyline, want) {
		t.Errorf("skyline %v, want %v (twins must share fate)", res.Skyline, want)
	}
}

// TestNoisyCrowdStillReasonable: with p = 0.8 and ω = 5 static voting the
// result should be close to the truth on a small dataset (a smoke test for
// the noisy pipeline; the statistical claims live in the experiments).
func TestNoisyCrowdStillReasonable(t *testing.T) {
	d := randomDataset(11, 60, 2, 1, dataset.Independent)
	rng := rand.New(rand.NewSource(42))
	pool, err := crowd.NewPool(crowd.PoolConfig{Reliability: 0.8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pf := crowd.NewSimulated(crowd.DatasetTruth{Data: d}, pool, rng)
	res := CrowdSky(d, pf, Options{P1: true, P2: true, P3: true, Voting: voting.Static{Omega: 5}})
	want := skyline.OracleSkyline(d)
	known := skyline.KnownSkyline(d)
	prec, rec := metrics.PrecisionRecall(res.Skyline, want, known)
	if prec < 0.5 || rec < 0.3 {
		t.Errorf("noisy run degraded too far: precision %.2f recall %.2f", prec, rec)
	}
	if res.WorkerAnswers != 5*res.Questions {
		t.Errorf("worker answers %d, want 5 per question (%d)", res.WorkerAnswers, 5*res.Questions)
	}
}

// TestEmptyAndTinyDatasets: degenerate sizes run cleanly.
func TestEmptyAndTinyDatasets(t *testing.T) {
	empty := dataset.MustNew(nil, nil)
	res := CrowdSky(empty, perfect(empty), AllPruning())
	if len(res.Skyline) != 0 || res.Questions != 0 {
		t.Errorf("empty dataset: %+v", res)
	}
	one := dataset.MustNew([][]float64{{1}}, [][]float64{{1}})
	res = CrowdSky(one, perfect(one), AllPruning())
	if len(res.Skyline) != 1 || res.Questions != 0 {
		t.Errorf("singleton dataset: %+v", res)
	}
}

// TestMultiCrowdAttrQuestionCounting: a pair comparison on |AC| = m crowd
// attributes counts m questions in the same round (Section 3 preamble).
func TestMultiCrowdAttrQuestionCounting(t *testing.T) {
	d := randomDataset(13, 30, 2, 3, dataset.Independent)
	pf := perfect(d)
	res := CrowdSky(d, pf, AllPruning())
	if res.Questions%1 != 0 && res.Rounds == 0 {
		t.Fatal("unreachable")
	}
	// Every round must carry at most |AC| questions in the serial run
	// (one pair), and at least one.
	for i, r := range pf.Stats().PerRound() {
		if r.Questions < 1 || r.Questions > d.CrowdDims() {
			t.Errorf("round %d carries %d questions, want 1..%d", i, r.Questions, d.CrowdDims())
		}
	}
	if !metrics.SameSet(res.Skyline, skyline.OracleSkyline(d)) {
		t.Errorf("multi-attr skyline mismatch")
	}
}

// TestSharedIndexVersionAware pins the Options.Index adoption contract:
// a shared index is adopted only while it actually covers the dataset.
// Mutating it (Index.Remove) must make prepMachine fall back to its own
// build, and restoring it (Index.Add) makes it adoptable again — the
// staleness is detected through Matches, not assumed from construction.
func TestSharedIndexVersionAware(t *testing.T) {
	d := randomDataset(8, 80, 3, 1, dataset.Independent)
	ix := skyline.NewIndex(d)

	ss := newSession(d, perfect(d), Options{P2: true, Index: ix})
	ss.prepMachine()
	if ss.ix != ix {
		t.Fatalf("fresh shared index was not adopted")
	}

	ix.Remove(3)
	ss2 := newSession(d, perfect(d), Options{P2: true, Index: ix})
	ss2.prepMachine()
	if ss2.ix == ix {
		t.Fatalf("mutated shared index was silently adopted")
	}

	ix.Add(3)
	ss3 := newSession(d, perfect(d), Options{P2: true, Index: ix})
	ss3.prepMachine()
	if ss3.ix != ix {
		t.Fatalf("restored shared index was not adopted again")
	}

	// End to end: a run handed a drifted index must still return the
	// ground-truth skyline, because it rebuilds rather than reuses.
	ix.Remove(5)
	want := skyline.OracleSkyline(d)
	opts := AllPruning()
	opts.Index = ix
	got := CrowdSky(d, perfect(d), opts)
	if len(got.Skyline) != len(want) {
		t.Fatalf("skyline with drifted shared index: got %v, want %v", got.Skyline, want)
	}
	for i := range want {
		if got.Skyline[i] != want[i] {
			t.Fatalf("skyline with drifted shared index: got %v, want %v", got.Skyline, want)
		}
	}
}

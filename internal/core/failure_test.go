package core

// Failure-injection tests: hostile and degraded crowd conditions must never
// break the algorithms — they may degrade accuracy, but runs terminate,
// accounting stays consistent, and contradictory answers are counted
// rather than corrupting the preference tree.

import (
	"math/rand"
	"testing"

	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
	"crowdsky/internal/skyline"
	"crowdsky/internal/voting"
)

func noisyPool(t *testing.T, cfg crowd.PoolConfig, seed int64) (*crowd.Pool, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pool, err := crowd.NewPool(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return pool, rng
}

// TestAdversarialCrowdTerminates: workers with zero reliability (always
// wrong) still yield a terminating run with consistent accounting across
// all schedulers.
func TestAdversarialCrowdTerminates(t *testing.T) {
	d := randomDataset(21, 50, 2, 1, dataset.Independent)
	for name, run := range map[string]func(pf crowd.Platform) *Result{
		"serial": func(pf crowd.Platform) *Result { return CrowdSky(d, pf, AllPruning()) },
		"dset":   func(pf crowd.Platform) *Result { return ParallelDSet(d, pf, AllPruning()) },
		"sl":     func(pf crowd.Platform) *Result { return ParallelSL(d, pf, AllPruning()) },
	} {
		pool, rng := noisyPool(t, crowd.PoolConfig{Reliability: 0}, 1)
		pf := crowd.NewSimulated(crowd.DatasetTruth{Data: d}, pool, rng)
		res := run(pf)
		if res.Questions <= 0 || res.Rounds <= 0 {
			t.Errorf("%s: adversarial run asked nothing: %+v", name, res)
		}
		if len(res.Skyline) == 0 {
			t.Errorf("%s: adversarial run returned an empty skyline", name)
		}
	}
}

// TestSpammerHeavyPool: a pool where half the workers answer randomly
// still completes, and majority voting keeps accuracy above the
// single-worker floor.
func TestSpammerHeavyPool(t *testing.T) {
	d := randomDataset(23, 80, 2, 1, dataset.Independent)
	want := skyline.OracleSkyline(d)
	known := skyline.KnownSkyline(d)

	accuracy := func(omega int) float64 {
		pool, rng := noisyPool(t, crowd.PoolConfig{Size: 200, Reliability: 0.95, SpammerFraction: 0.5}, 7)
		pf := crowd.NewSimulated(crowd.DatasetTruth{Data: d}, pool, rng)
		opts := AllPruning()
		opts.Voting = voting.Static{Omega: omega}
		var totalF1 float64
		const runs = 5
		for i := 0; i < runs; i++ {
			res := CrowdSky(d, pf, opts)
			p, r := metrics.PrecisionRecall(res.Skyline, want, known)
			totalF1 += metrics.F1(p, r)
		}
		return totalF1 / runs
	}
	if f1 := accuracy(9); f1 < 0.5 {
		t.Errorf("9-worker majority over a half-spam pool degraded to F1 %.2f", f1)
	}
}

// TestContradictionAccounting: with noisy answers the dropped-contradiction
// counter is exposed and the preference tree stays acyclic (no panic, and
// repeated queries are stable).
func TestContradictionAccounting(t *testing.T) {
	d := randomDataset(25, 100, 2, 1, dataset.AntiCorrelated)
	pool, rng := noisyPool(t, crowd.PoolConfig{Reliability: 0.6}, 3)
	pf := crowd.NewSimulated(crowd.DatasetTruth{Data: d}, pool, rng)
	res := CrowdSky(d, pf, AllPruning())
	if res.Contradictions < 0 {
		t.Errorf("negative contradictions")
	}
	// A perfect-crowd run never records contradictions.
	res = CrowdSky(d, perfect(d), AllPruning())
	if res.Contradictions != 0 {
		t.Errorf("perfect crowd produced %d contradictions", res.Contradictions)
	}
}

// TestEpsilonEqualityBand: a wide equality band makes the crowd declare
// everything equal in AC; every tuple then shares the fate of its
// AK-dominators, leaving exactly SKY_AK as the result.
func TestEpsilonEqualityBand(t *testing.T) {
	d := randomDataset(27, 40, 2, 1, dataset.Independent)
	pf := crowd.NewPerfect(crowd.DatasetTruth{Data: d, Epsilon: 1e9})
	res := CrowdSky(d, pf, AllPruning())
	if !metrics.SameSet(res.Skyline, skyline.KnownSkyline(d)) {
		t.Errorf("all-equal crowd should reduce the skyline to SKY_AK: got %v want %v",
			res.Skyline, skyline.KnownSkyline(d))
	}
}

// TestParallelSLOverheadBounded: the C2 violation of ParallelSL costs only
// a few percent extra questions versus serial (the paper reports roughly
// 10%).
func TestParallelSLOverheadBounded(t *testing.T) {
	var serialQ, slQ int
	for seed := int64(0); seed < 10; seed++ {
		for _, dist := range []dataset.Distribution{dataset.Independent, dataset.AntiCorrelated} {
			d := randomDataset(seed, 150, 4, 1, dist)
			serialQ += CrowdSky(d, perfect(d), AllPruning()).Questions
			slQ += ParallelSL(d, perfect(d), AllPruning()).Questions
		}
	}
	if slQ > serialQ*125/100 {
		t.Errorf("ParallelSL asked %d questions vs serial %d (more than +25%%)", slQ, serialQ)
	}
}

// TestWorkerAnswerAccountingAcrossPolicies: worker-answer totals equal the
// per-question assignments the policy dictates.
func TestWorkerAnswerAccountingAcrossPolicies(t *testing.T) {
	d := randomDataset(29, 60, 2, 1, dataset.Independent)
	opts := AllPruning()
	opts.Voting = voting.Static{Omega: 7}
	pool, rng := noisyPool(t, crowd.PoolConfig{Reliability: 0.9}, 9)
	pf := crowd.NewSimulated(crowd.DatasetTruth{Data: d}, pool, rng)
	res := CrowdSky(d, pf, opts)
	if res.WorkerAnswers != 7*res.Questions {
		t.Errorf("worker answers %d != 7 × %d questions", res.WorkerAnswers, res.Questions)
	}
}

// Package core implements the paper's crowd-enabled skyline algorithms:
//
//   - CrowdSky (Algorithm 1): the serial cost-minimizing algorithm with the
//     dominating-set question generation and the three pruning methods P1
//     (early pruning of complete non-skyline tuples, Section 3.2), P2
//     (transitive reduction of dominating sets in AC, Section 3.3) and P3
//     (probing dominating sets, Section 3.4), each independently
//     toggleable for the ablations of Figures 6-7.
//   - ParallelDSet (Section 4.1): latency reduction by partitioning on
//     dominating-set sizes and disjointness.
//   - ParallelSL (Algorithm 2, Section 4.2): latency reduction by skyline
//     layers and immediate-dominator dependencies.
//   - Baseline (Section 6.1): crowd-powered tournament sort over the crowd
//     attributes followed by a machine skyline.
//   - Unary (Section 6.1, Figure 11): the quantitative-question comparator
//     simulating Lofi et al. [12].
//
// All algorithms exchange questions with a crowd.Platform and never touch
// the latent attribute values.
package core

import (
	"context"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/prefgraph"
	"crowdsky/internal/skyline"
	"crowdsky/internal/telemetry"
	"crowdsky/internal/voting"
)

// Options configures a crowd-enabled skyline run.
type Options struct {
	// P1 enables early pruning for non-skyline tuples in A (Section 3.2):
	// tuples are evaluated in ascending |DS(t)| order and complete
	// non-skyline tuples are removed from pending dominating sets.
	P1 bool
	// P2 enables pruning non-skyline tuples in AC (Section 3.3): DS(t) is
	// reduced to SKY_AC(DS(t)) using the transitivity recorded in the
	// preference tree.
	P2 bool
	// P3 enables probing dominating sets (Section 3.4): pair-wise
	// questions inside DS(t), greedily ordered by descending freq(u,v),
	// shrink the dominating set before Q(t) is generated.
	P3 bool
	// Voting decides the number of workers per question from the
	// question's importance. Nil defaults to a single worker, which is the
	// perfect-crowd setting of Sections 3-4.
	Voting voting.Policy
	// RoundRobinAC enables the round-robin strategy for multiple crowd
	// attributes that Section 6.1 mentions but leaves unevaluated: the
	// attributes of a pair are asked one at a time, and the remaining
	// attributes are skipped as soon as the pair's outcome is decided
	// (the candidate dominator lost an attribute, or a probing pair is
	// already incomparable). With |AC| = 1 it has no effect.
	RoundRobinAC bool
	// ProbeOrder selects how P3's probing questions are ordered. The
	// paper is ambiguous: Algorithm 1 line 11 sorts by ascending
	// freq(u,v) while the Section 3.4 prose picks the highest frequency
	// first. The default follows the prose (descending);
	// BenchmarkAblationProbeOrder measures the difference.
	ProbeOrder ProbeOrder
	// MaxQuestions, when positive, caps the number of crowd questions
	// (the fixed-budget setting of Lofi et al. [12]). When the budget
	// runs out the algorithm stops asking and reads out optimistically:
	// every tuple not yet proven dominated is reported in the skyline,
	// and Result.Truncated is set.
	MaxQuestions int
	// Tracer receives structured trace events (round boundaries, P1/P2/P3
	// prunings, vote escalations, budget truncation, index builds). Nil
	// disables tracing at the cost of one pointer comparison per potential
	// event.
	Tracer telemetry.Tracer
	// Index, when non-nil, is a prebuilt dominance index over the run's
	// dataset (skyline.NewIndex). Callers running several configurations
	// over the same dataset — the experiment sweeps, the differential
	// oracle — share one index instead of paying the quadratic machine
	// part per run. It is adopted only when it matches the dataset and the
	// degenerate-case preprocessing removed nothing; otherwise the session
	// builds its own restricted index.
	Index *skyline.Index
	// Context, when non-nil, is the run's base context: it is forwarded to
	// context-aware platforms (crowd.ContextPlatform) on every round for
	// cancellation, and it parents the run's span tree (an enclosing span
	// placed with telemetry.ContextWithSpan makes the run a child span).
	Context context.Context
}

// ProbeOrder selects the ordering of P3's probing questions.
type ProbeOrder int

// Probe orderings.
const (
	// FreqDescending asks the highest-frequency (most pruning power) pair
	// first — the Section 3.4 prose reading, and the default.
	FreqDescending ProbeOrder = iota
	// FreqAscending follows the letter of Algorithm 1 line 11.
	FreqAscending
	// PairOrder keeps the generation order (no frequency sorting).
	PairOrder
)

// AllPruning returns the full CrowdSky configuration (P1+P2+P3).
func AllPruning() Options { return Options{P1: true, P2: true, P3: true} }

// Result is the outcome of a crowd-enabled skyline run.
type Result struct {
	// Skyline lists the indices of the crowdsourced skyline tuples in
	// ascending order.
	Skyline []int
	// Questions is the total number of crowd questions asked (with
	// |AC| = m crowd attributes, one pair comparison counts m questions,
	// following the paper's accounting in Figures 6c/7c).
	Questions int
	// Rounds is the number of crowd rounds used (the latency metric).
	Rounds int
	// WorkerAnswers is the total number of individual worker judgments.
	WorkerAnswers int
	// Cost is the monetary cost in dollars under the paper's AMT model
	// (Section 6.2) with the default reward.
	Cost float64
	// Contradictions counts crowd answers that conflicted with the
	// preference tree and were dropped (only nonzero with noisy crowds).
	Contradictions int
	// Truncated reports that Options.MaxQuestions exhausted the budget
	// before every tuple was complete; the skyline is then the optimistic
	// readout (tuples not yet proven dominated).
	Truncated bool
}

// session carries the machine-part state shared by every algorithm: the
// dataset, the crowd platform, one preference graph per crowd attribute,
// the voting policy, and the co-domination frequency counter.
type session struct {
	d      *dataset.Dataset
	pf     crowd.Platform
	graphs []*prefgraph.Graph
	policy voting.Policy
	fc     *skyline.FreqCounter
	// ix is the dominance index of the run, built (or adopted from
	// sharedIx) by prepMachine after the degenerate-case preprocessing.
	ix *skyline.Index
	// sharedIx is the caller-provided index from Options.Index.
	sharedIx *skyline.Index

	// roundRobin enables one-attribute-at-a-time questioning for pairs
	// (Options.RoundRobinAC).
	roundRobin bool
	// maxQuestions caps the crowd budget; 0 means unlimited.
	maxQuestions int
	// exhausted is latched once the budget ran out.
	exhausted bool
	// progressTotal is the estimated total question count, used to feed
	// progress-aware voting policies (voting.ProgressPolicy); 0 disables
	// progress tracking.
	progressTotal int
	// trace receives structured events; nil means tracing is disabled and
	// every emission site reduces to a pointer comparison.
	trace telemetry.Tracer
	// ctx is the caller-provided base context (never nil after
	// newSession); runCtx carries the run span once emitRunStart started
	// it, and rounds/sub-spans parent under it.
	ctx     context.Context
	runCtx  context.Context
	runSpan *telemetry.Span

	// useT selects whether completeness decisions may use transitive
	// inference through the preference tree. The paper introduces the tree
	// with pruning P2 (Section 3.3), so runs without P2/P3 decide from
	// direct answers only.
	useT bool

	// direct records the raw aggregated answer of every asked question,
	// keyed by (min tuple, max tuple, attribute) with the preference
	// normalized to that orientation. Pruning variants that do not use
	// the preference tree (DSet and P1 alone — the tree is introduced
	// with P2, Section 3.3) decide completeness from these direct answers
	// only, reproducing the paper's stage decomposition in Figures 6-7.
	direct map[directKey]crowd.Preference

	alive []bool // false for tuples removed by degenerate-case preprocessing
	twin  []int  // twin[i] = j when i was removed as an exact duplicate of j in AK and equal in AC; -1 otherwise
}

// directKey identifies an asked question with a normalized orientation
// (A < B).
type directKey struct{ a, b, attr int }

// directPool recycles direct-answer maps across sessions. A run's map
// grows to one entry per asked question; serving many runs over the same
// deployment (the experiment sweeps, the crowdserve loop) would otherwise
// reallocate and regrow that table per run. Maps enter the pool cleared.
var directPool = sync.Pool{
	New: func() any { return make(map[directKey]crowd.Preference, 256) },
}

// release returns the session's pooled resources; call it once the
// session will answer no further queries. Reads after release degrade
// gracefully (a nil map reads as empty) but are a bug.
func (ss *session) release() {
	if ss.direct != nil {
		clear(ss.direct)
		directPool.Put(ss.direct)
		ss.direct = nil
	}
}

func newSession(d *dataset.Dataset, pf crowd.Platform, opts Options) *session {
	policy := opts.Voting
	if policy == nil {
		policy = voting.Static{Omega: 1}
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	s := &session{
		d:            d,
		pf:           pf,
		policy:       policy,
		roundRobin:   opts.RoundRobinAC,
		maxQuestions: opts.MaxQuestions,
		useT:         opts.P2 || opts.P3,
		trace:        opts.Tracer,
		ctx:          ctx,
		sharedIx:     opts.Index,
		direct:       directPool.Get().(map[directKey]crowd.Preference),
		alive:        make([]bool, d.N()),
		twin:         make([]int, d.N()),
	}
	for i := range s.alive {
		s.alive[i] = true
		s.twin[i] = -1
	}
	s.graphs = make([]*prefgraph.Graph, d.CrowdDims())
	for j := range s.graphs {
		s.graphs[j] = prefgraph.New(d.N())
	}
	s.seedStoredValues()
	return s
}

// emitRunStart emits the run_start trace event for the named algorithm
// and opens the run's root span; every round and machine-phase span
// parents under it, and finish closes it.
func (ss *session) emitRunStart(algo string) {
	if ss.trace != nil {
		ss.trace.Emit(telemetry.RunStart(algo, ss.d.N(), ss.d.CrowdDims()))
	}
	ss.runCtx, ss.runSpan = telemetry.StartSpan(ss.ctx, ss.trace, "run")
	ss.runSpan.SetAttr("algo", algo)
	ss.runSpan.SetAttr("n", strconv.Itoa(ss.d.N()))
}

// runContext returns the context rounds should run under: the run-span
// context once the run started, else the caller's base context.
func (ss *session) runContext() context.Context {
	if ss.runCtx != nil {
		return ss.runCtx
	}
	return ss.ctx
}

// seedStoredValues pre-loads the preference graphs with the relations
// implied by stored crowd-attribute values (the partial-missing scenario
// of Example 1): per attribute, the stored tuples are sorted by value and
// chained with preference/equality edges, so transitivity makes every
// stored-stored relation available without a single crowd question.
func (ss *session) seedStoredValues() {
	d := ss.d
	for j := range ss.graphs {
		var stored []int
		for t := 0; t < d.N(); t++ {
			if d.CrowdValueKnown(t, j) {
				stored = append(stored, t)
			}
		}
		if len(stored) < 2 {
			continue
		}
		sort.SliceStable(stored, func(a, b int) bool {
			return d.Latent(stored[a], j) < d.Latent(stored[b], j)
		})
		g := ss.graphs[j]
		for k := 1; k < len(stored); k++ {
			prev, cur := stored[k-1], stored[k]
			if skyline.EqEps(d.Latent(prev, j), d.Latent(cur, j)) {
				g.AddEqual(prev, cur)
			} else {
				g.AddPrefer(prev, cur)
			}
		}
	}
}

// sortByDSSize orders tuples by ascending dominating-set size (stable), the
// P1 evaluation order of Lemma 3.
func sortByDSSize(order []int, sets [][]int) {
	sort.SliceStable(order, func(x, y int) bool {
		return len(sets[order[x]]) < len(sets[order[y]])
	})
}

// pair is an unordered tuple pair packed into one word (min in the high
// half, so the canonical form a() < b() is preserved). A single integer
// key keeps the per-round dedup maps and probe slices allocation-light;
// the zero pair stands in where the old struct used pair{}.
type pair uint64

func makePair(a, b int) pair {
	if a > b {
		a, b = b, a
	}
	return pair(uint64(a)<<32 | uint64(b))
}

// a returns the smaller tuple index of the pair.
func (p pair) a() int { return int(p >> 32) }

// b returns the larger tuple index of the pair.
func (p pair) b() int { return int(p & 0xffffffff) }

// pairKnown reports whether the relation between s and t is known on every
// crowd attribute, under the current inference mode (see useT).
//
//skylint:hotpath
func (ss *session) pairKnown(s, t int) bool {
	for j := range ss.graphs {
		if !ss.attrKnown(s, t, j) {
			return false
		}
	}
	return true
}

// attrKnown reports whether the relation of (s, t) on crowd attribute j is
// available to the current pruning configuration: from stored crowd values
// (the partial-missing scenario), via the preference tree when useT, or
// via a direct answer otherwise.
//
//skylint:hotpath
func (ss *session) attrKnown(s, t, j int) bool {
	if _, ok := ss.seededAnswer(s, t, j); ok {
		return true
	}
	if ss.useT {
		return ss.graphs[j].Comparable(s, t)
	}
	_, ok := ss.directAnswer(s, t, j)
	return ok
}

// seededAnswer resolves (s, t) on crowd attribute j from stored values
// when both sides are stored (Example 1's partial-missing case): such
// pairs cost no crowd questions. Oriented so First means s is preferred.
func (ss *session) seededAnswer(s, t, j int) (crowd.Preference, bool) {
	if !ss.d.CrowdValueKnown(s, j) || !ss.d.CrowdValueKnown(t, j) {
		return 0, false
	}
	sv, tv := ss.d.Latent(s, j), ss.d.Latent(t, j)
	switch {
	case sv < tv:
		return crowd.First, true
	case tv < sv:
		return crowd.Second, true
	default:
		return crowd.Equal, true
	}
}

// unknownAttrs appends, for the pair (s,t), one Request per crowd attribute
// whose relation is still unknown, and returns the extended slice. backup
// is the number of further dominators pending against the same target
// tuple (0 when this is the last check or the question is a probe). Under
// the round-robin strategy only the first unknown attribute is asked; the
// caller re-polls after the answer lands and may find the pair decided.
func (ss *session) unknownAttrs(s, t, backup int, reqs []crowd.Request) []crowd.Request {
	workers := ss.workersFor(s, t, backup)
	for j := range ss.graphs {
		if !ss.attrKnown(s, t, j) {
			reqs = append(reqs, crowd.Request{Q: crowd.Question{A: s, B: t, Attr: j}, Workers: workers})
			if ss.roundRobin {
				break
			}
		}
	}
	return reqs
}

// workersFor returns the worker assignment for the pair (s, t): the
// voting policy's decision from the question's importance, plus run
// progress and per-question context when the policy understands them.
func (ss *session) workersFor(s, t, backup int) int {
	f := ss.freq(s, t)
	prog := 1.0
	if ss.progressTotal > 0 {
		prog = float64(ss.pf.Stats().Questions()) / float64(ss.progressTotal)
		if prog > 1 {
			prog = 1
		}
	}
	var workers int
	if cp, ok := ss.policy.(voting.ContextPolicy); ok {
		workers = cp.WorkersFor(voting.Context{Progress: prog, Freq: f, Backup: backup})
	} else if pp, ok := ss.policy.(voting.ProgressPolicy); ok && ss.progressTotal > 0 {
		workers = pp.WorkersAt(prog, f)
	} else {
		workers = ss.policy.Workers(f)
	}
	if ss.trace != nil {
		if base := ss.policy.Workers(0); workers > base {
			ss.trace.Emit(telemetry.VoteEscalation(s, t, workers, base))
		}
	}
	return workers
}

// estimateTotalQuestions predicts how many questions the run will ask, for
// progress-aware voting. With the preference tree enabled (P2/P3), the
// transitive reductions leave roughly 1.3 questions per incomplete tuple
// empirically; without it, the expected cost of a tuple is the harmonic
// cost of scanning its dominating set until the first killer. The estimate
// only anchors the progress fraction; accuracy within tens of percent keeps
// the annealed policy budget-neutral.
func (ss *session) estimateTotalQuestions(sets [][]int) int {
	total := 0.0
	for t, ds := range sets {
		if !ss.alive[t] || len(ds) == 0 {
			continue
		}
		if ss.useT {
			total += 1.3
		} else {
			total += 1 + math.Log(float64(len(ds)))
		}
	}
	return int(total) * len(ss.graphs)
}

// budgetLeft reports whether more questions may be asked; it latches
// exhaustion once the cap is hit.
func (ss *session) budgetLeft() bool {
	if ss.maxQuestions <= 0 {
		return true
	}
	if asked := ss.pf.Stats().Questions(); asked >= ss.maxQuestions && !ss.exhausted {
		ss.exhausted = true
		if ss.trace != nil {
			ss.trace.Emit(telemetry.BudgetTruncated(asked, ss.maxQuestions))
		}
	}
	return !ss.exhausted
}

// attrStrictlyDefers reports that t is known strictly preferred over s on
// crowd attribute j, under the current inference mode.
func (ss *session) attrStrictlyDefers(s, t, j int) bool {
	if ss.useT {
		return ss.graphs[j].Known(s, t) == prefgraph.Defer
	}
	pref, ok := ss.directAnswer(s, t, j)
	return ok && pref == crowd.Second
}

// cannotWeaklyPrefer reports that s ⪯AC t is already impossible: some
// crowd attribute is known to strictly prefer t. Used by the round-robin
// strategy to skip a pair's remaining attributes.
func (ss *session) cannotWeaklyPrefer(s, t int) bool {
	for j := range ss.graphs {
		if ss.attrStrictlyDefers(s, t, j) {
			return true
		}
	}
	return false
}

// pairIncomparable reports that s and t are already known strictly
// preferred on one attribute each in opposite directions, so neither can
// AC-dominate the other regardless of the unanswered attributes.
func (ss *session) pairIncomparable(s, t int) bool {
	return ss.cannotWeaklyPrefer(s, t) && ss.cannotWeaklyPrefer(t, s)
}

// freq returns freq(s,t); 0 when the frequency counter is not initialized
// (it is lazily built on first use by algorithms that need it).
func (ss *session) freq(s, t int) int {
	if ss.fc == nil {
		return 0
	}
	return ss.fc.Freq(s, t)
}

// apply folds a round of crowd answers into the preference graphs and the
// direct-answer record.
//
//skylint:hotpath
func (ss *session) apply(answers []crowd.Answer) {
	for _, a := range answers {
		g := ss.graphs[a.Q.Attr]
		switch a.Pref {
		case crowd.First:
			g.AddPrefer(a.Q.A, a.Q.B)
		case crowd.Second:
			g.AddPrefer(a.Q.B, a.Q.A)
		case crowd.Equal:
			g.AddEqual(a.Q.A, a.Q.B)
		}
		key := directKey{a.Q.A, a.Q.B, a.Q.Attr}
		pref := a.Pref
		if key.a > key.b {
			key.a, key.b = key.b, key.a
			pref = pref.Flip()
		}
		ss.direct[key] = pref
	}
}

// directAnswer returns the recorded raw answer for (s, t) on attr, oriented
// so that First means s is preferred. Stored-value (seeded) relations
// count as direct answers: they are certain and free.
//
//skylint:hotpath
func (ss *session) directAnswer(s, t, attr int) (crowd.Preference, bool) {
	if pref, ok := ss.seededAnswer(s, t, attr); ok {
		return pref, true
	}
	key := directKey{s, t, attr}
	flip := false
	if key.a > key.b {
		key.a, key.b = key.b, key.a
		flip = true
	}
	pref, ok := ss.direct[key]
	if !ok {
		return 0, false
	}
	if flip {
		pref = pref.Flip()
	}
	return pref, true
}

// pairKnownDirect reports whether (s, t) was directly asked on every crowd
// attribute.
func (ss *session) pairKnownDirect(s, t int) bool {
	for j := range ss.graphs {
		if _, ok := ss.directAnswer(s, t, j); !ok {
			return false
		}
	}
	return true
}

// directWeaklyPrefers reports s ⪯AC t using direct answers only: every
// crowd attribute was asked and answered "s preferred" or "equal".
func (ss *session) directWeaklyPrefers(s, t int) bool {
	for j := range ss.graphs {
		pref, ok := ss.directAnswer(s, t, j)
		if !ok || pref == crowd.Second {
			return false
		}
	}
	return true
}

// askPairNow asks the unknown crowd attributes of the pair (s, t) as one
// round and applies the answers (one attribute per round under
// round-robin). It is the serial building block; parallel algorithms batch
// unknownAttrs requests themselves. It respects the question budget.
func (ss *session) askPairNow(s, t int) {
	if !ss.budgetLeft() {
		return
	}
	reqs := ss.unknownAttrs(s, t, 0, nil)
	if len(reqs) == 0 {
		return
	}
	if ss.maxQuestions > 0 {
		if room := ss.maxQuestions - ss.pf.Stats().Questions(); len(reqs) > room {
			reqs = reqs[:room]
		}
	}
	ss.doAsk(reqs)
}

// askRound asks one parallel round of requests, truncating to the
// remaining budget.
func (ss *session) askRound(reqs []crowd.Request) {
	if len(reqs) == 0 || !ss.budgetLeft() {
		return
	}
	if ss.maxQuestions > 0 {
		if room := ss.maxQuestions - ss.pf.Stats().Questions(); len(reqs) > room {
			reqs = reqs[:room]
		}
	}
	ss.doAsk(reqs)
}

// doAsk submits one round to the platform and applies the answers,
// emitting round_start/round_end trace events around the (potentially
// slow, potentially real-money) platform call.
func (ss *session) doAsk(reqs []crowd.Request) {
	if ss.trace == nil {
		// Tracing off, but the caller's context still reaches the
		// platform for cancellation.
		ss.apply(crowd.AskWithContext(ss.runContext(), ss.pf, reqs))
		return
	}
	round := ss.pf.Stats().Rounds() + 1
	ss.trace.Emit(telemetry.RoundStart(round, len(reqs)))
	rctx, span := telemetry.StartSpan(ss.runContext(), ss.trace, "round")
	span.SetAttr("round", strconv.Itoa(round))
	span.SetAttr("questions", strconv.Itoa(len(reqs)))
	start := time.Now()
	answers := crowd.AskWithContext(rctx, ss.pf, reqs)
	span.End()
	ss.trace.Emit(telemetry.RoundEnd(round, len(reqs), time.Since(start)))
	ss.apply(answers)
}

// acWeaklyPrefers reports whether s ⪯AC t is known: on every crowd
// attribute, s is preferred over or equal to t. Combined with s ≺AK t this
// establishes s ≺A t. Under useT the check includes transitive inference;
// otherwise only direct answers count.
func (ss *session) acWeaklyPrefers(s, t int) bool {
	if !ss.useT {
		return ss.directWeaklyPrefers(s, t)
	}
	for _, g := range ss.graphs {
		if !g.WeaklyPrefers(s, t) {
			return false
		}
	}
	return true
}

// acDominates reports whether s ≺AC t is known: weak preference on every
// crowd attribute and strict preference on at least one.
func (ss *session) acDominates(s, t int) bool {
	strict := false
	for _, g := range ss.graphs {
		switch g.Known(s, t) {
		case prefgraph.Prefer:
			strict = true
		case prefgraph.Equal:
			// weak, not strict
		default:
			return false
		}
	}
	return strict
}

// acEqual reports whether s and t are known equal on every crowd attribute.
func (ss *session) acEqual(s, t int) bool {
	for _, g := range ss.graphs {
		if g.Known(s, t) != prefgraph.Equal {
			return false
		}
	}
	return true
}

// contradictions sums dropped conflicting answers across the per-attribute
// preference graphs.
func (ss *session) contradictions() int {
	total := 0
	for _, g := range ss.graphs {
		total += g.Contradictions()
	}
	return total
}

// preprocessDegenerate implements Algorithm 1, lines 1-3: for tuple pairs
// with identical values on every known attribute, the crowd decides the AC
// preference and the less preferred tuple is removed from R. A pair that
// is equal in AC as well cannot dominate either way; the later tuple is
// folded into the earlier one as a twin and re-added to the skyline at
// readout. Each compared pair is one round, as in the serial algorithm.
func (ss *session) preprocessDegenerate() {
	d := ss.d
	n := d.N()
	for i := 0; i < n; i++ {
		if !ss.alive[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if !ss.alive[j] || !skyline.EqualKnown(d, i, j) {
				continue
			}
			ss.askPairNow(i, j)
			switch {
			case ss.acDominates(i, j):
				ss.alive[j] = false
			case ss.acDominates(j, i):
				ss.alive[i] = false
			case ss.acEqual(i, j):
				// Equal on all attributes: identical tuples share fate, so
				// fold j into i and re-add it at readout.
				ss.alive[j] = false
				ss.twin[j] = i
			default:
				// Incomparable in AC: neither can ever dominate the other
				// (no strict preference exists in AK), so both stay; the
				// pruning lemmas are unaffected because neither tuple can
				// appear in a dominating set of the other.
			}
			if !ss.alive[i] {
				break
			}
		}
	}
}

// finish assembles the Result from the session state and the skyline
// membership flags (indexed by tuple; only alive tuples are consulted).
// Twins of skyline tuples are re-added.
func (ss *session) finish(inSkyline []bool) *Result {
	var sky []int
	for t := 0; t < ss.d.N(); t++ {
		if ss.alive[t] && inSkyline[t] {
			sky = append(sky, t)
		} else if tw := ss.twin[t]; tw >= 0 && inSkyline[tw] {
			sky = append(sky, t)
		}
	}
	sort.Ints(sky)
	st := ss.pf.Stats().Snapshot()
	// The root span closes before run_end so the trace stays framed by
	// run_start…run_end, the invariant downstream consumers rely on.
	ss.runSpan.SetAttr("questions", strconv.Itoa(st.Questions))
	ss.runSpan.SetAttr("rounds", strconv.Itoa(st.Rounds))
	ss.runSpan.SetAttr("skyline", strconv.Itoa(len(sky)))
	ss.runSpan.End()
	if ss.trace != nil {
		ss.trace.Emit(telemetry.RunEnd(st.Questions, st.Rounds, len(sky)))
	}
	return &Result{
		Skyline:        sky,
		Questions:      st.Questions,
		Rounds:         st.Rounds,
		WorkerAnswers:  st.WorkerAnswers,
		Cost:           ss.pf.Stats().Cost(crowd.DefaultReward),
		Contradictions: ss.contradictions(),
		Truncated:      ss.exhausted,
	}
}

// prepMachine pays the machine part of a run in one place, after the
// degenerate-case preprocessing fixed the alive set: it builds (or adopts
// from Options.Index) the dominance index, derives the alive-restricted
// dominating sets and the frequency counter from its bitmap, seeds the
// progress estimate, and pre-sizes the direct-answer map for the expected
// question volume. Every algorithm calls it exactly once; nothing
// downstream runs another pair-wise dominance test.
func (ss *session) prepMachine() [][]int {
	allAlive := true
	for t := 0; t < ss.d.N(); t++ {
		if !ss.alive[t] {
			allAlive = false
			break
		}
	}
	if allAlive && ss.sharedIx != nil && ss.sharedIx.Matches(ss.d) {
		ss.ix = ss.sharedIx
	} else {
		var mask []bool
		if !allAlive {
			mask = ss.alive
		}
		_, ispan := telemetry.StartSpan(ss.runContext(), ss.trace, "index_build")
		ss.ix = skyline.NewIndexAlive(ss.d, mask)
		if ss.trace != nil {
			st := ss.ix.Stats()
			ss.trace.Emit(telemetry.IndexBuild(st.N, st.Pairs, st.BitmapBytes, st.BuildDuration))
			ispan.SetAttr("pairs", strconv.Itoa(st.Pairs))
		}
		ispan.End()
	}
	sets := ss.ix.DominatingSets()
	ss.fc = ss.ix.FreqCounter()
	ss.progressTotal = ss.estimateTotalQuestions(sets)
	ss.presizeDirect()
	return sets
}

// presizeDirect rebuilds the direct-answer map with room for the
// estimated question volume, so the apply hot path does not rehash as
// answers accumulate. The few entries recorded by the degenerate-case
// preprocessing are carried over; the undersized map goes back to the
// pool (its buckets stay at whatever size they grew to, so a recycled
// map often makes this rebuild a no-op for the next run).
func (ss *session) presizeDirect() {
	if ss.progressTotal <= len(ss.direct) {
		return
	}
	m := make(map[directKey]crowd.Preference, ss.progressTotal)
	for k, v := range ss.direct {
		m[k] = v
	}
	clear(ss.direct)
	directPool.Put(ss.direct)
	ss.direct = m
}

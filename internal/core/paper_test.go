package core

// Tests in this file replay the paper's worked examples on the embedded toy
// datasets and check question counts, round counts, question identities and
// final skylines against the numbers printed in the paper (Tables 1-3,
// Examples 2-8, Figure 3). They are the strongest fidelity evidence in the
// repository: every pruning method and both parallelizations must act
// exactly as the running example demands.

import (
	"sort"
	"testing"

	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/skyline"
)

// namesOf maps tuple indices to their dataset names, sorted.
func namesOf(d *dataset.Dataset, ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, t := range ids {
		out = append(out, d.Name(t))
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func perfectToy() (*dataset.Dataset, *crowd.Perfect) {
	d := dataset.Toy()
	return d, crowd.NewPerfect(crowd.DatasetTruth{Data: d})
}

// TestPaperTable1 checks the dominating sets of the Figure 1 toy dataset
// against Table 1(a) and the total question count Σ|DS(t)| = 26 of
// Example 3.
func TestPaperTable1(t *testing.T) {
	d := dataset.Toy()
	sets := skyline.DominatingSets(d)
	want := map[string][]string{
		"a": {"b"},
		"b": {},
		"c": {"a", "b", "e"},
		"d": {"b", "e"},
		"e": {},
		"f": {"a", "b", "d", "e"},
		"g": {"e"},
		"h": {"b", "d", "e", "g", "i"},
		"i": {},
		"j": {"a", "b", "d", "e", "f", "g", "h", "i"},
		"k": {"i", "l"},
		"l": {},
	}
	total := 0
	for i := 0; i < d.N(); i++ {
		got := namesOf(d, sets[i])
		if got == nil {
			got = []string{}
		}
		if !sameStrings(got, want[d.Name(i)]) {
			t.Errorf("DS(%s) = %v, want %v", d.Name(i), got, want[d.Name(i)])
		}
		total += len(sets[i])
	}
	if total != 26 {
		t.Errorf("Σ|DS(t)| = %d, want 26 (Example 3)", total)
	}
}

// TestPaperTable2Ordering checks the P1 evaluation order of Table 2(a):
// tuples sorted by ascending dominating-set size are a, g, d, k, c, f, h, j
// (a/g and d/k are interchangeable ties).
func TestPaperTable2Ordering(t *testing.T) {
	d := dataset.Toy()
	sets := skyline.DominatingSets(d)
	type entry struct {
		name string
		size int
	}
	var entries []entry
	for i := 0; i < d.N(); i++ {
		if len(sets[i]) > 0 {
			entries = append(entries, entry{d.Name(i), len(sets[i])})
		}
	}
	sort.SliceStable(entries, func(x, y int) bool { return entries[x].size < entries[y].size })
	wantSizes := map[string]int{"a": 1, "g": 1, "d": 2, "k": 2, "c": 3, "f": 4, "h": 5, "j": 8}
	for _, e := range entries {
		if wantSizes[e.name] != e.size {
			t.Errorf("|DS(%s)| = %d, want %d", e.name, e.size, wantSizes[e.name])
		}
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].size > entries[i].size {
			t.Errorf("evaluation order not ascending at %v", entries[i])
		}
	}
}

// TestPaperExample2Skyline checks the final crowdsourced skyline of the toy
// dataset: {b, e, i, l, k, f, h} (Example 2), for every pruning
// configuration and both parallelizations.
func TestPaperExample2Skyline(t *testing.T) {
	want := []string{"b", "e", "f", "h", "i", "k", "l"}
	configs := []struct {
		name string
		run  func(d *dataset.Dataset, pf crowd.Platform) *Result
	}{
		{"DSet", func(d *dataset.Dataset, pf crowd.Platform) *Result { return CrowdSky(d, pf, Options{}) }},
		{"P1", func(d *dataset.Dataset, pf crowd.Platform) *Result { return CrowdSky(d, pf, Options{P1: true}) }},
		{"P1P2", func(d *dataset.Dataset, pf crowd.Platform) *Result {
			return CrowdSky(d, pf, Options{P1: true, P2: true})
		}},
		{"P1P2P3", func(d *dataset.Dataset, pf crowd.Platform) *Result { return CrowdSky(d, pf, AllPruning()) }},
		{"ParallelDSet", func(d *dataset.Dataset, pf crowd.Platform) *Result { return ParallelDSet(d, pf, AllPruning()) }},
		{"ParallelSL", func(d *dataset.Dataset, pf crowd.Platform) *Result { return ParallelSL(d, pf, AllPruning()) }},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			d, pf := perfectToy()
			res := cfg.run(d, pf)
			got := namesOf(d, res.Skyline)
			if !sameStrings(got, want) {
				t.Errorf("skyline = %v, want %v", got, want)
			}
		})
	}
}

// TestPaperExample6 replays Example 6 / Figure 4: the full pruning stack
// P1+P2+P3 identifies the toy skyline with exactly 12 questions, and the
// question multiset matches Figure 4(a).
func TestPaperExample6(t *testing.T) {
	d := dataset.Toy()
	rec := &crowd.Recorder{Inner: crowd.NewPerfect(crowd.DatasetTruth{Data: d})}
	res := CrowdSky(d, rec, AllPruning())
	if res.Questions != 12 {
		t.Errorf("questions = %d, want 12 (Example 6)", res.Questions)
	}
	want := map[string]bool{
		"a-b": true, "e-g": true, "b-e": true, "d-e": true,
		"i-l": true, "i-k": true, "c-e": true, "e-f": true,
		"e-i": true, "e-h": true, "f-h": true, "f-j": true,
	}
	got := make(map[string]bool)
	for _, a := range rec.Log {
		x, y := d.Name(a.Q.A), d.Name(a.Q.B)
		if x > y {
			x, y = y, x
		}
		got[x+"-"+y] = true
	}
	if len(got) != len(want) {
		t.Errorf("distinct pairs asked = %d, want %d: %v", len(got), len(want), got)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing question %s (Figure 4a)", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected question %s (not in Figure 4a)", k)
		}
	}
}

// TestPaperFigure3 checks the probing motivation of Section 3.4 on the
// anti-correlated toy dataset: 24 questions without probing, 9 with.
func TestPaperFigure3(t *testing.T) {
	d := dataset.ToyAnti()
	pfNoP3 := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
	res := CrowdSky(d, pfNoP3, Options{P1: true, P2: true})
	if res.Questions != 24 {
		t.Errorf("questions without P3 = %d, want 24 (Section 3.4)", res.Questions)
	}
	pfP3 := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
	res = CrowdSky(d, pfP3, AllPruning())
	if res.Questions != 9 {
		t.Errorf("questions with P3 = %d, want 9 (Section 3.4)", res.Questions)
	}
	// With the Figure 3(b) preferences every tuple ends up in the skyline.
	if len(res.Skyline) != d.N() {
		t.Errorf("skyline size = %d, want %d (all tuples)", len(res.Skyline), d.N())
	}
}

// TestPaperExample7 replays Example 7: ParallelDSet answers the toy query
// with 12 questions in 9 rounds.
func TestPaperExample7(t *testing.T) {
	d, pf := perfectToy()
	res := ParallelDSet(d, pf, AllPruning())
	if res.Questions != 12 {
		t.Errorf("questions = %d, want 12 (Example 7)", res.Questions)
	}
	if res.Rounds != 9 {
		t.Errorf("rounds = %d, want 9 (Example 7)", res.Rounds)
	}
}

// TestPaperExample8 replays Example 8 / Table 3: ParallelSL answers the toy
// query with 12 questions in 6 rounds, with the exact per-round schedule of
// Table 3.
func TestPaperExample8(t *testing.T) {
	d := dataset.Toy()
	pf := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
	res := ParallelSL(d, pf, AllPruning())
	if res.Questions != 12 {
		t.Errorf("questions = %d, want 12 (Example 8)", res.Questions)
	}
	if res.Rounds != 6 {
		t.Errorf("rounds = %d, want 6 (Example 8)", res.Rounds)
	}
	// Check the exact schedule of Table 3.
	perRound := pf.Stats().PerRound()
	wantPerRound := []int{4, 3, 2, 1, 1, 1}
	if len(perRound) != len(wantPerRound) {
		t.Fatalf("rounds = %d, want %d", len(perRound), len(wantPerRound))
	}
	for i, want := range wantPerRound {
		if perRound[i].Questions != want {
			t.Errorf("round %d has %d questions, want %d (Table 3)", i+1, perRound[i].Questions, want)
		}
	}
}

// TestPaperImmediateDominators checks the direct-dominator sets c(t) used
// by Algorithm 2 against the c(t) column of Table 3.
func TestPaperImmediateDominators(t *testing.T) {
	d := dataset.Toy()
	sets := skyline.DominatingSets(d)
	imm := skyline.ImmediateDominators(d, sets)
	want := map[string][]string{
		"a": {"b"},
		"g": {"e"},
		"d": {"b", "e"},
		"k": {"i", "l"},
		"c": {"a", "e"},
		"f": {"a", "d"},
		"h": {"d", "g", "i"},
		"j": {"f", "h"},
	}
	for name, wantC := range want {
		i := d.Index(name)
		got := namesOf(d, imm[i])
		if !sameStrings(got, wantC) {
			t.Errorf("c(%s) = %v, want %v (Table 3)", name, got, wantC)
		}
	}
}

// TestPaperSkylineLayers checks the layer decomposition of Figure 5:
// SL1 = {b,e,i,l}, SL2 = {a,d,g,k}, SL3 = {c,f,h}, SL4 = {j}.
func TestPaperSkylineLayers(t *testing.T) {
	d := dataset.Toy()
	layers := skyline.Layers(d)
	want := [][]string{
		{"b", "e", "i", "l"},
		{"a", "d", "g", "k"},
		{"c", "f", "h"},
		{"j"},
	}
	if len(layers) != len(want) {
		t.Fatalf("layer count = %d, want %d", len(layers), len(want))
	}
	for i := range want {
		got := namesOf(d, layers[i])
		if !sameStrings(got, want[i]) {
			t.Errorf("SL%d = %v, want %v (Figure 5)", i+1, got, want[i])
		}
	}
}

package core

import (
	"testing"
	"testing/quick"

	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
	"crowdsky/internal/skyline"
)

// TestRoundRobinAC: the round-robin multi-attribute strategy (Section 6.1's
// unevaluated suggestion) never changes the skyline under a perfect crowd.
func TestRoundRobinAC(t *testing.T) {
	prop := func(seed int64, rawN uint8, rawDC uint8) bool {
		n := int(rawN)%50 + 4
		dc := int(rawDC)%3 + 1
		d := randomDataset(seed, n, 3, dc, dataset.Independent)
		want := skyline.OracleSkyline(d)

		rr := AllPruning()
		rr.RoundRobinAC = true
		resRR := CrowdSky(d, perfect(d), rr)

		if !metrics.SameSet(resRR.Skyline, want) {
			t.Logf("seed %d: round-robin skyline %v != oracle %v", seed, resRR.Skyline, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundRobinSavesOnMultiAttr: with several crowd attributes the
// strategy saves questions on average (an individual dataset can go either
// way because skipping an attribute also withholds information from the
// preference tree).
func TestRoundRobinSavesOnMultiAttr(t *testing.T) {
	var plain, rrTotal int
	for seed := int64(0); seed < 10; seed++ {
		d := randomDataset(seed, 120, 3, 3, dataset.Independent)
		plain += CrowdSky(d, perfect(d), AllPruning()).Questions
		rr := AllPruning()
		rr.RoundRobinAC = true
		rrTotal += CrowdSky(d, perfect(d), rr).Questions
	}
	if rrTotal >= plain {
		t.Errorf("round-robin asked %d questions on average, want fewer than %d", rrTotal, plain)
	}
}

// TestBudgetCap: with a question budget (the fixed-budget setting of [12])
// the run stops at the cap, flags truncation, and reads out optimistically —
// the reported skyline is a superset of the true skyline because no tuple is
// wrongly killed.
func TestBudgetCap(t *testing.T) {
	d := randomDataset(5, 80, 2, 1, dataset.Independent)
	full := CrowdSky(d, perfect(d), AllPruning())
	want := skyline.OracleSkyline(d)

	for _, budget := range []int{1, 5, full.Questions / 2, full.Questions} {
		opts := AllPruning()
		opts.MaxQuestions = budget
		res := CrowdSky(d, perfect(d), opts)
		if res.Questions > budget {
			t.Errorf("budget %d: asked %d questions", budget, res.Questions)
		}
		if budget < full.Questions && !res.Truncated {
			t.Errorf("budget %d: truncation not flagged", budget)
		}
		if budget >= full.Questions && res.Truncated {
			t.Errorf("budget %d: flagged truncated despite sufficient budget", budget)
		}
		// Optimistic superset property.
		inRes := make(map[int]bool)
		for _, s := range res.Skyline {
			inRes[s] = true
		}
		for _, s := range want {
			if !inRes[s] {
				t.Errorf("budget %d: true skyline tuple %d missing from optimistic readout", budget, s)
			}
		}
	}
}

// TestBudgetCapMonotone: a larger budget never yields a larger (less
// refined) optimistic skyline under a perfect crowd.
func TestBudgetCapMonotone(t *testing.T) {
	d := randomDataset(9, 60, 2, 1, dataset.AntiCorrelated)
	prev := d.N() + 1
	for _, budget := range []int{2, 8, 32, 128, 1 << 20} {
		opts := AllPruning()
		opts.MaxQuestions = budget
		res := CrowdSky(d, perfect(d), opts)
		if len(res.Skyline) > prev {
			t.Errorf("budget %d: skyline grew from %d to %d", budget, prev, len(res.Skyline))
		}
		prev = len(res.Skyline)
	}
}

// TestBudgetCapParallel: both parallel schedulers honor the budget too.
func TestBudgetCapParallel(t *testing.T) {
	d := randomDataset(11, 70, 2, 1, dataset.Independent)
	want := skyline.OracleSkyline(d)
	for name, run := range map[string]func(opts Options) *Result{
		"dset": func(opts Options) *Result { return ParallelDSet(d, perfect(d), opts) },
		"sl":   func(opts Options) *Result { return ParallelSL(d, perfect(d), opts) },
	} {
		opts := AllPruning()
		opts.MaxQuestions = 10
		res := run(opts)
		if res.Questions > 10 {
			t.Errorf("%s: asked %d questions with budget 10", name, res.Questions)
		}
		if !res.Truncated {
			t.Errorf("%s: truncation not flagged", name)
		}
		inRes := make(map[int]bool)
		for _, s := range res.Skyline {
			inRes[s] = true
		}
		for _, s := range want {
			if !inRes[s] {
				t.Errorf("%s: true skyline tuple %d missing from optimistic readout", name, s)
			}
		}
	}
}

// TestProbabilisticCollapsesWithFullBudget: with no budget cap every tuple
// is complete and the probabilities are the exact 0/1 skyline indicator.
func TestProbabilisticCollapsesWithFullBudget(t *testing.T) {
	d := randomDataset(31, 60, 2, 1, dataset.Independent)
	res := CrowdSkyProbabilistic(d, perfect(d), AllPruning())
	want := make(map[int]bool)
	for _, s := range skyline.OracleSkyline(d) {
		want[s] = true
	}
	for _, tp := range res.Probabilities {
		wantP := 0.0
		if want[tp.Tuple] {
			wantP = 1.0
		}
		if tp.Probability != wantP {
			t.Errorf("tuple %d: probability %.2f, want %.0f", tp.Tuple, tp.Probability, wantP)
		}
	}
	if !metrics.SameSet(res.Skyline, skyline.OracleSkyline(d)) {
		t.Errorf("probabilistic run changed the skyline")
	}
}

// TestProbabilisticUnderBudget: with a tight budget, probabilities are
// proper (in [0,1]), true skyline tuples never get probability 0, and the
// mean probability of true skyline tuples exceeds that of non-skyline
// tuples (the ranking is informative).
func TestProbabilisticUnderBudget(t *testing.T) {
	d := randomDataset(33, 120, 2, 1, dataset.Independent)
	full := CrowdSky(d, perfect(d), AllPruning())
	opts := AllPruning()
	opts.MaxQuestions = full.Questions / 3
	res := CrowdSkyProbabilistic(d, perfect(d), opts)
	if !res.Truncated {
		t.Fatalf("budgeted run not truncated")
	}
	want := make(map[int]bool)
	for _, s := range skyline.OracleSkyline(d) {
		want[s] = true
	}
	var skySum, skyN, nonSum, nonN float64
	for _, tp := range res.Probabilities {
		if tp.Probability < 0 || tp.Probability > 1 {
			t.Fatalf("tuple %d: probability %v outside [0,1]", tp.Tuple, tp.Probability)
		}
		if want[tp.Tuple] {
			if tp.Probability == 0 {
				t.Errorf("true skyline tuple %d got probability 0", tp.Tuple)
			}
			skySum += tp.Probability
			skyN++
		} else {
			nonSum += tp.Probability
			nonN++
		}
	}
	if skyN == 0 || nonN == 0 {
		t.Skip("degenerate dataset")
	}
	if skySum/skyN <= nonSum/nonN {
		t.Errorf("probabilities uninformative: skyline mean %.3f <= non-skyline mean %.3f",
			skySum/skyN, nonSum/nonN)
	}
}

// TestPartialMissingValues: tuples with stored crowd values (Example 1's
// partial-missing scenario) contribute their relations for free — the
// skyline stays exact while the question count drops with the stored
// fraction, reaching zero when everything is stored.
func TestPartialMissingValues(t *testing.T) {
	d := randomDataset(41, 80, 2, 1, dataset.Independent)
	baseline := CrowdSky(d, perfect(d), AllPruning()).Questions
	want := skyline.OracleSkyline(d)

	prev := baseline + 1
	for _, frac := range []float64{0.0, 0.5, 1.0} {
		mask := make([][]bool, d.N())
		for i := range mask {
			mask[i] = []bool{float64(i) < frac*float64(d.N())}
		}
		if err := d.SetCrowdKnown(mask); err != nil {
			t.Fatal(err)
		}
		res := CrowdSky(d, perfect(d), AllPruning())
		if !metrics.SameSet(res.Skyline, want) {
			t.Errorf("frac %.1f: skyline mismatch", frac)
		}
		if res.Questions > prev {
			t.Errorf("frac %.1f: questions rose to %d (prev %d)", frac, res.Questions, prev)
		}
		prev = res.Questions
		if frac == 0 && res.Questions != baseline {
			t.Errorf("empty mask changed the run: %d vs %d", res.Questions, baseline)
		}
		if frac == 1 && res.Questions != 0 {
			t.Errorf("fully stored values still asked %d questions", res.Questions)
		}
	}
	// Reset the shared dataset mask for other tests (randomDataset caches
	// nothing, but be tidy).
	_ = d.SetCrowdKnown(make([][]bool, 0))
}

// TestPartialMissingDirectVariants: the DSet/P1-only variants (no
// preference tree) also exploit stored values through direct answers.
func TestPartialMissingDirectVariants(t *testing.T) {
	d := randomDataset(43, 60, 2, 1, dataset.Independent)
	mask := make([][]bool, d.N())
	for i := range mask {
		mask[i] = []bool{i%2 == 0}
	}
	if err := d.SetCrowdKnown(mask); err != nil {
		t.Fatal(err)
	}
	want := skyline.OracleSkyline(d)
	for name, opts := range map[string]Options{
		"DSet": {},
		"P1":   {P1: true},
	} {
		res := CrowdSky(d, perfect(d), opts)
		if !metrics.SameSet(res.Skyline, want) {
			t.Errorf("%s: skyline mismatch with stored values", name)
		}
	}
}

package core

import (
	"testing"

	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
)

// TestZeroAlloc is the CI gate for the per-round session step: folding an
// already-seen batch of answers back into the preference graphs and the
// direct-answer record, then running the completeness checks, must not
// allocate. Fresh insertions write into pre-sized bit sets and an existing
// map slot, so re-apply exercises the same code paths deterministically.
func TestZeroAlloc(t *testing.T) {
	d := randomDataset(5, 64, 3, 2, dataset.Independent)
	ss := newSession(d, perfect(d), Options{P2: true})
	var answers []crowd.Answer
	for i := 0; i < 16; i++ {
		for j := 0; j < d.CrowdDims(); j++ {
			answers = append(answers, crowd.Answer{
				Q:    crowd.Question{A: i, B: i + 1, Attr: j},
				Pref: crowd.First,
			})
		}
	}
	ss.apply(answers) // populate the direct map and the graphs once
	step := func() {
		ss.apply(answers)
		for i := 0; i < 15; i++ {
			_ = ss.pairKnown(i, i+1)
			_, _ = ss.directAnswer(i, i+1, 0)
		}
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("session step allocated %.2f times per run; want 0", avg)
	}
}

// TestZeroAllocSteadyStateRound gates the full serving round: the same
// RoundBench harness the bench op measures must not allocate once warm —
// answer folding, completeness checks, and request regeneration included.
func TestZeroAllocSteadyStateRound(t *testing.T) {
	d := randomDataset(6, 128, 3, 2, dataset.Independent)
	rb := NewRoundBench(d, AllPruning(), 48)
	defer rb.Close()
	if unknown := rb.Round(); unknown != 0 {
		t.Fatalf("warm round left %d pairs unknown", unknown)
	}
	if avg := testing.AllocsPerRun(100, func() { rb.Round() }); avg != 0 {
		t.Fatalf("steady-state round allocated %.2f times per run; want 0", avg)
	}
}

package core

import (
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
)

// RoundBench drives the session's per-round serving step in a steady
// state, as one reusable harness shared by the zero-alloc gate
// (TestZeroAlloc) and the cmd/bench steady_state_round op — so the two
// measure the identical code path. One Round is the inner loop of every
// crowd-enabled algorithm: fold a batch of answers into the preference
// graphs and the direct-answer record, re-check pair completeness, and
// regenerate the outstanding requests into a reused buffer.
//
// The harness asks a perfect crowd once, up front, for a fixed batch of
// dominating-set pairs; Round then replays those answers. After the
// warm-up round every insertion takes the already-known fast path, every
// map write hits an existing slot, and the request buffer has reached
// its high-water mark: a steady-state Round performs zero allocations.
type RoundBench struct {
	ss      *session
	pairs   []pair
	answers []crowd.Answer
	reqs    []crowd.Request
}

// NewRoundBench builds the session (index included) over d, selects up
// to maxPairs dominating-set pairs, obtains their ground-truth answers
// from a perfect platform, and runs the warm-up round. A non-positive
// maxPairs defaults to 64.
func NewRoundBench(d *dataset.Dataset, opts Options, maxPairs int) *RoundBench {
	if maxPairs <= 0 {
		maxPairs = 64
	}
	pf := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
	ss := newSession(d, pf, opts)
	sets := ss.prepMachine()
	rb := &RoundBench{ss: ss}
	for t, ds := range sets {
		for _, s := range ds {
			rb.pairs = append(rb.pairs, makePair(s, t))
			if len(rb.pairs) == maxPairs {
				break
			}
		}
		if len(rb.pairs) == maxPairs {
			break
		}
	}
	var reqs []crowd.Request
	for _, p := range rb.pairs {
		for j := 0; j < d.CrowdDims(); j++ {
			reqs = append(reqs, crowd.Request{Q: crowd.Question{A: p.a(), B: p.b(), Attr: j}, Workers: 1})
		}
	}
	rb.answers = pf.Ask(reqs)
	rb.Round() // warm up: map inserts, graph propagation, buffer growth
	return rb
}

// Pairs returns the number of pairs a Round serves.
func (rb *RoundBench) Pairs() int { return len(rb.pairs) }

// Round executes one serving round over the fixed batch and returns the
// number of pairs still unknown afterwards (zero once warm — the batch's
// answers have all been folded in). Allocation-free in the steady state.
func (rb *RoundBench) Round() int {
	ss := rb.ss
	ss.apply(rb.answers)
	rb.reqs = rb.reqs[:0]
	unknown := 0
	for _, p := range rb.pairs {
		if !ss.pairKnown(p.a(), p.b()) {
			unknown++
			rb.reqs = ss.unknownAttrs(p.a(), p.b(), 0, rb.reqs)
		}
	}
	return unknown
}

// Close releases the session's pooled resources.
func (rb *RoundBench) Close() { rb.ss.release() }

package core

import (
	"math/rand"
	"testing"

	"crowdsky/internal/dataset"
	"crowdsky/internal/telemetry"
	"crowdsky/internal/voting"
)

// TestTraceEventsOnToyDataset runs the full CrowdSky configuration on the
// paper's running example (Table 1) and checks that the trace reflects the
// run: a run_start/run_end frame, matched round boundaries that agree with
// the result's round accounting, and at least one P1 and one P2 pruning
// event (the toy dataset exercises both, per Examples 4-5).
func TestTraceEventsOnToyDataset(t *testing.T) {
	d := dataset.Toy()
	var tr telemetry.Collector
	opts := AllPruning()
	opts.Tracer = &tr
	res := CrowdSky(d, perfect(d), opts)

	if got := tr.Count(telemetry.EventRunStart); got != 1 {
		t.Errorf("run_start events = %d, want 1", got)
	}
	if rs := tr.ByType(telemetry.EventRunStart)[0]; rs.Algo != "crowdsky" || rs.N != d.N() {
		t.Errorf("run_start = %+v", rs)
	}
	if got := tr.Count(telemetry.EventP1Prune); got < 1 {
		t.Error("no p1_prune events on the toy dataset")
	}
	if got := tr.Count(telemetry.EventP2Reduce); got < 1 {
		t.Error("no p2_reduce events on the toy dataset")
	}
	for _, e := range tr.ByType(telemetry.EventP1Prune) {
		if e.Removed != e.Before-e.After || e.Removed < 1 {
			t.Errorf("inconsistent p1_prune: %+v", e)
		}
	}
	starts := tr.Count(telemetry.EventRoundStart)
	ends := tr.Count(telemetry.EventRoundEnd)
	if starts != ends || starts != res.Rounds {
		t.Errorf("round events %d/%d, want both = %d rounds", starts, ends, res.Rounds)
	}
	re := tr.ByType(telemetry.EventRunEnd)
	if len(re) != 1 || re[0].Questions != res.Questions || re[0].Skyline != len(res.Skyline) {
		t.Errorf("run_end mismatch: %+v vs result %+v", re, res)
	}
	events := tr.Events()
	if events[0].Type != telemetry.EventRunStart || events[len(events)-1].Type != telemetry.EventRunEnd {
		t.Errorf("trace not framed by run_start/run_end")
	}
}

// TestTraceP3AndParallel checks p3_resolve events fire when probing prunes
// a dominating set, and that the parallel algorithms stamp their own algo
// names.
func TestTraceP3AndParallel(t *testing.T) {
	d := dataset.Toy()
	var tr telemetry.Collector
	opts := AllPruning()
	opts.Tracer = &tr
	ParallelSL(d, perfect(d), opts)
	if rs := tr.ByType(telemetry.EventRunStart); len(rs) != 1 || rs[0].Algo != "parallel-sl" {
		t.Errorf("run_start = %+v", rs)
	}
	if tr.Count(telemetry.EventP3Resolve) < 1 {
		t.Error("no p3_resolve events; Section 3.4 resolves probes on the toy dataset")
	}
}

// TestTraceBudgetTruncation: exhausting MaxQuestions emits exactly one
// budget_truncated event carrying the cap.
func TestTraceBudgetTruncation(t *testing.T) {
	d := dataset.Toy()
	var tr telemetry.Collector
	opts := AllPruning()
	opts.Tracer = &tr
	opts.MaxQuestions = 5
	res := CrowdSky(d, perfect(d), opts)
	if !res.Truncated {
		t.Fatal("budget of 5 not exhausted on the toy dataset")
	}
	bt := tr.ByType(telemetry.EventBudgetTruncated)
	if len(bt) != 1 {
		t.Fatalf("budget_truncated events = %d, want exactly 1 (latched)", len(bt))
	}
	if bt[0].Budget != 5 || bt[0].Questions < 5 {
		t.Errorf("budget_truncated = %+v", bt[0])
	}
}

// TestTraceVoteEscalation: the annealed policy assigns omega+2 workers to
// early questions, which must surface as vote_escalation events naming the
// nominal base.
func TestTraceVoteEscalation(t *testing.T) {
	d := dataset.Toy()
	var tr telemetry.Collector
	opts := AllPruning()
	opts.Tracer = &tr
	opts.Voting = voting.NewAnnealed(5)
	CrowdSky(d, perfect(d), opts)
	ve := tr.ByType(telemetry.EventVoteEscalation)
	if len(ve) == 0 {
		t.Fatal("annealed voting produced no vote_escalation events")
	}
	for _, e := range ve {
		if e.Workers <= e.Base || e.Base != 5 {
			t.Errorf("vote_escalation = %+v, want workers > base = 5", e)
		}
		if e.A < 0 || e.B < 0 {
			t.Errorf("vote_escalation missing pair: %+v", e)
		}
	}
	// Static voting never escalates.
	var tr2 telemetry.Collector
	opts2 := AllPruning()
	opts2.Tracer = &tr2
	opts2.Voting = voting.Static{Omega: 5}
	CrowdSky(d, perfect(d), opts2)
	if n := tr2.Count(telemetry.EventVoteEscalation); n != 0 {
		t.Errorf("static voting emitted %d vote_escalation events", n)
	}
}

// benchDataset builds a deterministic 100-tuple synthetic instance large
// enough that the emission guards run thousands of times per operation.
func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	d, err := dataset.Generate(dataset.GenerateConfig{
		N: 100, KnownDims: 2, CrowdDims: 1, Distribution: dataset.Independent,
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkCrowdSkyNoTrace is the baseline: Options.Tracer nil, every
// emission site reduced to a pointer comparison. Compare against
// BenchmarkCrowdSkyTraced to measure tracing overhead.
func BenchmarkCrowdSkyNoTrace(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CrowdSky(d, perfect(d), AllPruning())
	}
}

// BenchmarkCrowdSkyTraced runs the same workload with an in-memory
// collector attached.
func BenchmarkCrowdSkyTraced(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var tr telemetry.Collector
		opts := AllPruning()
		opts.Tracer = &tr
		CrowdSky(d, perfect(d), opts)
	}
}

package faultinject

import (
	"math/rand"
	"time"
)

// WorkerFaults configures misbehaving-worker injection for a simulated
// fleet (crowdserve.SimulateWorkers): for each fetched assignment the
// worker may go missing, answer twice, or answer after its lease lapsed.
// Probabilities are evaluated in that order on the worker's own seeded
// RNG, so a fixed fleet seed reproduces the same misbehaviour schedule.
type WorkerFaults struct {
	// Plan books the injected faults; required.
	Plan *Plan
	// PNoShow is the probability a fetched assignment is abandoned
	// unanswered (the lease must lapse and the slot requeue).
	PNoShow float64
	// PDuplicate is the probability a judgment is submitted twice (the
	// marketplace must count it once).
	PDuplicate float64
	// PStale is the probability the worker holds the assignment past its
	// lease and submits late (the marketplace must reject it).
	PStale float64
	// StaleDelay is how long past the fetch a stale worker waits before
	// submitting; set it beyond the server's lease. Defaults to 100ms.
	StaleDelay time.Duration
}

// Next draws the fault decision for one fetched assignment from rng,
// returning the injected kind or "" for a well-behaved delivery. Injected
// kinds are booked on the plan.
func (f *WorkerFaults) Next(rng *rand.Rand) Kind {
	switch {
	case f.draw(rng, f.PNoShow):
		f.Plan.Record(KindWorkerNoShow)
		return KindWorkerNoShow
	case f.draw(rng, f.PDuplicate):
		f.Plan.Record(KindWorkerDuplicate)
		return KindWorkerDuplicate
	case f.draw(rng, f.PStale):
		f.Plan.Record(KindWorkerStale)
		return KindWorkerStale
	}
	return ""
}

func (f *WorkerFaults) draw(rng *rand.Rand, p float64) bool {
	return p > 0 && rng.Float64() < p
}

// Delay returns the stale-submission delay.
func (f *WorkerFaults) Delay() time.Duration {
	if f.StaleDelay > 0 {
		return f.StaleDelay
	}
	return 100 * time.Millisecond
}

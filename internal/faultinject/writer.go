package faultinject

import (
	"io"
	"sync"
)

// TornWriter simulates a crash mid-write: every byte up to Cutoff is
// forwarded to W, everything after is silently dropped — exactly what a
// process killed between write(2) and fsync leaves behind. Writes still
// report full success, because a crashing process never observes its own
// lost tail. Wrapping a journal writer with a TornWriter therefore
// produces a journal with a torn trailing record, the input the
// journal.Recover truncate-at-corruption path must handle.
type TornWriter struct {
	// W receives the surviving prefix.
	W io.Writer
	// Cutoff is the number of bytes that survive the crash.
	Cutoff int64
	// Plan, when non-nil, books one KindJournalTear the first time a
	// write is torn or dropped.
	Plan *Plan

	mu      sync.Mutex
	written int64 // skylint:guardedby mu — bytes offered so far, including dropped ones
	torn    bool  // skylint:guardedby mu
}

// Write implements io.Writer.
func (t *TornWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	remain := t.Cutoff - t.written
	t.written += int64(len(p))
	switch {
	case remain >= int64(len(p)):
		return t.W.Write(p)
	case remain > 0:
		t.recordLocked()
		if _, err := t.W.Write(p[:remain]); err != nil {
			return 0, err
		}
	default:
		t.recordLocked()
	}
	// The dropped suffix still reports success: the "crash" hides it.
	return len(p), nil
}

// Torn reports whether any bytes have been dropped yet.
func (t *TornWriter) Torn() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.torn
}

func (t *TornWriter) recordLocked() {
	if t.torn {
		return
	}
	t.torn = true
	if t.Plan != nil {
		t.Plan.Record(KindJournalTear)
	}
}

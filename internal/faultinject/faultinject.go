// Package faultinject is a deterministic, seedable fault-injection
// framework for the crowdserve path: HTTP transport faults for the
// marketplace client (connection resets, 5xx, injected latency, truncated
// bodies), platform faults for simulated worker fleets (no-shows,
// duplicate submissions, stale leases), and journal faults (torn writes).
//
// The paper's cost-saving invariant — the crowdsourced skyline equals the
// oracle skyline while no answered pair is ever re-purchased — must hold
// not only on the happy path but across network blips, worker
// misbehaviour, and crashes. This package supplies the faults; the chaos
// suite (internal/crowdserve chaos tests, `cmd/bench -chaos`) drives full
// sessions under them and asserts the invariant via the differential
// oracle. See docs/ROBUSTNESS.md for the fault matrix and the recovery
// guarantees each injection point exercises.
//
// Everything is driven by a Plan: one seed fans out into independent
// per-injection-point RNG streams, so adding or removing one injection
// point never perturbs another point's schedule, and the same seed always
// reproduces the same fault sequence for a given request interleaving.
package faultinject

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"crowdsky/internal/telemetry"
)

// Kind names one injectable fault, used for accounting and the
// crowdserve_faults_injected_total metric's kind label.
type Kind string

// The fault vocabulary. Transport kinds are injected by Transport,
// worker kinds by WorkerFaults (via crowdserve.SimulateWorkers), and
// journal kinds by TornWriter.
const (
	// KindConnResetBefore drops the request before it reaches the
	// server: the round trip fails and no server state changes.
	KindConnResetBefore Kind = "conn_reset_before"
	// KindConnResetAfter lets the server process the request, then
	// drops the response: the client sees an error for work that
	// happened — the case idempotency keys exist for.
	KindConnResetAfter Kind = "conn_reset_after"
	// KindHTTP503 short-circuits the request with a synthesized 503.
	KindHTTP503 Kind = "http_503"
	// KindLatency delays the request by a random duration.
	KindLatency Kind = "latency"
	// KindTruncateBody forwards the request but cuts the response body
	// short, so JSON decoding fails client-side.
	KindTruncateBody Kind = "truncate_body"
	// KindWorkerNoShow makes a worker lease an assignment and never
	// answer it; the lease must lapse and the slot requeue.
	KindWorkerNoShow Kind = "worker_no_show"
	// KindWorkerDuplicate makes a worker submit the same judgment twice;
	// the server must count it once.
	KindWorkerDuplicate Kind = "worker_duplicate"
	// KindWorkerStale makes a worker hold an assignment past its lease
	// and submit late; the server must reject the stale judgment.
	KindWorkerStale Kind = "worker_stale"
	// KindJournalTear truncates a journal write mid-record, as a crash
	// between write and fsync would.
	KindJournalTear Kind = "journal_tear"
)

// Plan is the seeded root of a fault schedule. It hands out independent
// deterministic RNG streams per injection point and accumulates counts of
// every fault actually injected. All methods are safe for concurrent use.
type Plan struct {
	seed int64

	mu     sync.Mutex
	counts map[Kind]uint64 // skylint:guardedby mu

	// metrics, when set via InstrumentMetrics, mirrors counts as the
	// crowdserve_faults_injected_total counter family.
	metrics *telemetry.CounterVec
}

// NewPlan returns a fault plan rooted at seed. The same seed yields the
// same per-point RNG streams on every run.
func NewPlan(seed int64) *Plan {
	return &Plan{seed: seed, counts: make(map[Kind]uint64)}
}

// Rand derives the deterministic RNG stream for the named injection
// point. Streams for distinct names are independent: each is seeded from
// the plan seed combined with a hash of the name, so wiring a new
// injection point into a plan never shifts the schedule of existing ones.
func (p *Plan) Rand(point string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(point)) // skylint:ignore errdrop fnv.Write never fails
	return rand.New(rand.NewSource(p.seed ^ int64(h.Sum64())))
}

// Record books one injected fault of the given kind.
func (p *Plan) Record(k Kind) {
	p.mu.Lock()
	p.counts[k]++
	p.mu.Unlock()
	if p.metrics != nil {
		p.metrics.With(string(k)).Inc()
	}
}

// Counts returns a copy of the per-kind injection tally.
func (p *Plan) Counts() map[Kind]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Kind]uint64, len(p.counts))
	for k, n := range p.counts {
		out[k] = n
	}
	return out
}

// Total returns the number of faults injected so far across all kinds.
func (p *Plan) Total() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, c := range p.counts {
		n += c
	}
	return n
}

// Kinds returns the kinds injected so far in sorted order, for
// deterministic reporting.
func (p *Plan) Kinds() []Kind {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Kind, 0, len(p.counts))
	for k := range p.counts {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InstrumentMetrics registers crowdserve_faults_injected_total on reg and
// mirrors every subsequent Record into it, labelled by kind.
func (p *Plan) InstrumentMetrics(reg *telemetry.Registry) {
	p.metrics = reg.NewCounterVec("crowdserve_faults_injected_total",
		"Faults injected by the faultinject plan, by kind.", "kind")
}

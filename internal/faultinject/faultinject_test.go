package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowdsky/internal/telemetry"
)

// TestPlanRandDeterministic: the same seed and point name must reproduce
// the same stream, and distinct points must get independent streams.
func TestPlanRandDeterministic(t *testing.T) {
	draw := func(seed int64, point string, n int) []float64 {
		rng := NewPlan(seed).Rand(point)
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.Float64()
		}
		return out
	}
	a := draw(1, "transport", 8)
	b := draw(1, "transport", 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed+point diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(1, "journal", 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct points produced identical streams")
	}
	d := draw(2, "transport", 8)
	if a[0] == d[0] && a[1] == d[1] && a[2] == d[2] {
		t.Fatal("distinct seeds produced identical streams")
	}
}

// TestPlanCounts: Record tallies per kind and mirrors into the metric.
func TestPlanCounts(t *testing.T) {
	p := NewPlan(1)
	reg := telemetry.NewRegistry()
	p.InstrumentMetrics(reg)
	p.Record(KindHTTP503)
	p.Record(KindHTTP503)
	p.Record(KindJournalTear)
	if got := p.Counts()[KindHTTP503]; got != 2 {
		t.Errorf("http_503 count = %d, want 2", got)
	}
	if p.Total() != 3 {
		t.Errorf("total = %d, want 3", p.Total())
	}
	if kinds := p.Kinds(); len(kinds) != 2 || kinds[0] != KindHTTP503 || kinds[1] != KindJournalTear {
		t.Errorf("kinds = %v", kinds)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `crowdserve_faults_injected_total{kind="http_503"} 2`) {
		t.Errorf("metric missing:\n%s", sb.String())
	}
}

// TestTransportFaults drives every fault kind through a live test server
// at probability 1 and checks the observable failure mode.
func TestTransportFaults(t *testing.T) {
	const body = `{"ok":true,"padding":"0123456789"}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body) // skylint:ignore errdrop test handler
	}))
	defer ts.Close()

	get := func(tr *Transport) (*http.Response, error) {
		client := &http.Client{Transport: tr}
		return client.Get(ts.URL)
	}

	t.Run("reset_before", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1), Config: TransportConfig{PResetBefore: 1}}
		if _, err := get(tr); !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
		if tr.Plan.Counts()[KindConnResetBefore] != 1 {
			t.Errorf("counts = %v", tr.Plan.Counts())
		}
	})
	t.Run("reset_after", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1), Config: TransportConfig{PResetAfter: 1}}
		if _, err := get(tr); !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
		if tr.Plan.Counts()[KindConnResetAfter] != 1 {
			t.Errorf("counts = %v", tr.Plan.Counts())
		}
	})
	t.Run("http_503", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1), Config: TransportConfig{P503: 1}}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1), Config: TransportConfig{PTruncate: 1}}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 || len(data) >= len(body) {
			t.Fatalf("body = %d bytes, want a proper prefix of %d", len(data), len(body))
		}
	})
	t.Run("latency", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1), Config: TransportConfig{PLatency: 1, MaxLatency: 10 * time.Millisecond}}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if tr.Plan.Counts()[KindLatency] != 1 {
			t.Errorf("counts = %v", tr.Plan.Counts())
		}
	})
	t.Run("clean", func(t *testing.T) {
		tr := &Transport{Plan: NewPlan(1)}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if string(data) != body {
			t.Fatalf("clean transport altered the body: %q", data)
		}
		if tr.Plan.Total() != 0 {
			t.Errorf("clean transport injected faults: %v", tr.Plan.Counts())
		}
	})
}

// TestTornWriter: bytes past the cutoff vanish while writes keep
// reporting success, and the tear is booked once.
func TestTornWriter(t *testing.T) {
	var buf bytes.Buffer
	plan := NewPlan(1)
	tw := &TornWriter{W: &buf, Cutoff: 10, Plan: plan}
	if n, err := tw.Write([]byte("0123456")); err != nil || n != 7 {
		t.Fatalf("first write = %d, %v", n, err)
	}
	if n, err := tw.Write([]byte("789abcdef")); err != nil || n != 9 {
		t.Fatalf("torn write = %d, %v", n, err)
	}
	if n, err := tw.Write([]byte("dropped")); err != nil || n != 7 {
		t.Fatalf("dropped write = %d, %v", n, err)
	}
	if buf.String() != "0123456789" {
		t.Errorf("surviving prefix = %q, want first 10 bytes", buf.String())
	}
	if !tw.Torn() {
		t.Error("Torn() = false after dropping bytes")
	}
	if plan.Counts()[KindJournalTear] != 1 {
		t.Errorf("journal_tear booked %d times, want once", plan.Counts()[KindJournalTear])
	}
}

// TestWorkerFaultsSchedule: the decision stream is deterministic for a
// fixed rng seed and respects zero probabilities.
func TestWorkerFaultsSchedule(t *testing.T) {
	plan := NewPlan(1)
	wf := &WorkerFaults{Plan: plan, PNoShow: 0.3, PDuplicate: 0.3, PStale: 0.3}
	draw := func() []Kind {
		rng := NewPlan(42).Rand("worker")
		out := make([]Kind, 32)
		for i := range out {
			out[i] = wf.Next(rng)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	seen := map[Kind]bool{}
	for _, k := range a {
		seen[k] = true
	}
	for _, k := range []Kind{KindWorkerNoShow, KindWorkerDuplicate, KindWorkerStale} {
		if !seen[k] {
			t.Errorf("32 draws at p=0.3 never produced %q (seed-sensitive; adjust seed)", k)
		}
	}
	quiet := &WorkerFaults{Plan: plan}
	rng := NewPlan(7).Rand("worker")
	for i := 0; i < 100; i++ {
		if k := quiet.Next(rng); k != "" {
			t.Fatalf("zero-probability faults injected %q", k)
		}
	}
	if d := quiet.Delay(); d != 100*time.Millisecond {
		t.Errorf("default delay = %v", d)
	}
}

package faultinject

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every transport-level fault
// error, so callers (and tests) can tell an injected failure from a real
// one with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// TransportConfig sets the per-request probability of each transport
// fault. Probabilities are evaluated independently in the order reset
// before → 503 → latency → forward → reset after → truncate; at most one
// terminal fault fires per request.
type TransportConfig struct {
	// PResetBefore drops the request before it reaches the server.
	PResetBefore float64
	// PResetAfter forwards the request, then drops the response — the
	// server processed work the client never learns about.
	PResetAfter float64
	// P503 short-circuits the request with a synthesized 503 response.
	P503 float64
	// PTruncate forwards the request but returns only a prefix of the
	// response body.
	PTruncate float64
	// PLatency delays the request by up to MaxLatency before forwarding.
	PLatency float64
	// MaxLatency bounds the injected delay; defaults to 5ms.
	MaxLatency time.Duration
}

// Transport wraps an http.RoundTripper with seeded fault injection. It is
// safe for concurrent use; the fault schedule is drawn from the plan's
// "transport" RNG stream under a mutex, so a fixed seed reproduces the
// same fault sequence for the same request order.
type Transport struct {
	// Base performs real round trips; defaults to http.DefaultTransport.
	Base http.RoundTripper
	// Plan supplies the RNG stream and books injected faults.
	Plan *Plan
	// Config sets the fault probabilities.
	Config TransportConfig

	mu  sync.Mutex
	rng *rand.Rand // skylint:guardedby mu
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// draw evaluates one probability on the shared schedule stream.
func (t *Transport) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = t.Plan.Rand("transport")
	}
	return t.rng.Float64() < p
}

func (t *Transport) latency() time.Duration {
	max := t.Config.MaxLatency
	if max <= 0 {
		max = 5 * time.Millisecond
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Duration(t.rng.Float64() * float64(max))
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.draw(t.Config.PResetBefore) {
		t.Plan.Record(KindConnResetBefore)
		return nil, &injectedError{kind: KindConnResetBefore}
	}
	if t.draw(t.Config.P503) {
		t.Plan.Record(KindHTTP503)
		return synthesized503(req), nil
	}
	if t.draw(t.Config.PLatency) {
		t.Plan.Record(KindLatency)
		timer := time.NewTimer(t.latency())
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.draw(t.Config.PResetAfter) {
		t.Plan.Record(KindConnResetAfter)
		drain(resp.Body)
		return nil, &injectedError{kind: KindConnResetAfter}
	}
	if t.draw(t.Config.PTruncate) {
		t.Plan.Record(KindTruncateBody)
		return truncateBody(resp), nil
	}
	return resp, nil
}

// injectedError is a transport fault error; it unwraps to ErrInjected.
type injectedError struct{ kind Kind }

func (e *injectedError) Error() string {
	//skylint:alloc-ok error rendering runs only after a fault actually fired, never on the clean path
	return "faultinject: " + string(e.kind)
}
func (e *injectedError) Unwrap() error { return ErrInjected }

// synthesized503 fabricates a 503 without touching the server, as a load
// balancer or overloaded proxy would.
func synthesized503(req *http.Request) *http.Response {
	body := "injected 503\n"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody replaces the response body with its first half, so the
// client's JSON decode fails exactly as it would on a torn connection.
func truncateBody(resp *http.Response) *http.Response {
	data, err := io.ReadAll(resp.Body)
	drain(resp.Body)
	if err != nil || len(data) == 0 {
		// The body was already unreadable; pass the failure through.
		resp.Body = io.NopCloser(bytes.NewReader(nil))
		resp.ContentLength = 0
		return resp
	}
	cut := len(data) / 2
	resp.Body = io.NopCloser(bytes.NewReader(data[:cut]))
	resp.ContentLength = int64(cut)
	resp.Header.Set("Content-Length", strconv.Itoa(cut))
	return resp
}

func drain(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc) // skylint:ignore errdrop best-effort drain of a body we are discarding anyway
	_ = rc.Close()                 // skylint:ignore errdrop read side already consumed; nothing to recover
}

// Package telemetry is the runtime observability substrate: a
// dependency-free metrics registry (counters, gauges, histograms with
// atomic hot paths) with Prometheus text-format exposition, structured
// trace events for the crowd-enabled skyline algorithms, an instrumented
// crowd.Platform decorator, and HTTP middleware for the marketplace.
//
// The paper's whole contribution is a cost/latency/accuracy trade-off
// (questions, rounds, pruning power of P1/P2/P3 — Sections 3-6), so a
// production deployment must be able to watch those quantities move while
// a run is in flight, not just read end-of-run totals. Everything here is
// standard library only and safe for concurrent use; disabled tracing is a
// nil-pointer check on the hot path.
package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bucket upper bounds in seconds,
// matching the Prometheus client defaults: fine resolution around typical
// HTTP latencies, coarse tail for slow crowd rounds.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use; Inc/Add are a single atomic add.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets with upper bounds
// ("le" labels, inclusive) plus a +Inf overflow bucket, and tracks the sum
// of observed values. Observe is lock-free: one binary search and two
// atomic adds (plus a CAS loop for the float sum).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits

	emu       sync.Mutex
	exemplars []exemplar // skylint:guardedby emu — len(bounds)+1, last is +Inf
}

// exemplar is the most recent traced observation that landed in a bucket:
// it links a latency outlier visible in /metrics to the trace that caused
// it (OpenMetrics exemplar semantics, keeping only the latest per bucket).
type exemplar struct {
	value   float64
	traceID string
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v ("le" is inclusive); beyond
	// every bound lands in the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty,
// attaches it as the bucket's exemplar so the observation can be traced
// back from the exposition output. With an empty traceID it is exactly
// Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.emu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, len(h.bounds)+1)
	}
	h.exemplars[i] = exemplar{value: v, traceID: traceID}
	h.emu.Unlock()
}

// bucketExemplar returns the exemplar for bucket i, if one was recorded.
func (h *Histogram) bucketExemplar(i int) (exemplar, bool) {
	h.emu.Lock()
	defer h.emu.Unlock()
	if h.exemplars == nil || h.exemplars[i].traceID == "" {
		return exemplar{}, false
	}
	return h.exemplars[i], true
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter // skylint:guardedby mu
}

// With returns the counter for the given label values (one per label name,
// in declaration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*Histogram // skylint:guardedby mu
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[key] = h
	}
	return h
}

// labelKey renders the {name="value",...} sample suffix, which doubles as
// the child lookup key.
func labelKey(labels, values []string) string {
	if len(values) != len(labels) {
		//skylint:alloc-ok arity-bug panic path; never runs when callers pass one value per label
		panic(fmt.Sprintf("telemetry: got %d label values for labels %v", len(values), labels))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// family is one registered metric name with its exposition metadata.
type family struct {
	name string
	help string
	kind string // "counter", "gauge" or "histogram"

	counter      *Counter
	gauge        *Gauge
	gaugeFn      func() float64
	histogram    *Histogram
	counterVec   *CounterVec
	histogramVec *HistogramVec
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration methods panic on duplicate names —
// metric names are code-level constants, so a duplicate is a programming
// error worth failing loudly on.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // skylint:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic("telemetry: duplicate metric " + f.name)
	}
	r.families[f.name] = f
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: "counter", counter: c})
	return c
}

// NewCounterVec registers and returns a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: make(map[string]*Counter)}
	r.register(&family{name: name, help: help, kind: "counter", counterVec: v})
	return v
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: "gauge", gauge: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed by fn at scrape
// time (for values derived from existing state, e.g. queue lengths). fn
// must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: "gauge", gaugeFn: fn})
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (DefBuckets when none are given).
func (r *Registry) NewHistogram(name, help string, buckets ...float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, kind: "histogram", histogram: h})
	return h
}

// NewHistogramVec registers and returns a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	v := &HistogramVec{labels: labels, bounds: b, children: make(map[string]*Histogram)}
	r.register(&family{name: name, help: help, kind: "histogram", histogramVec: v})
	return v
}

// WriteTo renders every registered metric in the Prometheus text format
// (version 0.0.4), families sorted by name, labelled children sorted by
// label key. It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var buf bytes.Buffer
	for _, f := range fams {
		f.write(&buf)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

func (f *family) write(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(buf, "# TYPE %s %s\n", f.name, f.kind)
	switch {
	case f.counter != nil:
		fmt.Fprintf(buf, "%s %d\n", f.name, f.counter.Value())
	case f.gauge != nil:
		fmt.Fprintf(buf, "%s %d\n", f.name, f.gauge.Value())
	case f.gaugeFn != nil:
		fmt.Fprintf(buf, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
	case f.histogram != nil:
		writeHistogram(buf, f.name, "", f.histogram)
	case f.counterVec != nil:
		f.counterVec.mu.Lock()
		keys := sortedKeys(f.counterVec.children)
		for _, k := range keys {
			fmt.Fprintf(buf, "%s%s %d\n", f.name, k, f.counterVec.children[k].Value())
		}
		f.counterVec.mu.Unlock()
	case f.histogramVec != nil:
		f.histogramVec.mu.Lock()
		keys := sortedKeys(f.histogramVec.children)
		children := make(map[string]*Histogram, len(keys))
		for _, k := range keys {
			children[k] = f.histogramVec.children[k]
		}
		f.histogramVec.mu.Unlock()
		for _, k := range keys {
			writeHistogram(buf, f.name, k, children[k])
		}
	}
}

// writeHistogram renders one histogram; labels is the rendered
// {name="value"} suffix ("" for unlabelled histograms). Bucket counts are
// cumulative, per the exposition format.
func writeHistogram(buf *bytes.Buffer, name, labels string, h *Histogram) {
	joint := func(extra string) string {
		if labels == "" {
			return "{" + extra + "}"
		}
		return labels[:len(labels)-1] + "," + extra + "}"
	}
	// Exemplars render OpenMetrics-style after the bucket value
	// (`# {trace_id="..."} value`); Prometheus text-format parsers treat
	// everything after # as a comment, so plain 0.0.4 scrapers stay happy.
	writeBucket := func(i int, le string, cum uint64) {
		fmt.Fprintf(buf, "%s_bucket%s %d", name, joint(`le="`+le+`"`), cum)
		if ex, ok := h.bucketExemplar(i); ok {
			fmt.Fprintf(buf, ` # {trace_id="%s"} %s`, escapeLabel(ex.traceID), formatFloat(ex.value))
		}
		buf.WriteByte('\n')
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(i, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket(len(h.bounds), "+Inf", cum)
	fmt.Fprintf(buf, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(buf, "%s_count%s %d\n", name, labels, h.Count())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text format (a GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

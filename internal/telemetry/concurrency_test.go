package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestJSONLConcurrentEmitters drives the JSONL tracer from many
// goroutines at once and checks the two invariants concurrent use must
// preserve: every line is intact JSON (no interleaved writes) and Seq is
// a gap-free 1..N ordering matching the write order.
func TestJSONLConcurrentEmitters(t *testing.T) {
	const (
		emitters = 8
		each     = 200
	)
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	var wg sync.WaitGroup
	wg.Add(emitters)
	for g := 0; g < emitters; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e := RoundStart(g*each+i+1, 1)
				e.Algo = fmt.Sprintf("emitter-%d", g)
				j.Emit(e)
			}
		}(g)
	}
	wg.Wait()
	if err := j.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("reading back interleaved stream: %v", err)
	}
	if len(events) != emitters*each {
		t.Fatalf("got %d events, want %d", len(events), emitters*each)
	}
	perEmitter := make(map[string]int)
	for i, e := range events {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d: sequence must be gap-free and ordered", i, e.Seq)
		}
		if e.Type != EventRoundStart {
			t.Fatalf("event %d has type %q: line corrupted", i, e.Type)
		}
		perEmitter[e.Algo]++
	}
	for g := 0; g < emitters; g++ {
		key := fmt.Sprintf("emitter-%d", g)
		if perEmitter[key] != each {
			t.Errorf("emitter %d: %d events survived, want %d", g, perEmitter[key], each)
		}
	}
}

// TestSpanConcurrentAttrs exercises SetAttr/End racing from several
// goroutines; run with -race this is the regression test for the span's
// internal locking.
func TestSpanConcurrentAttrs(t *testing.T) {
	var col Collector
	_, span := StartSpan(nil, &col, "race")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				span.SetAttr(fmt.Sprintf("k%d", g), fmt.Sprintf("%d", i))
			}
		}(g)
	}
	wg.Wait()
	span.End()
	ends := col.ByType(EventSpanEnd)
	if len(ends) != 1 || len(ends[0].Attrs) != 4 {
		t.Fatalf("span_end = %+v; want one event with 4 attrs", ends)
	}
}

package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_total", "help")
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != goroutines*perG {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("count = %d, want 4000", h.Count())
	}
	if h.Sum() != 2000 { // 0.5 is exact in binary, so the sum is too
		t.Errorf("sum = %v, want 2000", h.Sum())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.5, 2})
	h.Observe(0.25) // below first bound
	h.Observe(0.5)  // exactly on a bound: le is inclusive
	h.Observe(4)    // beyond every bound: +Inf
	counts := []uint64{h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load()}
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 {
		t.Errorf("raw bucket counts = %v, want [2 0 1]", counts)
	}
	if h.Count() != 3 || h.Sum() != 4.75 {
		t.Errorf("count/sum = %d/%v, want 3/4.75", h.Count(), h.Sum())
	}
}

func TestWriteToGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("b_counter_total", "A counter.")
	c.Add(7)
	g := reg.NewGauge("c_gauge", "A gauge.")
	g.Set(-3)
	reg.NewGaugeFunc("d_gauge_fn", "A computed gauge.", func() float64 { return 1.5 })
	h := reg.NewHistogram("a_hist_seconds", "A histogram.", 0.5, 2)
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(4)
	v := reg.NewCounterVec("e_vec_total", "A labelled counter.", "route", "code")
	v.With("/api/work", "200").Add(2)
	v.With("/api/work", "404").Inc()

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_hist_seconds A histogram.
# TYPE a_hist_seconds histogram
a_hist_seconds_bucket{le="0.5"} 2
a_hist_seconds_bucket{le="2"} 2
a_hist_seconds_bucket{le="+Inf"} 3
a_hist_seconds_sum 4.75
a_hist_seconds_count 3
# HELP b_counter_total A counter.
# TYPE b_counter_total counter
b_counter_total 7
# HELP c_gauge A gauge.
# TYPE c_gauge gauge
c_gauge -3
# HELP d_gauge_fn A computed gauge.
# TYPE d_gauge_fn gauge
d_gauge_fn 1.5
# HELP e_vec_total A labelled counter.
# TYPE e_vec_total counter
e_vec_total{route="/api/work",code="200"} 2
e_vec_total{route="/api/work",code="404"} 1
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewHistogramVec("h_seconds", "help", []float64{1}, "route")
	v.With("/a").Observe(0.5)
	v.With("/a").Observe(3)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`h_seconds_bucket{route="/a",le="1"} 1`,
		`h_seconds_bucket{route="/a",le="+Inf"} 2`,
		`h_seconds_sum{route="/a"} 3.5`,
		`h_seconds_count{route="/a"} 2`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, sb.String())
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	key := labelKey([]string{"l"}, []string{"a\\b\"c\nd"})
	want := `{l="a\\b\"c\nd"}`
	if key != want {
		t.Errorf("labelKey = %q, want %q", key, want)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup_total", "help")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.NewCounter("dup_total", "again")
}

func TestHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("x_total", "help")
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE x_total counter") {
		t.Errorf("body missing TYPE line:\n%s", rec.Body.String())
	}
}

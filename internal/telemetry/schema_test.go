package telemetry

import (
	"testing"
	"time"
)

// TestConstructorsMatchSchema is the runtime mirror of the static
// traceschema analyzer: every constructor's output must validate against
// the registry.
func TestConstructorsMatchSchema(t *testing.T) {
	events := map[string]Event{
		"RunStart":        RunStart("crowdsky", 10, 1),
		"RunEnd":          RunEnd(12, 6, 3),
		"RoundStart":      RoundStart(1, 4),
		"RoundEnd":        RoundEnd(1, 4, 5*time.Millisecond),
		"P1Prune":         P1Prune(3, 7, 4),
		"P2Reduce":        P2Reduce(3, 4, 2),
		"P3Resolve":       P3Resolve(3, 1),
		"VoteEscalation":  VoteEscalation(1, 2, 5, 3),
		"BudgetTruncated": BudgetTruncated(100, 90),
		"IndexBuild":      IndexBuild(10, 45, 1024, 2*time.Millisecond),
		"SpanStart": SpanStart(SpanContext{TraceID: "0af7651916cd43dd8448eb211c80319c",
			SpanID: "b7ad6b7169203331"}, "00f067aa0ba902b7", "round", time.Now()),
		"SpanEnd": SpanEnd(SpanContext{TraceID: "0af7651916cd43dd8448eb211c80319c",
			SpanID: "b7ad6b7169203331"}, "round", map[string]string{"round": "1"},
			time.Now(), 5*time.Millisecond),
	}
	for name, e := range events {
		if err := ValidateEvent(e); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestEveryEventTypeHasSchema pins the registry to the declared constants:
// adding an event type without registering its fields must fail.
func TestEveryEventTypeHasSchema(t *testing.T) {
	all := []EventType{
		EventRunStart, EventRunEnd, EventRoundStart, EventRoundEnd,
		EventP1Prune, EventP2Reduce, EventP3Resolve,
		EventVoteEscalation, EventBudgetTruncated, EventIndexBuild,
		EventSpanStart, EventSpanEnd,
	}
	if got := len(EventTypes()); got != len(all) {
		t.Fatalf("registry has %d event types, want %d", got, len(all))
	}
	for _, et := range all {
		if _, ok := SchemaOf(et); !ok {
			t.Errorf("event type %q has no schema entry", et)
		}
	}
}

// TestValidateMetric exercises the metric half of the registry: every
// metric family a live process actually registers must validate, and
// unknown names or drifted labels must not.
func TestValidateMetric(t *testing.T) {
	ok := [][]any{
		{MetricIndexBuilds},
		{MetricCrowdRoundLatency},
		{"crowdserve_rounds_total"},
		{"crowdserve_client_retries_total", "cause"},
		{"crowdserve_faults_injected_total", "kind"},
		{"crowdserve_http_requests_total", "route", "method", "code"},
		{"journal_recovered_records_total"},
	}
	for _, c := range ok {
		name := c[0].(string)
		labels := make([]string, 0, len(c)-1)
		for _, l := range c[1:] {
			labels = append(labels, l.(string))
		}
		if err := ValidateMetric(name, labels...); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := ValidateMetric("mystery_total"); err == nil {
		t.Error("unknown metric must not validate")
	}
	if err := ValidateMetric("crowdserve_client_retries_total"); err == nil {
		t.Error("missing label must not validate")
	}
	if err := ValidateMetric("crowdserve_client_retries_total", "kind"); err == nil {
		t.Error("wrong label name must not validate")
	}
	if err := ValidateMetric("crowdserve_http_requests_total", "method", "route", "code"); err == nil {
		t.Error("label order is part of the schema; reordering must not validate")
	}
}

// TestMetricNamesSorted pins the enumeration contract.
func TestMetricNamesSorted(t *testing.T) {
	names := MetricNames()
	if len(names) != len(metricSchemas) {
		t.Fatalf("MetricNames returned %d families, registry has %d", len(names), len(metricSchemas))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	if labels, ok := MetricSchemaOf("crowdserve_faults_injected_total"); !ok || len(labels) != 1 || labels[0] != "kind" {
		t.Errorf("MetricSchemaOf(faults) = %v, %v", labels, ok)
	}
}

func TestValidateEventRejects(t *testing.T) {
	// skylint:ignore traceschema intentionally unregistered type for the negative test
	if err := ValidateEvent(Event{Type: "mystery"}); err == nil {
		t.Errorf("unknown event type must not validate")
	}
	// A round_start must not carry index_build's pairs field.
	e := RoundStart(1, 4)
	e.Pairs = 9
	if err := ValidateEvent(e); err == nil {
		t.Errorf("stray field must not validate")
	}
	// Implicit fields are always allowed.
	e2 := RoundStart(1, 4)
	e2.Seq, e2.Time = 7, time.Now()
	if err := ValidateEvent(e2); err != nil {
		t.Errorf("implicit fields rejected: %v", err)
	}
}

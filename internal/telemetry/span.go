package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// Hierarchical spans on top of the flat trace-event stream. A Span is one
// timed operation (a run, a crowd round, a lease wait); spans nest through
// parent IDs and cross process boundaries through the W3C traceparent
// header, so a single trace ID stitches an algorithm run on the requester
// to the lease/judgment lifecycle inside the marketplace. Spans are
// emitted through the existing Tracer interface as paired span_start /
// span_end events, keeping the JSONL trace one stream that ReadEvents and
// every downstream consumer (cmd/skytrace, jq) already parse.

// TraceParentHeader is the canonical W3C trace-context header name.
const TraceParentHeader = "traceparent"

// SpanContext identifies one span within one trace: a 16-byte trace ID
// and an 8-byte span ID, both lowercase hex. The zero value is invalid.
type SpanContext struct {
	TraceID string // 32 lowercase hex characters
	SpanID  string // 16 lowercase hex characters
}

// Valid reports whether both IDs have the right shape and are non-zero,
// per the W3C trace-context rules.
func (sc SpanContext) Valid() bool {
	return isHexID(sc.TraceID, 32) && isHexID(sc.SpanID, 16)
}

// TraceParent renders the context as a W3C traceparent header value:
// version 00, sampled flag set.
func (sc SpanContext) TraceParent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceParent parses a W3C traceparent header value. Unknown versions
// are accepted as long as the trace and parent IDs are well formed
// (the spec's forward-compatibility rule); the invalid version ff and
// all-zero IDs are rejected.
func ParseTraceParent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	version, traceID, spanID := parts[0], parts[1], parts[2]
	if len(version) != 2 || !isHex(version) || version == "ff" {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: traceID, SpanID: spanID}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// isHexID reports whether s is exactly n lowercase hex characters and not
// all zeros.
func isHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	return strings.Trim(s, "0") != ""
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// randHex returns n cryptographically random bytes as 2n hex characters.
// crypto/rand never fails on the supported platforms; if it somehow does,
// tracing degrades to a fixed ID rather than aborting a paid crowd run.
func randHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		for i := range buf {
			buf[i] = 0xff
		}
	}
	return hex.EncodeToString(buf)
}

// Span is one in-flight timed operation. Create spans with StartSpan and
// finish them with End, which emits the span_end event carrying the
// duration and the accumulated attributes. All methods are safe on a nil
// receiver (the disabled-tracing path) and safe for concurrent use.
type Span struct {
	sc       SpanContext
	parentID string
	name     string
	start    time.Time
	tracer   Tracer

	mu    sync.Mutex
	attrs map[string]string // skylint:guardedby mu
	ended bool              // skylint:guardedby mu
}

// Context returns the span's trace/span ID pair (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace ID, or "" for a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID
}

// Name returns the span's name, or "" for a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr attaches a key/value attribute, carried on the span_end event.
// Calls after End are ignored.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End emits the span_end event with the span's wall-clock duration.
// Ending twice is a no-op, so defer span.End() composes with early exits.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		//skylint:alloc-ok the span is ending; one snapshot of its few attrs under the lock
		for k, v := range s.attrs {
			attrs[k] = v
		}
	}
	s.mu.Unlock()
	end := time.Now().UTC()
	if s.tracer != nil {
		s.tracer.Emit(SpanEnd(s.sc, s.name, attrs, end, end.Sub(s.start)))
	}
}

// Context keys for the active span and for a remote (cross-process)
// parent extracted from a traceparent header.
type spanKey struct{}
type remoteKey struct{}

// ContextWithSpan returns a context carrying span as the active span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	//skylint:alloc-ok the zero-size key boxes to the runtime's shared zerobase, not the heap
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	//skylint:alloc-ok the zero-size key boxes to the runtime's shared zerobase, not the heap
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithRemote returns a context carrying a remote parent span
// context (typically extracted from an incoming traceparent header).
// StartSpan parents new spans under it when no local span is active.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteKey{}, sc)
}

// ActiveSpanContext returns the span context that outgoing requests
// should propagate: the active local span's, else the remote parent's,
// else the zero SpanContext.
func ActiveSpanContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	if s := SpanFromContext(ctx); s != nil {
		return s.sc
	}
	sc, _ := ctx.Value(remoteKey{}).(SpanContext)
	return sc
}

// StartSpan starts a span named name and returns a context carrying it as
// the active span. The parent is the active span in ctx (whose tracer is
// inherited when tracer is nil), else a remote span context placed by
// ContextWithRemote, else the span roots a new trace. With no usable
// tracer the call is a no-op returning (ctx, nil): the nil *Span accepts
// every method, so call sites need no guards beyond the usual nil-tracer
// check for performance.
func StartSpan(ctx context.Context, tracer Tracer, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	var traceID, parentID string
	if parent := SpanFromContext(ctx); parent != nil {
		traceID, parentID = parent.sc.TraceID, parent.sc.SpanID
		if tracer == nil {
			tracer = parent.tracer
		}
		//skylint:alloc-ok the zero-size key boxes to the runtime's shared zerobase, not the heap
	} else if rsc, ok := ctx.Value(remoteKey{}).(SpanContext); ok && rsc.Valid() {
		traceID, parentID = rsc.TraceID, rsc.SpanID
	}
	if tracer == nil {
		return ctx, nil
	}
	if traceID == "" {
		traceID = randHex(16)
	}
	s := &Span{
		sc:       SpanContext{TraceID: traceID, SpanID: randHex(8)},
		parentID: parentID,
		name:     name,
		start:    time.Now().UTC(),
		tracer:   tracer,
	}
	tracer.Emit(SpanStart(s.sc, s.parentID, s.name, s.start))
	return ContextWithSpan(ctx, s), s
}

// SpanStart builds a span_start event at the given start time.
func SpanStart(sc SpanContext, parentID, name string, start time.Time) Event {
	e := newEvent(EventSpanStart)
	e.TraceID, e.SpanID, e.ParentID, e.Name = sc.TraceID, sc.SpanID, parentID, name
	e.Time = start
	return e
}

// SpanEnd builds a span_end event at the given end time with the span's
// duration and final attributes.
func SpanEnd(sc SpanContext, name string, attrs map[string]string, end time.Time, d time.Duration) Event {
	e := newEvent(EventSpanEnd)
	e.TraceID, e.SpanID, e.Name, e.Attrs = sc.TraceID, sc.SpanID, name, attrs
	e.Time = end
	e.DurationMS = float64(d) / float64(time.Millisecond)
	return e
}

package telemetry

import (
	"context"
	"time"

	"crowdsky/internal/crowd"
)

// InstrumentedPlatform decorates a crowd.Platform with metrics: question,
// round and worker-answer counters plus a per-round latency histogram. It
// composes with every platform in the repository — the simulator, the
// Recorder/Replayer pair, the journal platform, and the HTTP marketplace
// client — because it only sees the Platform interface.
type InstrumentedPlatform struct {
	inner crowd.Platform

	questions     *Counter
	rounds        *Counter
	workerAnswers *Counter
	roundLatency  *Histogram
}

// Platform metric names, exported so dashboards and tests can reference
// them without string duplication.
const (
	MetricCrowdQuestions    = "crowdsky_crowd_questions_total"
	MetricCrowdRounds       = "crowdsky_crowd_rounds_total"
	MetricCrowdWorkerUnits  = "crowdsky_crowd_worker_answers_total"
	MetricCrowdRoundLatency = "crowdsky_crowd_round_latency_seconds"
)

// InstrumentPlatform wraps inner, registering the crowd metrics on reg.
// Register at most one instrumented platform per registry (the metric
// names are fixed; a second registration panics on the duplicate).
func InstrumentPlatform(inner crowd.Platform, reg *Registry) *InstrumentedPlatform {
	return &InstrumentedPlatform{
		inner:         inner,
		questions:     reg.NewCounter(MetricCrowdQuestions, "Crowd questions asked."),
		rounds:        reg.NewCounter(MetricCrowdRounds, "Crowd rounds submitted."),
		workerAnswers: reg.NewCounter(MetricCrowdWorkerUnits, "Individual worker judgments requested."),
		roundLatency:  reg.NewHistogram(MetricCrowdRoundLatency, "Wall-clock latency of one crowd round."),
	}
}

// Ask implements crowd.Platform.
func (p *InstrumentedPlatform) Ask(reqs []crowd.Request) []crowd.Answer {
	return p.AskCtx(context.Background(), reqs)
}

// AskCtx implements crowd.ContextPlatform, forwarding the context to the
// inner platform and attaching the active trace as an exemplar on the
// round-latency histogram.
func (p *InstrumentedPlatform) AskCtx(ctx context.Context, reqs []crowd.Request) []crowd.Answer {
	if len(reqs) == 0 {
		return nil
	}
	start := time.Now()
	out := crowd.AskWithContext(ctx, p.inner, reqs)
	p.roundLatency.ObserveExemplar(time.Since(start).Seconds(), ActiveSpanContext(ctx).TraceID)
	p.rounds.Inc()
	p.questions.Add(uint64(len(reqs)))
	answers := 0
	for _, r := range reqs {
		w := r.Workers
		if w < 1 {
			w = 1
		}
		answers += w
	}
	p.workerAnswers.Add(uint64(answers))
	return out
}

// Stats implements crowd.Platform, delegating to the wrapped platform so
// the paper-accounting path is untouched.
func (p *InstrumentedPlatform) Stats() *crowd.Stats { return p.inner.Stats() }

// Unwrap returns the wrapped platform.
func (p *InstrumentedPlatform) Unwrap() crowd.Platform { return p.inner }

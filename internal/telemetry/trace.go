package telemetry

import (
	"sync"
	"time"
)

// EventType names a trace event. The set mirrors the paper's accounting:
// rounds (latency), questions (cost), and the three pruning methods whose
// savings Figures 6-7 decompose.
type EventType string

// Trace event types.
const (
	// EventRunStart opens an algorithm run (Algo, N, CrowdDims).
	EventRunStart EventType = "run_start"
	// EventRunEnd closes a run (Questions, Rounds, Skyline).
	EventRunEnd EventType = "run_end"
	// EventRoundStart marks a crowd round being submitted (Round,
	// Questions).
	EventRoundStart EventType = "round_start"
	// EventRoundEnd marks a crowd round's answers arriving (Round,
	// Questions, DurationMS).
	EventRoundEnd EventType = "round_end"
	// EventP1Prune records P1 dropping complete non-skyline tuples from
	// DS(Tuple) at question-generation time (Before, After, Removed;
	// Section 3.2).
	EventP1Prune EventType = "p1_prune"
	// EventP2Reduce records P2 reducing DS(Tuple) to SKY_AC(DS(Tuple)) via
	// the preference tree's transitive closure (Before, After, Removed;
	// Section 3.3).
	EventP2Reduce EventType = "p2_reduce"
	// EventP3Resolve records a P3 probing outcome removing member A from
	// DS(Tuple) (Section 3.4).
	EventP3Resolve EventType = "p3_resolve"
	// EventVoteEscalation records the voting policy assigning more workers
	// than the nominal ω to the pair (A, B) (Workers, Base; Section 5).
	EventVoteEscalation EventType = "vote_escalation"
	// EventBudgetTruncated records the question budget running out
	// (Questions, Budget); the run switches to the optimistic readout.
	EventBudgetTruncated EventType = "budget_truncated"
	// EventIndexBuild records a dominance index build (N, Pairs, Bytes,
	// DurationMS): the one-time machine-part cost a run pays before any
	// crowd question is issued.
	EventIndexBuild EventType = "index_build"
	// EventSpanStart opens a hierarchical span (TraceID, SpanID, ParentID,
	// Name); see span.go.
	EventSpanStart EventType = "span_start"
	// EventSpanEnd closes a span (TraceID, SpanID, Name, DurationMS,
	// Attrs); paired with span_start by SpanID.
	EventSpanEnd EventType = "span_end"
)

// Event is one structured trace event. It is a flat union of the fields
// used by every event type: unused numeric fields are omitted from JSON
// where zero is unambiguous; Tuple, A and B hold -1 when not applicable
// (tuple indices start at 0, so zero cannot mean "unset").
type Event struct {
	Seq  int       `json:"seq,omitempty"`
	Time time.Time `json:"time"`
	Type EventType `json:"type"`

	Algo      string `json:"algo,omitempty"`       // run_start
	N         int    `json:"n,omitempty"`          // run_start: dataset size
	CrowdDims int    `json:"crowd_dims,omitempty"` // run_start

	Round      int     `json:"round,omitempty"`       // 1-based round number
	Questions  int     `json:"questions,omitempty"`   // round size / run total
	DurationMS float64 `json:"duration_ms,omitempty"` // round_end wall time

	Tuple int `json:"tuple"` // tuple under evaluation; -1 when n/a
	A     int `json:"a"`     // pair member / removed DS member; -1 when n/a
	B     int `json:"b"`     // pair member; -1 when n/a

	Before  int `json:"before,omitempty"`  // DS size before pruning
	After   int `json:"after,omitempty"`   // DS size after pruning
	Removed int `json:"removed,omitempty"` // tuples removed by pruning

	Workers int `json:"workers,omitempty"` // vote_escalation: assigned
	Base    int `json:"base,omitempty"`    // vote_escalation: nominal ω
	Budget  int `json:"budget,omitempty"`  // budget_truncated: the cap
	Rounds  int `json:"rounds,omitempty"`  // run_end
	Skyline int `json:"skyline,omitempty"` // run_end: skyline size

	Pairs int   `json:"pairs,omitempty"` // index_build: dominance pairs
	Bytes int64 `json:"bytes,omitempty"` // index_build: bitmap memory

	TraceID  string            `json:"trace_id,omitempty"`  // span_*: 32-hex trace ID
	SpanID   string            `json:"span_id,omitempty"`   // span_*: 16-hex span ID
	ParentID string            `json:"parent_id,omitempty"` // span_start: parent span ID
	Name     string            `json:"name,omitempty"`      // span_*: operation name
	Attrs    map[string]string `json:"attrs,omitempty"`     // span_end: attributes
}

func newEvent(t EventType) Event {
	return Event{Type: t, Tuple: -1, A: -1, B: -1}
}

// RunStart builds a run_start event.
func RunStart(algo string, n, crowdDims int) Event {
	e := newEvent(EventRunStart)
	e.Algo, e.N, e.CrowdDims = algo, n, crowdDims
	return e
}

// RunEnd builds a run_end event.
func RunEnd(questions, rounds, skyline int) Event {
	e := newEvent(EventRunEnd)
	e.Questions, e.Rounds, e.Skyline = questions, rounds, skyline
	return e
}

// RoundStart builds a round_start event for the 1-based round number.
func RoundStart(round, questions int) Event {
	e := newEvent(EventRoundStart)
	e.Round, e.Questions = round, questions
	return e
}

// RoundEnd builds a round_end event with the round's wall-clock duration.
func RoundEnd(round, questions int, d time.Duration) Event {
	e := newEvent(EventRoundEnd)
	e.Round, e.Questions = round, questions
	e.DurationMS = float64(d) / float64(time.Millisecond)
	return e
}

// P1Prune builds a p1_prune event: DS(tuple) shrank from before to after
// members by dropping complete non-skyline tuples.
func P1Prune(tuple, before, after int) Event {
	e := newEvent(EventP1Prune)
	e.Tuple, e.Before, e.After, e.Removed = tuple, before, after, before-after
	return e
}

// P2Reduce builds a p2_reduce event: DS(tuple) was reduced to its AC
// skyline, from before to after members.
func P2Reduce(tuple, before, after int) Event {
	e := newEvent(EventP2Reduce)
	e.Tuple, e.Before, e.After, e.Removed = tuple, before, after, before-after
	return e
}

// P3Resolve builds a p3_resolve event: probing removed member from
// DS(tuple).
func P3Resolve(tuple, member int) Event {
	e := newEvent(EventP3Resolve)
	e.Tuple, e.A, e.Removed = tuple, member, 1
	return e
}

// VoteEscalation builds a vote_escalation event: the pair (a, b) was
// assigned workers > base workers by the voting policy.
func VoteEscalation(a, b, workers, base int) Event {
	e := newEvent(EventVoteEscalation)
	e.A, e.B, e.Workers, e.Base = a, b, workers, base
	return e
}

// IndexBuild builds an index_build event: a dominance index over n
// tuples with pairs dominance pairs and bytes of bitmap memory was built
// in d.
func IndexBuild(n, pairs int, bytes int64, d time.Duration) Event {
	e := newEvent(EventIndexBuild)
	e.N, e.Pairs, e.Bytes = n, pairs, bytes
	e.DurationMS = float64(d) / float64(time.Millisecond)
	return e
}

// BudgetTruncated builds a budget_truncated event after asked questions
// exhausted the budget.
func BudgetTruncated(asked, budget int) Event {
	e := newEvent(EventBudgetTruncated)
	e.Questions, e.Budget = asked, budget
	return e
}

// Tracer receives algorithm trace events. Implementations must be safe
// for concurrent use: parallel algorithms emit from a single goroutine
// today, but platform decorators and servers may not.
//
// A nil Tracer means tracing is disabled; emitters check for nil before
// building the event, so the disabled path costs one pointer comparison.
type Tracer interface {
	Emit(Event)
}

// Collector is a Tracer that appends every event to memory; intended for
// tests and in-process inspection.
type Collector struct {
	mu     sync.Mutex
	events []Event // skylint:guardedby mu
}

// Emit implements Tracer.
func (c *Collector) Emit(e Event) { // skylint:ignore recvcopy Emit's by-value signature is pinned by the Tracer interface
	c.mu.Lock()
	defer c.mu.Unlock()
	e.Seq = len(c.events) + 1
	//skylint:alloc-ok the Collector is the in-memory test tracer; unbounded growth is its contract
	c.events = append(c.events, e)
}

// Events returns a copy of the collected events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// ByType returns the collected events of one type, in emission order.
func (c *Collector) ByType(t EventType) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of one type were collected.
func (c *Collector) Count(t EventType) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

// multi fans events out to several tracers.
type multi []Tracer

// Multi combines tracers into one; nil members are skipped. With zero or
// one non-nil member the member itself (or nil) is returned, keeping the
// single-tracer hot path free of indirection.
func Multi(tracers ...Tracer) Tracer {
	var live multi
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

// Emit implements Tracer.
func (m multi) Emit(e Event) { // skylint:ignore recvcopy Emit's by-value signature is pinned by the Tracer interface
	for _, t := range m {
		// skylint:ignore niltrace Multi filters nil members at construction
		t.Emit(e)
	}
}

// Emit forwards e to t if t is non-nil. It is the sanctioned way to emit
// on a possibly-nil Tracer without writing the nil check inline (the
// niltrace analyzer accepts call sites spelled telemetry.Emit(t, e)).
func Emit(t Tracer, e Event) {
	if t != nil {
		t.Emit(e)
	}
}

package telemetry

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics instruments HTTP handlers with per-route request counters
// (labelled by route, method and status code) and per-route latency
// histograms.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
}

// NewHTTPMetrics registers the HTTP metric families on reg under
// <prefix>_http_requests_total and <prefix>_http_request_seconds.
func NewHTTPMetrics(reg *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.NewCounterVec(prefix+"_http_requests_total",
			"HTTP requests served.", "route", "method", "code"),
		latency: reg.NewHistogramVec(prefix+"_http_request_seconds",
			"HTTP request latency.", DefBuckets, "route"),
	}
}

// statusWriter captures the response status code (200 when the handler
// never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Wrap instruments h under the given route label. The route is a static
// string (e.g. "/api/rounds/{id}"), not the raw request path, to keep
// metric cardinality bounded.
func (m *HTTPMetrics) Wrap(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		m.latency.With(route).Observe(time.Since(start).Seconds())
		m.requests.With(route, r.Method, strconv.Itoa(sw.code)).Inc()
	})
}

// WrapFunc is Wrap for handler functions.
func (m *HTTPMetrics) WrapFunc(route string, h http.HandlerFunc) http.Handler {
	return m.Wrap(route, h)
}

package telemetry

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics instruments HTTP handlers with per-route request counters
// (labelled by route, method and status code) and per-route latency
// histograms. It also participates in distributed tracing: an incoming
// traceparent header is parsed into the request context so handlers can
// parent their spans under the caller's trace, the trace ID is attached
// to the latency histogram as an exemplar, and — when a tracer is set —
// requests that carry a traceparent get a server-side span joined to the
// caller's trace. Requests without one (worker polls, metrics scrapes)
// get no span: starting a fresh root trace per poll would bury the
// requester's traces under noise.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	tracer   Tracer
}

// NewHTTPMetrics registers the HTTP metric families on reg under
// <prefix>_http_requests_total and <prefix>_http_request_seconds.
func NewHTTPMetrics(reg *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.NewCounterVec(prefix+"_http_requests_total",
			"HTTP requests served.", "route", "method", "code"),
		latency: reg.NewHistogramVec(prefix+"_http_request_seconds",
			"HTTP request latency.", DefBuckets, "route"),
	}
}

// SetTracer enables server-side request spans on every route wrapped
// after the call. Call it before mounting handlers; it is not safe to
// race with in-flight requests.
func (m *HTTPMetrics) SetTracer(t Tracer) { m.tracer = t }

// statusWriter captures the response status code (200 when the handler
// never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Wrap instruments h under the given route label. The route is a static
// string (e.g. "/api/rounds/{id}"), not the raw request path, to keep
// metric cardinality bounded.
func (m *HTTPMetrics) Wrap(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		var span *Span
		if sc, ok := ParseTraceParent(r.Header.Get(TraceParentHeader)); ok {
			ctx = ContextWithRemote(ctx, sc)
			if m.tracer != nil {
				ctx, span = StartSpan(ctx, m.tracer, "http "+route)
				span.SetAttr("method", r.Method)
			}
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r.WithContext(ctx))
		if span != nil {
			span.SetAttr("code", strconv.Itoa(sw.code))
			span.End()
		}
		// The exemplar carries whichever trace covers this request: the
		// server span's when tracing is on, else the caller's propagated
		// trace ID, else none.
		m.latency.With(route).ObserveExemplar(time.Since(start).Seconds(), ActiveSpanContext(ctx).TraceID)
		m.requests.With(route, r.Method, strconv.Itoa(sw.code)).Inc()
	})
}

// WrapFunc is Wrap for handler functions.
func (m *HTTPMetrics) WrapFunc(route string, h http.HandlerFunc) http.Handler {
	return m.Wrap(route, h)
}

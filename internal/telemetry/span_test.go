package telemetry

import (
	"context"
	"strings"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: "0af7651916cd43dd8448eb211c80319c", SpanID: "b7ad6b7169203331"}
	if !sc.Valid() {
		t.Fatalf("context %+v should be valid", sc)
	}
	hdr := sc.TraceParent()
	want := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if hdr != want {
		t.Fatalf("TraceParent() = %q, want %q", hdr, want)
	}
	got, ok := ParseTraceParent(hdr)
	if !ok || got != sc {
		t.Fatalf("ParseTraceParent(%q) = %+v, %v; want %+v, true", hdr, got, ok, sc)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-short-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace ID
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span ID
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // invalid version
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
		"not-a-traceparent",
	}
	for _, s := range bad {
		if _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want rejected", s)
		}
	}
	// Unknown future version with well-formed IDs is accepted (forward
	// compatibility), possibly with trailing extra fields.
	ok1, ok := ParseTraceParent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra")
	if !ok || ok1.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("future version rejected: %+v %v", ok1, ok)
	}
}

func TestStartSpanParenting(t *testing.T) {
	var col Collector
	ctx, root := StartSpan(context.Background(), &col, "run")
	if root == nil {
		t.Fatal("StartSpan with tracer returned nil span")
	}
	// Child inherits the tracer through the context: tracer arg nil.
	ctx2, child := StartSpan(ctx, nil, "round")
	if child == nil {
		t.Fatal("child span did not inherit parent tracer")
	}
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace ID %q != root %q", child.TraceID(), root.TraceID())
	}
	child.SetAttr("round", "1")
	child.End()
	child.End() // double End is a no-op
	root.End()

	starts := col.ByType(EventSpanStart)
	ends := col.ByType(EventSpanEnd)
	if len(starts) != 2 || len(ends) != 2 {
		t.Fatalf("got %d span_start, %d span_end; want 2, 2", len(starts), len(ends))
	}
	if starts[0].Name != "run" || starts[0].ParentID != "" {
		t.Errorf("root start = %+v; want name run, no parent", starts[0])
	}
	if starts[1].Name != "round" || starts[1].ParentID != starts[0].SpanID {
		t.Errorf("child start = %+v; want parent %q", starts[1], starts[0].SpanID)
	}
	if ends[0].Name != "round" || ends[0].Attrs["round"] != "1" {
		t.Errorf("child end = %+v; want attrs[round]=1", ends[0])
	}
	if ends[0].DurationMS < 0 {
		t.Errorf("negative duration %v", ends[0].DurationMS)
	}
	for _, e := range append(starts, ends...) {
		if err := ValidateEvent(e); err != nil {
			t.Errorf("span event fails schema: %v", err)
		}
	}
	_ = ctx2
}

func TestStartSpanRemoteParent(t *testing.T) {
	remote := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}
	ctx := ContextWithRemote(context.Background(), remote)
	if got := ActiveSpanContext(ctx); got != remote {
		t.Fatalf("ActiveSpanContext = %+v, want remote %+v", got, remote)
	}
	var col Collector
	_, span := StartSpan(ctx, &col, "server_round")
	if span.TraceID() != remote.TraceID {
		t.Errorf("span joined trace %q, want remote trace %q", span.TraceID(), remote.TraceID)
	}
	starts := col.ByType(EventSpanStart)
	if len(starts) != 1 || starts[0].ParentID != remote.SpanID {
		t.Errorf("span_start = %+v; want parent %q", starts, remote.SpanID)
	}
}

func TestStartSpanNilTracerNoop(t *testing.T) {
	ctx, span := StartSpan(context.Background(), nil, "run")
	if span != nil {
		t.Fatalf("StartSpan without tracer returned %+v, want nil", span)
	}
	// The nil span accepts every method.
	span.SetAttr("k", "v")
	span.End()
	if span.TraceID() != "" || span.Name() != "" || span.Context().Valid() {
		t.Error("nil span must report zero values")
	}
	if SpanFromContext(ctx) != nil {
		t.Error("no span should be in the context")
	}
	if ActiveSpanContext(context.Background()).Valid() {
		t.Error("empty context must have no active span context")
	}
}

func TestStartSpanFreshIDs(t *testing.T) {
	var col Collector
	_, a := StartSpan(context.Background(), &col, "a")
	_, b := StartSpan(context.Background(), &col, "b")
	if a.TraceID() == b.TraceID() {
		t.Error("independent roots share a trace ID")
	}
	if !a.Context().Valid() || !b.Context().Valid() {
		t.Errorf("generated contexts invalid: %+v %+v", a.Context(), b.Context())
	}
}

package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestCollector(t *testing.T) {
	var c Collector
	c.Emit(RunStart("crowdsky", 12, 1))
	c.Emit(P1Prune(3, 5, 2))
	c.Emit(P2Reduce(3, 2, 1))
	c.Emit(RunEnd(12, 6, 4))

	events := c.Events()
	if len(events) != 4 {
		t.Fatalf("collected %d events, want 4", len(events))
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if c.Count(EventP1Prune) != 1 || c.Count(EventRoundStart) != 0 {
		t.Errorf("counts wrong: p1=%d round_start=%d", c.Count(EventP1Prune), c.Count(EventRoundStart))
	}
	p1 := c.ByType(EventP1Prune)[0]
	if p1.Tuple != 3 || p1.Before != 5 || p1.After != 2 || p1.Removed != 3 {
		t.Errorf("p1 event fields wrong: %+v", p1)
	}
	if p1.A != -1 || p1.B != -1 {
		t.Errorf("unused pair fields should be -1: %+v", p1)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.Emit(RunStart("parallel-sl", 12, 1))
	j.Emit(RoundStart(1, 4))
	j.Emit(RoundEnd(1, 4, 1500*time.Microsecond))
	j.Emit(VoteEscalation(2, 7, 7, 5))
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("read %d events, want 4", len(events))
	}
	if events[0].Type != EventRunStart || events[0].Algo != "parallel-sl" || events[0].N != 12 {
		t.Errorf("run_start wrong: %+v", events[0])
	}
	if events[1].Seq != 2 || events[2].Seq != 3 {
		t.Errorf("sequence numbers wrong: %d, %d", events[1].Seq, events[2].Seq)
	}
	if events[2].DurationMS != 1.5 {
		t.Errorf("duration = %v ms, want 1.5", events[2].DurationMS)
	}
	if ve := events[3]; ve.A != 2 || ve.B != 7 || ve.Workers != 7 || ve.Base != 5 {
		t.Errorf("vote_escalation wrong: %+v", ve)
	}
	if events[0].Time.IsZero() {
		t.Error("emitted event not timestamped")
	}
}

func TestReadEventsToleratesTornFinalLine(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.Emit(RoundStart(1, 2))
	j.Emit(RoundStart(2, 2))
	torn := sb.String()
	torn = torn[:len(torn)-10] // cut mid-way into the final line
	events, err := ReadEvents(strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Errorf("read %d events from torn stream, want 1", len(events))
	}
	// Malformed content before the end is an error, not silently dropped.
	if _, err := ReadEvents(strings.NewReader("garbage\n" + sb.String())); err == nil {
		t.Error("mid-stream garbage not rejected")
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	var a, b Collector
	if Multi(&a, nil) != Tracer(&a) {
		t.Error("Multi with one live member should return the member")
	}
	m := Multi(&a, &b)
	m.Emit(RoundStart(1, 1))
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("fan-out failed: %d, %d", len(a.Events()), len(b.Events()))
	}
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// JSONL is a Tracer that writes one JSON object per line to an underlying
// stream, using the same framing conventions as the answer journal
// (package journal): monotonically increasing sequence numbers, UTC
// timestamps, unbuffered writes so a crash loses at most the in-flight
// event, and a torn final line tolerated on read.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	seq int   // skylint:guardedby mu
	err error // skylint:guardedby mu
}

// NewJSONL wraps w as a JSONL tracer.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Emit implements Tracer. Events are stamped with the next sequence
// number and the current UTC time (unless the emitter already set one).
// Write errors are sticky and surfaced via Err; tracing must never abort
// an algorithm run that is spending real money on a crowd.
func (j *JSONL) Emit(e Event) { // skylint:ignore recvcopy Emit's by-value signature is pinned by the Tracer interface
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.seq++
	e.Seq = j.seq
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	//skylint:alloc-ok encoding/json takes any; one marshal per emitted event is the tracer's job
	data, err := json.Marshal(e)
	if err != nil {
		j.err = fmt.Errorf("telemetry: encoding event: %w", err)
		return
	}
	//skylint:alloc-ok appends into Marshal's fresh buffer; at worst one regrow per event
	data = append(data, '\n')
	if _, err := j.w.Write(data); err != nil {
		j.err = fmt.Errorf("telemetry: writing event: %w", err)
	}
}

// Err returns the first write or encoding error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadEvents parses a JSONL trace stream. A truncated trailing line (a
// crash mid-write) is tolerated and ignored; malformed content anywhere
// else is an error.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var lines []string
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	var out []Event
	for i, text := range lines {
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			if i == len(lines)-1 {
				break // torn final line after a crash
			}
			return nil, fmt.Errorf("telemetry: line %d: %w", i+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}

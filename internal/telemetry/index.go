package telemetry

// IndexMetrics is a Tracer that folds index_build trace events into
// registry metrics, so the one-time machine-part cost of each run (index
// build time, bitmap footprint) is visible on /metrics next to the crowd
// counters. Other event types pass through untouched, which makes it
// natural to compose with a Collector or log sink via Multi.
type IndexMetrics struct {
	builds       *Counter
	buildSeconds *Histogram
	bitmapBytes  *Gauge
}

// Index metric names, exported so dashboards and tests can reference them
// without string duplication.
const (
	MetricIndexBuilds       = "crowdsky_index_builds_total"
	MetricIndexBuildSeconds = "crowdsky_index_build_seconds"
	MetricIndexBitmapBytes  = "crowdsky_index_bitmap_bytes"
)

// InstrumentIndex registers the dominance-index metrics on reg and
// returns the Tracer that feeds them. Register at most one per registry
// (the metric names are fixed; a second registration panics on the
// duplicate).
func InstrumentIndex(reg *Registry) *IndexMetrics {
	return &IndexMetrics{
		builds:       reg.NewCounter(MetricIndexBuilds, "Dominance index builds."),
		buildSeconds: reg.NewHistogram(MetricIndexBuildSeconds, "Wall-clock time of one dominance index build."),
		bitmapBytes:  reg.NewGauge(MetricIndexBitmapBytes, "Bitmap memory of the most recent dominance index."),
	}
}

// Emit implements Tracer.
func (m *IndexMetrics) Emit(e Event) { // skylint:ignore recvcopy Emit's by-value signature is pinned by the Tracer interface
	if e.Type != EventIndexBuild {
		return
	}
	m.builds.Inc()
	m.buildSeconds.Observe(e.DurationMS / 1e3)
	m.bitmapBytes.Set(e.Bytes)
}

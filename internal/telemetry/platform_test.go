package telemetry

import (
	"strings"
	"testing"

	"crowdsky/internal/crowd"
)

// fakePlatform answers First to everything and keeps real accounting.
type fakePlatform struct {
	stats crowd.Stats
}

func (f *fakePlatform) Ask(reqs []crowd.Request) []crowd.Answer {
	if len(reqs) == 0 {
		return nil
	}
	f.stats.Record(reqs)
	out := make([]crowd.Answer, len(reqs))
	for i, r := range reqs {
		out[i] = crowd.Answer{Q: r.Q, Pref: crowd.First}
	}
	return out
}

func (f *fakePlatform) Stats() *crowd.Stats { return &f.stats }

func TestInstrumentedPlatform(t *testing.T) {
	reg := NewRegistry()
	inner := &fakePlatform{}
	pf := InstrumentPlatform(inner, reg)

	if pf.Ask(nil) != nil {
		t.Error("empty Ask should return nil")
	}
	reqs := []crowd.Request{
		{Q: crowd.Question{A: 0, B: 1}, Workers: 5},
		{Q: crowd.Question{A: 2, B: 3}}, // Workers 0 counts as 1
	}
	answers := pf.Ask(reqs)
	if len(answers) != 2 || answers[0].Pref != crowd.First {
		t.Fatalf("answers not passed through: %+v", answers)
	}
	pf.Ask(reqs[:1])

	if pf.rounds.Value() != 2 || pf.questions.Value() != 3 {
		t.Errorf("rounds/questions = %d/%d, want 2/3", pf.rounds.Value(), pf.questions.Value())
	}
	if pf.workerAnswers.Value() != 11 { // 5+1 then 5
		t.Errorf("worker answers = %d, want 11", pf.workerAnswers.Value())
	}
	if pf.roundLatency.Count() != 2 {
		t.Errorf("latency observations = %d, want 2", pf.roundLatency.Count())
	}
	// Empty Ask must not touch the metrics (it consumes no round).
	pf.Ask(nil)
	if pf.rounds.Value() != 2 {
		t.Error("empty Ask counted a round")
	}
	// The paper-accounting path is the wrapped platform's, untouched.
	if pf.Stats() != &inner.stats || pf.Stats().Rounds() != 2 {
		t.Error("Stats not delegated to the inner platform")
	}
	if pf.Unwrap() != crowd.Platform(inner) {
		t.Error("Unwrap lost the inner platform")
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		MetricCrowdQuestions + " 3",
		MetricCrowdRounds + " 2",
		MetricCrowdWorkerUnits + " 11",
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Errorf("exposition missing %q", line)
		}
	}
}

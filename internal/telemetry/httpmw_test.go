package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "test")

	ok := m.WrapFunc("/api/work", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hi")) // no explicit WriteHeader: code defaults to 200
	})
	notFound := m.WrapFunc("/api/rounds/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok.ServeHTTP(rec, httptest.NewRequest("GET", "/api/work?worker=w1", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	notFound.ServeHTTP(rec, httptest.NewRequest("GET", "/api/rounds/99", nil))
	if rec.Code != 404 {
		t.Fatalf("status = %d", rec.Code)
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`test_http_requests_total{route="/api/work",method="GET",code="200"} 3`,
		`test_http_requests_total{route="/api/rounds/{id}",method="GET",code="404"} 1`,
		`test_http_request_seconds_count{route="/api/work"} 3`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, sb.String())
		}
	}
}

package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "test")

	ok := m.WrapFunc("/api/work", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hi")) // no explicit WriteHeader: code defaults to 200
	})
	notFound := m.WrapFunc("/api/rounds/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok.ServeHTTP(rec, httptest.NewRequest("GET", "/api/work?worker=w1", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	notFound.ServeHTTP(rec, httptest.NewRequest("GET", "/api/rounds/99", nil))
	if rec.Code != 404 {
		t.Fatalf("status = %d", rec.Code)
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`test_http_requests_total{route="/api/work",method="GET",code="200"} 3`,
		`test_http_requests_total{route="/api/rounds/{id}",method="GET",code="404"} 1`,
		`test_http_request_seconds_count{route="/api/work"} 3`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, sb.String())
		}
	}
}

// TestHTTPTraceparentExtraction covers the tracing side of the
// middleware: an incoming traceparent header must surface in the request
// context, server spans (when a tracer is set) must join the caller's
// trace, the route label must stay the static pattern, and the latency
// histogram must carry the trace ID as an exemplar.
func TestHTTPTraceparentExtraction(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "test")
	var col Collector
	m.SetTracer(&col)

	caller := SpanContext{TraceID: "0af7651916cd43dd8448eb211c80319c", SpanID: "b7ad6b7169203331"}
	var seen SpanContext
	h := m.WrapFunc("/api/rounds/{id}", func(w http.ResponseWriter, r *http.Request) {
		seen = ActiveSpanContext(r.Context())
		w.WriteHeader(http.StatusCreated)
	})

	req := httptest.NewRequest("POST", "/api/rounds/7", nil)
	req.Header.Set(TraceParentHeader, caller.TraceParent())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if seen.TraceID != caller.TraceID {
		t.Errorf("handler saw trace %q, want caller's %q", seen.TraceID, caller.TraceID)
	}
	starts := col.ByType(EventSpanStart)
	if len(starts) != 1 {
		t.Fatalf("got %d server spans, want 1", len(starts))
	}
	if starts[0].Name != "http /api/rounds/{id}" {
		t.Errorf("server span name %q, want the route pattern", starts[0].Name)
	}
	if starts[0].TraceID != caller.TraceID || starts[0].ParentID != caller.SpanID {
		t.Errorf("server span %+v not parented under caller %+v", starts[0], caller)
	}
	ends := col.ByType(EventSpanEnd)
	if len(ends) != 1 || ends[0].Attrs["code"] != "201" || ends[0].Attrs["method"] != "POST" {
		t.Errorf("server span end = %+v; want code=201 method=POST attrs", ends)
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# {trace_id="`+caller.TraceID+`"}`) {
		t.Errorf("exposition missing trace exemplar:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `test_http_request_seconds_count{route="/api/rounds/{id}"} 1`) {
		t.Errorf("route pattern label lost:\n%s", sb.String())
	}
}

// TestHTTPTraceparentWithoutTracer: even with no server tracer, the
// caller's trace ID still reaches the handler context and the exemplar.
func TestHTTPTraceparentWithoutTracer(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "test")
	caller := SpanContext{TraceID: strings.Repeat("12", 16), SpanID: strings.Repeat("34", 8)}

	var seen SpanContext
	h := m.WrapFunc("/api/work", func(w http.ResponseWriter, r *http.Request) {
		seen = ActiveSpanContext(r.Context())
	})
	req := httptest.NewRequest("GET", "/api/work", nil)
	req.Header.Set(TraceParentHeader, caller.TraceParent())
	h.ServeHTTP(httptest.NewRecorder(), req)

	if seen != caller {
		t.Errorf("handler saw %+v, want caller %+v", seen, caller)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# {trace_id="`+caller.TraceID+`"}`) {
		t.Errorf("exemplar should use the propagated trace ID:\n%s", sb.String())
	}
}

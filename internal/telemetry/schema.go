package telemetry

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// This file is the trace-event schema registry: the single authoritative
// statement of which event types exist and which JSON fields each one
// carries. Consumers of `crowdsky -trace` output (dashboards, the
// EXPERIMENTS.md notebooks, ad-hoc jq) parse against these names, so an
// emitter drifting from the registry is a wire-format break even though
// everything still compiles. Two mechanisms hold the line:
//
//   - statically, the skylint traceschema analyzer proves every
//     constructor in this package and every telemetry.Event literal in the
//     tree populates exactly the registered fields of its event type;
//   - at runtime, ValidateEvent lets tests and trace tooling reject events
//     that carry an unknown type or stray fields.

// eventSchemas maps every trace event type to the JSON field names its
// emitters must populate. Bookkeeping fields (seq, time, type) and the
// -1-defaulted identity fields (tuple, a, b) are implicit and never listed.
//
// skylint:eventschema
var eventSchemas = map[EventType][]string{
	EventRunStart:        {"algo", "n", "crowd_dims"},
	EventRunEnd:          {"questions", "rounds", "skyline"},
	EventRoundStart:      {"round", "questions"},
	EventRoundEnd:        {"round", "questions", "duration_ms"},
	EventP1Prune:         {"tuple", "before", "after", "removed"},
	EventP2Reduce:        {"tuple", "before", "after", "removed"},
	EventP3Resolve:       {"tuple", "a", "removed"},
	EventVoteEscalation:  {"a", "b", "workers", "base"},
	EventBudgetTruncated: {"questions", "budget"},
	EventIndexBuild:      {"n", "pairs", "bytes", "duration_ms"},
	EventSpanStart:       {"trace_id", "span_id", "parent_id", "name"},
	EventSpanEnd:         {"trace_id", "span_id", "name", "duration_ms", "attrs"},
}

// implicitFields are populated by the event plumbing (newEvent, tracers)
// rather than per-type constructors, and may appear on any event.
var implicitFields = map[string]bool{
	"seq": true, "time": true, "type": true,
	"tuple": true, "a": true, "b": true,
}

// SchemaOf returns the registered JSON field names for event type t, and
// whether t is registered at all.
func SchemaOf(t EventType) ([]string, bool) {
	fields, ok := eventSchemas[t]
	return fields, ok
}

// EventTypes returns every registered event type, sorted, for consumers
// that enumerate the trace vocabulary (docs, -trace tooling).
func EventTypes() []EventType {
	out := make([]EventType, 0, len(eventSchemas))
	for t := range eventSchemas {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ValidateEvent checks e against the registry: its type must be
// registered, and every non-zero field must be either implicit or listed
// in the type's schema. (The converse — required fields being non-zero —
// is not checked here, because zero is a legitimate value for counters
// like `removed`; the static traceschema analyzer proves the constructors
// assign every required field.)
func ValidateEvent(e Event) error {
	schema, ok := eventSchemas[e.Type]
	if !ok {
		return fmt.Errorf("telemetry: event type %q is not in the schema registry", e.Type)
	}
	allowed := make(map[string]bool, len(schema))
	for _, f := range schema {
		allowed[f] = true
	}
	v := reflect.ValueOf(e)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		name := jsonName(t.Field(i))
		if name == "" || implicitFields[name] || allowed[name] {
			continue
		}
		if !v.Field(i).IsZero() {
			return fmt.Errorf("telemetry: %s event carries field %q, which its schema does not list", e.Type, name)
		}
	}
	return nil
}

// jsonName extracts the wire name from a struct field's json tag.
func jsonName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if tag == "" || tag == "-" {
		return ""
	}
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	return tag
}

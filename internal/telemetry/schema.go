package telemetry

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// This file is the trace-event schema registry: the single authoritative
// statement of which event types exist and which JSON fields each one
// carries. Consumers of `crowdsky -trace` output (dashboards, the
// EXPERIMENTS.md notebooks, ad-hoc jq) parse against these names, so an
// emitter drifting from the registry is a wire-format break even though
// everything still compiles. Two mechanisms hold the line:
//
//   - statically, the skylint traceschema analyzer proves every
//     constructor in this package and every telemetry.Event literal in the
//     tree populates exactly the registered fields of its event type;
//   - at runtime, ValidateEvent lets tests and trace tooling reject events
//     that carry an unknown type or stray fields.

// eventSchemas maps every trace event type to the JSON field names its
// emitters must populate. Bookkeeping fields (seq, time, type) and the
// -1-defaulted identity fields (tuple, a, b) are implicit and never listed.
//
// skylint:eventschema
var eventSchemas = map[EventType][]string{
	EventRunStart:        {"algo", "n", "crowd_dims"},
	EventRunEnd:          {"questions", "rounds", "skyline"},
	EventRoundStart:      {"round", "questions"},
	EventRoundEnd:        {"round", "questions", "duration_ms"},
	EventP1Prune:         {"tuple", "before", "after", "removed"},
	EventP2Reduce:        {"tuple", "before", "after", "removed"},
	EventP3Resolve:       {"tuple", "a", "removed"},
	EventVoteEscalation:  {"a", "b", "workers", "base"},
	EventBudgetTruncated: {"questions", "budget"},
	EventIndexBuild:      {"n", "pairs", "bytes", "duration_ms"},
	EventSpanStart:       {"trace_id", "span_id", "parent_id", "name"},
	EventSpanEnd:         {"trace_id", "span_id", "name", "duration_ms", "attrs"},
}

// implicitFields are populated by the event plumbing (newEvent, tracers)
// rather than per-type constructors, and may appear on any event.
var implicitFields = map[string]bool{
	"seq": true, "time": true, "type": true,
	"tuple": true, "a": true, "b": true,
}

// SchemaOf returns the registered JSON field names for event type t, and
// whether t is registered at all.
func SchemaOf(t EventType) ([]string, bool) {
	fields, ok := eventSchemas[t]
	return fields, ok
}

// EventTypes returns every registered event type, sorted, for consumers
// that enumerate the trace vocabulary (docs, -trace tooling).
func EventTypes() []EventType {
	out := make([]EventType, 0, len(eventSchemas))
	for t := range eventSchemas {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ValidateEvent checks e against the registry: its type must be
// registered, and every non-zero field must be either implicit or listed
// in the type's schema. (The converse — required fields being non-zero —
// is not checked here, because zero is a legitimate value for counters
// like `removed`; the static traceschema analyzer proves the constructors
// assign every required field.)
func ValidateEvent(e Event) error {
	schema, ok := eventSchemas[e.Type]
	if !ok {
		return fmt.Errorf("telemetry: event type %q is not in the schema registry", e.Type)
	}
	allowed := make(map[string]bool, len(schema))
	for _, f := range schema {
		allowed[f] = true
	}
	v := reflect.ValueOf(e)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		name := jsonName(t.Field(i))
		if name == "" || implicitFields[name] || allowed[name] {
			continue
		}
		if !v.Field(i).IsZero() {
			return fmt.Errorf("telemetry: %s event carries field %q, which its schema does not list", e.Type, name)
		}
	}
	return nil
}

// metricSchemas maps every metric family this repository exposes to its
// label names (empty slice = unlabelled). Like eventSchemas, this is the
// single authoritative statement of the /metrics vocabulary: dashboards
// and alerts key on these names and labels, so a registration site
// drifting from the registry is a monitoring break even though the code
// still compiles. The skylint traceschema analyzer proves every
// constant-named Registry.New* call in the tree registers a name listed
// here with exactly these labels; ValidateMetric gives tests and tooling
// the same check at runtime. Metrics whose names are computed (the
// prefix-parameterised HTTP middleware) are listed for documentation and
// runtime validation but are invisible to the static pass.
//
// skylint:metricschema
var metricSchemas = map[string][]string{
	// Dominance-index lifecycle (InstrumentIndex).
	MetricIndexBuilds:       {},
	MetricIndexBuildSeconds: {},
	MetricIndexBitmapBytes:  {},
	// Crowd platform accounting (InstrumentPlatform).
	MetricCrowdQuestions:    {},
	MetricCrowdRounds:       {},
	MetricCrowdWorkerUnits:  {},
	MetricCrowdRoundLatency: {},
	// HTTP middleware (prefix-parameterised; crowdserve's instances).
	"crowdserve_http_requests_total":  {"route", "method", "code"},
	"crowdserve_http_request_seconds": {"route"},
	// Marketplace server (crowdserve.NewServer).
	"crowdserve_rounds_total":                {},
	"crowdserve_questions_total":             {},
	"crowdserve_judgments_total":             {},
	"crowdserve_lease_requeues_total":        {},
	"crowdserve_response_write_errors_total": {},
	"crowdserve_idempotent_replays_total":    {},
	"crowdserve_lease_wait_seconds":          {},
	"crowdserve_judgment_latency_seconds":    {},
	"crowdserve_open_assignments":            {},
	// Marketplace client resilience (Client.InstrumentMetrics).
	"crowdserve_client_retries_total": {"cause"},
	// Fault injection (faultinject.Plan.InstrumentMetrics).
	"crowdserve_faults_injected_total": {"kind"},
	// Journal recovery (cmd/bench -chaos, cmd/crowdsky -resume).
	"journal_recovered_records_total": {},
}

// MetricSchemaOf returns the registered label names for metric family
// name, and whether the family is registered at all.
func MetricSchemaOf(name string) ([]string, bool) {
	labels, ok := metricSchemas[name]
	return labels, ok
}

// MetricNames returns every registered metric family, sorted, for
// consumers that enumerate the /metrics vocabulary (docs, dashboards).
func MetricNames() []string {
	out := make([]string, 0, len(metricSchemas))
	for name := range metricSchemas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ValidateMetric checks one metric family against the registry: the name
// must be registered and the label names must match the schema exactly
// (order included — label order is part of a family's wire identity).
func ValidateMetric(name string, labels ...string) error {
	want, ok := metricSchemas[name]
	if !ok {
		return fmt.Errorf("telemetry: metric %q is not in the schema registry", name)
	}
	if len(labels) != len(want) {
		return fmt.Errorf("telemetry: metric %q has labels %v, schema says %v", name, labels, want)
	}
	for i, l := range labels {
		if l != want[i] {
			return fmt.Errorf("telemetry: metric %q has labels %v, schema says %v", name, labels, want)
		}
	}
	return nil
}

// jsonName extracts the wire name from a struct field's json tag.
func jsonName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if tag == "" || tag == "-" {
		return ""
	}
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	return tag
}

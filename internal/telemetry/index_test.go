package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestIndexBuildEvent(t *testing.T) {
	e := IndexBuild(500, 1234, 4096, 3*time.Millisecond)
	if e.Type != EventIndexBuild || e.N != 500 || e.Pairs != 1234 || e.Bytes != 4096 {
		t.Fatalf("IndexBuild event wrong: %+v", e)
	}
	if e.DurationMS != 3 {
		t.Fatalf("DurationMS = %v, want 3", e.DurationMS)
	}
	if e.Tuple != -1 || e.A != -1 || e.B != -1 {
		t.Fatalf("unused tuple fields should be -1: %+v", e)
	}
}

func TestInstrumentIndex(t *testing.T) {
	reg := NewRegistry()
	m := InstrumentIndex(reg)

	m.Emit(RunStart("CrowdSky", 10, 2)) // unrelated events are ignored
	m.Emit(IndexBuild(100, 40, 2048, 2*time.Millisecond))
	m.Emit(IndexBuild(200, 90, 8192, 5*time.Millisecond))

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		MetricIndexBuilds + " 2",
		MetricIndexBitmapBytes + " 8192",
		MetricIndexBuildSeconds + "_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestInstrumentIndexComposesWithMulti(t *testing.T) {
	reg := NewRegistry()
	var c Collector
	tr := Multi(InstrumentIndex(reg), &c)
	Emit(tr, IndexBuild(10, 3, 512, time.Millisecond))
	if c.Count(EventIndexBuild) != 1 {
		t.Fatalf("collector missed the index_build event")
	}
}

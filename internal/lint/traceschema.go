package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"crowdsky/internal/lint/analysis"
)

// TraceSchema keeps trace emitters honest against the event-schema
// registry. The telemetry package declares, under a
//
//	// skylint:eventschema
//
// comment, a map from event-type constants to the JSON field names each
// event carries. Consumers of the trace output parse against those names,
// so an emitter populating a field the schema does not list is a silent
// wire-format break — everything compiles, the dashboard just reads zeros.
//
// In the declaring package the analyzer proves three properties:
//
//  1. every constant of the schema's key type has a registry entry
//     (an event type cannot be added without declaring its fields);
//  2. every field name in the registry exists as a json tag on the
//     package's Event struct (the schema cannot promise fields the wire
//     format does not have);
//  3. every constructor — a function returning Event that builds it from
//     a single event-type constant — assigns exactly the registered
//     fields: each schema field is set, and nothing outside
//     schema ∪ implicit is.
//
// Everywhere else, Event composite literals with a constant Type are
// checked against the registry at Finish time (the declaring package may
// be analyzed after its users): unknown event types and stray fields are
// reported. Literals with a non-constant Type (generic plumbing like
// newEvent) are out of scope.
//
// The implicit fields — seq, time, type, tuple, a, b — are populated by
// the event plumbing and allowed on any event.
//
// The analyzer covers the metrics vocabulary the same way: a
//
//	// skylint:metricschema
//
// annotated map in the declaring package lists every metric family name
// and its label names, and every constant-named Registry.New{Counter,
// CounterVec,Gauge,GaugeFunc,Histogram,HistogramVec} call anywhere in the
// tree is checked at Finish time: the name must be registered and the
// constant label arguments must match the schema exactly, order included.
// Registration sites whose name or labels are computed (the
// prefix-parameterised HTTP middleware) are out of scope for the static
// pass; telemetry.ValidateMetric covers them at runtime.
var TraceSchema = &analysis.Analyzer{
	Name: "traceschema",
	Doc: "telemetry events and metrics must match the skylint:eventschema / " +
		"skylint:metricschema registries: constructors, Event literals, and " +
		"Registry.New* calls may only use registered names, fields, and labels",
	Run:    runTraceSchema,
	Finish: finishTraceSchema,
}

// traceImplicitFields mirrors telemetry's implicitFields: bookkeeping set
// by the plumbing, legal on every event.
var traceImplicitFields = map[string]bool{
	"seq": true, "time": true, "type": true,
	"tuple": true, "a": true, "b": true,
}

// traceSchemaFacts is the program-wide registry hand-off: declaring
// packages deposit their schemas, user packages deposit their Event
// literals, Finish joins the two.
type traceSchemaFacts struct {
	// registries maps the declaring package's import path to its schema.
	registries map[string]*schemaRegistry
	literals   []eventLiteral
	// metricRegistries maps the declaring package's import path to its
	// metric schema; metricSites holds every constant-named Registry.New*
	// call for the Finish-phase join.
	metricRegistries map[string]*metricRegistry
	metricSites      []metricSite
}

type schemaRegistry struct {
	schemas map[string]map[string]bool // event type value -> field set
}

type metricRegistry struct {
	labels map[string][]string // metric family name -> label names, in order
}

type metricSite struct {
	pass   *analysis.Pass
	pos    token.Pos
	regPkg string // import path of the Registry type's package
	name   string // constant metric family name
	labels []string
}

type eventLiteral struct {
	pass      *analysis.Pass
	pos       token.Pos
	eventPkg  string // import path of the Event type's package
	eventType string // constant Type value
	fields    map[string]bool
}

func traceSchemaState(prog *analysis.Program) *traceSchemaFacts {
	return prog.Fact("traceschema.registry", func() any {
		return &traceSchemaFacts{
			registries:       make(map[string]*schemaRegistry),
			metricRegistries: make(map[string]*metricRegistry),
		}
	}).(*traceSchemaFacts)
}

func runTraceSchema(pass *analysis.Pass) error {
	facts := traceSchemaState(pass.Program())

	schemaVar := findMarkedSchemaVar(pass, "skylint:eventschema")
	if schemaVar != nil {
		checkDeclaringPackage(pass, facts, schemaVar)
	}
	if metricVar := findMarkedSchemaVar(pass, "skylint:metricschema"); metricVar != nil {
		registerMetricSchema(pass, facts, metricVar)
	}
	collectEventLiterals(pass, facts)
	collectMetricSites(pass, facts)
	return nil
}

// findMarkedSchemaVar locates the package's map literal annotated with the
// given skylint marker, or nil when this package declares no such registry.
func findMarkedSchemaVar(pass *analysis.Pass, marker string) *ast.CompositeLit {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR || !hasSchemaMarker(gd.Doc, marker) {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					if cl, ok := v.(*ast.CompositeLit); ok {
						if _, isMap := pass.TypeOf(cl).Underlying().(*types.Map); isMap {
							return cl
						}
					}
				}
			}
		}
	}
	return nil
}

func hasSchemaMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// checkDeclaringPackage parses the registry literal, registers it in the
// program facts, and proves the three in-package properties.
func checkDeclaringPackage(pass *analysis.Pass, facts *traceSchemaFacts, lit *ast.CompositeLit) {
	mapType, ok := pass.TypeOf(lit).Underlying().(*types.Map)
	if !ok {
		return
	}
	keyType := analysis.NamedOf(mapType.Key())

	schemas := make(map[string]map[string]bool)
	schemaPos := make(map[string]token.Pos)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyVal := constStringValue(pass, kv.Key)
		if keyVal == "" {
			pass.Reportf(kv.Key.Pos(),
				"event schema keys must be named constants of the event type, not expressions")
			continue
		}
		fields := make(map[string]bool)
		if vals, ok := kv.Value.(*ast.CompositeLit); ok {
			for _, fe := range vals.Elts {
				if fv := constStringValue(pass, fe); fv != "" {
					fields[fv] = true
				}
			}
		}
		schemas[keyVal] = fields
		schemaPos[keyVal] = kv.Key.Pos()
	}
	facts.registries[pass.PkgPath] = &schemaRegistry{schemas: schemas}

	// Property 1: every constant of the key type is registered.
	if keyType != nil {
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || analysis.NamedOf(c.Type()) != keyType {
				continue
			}
			val := constant.StringVal(c.Val())
			if _, registered := schemas[val]; !registered {
				pass.Reportf(c.Pos(),
					"event type constant %s (%q) has no skylint:eventschema entry; register its fields before emitting it",
					name, val)
			}
		}
	}

	// Property 2: every schema field exists as a json tag on Event.
	eventFields := eventJSONFields(pass)
	if eventFields != nil {
		typs := make([]string, 0, len(schemas))
		for t := range schemas {
			typs = append(typs, t)
		}
		sort.Strings(typs)
		for _, typ := range typs {
			for _, f := range sortedKeys(schemas[typ]) {
				if !eventFields[f] {
					pass.Reportf(schemaPos[typ],
						"schema for %q lists field %q, but the Event struct has no field with that json tag",
						typ, f)
				}
			}
		}
	}

	// Property 3: constructors assign exactly their event type's fields.
	checkConstructors(pass, schemas, eventFields)
}

// eventJSONFields maps the package's Event struct to the set of json wire
// names, or nil when the package has no Event struct.
func eventJSONFields(pass *analysis.Pass) map[string]bool {
	obj := pass.Pkg.Scope().Lookup("Event")
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	out := make(map[string]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		if name := jsonTagName(st.Tag(i)); name != "" {
			out[name] = true
		}
	}
	return out
}

// fieldJSONName resolves a field of the Event struct to its wire name;
// untagged fields fall back to the Go name.
func fieldJSONName(eventStruct *types.Struct, fieldName string) string {
	for i := 0; i < eventStruct.NumFields(); i++ {
		if eventStruct.Field(i).Name() == fieldName {
			if name := jsonTagName(eventStruct.Tag(i)); name != "" {
				return name
			}
			return fieldName
		}
	}
	return fieldName
}

func jsonTagName(tag string) string {
	jt := reflect.StructTag(tag).Get("json")
	if jt == "" || jt == "-" {
		return ""
	}
	if i := strings.IndexByte(jt, ','); i >= 0 {
		jt = jt[:i]
	}
	return jt
}

// checkConstructors finds every function in the declaring package that
// returns Event and constructs it from a single constant event type, and
// compares its assigned field set against the registry.
func checkConstructors(pass *analysis.Pass, schemas map[string]map[string]bool, eventFields map[string]bool) {
	eventObj := pass.Pkg.Scope().Lookup("Event")
	if eventObj == nil {
		return
	}
	eventStruct, ok := eventObj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsEvent(pass, fd, eventObj) {
				continue
			}
			typ, assigned := constructorProfile(pass, fd, eventObj, eventStruct)
			if typ == "" {
				continue // non-constant or no event type: generic plumbing
			}
			schema, ok := schemas[typ]
			if !ok {
				continue // property 1 already reported the missing entry
			}
			for _, field := range sortedKeys(schema) {
				if !assigned[field] && !traceImplicitFields[field] {
					pass.Reportf(fd.Name.Pos(),
						"constructor %s never assigns field %q required by the %q schema",
						fd.Name.Name, field, typ)
				}
			}
			for _, field := range sortedKeys(assigned) {
				if !schema[field] && !traceImplicitFields[field] {
					pass.Reportf(fd.Name.Pos(),
						"constructor %s assigns field %q, which the %q schema does not list; register it or drop the assignment",
						fd.Name.Name, field, typ)
				}
			}
		}
	}
}

func returnsEvent(pass *analysis.Pass, fd *ast.FuncDecl, eventObj types.Object) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return false
	}
	named := analysis.NamedOf(pass.TypeOf(fd.Type.Results.List[0].Type))
	return named != nil && named.Obj() == eventObj
}

// constructorProfile extracts the constant event type a constructor
// builds and the set of json field names it assigns, from both composite
// literal elements (Event{Type: C, Round: r}) and subsequent statements
// (e.Round = r, including tuple assignments). A constructor whose type
// argument is not constant — newEvent(t) itself — yields "".
func constructorProfile(pass *analysis.Pass, fd *ast.FuncDecl, eventObj types.Object, eventStruct *types.Struct) (string, map[string]bool) {
	typ := ""
	assigned := make(map[string]bool)
	record := func(fieldName string) {
		if name := fieldJSONName(eventStruct, fieldName); name != "" {
			assigned[name] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			named := analysis.NamedOf(pass.TypeOf(n))
			if named == nil || named.Obj() != eventObj {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if key.Name == "Type" {
					typ = constStringValue(pass, kv.Value)
				} else {
					record(key.Name)
				}
			}
		case *ast.CallExpr:
			// A helper call with a single event-type constant argument
			// (the newEvent(EventX) idiom) fixes the constructor's type.
			if len(n.Args) >= 1 {
				if v := constStringValue(pass, n.Args[0]); v != "" && isEventTypeArg(pass, n.Args[0]) {
					typ = v
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				recvNamed := analysis.NamedOf(pass.TypeOf(sel.X))
				if recvNamed != nil && recvNamed.Obj() == eventObj {
					record(sel.Sel.Name)
				}
			}
		}
		return true
	})
	return typ, assigned
}

// isEventTypeArg reports whether e's type is a named string type (the
// event type), keeping plain string constants from being mistaken for an
// event type argument.
func isEventTypeArg(pass *analysis.Pass, e ast.Expr) bool {
	return analysis.NamedOf(pass.TypeOf(e)) != nil
}

// collectEventLiterals records every Event composite literal with a
// constant Type for the Finish-phase registry check. Functions that
// return an Event are skipped wholesale: those are constructors, whose
// literals are covered field-for-field by the in-package check.
func collectEventLiterals(pass *analysis.Pass, facts *traceSchemaFacts) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if named := resultNamed(pass, fd); named != nil && named.Obj().Name() == "Event" {
					continue
				}
			}
			collectLiteralsIn(pass, facts, decl)
		}
	}
}

// resultNamed returns the named type of fd's single result, or nil.
func resultNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return nil
	}
	return analysis.NamedOf(pass.TypeOf(fd.Type.Results.List[0].Type))
}

func collectLiteralsIn(pass *analysis.Pass, facts *traceSchemaFacts, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		named := analysis.NamedOf(pass.TypeOf(cl))
		if named == nil || named.Obj().Name() != "Event" || named.Obj().Pkg() == nil {
			return true
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		typ := ""
		fields := make(map[string]bool)
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return true // positional literal: out of scope
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if key.Name == "Type" {
				typ = constStringValue(pass, kv.Value)
			} else {
				fields[fieldJSONName(st, key.Name)] = true
			}
		}
		if typ != "" {
			facts.literals = append(facts.literals, eventLiteral{
				pass:      pass,
				pos:       cl.Pos(),
				eventPkg:  named.Obj().Pkg().Path(),
				eventType: typ,
				fields:    fields,
			})
		}
		return true
	})
}

// registerMetricSchema parses the skylint:metricschema map literal —
// metric family name to ordered label names — and deposits it in the
// program facts for the Finish-phase registration-site check.
func registerMetricSchema(pass *analysis.Pass, facts *traceSchemaFacts, lit *ast.CompositeLit) {
	labels := make(map[string][]string)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		name := constStringValue(pass, kv.Key)
		if name == "" {
			pass.Reportf(kv.Key.Pos(),
				"metric schema keys must be constant metric family names, not expressions")
			continue
		}
		var ls []string
		if vals, ok := kv.Value.(*ast.CompositeLit); ok {
			for _, fe := range vals.Elts {
				if lv := constStringValue(pass, fe); lv != "" {
					ls = append(ls, lv)
				}
			}
		}
		labels[name] = ls
	}
	facts.metricRegistries[pass.PkgPath] = &metricRegistry{labels: labels}
}

// metricLabelStart maps each Registry constructor method to the argument
// index where its variadic label names begin; -1 means unlabelled.
var metricLabelStart = map[string]int{
	"NewCounter":      -1,
	"NewGauge":        -1,
	"NewGaugeFunc":    -1,
	"NewHistogram":    -1,
	"NewCounterVec":   2, // (name, help, labels...)
	"NewHistogramVec": 3, // (name, help, buckets, labels...)
}

// collectMetricSites records every Registry.New* call with a constant
// metric name (and, for Vec variants, all-constant labels) for the
// Finish-phase registry check. Computed names or spread label slices are
// out of scope — runtime validation covers those.
func collectMetricSites(pass *analysis.Pass, facts *traceSchemaFacts) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			labelStart, ok := metricLabelStart[sel.Sel.Name]
			if !ok || len(call.Args) < 1 {
				return true
			}
			recv := analysis.NamedOf(pass.TypeOf(sel.X))
			if recv == nil || recv.Obj().Name() != "Registry" || recv.Obj().Pkg() == nil {
				return true
			}
			name := constStringValue(pass, call.Args[0])
			if name == "" {
				return true // computed name (prefix+"..."): runtime's job
			}
			var labels []string
			if labelStart >= 0 {
				if call.Ellipsis != token.NoPos {
					return true // labels spread from a slice: not statically known
				}
				for _, a := range call.Args[labelStart:] {
					lv := constStringValue(pass, a)
					if lv == "" {
						return true // computed label: runtime's job
					}
					labels = append(labels, lv)
				}
			}
			facts.metricSites = append(facts.metricSites, metricSite{
				pass:   pass,
				pos:    call.Pos(),
				regPkg: recv.Obj().Pkg().Path(),
				name:   name,
				labels: labels,
			})
			return true
		})
	}
}

// finishTraceSchema joins collected literals against the registries once
// every package has run, reporting through each literal's own pass so
// skylint:ignore works at the literal site.
func finishTraceSchema(prog *analysis.Program) error {
	facts := traceSchemaState(prog)
	for _, lit := range facts.literals {
		reg := facts.registries[lit.eventPkg]
		if reg == nil {
			continue // Event type from a package with no schema registry
		}
		schema, ok := reg.schemas[lit.eventType]
		if !ok {
			lit.pass.Reportf(lit.pos,
				"event literal uses type %q, which has no skylint:eventschema entry in %s",
				lit.eventType, lit.eventPkg)
			continue
		}
		for _, f := range sortedKeys(lit.fields) {
			if !schema[f] && !traceImplicitFields[f] {
				lit.pass.Reportf(lit.pos,
					"event literal of type %q sets field %q, which its schema does not list",
					lit.eventType, f)
			}
		}
	}
	for _, site := range facts.metricSites {
		reg := facts.metricRegistries[site.regPkg]
		if reg == nil {
			continue // Registry type from a package with no metric registry
		}
		want, ok := reg.labels[site.name]
		if !ok {
			site.pass.Reportf(site.pos,
				"metric %q has no skylint:metricschema entry in %s; register its name and labels before exposing it",
				site.name, site.regPkg)
			continue
		}
		if !equalStrings(site.labels, want) {
			site.pass.Reportf(site.pos,
				"metric %q is registered with labels %v, but its schema says %v (order included)",
				site.name, site.labels, want)
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// constStringValue evaluates e to its constant string value, or ""
// when e is not a string constant.
func constStringValue(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

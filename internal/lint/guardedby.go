// Shared machinery for the "skylint:guardedby <mutex>" field
// annotation. The enforcement itself lives in the lockset analyzer
// (lockset.go); lockorder reuses the annotation scan to seed its
// ordering graph, so the collection helpers live here on their own.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"crowdsky/internal/lint/analysis"
)

var guardedByRE = regexp.MustCompile(`skylint:guardedby\s+([A-Za-z_][A-Za-z0-9_]*)`)

// collectGuardAnnotations maps annotated field objects to their mutex
// field name, validating that the mutex field exists in the same struct.
// The report callback receives annotations naming a missing mutex field
// (lockset diagnoses them; lockorder, which shares the annotations,
// passes nil to avoid double-reporting).
func collectGuardAnnotations(pass *analysis.Pass, report func(pos token.Pos, mu string)) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				if !structHasField(st, mu) {
					if report != nil {
						report(field.Pos(), mu)
					}
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedByRE.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func structHasField(st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}

func funcDesc(fd *ast.FuncDecl) string {
	if fd.Name != nil {
		return fd.Name.Name
	}
	return "this function"
}

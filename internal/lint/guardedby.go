package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"crowdsky/internal/lint/analysis"
)

// GuardedBy enforces the "skylint:guardedby <mutex>" field annotation:
// a struct field carrying
//
//	// skylint:guardedby mu
//
// may only be read or written in functions that lock the named mutex
// (mu.Lock or mu.RLock, on any receiver path) before the access. The
// check is lexical within the enclosing function — the same approximation
// human reviewers apply — so it catches the realistic failure mode: a new
// method or handler that touches crowd.Stats accounting or telemetry
// collector state while forgetting the lock, instead of going through the
// Snapshot/accessor path.
//
// Functions whose name ends in "Locked" are exempt: by the standard Go
// convention that suffix declares "caller holds the lock", which is
// exactly the contract this analyzer cannot see lexically. The suffix is
// load-bearing — renaming reapExpiredLocked to reapExpired would make its
// unlocked field accesses diagnostics again.
var GuardedBy = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated `skylint:guardedby mu` must only be accessed " +
		"after locking the named mutex in the same function",
	Run: runGuardedBy,
}

var guardedByRE = regexp.MustCompile(`skylint:guardedby\s+([A-Za-z_][A-Za-z0-9_]*)`)

func runGuardedBy(pass *analysis.Pass) error {
	guarded := collectGuardAnnotations(pass, func(pos token.Pos, mu string) {
		pass.Reportf(pos, "skylint:guardedby names %q, but the struct has no such field", mu)
	})
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkGuardsInFunc(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuardAnnotations maps annotated field objects to their mutex
// field name, validating that the mutex field exists in the same struct.
// The report callback receives annotations naming a missing mutex field
// (guardedby diagnoses them; lockorder, which shares the annotations,
// passes nil to avoid double-reporting).
func collectGuardAnnotations(pass *analysis.Pass, report func(pos token.Pos, mu string)) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				if !structHasField(st, mu) {
					if report != nil {
						report(field.Pos(), mu)
					}
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedByRE.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func structHasField(st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}

// checkGuardsInFunc flags accesses to guarded fields not preceded (in
// source order, within fd) by a Lock or RLock call on the guarding mutex.
func checkGuardsInFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	type access struct {
		pos token.Pos
		obj types.Object
		mu  string
	}
	lockPos := make(map[string][]token.Pos)
	var accesses []access
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			// The mutex is the last selector component before .Lock():
			// s.mu.Lock(), c.inner.mu.RLock(), mu.Lock().
			switch x := sel.X.(type) {
			case *ast.SelectorExpr:
				lockPos[x.Sel.Name] = append(lockPos[x.Sel.Name], n.Pos())
			case *ast.Ident:
				lockPos[x.Name] = append(lockPos[x.Name], n.Pos())
			}
		case *ast.SelectorExpr:
			obj := pass.Info.Uses[n.Sel]
			if obj == nil {
				return true
			}
			if mu, ok := guarded[obj]; ok {
				accesses = append(accesses, access{pos: n.Sel.Pos(), obj: obj, mu: mu})
			}
		}
		return true
	})
	for _, a := range accesses {
		held := false
		for _, lp := range lockPos[a.mu] {
			if lp < a.pos {
				held = true
				break
			}
		}
		if !held {
			pass.Reportf(a.pos,
				"%s is guarded by %q (skylint:guardedby) but %s does not lock it before this access; use the accessor/Snapshot path or take the lock",
				a.obj.Name(), a.mu, funcDesc(fd))
		}
	}
}

func funcDesc(fd *ast.FuncDecl) string {
	if fd.Name != nil {
		return fd.Name.Name
	}
	return "this function"
}

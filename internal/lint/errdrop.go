package lint

import (
	"go/ast"
	"go/types"

	"crowdsky/internal/lint/analysis"
)

// ErrDrop forbids silently discarding errors in the marketplace
// (package crowdserve): HTTP handlers and the persistence paths hold
// judgments that cost real money to collect, so a swallowed encode/write
// error means losing paid crowd work without a trace. Flagged forms:
//
//   - a statement calling a function whose results include an error,
//     with all results discarded (including `defer f()`), and
//   - an assignment binding an error result to the blank identifier.
//
// Deliberate best-effort drops (draining an HTTP body, cleanup on an
// already-failing path) carry a `skylint:ignore errdrop <reason>` comment.
var ErrDrop = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "crowdserve handlers and persistence paths must not discard " +
		"errors (annotate deliberate drops with skylint:ignore errdrop)",
	Run: runErrDrop,
}

func runErrDrop(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath, pass.Pkg.Name(), "crowdserve") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call)
				}
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call)
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall flags a call statement whose results include an
// error, since a bare call statement discards every result.
func checkDiscardedCall(pass *analysis.Pass, call *ast.CallExpr) {
	if hasErrResult(pass, call) {
		pass.Reportf(call.Pos(),
			"call to %s discards its error result", analysis.ExprString(call.Fun))
	}
}

// checkBlankErrAssign flags `_ = <error expr>` and `x, _ := f()` where
// the blanked result has error type.
func checkBlankErrAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Single call with multiple results: a, _ := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(),
					"error result of %s assigned to the blank identifier", analysis.ExprString(call.Fun))
			}
		}
		return
	}
	// Position-wise assignments: _ = expr.
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		if t := pass.TypeOf(as.Rhs[i]); t != nil && isErrorType(t) {
			pass.Reportf(lhs.Pos(), "error value assigned to the blank identifier")
		}
	}
}

// hasErrResult reports whether the call's result signature includes an
// error.
func hasErrResult(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch t := pass.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
	case nil:
	default:
		return isErrorType(t)
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

package lint

import (
	"strings"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/callgraph"
)

// Purity reports hot compute kernels that reach I/O, locking or
// fmt/log — the classic "debug print left in the kernel" regression,
// plus the subtler ones where a helper three calls down picks up a
// mutex.
//
// Scope: only //skylint:hotpath (compute) roots. Serve-scope roots are
// request handlers, which legitimately lock and write responses; for
// them only the allocation and copy disciplines apply.
//
// Mechanically this is the summary framework's showcase: an effect
// bitmask per function, computed bottom-up over the call graph's SCC
// condensation (mutual recursion iterates to a fixpoint), then findings
// anchored at the deepest direct impure call of each reachable function
// so the message names both the offending call and the kernel it
// poisons.
var Purity = &analysis.Analyzer{
	Name: "purity",
	Doc: "reports calls into I/O, locking or fmt/log reachable from " +
		"//skylint:hotpath compute kernels, via bottom-up effect summaries",
	Run:    purityRun,
	Finish: purityFinish,
}

func purityRun(pass *analysis.Pass) error {
	callgraph.Shared(pass)
	hotPasses(pass, "purity.passes")
	return nil
}

// Effect bits of the per-function summary.
const (
	effIO uint = 1 << iota
	effLock
	effFmtLog
)

func effectString(eff uint) string {
	var parts []string
	if eff&effIO != 0 {
		parts = append(parts, "I/O")
	}
	if eff&effLock != 0 {
		parts = append(parts, "locking")
	}
	if eff&effFmtLog != 0 {
		parts = append(parts, "fmt/log")
	}
	return strings.Join(parts, "+")
}

// ioPkgs are the packages whose mere mention on a compute path is an
// I/O effect. Interface calls count too: io.Writer.Write is I/O no
// matter what hides behind it.
var ioPkgs = map[string]bool{
	"os": true, "io": true, "io/fs": true, "bufio": true,
	"net": true, "net/http": true, "syscall": true,
}

// classifyExternal maps one out-of-program call to its effect bits.
func classifyExternal(ext *callgraph.External) uint {
	switch {
	case ext.PkgPath == "sync":
		return effLock
	case ext.PkgPath == "fmt" || ext.PkgPath == "log" || ext.PkgPath == "log/slog":
		return effFmtLog
	case ioPkgs[ext.PkgPath]:
		return effIO
	}
	return 0
}

func purityFinish(prog *analysis.Program) error {
	b, ok := prog.Fact("callgraph.builder", func() any { return nil }).(*callgraph.Builder)
	if !ok || b == nil {
		return nil
	}
	passes := prog.Fact("purity.passes", func() any {
		return make(map[string]*analysis.Pass)
	}).(map[string]*analysis.Pass)
	g := b.Graph()

	// Bottom-up effect summaries: a function's effect is its own direct
	// external effects plus the union of its callees'. The union is
	// monotone, so cyclic components converge.
	summaries := g.BottomUp(func(n *callgraph.Node, get func(*callgraph.Node) any) any {
		eff := uint(0)
		for _, ext := range n.External {
			eff |= classifyExternal(ext)
		}
		for _, e := range n.Out {
			if v, ok := get(e.Callee).(uint); ok {
				eff |= v
			}
		}
		return eff
	})

	reach := g.Reachable(func(s callgraph.HotScope) bool {
		return s == callgraph.HotCompute
	})
	for _, n := range g.Nodes {
		if !reach.Has(n) {
			continue
		}
		if eff, _ := summaries[n].(uint); eff == 0 {
			continue // summary says the whole subtree is pure: skip it
		}
		pass := passes[n.PkgPath]
		if pass == nil {
			continue
		}
		// Report this function's *direct* impure calls; deeper ones are
		// reported at the callee they occur in, with their own chain.
		for _, ext := range n.External {
			eff := classifyExternal(ext)
			if eff == 0 {
				continue
			}
			pass.Reportf(ext.Site, "call to %s (%s) on hot compute path (%s)",
				ext, effectString(eff), reach.ChainString(n))
		}
	}
	return nil
}

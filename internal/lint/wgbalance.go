package lint

import (
	"go/ast"
	"go/types"

	"crowdsky/internal/bitset"
	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/cfg"
)

// WgBalance checks sync.WaitGroup accounting on the shapes this
// repository actually uses (ParallelDSet/ParallelSL fan-out, the
// crowdserve worker fleet): Add before `go`, Done inside the goroutine,
// Wait at the join. Three bugs survive review and -race alike until the
// unlucky interleaving hits production:
//
//  1. Add called *inside* the spawned goroutine: Wait can run before the
//     goroutine is scheduled, see a zero counter and return early.
//  2. Done reachable on only some paths through the goroutine (an early
//     return before a non-deferred Done): Wait deadlocks. This is a
//     must-dataflow check over the goroutine body's CFG.
//  3. Add on a locally declared WaitGroup with no Done anywhere in the
//     function (including its closures) and no escape: Wait, if present,
//     can never return.
//
// The canonical good pattern — Add inside a loop paired with a deferred
// Done in the goroutine spawned by the same iteration — passes all three.
var WgBalance = &analysis.Analyzer{
	Name: "wgbalance",
	Doc: "sync.WaitGroup Add/Done/Wait must balance along every CFG path: " +
		"Add before go, Done on all goroutine paths (prefer defer)",
	Run: runWgBalance,
}

func runWgBalance(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWgInFunc(pass, fd)
		}
	}
	return nil
}

// wgCall classifies a selector call on a WaitGroup-typed receiver.
func wgCall(pass *analysis.Pass, n ast.Node) (method string, recv types.Object) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return "", nil
	}
	if !isWaitGroup(pass.TypeOf(sel.X)) {
		return "", nil
	}
	// Track the receiver only when it is a plain variable (the repo
	// idiom); field/selector receivers are out of the local-balance scope.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			return sel.Sel.Name, obj
		}
	}
	return sel.Sel.Name, nil
}

// isWaitGroup reports whether t (possibly behind a pointer) is a named
// type called WaitGroup — sync.WaitGroup, or a fixture-local stand-in.
func isWaitGroup(t types.Type) bool {
	n := analysis.NamedOf(t)
	return n != nil && n.Obj().Name() == "WaitGroup"
}

func checkWgInFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Per-WaitGroup tallies across the whole function, closures included.
	type tally struct {
		addOutside []ast.Node // Add calls outside any go-closure
		doneAny    bool       // Done seen anywhere (function or closures)
		waitAny    bool
		escapes    bool // &wg passed/stored: balance is not local anymore
	}
	tallies := make(map[types.Object]*tally)
	get := func(obj types.Object) *tally {
		tl := tallies[obj]
		if tl == nil {
			tl = &tally{}
			tallies[obj] = tl
		}
		return tl
	}

	// goDepth tracks whether the walk is inside a `go func(){...}` literal.
	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.GoStmt:
				if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
					checkGoClosure(pass, fd, x, fl)
					walk(fl.Body, true)
					for _, arg := range x.Call.Args {
						walk(arg, inGo)
					}
					return false
				}
			case *ast.CallExpr:
				if m, obj := wgCall(pass, x); obj != nil {
					tl := get(obj)
					switch m {
					case "Add":
						if inGo {
							pass.Reportf(x.Pos(),
								"%s.Add inside the goroutine it accounts for: Wait may observe a zero counter before this goroutine runs; call Add before the go statement",
								obj.Name())
						} else {
							tl.addOutside = append(tl.addOutside, x)
						}
					case "Done":
						tl.doneAny = true
					case "Wait":
						tl.waitAny = true
					}
				}
			case *ast.UnaryExpr:
				// &wg handed to another function or stored: accounting is
				// shared with code this analyzer cannot see.
				if x.Op.String() == "&" {
					if id, ok := x.X.(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil && isWaitGroup(obj.Type()) {
							get(obj).escapes = true
						}
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, false)

	for obj, tl := range tallies {
		if len(tl.addOutside) == 0 || tl.doneAny || tl.escapes {
			continue
		}
		if !isLocalVar(pass, fd, obj) {
			continue
		}
		pass.Reportf(tl.addOutside[0].Pos(),
			"%s.Add has no matching Done anywhere in %s or its goroutines%s",
			obj.Name(), fd.Name.Name,
			map[bool]string{true: "; Wait will never return", false: ""}[tl.waitAny])
	}
}

// checkGoClosure verifies Done coverage inside one spawned goroutine: a
// non-deferred wg.Done must execute on every path to the closure's exit,
// or Wait deadlocks when the skipped path is taken.
func checkGoClosure(pass *analysis.Pass, fd *ast.FuncDecl, g *ast.GoStmt, fl *ast.FuncLit) {
	// Collect the WaitGroups this closure calls Done on, split by whether
	// every Done on that wg is deferred.
	type doneInfo struct {
		deferred bool
		plain    bool
	}
	dones := make(map[types.Object]*doneInfo)
	var inspectFor func(n ast.Node, inDefer bool)
	inspectFor = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if x != fl {
					return false // deeper goroutine/closure: its own problem
				}
			case *ast.DeferStmt:
				if m, obj := wgCall(pass, x.Call); m == "Done" && obj != nil {
					di := dones[obj]
					if di == nil {
						di = &doneInfo{}
						dones[obj] = di
					}
					di.deferred = true
				}
				return false
			case *ast.CallExpr:
				if m, obj := wgCall(pass, x); m == "Done" && obj != nil {
					di := dones[obj]
					if di == nil {
						di = &doneInfo{}
						dones[obj] = di
					}
					di.plain = true
				}
			}
			return true
		})
	}
	inspectFor(fl.Body, false)

	var objs []types.Object
	for obj, di := range dones {
		if di.plain && !di.deferred {
			objs = append(objs, obj)
		}
	}
	if len(objs) == 0 {
		return
	}

	cg := cfg.New(fl.Body)
	if !cg.Reachable(cg.Entry)[cg.Exit.Index] {
		return // goroutine never returns normally; goroleak's territory
	}
	flow := cfg.Flow{
		NFacts: len(objs),
		Meet:   cfg.Must,
		Gen: func(b *cfg.Block) bitset.Set {
			var gen bitset.Set
			for i, obj := range objs {
				if blockCallsDone(pass, b, obj) {
					if gen == nil {
						gen = bitset.New(len(objs))
					}
					gen.Add(i)
				}
			}
			return gen
		},
	}
	res := flow.Solve(cg)
	atExit := res.In[cg.Exit.Index]
	for i, obj := range objs {
		if !atExit.Has(i) {
			pass.Reportf(g.Pos(),
				"%s.Done is skipped on some path through this goroutine (early return before the call); `defer %s.Done()` at the top of the closure",
				obj.Name(), obj.Name())
		}
	}
}

// blockCallsDone reports whether block b contains wg.Done() on obj,
// outside nested function literals.
func blockCallsDone(pass *analysis.Pass, b *cfg.Block, obj types.Object) bool {
	found := false
	for _, n := range b.Nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if m, o := wgCall(pass, x); m == "Done" && o == obj {
				found = true
				return false
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isLocalVar reports whether obj is a variable declared inside fd (not a
// parameter, receiver or package-level variable) — the only case where
// "no Done anywhere" is provably a bug rather than a contract with the
// caller.
func isLocalVar(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			for _, name := range p.Names {
				if pass.Info.Defs[name] == obj {
					return false
				}
			}
		}
	}
	if fd.Recv != nil {
		for _, p := range fd.Recv.List {
			for _, name := range p.Names {
				if pass.Info.Defs[name] == obj {
					return false
				}
			}
		}
	}
	return fd.Body.Pos() <= v.Pos() && v.Pos() < fd.Body.End()
}

package oracle

import (
	"math/rand"
	"testing"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
)

func gen(t testing.TB, n, known, crowdDims int, dist dataset.Distribution, seed int64) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenerateConfig{
		N: n, KnownDims: known, CrowdDims: crowdDims, Distribution: dist,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("generating dataset: %v", err)
	}
	return d
}

// TestOracleAgreesWithCoreOracle pins the independent brute force to the
// repository's own ground-truth oracle: if they ever disagree, one of the
// two dominance definitions drifted.
func TestOracleAgreesWithCoreOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d := gen(t, 40, 2, 2, dataset.Independent, seed)
		got, want := TrueSkyline(d), core.Oracle(d)
		if !equalInts(got, want) {
			t.Fatalf("seed %d: TrueSkyline %v != core.Oracle %v", seed, got, want)
		}
	}
}

// TestOracleDifferential sweeps the paper's parameter space: all pruning
// combinations of all three schemes must match the brute-force truth and
// the sort-based baseline under a perfect crowd.
func TestOracleDifferential(t *testing.T) {
	dists := []dataset.Distribution{dataset.Independent, dataset.AntiCorrelated, dataset.Correlated}
	for _, dist := range dists {
		for seed := int64(0); seed < 3; seed++ {
			d := gen(t, 20, 2, 2, dist, seed)
			if err := Differential(d); err != nil {
				t.Errorf("dist %v seed %d: %v", dist, seed, err)
			}
		}
	}
}

// TestOracleDifferentialEdgeCases covers the degenerate shapes the sweep
// misses: tiny cardinalities, a single crowd attribute, duplicate-heavy
// known columns, and wider crowd dimensionality.
func TestOracleDifferentialEdgeCases(t *testing.T) {
	cases := []struct {
		name                string
		n, known, crowdDims int
		dist                dataset.Distribution
		seed                int64
	}{
		{"n1", 1, 1, 1, dataset.Independent, 1},
		{"n2", 2, 1, 1, dataset.Independent, 2},
		{"n3-anti", 3, 2, 1, dataset.AntiCorrelated, 3},
		{"one-crowd-attr", 16, 3, 1, dataset.Independent, 4},
		{"three-crowd-attrs", 12, 1, 3, dataset.Independent, 5},
		{"correlated", 16, 2, 2, dataset.Correlated, 6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := gen(t, c.n, c.known, c.crowdDims, c.dist, c.seed)
			if err := Differential(d); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestOracleRejectsBadResults proves the oracle has teeth: corrupted
// results must fail the corresponding check.
func TestOracleRejectsBadResults(t *testing.T) {
	d := gen(t, 20, 2, 2, dataset.Independent, 7)
	truth := TrueSkyline(d)
	run := func() (*core.Result, crowd.Snapshot) {
		pf := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
		res := core.CrowdSky(d, pf, core.AllPruning())
		return res, pf.Stats().Snapshot()
	}

	res, stats := run()
	if err := CheckSkyline(res, d, truth, stats); err != nil {
		t.Fatalf("clean run rejected: %v", err)
	}

	mutations := []struct {
		name   string
		mutate func(*core.Result)
	}{
		{"drop-tuple", func(r *core.Result) { r.Skyline = r.Skyline[1:] }},
		{"duplicate-tuple", func(r *core.Result) { r.Skyline = append(r.Skyline, r.Skyline[len(r.Skyline)-1]) }},
		{"out-of-range", func(r *core.Result) { r.Skyline = append(r.Skyline, d.N()) }},
		{"inflate-questions", func(r *core.Result) { r.Questions++ }},
		{"inflate-rounds", func(r *core.Result) { r.Rounds++ }},
		{"inflate-answers", func(r *core.Result) { r.WorkerAnswers++ }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			res, stats := run()
			m.mutate(res)
			if err := CheckSkyline(res, d, truth, stats); err == nil {
				t.Errorf("mutation %s passed the oracle", m.name)
			}
		})
	}

	// A tuple that is not in the true skyline must trip the soundness
	// check when smuggled into the result.
	res, stats = run()
	inTruth := make(map[int]bool)
	for _, t2 := range truth {
		inTruth[t2] = true
	}
	for i := 0; i < d.N(); i++ {
		if !inTruth[i] {
			res.Skyline = insertSorted(res.Skyline, i)
			if err := CheckSkyline(res, d, truth, stats); err == nil {
				t.Errorf("dominated tuple %d passed the oracle", i)
			}
			break
		}
	}
}

func insertSorted(s []int, v int) []int {
	out := make([]int, 0, len(s)+1)
	done := false
	for _, x := range s {
		if !done && v < x {
			out = append(out, v)
			done = true
		}
		out = append(out, x)
	}
	if !done {
		out = append(out, v)
	}
	return out
}

package oracle

import (
	"math/rand"
	"testing"

	"crowdsky/internal/dataset"
)

// FuzzDifferential feeds randomized dataset shapes through the full
// differential harness: every pruning combination of every scheme, plus
// the sort-based baseline, must reproduce the brute-force skyline. The
// fuzzer explores the shape space (cardinality, dimensionalities,
// distribution, generator seed); sizes are clamped so one input stays
// well under a second even though it runs 25 full algorithm executions.
func FuzzDifferential(f *testing.F) {
	f.Add(8, 2, 1, 0, int64(1))
	f.Add(12, 2, 2, 1, int64(2))
	f.Add(16, 3, 2, 2, int64(3))
	f.Add(1, 1, 1, 0, int64(4))
	f.Add(24, 1, 3, 1, int64(5))
	f.Fuzz(func(t *testing.T, n, known, crowdDims, dist int, seed int64) {
		n = clamp(n, 0, 24)
		known = clamp(known, 1, 4)
		crowdDims = clamp(crowdDims, 0, 3)
		distribution := []dataset.Distribution{
			dataset.Independent, dataset.AntiCorrelated, dataset.Correlated,
		}[abs(dist)%3]
		d, err := dataset.Generate(dataset.GenerateConfig{
			N: n, KnownDims: known, CrowdDims: crowdDims, Distribution: distribution,
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if err := Differential(d); err != nil {
			t.Fatal(err)
		}
	})
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Package oracle is the runtime counterpart of the skylint static checks:
// a differential invariant oracle for crowd-enabled skyline results.
//
// The static analyzers prove structural properties (determinism, locking,
// nil-safety); this package checks the semantic contract itself — a
// *core.Result claimed by any algorithm is verified against an
// independent brute-force reimplementation of full-attribute dominance
// (Definition 2), so a bug shared between package skyline and package
// core cannot vouch for itself. Differential runs every pruning
// combination of every algorithm under a perfect crowd and requires them
// all to agree with the sort-based baseline and the ground-truth oracle
// (Theorem: P1-P3 and both parallel schemes preserve the exact skyline,
// Sections 3-4 of the paper).
package oracle

import (
	"fmt"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/skyline"
)

// dominates is an independent reimplementation of s ≺A t over the full
// attribute set (known columns plus latent crowd values, smaller
// preferred). It deliberately does not call package skyline: the oracle
// must not share code with the implementation it judges.
func dominates(d *dataset.Dataset, s, t int) bool {
	strict := false
	for j := 0; j < d.KnownDims(); j++ {
		sv, tv := d.Known(s, j), d.Known(t, j)
		if sv > tv {
			return false
		}
		if sv < tv {
			strict = true
		}
	}
	for j := 0; j < d.CrowdDims(); j++ {
		sv, tv := d.Latent(s, j), d.Latent(t, j)
		if sv > tv {
			return false
		}
		if sv < tv {
			strict = true
		}
	}
	return strict
}

// TrueSkyline brute-forces the ground-truth skyline over all attributes,
// independently of core.Oracle.
func TrueSkyline(d *dataset.Dataset) []int {
	var sky []int
	n := d.N()
	for t := 0; t < n; t++ {
		dominated := false
		for s := 0; s < n && !dominated; s++ {
			dominated = s != t && dominates(d, s, t)
		}
		if !dominated {
			sky = append(sky, t)
		}
	}
	return sky
}

// CheckSkyline verifies one algorithm result against the dataset's latent
// ground truth and the platform's question accounting. truth is the
// expected skyline (pass TrueSkyline(d), or a precomputed reference);
// stats is the Snapshot of the platform the run used. The checks:
//
//   - well-formedness: indices in range, strictly ascending (sorted and
//     duplicate-free);
//   - soundness: no reported tuple is dominated over the full attribute
//     set (brute force against the independent dominance test);
//   - completeness: every tuple of truth is reported — valid whenever the
//     crowd was perfect and the run was not budget-truncated;
//   - accounting: the result's question/round/judgment counters agree
//     with the platform's own books, and judgments cover questions.
//
// A nil error means every invariant holds.
func CheckSkyline(res *core.Result, d *dataset.Dataset, truth []int, stats crowd.Snapshot) error {
	if res == nil {
		return fmt.Errorf("oracle: nil result")
	}
	n := d.N()
	for i, t := range res.Skyline {
		if t < 0 || t >= n {
			return fmt.Errorf("oracle: skyline[%d] = %d out of range [0,%d)", i, t, n)
		}
		if i > 0 && res.Skyline[i-1] >= t {
			return fmt.Errorf("oracle: skyline not strictly ascending at %d: %d then %d",
				i, res.Skyline[i-1], t)
		}
	}
	for _, t := range res.Skyline {
		for s := 0; s < n; s++ {
			if s != t && dominates(d, s, t) {
				return fmt.Errorf("oracle: unsound: reported tuple %d is dominated by %d", t, s)
			}
		}
	}
	if !res.Truncated {
		reported := make(map[int]bool, len(res.Skyline))
		for _, t := range res.Skyline {
			reported[t] = true
		}
		for _, t := range truth {
			if !reported[t] {
				return fmt.Errorf("oracle: incomplete: true skyline tuple %d missing from result", t)
			}
		}
	}
	if res.Questions != stats.Questions {
		return fmt.Errorf("oracle: result claims %d questions, platform booked %d",
			res.Questions, stats.Questions)
	}
	if res.Rounds != stats.Rounds {
		return fmt.Errorf("oracle: result claims %d rounds, platform booked %d",
			res.Rounds, stats.Rounds)
	}
	if res.WorkerAnswers != stats.WorkerAnswers {
		return fmt.Errorf("oracle: result claims %d worker answers, platform booked %d",
			res.WorkerAnswers, stats.WorkerAnswers)
	}
	if res.WorkerAnswers < res.Questions {
		return fmt.Errorf("oracle: %d worker answers cannot cover %d questions (every question needs ≥1)",
			res.WorkerAnswers, res.Questions)
	}
	perRoundQuestions := 0
	for _, r := range stats.PerRound {
		perRoundQuestions += r.Questions
	}
	if len(stats.PerRound) != stats.Rounds || perRoundQuestions != stats.Questions {
		return fmt.Errorf("oracle: per-round breakdown (%d rounds, %d questions) disagrees with totals (%d, %d)",
			len(stats.PerRound), perRoundQuestions, stats.Rounds, stats.Questions)
	}
	return nil
}

// scheme is one algorithm under differential test.
type scheme struct {
	name string
	run  func(*dataset.Dataset, crowd.Platform, core.Options) *core.Result
}

func schemes() []scheme {
	return []scheme{
		{"CrowdSky", core.CrowdSky},
		{"ParallelDSet", core.ParallelDSet},
		{"ParallelSL", core.ParallelSL},
	}
}

// PruningCombos enumerates all 2³ settings of P1/P2/P3.
func PruningCombos() []core.Options {
	var out []core.Options
	for bits := 0; bits < 8; bits++ {
		out = append(out, core.Options{
			P1: bits&1 != 0,
			P2: bits&2 != 0,
			P3: bits&4 != 0,
		})
	}
	return out
}

// Differential runs every pruning combination of every scheme on d under
// a perfect crowd and checks each result with CheckSkyline against the
// independent brute-force truth; it then requires all results — and the
// sort-based tournament baseline — to produce the identical skyline.
// This is the paper's exactness claim made executable: the prunings and
// parallelizations change cost and latency, never the answer.
func Differential(d *dataset.Dataset) error {
	truth := TrueSkyline(d)
	// One dominance index serves all 24 runs; every scheme adopts it via
	// Options.Index instead of recomputing the quadratic machine part.
	// Its bitmap-backed oracle must also agree with the brute-force truth.
	ix := skyline.NewIndex(d)
	if got := ix.OracleSkyline(); !equalInts(got, truth) {
		return fmt.Errorf("index oracle: skyline %v differs from brute-force truth %v", got, truth)
	}
	for _, sc := range schemes() {
		for _, opts := range PruningCombos() {
			opts.Index = ix
			pf := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
			res := sc.run(d, pf, opts)
			if err := CheckSkyline(res, d, truth, pf.Stats().Snapshot()); err != nil {
				return fmt.Errorf("%s{P1:%v P2:%v P3:%v}: %w", sc.name, opts.P1, opts.P2, opts.P3, err)
			}
			if !equalInts(res.Skyline, truth) {
				return fmt.Errorf("%s{P1:%v P2:%v P3:%v}: skyline %v differs from truth %v",
					sc.name, opts.P1, opts.P2, opts.P3, res.Skyline, truth)
			}
		}
	}
	pf := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
	base := core.Baseline(d, pf, core.TournamentSort, nil)
	if err := CheckSkyline(base, d, truth, pf.Stats().Snapshot()); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if !equalInts(base.Skyline, truth) {
		return fmt.Errorf("baseline: skyline %v differs from truth %v", base.Skyline, truth)
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package lint

import (
	"encoding/json"
	"path/filepath"

	"crowdsky/internal/lint/analysis"
)

// This file renders findings in machine-readable forms: plain JSON for
// scripting and SARIF 2.1.0 for code-scanning UIs (GitHub uploads, IDE
// plugins). The SARIF writer emits only the properties skylint has real
// values for — a minimal, schema-valid subset of the format.

// SARIF 2.1.0 document structure (the subset skylint emits).
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID string `json:"ruleId"`
	// RuleIndex is the result's index into the driver rules array. The
	// rules are the full registry in All() order, so the index for a
	// given analyzer is identical across runs, package orderings, and
	// flag combinations (-tests or not).
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// ToSARIF renders findings as a SARIF 2.1.0 log. The analyzers parameter
// populates the rule table (every registered analyzer appears, found or
// not, so rule metadata is stable across runs); findings must already be
// sorted if deterministic output matters to the caller.
func ToSARIF(findings []Finding, analyzers []*analysis.Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	ruleIndex := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		ruleIndex[a.Name] = i
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// Overlapping package patterns (or -tests loading a package twice)
	// can surface the same diagnostic from more than one root; a SARIF
	// consumer treats each result as distinct, so exact duplicates are
	// dropped here.
	seen := make(map[Finding]bool, len(findings))
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		if seen[f] {
			continue
		}
		seen[f] = true
		idx, ok := ruleIndex[f.Analyzer]
		if !ok {
			idx = -1 // SARIF's "not in the rules array" sentinel
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					// SARIF artifact URIs always use forward slashes.
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "skylint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ToJSON renders findings as a plain JSON array of
// {file, line, col, analyzer, message} objects.
func ToJSON(findings []Finding) ([]byte, error) {
	if findings == nil {
		findings = []Finding{}
	}
	return json.MarshalIndent(findings, "", "  ")
}

package lint

import (
	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/callgraph"
	"crowdsky/internal/lint/analysis/ssa"
)

// ssaCache memoizes the SSA form of each call-graph node for the whole
// skylint run. nilness and crowdtaint both solve value-flow problems over
// every function body; sharing one cache through the Program fact store
// keeps the construction cost paid once per function, not once per
// analyzer (the wall-time acceptance bound depends on it).
type ssaCache struct {
	funcs map[*callgraph.Node]*ssa.Func
}

// sharedSSA returns the run-wide SSA cache, creating it on first use.
func sharedSSA(prog *analysis.Program) *ssaCache {
	return prog.Fact("ssa.cache", func() any {
		return &ssaCache{funcs: make(map[*callgraph.Node]*ssa.Func)}
	}).(*ssaCache)
}

// Func builds (or returns the cached) SSA form of n's body. Nodes
// without a body or without a defining pass — external declarations,
// the per-package init pseudo-node — yield nil.
func (c *ssaCache) Func(n *callgraph.Node) *ssa.Func {
	if f, ok := c.funcs[n]; ok {
		return f
	}
	var f *ssa.Func
	switch {
	case n.Pass == nil || n.Body == nil:
		// nothing to build
	case n.Decl != nil:
		f = ssa.BuildFunc(n.Decl, n.Pass.Info)
	case n.Lit != nil:
		f = ssa.BuildLit(n.Lit, n.Pass.Info)
	}
	c.funcs[n] = f
	return f
}

package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"crowdsky/internal/lint"
	"crowdsky/internal/lint/analysistest"
)

// TestAnalyzerFixtures runs every registered analyzer over its fixture
// directory: the registry and the fixture set are forced to stay in sync
// (an analyzer without testdata/<name> fails its subtest).
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range lint.All() {
		t.Run(a.Name, func(t *testing.T) {
			analysistest.Run(t, filepath.Join("testdata", a.Name), a)
		})
	}
}

// TestCrossPackageChain runs hotalloc over the two-package fixture: the
// root is in package hot, the allocation two hops down in package
// kernel, and the finding must carry the full cross-package chain. This
// is the acceptance check for interprocedural summary propagation.
func TestCrossPackageChain(t *testing.T) {
	analysistest.RunMulti(t, filepath.Join("testdata", "callgraph"),
		[]string{"hot", "kernel"}, lint.HotAlloc)
}

// TestCrowdTaintJournal runs crowdtaint over the two-package recovery
// fixture: journal.Read results are a taint source in the consuming
// package, reaching a persistent map key and a slice index.
func TestCrowdTaintJournal(t *testing.T) {
	analysistest.RunMulti(t, filepath.Join("testdata", "crowdtaintjournal"),
		[]string{"journal", "replay"}, lint.CrowdTaint)
}

// TestAnalyzerRegistry pins the analyzer set: removing one from All()
// silently removes a correctness contract from CI.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{
		"detrange", "floateq", "errdrop",
		"lockorder", "ctxleak", "wgbalance", "goroleak", "traceschema",
		"hotalloc", "recvcopy", "purity",
		"nilness", "lockset", "crowdtaint",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestSortFindings pins the deterministic diagnostic order: (file, line,
// col, analyzer, message), numerically — not the lexical position-string
// order where line 10 sorts before line 2.
func TestSortFindings(t *testing.T) {
	findings := []lint.Finding{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "zz", Message: "m"},
		{File: "a.go", Line: 10, Col: 1, Analyzer: "aa", Message: "m"},
		{File: "a.go", Line: 2, Col: 7, Analyzer: "aa", Message: "m"},
		{File: "a.go", Line: 2, Col: 3, Analyzer: "bb", Message: "m"},
		{File: "a.go", Line: 2, Col: 3, Analyzer: "aa", Message: "n"},
		{File: "a.go", Line: 2, Col: 3, Analyzer: "aa", Message: "m"},
	}
	lint.SortFindings(findings)
	got := make([]string, len(findings))
	for i, f := range findings {
		got[i] = f.Position() + " " + f.Analyzer + " " + f.Message
	}
	want := []string{
		"a.go:2:3 aa m",
		"a.go:2:3 aa n",
		"a.go:2:3 bb m",
		"a.go:2:7 aa m",
		"a.go:10:1 aa m", // numeric: 10 after 2
		"b.go:1:1 zz m",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("after sort [%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestToSARIF checks the -sarif output is structurally valid SARIF 2.1.0:
// version, schema, one run with driver rules, and one result per finding
// with a physical location.
func TestToSARIF(t *testing.T) {
	findings := []lint.Finding{
		{File: "internal/crowd/crowd.go", Line: 12, Col: 3, Analyzer: "ctxleak", Message: "leak"},
		{File: "internal/core/skyline.go", Line: 40, Col: 9, Analyzer: "floateq", Message: "eq"},
	}
	raw, err := lint.ToSARIF(findings, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v := doc["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	if s, _ := doc["$schema"].(string); s == "" {
		t.Error("missing $schema")
	}
	runs, _ := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "skylint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	if rules, _ := driver["rules"].([]any); len(rules) != len(lint.All()) {
		t.Errorf("driver rules = %d, want %d", len(rules), len(lint.All()))
	}
	results, _ := run["results"].([]any)
	if len(results) != len(findings) {
		t.Fatalf("results = %d, want %d", len(results), len(findings))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "ctxleak" {
		t.Errorf("ruleId = %v", first["ruleId"])
	}
	locs := first["locations"].([]any)
	phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
	uri := phys["artifactLocation"].(map[string]any)["uri"]
	if uri != "internal/crowd/crowd.go" {
		t.Errorf("uri = %v", uri)
	}
	region := phys["region"].(map[string]any)
	if region["startLine"] != float64(12) || region["startColumn"] != float64(3) {
		t.Errorf("region = %v", region)
	}
}

// TestToSARIFDedupAndRuleIndex pins two stability properties: identical
// findings surfaced from multiple package roots collapse into one SARIF
// result, and every result's ruleIndex points at its rule in the driver
// rules array — which is All() order, so indexes cannot drift between
// runs or flag combinations.
func TestToSARIFDedupAndRuleIndex(t *testing.T) {
	dup := lint.Finding{File: "internal/crowd/crowd.go", Line: 12, Col: 3, Analyzer: "ctxleak", Message: "leak"}
	findings := []lint.Finding{
		dup,
		dup, // same package loaded under a second root
		{File: "internal/core/skyline.go", Line: 40, Col: 9, Analyzer: "floateq", Message: "eq"},
	}
	raw, err := lint.ToSARIF(findings, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	run := doc.Runs[0]
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2 (duplicate finding not collapsed)", len(run.Results))
	}
	for _, res := range run.Results {
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("ruleIndex %d out of range for %s", res.RuleIndex, res.RuleID)
		}
		if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != res.RuleID {
			t.Errorf("ruleIndex %d resolves to rule %q, want %q", res.RuleIndex, got, res.RuleID)
		}
	}
}

// TestBaseline covers the load/apply cycle: matched entries are filtered,
// unmatched findings are kept, and entries matching nothing are stale.
func TestBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	entries := []lint.BaselineEntry{
		{File: "a.go", Analyzer: "ctxleak", Message: "old leak", Reason: "pre-existing, tracked in ROADMAP"},
		{File: "gone.go", Analyzer: "floateq", Message: "fixed long ago", Reason: "obsolete"},
	}
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	findings := []lint.Finding{
		{File: "a.go", Line: 3, Col: 1, Analyzer: "ctxleak", Message: "old leak"},
		{File: "b.go", Line: 9, Col: 2, Analyzer: "ctxleak", Message: "new leak"},
	}
	kept, stale := lint.ApplyBaseline(findings, loaded)
	if len(kept) != 1 || kept[0].Message != "new leak" {
		t.Errorf("kept = %+v, want only the new leak", kept)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" {
		t.Errorf("stale = %+v, want the gone.go entry", stale)
	}
}

// TestBaselineRequiresReason rejects entries without a justification: a
// baseline is a debt register, and debt without a reason is just debt.
func TestBaselineRequiresReason(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	blob := `[{"file":"a.go","analyzer":"ctxleak","message":"m","reason":""}]`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadBaseline(path); err == nil {
		t.Error("baseline entry without a reason must not load")
	}
}

package lint_test

import (
	"path/filepath"
	"testing"

	"crowdsky/internal/lint"
	"crowdsky/internal/lint/analysistest"
)

// TestAnalyzerFixtures runs every registered analyzer over its fixture
// directory: the registry and the fixture set are forced to stay in sync
// (an analyzer without testdata/<name> fails its subtest).
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range lint.All() {
		t.Run(a.Name, func(t *testing.T) {
			analysistest.Run(t, filepath.Join("testdata", a.Name), a)
		})
	}
}

// TestAnalyzerRegistry pins the analyzer set: removing one from All()
// silently removes a correctness contract from CI.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"guardedby", "detrange", "niltrace", "floateq", "errdrop"}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"crowdsky/internal/lint/analysis"
)

// LockOrder builds a cross-package lock-acquisition graph and reports
// cycles. Deadlock by inconsistent lock order is the one concurrency bug
// -race cannot see (it needs the unlucky interleaving to fire, and then
// it is a hang, not a report), and it is invisible to any single-package
// check by construction: function A in crowd locks mu1 then mu2, function
// B in crowdserve locks mu2 then mu1, and each file looks locally fine.
//
// Within each function (and each function literal, as its own unit) the
// analyzer tracks a lexical held-set: Lock/RLock pushes the mutex,
// Unlock/RUnlock pops it, `defer mu.Unlock()` keeps it held to the end of
// the unit — the approximation a human reviewer applies, shared with the
// guardedby analyzer. Acquiring a mutex while others are held records
// directed edges held→acquired into a program-wide graph; after every
// package has run, the Finish phase reports each cycle once, at the
// lexically first edge that closes it.
//
// Methods whose name ends in "Locked" are entered with their receiver's
// mutex-typed fields already in the held-set: the suffix declares "caller
// holds the lock", so any mutex they acquire is ordered after the
// receiver's own locks. Re-acquiring a held write lock (mu.Lock with mu
// already held) is reported immediately as a self-deadlock.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "lock acquisition order must be globally consistent: " +
		"cycles in the cross-package held-while-acquiring graph deadlock",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// lockOrderFacts is the program-wide acquisition graph, shared across
// packages through analysis.Program.
type lockOrderFacts struct {
	// edges[from][to] is the first observed site acquiring `to` while
	// holding `from`.
	edges map[string]map[string]*lockEdgeSite
}

type lockEdgeSite struct {
	pass *analysis.Pass
	pos  token.Pos
	fn   string
}

func lockOrderState(prog *analysis.Program) *lockOrderFacts {
	return prog.Fact("lockorder.edges", func() any {
		return &lockOrderFacts{edges: make(map[string]map[string]*lockEdgeSite)}
	}).(*lockOrderFacts)
}

func runLockOrder(pass *analysis.Pass) error {
	facts := lockOrderState(pass.Program())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var held []heldLock
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				held = impliedHeld(pass, fd)
			}
			walkLockUnit(pass, facts, fd.Name.Name, fd.Body, held)
		}
	}
	return nil
}

// heldLock is one entry of the lexical held-set.
type heldLock struct {
	key   string
	write bool
}

// walkLockUnit simulates the held-set over unit's statements in source
// order. Function literals are their own units with an empty held-set:
// a closure runs later, not under the locks lexically above it.
func walkLockUnit(pass *analysis.Pass, facts *lockOrderFacts, fn string, unit ast.Node, entry []heldLock) {
	held := append([]heldLock(nil), entry...)
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if x != unit {
					walkLockUnit(pass, facts, fn+" (func literal)", x, nil)
					return false
				}
			case *ast.DeferStmt:
				// A deferred Unlock keeps the mutex held for the rest of
				// the unit; a deferred Lock (rare) is ignored for ordering.
				walk(x.Call, true)
				return false
			case *ast.CallExpr:
				method, key := lockCallKey(pass, fn, x)
				if key == "" {
					return true
				}
				switch method {
				case "Lock", "RLock":
					write := method == "Lock"
					for _, h := range held {
						if h.key == key {
							if write || h.write {
								pass.Reportf(x.Pos(),
									"%s is already held here: this %s deadlocks the goroutine against itself",
									shortLockKey(key), method)
							}
							continue
						}
						addLockEdge(facts, h.key, key, pass, x.Pos(), fn)
					}
					held = append(held, heldLock{key: key, write: write})
				case "Unlock", "RUnlock":
					if !inDefer {
						for i := len(held) - 1; i >= 0; i-- {
							if held[i].key == key {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
				}
			}
			return true
		})
	}
	walk(unit, false)
}

func addLockEdge(facts *lockOrderFacts, from, to string, pass *analysis.Pass, pos token.Pos, fn string) {
	m := facts.edges[from]
	if m == nil {
		m = make(map[string]*lockEdgeSite)
		facts.edges[from] = m
	}
	if m[to] == nil {
		m[to] = &lockEdgeSite{pass: pass, pos: pos, fn: fn}
	}
}

// lockCallKey classifies call as a Lock/RLock/Unlock/RUnlock on a mutex
// and returns the mutex's program-wide key, or "" when it is not one.
func lockCallKey(pass *analysis.Pass, fn string, call *ast.CallExpr) (method, key string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	if !isMutexType(pass.TypeOf(sel.X)) {
		return "", ""
	}
	return sel.Sel.Name, lockKeyOf(pass, fn, sel.X)
}

// lockKeyOf names a mutex expression so the same mutex gets the same key
// from every package: fields key as pkgpath.Type.field (any receiver
// variable), package-level variables as pkgpath.name, locals as
// pkgpath.func.name (ordering between different functions' locals is
// meaningless, and distinct names keep them from aliasing).
func lockKeyOf(pass *analysis.Pass, fn string, expr ast.Expr) string {
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok {
			if named := analysis.NamedOf(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
			return ""
		}
		// Package-qualified variable: pkg.Mu.
		if obj := pass.Info.Uses[x.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Pkg().Path() + "." + fn + "." + obj.Name()
	}
	return ""
}

// isMutexType reports whether t (possibly behind a pointer) is a named
// type called Mutex or RWMutex — sync's, or a fixture-local stand-in.
func isMutexType(t types.Type) bool {
	n := analysis.NamedOf(t)
	if n == nil {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// impliedHeld returns the held-set a "...Locked" method is entered with:
// every mutex-typed field of its receiver, which the naming convention
// says the caller has already acquired.
func impliedHeld(pass *analysis.Pass, fd *ast.FuncDecl) []heldLock {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	obj := pass.Info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return nil
	}
	named := analysis.NamedOf(obj.Type())
	if named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var held []heldLock
	prefix := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "."
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutexType(f.Type()) {
			held = append(held, heldLock{key: prefix + f.Name(), write: true})
		}
	}
	return held
}

// finishLockOrder runs after every package: it walks the accumulated
// acquisition graph and reports each cycle once, at the site of its
// lexicographically first edge, through that edge's own pass so
// skylint:ignore on the acquiring line still suppresses it.
func finishLockOrder(prog *analysis.Program) error {
	facts := lockOrderState(prog)
	froms := make([]string, 0, len(facts.edges))
	for from := range facts.edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)

	reported := make(map[string]bool) // canonical node-set of the cycle
	for _, from := range froms {
		tos := make([]string, 0, len(facts.edges[from]))
		for to := range facts.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			path := lockPath(facts, to, from)
			if path == nil {
				continue
			}
			// path is to→…→from inclusive; drop the final `from` so the
			// cycle holds each node once (describeCycle closes the loop).
			cycle := append([]string{from}, path[:len(path)-1]...)
			canon := canonicalCycle(cycle)
			if reported[canon] {
				continue
			}
			reported[canon] = true
			site := facts.edges[from][to]
			site.pass.Reportf(site.pos,
				"lock order cycle: %s (this edge acquired in %s); pick one global order for these mutexes",
				describeCycle(cycle), site.fn)
		}
	}
	return nil
}

// lockPath returns the shortest edge path from `from` to `to` (BFS with
// sorted neighbor expansion, so the result is deterministic), or nil.
func lockPath(facts *lockOrderFacts, from, to string) []string {
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			var path []string
			for n := to; n != ""; n = prev[n] {
				path = append([]string{n}, path...)
			}
			return path
		}
		next := make([]string, 0, len(facts.edges[cur]))
		for n := range facts.edges[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if _, seen := prev[n]; !seen {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	return nil
}

// canonicalCycle produces a rotation-independent identity for a cycle's
// node sequence, so a→b→a and b→a→b dedupe to one report.
func canonicalCycle(nodes []string) string {
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	return strings.Join(sorted, "→")
}

// describeCycle renders a→b→…→a with the package paths trimmed to keep
// the message readable; the full keys disambiguate only when two types
// share a name.
func describeCycle(nodes []string) string {
	parts := make([]string, 0, len(nodes)+1)
	for _, n := range nodes {
		parts = append(parts, shortLockKey(n))
	}
	parts = append(parts, shortLockKey(nodes[0]))
	return strings.Join(parts, " -> ")
}

// shortLockKey trims the directory part of the package path:
// crowdsky/internal/crowd.Stats.mu becomes crowd.Stats.mu.
func shortLockKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

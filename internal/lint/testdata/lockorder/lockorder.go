// Package lockorder is the fixture for the lockorder analyzer: the
// cross-function lock-acquisition graph must stay acyclic.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	rw  sync.RWMutex
)

// abOrder acquires muB while holding muA: the A→B edge. The cycle
// diagnostic lands here because this is the lexicographically first edge
// of the A/B cycle closed by baOrder below.
func abOrder() {
	muA.Lock()
	muB.Lock() // want `lock order cycle`
	muB.Unlock()
	muA.Unlock()
}

// baOrder closes the cycle with the opposite order.
func baOrder() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// doubleLock deadlocks against itself immediately.
func doubleLock() {
	muA.Lock()
	muA.Lock() // want `already held`
	muA.Unlock()
	muA.Unlock()
}

// doubleRLockOK: nested read locks do not self-deadlock.
func doubleRLockOK() {
	rw.RLock()
	rw.RLock()
	rw.RUnlock()
	rw.RUnlock()
}

type counter struct {
	mu sync.Mutex
	n  int
}

// bump is the ordinary single-lock pattern: no edges, no findings.
func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// flushLocked runs with c.mu already held (the Locked suffix is the
// contract), so acquiring muA records the counter.mu→muA edge; the
// cycle diagnostic lands on this edge because counter.mu sorts first.
func (c *counter) flushLocked() {
	muA.Lock() // want `lock order cycle`
	c.n = 0
	muA.Unlock()
}

// lockThenTouch closes the second cycle: muA→counter.mu.
func lockThenTouch(c *counter) {
	muA.Lock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	muA.Unlock()
}

// sequentialOK acquires the same mutexes one after the other, never
// nested: no edges at all.
func sequentialOK() {
	muA.Lock()
	muA.Unlock()
	muB.Lock()
	muB.Unlock()
}

// closureOwnUnit: a function literal is its own unit — the lock held
// outside does not leak into the closure's held-set (it runs later).
func closureOwnUnit() func() {
	muB.Lock()
	defer muB.Unlock()
	return func() {
		muB.Lock()
		defer muB.Unlock()
	}
}

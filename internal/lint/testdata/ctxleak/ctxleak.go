// Package ctxleak is the fixture for the ctxleak analyzer: cancel
// functions from context.WithCancel/WithTimeout/WithDeadline must be
// called (or handed off) on every path out of the creating function.
package ctxleak

import (
	"context"
	"time"
)

func use(context.Context) {}

func stash(context.CancelFunc) {}

func work() error { return nil }

// deferCancelOK is the canonical good shape: defer covers every exit.
func deferCancelOK(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	use(ctx)
}

// allBranchesOK calls cancel on both the early-return path and the fall
// through, so the must-analysis proves coverage without a defer.
func allBranchesOK(parent context.Context, fast bool) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	if fast {
		cancel()
		return
	}
	use(ctx)
	cancel()
}

// missedBranch leaks: the early return skips cancel.
func missedBranch(parent context.Context, fast bool) {
	ctx, cancel := context.WithCancel(parent) // want `cancel function is not called on every path`
	if fast {
		return
	}
	use(ctx)
	cancel()
}

// discarded can never be cancelled at all.
func discarded(parent context.Context) {
	ctx, _ := context.WithCancel(parent) // want `cancel function of context.WithCancel is discarded`
	use(ctx)
}

// handsOff passes the cancel function on: the obligation moves with it.
func handsOff(parent context.Context) {
	ctx, cancel := context.WithDeadline(parent, time.Now().Add(time.Second))
	use(ctx)
	stash(cancel)
}

// panicPath is clean: a panicking path is not a leaking path.
func panicPath(parent context.Context, bad bool) {
	ctx, cancel := context.WithCancel(parent)
	if bad {
		panic("bad input")
	}
	use(ctx)
	cancel()
}

// closureCapture is clean: the closure captures cancel (an escape from
// the defining unit's view) and calls it on its own every path.
func closureCapture(parent context.Context) func() {
	ctx, cancel := context.WithCancel(parent)
	use(ctx)
	return func() {
		cancel()
	}
}

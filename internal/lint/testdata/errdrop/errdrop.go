// Fixture for the errdrop analyzer. The package is named "crowdserve" so
// the analyzer treats it as marketplace code.
package crowdserve

import "errors"

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func pure() int { return 1 }

func bareCall() {
	mayFail() // want `discards its error result`
}

func deferredCall() {
	defer mayFail() // want `discards its error result`
}

func blanked() {
	_ = mayFail() // want `error value assigned to the blank identifier`
}

func tupleBlank() int {
	n, _ := pair() // want `error result of pair assigned to the blank identifier`
	return n
}

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func tupleHandled() (int, error) {
	n, err := pair()
	return n, err
}

func noError() {
	pure()
}

func suppressed() {
	_ = mayFail() // skylint:ignore errdrop best-effort cleanup on a failing path
}

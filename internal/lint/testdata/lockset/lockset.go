// Fixture for the lockset analyzer: accesses to annotated fields must
// happen with the named mutex in the must-hold lockset (held on every
// path), and the *Locked caller-holds contract is verified at call
// sites through the call graph. The suppression comment exercises the
// legacy "guardedby" alias on purpose.
package lockset

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // skylint:guardedby mu
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bad() int {
	return c.n // want `n is guarded by "mu"`
}

func (c *counter) badWrite() {
	c.n = 0 // want `n is guarded by "mu"`
}

func (c *counter) resetLocked() {
	c.n = 0
}

func (c *counter) suppressed() int {
	// skylint:ignore guardedby single-goroutine test helper
	return c.n
}

// Flow sensitivity: the lexical predecessor Lock no longer counts once
// the mutex has been released.
func (c *counter) unlockThenAccess() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `n is guarded by "mu"`
}

// A lock taken on only one branch is not held at the join.
func (c *counter) branchLock(b bool) int {
	if b {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n // want `n is guarded by "mu"`
}

// Both branches locking is fine: the must-set intersection keeps mu.
func (c *counter) bothBranchesLock(b bool) int {
	if b {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	defer c.mu.Unlock()
	return c.n
}

// Deferred unlock releases at exit, not at registration.
func (c *counter) deferThenAccess() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// An access inside a deferred closure is checked against the lockset at
// the point the defer is registered.
func (c *counter) deferredBodyBad() {
	defer func() {
		c.n = 0 // want `n is guarded by "mu"`
	}()
}

func (c *counter) deferredBodyGood() {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
}

// Interprocedural discharge: calling a *Locked helper demands its mutex
// at the call site, transitively through other *Locked helpers.
func (c *counter) viaHelperGood() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
}

func (c *counter) viaHelperBad() {
	c.resetLocked() // want `call to .*resetLocked requires "mu" held`
}

func (c *counter) drainLocked() {
	c.resetLocked() // a *Locked helper passes the obligation upward
}

func (c *counter) viaTransitiveBad() {
	c.drainLocked() // want `call to .*drainLocked requires "mu" held`
}

type rw struct {
	mu sync.RWMutex
	m  map[string]int // skylint:guardedby mu
}

func (r *rw) get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

type wrong struct {
	n int // skylint:guardedby lock // want `no such field`
}

func use(w *wrong) int { return w.n }

// Fixture for the crowdtaint analyzer: crowd-controlled data (HTTP
// request fields, decoded judgment payloads) must not reach filesystem
// paths, unchecked slice indexes, or persistent map keys without
// passing a sanitizer.
package crowdtaint

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
)

type state struct {
	seen  map[string]bool
	idem  map[string]int
	names map[string]string
	items []int
}

var registry = map[string]int{}

// Persistent map keys: struct-field and package-level maps outlive the
// request, so raw client strings must not key them.
func mapKeyBad(s *state, r *http.Request) {
	w := r.URL.Query().Get("worker")
	s.seen[w] = true // want `w is crowd-controlled and is stored as a key of persistent map s.seen`
}

func mapKeyGlobal(r *http.Request) {
	registry[r.URL.Query().Get("worker")]++ // want `stored as a key of persistent map registry`
}

// Formatting does not launder: the composite inherits the field's taint.
func mapKeyFormatted(s *state, r *http.Request) {
	key := fmt.Sprintf("round-%s", r.Header.Get("Idempotency-Key"))
	s.idem[key] = 1 // want `key is crowd-controlled and is stored as a key of persistent map s.idem`
}

// A request-local scratch map is not persistent state.
func mapKeyScratch(r *http.Request) int {
	scratch := map[string]int{}
	scratch[r.URL.Query().Get("worker")]++
	return len(scratch)
}

// cleanID keeps identifiers to a safe charset, rejecting the rest.
//
// skylint:sanitizer
func cleanID(s string) (string, bool) {
	if s == "" || len(s) > 64 {
		return "", false
	}
	return s, true
}

func mapKeySanitized(s *state, r *http.Request) {
	w, ok := cleanID(r.URL.Query().Get("worker"))
	if !ok {
		return
	}
	s.seen[w] = true
}

// Reading a trusted container with a tainted key yields trusted data.
func mapKeyLaundered(s *state, r *http.Request) {
	name := s.names[r.URL.Query().Get("worker")]
	s.seen[name] = true
}

// Slice indexes: tainted and unbounded panics on demand.
func indexBad(s *state, r *http.Request) int {
	n, _ := strconv.Atoi(r.URL.Query().Get("i"))
	return s.items[n] // want `n is crowd-controlled and indexes s.items without a bounds check`
}

// A dominating bounds check clears the unbounded bit on the fall-through
// edge (SSA pi refinement), so the same access is fine here.
func indexChecked(s *state, r *http.Request) int {
	n, _ := strconv.Atoi(r.URL.Query().Get("i"))
	if n < 0 || n >= len(s.items) {
		return 0
	}
	return s.items[n]
}

// Decoded judgment payloads are as tainted as the request body.
func decodeBad(s *state, r *http.Request) {
	var body struct {
		Worker string
		Index  int
	}
	_ = json.NewDecoder(r.Body).Decode(&body)
	s.seen[body.Worker] = true // want `body.Worker is crowd-controlled and is stored as a key of persistent map s.seen`
	_ = s.items[body.Index]    // want `body.Index is crowd-controlled and indexes s.items without a bounds check`
}

// Filesystem paths: a worker-chosen name can traverse directories.
func pathBad(r *http.Request) {
	name := r.URL.Query().Get("f")
	_, _ = os.Open(name) // want `name is crowd-controlled and reaches os.Open as a filesystem path`
}

func pathSanitized(r *http.Request) {
	name := r.URL.Query().Get("f")
	_, _ = os.Open(filepath.Base(name))
}

// Suppression uses the standard skylint:ignore grammar.
func suppressed(s *state, r *http.Request) {
	w := r.URL.Query().Get("worker")
	// skylint:ignore crowdtaint trusted admin endpoint
	s.seen[w] = true
}

// Package purity exercises the effect-summary check: compute kernels
// must not reach I/O, locks or fmt/log; serve-scope handlers may.
package purity

import (
	"fmt"
	"os"
	"sync"
)

var mu sync.Mutex

// Kernel is a compute root; the impure calls are two and three hops
// down, where the summaries find them.
//
//skylint:hotpath
func Kernel(xs []int) int {
	return step(xs)
}

func step(xs []int) int {
	debug(len(xs))
	return locked(xs)
}

func debug(n int) {
	fmt.Println("n =", n) // want `call to fmt\.Println \(fmt/log\) on hot compute path \(purity\.Kernel -> purity\.step -> purity\.debug\)`
}

func locked(xs []int) int {
	mu.Lock()         // want `call to sync\.\(Mutex\)\.Lock \(locking\) on hot compute path \(purity\.Kernel -> purity\.step -> purity\.locked\)`
	defer mu.Unlock() // want `call to sync\.\(Mutex\)\.Unlock \(locking\) on hot compute path \(purity\.Kernel -> purity\.step -> purity\.locked\)`
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// pure is reachable but effect-free: its zero summary skips it.
//
//skylint:hotpath
func pure(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x * x
	}
	return s
}

// Handler is serve-scope: locking and I/O are its job, only the
// allocation disciplines apply.
//
//skylint:hotpath serve
func Handler() error {
	mu.Lock()
	defer mu.Unlock()
	f, err := os.CreateTemp("", "x")
	if err != nil {
		return err
	}
	return f.Close()
}

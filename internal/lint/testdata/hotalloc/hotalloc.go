// Package hotalloc exercises the hot-path allocation analyzer: every
// flagged shape, chain reporting through helpers, alloc-ok waivers, and
// the directives' own error cases.
package hotalloc

// Root reaches level2 through level1: findings there carry the chain.
//
//skylint:hotpath
func Root(xs []int) int {
	return level1(xs)
}

func level1(xs []int) int { return level2(xs) }

func level2(xs []int) int {
	seen := make(map[int]bool) // want `unsized make\(map\[int\]bool\); hint a capacity on hot path \(hotalloc\.Root -> hotalloc\.level1 -> hotalloc\.level2\)`
	out := 0
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out += x
		}
	}
	return out
}

// Grow appends without a provable capacity.
//
//skylint:hotpath
func Grow(dst, src []int) []int {
	return append(dst, src...) // want `append may grow its backing array; pre-size or reuse a buffer on hot path \(hotalloc\.Grow\)`
}

// Literals allocates composite literals of reference types.
//
//skylint:hotpath
func Literals() ([]int, map[string]int) {
	xs := []int{1, 2, 3}        // want `slice literal allocates on hot path \(hotalloc\.Literals\)`
	m := map[string]int{"a": 1} // want `map literal allocates on hot path \(hotalloc\.Literals\)`
	return xs, m
}

// Concat builds a string per call.
//
//skylint:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates; use a reused buffer on hot path \(hotalloc\.Concat\)`
}

// Boxing converts a concrete value to an interface at a call site.
//
//skylint:hotpath
func Boxing(v int) any {
	return box(v) // want `interface boxing of int on hot path \(hotalloc\.Boxing\)`
}

func box(v any) any { return v }

// Capture hands a variable-capturing closure to a helper.
//
//skylint:hotpath
func Capture(xs []int) int {
	total := 0
	each(xs, func(x int) { // want `closure captures "total" and escapes; hoist it or pass parameters on hot path \(hotalloc\.Capture\)`
		total += x
	})
	return total
}

func each(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}

// MapRange iterates a map on the hot path.
//
//skylint:hotpath
func MapRange(m map[int]int) int {
	s := 0
	for _, v := range m { // want `range over map allocates its iterator \(and is nondeterministic\) on hot path \(hotalloc\.MapRange\)`
		s += v
	}
	return s
}

// Waived documents its deliberate allocation: no finding.
//
//skylint:hotpath
func Waived() map[int]int {
	return make(map[int]int) //skylint:alloc-ok one-time table, amortized across the session
}

// BadWaiver omits the mandatory reason.
//
//skylint:hotpath
func BadWaiver() map[int]int {
	return make(map[int]int) //skylint:alloc-ok // want `alloc-ok needs a reason, like the baseline`
}

// Bad carries a typo'd scope argument.
//
//skylint:hotpath fast
func Bad() {} // want `unknown //skylint:hotpath scope "fast" \(want nothing, "compute" or "serve"\)`

// cold is unannotated and unreachable from any root: allocate freely.
func cold() map[int]int { return map[int]int{1: 1} }

// Package recvcopy exercises the large-by-value check on hot-reachable
// functions: a 5-word struct crosses the 4-word budget, receivers and
// parameters alike; pointers and small structs are clean.
package recvcopy

// Big is five words (40 bytes on gc/amd64): over budget.
type Big struct{ A, B, C, D, E int64 }

// Small is two words: within budget.
type Small struct{ A, B int64 }

// Root is the hot entry; its own parameter is already over budget.
//
//skylint:hotpath
func Root(b Big) int { // want `parameter Big copies 40 bytes per call on hot path \(recvcopy\.Root\); pass \*Big`
	return b.Sum() + use(b) + ptr(&b) + small(Small{A: 1})
}

// Sum copies its receiver on every call.
func (b Big) Sum() int { // want `receiver Big copies 40 bytes per call on hot path \(recvcopy\.Root -> \(recvcopy\.Big\)\.Sum\); pass \*Big`
	return int(b.A + b.B)
}

func use(b Big) int { // want `parameter Big copies 40 bytes per call on hot path \(recvcopy\.Root -> recvcopy\.use\); pass \*Big`
	return int(b.C)
}

// ptr passes a pointer: clean.
func ptr(b *Big) int { return int(b.D) }

// small is by value but within the budget: clean.
func small(s Small) int { return int(s.A) }

// unreached is large-by-value but cold: clean.
func unreached(b Big) int { return int(b.E) }

// Package wgbalance is the fixture for the wgbalance analyzer:
// sync.WaitGroup Add/Done/Wait must balance along every CFG path.
package wgbalance

import "sync"

func work(int) {}

func helper(*sync.WaitGroup) {}

// fanOutOK is the repo's canonical shape: Add before go, deferred Done.
func fanOutOK(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

// addInsideGoroutine races: Wait can observe a zero counter before the
// goroutine is scheduled and its Add runs.
func addInsideGoroutine(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want `Add inside the goroutine it accounts for`
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

// doneSkippedOnPath deadlocks Wait whenever an item takes the early
// return: the plain Done is unreachable on that path.
func doneSkippedOnPath(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() { // want `Done is skipped on some path`
			if it < 0 {
				return
			}
			work(it)
			wg.Done()
		}()
	}
	wg.Wait()
}

// plainDoneAllPathsOK needs no defer: every path through the goroutine
// reaches a Done, which the must-analysis proves.
func plainDoneAllPathsOK(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			if it < 0 {
				wg.Done()
				return
			}
			work(it)
			wg.Done()
		}()
	}
	wg.Wait()
}

// noDoneAnywhere can never get back to zero.
func noDoneAnywhere() {
	var wg sync.WaitGroup
	wg.Add(1) // want `no matching Done`
	wg.Wait()
}

// escapesOK hands the WaitGroup to a helper, which owns the Done side;
// local balance is no longer provable and must not be reported.
func escapesOK() {
	var wg sync.WaitGroup
	wg.Add(1)
	go helper(&wg)
	wg.Wait()
}

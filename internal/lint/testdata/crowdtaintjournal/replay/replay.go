// Recovery-path fixture: journal records are a crowdtaint source, so
// replaying them into persistent maps or slice indexes needs the same
// validation as live network input.
package replay

import "journal"

var counts = map[string]int{}

func replayBad(data []byte, votes []int) {
	for _, e := range journal.Read(data) {
		counts[e.Worker]++ // want `e.Worker is crowd-controlled and is stored as a key of persistent map counts`
		idx := e.Index
		votes[idx]++ // want `idx is crowd-controlled and indexes votes without a bounds check`
	}
}

func replayChecked(data []byte, votes []int) {
	for _, e := range journal.Read(data) {
		idx := e.Index
		if idx < 0 || idx >= len(votes) {
			continue
		}
		votes[idx]++
	}
}

// The range index over the replayed slice is in-bounds by construction,
// unlike the indexes stored inside the records.
func replayRangeKey(data []byte) {
	entries := journal.Read(data)
	for i := range entries {
		entries[i].Index = 0
	}
}

// A miniature of crowdsky/internal/journal: the crowdtaint analyzer
// treats Read/Recover results from any package named journal as
// crowd-controlled (records were written by a previous, possibly
// crashed, process).
package journal

// Entry is one replayed journal record.
type Entry struct {
	Worker string
	Index  int
}

// Read parses the journal byte stream into entries.
func Read(data []byte) []Entry {
	if len(data) == 0 {
		return nil
	}
	return []Entry{{}}
}

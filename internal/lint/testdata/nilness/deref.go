// Fixture for the nilness analyzer's general dereference checks: nil
// definitions (literal nil, var zero values, == nil branches) reaching
// pointer loads, map writes, *array indexing, and calls through nil
// values — plus the interprocedural summary path, where dereferencing
// the unchecked result of a conditionally-nil-returning function is
// flagged at the call site.
package nilness

import "errors"

type node struct {
	next *node
	val  int
}

func definite() int {
	var p *node
	return p.val // want `p is nil on every path reaching this field access`
}

func maybe(p *node) int {
	if p == nil {
		println("missing")
	}
	return p.val // want `p may be nil at this field access`
}

func guarded(p *node) int {
	if p == nil {
		return 0
	}
	return p.val
}

func guardedInverted(p *node) int {
	if p != nil {
		return p.val
	}
	return 0
}

func reassigned(p *node) int {
	if p == nil {
		p = &node{}
	}
	return p.val
}

func starDeref() int {
	var p *int
	return *p // want `p is nil on every path reaching this dereference`
}

// find conditionally returns nil; the bottom-up summary records it.
func find(ok bool) *node {
	if !ok {
		return nil
	}
	return &node{}
}

func useFindUnchecked(ok bool) int {
	return find(ok).val // want `may be nil at this field access`
}

func useFindChecked(ok bool) int {
	n := find(ok)
	if n == nil {
		return 0
	}
	return n.val
}

// load follows the (T, error) contract: the nil result only escapes with
// a non-nil error, so callers that check the error first are clean.
func load(ok bool) (*node, error) {
	if !ok {
		return nil, errors.New("not found")
	}
	return &node{}, nil
}

func useLoadChecked(ok bool) int {
	n, err := load(ok)
	if err != nil {
		return 0
	}
	return n.val
}

func mapWrite() {
	var m map[string]int
	m["k"] = 1 // want `m is nil on every path reaching this map write`
}

func mapRead() int {
	var m map[string]int
	return m["k"] // reading a nil map is legal
}

func sliceIndex() int {
	var s []int
	return s[0] // nil-slice indexing is a bounds failure, not a nilness one
}

func arrayPtrIndex() int {
	var a *[4]int
	return a[0] // want `a is nil on every path reaching this index expression`
}

func sliceAppend() []int {
	var s []int
	s = append(s, 1)
	return s
}

// shortCircuit guards inside a single condition: the CFG does not split
// && / || operands, so these are recovered syntactically.
func shortCircuit(p *node) bool {
	var q *node
	if p != nil {
		q = &node{}
	}
	return q != nil && q.val > 0
}

func shortCircuitOr(p *node) bool {
	var q *node
	if p != nil {
		q = &node{}
	}
	return q == nil || q.val > 0
}

func shortCircuitWrongOp(p *node) bool {
	var q *node
	if p != nil {
		q = &node{}
	}
	// An || disjunct of `q != nil` proves nothing about the RHS.
	return q != nil || q.val > 0 // want `q may be nil at this field access`
}

// mutatingCall: a method call may assign any field reachable through
// its receiver, so the nil fact on n.next must not survive it.
func (n *node) fill() { n.next = &node{} }

func mutatedField(n *node) int {
	if n.next != nil {
		return 0
	}
	n.fill()
	return n.next.val
}

type closer interface{ Close() }

func nilIfaceCall() {
	var c closer
	c.Close() // want `c is nil on every path reaching this interface method call`
}

func nilFuncCall() {
	var f func()
	f() // want `f is nil on every path reaching this call`
}

func suppressedDeref() int {
	var p *node
	// skylint:ignore nilness exercising the suppression path
	return p.val
}

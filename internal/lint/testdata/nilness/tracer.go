// Fixture for the nilness analyzer's inherited Tracer policy: Emit on a
// Tracer-typed value must be nil-guarded. The local Tracer interface
// stands in for telemetry.Tracer (the analyzer matches any interface
// named Tracer). The suppression below uses the legacy "niltrace" alias
// on purpose — it must keep working after the subsumption.
package nilness

type Event struct{ Name string }

type Tracer interface {
	Emit(Event)
}

type runner struct {
	trace Tracer
}

func (r *runner) bad(e Event) {
	r.trace.Emit(e) // want `without a nil guard`
}

func (r *runner) guarded(e Event) {
	if r.trace != nil {
		r.trace.Emit(e)
	}
}

func (r *runner) guardedConjoined(e Event, on bool) {
	if on && r.trace != nil {
		r.trace.Emit(e)
	}
}

func (r *runner) earlyExit(e Event) {
	if r.trace == nil {
		return
	}
	r.trace.Emit(e)
}

func (r *runner) wrongGuard(e Event, other Tracer) {
	if other != nil {
		r.trace.Emit(e) // want `without a nil guard`
	}
}

type collector struct{}

func (collector) Emit(Event) {}

func concrete(c collector, e Event) {
	c.Emit(e)
}

func suppressed(t Tracer, e Event) {
	// skylint:ignore niltrace caller guarantees a non-nil tracer
	t.Emit(e)
}

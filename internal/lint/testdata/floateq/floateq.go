// Fixture for the floateq analyzer. The package is named "skyline" so the
// analyzer treats it as dominance code.
package skyline

func bad(a, b float64) bool {
	return a == b // want `float == comparison`
}

func alsoBad(a, b float32) bool {
	return a != b // want `float != comparison`
}

func ordered(a, b float64) bool {
	return a < b
}

func ints(a, b int) bool {
	return a == b
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want `float == comparison`
}

func suppressed(a, b float64) bool {
	return a == b // skylint:ignore floateq comparing sentinel bit patterns
}

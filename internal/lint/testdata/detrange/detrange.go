// Fixture for the detrange analyzer. The package is named "core" so the
// analyzer treats it as a deterministic component.
package core

import "sort"

func bad(m map[int]string) []int {
	var keys []int
	for k := range m { // want `range over map m feeds append`
		keys = append(keys, k)
	}
	return keys
}

func sortedAfter(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func aggregateOnly(m map[int]string) int {
	total := 0
	for range m {
		total++
	}
	return total
}

func overSlice(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

func suppressed(m map[int]string) []string {
	var vals []string
	// skylint:ignore detrange order does not matter for this probe
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}

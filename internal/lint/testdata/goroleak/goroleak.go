// Package goroleak is the fixture for the goroleak analyzer: goroutines
// must be stoppable — unbuffered sends need a receiver on every path of
// the spawning function, and worker loops need an exit when a stop
// signal is in scope.
package goroleak

import "context"

func work() error { return nil }

func handle(int) {}

func consume(<-chan error) {}

// sendNoReceiveOnErrorPath leaks: when fail is true the function returns
// without ever receiving, and the goroutine blocks on the send forever.
func sendNoReceiveOnErrorPath(fail bool) error {
	errCh := make(chan error)
	go func() { // want `some path .* never receives`
		errCh <- work()
	}()
	if fail {
		return nil
	}
	return <-errCh
}

// sendAlwaysReceived is the clean version: the only path out receives.
func sendAlwaysReceived() error {
	errCh := make(chan error)
	go func() {
		errCh <- work()
	}()
	return <-errCh
}

// bufferedOK cannot block the sender: capacity 1 absorbs the result even
// when nobody receives.
func bufferedOK(fail bool) error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- work()
	}()
	if fail {
		return nil
	}
	return <-errCh
}

// escapeOK hands the channel to another function on the non-receiving
// path, which discharges the obligation here.
func escapeOK(fail bool) error {
	errCh := make(chan error)
	go func() {
		errCh <- work()
	}()
	if fail {
		consume(errCh)
		return nil
	}
	return <-errCh
}

// workerIgnoresStop leaks: a stop signal (ctx) is in scope, but the
// spawned loop has no reachable return or terminating call.
func workerIgnoresStop(ctx context.Context, jobs chan int) {
	go func() { // want `can never exit`
		for {
			select {
			case j := <-jobs:
				handle(j)
			}
		}
	}()
}

// workerHonorsStop exits through the ctx.Done case.
func workerHonorsStop(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case j := <-jobs:
				handle(j)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// processLifetimeLoop is deliberately unflagged: no context or done
// channel is in scope, so running until process exit is the contract.
func processLifetimeLoop(jobs chan int) {
	go func() {
		for {
			select {
			case j := <-jobs:
				handle(j)
			}
		}
	}()
}

// doneChannelStop exits when the done channel closes; the done channel
// itself is the stop signal that puts the function in scope.
func doneChannelStop(done chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case j := <-jobs:
				handle(j)
			case <-done:
				return
			}
		}
	}()
}

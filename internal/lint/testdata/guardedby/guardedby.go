// Fixture for the guardedby analyzer: accesses to annotated fields must
// follow a Lock/RLock on the named mutex within the same function, with
// the *Locked-suffix caller-holds-the-lock exemption.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // skylint:guardedby mu
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bad() int {
	return c.n // want `n is guarded by "mu"`
}

func (c *counter) badWrite() {
	c.n = 0 // want `n is guarded by "mu"`
}

func (c *counter) resetLocked() {
	c.n = 0
}

func (c *counter) suppressed() int {
	// skylint:ignore guardedby single-goroutine test helper
	return c.n
}

type rw struct {
	mu sync.RWMutex
	m  map[string]int // skylint:guardedby mu
}

func (r *rw) get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

type wrong struct {
	n int // skylint:guardedby lock // want `no such field`
}

func use(w *wrong) int { return w.n }

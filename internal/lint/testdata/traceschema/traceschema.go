// Package traceschema is the fixture for the traceschema analyzer: event
// constructors and literals must agree with the skylint:eventschema
// registry.
package traceschema

// EventType names a trace event, mirroring the telemetry package.
type EventType string

const (
	EventGood EventType = "good"
	EventBad  EventType = "bad"
	// EventOrphan is emitted somewhere but was never registered.
	EventOrphan EventType = "orphan" // want `has no skylint:eventschema entry`
)

// skylint:eventschema
var eventSchemas = map[EventType][]string{
	EventGood: {"round", "questions"},
	EventBad:  {"round", "missing_field"}, // want `no field with that json tag`
}

// Event is the fixture's wire format. The implicit fields (seq, time,
// type, tuple, a, b) are allowed on every event type.
type Event struct {
	Seq       int       `json:"seq,omitempty"`
	Type      EventType `json:"type"`
	Round     int       `json:"round,omitempty"`
	Questions int       `json:"questions,omitempty"`
	Extra     int       `json:"extra,omitempty"`
}

func newEvent(t EventType) Event {
	return Event{Type: t}
}

func sink(Event) {}

// GoodEvent assigns exactly the registered fields of "good".
func GoodEvent(round, questions int) Event {
	e := newEvent(EventGood)
	e.Round, e.Questions = round, questions
	return e
}

// MissingField forgets a registered field: consumers of "good" events
// would read a zero questions count.
func MissingField(round int) Event { // want `never assigns field "questions"`
	e := newEvent(EventGood)
	e.Round = round
	return e
}

// StrayField populates a field the schema does not list: a silent
// wire-format break.
func StrayField(round, questions, extra int) Event { // want `assigns field "extra"`
	e := newEvent(EventGood)
	e.Round, e.Questions, e.Extra = round, questions, extra
	return e
}

// emitLiterals exercises the Finish-phase literal check, which also
// covers Event literals in other packages.
func emitLiterals(round int) {
	sink(Event{Type: EventGood, Round: round})
	sink(Event{Type: EventGood, Extra: 1}) // want `sets field "extra"`
	sink(Event{Type: "mystery", Round: 1}) // want `no skylint:eventschema entry`
	sink(Event{Type: EventGood, Seq: 1})   // implicit field: clean
}

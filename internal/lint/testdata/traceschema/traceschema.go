// Package traceschema is the fixture for the traceschema analyzer: event
// constructors and literals must agree with the skylint:eventschema
// registry.
package traceschema

// EventType names a trace event, mirroring the telemetry package.
type EventType string

const (
	EventGood EventType = "good"
	EventBad  EventType = "bad"
	// EventOrphan is emitted somewhere but was never registered.
	EventOrphan EventType = "orphan" // want `has no skylint:eventschema entry`
	// The span pair mirrors telemetry's span_start/span_end: string ID
	// fields plus a map-typed attrs field, which must participate in the
	// exactly-the-registered-fields check like any scalar.
	EventSpanStart EventType = "span_start"
	EventSpanEnd   EventType = "span_end"
)

// skylint:eventschema
var eventSchemas = map[EventType][]string{
	EventGood:      {"round", "questions"},
	EventBad:       {"round", "missing_field"}, // want `no field with that json tag`
	EventSpanStart: {"trace_id", "span_id", "name"},
	EventSpanEnd:   {"trace_id", "span_id", "name", "attrs"},
}

// Event is the fixture's wire format. The implicit fields (seq, time,
// type, tuple, a, b) are allowed on every event type.
type Event struct {
	Seq       int               `json:"seq,omitempty"`
	Type      EventType         `json:"type"`
	Round     int               `json:"round,omitempty"`
	Questions int               `json:"questions,omitempty"`
	Extra     int               `json:"extra,omitempty"`
	TraceID   string            `json:"trace_id,omitempty"`
	SpanID    string            `json:"span_id,omitempty"`
	Name      string            `json:"name,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

func newEvent(t EventType) Event {
	return Event{Type: t}
}

func sink(Event) {}

// GoodEvent assigns exactly the registered fields of "good".
func GoodEvent(round, questions int) Event {
	e := newEvent(EventGood)
	e.Round, e.Questions = round, questions
	return e
}

// MissingField forgets a registered field: consumers of "good" events
// would read a zero questions count.
func MissingField(round int) Event { // want `never assigns field "questions"`
	e := newEvent(EventGood)
	e.Round = round
	return e
}

// StrayField populates a field the schema does not list: a silent
// wire-format break.
func StrayField(round, questions, extra int) Event { // want `assigns field "extra"`
	e := newEvent(EventGood)
	e.Round, e.Questions, e.Extra = round, questions, extra
	return e
}

// SpanEndEvent assigns exactly the registered span_end fields; the map
// assignment to Attrs counts like any scalar assignment.
func SpanEndEvent(traceID, spanID, name string, attrs map[string]string) Event {
	e := newEvent(EventSpanEnd)
	e.TraceID, e.SpanID, e.Name, e.Attrs = traceID, spanID, name, attrs
	return e
}

// SpanEndNoAttrs forgets the registered map field: consumers would read
// nil attrs on every span.
func SpanEndNoAttrs(traceID, spanID, name string) Event { // want `never assigns field "attrs"`
	e := newEvent(EventSpanEnd)
	e.TraceID, e.SpanID, e.Name = traceID, spanID, name
	return e
}

// SpanStartWithAttrs populates the map field on the start event, whose
// schema deliberately omits it (attrs are only final at span end).
func SpanStartWithAttrs(traceID, spanID, name string) Event { // want `assigns field "attrs"`
	e := newEvent(EventSpanStart)
	e.TraceID, e.SpanID, e.Name = traceID, spanID, name
	e.Attrs = map[string]string{"k": "v"}
	return e
}

// emitLiterals exercises the Finish-phase literal check, which also
// covers Event literals in other packages.
func emitLiterals(round int) {
	sink(Event{Type: EventGood, Round: round})
	sink(Event{Type: EventGood, Extra: 1}) // want `sets field "extra"`
	sink(Event{Type: "mystery", Round: 1}) // want `no skylint:eventschema entry`
	sink(Event{Type: EventGood, Seq: 1})   // implicit field: clean
	sink(Event{Type: EventSpanStart, TraceID: "t", SpanID: "s", Name: "run"})
	sink(Event{Type: EventSpanStart, Attrs: map[string]string{"k": "v"}}) // want `sets field "attrs"`
}

// --- metric half of the registry, mirroring telemetry.Registry ---

// Counter, Histogram and Registry are structural stand-ins for the
// telemetry package's metric types; the analyzer keys on a receiver named
// Registry, not on the import path.
type Counter struct{}

type CounterVec struct{}

type Histogram struct{}

type HistogramVec struct{}

type Registry struct{}

func (*Registry) NewCounter(name, help string) *Counter { return &Counter{} }
func (*Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}
func (*Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return &Histogram{}
}
func (*Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{}
}

// MetricRequests is a named constant: constant names resolve through
// consts just like event types.
const MetricRequests = "fixture_requests_total"

// skylint:metricschema
var metricSchemas = map[string][]string{
	MetricRequests:            {"route", "code"},
	"fixture_rounds_total":    {},
	"fixture_latency_seconds": {},
}

// registerMetrics exercises the Finish-phase registration-site check.
func registerMetrics(reg *Registry, dynamicName string, dynamicLabels []string) {
	reg.NewCounter("fixture_rounds_total", "rounds")
	reg.NewCounterVec(MetricRequests, "requests", "route", "code")
	reg.NewHistogram("fixture_latency_seconds", "latency", []float64{0.1, 1})
	reg.NewCounter("fixture_mystery_total", "unregistered")                     // want `has no skylint:metricschema entry`
	reg.NewCounterVec(MetricRequests, "requests", "code", "route")              // want `registered with labels \[code route\], but its schema says \[route code\]`
	reg.NewCounterVec("fixture_rounds_total", "rounds", "shard")                // want `registered with labels \[shard\], but its schema says \[\]`
	reg.NewHistogramVec("fixture_latency_seconds", "latency", nil, "route")     // want `registered with labels \[route\], but its schema says \[\]`
	reg.NewCounter(dynamicName, "computed name: out of static scope")           // clean: runtime's job
	reg.NewCounterVec(MetricRequests, "spread labels: skip", dynamicLabels...)  // clean: not statically known
	reg.NewCounterVec(MetricRequests, "computed label: skip", dynamicName, "c") // clean: runtime's job
}

// Package hot declares the hot-path root; everything it reaches lives
// in package kernel.
package hot

import "kernel"

// Root is the annotated entry point.
//
//skylint:hotpath
func Root(xs []int) []int {
	return kernel.Mid(xs)
}

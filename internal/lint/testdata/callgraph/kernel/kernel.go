// Package kernel is the callee side of the cross-package fixture: the
// hot root lives in package hot and reaches Leaf through Mid, so the
// reported chain crosses the package boundary and spans two hops.
package kernel

// Mid forwards to Leaf.
func Mid(xs []int) []int { return Leaf(xs) }

// Leaf allocates, two hops from the root in the other package.
func Leaf(xs []int) []int {
	return append(xs, 1) // want `append may grow its backing array; pre-size or reuse a buffer on hot path \(hot\.Root -> kernel\.Mid -> kernel\.Leaf\)`
}

package lint

import (
	"fmt"
	"strings"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/callgraph"
	"crowdsky/internal/lint/loader"
)

// DumpCallGraph loads the packages matching patterns under dir and
// renders the CHA call graph the interprocedural analyzers (hotalloc,
// recvcopy, purity) share, in callgraph.Dump's stable text form. It is
// the implementation behind `skylint -callgraph`, a debugging aid for
// answering "why does this function count as hot?" without staging a
// finding.
func DumpCallGraph(dir string, patterns []string, opts loader.Options) (string, error) {
	pkgs, err := loader.Load(dir, patterns, opts)
	if err != nil {
		return "", err
	}
	if len(pkgs) == 0 {
		return "", fmt.Errorf("lint: no packages matched %v", patterns)
	}
	prog := analysis.NewProgram()
	var b *callgraph.Builder
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Analyzer: HotAlloc,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			PkgPath:  pkg.PkgPath,
			Info:     pkg.Info,
		}
		pass.SetProgram(prog)
		b = callgraph.Shared(pass)
	}
	var sb strings.Builder
	b.Graph().Dump(&sb)
	return sb.String(), nil
}

// Package lint is skylint: a suite of repository-specific static checks
// enforcing CrowdSky's correctness contracts, which ordinary vetting
// cannot know about.
//
// The paper's guarantees are fragile cross-cutting invariants: the
// |DS|-ascending evaluation order of Lemma 3 must be deterministic (so a
// map iteration feeding an ordered slice is a latent bug), the crowd
// accounting in crowd.Stats must only be touched under its mutex, trace
// emission must stay nil-safe on the hot path, and dominance code must
// never compare attribute floats with == (the epsilon comparator exists
// for that). Each analyzer machine-checks one such contract; cmd/skylint
// runs them all, next to go vet, over the whole tree in CI.
//
// Suppression: a finding is silenced by a comment on the same line or the
// line directly above:
//
//	// skylint:ignore <analyzer>[,<analyzer>...] <reason>
//
// See docs/STATIC_ANALYSIS.md for the full annotation grammar.
package lint

import (
	"strings"

	"crowdsky/internal/lint/analysis"
)

// All returns every skylint analyzer, in stable order: the first
// generation of lexical checks, then the CFG/dataflow generation
// (lockorder through goroleak), the cross-package schema check, the
// interprocedural hot-path generation built on the call graph
// (hotalloc through purity), and the SSA value-flow generation
// (nilness through crowdtaint), which subsumed the original niltrace
// and guardedby analyzers.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetRange,
		FloatEq,
		ErrDrop,
		LockOrder,
		CtxLeak,
		WgBalance,
		GoroLeak,
		TraceSchema,
		HotAlloc,
		RecvCopy,
		Purity,
		Nilness,
		Lockset,
		CrowdTaint,
	}
}

// inScope reports whether the package belongs to one of the named
// components. It matches the final import-path segment and the package
// name, so both real packages ("crowdsky/internal/core") and analysistest
// fixture packages (loaded under their directory name) resolve the same
// way.
func inScope(pkgPath, pkgName string, components ...string) bool {
	last := pkgPath
	if i := strings.LastIndex(pkgPath, "/"); i >= 0 {
		last = pkgPath[i+1:]
	}
	for _, c := range components {
		if last == c || pkgName == c {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/callgraph"
)

// HotAlloc reports allocation sites reachable from //skylint:hotpath
// roots, with the call chain that reaches them.
//
// CrowdSky's pitch is that the machine part between crowd rounds is
// effectively free, so the steady-state kernels must not allocate per
// operation. This analyzer walks the interprocedural call graph from the
// annotated roots and flags the syntactic shapes that allocate (or are
// overwhelmingly likely to): unsized make of maps and channels, append
// (growth is amortized at best, per-op at worst), map and slice
// composite literals, closures that capture variables (the capture
// escapes with the closure), interface boxing at call sites, string
// concatenation, and range-over-map (the hidden iterator, plus
// nondeterminism the detrange analyzer polices separately).
//
// A deliberate allocation is waived at the site with
// "//skylint:alloc-ok <reason>" — reason mandatory — and the dynamic
// TestZeroAlloc suite backstops whatever static analysis cannot see.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "reports allocation sites reachable from //skylint:hotpath roots " +
		"(unsized make, append, map/slice literals, escaping closures, interface " +
		"boxing, string concatenation, range-over-map), with the reaching call chain",
	Run:    hotallocRun,
	Finish: hotallocFinish,
}

// hotPasses returns the analyzer-specific pkg-path → Pass map stored
// under key. Finish-phase reporting must go through a Pass whose
// Analyzer is the reporting analyzer and whose package owns the
// position, so each interprocedural analyzer keeps its own map.
func hotPasses(pass *analysis.Pass, key string) map[string]*analysis.Pass {
	m := pass.Program().Fact(key, func() any {
		return make(map[string]*analysis.Pass)
	}).(map[string]*analysis.Pass)
	m[pass.PkgPath] = pass
	return m
}

func hotallocRun(pass *analysis.Pass) error {
	callgraph.Shared(pass)
	hotPasses(pass, "hotalloc.passes")
	return nil
}

func hotallocFinish(prog *analysis.Program) error {
	b, ok := prog.Fact("callgraph.builder", func() any { return nil }).(*callgraph.Builder)
	if !ok || b == nil {
		return nil
	}
	passes := prog.Fact("hotalloc.passes", func() any {
		return make(map[string]*analysis.Pass)
	}).(map[string]*analysis.Pass)
	g := b.Graph()
	reportBadHotpath(g, passes)
	reach := g.Reachable(func(s callgraph.HotScope) bool {
		return s == callgraph.HotCompute || s == callgraph.HotServe
	})
	for _, n := range g.Nodes {
		if !reach.Has(n) || n.Body == nil {
			continue
		}
		pass := passes[n.PkgPath]
		if pass == nil {
			continue
		}
		sc := &allocScan{pass: pass, graph: g, chain: reach.ChainString(n)}
		sc.scan(n.Body)
	}
	return nil
}

// reportBadHotpath flags //skylint:hotpath directives whose scope
// argument is not "compute" or "serve"; a typo must not silently drop a
// root.
func reportBadHotpath(g *callgraph.Graph, passes map[string]*analysis.Pass) {
	for _, n := range g.Nodes {
		if n.Hot != callgraph.HotInvalid {
			continue
		}
		if pass := passes[n.PkgPath]; pass != nil {
			pass.Reportf(n.Pos, "unknown //skylint:hotpath scope %q (want nothing, \"compute\" or \"serve\")", n.HotRaw)
		}
	}
}

// allocScan walks one hot function body for allocation sites.
type allocScan struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
	chain string
}

func (sc *allocScan) scan(body ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// The literal itself is reported (as an escaping capture) at
			// its own site below via the parent's scan; its body belongs
			// to its own call-graph node.
			sc.closureSite(x)
			return false
		case *ast.CallExpr:
			sc.callSite(x)
		case *ast.CompositeLit:
			sc.compositeSite(x)
		case *ast.BinaryExpr:
			sc.concatSite(x)
		case *ast.RangeStmt:
			sc.rangeSite(x)
		}
		return true
	})
}

// report emits one finding unless an alloc-ok waiver covers the site.
// Waivers without a reason are themselves findings: an unexplained
// exemption tells a future reader nothing.
func (sc *allocScan) report(pos token.Pos, format string, args ...any) {
	if w := sc.graph.AllocOKAt(pos); w != nil {
		if w.Reason == "" {
			sc.pass.Reportf(w.Pos, "//skylint:alloc-ok needs a reason, like the baseline")
		}
		return
	}
	args = append(args, sc.chain)
	sc.pass.Reportf(pos, format+" on hot path (%s)", args...)
}

// callSite flags unsized makes, appends and interface boxing of the
// call's arguments.
func (sc *allocScan) callSite(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if bi, ok := sc.pass.Info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "make":
				sc.makeSite(call)
			case "append":
				sc.report(call.Pos(), "append may grow its backing array; pre-size or reuse a buffer")
			}
			return
		}
	}
	if tv, ok := sc.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: T(x) boxes when T is an interface and x is not
		// pointer-shaped.
		if t := sc.pass.Info.TypeOf(call); t != nil && len(call.Args) == 1 {
			sc.boxingAt(call.Args[0], t)
		}
		return
	}
	sig, _ := sc.pass.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...): no per-arg boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			sc.boxingAt(arg, pt)
		}
	}
}

// boxingAt flags arg when assigning it to target requires boxing: the
// target is an interface, the argument is a concrete type that is not
// pointer-shaped (pointers, maps, channels and funcs fit in the
// interface word without allocating; other values escape to the heap).
func (sc *allocScan) boxingAt(arg ast.Expr, target types.Type) {
	if !types.IsInterface(target) {
		return
	}
	at := sc.pass.Info.TypeOf(arg)
	if at == nil || types.IsInterface(at) {
		return
	}
	if tv, ok := sc.pass.Info.Types[arg]; ok && tv.Value != nil {
		return // untyped constants may be folded into static iface data
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return
	}
	if bt, ok := at.Underlying().(*types.Basic); ok && bt.Kind() == types.UnsafePointer {
		return
	}
	sc.report(arg.Pos(), "interface boxing of %s", types.TypeString(at, types.RelativeTo(sc.pass.Pkg)))
}

func (sc *allocScan) makeSite(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return // sized make: capacity was thought about
	}
	t := sc.pass.Info.TypeOf(call)
	if t == nil {
		return
	}
	sc.report(call.Pos(), "unsized make(%s); hint a capacity", types.TypeString(t, types.RelativeTo(sc.pass.Pkg)))
}

func (sc *allocScan) compositeSite(lit *ast.CompositeLit) {
	t := sc.pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		sc.report(lit.Pos(), "map literal allocates")
	case *types.Slice:
		sc.report(lit.Pos(), "slice literal allocates")
	}
}

// closureSite flags function literals that capture enclosing variables:
// the captures escape to the heap with the closure. Capture-free
// literals compile to a static function value and are left alone.
func (sc *allocScan) closureSite(lit *ast.FuncLit) {
	if capture := sc.freeVar(lit); capture != "" {
		sc.report(lit.Pos(), "closure captures %q and escapes; hoist it or pass parameters", capture)
	}
}

// freeVar returns the name of one variable the literal captures from an
// enclosing function, or "".
func (sc *allocScan) freeVar(lit *ast.FuncLit) string {
	pkgScope := sc.pass.Pkg.Scope()
	var found string
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := sc.pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pkgScope || v.Parent() == types.Universe {
			return true // package-level: shared, not captured
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		found = v.Name()
		return false
	})
	return found
}

func (sc *allocScan) concatSite(be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	t := sc.pass.Info.TypeOf(be)
	if t == nil {
		return
	}
	bt, ok := t.Underlying().(*types.Basic)
	if !ok || bt.Info()&types.IsString == 0 {
		return
	}
	if tv, ok := sc.pass.Info.Types[be]; ok && tv.Value != nil {
		return // constant-folded at compile time
	}
	sc.report(be.OpPos, "string concatenation allocates; use a reused buffer")
}

func (sc *allocScan) rangeSite(rs *ast.RangeStmt) {
	t := sc.pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		sc.report(rs.For, "range over map allocates its iterator (and is nondeterministic)")
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/callgraph"
	"crowdsky/internal/lint/analysis/ssa"
)

// CrowdTaint is the taint analyzer for crowd-facing inputs. CrowdSky's
// serve path trusts nothing a worker sends: HTTP query parameters,
// header values, and decoded judgment payloads are attacker-controlled,
// and journal records replayed at recovery time were written under a
// previous (possibly crashed mid-write) run. The analyzer tracks that
// data through the SSA value graph — field loads, string formatting,
// conversions, helper calls (via bottom-up call-graph summaries) — and
// reports when it reaches one of three sink shapes unsanitized:
//
//   - a filesystem path argument of an os.* call (path traversal);
//   - a slice/array index with no dominating upper-bound check (panic
//     a hostile client can trigger at will);
//   - a string key stored into a persistent map — a struct field or
//     package-level map, e.g. the idempotency and per-worker accounting
//     maps — letting one client grow server state without bound.
//
// Sanitizers cut the flow: filepath.Base / path.Base, and any function
// whose doc comment carries a "skylint:sanitizer" annotation (the
// function promises to validate or canonicalize its input, typically
// rejecting the request otherwise). Bounds checks are recognized
// path-sensitively through SSA pi nodes: `if i < 0 || i >= len(s) {
// return }` clears the unbounded bit on the fallthrough edge.
var CrowdTaint = &analysis.Analyzer{
	Name: "crowdtaint",
	Doc: "reports crowd-controlled data (HTTP request fields, worker judgment " +
		"payloads, replayed journal records) flowing into filesystem paths, " +
		"unchecked slice indexes, or persistent map keys without passing a " +
		"skylint:sanitizer-annotated validator",
	Run:    crowdtaintRun,
	Finish: crowdtaintFinish,
}

func crowdtaintRun(pass *analysis.Pass) error {
	callgraph.Shared(pass)
	hotPasses(pass, "crowdtaint.passes")
	sanitizers := pass.Program().Fact("crowdtaint.sanitizers", func() any {
		return make(map[string]bool)
	}).(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.Contains(c.Text, "skylint:sanitizer") {
					if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
						sanitizers[callgraph.FuncID(fn)] = true
					}
					break
				}
			}
		}
	}
	return nil
}

func crowdtaintFinish(prog *analysis.Program) error {
	b, ok := prog.Fact("callgraph.builder", func() any { return nil }).(*callgraph.Builder)
	if !ok || b == nil {
		return nil
	}
	passes := prog.Fact("crowdtaint.passes", func() any {
		return make(map[string]*analysis.Pass)
	}).(map[string]*analysis.Pass)
	sanitizers := prog.Fact("crowdtaint.sanitizers", func() any {
		return make(map[string]bool)
	}).(map[string]bool)
	g := b.Graph()
	cache := sharedSSA(prog)

	// Phase 1: bottom-up per-function result-taint summaries, so taint
	// minted inside a helper (a journal read, a formatted composite of a
	// tainted field) surfaces at its call sites. Argument-to-result flow
	// is handled at the call site by joining argument taint directly, so
	// the summary only has to cover taint the callee generates.
	summaries := g.BottomUp(func(n *callgraph.Node, get func(*callgraph.Node) any) any {
		f := cache.Func(n)
		if f == nil || n.Pass == nil {
			return taintSummaryUnknown
		}
		tc := &taintCtx{
			f:          f,
			info:       n.Pass.Info,
			sanitizers: sanitizers,
			summaryOf: func(fn *types.Func) string {
				if fn == nil {
					return taintSummaryUnknown
				}
				if cn := g.Lookup(callgraph.FuncID(fn)); cn != nil {
					s, _ := get(cn).(string)
					return s // "" while cn's SCC is still iterating: bottom
				}
				return taintSummaryUnknown
			},
		}
		return encodeTaintSummary(nodeSignature(n), f, tc.solve())
	})
	finalSummary := func(fn *types.Func) string {
		if fn == nil {
			return taintSummaryUnknown
		}
		if n := g.Lookup(callgraph.FuncID(fn)); n != nil {
			if s, ok := summaries[n].(string); ok {
				return s
			}
		}
		return taintSummaryUnknown
	}

	// Phase 2: re-solve against final summaries and walk the sinks, in
	// node ID order for deterministic diagnostics.
	for _, n := range g.Nodes {
		pass := passes[n.PkgPath]
		if pass == nil || n.Body == nil {
			continue
		}
		f := cache.Func(n)
		if f == nil {
			continue
		}
		tc := &taintCtx{f: f, info: pass.Info, sanitizers: sanitizers, summaryOf: finalSummary}
		c := &crowdtaintCheck{pass: pass, f: f, facts: tc.solve()}
		c.walk(n.Body)
	}
	return nil
}

// ---------------------------------------------------------------------
// Intraprocedural solve

// taintCtx carries what the transfer function needs beyond the value
// graph itself: type info for dispatching on expression shape, the
// sanitizer set, and callee summaries.
type taintCtx struct {
	f          *ssa.Func
	info       *types.Info
	sanitizers map[string]bool
	summaryOf  func(*types.Func) string
}

func (tc *taintCtx) solve() []ssa.Taint {
	p := ssa.Problem[ssa.Taint]{
		Join:     ssa.JoinTaint,
		Refine:   ssa.RefineTaint,
		Transfer: tc.transfer,
	}
	return p.Solve(tc.f)
}

func (tc *taintCtx) transfer(v *ssa.Value, get func(*ssa.Value) ssa.Taint) ssa.Taint {
	switch v.Kind {
	case ssa.KParam:
		// The root source: an *http.Request parameter. Everything read
		// off it (URL, Header, Body, form values) inherits the taint by
		// propagation below.
		if v.Var != nil && isHTTPRequest(v.Var.Obj.Type()) {
			return ssa.Tainted | ssa.Unbounded
		}
		return 0
	case ssa.KCall:
		return tc.call(v, get)
	case ssa.KExtract:
		if len(v.Args) == 1 {
			return get(v.Args[0])
		}
		return 0
	case ssa.KOutDef:
		// Decode(&body)-style out-parameter definition: the variable is
		// as tainted as the call that filled it.
		if len(v.Args) == 1 {
			return get(v.Args[0])
		}
		return 0
	case ssa.KExpr:
		return tc.expr(v, get)
	default: // KConst, KUndef (KPhi/KPi are the solver's)
		return 0
	}
}

func (tc *taintCtx) call(v *ssa.Value, get func(*ssa.Value) ssa.Taint) ssa.Taint {
	if v.IsConvert && len(v.Args) == 1 {
		return get(v.Args[0]) // conversions preserve taint
	}
	if v.Builtin != "" {
		if v.Builtin == "append" {
			out := ssa.Taint(0)
			for _, a := range v.Args {
				out |= get(a)
			}
			return out
		}
		return 0 // len, cap, make, new: results are not crowd data
	}
	if v.Callee != nil {
		if tc.isSanitizer(v.Callee) {
			return 0
		}
		if t, ok := sourceTaint(v.Callee); ok {
			return t
		}
	}
	// Default: calls propagate — the result is as tainted as the worst
	// of the arguments and the receiver (fmt.Sprintf over a tainted
	// field, strconv over a tainted string, strings.TrimSpace, ...).
	out := ssa.Taint(0)
	for _, a := range v.Args {
		out |= get(a)
	}
	if call, ok := v.Node.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if xv := tc.valueOf(sel.X); xv != nil {
				out |= get(xv)
			}
		}
	}
	if v.Callee != nil {
		out |= resultTaint(tc.summaryOf(v.Callee))
	}
	return out
}

// expr dispatches an untracked expression on its syntactic shape. The
// load-bearing cases are the container reads: an index read takes the
// taint of the container, never of the index (looking a tainted key up
// in a trusted map yields trusted data), and an untracked selector read
// takes the taint of its base (body.Worker is as tainted as body).
func (tc *taintCtx) expr(v *ssa.Value, get func(*ssa.Value) ssa.Taint) ssa.Taint {
	switch node := v.Node.(type) {
	case *ast.IndexExpr:
		if xv := tc.valueOf(node.X); xv != nil {
			return get(xv)
		}
		return 0
	case *ast.SliceExpr:
		if xv := tc.valueOf(node.X); xv != nil {
			return get(xv)
		}
		return 0
	case *ast.SelectorExpr:
		if xv := tc.valueOf(node.X); xv != nil {
			return get(xv)
		}
		return 0
	case *ast.RangeStmt:
		// A range key/value variable, Args[0] the ranged container.
		// Values inherit the container's taint wholesale; keys are
		// in-bounds over that container by construction, so the
		// unbounded bit does not survive onto them.
		out := ssa.Taint(0)
		for _, a := range v.Args {
			out |= get(a)
		}
		if key, ok := node.Key.(*ast.Ident); ok && v.Var != nil && tc.info.Defs[key] == v.Var.Obj {
			out &^= ssa.Unbounded
		}
		return out
	case *ast.BinaryExpr, *ast.UnaryExpr, *ast.StarExpr, *ast.CompositeLit, *ast.TypeAssertExpr:
		out := ssa.Taint(0)
		for _, a := range v.Args {
			out |= get(a)
		}
		return out
	default:
		_ = node
		return 0 // opaque: globals, captures, multi-assign targets
	}
}

func (tc *taintCtx) valueOf(e ast.Expr) *ssa.Value {
	if v := tc.f.ValueOf[ast.Unparen(e)]; v != nil {
		return v
	}
	return tc.f.ValueOf[e]
}

// isSanitizer reports whether a call to fn launders its input: either
// annotated skylint:sanitizer, or one of the blessed path canonicalizers.
func (tc *taintCtx) isSanitizer(fn *types.Func) bool {
	if tc.sanitizers[callgraph.FuncID(fn)] {
		return true
	}
	if pkg := fn.Pkg(); pkg != nil && fn.Name() == "Base" {
		switch pkg.Path() {
		case "path/filepath", "path":
			return true
		}
	}
	return false
}

// sourceTaint recognizes calls that mint crowd-controlled data outside
// the *http.Request parameter flow: journal reads. Replayed records
// were produced by a previous process — possibly truncated mid-write —
// so recovery code must treat them like network input.
func sourceTaint(fn *types.Func) (ssa.Taint, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0, false
	}
	path := pkg.Path()
	if path != "journal" && !strings.HasSuffix(path, "/journal") {
		return 0, false
	}
	switch fn.Name() {
	case "Read", "Recover":
		return ssa.Tainted | ssa.Unbounded, true
	}
	return 0, false
}

func isHTTPRequest(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named := analysis.NamedOf(p.Elem())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// ---------------------------------------------------------------------
// Summaries

// A taint summary is one byte per result: '0'+Taint bitmask joined over
// the function's return statements. taintSummaryUnknown marks functions
// outside the program; since external callees are handled by argument
// propagation at the call site, unknown decodes as clean.
const taintSummaryUnknown = "?"

// resultTaint decodes a summary as the join over all results. Per-index
// precision is not worth the bookkeeping here: multi-result functions
// returning a mix of tainted and clean values are rare, and the join
// only ever errs toward reporting.
func resultTaint(s string) ssa.Taint {
	if s == "" || s == taintSummaryUnknown {
		return 0
	}
	out := ssa.Taint(0)
	for i := 0; i < len(s); i++ {
		out |= ssa.Taint(s[i] - '0')
	}
	return out
}

func encodeTaintSummary(sig *types.Signature, f *ssa.Func, facts []ssa.Taint) string {
	width := 0
	if sig != nil {
		width = sig.Results().Len()
	}
	for _, vals := range f.ReturnVals {
		if len(vals) > width {
			width = len(vals)
		}
	}
	if width == 0 {
		return "" // nothing flows out; decodes as clean
	}
	states := make([]ssa.Taint, width)
	for _, vals := range f.ReturnVals {
		for i, v := range vals {
			if v == nil || i >= width {
				continue
			}
			states[i] |= facts[v.ID]
		}
	}
	buf := make([]byte, width)
	for i, s := range states {
		buf[i] = '0' + byte(s)
	}
	return string(buf)
}

// ---------------------------------------------------------------------
// Sink walk

type crowdtaintCheck struct {
	pass  *analysis.Pass
	f     *ssa.Func
	facts []ssa.Taint
}

// walk visits one function unit's sinks. Nested literals are their own
// call-graph nodes and are skipped here.
func (c *crowdtaintCheck) walk(body ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.pathSink(x)
		case *ast.IndexExpr:
			c.indexSink(x)
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				c.mapKeySink(lhs)
			}
		case *ast.IncDecStmt:
			c.mapKeySink(x.X)
		}
		return true
	})
}

func (c *crowdtaintCheck) taintOf(e ast.Expr) ssa.Taint {
	v := c.f.ValueOf[ast.Unparen(e)]
	if v == nil {
		v = c.f.ValueOf[e]
	}
	if v == nil {
		return 0
	}
	return c.facts[v.ID]
}

// osPathArgs maps os functions to the indices of their path arguments.
var osPathArgs = map[string][]int{
	"Open": {0}, "Create": {0}, "OpenFile": {0}, "Remove": {0},
	"RemoveAll": {0}, "Mkdir": {0}, "MkdirAll": {0}, "ReadFile": {0},
	"WriteFile": {0}, "Stat": {0}, "Lstat": {0}, "Truncate": {0},
	"Chdir": {0}, "ReadDir": {0}, "DirFS": {0},
	"Rename": {0, 1}, "Symlink": {0, 1}, "Link": {0, 1},
}

// pathSink flags crowd data used as an os.* path: a worker-chosen name
// containing separators or ".." escapes whatever directory the server
// meant to confine it to.
func (c *crowdtaintCheck) pathSink(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := c.pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "os" {
		return
	}
	idxs, ok := osPathArgs[sel.Sel.Name]
	if !ok {
		return
	}
	for _, i := range idxs {
		if i >= len(call.Args) {
			continue
		}
		arg := call.Args[i]
		if c.taintOf(arg)&ssa.Tainted != 0 {
			c.pass.Reportf(arg.Pos(),
				"%s is crowd-controlled and reaches os.%s as a filesystem path; "+
					"a hostile worker can traverse outside the intended directory — "+
					"apply filepath.Base or a skylint:sanitizer helper first",
				analysis.ExprString(arg), sel.Sel.Name)
		}
	}
}

// indexSink flags slice/array indexing by crowd data with no dominating
// bounds check (the Unbounded bit survives only if no `< len(...)`-style
// comparison refined the value on the path here).
func (c *crowdtaintCheck) indexSink(x *ast.IndexExpr) {
	t := c.pass.TypeOf(x.X)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
	case *types.Pointer:
		if _, ok := u.Elem().Underlying().(*types.Array); !ok {
			return
		}
	default:
		return
	}
	const need = ssa.Tainted | ssa.Unbounded
	if c.taintOf(x.Index)&need == need {
		c.pass.Reportf(x.Index.Pos(),
			"%s is crowd-controlled and indexes %s without a bounds check; "+
				"a hostile worker can panic the server — compare it against len(...) first",
			analysis.ExprString(x.Index), analysis.ExprString(x.X))
	}
}

// mapKeySink flags crowd-controlled string keys written into persistent
// maps. A map rooted in a struct field or package-level variable outlives
// the request, so an unvalidated key lets one client insert arbitrarily
// many entries (and arbitrary bytes) into long-lived server state.
func (c *crowdtaintCheck) mapKeySink(lhs ast.Expr) {
	ie, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	mt, ok := typeAsMap(c.pass.TypeOf(ie.X))
	if !ok {
		return
	}
	if b, ok := mt.Key().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return // growth via non-string keys needs a different fix; out of scope
	}
	base, persistent := c.persistentBase(ie.X)
	if !persistent {
		return
	}
	if c.taintOf(ie.Index)&ssa.Tainted != 0 {
		c.pass.Reportf(ie.Index.Pos(),
			"%s is crowd-controlled and is stored as a key of persistent map %s; "+
				"a hostile worker can grow server state without bound — validate it "+
				"with a skylint:sanitizer helper before storing",
			analysis.ExprString(ie.Index), base)
	}
}

func typeAsMap(t types.Type) (*types.Map, bool) {
	if t == nil {
		return nil, false
	}
	m, ok := t.Underlying().(*types.Map)
	return m, ok
}

// persistentBase strips index layers off a map expression and reports
// whether the root is long-lived state: a struct field or a
// package-level variable. Request-local scratch maps are not sinks.
func (c *crowdtaintCheck) persistentBase(e ast.Expr) (string, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := c.pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return analysis.ExprString(x), true
			}
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := c.pass.Info.Uses[id].(*types.PkgName); isPkg {
					return analysis.ExprString(x), true // qualified package-level var
				}
			}
			return "", false
		case *ast.Ident:
			v, ok := c.pass.Info.Uses[x].(*types.Var)
			if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return x.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

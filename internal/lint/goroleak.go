package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdsky/internal/bitset"
	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/cfg"
)

// GoroLeak hunts the two goroutine-leak shapes that matter for a
// long-running marketplace process, where a leaked goroutine is memory
// that never comes back and a wedged worker that never repolls:
//
//  1. A goroutine sending on an unbuffered local channel whose receive is
//     skipped on some path of the spawning function (the classic
//     "errCh := make(chan error); go ...; early return" leak): proven
//     with a must-dataflow pass — a receive from (or escape of) the
//     channel must happen on every path from entry to return.
//
//  2. A `go func() { for { select {...} } }` worker loop with no way out —
//     no reachable return, labeled break or terminating call — spawned in
//     a function that visibly has a stop signal (a context.Context or a
//     struct{} channel in scope). The signal exists; the loop ignores it.
//     Process-lifetime loops in functions with no stop signal (a main
//     without contexts) are deliberately not flagged.
var GoroLeak = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "goroutines must be stoppable: channel sends need a receiver on " +
		"every path, and for/select worker loops need an exit when a stop " +
		"signal (context or done channel) is in scope",
	Run: runGoroLeak,
}

func runGoroLeak(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroLeakInFunc(pass, fd)
		}
	}
	return nil
}

func checkGoroLeakInFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	stopSignal := hasStopSignal(pass, fd)

	// Unbuffered channels declared in fd, and the goroutines sending on them.
	type sendSite struct {
		ch   types.Object
		g    *ast.GoStmt
		send *ast.SendStmt
	}
	var sends []sendSite

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		// Shape 2: an inescapable loop where a stop signal exists.
		if stopSignal != "" {
			cg := cfg.New(fl.Body)
			if !canTerminate(cg) {
				pass.Reportf(g.Pos(),
					"goroutine can never exit (no reachable return or terminating call) although %s is in scope; add a stop case (e.g. <-ctx.Done() or a done channel) to the loop",
					stopSignal)
			}
		}
		// Shape 1: collect sends on enclosing-function channels.
		ast.Inspect(fl.Body, func(x ast.Node) bool {
			send, ok := x.(*ast.SendStmt)
			if !ok {
				return true
			}
			id, ok := send.Chan.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj != nil && isUnbufferedLocalChan(pass, fd, obj) {
				sends = append(sends, sendSite{ch: obj, g: g, send: send})
			}
			return true
		})
		return true
	})

	if len(sends) == 0 {
		return
	}

	g := cfg.New(fd.Body)
	if !g.Reachable(g.Entry)[g.Exit.Index] {
		return
	}
	flow := cfg.Flow{
		NFacts: len(sends),
		Meet:   cfg.Must,
		Gen: func(b *cfg.Block) bitset.Set {
			var gen bitset.Set
			for i, s := range sends {
				if blockConsumesChan(pass, b, s.ch, s.g) {
					if gen == nil {
						gen = bitset.New(len(sends))
					}
					gen.Add(i)
				}
			}
			return gen
		},
	}
	res := flow.Solve(g)
	atExit := res.In[g.Exit.Index]
	for i, s := range sends {
		if !atExit.Has(i) {
			pass.Reportf(s.g.Pos(),
				"goroutine sends on unbuffered channel %s, but some path out of %s never receives from it: the send blocks forever and the goroutine leaks; receive on every path, buffer the channel, or select on a done signal in the sender",
				s.ch.Name(), fd.Name.Name)
		}
	}
}

// canTerminate reports whether the unit behind g has any way to stop
// running: a reachable exit block (some return path) or a reachable
// terminating call (panic, os.Exit, log.Fatal*).
func canTerminate(g *cfg.Graph) bool {
	live := g.Reachable(g.Entry)
	if live[g.Exit.Index] {
		return true
	}
	for _, b := range g.Blocks {
		if !live[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && cfg.IsTerminatingCall(es.X) {
				return true
			}
		}
	}
	return false
}

// blockConsumesChan reports whether block b discharges the receive
// obligation for channel obj: a receive expression (<-ch, for-range ch,
// a select case), closing the channel, or letting it escape (passing it
// to a call or returning it). Nodes inside the sending goroutine's own
// literal are skipped — the sender cannot unblock itself.
func blockConsumesChan(pass *analysis.Pass, b *cfg.Block, obj types.Object, sender *ast.GoStmt) bool {
	found := false
	usesObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.Info.Uses[id] == obj
	}
	for _, n := range b.Nodes {
		if n == sender {
			continue
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if x == sender {
				return false
			}
			switch x := x.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && usesObj(x.X) {
					found = true
				}
			case *ast.RangeStmt:
				if usesObj(x.X) {
					found = true
				}
			case *ast.CallExpr:
				// close(ch) or ch handed to another function.
				for _, arg := range x.Args {
					if usesObj(arg) {
						found = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if usesObj(r) {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isUnbufferedLocalChan reports whether obj is a channel variable declared
// in fd via make(chan T) with no capacity (or explicit 0) — the only case
// where an unreceived send provably blocks forever.
func isUnbufferedLocalChan(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
		return false
	}
	if v.Pos() < fd.Body.Pos() || v.Pos() >= fd.Body.End() {
		return false
	}
	// Find the declaring assignment and require an unbuffered make.
	unbuffered := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.Info.Defs[id] != obj || i >= len(as.Rhs) {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "make" {
					if len(call.Args) == 1 {
						unbuffered = true
					} else if len(call.Args) == 2 {
						if tv, ok := pass.Info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
							unbuffered = true
						}
					}
				}
			}
		}
		return true
	})
	return unbuffered
}

// hasStopSignal returns a short description of the first stop signal in
// fd's scope — a context.Context or a struct{} channel among its
// parameters or body declarations — or "" when none exists.
func hasStopSignal(pass *analysis.Pass, fd *ast.FuncDecl) string {
	signal := ""
	consider := func(obj types.Object) {
		if obj == nil || signal != "" {
			return
		}
		t := obj.Type()
		if isContextType(t) {
			signal = "context " + obj.Name()
			return
		}
		if ch, ok := t.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				signal = "done channel " + obj.Name()
			}
		}
	}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			for _, name := range p.Names {
				consider(pass.Info.Defs[name])
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if signal != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				consider(obj)
			}
		}
		return true
	})
	return signal
}

// isContextType reports whether t is context.Context (or a fixture-local
// interface named Context).
func isContextType(t types.Type) bool {
	n := analysis.NamedOf(t)
	if n == nil || n.Obj().Name() != "Context" {
		return false
	}
	_, isIface := n.Underlying().(*types.Interface)
	return isIface
}

package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module on disk: files maps
// module-relative paths to contents. Returns the module root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadBuildTags checks that package enumeration respects build
// constraints: a file excluded by its //go:build line must not reach the
// parser, so analyzers never see code the compiler would not.
func TestLoadBuildTags(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tagmod\n\ngo 1.21\n",
		"a.go":   "package tagmod\n\nfunc Kept() int { return 1 }\n",
		"b.go":   "//go:build never_enabled\n\npackage tagmod\n\nfunc Dropped() int { return undefinedOnPurpose }\n",
	})
	pkgs, err := Load(dir, []string{"."}, Options{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (build-constrained file must be excluded)", len(pkg.Files))
	}
	if pkg.Pkg.Scope().Lookup("Kept") == nil {
		t.Error("Kept not in package scope")
	}
	if pkg.Pkg.Scope().Lookup("Dropped") != nil {
		t.Error("Dropped leaked into the package scope despite its build tag")
	}
}

// TestLoadAllowErrors covers the partial-result path: a package that
// fails to type-check is fatal by default, but with AllowErrors the
// loader keeps the syntax trees and whatever the checker recovered, and
// surfaces the complaints in Package.TypeErrors.
func TestLoadAllowErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module brokenmod\n\ngo 1.21\n",
		"a.go":   "package brokenmod\n\nfunc Fine() int { return 1 }\n\nfunc Broken() int { return notDefined }\n",
	})
	if _, err := Load(dir, []string{"."}, Options{}); err == nil {
		t.Fatal("strict Load of a package with type errors succeeded, want error")
	} else if !strings.Contains(err.Error(), "notDefined") {
		t.Fatalf("strict Load error does not mention the bad identifier: %v", err)
	}

	pkgs, err := Load(dir, []string{"."}, Options{AllowErrors: true})
	if err != nil {
		t.Fatalf("Load with AllowErrors: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("partial package has no TypeErrors recorded")
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("partial package has %d files, want 1", len(pkg.Files))
	}
	// The checker recovers everything not touched by the error.
	if pkg.Pkg == nil || pkg.Pkg.Scope().Lookup("Fine") == nil {
		t.Error("recovered scope is missing the healthy declaration Fine")
	}
}

// TestLoadVendoredImport checks resolution through a vendor directory:
// with vendor/ present the go toolchain resolves the dependency there
// automatically, and the source importer must type-check the vendored
// sources so the importing package sees real object information.
func TestLoadVendoredImport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module vendmod\n\ngo 1.21\n\nrequire example.com/dep v0.0.0-00010101000000-000000000000\n",
		"a.go": "package vendmod\n\nimport \"example.com/dep\"\n\n" +
			"func Use() int { return dep.Answer() }\n",
		"vendor/modules.txt": "# example.com/dep v0.0.0-00010101000000-000000000000\n" +
			"## explicit; go 1.21\nexample.com/dep\n",
		"vendor/example.com/dep/dep.go": "package dep\n\nfunc Answer() int { return 42 }\n",
	})
	pkgs, err := Load(dir, []string{"."}, Options{})
	if err != nil {
		t.Fatalf("Load with vendored dependency: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	use := pkg.Pkg.Scope().Lookup("Use")
	if use == nil {
		t.Fatal("Use not in package scope")
	}
	depPkg := pkg.Pkg.Imports()
	found := false
	for _, p := range depPkg {
		if p.Path() == "example.com/dep" {
			found = true
			if p.Scope().Lookup("Answer") == nil {
				t.Error("vendored dep type-checked without its exported Answer")
			}
		}
	}
	if !found {
		t.Errorf("example.com/dep not among imports %v", depPkg)
	}
}

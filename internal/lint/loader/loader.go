// Package loader loads and type-checks Go packages for the skylint
// analyzers without golang.org/x/tools: package enumeration shells out to
// "go list -json" (the toolchain is the one dependency the repository
// already requires) and type checking uses the standard library's source
// importer, which resolves both standard-library and module-local imports
// from source, fully offline.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	// TypeErrors holds the type-checker's complaints when the package
	// was loaded with Options.AllowErrors; empty for a clean package.
	TypeErrors []string
}

// Options selects what Load feeds the type checker.
type Options struct {
	// Tests includes each package's in-package _test.go files
	// (TestGoFiles), so the flow-sensitive concurrency analyzers can audit
	// test goroutines and context use too. External test packages
	// (XTestGoFiles, package foo_test) are not loaded: they form a second
	// package over the same directory, which the shared-FileSet pipeline
	// does not model.
	Tests bool

	// AllowErrors returns a partial Package for sources that fail to
	// type-check instead of failing the whole load: the syntax trees,
	// the shared FileSet and whatever type information the checker
	// recovered are kept, and the errors land in Package.TypeErrors.
	// The analyzer driver stays strict (a broken tree should fail CI
	// loudly, not silently under-report); tooling that inspects
	// work-in-progress code opts in.
	AllowErrors bool
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath  string
	Name        string
	Dir         string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
}

// Load enumerates the packages matching patterns (e.g. "./...") relative
// to dir, parses their sources and type-checks them. All packages share
// one FileSet and one source importer, so the standard library is
// type-checked once per process, not once per package.
func Load(dir string, patterns []string, opts Options) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newVendorAwareImporter(fset)
	var out []*Package
	for _, e := range entries {
		pkg, err := loadOne(fset, imp, e, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// vendorAwareImporter works around a long-standing gap in the standard
// source importer: go/build resolves module imports by shelling out to
// the go command with vendoring disabled, so packages that only exist
// under a module's vendor/ tree fail to import even though `go build`
// compiles them fine. The wrapper tries the source importer first (the
// fast path for the standard library and module-cache packages) and, on
// failure, asks `go list` — which does honor vendor/ — where the package
// lives, then type-checks those sources itself.
type vendorAwareImporter struct {
	fset  *token.FileSet
	base  types.ImporterFrom
	cache map[string]*types.Package
}

func newVendorAwareImporter(fset *token.FileSet) *vendorAwareImporter {
	return &vendorAwareImporter{
		fset:  fset,
		base:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache: make(map[string]*types.Package),
	}
}

func (v *vendorAwareImporter) Import(path string) (*types.Package, error) {
	return v.ImportFrom(path, "", 0)
}

func (v *vendorAwareImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	pkg, err := v.base.ImportFrom(path, srcDir, mode)
	if err == nil {
		return pkg, nil
	}
	if cached, ok := v.cache[path]; ok {
		return cached, nil
	}
	entries, listErr := goList(srcDir, []string{path})
	if listErr != nil || len(entries) != 1 || len(entries[0].GoFiles) == 0 {
		return nil, err // the source importer's error names the real problem
	}
	e := entries[0]
	files := make([]string, len(e.GoFiles))
	for i, f := range e.GoFiles {
		files[i] = filepath.Join(e.Dir, f)
	}
	// Recursive imports of the vendored package come back through v, so
	// vendored dependencies of vendored dependencies resolve too.
	loaded, cErr := typecheck(v.fset, v, path, e.Dir, files)
	if cErr != nil {
		return nil, cErr
	}
	v.cache[path] = loaded.Pkg
	return loaded.Pkg, nil
}

// LoadDir parses every .go file directly inside dir as one package and
// type-checks it with a fresh source importer. Used by the analysistest
// fixture runner, where fixtures are plain directories outside the module
// package graph. pkgPath becomes the package's reported import path.
func LoadDir(dir, pkgPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("loader: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return typecheck(fset, imp, pkgPath, "", matches)
}

// LoadDirs loads the named subdirectories of root as one multi-package
// fixture: every .go file directly inside each subdirectory forms a
// package whose import path is the subdirectory name, and the packages
// may import each other by that name ("kernel" imports nothing, "hot"
// imports "kernel"). All packages share one FileSet, so cross-package
// positions stay comparable — the property the interprocedural
// analyzers' tests rely on.
//
// Packages are type-checked in local-dependency order (discovered from
// the import clauses), through an importer that serves already-checked
// fixture packages first and falls back to the source importer for the
// standard library.
func LoadDirs(root string, dirs []string) ([]*Package, error) {
	fset := token.NewFileSet()
	chain := &chainImporter{
		local:    make(map[string]*types.Package, len(dirs)),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	names := make(map[string]bool, len(dirs))
	for _, d := range dirs {
		names[d] = true
	}
	// Discover local imports with an imports-only parse, then order the
	// packages so dependencies are checked before their importers.
	deps := make(map[string][]string, len(dirs))
	files := make(map[string][]string, len(dirs))
	for _, d := range dirs {
		matches, err := filepath.Glob(filepath.Join(root, d, "*.go"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("loader: no .go files in %s", filepath.Join(root, d))
		}
		files[d] = matches
		for _, f := range matches {
			parsed, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
			if err != nil {
				return nil, fmt.Errorf("loader: %v", err)
			}
			for _, imp := range parsed.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err == nil && names[path] {
					deps[d] = append(deps[d], path)
				}
			}
		}
	}
	order, err := topoSort(dirs, deps)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, d := range order {
		pkg, err := typecheck(fset, chain, d, filepath.Join(root, d), files[d])
		if err != nil {
			return nil, err
		}
		chain.local[d] = pkg.Pkg
		out = append(out, pkg)
	}
	return out, nil
}

// chainImporter resolves fixture packages by name before delegating to
// the source importer.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.local[path]; ok {
		return pkg, nil
	}
	return c.fallback.Import(path)
}

// topoSort orders dirs so every package follows its local dependencies;
// ties keep the caller's order. Cycles are an error: fixture packages
// must form a DAG like real Go packages.
func topoSort(dirs []string, deps map[string][]string) ([]string, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(dirs))
	var order []string
	var visit func(string) error
	visit = func(d string) error {
		switch state[d] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("loader: fixture import cycle through %q", d)
		}
		state[d] = visiting
		for _, dep := range deps[d] {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[d] = done
		order = append(order, d)
		return nil
	}
	for _, d := range dirs {
		if err := visit(d); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,CgoFiles,TestGoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var entries []listEntry
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func loadOne(fset *token.FileSet, imp types.Importer, e listEntry, opts Options) (*Package, error) {
	if len(e.CgoFiles) > 0 {
		return nil, fmt.Errorf("loader: package %s uses cgo, which skylint does not support", e.ImportPath)
	}
	names := e.GoFiles
	if opts.Tests {
		names = append(append([]string(nil), e.GoFiles...), e.TestGoFiles...)
	}
	files := make([]string, len(names))
	for i, f := range names {
		files[i] = filepath.Join(e.Dir, f)
	}
	return typecheckOpt(fset, imp, e.ImportPath, e.Dir, files, opts.AllowErrors)
}

func typecheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	return typecheckOpt(fset, imp, pkgPath, dir, files, false)
}

func typecheckOpt(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string, allowErrors bool) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		asts = append(asts, parsed)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(pkgPath, fset, asts, info)
	if len(typeErrs) > 0 || err != nil {
		if !allowErrors || tpkg == nil {
			if len(typeErrs) > 0 {
				return nil, fmt.Errorf("loader: type errors in %s:\n  %s", pkgPath, strings.Join(typeErrs, "\n  "))
			}
			return nil, fmt.Errorf("loader: type-checking %s: %v", pkgPath, err)
		}
		if len(typeErrs) == 0 {
			typeErrs = append(typeErrs, err.Error())
		}
	}
	name := tpkg.Name()
	return &Package{PkgPath: pkgPath, Name: name, Dir: dir, Fset: fset, Files: asts, Pkg: tpkg, Info: info, TypeErrors: typeErrs}, nil
}

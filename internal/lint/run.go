package lint

import (
	"fmt"
	"path/filepath"
	"sort"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/loader"
)

// Finding is one diagnostic with its resolved source position.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Position renders the finding's location as file:line:col.
func (f Finding) Position() string {
	return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position(), f.Analyzer, f.Message)
}

// SortFindings orders findings by (file, line, col, analyzer, message) —
// numerically on line and column, not lexically on the rendered position —
// so skylint output is byte-stable and diffable across runs and machines.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// runOne applies one analyzer's Run phase to one package, appending
// surviving findings through sink.
func runOne(pkg *loader.Package, a *analysis.Analyzer, prog *analysis.Program, sink *[]Finding) error {
	pass := &analysis.Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		PkgPath:  pkg.PkgPath,
		Info:     pkg.Info,
	}
	pass.BuildIgnores()
	pass.SetProgram(prog)
	pass.SetReporter(func(d analysis.Diagnostic) {
		pos := pkg.Fset.Position(d.Pos)
		*sink = append(*sink, Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	})
	if err := a.Run(pass); err != nil {
		return fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
	}
	return nil
}

// finish runs the Finish phase of every analyzer that has one. Diagnostics
// reported from Finish flow through the passes the facts were recorded
// under, which the reporters installed by runOne still serve.
func finish(analyzers []*analysis.Analyzer, prog *analysis.Program) error {
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		if err := a.Finish(prog); err != nil {
			return fmt.Errorf("lint: analyzer %s finish: %w", a.Name, err)
		}
	}
	return nil
}

// RunPackage runs the given analyzers (both phases) over one loaded
// package and returns the surviving findings in deterministic order.
// Cross-package analyzers see a single-package program.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	prog := analysis.NewProgram()
	for _, a := range analyzers {
		if err := runOne(pkg, a, prog, &findings); err != nil {
			return nil, err
		}
	}
	if err := finish(analyzers, prog); err != nil {
		return nil, err
	}
	SortFindings(findings)
	return findings, nil
}

// Run loads the packages matching patterns under dir and runs every
// analyzer over each (Run per package, then one Finish per analyzer over
// the whole program), returning all findings sorted by (file, line, col,
// analyzer). File names are reported relative to dir where possible.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer, opts loader.Options) ([]Finding, error) {
	pkgs, err := loader.Load(dir, patterns, opts)
	if err != nil {
		return nil, err
	}
	var all []Finding
	prog := analysis.NewProgram()
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if err := runOne(pkg, a, prog, &all); err != nil {
				return nil, err
			}
		}
	}
	if err := finish(analyzers, prog); err != nil {
		return nil, err
	}
	absDir, err := filepath.Abs(dir)
	if err == nil {
		for i := range all {
			if rel, rerr := filepath.Rel(absDir, all[i].File); rerr == nil && !filepath.IsAbs(rel) && rel[0] != '.' {
				// Forward slashes regardless of platform, so baselines
				// and SARIF logs recorded under one checkout match any
				// other (different absolute root, different OS).
				all[i].File = filepath.ToSlash(rel)
			}
		}
	}
	SortFindings(all)
	return all, nil
}

package lint

import (
	"fmt"
	"sort"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/loader"
)

// Finding is one diagnostic with its resolved source position.
type Finding struct {
	Position string // file:line:col
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// RunPackage runs the given analyzers over one loaded package and returns
// the surviving (non-suppressed) findings sorted by position.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			PkgPath:  pkg.PkgPath,
			Info:     pkg.Info,
		}
		pass.BuildIgnores()
		pass.SetReporter(func(d analysis.Diagnostic) {
			findings = append(findings, Finding{
				Position: pkg.Fset.Position(d.Pos).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Position != findings[j].Position {
			return findings[i].Position < findings[j].Position
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// Run loads the packages matching patterns under dir and runs every
// analyzer over each, returning all findings in package order.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := loader.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/callgraph"
)

// recvCopyLimit is the by-value size budget on hot paths: four words on
// the fixed reference architecture. Sizes are computed for gc/amd64
// regardless of the host, so findings — and the baseline — are identical
// on every machine that runs skylint.
const recvCopyLimit = 4 * 8

var recvCopySizes = types.SizesFor("gc", "amd64")

// RecvCopy reports by-value receivers and parameters of large structs on
// functions reachable from //skylint:hotpath roots.
//
// A struct beyond a few words passed by value is copied on every call —
// invisible in profiles as anything but a diffuse memmove tax, and on
// the per-question serving path it recurs for every worker poll. The
// limit is 4 words (32 bytes on amd64): at and below that, registers
// make copies cheap and aliasing-freedom is usually worth more than the
// copy; above it, pass a pointer.
var RecvCopy = &analysis.Analyzer{
	Name: "recvcopy",
	Doc: "reports by-value receivers/params of structs larger than 4 words " +
		"(gc/amd64 sizes) on functions reachable from //skylint:hotpath roots",
	Run:    recvCopyRun,
	Finish: recvCopyFinish,
}

func recvCopyRun(pass *analysis.Pass) error {
	callgraph.Shared(pass)
	hotPasses(pass, "recvcopy.passes")
	return nil
}

func recvCopyFinish(prog *analysis.Program) error {
	b, ok := prog.Fact("callgraph.builder", func() any { return nil }).(*callgraph.Builder)
	if !ok || b == nil {
		return nil
	}
	passes := prog.Fact("recvcopy.passes", func() any {
		return make(map[string]*analysis.Pass)
	}).(map[string]*analysis.Pass)
	g := b.Graph()
	reach := g.Reachable(func(s callgraph.HotScope) bool {
		return s == callgraph.HotCompute || s == callgraph.HotServe
	})
	for _, n := range g.Nodes {
		if !reach.Has(n) || n.Decl == nil {
			continue
		}
		pass := passes[n.PkgPath]
		if pass == nil {
			continue
		}
		fn, _ := pass.Info.Defs[n.Decl.Name].(*types.Func)
		if fn == nil {
			continue
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			continue
		}
		chain := reach.ChainString(n)
		if recv := sig.Recv(); recv != nil && n.Decl.Recv != nil {
			checkCopy(pass, recv, recvFieldPos(n.Decl), "receiver", chain)
		}
		params := sig.Params()
		fields := flattenParams(n.Decl.Type.Params)
		for i := 0; i < params.Len() && i < len(fields); i++ {
			checkCopy(pass, params.At(i), fields[i], "parameter", chain)
		}
	}
	return nil
}

// recvFieldPos anchors the finding on the receiver field.
func recvFieldPos(decl *ast.FuncDecl) token.Pos {
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		return decl.Recv.List[0].Pos()
	}
	return decl.Pos()
}

// flattenParams expands grouped parameters (a, b T) into one position
// per declared parameter, aligning with types.Signature.Params.
func flattenParams(fl *ast.FieldList) []token.Pos {
	if fl == nil {
		return nil
	}
	var out []token.Pos
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			out = append(out, f.Pos()) // unnamed parameter
			continue
		}
		for _, name := range f.Names {
			out = append(out, name.Pos())
		}
	}
	return out
}

// checkCopy reports v when it is a struct or array larger than the
// by-value budget.
func checkCopy(pass *analysis.Pass, v *types.Var, pos token.Pos, what, chain string) {
	t := v.Type()
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
	default:
		return
	}
	size := recvCopySizes.Sizeof(t)
	if size <= recvCopyLimit {
		return
	}
	pass.Reportf(pos, "%s %s copies %d bytes per call on hot path (%s); pass *%s",
		what, types.TypeString(t, types.RelativeTo(pass.Pkg)), size, chain,
		types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

package ssa

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSSABuild feeds fuzzer-mutated Go source through the SSA builder
// and asserts the verifier invariants on everything that parses. Type
// checking runs with an error-collecting handler and no importer, so
// the builder is exercised against the partial, inconsistent type
// information real broken code produces — it must degrade to opaque
// values, never crash, and never emit a structurally invalid Func.
//
// The seed corpus is the skylint fixture tree: real analyzer inputs
// with the control-flow shapes the analyzers care about.
func FuzzSSABuild(f *testing.F) {
	seeds, _ := filepath.Glob("../../testdata/*/*.go")
	more, _ := filepath.Glob("../../testdata/*/*/*.go")
	for _, path := range append(seeds, more...) {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(string(data))
		}
	}
	f.Add("package p\nfunc f(x *int) int { if x != nil { return *x }; return 0 }")
	f.Add("package p\nfunc f(n int) int {\n\ts := 0\n\tfor i := 0; i < n; i++ {\n\t\ts += i\n\t}\n\treturn s\n}")
	f.Add("package p\nfunc f() {\n\ti := 0\nloop:\n\ti++\n\tif i < 3 {\n\t\tgoto loop\n\t}\n}")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Error: func(error) {}} // collect, don't stop
		pkg, _ := conf.Check("fuzz", fset, []*ast.File{file}, info)
		_ = pkg
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn := BuildFunc(fd, info)
			if err := fn.Verify(); err != nil {
				t.Fatalf("verifier invariant violated for %s:\n%v\nsource:\n%s", fd.Name.Name, err, src)
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				lf := BuildLit(lit, info)
				if err := lf.Verify(); err != nil {
					t.Fatalf("verifier invariant violated for literal at %v:\n%v\nsource:\n%s",
						fset.Position(lit.Pos()), err, src)
				}
				return true
			})
		}
	})
}

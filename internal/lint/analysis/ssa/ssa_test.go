package ssa

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildSrc type-checks src (one file, package p) and returns SSA for
// the function named name.
func buildSrc(t *testing.T, src, name string) (*Func, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			f := BuildFunc(fd, info)
			if err := f.Verify(); err != nil {
				t.Fatalf("Verify(%s): %v", name, err)
			}
			return f, info, fset
		}
	}
	t.Fatalf("no function %q in source", name)
	return nil, nil, nil
}

func TestDomDiamond(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`, "f")
	d := f.Dom
	// The entry dominates everything reachable.
	for _, b := range f.Graph.Blocks {
		if d.Reachable[b.Index] && !d.Dominates(f.Graph.Entry.Index, b.Index) {
			t.Errorf("entry should dominate block %d", b.Index)
		}
	}
	// then/else blocks do not dominate the join.
	var thenIdx, joinIdx = -1, -1
	for _, b := range f.Graph.Blocks {
		switch b.Kind {
		case "if.then":
			thenIdx = b.Index
		case "if.join":
			joinIdx = b.Index
		}
	}
	if thenIdx == -1 || joinIdx == -1 {
		t.Fatalf("missing blocks: then=%d join=%d", thenIdx, joinIdx)
	}
	if d.Dominates(thenIdx, joinIdx) {
		t.Errorf("if.then must not dominate if.join")
	}
	// The join is in the then-block's dominance frontier.
	found := false
	for _, fr := range d.Frontier[thenIdx] {
		if fr == joinIdx {
			found = true
		}
	}
	if !found {
		t.Errorf("if.join not in if.then's dominance frontier: %v", d.Frontier[thenIdx])
	}
}

func TestDomLoop(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	d := f.Dom
	var head = -1
	for _, b := range f.Graph.Blocks {
		if b.Kind == "for.head" {
			head = b.Index
		}
	}
	if head == -1 {
		t.Fatal("no for.head block")
	}
	// A loop head is its own frontier (the back edge).
	found := false
	for _, fr := range d.Frontier[head] {
		if fr == head {
			found = true
		}
	}
	if !found {
		t.Errorf("for.head should be in its own dominance frontier, got %v", d.Frontier[head])
	}
}

func TestPhiPlacement(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func f(c bool) int {
	x := 1
	y := 9
	if c {
		x = 2
	}
	_ = y
	return x
}`, "f")
	// x is live at the join and assigned on one arm: exactly one phi for
	// x at the if.join; y is never reassigned: no phi anywhere.
	var phis []*Value
	for _, vs := range f.Phis {
		phis = append(phis, vs...)
	}
	if len(phis) != 1 {
		t.Fatalf("want exactly 1 phi (for x), got %d", len(phis))
	}
	if phis[0].Var == nil || phis[0].Var.Name != "x" {
		t.Errorf("phi is for %v, want x", phis[0].Var)
	}
	if len(phis[0].Args) != 2 {
		t.Errorf("phi arity = %d, want 2", len(phis[0].Args))
	}
}

func TestLoopPhi(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	// s and i both need phis at the loop head. n may legitimately get one
	// too: the `i < n` branch refines n with a pi in the loop body, which
	// counts as a definition rejoining at the head.
	have := map[string]bool{}
	for blk, vs := range f.Phis {
		if f.Graph.Blocks[blk].Kind == "for.head" {
			for _, phi := range vs {
				have[phi.Var.Name] = true
			}
		}
	}
	if !have["s"] || !have["i"] {
		t.Errorf("loop-head phis = %v, want at least s and i", have)
	}
}

func TestPiRefinement(t *testing.T) {
	f, info, _ := buildSrc(t, `package p
func f(p *int) int {
	if p != nil {
		return *p
	}
	return 0
}`, "f")
	// The use of p inside the then-block must resolve to a pi value
	// refined by != nil.
	var deref *ast.StarExpr
	for e := range f.ValueOf {
		if s, ok := e.(*ast.StarExpr); ok {
			deref = s
		}
	}
	if deref == nil {
		t.Fatal("no *p value recorded")
	}
	pv := f.ValueOf[deref.X]
	if pv == nil || pv.Kind != KPi {
		t.Fatalf("value of p inside guard = %v, want a pi node", pv)
	}
	if pv.Refine == nil || pv.Refine.Op != token.NEQ || !pv.Refine.Y.IsNil {
		t.Errorf("pi refinement = %+v, want != nil", pv.Refine)
	}
	_ = info
}

func TestPiOnElseBranch(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func f(p *int) *int {
	if p == nil {
		return nil
	}
	return p
}`, "f")
	// After the early return, p is refined non-nil on the fallthrough.
	facts := Problem[Nilness]{
		Join:   JoinNilness,
		Refine: RefineNilness,
		Transfer: func(v *Value, get func(*Value) Nilness) Nilness {
			switch v.Kind {
			case KConst:
				if v.IsNil {
					return NilBit
				}
				return NonNilBit
			case KParam, KUndef:
				return UnknownBit
			default:
				return UnknownBit
			}
		},
	}.Solve(f)
	// The final return's value must be proven non-nil.
	var last *ast.ReturnStmt
	lastPos := token.NoPos
	for rs := range f.ReturnVals {
		if rs.Pos() > lastPos {
			lastPos = rs.Pos()
			last = rs
		}
	}
	if last == nil {
		t.Fatal("no return statements recorded")
	}
	vals := f.ReturnVals[last]
	if len(vals) != 1 {
		t.Fatalf("return vals = %d, want 1", len(vals))
	}
	if got := facts[vals[0].ID]; got != NonNilBit {
		t.Errorf("nilness of `return p` after nil-check = %v, want NonNilBit", got)
	}
}

func TestFieldPathGuard(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
type T struct{ q *int }
func f(t *T) int {
	if t.q != nil {
		return *t.q
	}
	return 0
}`, "f")
	// t.q is tracked as a path var because it is nil-compared.
	foundPath := false
	for _, vi := range f.Vars {
		if vi.Path == ".q" {
			foundPath = true
		}
	}
	if !foundPath {
		t.Fatalf("t.q not tracked; vars: %+v", f.Vars)
	}
	var deref *ast.StarExpr
	for e := range f.ValueOf {
		if s, ok := e.(*ast.StarExpr); ok {
			deref = s
		}
	}
	if deref == nil {
		t.Fatal("no *t.q value")
	}
	pv := f.ValueOf[deref.X]
	if pv == nil || pv.Kind != KPi {
		t.Fatalf("value of t.q inside guard = %+v, want a pi node", pv)
	}
}

func TestOutParamDefines(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func g(p *int) {}
func f() int {
	var x int
	g(&x)
	return x
}`, "f")
	var ret *ast.ReturnStmt
	for rs := range f.ReturnVals {
		ret = rs
	}
	if ret == nil {
		t.Fatal("no return recorded")
	}
	v := f.ReturnVals[ret][0]
	if v.Kind != KOutDef {
		t.Errorf("x after g(&x) has kind %v, want outdef", v.Kind)
	}
}

func TestAddressTakenUntracked(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func f() *int {
	var x int
	p := &x
	return p
}`, "f")
	for _, vi := range f.Vars {
		if vi.Name == "x" {
			t.Errorf("x is address-taken outside a call; must not be tracked")
		}
	}
	_ = f
}

func TestClosureCaptureUntracked(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func f() int {
	x := 1
	g := func() { x = 2 }
	g()
	return x
}`, "f")
	for _, vi := range f.Vars {
		if vi.Name == "x" {
			t.Errorf("x is closure-captured; must not be tracked")
		}
	}
}

func TestConstProblem(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func f(c bool) int {
	x := 3
	y := x + 4
	z := y
	if c {
		z = 7
	}
	return z
}`, "f")
	facts := ConstProblem().Solve(f)
	var ret *ast.ReturnStmt
	for rs := range f.ReturnVals {
		ret = rs
	}
	v := f.ReturnVals[ret][0]
	got := facts[v.ID]
	if !got.IsConst() {
		t.Fatalf("z at return = %+v, want constant", got)
	}
	if got.Value().String() != "7" {
		t.Errorf("z = %s, want 7 (both arms assign 7)", got.Value())
	}
}

func TestGotoSelfLoopVerifies(t *testing.T) {
	// A self-looping label block: phi args can come from the same block;
	// the verifier must accept it.
	buildSrc(t, `package p
func f(n int) {
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
}`, "f")
}

func TestRangeAndSwitchShapes(t *testing.T) {
	buildSrc(t, `package p
func f(xs []int, m map[string]int) int {
	s := 0
	for i, v := range xs {
		s += i + v
	}
	for k := range m {
		_ = k
	}
	switch s {
	case 0:
		s = 1
	case 1, 2:
		s = 3
		fallthrough
	default:
		s++
	}
	var x interface{} = s
	switch x.(type) {
	case int:
		s = 9
	}
	return s
}`, "f")
}

func TestDeferAndSelect(t *testing.T) {
	buildSrc(t, `package p
import "sync"
func f(ch chan int, mu *sync.Mutex) int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}`, "f")
}

func TestBuildLit(t *testing.T) {
	src := `package p
func f() func() int {
	x := 1
	return func() int { return x + 1 }
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	var lit *ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	f := BuildLit(lit, info)
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify(lit): %v", err)
	}
	// x is free in the literal: it must be opaque, not tracked.
	for _, vi := range f.Vars {
		if vi.Name == "x" {
			t.Error("free variable x tracked inside literal")
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	src := `package p
func f(a, b int, c bool) int {
	x := a
	for i := 0; i < b; i++ {
		if c {
			x += i
		} else {
			x -= i
		}
	}
	return x
}`
	sig := func() string {
		f, _, _ := buildSrc(t, src, "f")
		var sb strings.Builder
		for _, v := range f.Values {
			fmt.Fprintf(&sb, "v%d:%v:b%d:%d;", v.ID, v.Kind, v.Block, len(v.Args))
		}
		return sb.String()
	}
	first := sig()
	for i := 0; i < 5; i++ {
		if got := sig(); got != first {
			t.Fatalf("build %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestVerifyCatchesBrokenPhi(t *testing.T) {
	f, _, _ := buildSrc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "f")
	var phi *Value
	for _, vs := range f.Phis {
		for _, p := range vs {
			phi = p
		}
	}
	if phi == nil {
		t.Fatal("no phi to break")
	}
	phi.Args = phi.Args[:len(phi.Args)-1]
	if err := f.Verify(); err == nil {
		t.Error("Verify accepted a phi with wrong arity")
	}
}

var benchSink *Func

func BenchmarkBuild(b *testing.B) {
	src := `package p
func f(a, b int, c bool) int {
	x := a
	for i := 0; i < b; i++ {
		if c && x > 0 {
			x += i
		} else {
			x -= i
		}
	}
	return x
}`
	fset := token.NewFileSet()
	file, _ := parser.ParseFile(fset, "src.go", src, 0)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		b.Fatal(err)
	}
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		fd, _ = d.(*ast.FuncDecl)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = BuildFunc(fd, info)
	}
}

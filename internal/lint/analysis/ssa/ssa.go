// Pruned-SSA construction over the cfg package's basic blocks.
//
// The builder assigns a Value to every expression the CFG evaluates and
// threads variable versions through the graph: definitions push new
// versions, joins get phi nodes (placed on the dominance frontier, pruned
// by liveness), and conditional branches get pi nodes — copies of a
// variable refined by the branch condition (`if x != nil` yields a
// version of x known non-nil in the then-block). Analyzers consume the
// result through Func.ValueOf (expression → abstract value) and the
// def-use chains (Value.Args / Value.Uses), typically by running a
// lattice Problem over them (see lattice.go).
//
// Tracked variables are the function's receiver, parameters, named
// results and body-level locals that are never address-taken outside a
// direct call argument and never captured by a closure, plus selector
// paths (x.f.g) that the function compares against nil — the pattern the
// nilness analyzer's guard refinement needs. Everything else evaluates
// to opaque values, which the lattices treat as unknown: the builder
// trades completeness for never claiming a fact it cannot prove.
//
// Known approximations, chosen deliberately for a linter:
//   - range Key/Value variables are defined once where the range operand
//     is evaluated, not per iteration;
//   - field paths are not invalidated by method calls on their base,
//     only by direct assignment, `&x.f` call arguments, and base
//     redefinition;
//   - type-switch case variables are opaque (go/types records them as
//     implicit objects the loader does not capture).
package ssa

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"crowdsky/internal/lint/analysis/cfg"
)

// Kind classifies a Value.
type Kind uint8

const (
	// KUndef is a defensive "no definition reaches here" value.
	KUndef Kind = iota
	// KParam is a parameter, receiver, or the entry value of a tracked
	// selector path.
	KParam
	// KConst is a typed or untyped constant, including nil and the
	// implicit zero of `var x T`.
	KConst
	// KPhi merges versions at a join; Args are ordered by the block's
	// predecessor edges.
	KPhi
	// KPi is a branch-refined copy of Args[0]; Refine holds the
	// comparison known true on this edge.
	KPi
	// KCall is a call or conversion result (the whole tuple when the
	// callee returns multiple values).
	KCall
	// KExtract is result Index of the multi-result call Args[0].
	KExtract
	// KOutDef is the value a variable holds after being passed as &x to
	// the call Args[0].
	KOutDef
	// KExpr is any other expression: arithmetic, loads, literals,
	// comma-ok halves, opaque identifiers.
	KExpr
)

// Refinement is the comparison a KPi value is known to satisfy, with the
// refined variable normalized to the left-hand side.
type Refinement struct {
	Op token.Token // EQL, NEQ, LSS, LEQ, GTR, GEQ
	Y  *Value      // right operand
}

// VarInfo identifies a tracked variable: a plain object (Path == "") or
// a selector path rooted at one.
type VarInfo struct {
	Obj  types.Object
	Path string // ".f.g" for selector paths
	Name string // rendering for diagnostics: "x" or "x.f.g"
	Type types.Type
}

// Value is one SSA value.
type Value struct {
	ID    int
	Kind  Kind
	Node  ast.Node // defining syntax; may be nil for entry values
	Block int      // defining block's cfg index
	Type  types.Type
	Args  []*Value
	Uses  []*Value // values consuming this one, in ID order
	Var   *VarInfo // the variable this value versions, if any

	IsNil    bool           // KConst: the nil constant / nilable zero value
	IsZero   bool           // KConst: implicit zero of `var x T`
	ConstVal constant.Value // KConst: folded constant, nil for nil/zero

	Callee    *types.Func // KCall: static callee when resolvable
	Builtin   string      // KCall: builtin name ("make", "append", ...)
	IsConvert bool        // KCall: type conversion, Args[0] is the operand

	Index  int         // KExtract: tuple index
	Refine *Refinement // KPi
}

// Pos returns the best source position for the value.
func (v *Value) Pos() token.Pos {
	if v.Node != nil {
		return v.Node.Pos()
	}
	return token.NoPos
}

// Func is the SSA form of one function body.
type Func struct {
	Graph *cfg.Graph
	Dom   *DomTree
	// Values lists every value in creation order (ID order).
	Values []*Value
	// ValueOf maps each evaluated expression to its abstract value.
	// Expressions in unreachable code have no entry.
	ValueOf map[ast.Expr]*Value
	// Phis lists the phi nodes placed in each block, by block index.
	Phis map[int][]*Value
	// ReturnVals maps each reachable return statement to the values it
	// returns (resolved through named results for naked returns and
	// through extracts for `return f()` spreads).
	ReturnVals map[*ast.ReturnStmt][]*Value
	// Params holds the KParam values for receiver + parameters, in
	// signature order.
	Params []*Value
	// Vars lists the tracked variables in creation order.
	Vars []*VarInfo
}

// BuildFunc builds SSA for a function declaration. A nil body (external
// or interface method) yields a trivial Func.
func BuildFunc(fd *ast.FuncDecl, info *types.Info) *Func {
	var body *ast.BlockStmt
	if fd != nil {
		body = fd.Body
	}
	var recv *ast.FieldList
	var ftyp *ast.FuncType
	if fd != nil {
		recv, ftyp = fd.Recv, fd.Type
	}
	return build(body, recv, ftyp, info)
}

// BuildLit builds SSA for a function literal. Free variables of the
// enclosing function are opaque.
func BuildLit(lit *ast.FuncLit, info *types.Info) *Func {
	return build(lit.Body, nil, lit.Type, info)
}

// varState is the builder's per-variable bookkeeping.
type varState struct {
	info  *VarInfo
	idx   int
	stack []*Value
	undef *Value
	// defBlocks/useUE drive pruned phi placement.
	defBlocks map[int]bool
	useUE     map[int]bool // blocks with an upward-exposed use
	liveIn    []bool
	entry     *Value // KParam/KConst pushed at function entry, if any
}

type builder struct {
	f    *Func
	info *types.Info

	vars    []*varState
	tracked map[types.Object]*varState
	// paths groups tracked selector paths by base object; each inner map
	// is keyed by the ".f.g" path string.
	paths map[types.Object]map[string]*varState

	rangeOf map[ast.Expr]*ast.RangeStmt
	phiVar  map[*Value]*varState

	// bodyLocals/namedResults classify tracked objects by declaration
	// site (body `:=`/var vs. signature results).
	bodyLocals   map[types.Object]bool
	namedResults map[types.Object]bool

	scanning bool // pre-scan mode: record events, build no values
	scanBlk  int
	seenDef  map[*varState]bool // per-block def-seen during pre-scan

	// renamePushes collects the varStates evalNode pushed to while
	// renaming one node, so rename can pop them at block exit.
	renamePushes []*varState
}

func build(body *ast.BlockStmt, recv *ast.FieldList, ftyp *ast.FuncType, info *types.Info) *Func {
	g := cfg.New(body)
	f := &Func{
		Graph:      g,
		Dom:        BuildDom(g),
		ValueOf:    make(map[ast.Expr]*Value),
		Phis:       make(map[int][]*Value),
		ReturnVals: make(map[*ast.ReturnStmt][]*Value),
	}
	b := &builder{
		f:            f,
		info:         info,
		tracked:      make(map[types.Object]*varState),
		paths:        make(map[types.Object]map[string]*varState),
		rangeOf:      make(map[ast.Expr]*ast.RangeStmt),
		phiVar:       make(map[*Value]*varState),
		bodyLocals:   make(map[types.Object]bool),
		namedResults: make(map[types.Object]bool),
	}
	b.collectVars(body, recv, ftyp)
	b.preScan()
	b.liveness()
	b.placePhis()
	b.rename(g.Entry.Index)
	for _, v := range f.Values {
		for _, a := range v.Args {
			if a != nil {
				a.Uses = append(a.Uses, v)
			}
		}
	}
	return f
}

// ---------------------------------------------------------------------
// Variable discovery

func (b *builder) newVar(obj types.Object, path, name string, typ types.Type) *varState {
	vi := &VarInfo{Obj: obj, Path: path, Name: name, Type: typ}
	vs := &varState{
		info:      vi,
		idx:       len(b.vars),
		defBlocks: make(map[int]bool),
		useUE:     make(map[int]bool),
	}
	b.vars = append(b.vars, vs)
	b.f.Vars = append(b.f.Vars, vi)
	if path == "" {
		b.tracked[obj] = vs
	} else {
		m := b.paths[obj]
		if m == nil {
			m = make(map[string]*varState)
			b.paths[obj] = m
		}
		m[path] = vs
	}
	return vs
}

// collectVars decides which objects get SSA versions: signature
// variables plus body-level locals, minus anything address-taken outside
// a call argument or captured by a closure; then the selector paths the
// body compares against nil.
func (b *builder) collectVars(body *ast.BlockStmt, recv *ast.FieldList, ftyp *ast.FuncType) {
	disqualified := make(map[types.Object]bool)
	candidates := make(map[types.Object]*ast.Ident)
	var order []types.Object

	addField := func(fl *ast.FieldList, results bool) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				if obj := b.info.Defs[name]; obj != nil {
					if _, ok := candidates[obj]; !ok {
						candidates[obj] = name
						order = append(order, obj)
						if results {
							b.namedResults[obj] = true
						}
					}
				}
			}
		}
	}
	addField(recv, false)
	if ftyp != nil {
		addField(ftyp.Params, false)
		addField(ftyp.Results, true)
	}

	if body != nil {
		// Locals: Defs anywhere in the body outside FuncLits (their
		// locals belong to their own SSA). Disqualifying uses are
		// classified in the same walk.
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Everything referenced inside is captured.
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := b.info.Uses[id]; obj != nil {
							disqualified[obj] = true
						}
					}
					return true
				})
				return false
			case *ast.Ident:
				if obj, ok := b.info.Defs[n].(*types.Var); ok && n.Name != "_" {
					if _, seen := candidates[obj]; !seen {
						candidates[obj] = n
						order = append(order, obj)
						b.bodyLocals[obj] = true
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if !b.isCallArg(body, n) {
						if base := baseIdent(n.X); base != nil {
							if obj := b.info.Uses[base]; obj != nil {
								disqualified[obj] = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				b.rangeOf[n.X] = n
			}
			return true
		})
	}

	for _, obj := range order {
		if disqualified[obj] {
			continue
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			continue
		}
		b.newVar(obj, "", obj.Name(), obj.Type())
	}

	// Selector paths compared against nil.
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			if !isNilIdent(b.info, pair[1]) {
				continue
			}
			sel, ok := unparen(pair[0]).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base, path, name := b.pathKey(sel)
			if base == nil {
				continue
			}
			vs := b.tracked[base]
			if vs == nil {
				continue // base itself is untracked
			}
			if b.paths[base][path] == nil {
				typ := typeOf(b.info, sel)
				b.newVar(base, path, name, typ)
			}
		}
		return true
	})
}

// isCallArg reports whether n appears directly (modulo parens) in some
// call's argument list within body.
func (b *builder) isCallArg(body *ast.BlockStmt, n *ast.UnaryExpr) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		for _, a := range call.Args {
			if unparen(a) == n {
				found = true
			}
		}
		return !found
	})
	return found
}

// pathKey decomposes x.f.g into its base object and path string. Every
// step must be a plain field selection on a non-field variable base.
func (b *builder) pathKey(sel *ast.SelectorExpr) (base types.Object, path, name string) {
	var fields []string
	e := ast.Expr(sel)
	for {
		s, ok := unparen(e).(*ast.SelectorExpr)
		if !ok {
			break
		}
		selInfo := b.info.Selections[s]
		if selInfo == nil || selInfo.Kind() != types.FieldVal {
			return nil, "", ""
		}
		fields = append([]string{s.Sel.Name}, fields...)
		e = s.X
	}
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil, "", ""
	}
	obj, ok := b.info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return nil, "", ""
	}
	return obj, "." + strings.Join(fields, "."), id.Name + "." + strings.Join(fields, ".")
}

func (b *builder) trackedOf(obj types.Object) *varState {
	if obj == nil {
		return nil
	}
	return b.tracked[obj]
}

func (b *builder) pathOf(sel *ast.SelectorExpr) *varState {
	base, path, _ := b.pathKey(sel)
	if base == nil {
		return nil
	}
	return b.paths[base][path]
}

// ---------------------------------------------------------------------
// Pre-scan: per-block def/upward-exposed-use sets for pruned phis

func (b *builder) preScan() {
	b.scanning = true
	b.seenDef = make(map[*varState]bool)
	for _, blk := range b.f.Graph.Blocks {
		if !b.f.Dom.Reachable[blk.Index] {
			continue
		}
		b.scanBlk = blk.Index
		clear(b.seenDef)
		// Pi nodes on the incoming branch edge define new versions at
		// block entry (and read the incoming one), before the block's own
		// nodes. Without these events, phi placement misses the merge a
		// refinement needs when its branch rejoins the unrefined path.
		if preds := b.f.Dom.Preds[blk.Index]; len(preds) == 1 && b.f.Dom.Reachable[preds[0]] {
			atoms, _ := b.edgeAtoms(preds[0], blk.Index)
			for _, a := range atoms {
				b.scanUse(a.vs)
				b.scanDef(a.vs)
			}
		}
		for _, n := range blk.Nodes {
			b.evalNode(blk.Index, n)
		}
	}
	b.scanning = false

	// Entry definitions: signature variables and path entry values.
	entry := b.f.Graph.Entry.Index
	for _, vs := range b.vars {
		if b.hasEntryValue(vs) {
			vs.defBlocks[entry] = true
		}
	}
}

// hasEntryValue reports whether vs is defined implicitly at function
// entry: receiver/params/named results (signature objects) and selector
// paths (the field's value on entry). Body locals are not — Go's
// definite-assignment rules guarantee their first definition dominates
// every use.
func (b *builder) hasEntryValue(vs *varState) bool {
	return vs.info.Path != "" || !b.bodyLocals[vs.info.Obj]
}

func (b *builder) scanUse(vs *varState) {
	if vs == nil {
		return
	}
	if !b.seenDef[vs] && !vs.useUE[b.scanBlk] {
		vs.useUE[b.scanBlk] = true
	}
}

func (b *builder) scanDef(vs *varState) {
	if vs == nil {
		return
	}
	b.seenDef[vs] = true
	vs.defBlocks[b.scanBlk] = true
}

// ---------------------------------------------------------------------
// Liveness + phi placement

func (b *builder) liveness() {
	n := len(b.f.Graph.Blocks)
	preds := b.f.Dom.Preds
	for _, vs := range b.vars {
		vs.liveIn = make([]bool, n)
		work := make([]int, 0, n)
		for blk := range vs.useUE {
			if !vs.liveIn[blk] {
				vs.liveIn[blk] = true
				work = append(work, blk)
			}
		}
		sortInts(work)
		for len(work) > 0 {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range preds[blk] {
				if !b.f.Dom.Reachable[p] || vs.liveIn[p] || vs.defBlocks[p] {
					continue
				}
				// Live out of p and not defined in p => live into p.
				// (Defs mid-block make this an over-approximation, which
				// only ever adds phis, never drops one.)
				vs.liveIn[p] = true
				work = append(work, p)
			}
		}
	}
}

func (b *builder) placePhis() {
	dom := b.f.Dom
	for _, vs := range b.vars {
		hasPhi := make(map[int]bool)
		work := make([]int, 0, len(vs.defBlocks))
		for blk := range vs.defBlocks {
			work = append(work, blk)
		}
		sortInts(work)
		for len(work) > 0 {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			if !dom.Reachable[blk] {
				continue
			}
			for _, fr := range dom.Frontier[blk] {
				if hasPhi[fr] || !vs.liveIn[fr] {
					continue
				}
				hasPhi[fr] = true
				phi := b.newValue(KPhi, nil, fr, vs.info.Type)
				phi.Var = vs.info
				phi.Args = make([]*Value, len(dom.Preds[fr]))
				b.f.Phis[fr] = append(b.f.Phis[fr], phi)
				b.phiVar[phi] = vs
				if !vs.defBlocks[fr] {
					vs.defBlocks[fr] = true
					work = append(work, fr)
					sortInts(work)
				}
			}
		}
	}
	// Stable in-block phi order: by variable index.
	for blk := range b.f.Phis {
		phis := b.f.Phis[blk]
		sort.SliceStable(phis, func(i, j int) bool {
			return b.phiVar[phis[i]].idx < b.phiVar[phis[j]].idx
		})
	}
}

// ---------------------------------------------------------------------
// Renaming

func (b *builder) newValue(k Kind, node ast.Node, blk int, typ types.Type, args ...*Value) *Value {
	v := &Value{ID: len(b.f.Values), Kind: k, Node: node, Block: blk, Type: typ}
	for _, a := range args {
		if a != nil {
			v.Args = append(v.Args, a)
		}
	}
	b.f.Values = append(b.f.Values, v)
	return v
}

func (b *builder) push(vs *varState, v *Value) {
	if v.Var == nil {
		v.Var = vs.info
	}
	vs.stack = append(vs.stack, v)
}

func (b *builder) current(blk int, vs *varState) *Value {
	if n := len(vs.stack); n > 0 {
		return vs.stack[n-1]
	}
	if vs.undef == nil {
		vs.undef = b.newValue(KUndef, nil, b.f.Graph.Entry.Index, vs.info.Type)
		vs.undef.Var = vs.info
	}
	return vs.undef
}

func (b *builder) rename(blk int) {
	marks := make([]*varState, 0, 8)
	pushMarked := func(vs *varState, v *Value) {
		b.push(vs, v)
		marks = append(marks, vs)
	}

	if blk == b.f.Graph.Entry.Index {
		b.entryDefs(pushMarked)
	}
	for _, phi := range b.f.Phis[blk] {
		pushMarked(b.phiVar[phi], phi)
	}
	for _, n := range b.f.Graph.Blocks[blk].Nodes {
		b.renamePushes = b.renamePushes[:0]
		b.evalNode(blk, n)
		for _, p := range b.renamePushes {
			marks = append(marks, p)
		}
	}

	// Fill successor phi args from the end-of-block versions.
	for _, s := range b.f.Graph.Blocks[blk].Succs {
		for _, phi := range b.f.Phis[s.Index] {
			vs := b.phiVar[phi]
			for i, p := range b.f.Dom.Preds[s.Index] {
				if p == blk {
					phi.Args[i] = b.current(blk, vs)
				}
			}
		}
	}

	for _, c := range b.f.Dom.Children[blk] {
		pis := b.createPis(blk, c)
		b.rename(c)
		for _, vs := range pis {
			vs.stack = vs.stack[:len(vs.stack)-1]
		}
	}

	for _, vs := range marks {
		vs.stack = vs.stack[:len(vs.stack)-1]
	}
}

func (b *builder) define(blk int, vs *varState, v *Value) {
	if vs == nil {
		return
	}
	if b.scanning {
		b.scanDef(vs)
		return
	}
	b.push(vs, v)
	b.renamePushes = append(b.renamePushes, vs)
}

func (b *builder) entryDefs(push func(*varState, *Value)) {
	entry := b.f.Graph.Entry.Index
	for _, vs := range b.vars {
		if !b.hasEntryValue(vs) {
			continue
		}
		var v *Value
		switch {
		case vs.info.Path != "":
			v = b.newValue(KParam, nil, entry, vs.info.Type)
		case b.namedResults[vs.info.Obj]:
			v = b.zeroConst(nil, entry, vs.info.Type)
		default:
			v = b.newValue(KParam, nil, entry, vs.info.Type)
			b.f.Params = append(b.f.Params, v)
		}
		v.Var = vs.info
		push(vs, v)
		vs.entry = v
	}
}

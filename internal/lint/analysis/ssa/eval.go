package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
)

// evalNode processes one CFG block node. In scanning mode it only
// records use/def events for phi pruning; in renaming mode it builds
// values and pushes variable versions.
func (b *builder) evalNode(blk int, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		b.evalAssign(blk, n)
	case *ast.DeclStmt:
		b.evalDecl(blk, n)
	case *ast.IncDecStmt:
		old := b.evalExpr(blk, n.X)
		var nv *Value
		if !b.scanning {
			nv = b.newValue(KExpr, n, blk, typeOf(b.info, n.X), old)
		}
		b.defineTarget(blk, n.X, nv, false)
	case *ast.ReturnStmt:
		b.evalReturn(blk, n)
	case *ast.SendStmt:
		b.evalExpr(blk, n.Chan)
		b.evalExpr(blk, n.Value)
	case *ast.ExprStmt:
		b.evalExpr(blk, n.X)
	case *ast.GoStmt:
		b.evalExpr(blk, n.Call)
	case *ast.DeferStmt:
		b.evalExpr(blk, n.Call)
	case ast.Expr:
		v := b.evalExpr(blk, n)
		if rs := b.rangeOf[n]; rs != nil {
			b.defineRange(blk, rs, v)
		}
	}
}

func (b *builder) evalAssign(blk int, s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Compound x op= y: read-modify-write.
		old := b.evalExpr(blk, s.Lhs[0])
		rv := b.evalExpr(blk, s.Rhs[0])
		var nv *Value
		if !b.scanning {
			nv = b.newValue(KExpr, s, blk, typeOf(b.info, s.Lhs[0]), old, rv)
		}
		b.defineTarget(blk, s.Lhs[0], nv, false)
		return
	}
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		// Tuple assignment: multi-result call, comma-ok forms.
		rv := b.evalExpr(blk, s.Rhs[0])
		for i, lhs := range s.Lhs {
			var v *Value
			if !b.scanning {
				if rv != nil && rv.Kind == KCall && !rv.IsConvert {
					v = b.extract(blk, rv, i, typeOf(b.info, lhs))
				} else {
					v = b.newValue(KExpr, s.Rhs[0], blk, typeOf(b.info, lhs), rv)
				}
			}
			b.defineTarget(blk, lhs, v, s.Tok == token.DEFINE)
		}
		return
	}
	// Parallel assignment: all RHS evaluate before any LHS is written.
	vals := make([]*Value, len(s.Rhs))
	for i := range s.Rhs {
		vals[i] = b.evalExpr(blk, s.Rhs[i])
	}
	for i, lhs := range s.Lhs {
		var v *Value
		if i < len(vals) {
			v = vals[i]
		}
		b.defineTarget(blk, lhs, v, s.Tok == token.DEFINE)
	}
}

func (b *builder) evalDecl(blk int, s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		switch {
		case len(vs.Values) == 0:
			for _, name := range vs.Names {
				var v *Value
				if !b.scanning {
					v = b.zeroConst(name, blk, typeOf(b.info, name))
				}
				b.defineTarget(blk, name, v, true)
			}
		case len(vs.Values) == 1 && len(vs.Names) > 1:
			rv := b.evalExpr(blk, vs.Values[0])
			for i, name := range vs.Names {
				var v *Value
				if !b.scanning {
					if rv != nil && rv.Kind == KCall && !rv.IsConvert {
						v = b.extract(blk, rv, i, typeOf(b.info, name))
					} else {
						v = b.newValue(KExpr, vs.Values[0], blk, typeOf(b.info, name), rv)
					}
				}
				b.defineTarget(blk, name, v, true)
			}
		default:
			for i, name := range vs.Names {
				var v *Value
				if i < len(vs.Values) {
					v = b.evalExpr(blk, vs.Values[i])
				}
				b.defineTarget(blk, name, v, true)
			}
		}
	}
}

func (b *builder) evalReturn(blk int, s *ast.ReturnStmt) {
	var vals []*Value
	switch {
	case len(s.Results) == 0:
		// Naked return: the named results' current versions.
		for _, vs := range b.vars {
			if vs.info.Path == "" && b.namedResults[vs.info.Obj] {
				if b.scanning {
					b.scanUse(vs)
				} else {
					vals = append(vals, b.current(blk, vs))
				}
			}
		}
	case len(s.Results) == 1:
		rv := b.evalExpr(blk, s.Results[0])
		if b.scanning {
			return
		}
		if rv != nil && rv.Kind == KCall && !rv.IsConvert {
			if tup, ok := rv.Type.(*types.Tuple); ok {
				// return f() spreading a multi-result call.
				for i := 0; i < tup.Len(); i++ {
					vals = append(vals, b.extract(blk, rv, i, tup.At(i).Type()))
				}
				break
			}
		}
		vals = append(vals, rv)
	default:
		for _, r := range s.Results {
			vals = append(vals, b.evalExpr(blk, r))
		}
	}
	if !b.scanning {
		b.f.ReturnVals[s] = vals
	}
}

// defineRange models `for k, v := range x`: Key and Value are defined
// once, where x is evaluated, with values derived from the container.
func (b *builder) defineRange(blk int, rs *ast.RangeStmt, xv *Value) {
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		var v *Value
		if !b.scanning {
			v = b.newValue(KExpr, rs, blk, typeOf(b.info, e), xv)
		}
		b.defineTarget(blk, e, v, rs.Tok == token.DEFINE)
	}
}

// defineTarget writes v to an assignment target, versioning tracked
// variables and killing dependent selector paths. Untracked targets
// still evaluate their component expressions (base, index) as uses.
func (b *builder) defineTarget(blk int, lhs ast.Expr, v *Value, isDefine bool) {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := b.info.Defs[l]
		if obj == nil {
			obj = b.info.Uses[l]
		}
		vs := b.trackedOf(obj)
		if vs == nil {
			return
		}
		if !b.scanning && v == nil {
			v = b.newValue(KExpr, lhs, blk, vs.info.Type)
		}
		b.define(blk, vs, v)
		b.killPaths(blk, obj, "", "", lhs)
	case *ast.SelectorExpr:
		b.evalExpr(blk, l.X) // base is read to locate the field
		base, path, _ := b.pathKey(l)
		if base == nil {
			return
		}
		if vs := b.paths[base][path]; vs != nil {
			if !b.scanning && v == nil {
				v = b.newValue(KExpr, lhs, blk, vs.info.Type)
			}
			b.define(blk, vs, v)
		}
		b.killPaths(blk, base, path, path, lhs)
	case *ast.StarExpr:
		b.evalExpr(blk, l.X)
	case *ast.IndexExpr:
		b.evalExpr(blk, l.X)
		b.evalExpr(blk, l.Index)
	}
}

// killPaths gives every tracked path rooted at base that extends prefix
// (excluding exclude itself) a fresh opaque version: its old value is no
// longer known after the store.
func (b *builder) killPaths(blk int, base types.Object, prefix, exclude string, node ast.Node) {
	m := b.paths[base]
	if len(m) == 0 {
		return
	}
	for _, vs := range b.sortedPaths(m) {
		p := vs.info.Path
		if p == exclude && exclude != "" {
			continue
		}
		if prefix != "" && !(len(p) > len(prefix) && p[:len(prefix)] == prefix && p[len(prefix)] == '.') {
			continue
		}
		var v *Value
		if !b.scanning {
			v = b.newValue(KExpr, node, blk, vs.info.Type)
		}
		b.define(blk, vs, v)
	}
}

func (b *builder) sortedPaths(m map[string]*varState) []*varState {
	out := make([]*varState, 0, len(m))
	for _, vs := range m {
		out = append(out, vs)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].idx < out[j-1].idx; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// defineOutParam models f(&x): the call may write through the pointer,
// so x (or x.f) gets a fresh version derived from the call.
func (b *builder) defineOutParam(blk int, target ast.Expr, call *Value) {
	switch t := unparen(target).(type) {
	case *ast.Ident:
		obj := b.info.Uses[t]
		vs := b.trackedOf(obj)
		if vs == nil {
			return
		}
		var v *Value
		if !b.scanning {
			v = b.newValue(KOutDef, t, blk, vs.info.Type, call)
		}
		b.define(blk, vs, v)
		b.killPaths(blk, obj, "", "", t)
	case *ast.SelectorExpr:
		base, path, _ := b.pathKey(t)
		if base == nil {
			return
		}
		if vs := b.paths[base][path]; vs != nil {
			var v *Value
			if !b.scanning {
				v = b.newValue(KOutDef, t, blk, vs.info.Type, call)
			}
			b.define(blk, vs, v)
		}
		b.killPaths(blk, base, path, path, t)
	}
}

// ---------------------------------------------------------------------
// Expressions

// record memoizes the value of an evaluated expression.
func (b *builder) record(e ast.Expr, v *Value) *Value {
	if b.scanning || v == nil {
		return v
	}
	b.f.ValueOf[e] = v
	return v
}

func (b *builder) evalExpr(blk int, e ast.Expr) *Value {
	if e == nil {
		return nil
	}
	if !b.scanning {
		if v, ok := b.f.ValueOf[e]; ok {
			return v
		}
	}
	tv, hasTV := b.info.Types[e]
	if hasTV && tv.IsType() {
		return nil
	}
	if hasTV && tv.Value != nil {
		// Folded constant (literal, named const, constant expression).
		// Constant expressions contain no variable uses, so not
		// descending loses no events.
		if b.scanning {
			return nil
		}
		v := b.newValue(KConst, e, blk, tv.Type)
		v.ConstVal = tv.Value
		return b.record(e, v)
	}

	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		obj := b.info.Uses[e]
		if obj == nil {
			obj = b.info.Defs[e]
		}
		if _, isNil := obj.(*types.Nil); isNil {
			if b.scanning {
				return nil
			}
			return b.record(e, b.nilConst(e, blk))
		}
		if vs := b.trackedOf(obj); vs != nil {
			if b.scanning {
				b.scanUse(vs)
				return nil
			}
			return b.record(e, b.current(blk, vs))
		}
		return b.opaque(e, blk)

	case *ast.ParenExpr:
		v := b.evalExpr(blk, e.X)
		return b.record(e, v)

	case *ast.SelectorExpr:
		// Qualified identifier (pkg.X)? No Selection is recorded.
		if b.info.Selections[e] == nil {
			if id, ok := unparen(e.X).(*ast.Ident); ok {
				if _, isPkg := b.info.Uses[id].(*types.PkgName); isPkg {
					return b.opaque(e, blk)
				}
			}
		}
		xv := b.evalExpr(blk, e.X)
		if vs := b.pathOf(e); vs != nil {
			if b.scanning {
				b.scanUse(vs)
				return nil
			}
			return b.record(e, b.current(blk, vs))
		}
		if b.scanning {
			return nil
		}
		return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e), xv))

	case *ast.StarExpr:
		xv := b.evalExpr(blk, e.X)
		if b.scanning {
			return nil
		}
		return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e), xv))

	case *ast.UnaryExpr:
		xv := b.evalExpr(blk, e.X)
		if b.scanning {
			return nil
		}
		return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e), xv))

	case *ast.BinaryExpr:
		xv := b.evalExpr(blk, e.X)
		yv := b.evalExpr(blk, e.Y)
		if b.scanning {
			return nil
		}
		return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e), xv, yv))

	case *ast.CallExpr:
		return b.evalCall(blk, e)

	case *ast.IndexExpr:
		xv := b.evalExpr(blk, e.X)
		iv := b.evalExpr(blk, e.Index)
		if b.scanning {
			return nil
		}
		return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e), xv, iv))

	case *ast.IndexListExpr:
		xv := b.evalExpr(blk, e.X)
		if b.scanning {
			return nil
		}
		return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e), xv))

	case *ast.SliceExpr:
		args := []*Value{b.evalExpr(blk, e.X), b.evalExpr(blk, e.Low), b.evalExpr(blk, e.High), b.evalExpr(blk, e.Max)}
		if b.scanning {
			return nil
		}
		return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e), args...))

	case *ast.TypeAssertExpr:
		xv := b.evalExpr(blk, e.X)
		if b.scanning {
			return nil
		}
		return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e), xv))

	case *ast.CompositeLit:
		var args []*Value
		isStruct := false
		if t := typeOf(b.info, e); t != nil {
			_, isStruct = t.Underlying().(*types.Struct)
		}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if !isStruct {
					args = append(args, b.evalExpr(blk, kv.Key))
				}
				args = append(args, b.evalExpr(blk, kv.Value))
				continue
			}
			args = append(args, b.evalExpr(blk, elt))
		}
		if b.scanning {
			return nil
		}
		return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e), args...))

	case *ast.FuncLit:
		// Opaque: the literal's body has its own SSA.
		return b.opaque(e, blk)

	default:
		return b.opaque(e, blk)
	}
}

func (b *builder) opaque(e ast.Expr, blk int) *Value {
	if b.scanning {
		return nil
	}
	return b.record(e, b.newValue(KExpr, e, blk, typeOf(b.info, e)))
}

func (b *builder) evalCall(blk int, call *ast.CallExpr) *Value {
	// Conversion T(x)?
	if tv, ok := b.info.Types[call.Fun]; ok && tv.IsType() {
		var xv *Value
		if len(call.Args) > 0 {
			xv = b.evalExpr(blk, call.Args[0])
		}
		if b.scanning {
			return nil
		}
		v := b.newValue(KCall, call, blk, typeOf(b.info, call), xv)
		v.IsConvert = true
		return b.record(call, v)
	}

	var args []*Value
	var callee *types.Func
	builtin := ""
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := b.info.Uses[fun].(type) {
		case *types.Builtin:
			builtin = obj.Name()
		case *types.Func:
			callee = obj
		default:
			args = append(args, b.evalExpr(blk, fun)) // func value
		}
	case *ast.SelectorExpr:
		if sel := b.info.Selections[fun]; sel != nil {
			recv := b.evalExpr(blk, fun.X) // method call: receiver is read
			args = append(args, recv)
			if fn, ok := sel.Obj().(*types.Func); ok {
				callee = fn
			}
		} else if fn, ok := b.info.Uses[fun.Sel].(*types.Func); ok {
			callee = fn // qualified pkg.F
		} else {
			args = append(args, b.evalExpr(blk, fun)) // pkg-level func var
		}
	default:
		args = append(args, b.evalExpr(blk, call.Fun)) // closure call, f()()
	}
	for _, a := range call.Args {
		if v := b.evalExpr(blk, a); v != nil {
			args = append(args, v)
		}
	}

	var v *Value
	if !b.scanning {
		v = b.newValue(KCall, call, blk, typeOf(b.info, call), args...)
		v.Callee = callee
		v.Builtin = builtin
		b.record(call, v)
	}
	// Out-parameters: f(&x) may write x.
	for _, a := range call.Args {
		if ue, ok := unparen(a).(*ast.UnaryExpr); ok && ue.Op == token.AND {
			b.defineOutParam(blk, ue.X, v)
		}
	}
	b.killCallMutations(blk, call)
	return v
}

// killCallMutations invalidates the selector-path versions a call may
// have mutated: a method call can write any field reachable through its
// receiver (x.init() assigning x.f is the motivating case), and passing
// a tracked pointer or interface as a plain argument hands the callee
// the same mutation power. The base variable itself is unaffected —
// callees cannot rebind the caller's variable.
func (b *builder) killCallMutations(blk int, call *ast.CallExpr) {
	if fun, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && b.info.Selections[fun] != nil {
		recv := unparen(fun.X)
		killed := false
		if sel, ok := recv.(*ast.SelectorExpr); ok {
			if base, path, _ := b.pathKey(sel); base != nil {
				// x.f.m(): extensions of x.f may change; x.f itself cannot.
				b.killPaths(blk, base, path, "", call)
				killed = true
			}
		}
		if !killed {
			if id := baseIdent(recv); id != nil {
				b.killPaths(blk, b.info.Uses[id], "", "", call)
			}
		}
	}
	for _, a := range call.Args {
		id, ok := unparen(a).(*ast.Ident)
		if !ok {
			continue
		}
		obj := b.info.Uses[id]
		if obj == nil || len(b.paths[obj]) == 0 {
			continue
		}
		switch obj.Type().Underlying().(type) {
		case *types.Pointer, *types.Interface:
			b.killPaths(blk, obj, "", "", call)
		}
	}
}

func (b *builder) extract(blk int, call *Value, i int, typ types.Type) *Value {
	v := b.newValue(KExtract, call.Node, blk, typ, call)
	v.Index = i
	return v
}

func (b *builder) zeroConst(node ast.Node, blk int, typ types.Type) *Value {
	v := b.newValue(KConst, node, blk, typ)
	v.IsZero = true
	v.IsNil = isNilable(typ)
	return v
}

func (b *builder) nilConst(e ast.Expr, blk int) *Value {
	v := b.newValue(KConst, e, blk, typeOf(b.info, e))
	v.IsNil = true
	return v
}

// ---------------------------------------------------------------------
// Pi insertion

type condAtom struct {
	vs    *varState
	op    token.Token
	other ast.Expr
}

// createPis inserts refinement copies when child is a conditional
// successor of parent with no other predecessors. Returns the varStates
// pushed, for the caller to pop after renaming the child subtree.
func (b *builder) createPis(parent, child int) []*varState {
	atoms, cond := b.edgeAtoms(parent, child)
	var pushed []*varState
	for _, a := range atoms {
		yv := b.f.ValueOf[a.other]
		if yv == nil {
			continue
		}
		cur := b.current(parent, a.vs)
		pi := b.newValue(KPi, cond, child, a.vs.info.Type, cur)
		pi.Refine = &Refinement{Op: a.op, Y: yv}
		b.push(a.vs, pi)
		pushed = append(pushed, a.vs)
	}
	return pushed
}

// edgeAtoms computes the refinements holding on the CFG edge
// parent→child: parent must end in a two-way branch and child must have
// parent as its only predecessor (otherwise facts from the other edges
// would leak through). Shared by createPis (which materializes the pi
// values during renaming) and preScan (which must count the pis as
// definitions so phi placement sees them — a refinement followed by a
// non-diverging join needs a phi to merge the refined and unrefined
// versions).
func (b *builder) edgeAtoms(parent, child int) ([]condAtom, ast.Expr) {
	pblk := b.f.Graph.Blocks[parent]
	if len(pblk.Succs) != 2 || len(pblk.Nodes) == 0 {
		return nil, nil
	}
	if len(b.f.Dom.Preds[child]) != 1 {
		return nil, nil
	}
	cond, ok := pblk.Nodes[len(pblk.Nodes)-1].(ast.Expr)
	if !ok {
		return nil, nil
	}
	pos := -1
	for i, s := range pblk.Succs {
		if s.Index == child {
			pos = i
		}
	}
	if pos == -1 {
		return nil, nil
	}
	polarity := pos == 0 // Succs[0] is the true edge, Succs[1] the false edge
	var atoms []condAtom
	b.condAtoms(cond, polarity, &atoms)
	return atoms, cond
}

// condAtoms decomposes a branch condition under the given polarity into
// comparisons about tracked variables, normalized subject-on-the-left.
func (b *builder) condAtoms(e ast.Expr, pol bool, out *[]condAtom) {
	switch e := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if pol {
				b.condAtoms(e.X, true, out)
				b.condAtoms(e.Y, true, out)
			}
		case token.LOR:
			if !pol {
				b.condAtoms(e.X, false, out)
				b.condAtoms(e.Y, false, out)
			}
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			op := e.Op
			if !pol {
				op = negateCmp(op)
			}
			if vs := b.subjectOf(e.X); vs != nil {
				*out = append(*out, condAtom{vs: vs, op: op, other: e.Y})
			}
			if vs := b.subjectOf(e.Y); vs != nil {
				*out = append(*out, condAtom{vs: vs, op: flipCmp(op), other: e.X})
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.condAtoms(e.X, !pol, out)
		}
	}
}

// subjectOf resolves a comparison operand to a tracked variable.
func (b *builder) subjectOf(e ast.Expr) *varState {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return b.trackedOf(b.info.Uses[e])
	case *ast.SelectorExpr:
		return b.pathOf(e)
	}
	return nil
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.GEQ:
		return token.LSS
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	}
	return op
}

// flipCmp swaps a comparison's operands: x < y  ==  y > x.
func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.GTR:
		return token.LSS
	case token.LEQ:
		return token.GEQ
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// ---------------------------------------------------------------------
// Small helpers

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isNilable reports whether t's zero value is nil.
func isNilable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice,
		*types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

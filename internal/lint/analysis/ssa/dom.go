// Dominator tree and dominance frontiers over a cfg.Graph.
//
// The construction is the Cooper–Harvey–Kennedy iterative algorithm
// ("A Simple, Fast Dominance Algorithm"): compute a reverse postorder
// over the reachable blocks, then iterate the two-finger intersection
// until the immediate-dominator array reaches a fixed point. The graphs
// skylint builds are tiny (tens of blocks), so the simple O(n²)
// worst-case bound is irrelevant; what matters is that the algorithm is
// easy to verify and fully deterministic.
package ssa

import "crowdsky/internal/lint/analysis/cfg"

// DomTree is the dominator tree of one cfg.Graph, plus the dominance
// frontier of every block. All slices are indexed by Block.Index.
type DomTree struct {
	// Idom[i] is the Block.Index of block i's immediate dominator. The
	// entry block and unreachable blocks have Idom -1.
	Idom []int
	// Children[i] lists the blocks immediately dominated by i, in
	// ascending index order (deterministic walks).
	Children [][]int
	// Frontier[i] is the dominance frontier of block i: the blocks where
	// i's dominance stops — exactly the phi-placement candidates.
	Frontier [][]int
	// Reachable[i] reports whether block i is reachable from the entry.
	// Dominance is defined only over reachable blocks.
	Reachable []bool
	// Preds[i] lists the predecessors of block i, in edge order. An edge
	// appears once per occurrence, so a block that links to the same
	// successor twice contributes two entries.
	Preds [][]int

	// pre/post number the dominator tree by DFS entry/exit time, giving
	// O(1) Dominates queries.
	pre, post []int
}

// BuildDom computes the dominator tree and dominance frontiers of g.
func BuildDom(g *cfg.Graph) *DomTree {
	n := len(g.Blocks)
	d := &DomTree{
		Idom:      make([]int, n),
		Children:  make([][]int, n),
		Frontier:  make([][]int, n),
		Reachable: make([]bool, n),
		Preds:     make([][]int, n),
		pre:       make([]int, n),
		post:      make([]int, n),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			d.Preds[s.Index] = append(d.Preds[s.Index], b.Index)
		}
	}

	// Postorder DFS from the entry (iterative: the fuzzer feeds us deeply
	// nested synthetic functions).
	postorder := make([]int, 0, n)
	ponum := make([]int, n) // block index -> postorder number
	type frame struct {
		b    int
		succ int
	}
	stack := []frame{{b: g.Entry.Index}}
	d.Reachable[g.Entry.Index] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		blk := g.Blocks[f.b]
		if f.succ < len(blk.Succs) {
			s := blk.Succs[f.succ].Index
			f.succ++
			if !d.Reachable[s] {
				d.Reachable[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		ponum[f.b] = len(postorder)
		postorder = append(postorder, f.b)
		stack = stack[:len(stack)-1]
	}
	// Reverse postorder, excluding the entry.
	rpo := make([]int, 0, len(postorder))
	for i := len(postorder) - 1; i >= 0; i-- {
		if postorder[i] != g.Entry.Index {
			rpo = append(rpo, postorder[i])
		}
	}

	intersect := func(a, b int) int {
		for a != b {
			for ponum[a] < ponum[b] {
				a = d.Idom[a]
			}
			for ponum[b] < ponum[a] {
				b = d.Idom[b]
			}
		}
		return a
	}

	d.Idom[g.Entry.Index] = g.Entry.Index // self, temporarily, for intersect
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			newIdom := -1
			for _, p := range d.Preds[b] {
				if !d.Reachable[p] || d.Idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else if p != newIdom {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	d.Idom[g.Entry.Index] = -1

	// Dominance frontiers (CHK): for every join point, walk each
	// predecessor's dominator chain up to the join's idom.
	for _, b := range rpo {
		preds := d.Preds[b]
		live := 0
		for _, p := range preds {
			if d.Reachable[p] && (d.Idom[p] != -1 || p == g.Entry.Index) {
				live++
			}
		}
		if live < 2 {
			continue
		}
		for _, p := range preds {
			if !d.Reachable[p] || (d.Idom[p] == -1 && p != g.Entry.Index) {
				continue
			}
			for runner := p; runner != d.Idom[b]; runner = d.Idom[runner] {
				d.Frontier[runner] = appendUnique(d.Frontier[runner], b)
				if runner == g.Entry.Index {
					break
				}
			}
		}
	}

	// Children lists + pre/post numbering for Dominates.
	for _, b := range rpo {
		if id := d.Idom[b]; id != -1 {
			d.Children[id] = append(d.Children[id], b)
		}
	}
	// rpo order already ascends within a parent deterministically, but it
	// is not index-sorted; sort for stable walks.
	for i := range d.Children {
		sortInts(d.Children[i])
	}
	clock := 0
	var number func(b int)
	number = func(b int) {
		clock++
		d.pre[b] = clock
		for _, c := range d.Children[b] {
			number(c)
		}
		clock++
		d.post[b] = clock
	}
	number(g.Entry.Index)
	return d
}

// Dominates reports whether block a dominates block b (reflexively).
// Both must be reachable; unreachable blocks dominate nothing.
func (d *DomTree) Dominates(a, b int) bool {
	if !d.Reachable[a] || !d.Reachable[b] {
		return false
	}
	return d.pre[a] <= d.pre[b] && d.post[b] <= d.post[a]
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

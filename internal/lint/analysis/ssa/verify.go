package ssa

import (
	"fmt"
	"go/token"
)

// Verify checks the structural invariants of a built Func:
//
//  1. every non-phi use is dominated by its definition (same-block uses
//     must follow the definition in evaluation order);
//  2. a phi's argument count equals its block's predecessor count, each
//     argument from a reachable predecessor is non-nil, and each
//     argument's definition dominates (the end of) that predecessor;
//  3. every value lives in a reachable block;
//  4. ValueOf never maps an expression to a value in an unreachable
//     block.
//
// The fuzz target and the repo-wide build test assert Verify returns
// nil for every function skylint can load.
func (f *Func) Verify() error {
	dom := f.Dom
	for _, v := range f.Values {
		if v.Block < 0 || v.Block >= len(f.Graph.Blocks) {
			return fmt.Errorf("value v%d: block %d out of range", v.ID, v.Block)
		}
		if !dom.Reachable[v.Block] {
			return fmt.Errorf("value v%d (%v): defined in unreachable block %d", v.ID, v.Kind, v.Block)
		}
		switch v.Kind {
		case KPhi:
			preds := dom.Preds[v.Block]
			if len(v.Args) != len(preds) {
				return fmt.Errorf("phi v%d in block %d: %d args, %d predecessors",
					v.ID, v.Block, len(v.Args), len(preds))
			}
			for i, a := range v.Args {
				p := preds[i]
				if !dom.Reachable[p] {
					continue // unreachable edge: arg slot legitimately empty
				}
				if a == nil {
					return fmt.Errorf("phi v%d in block %d: nil arg %d from reachable pred %d",
						v.ID, v.Block, i, p)
				}
				if !dom.Dominates(a.Block, p) {
					return fmt.Errorf("phi v%d in block %d: arg %d (v%d, block %d) does not dominate pred %d",
						v.ID, v.Block, i, a.ID, a.Block, p)
				}
			}
		case KPi:
			if len(v.Args) != 1 {
				return fmt.Errorf("pi v%d in block %d: %d args, want 1", v.ID, v.Block, len(v.Args))
			}
			preds := dom.Preds[v.Block]
			if len(preds) != 1 {
				return fmt.Errorf("pi v%d in block %d: block has %d preds, want 1", v.ID, v.Block, len(preds))
			}
			a := v.Args[0]
			// A conjunction refining the same variable twice chains pis:
			// the later pi's arg is the earlier pi in the same block.
			chained := a.Block == v.Block && a.ID < v.ID
			if !chained && !dom.Dominates(a.Block, preds[0]) {
				return fmt.Errorf("pi v%d in block %d: arg v%d (block %d) does not dominate pred %d",
					v.ID, v.Block, a.ID, a.Block, preds[0])
			}
		default:
			for _, a := range v.Args {
				if a == nil {
					return fmt.Errorf("value v%d (%v) in block %d: nil arg", v.ID, v.Kind, v.Block)
				}
				if !dom.Dominates(a.Block, v.Block) {
					return fmt.Errorf("value v%d (%v) in block %d: arg v%d (block %d) does not dominate use",
						v.ID, v.Kind, v.Block, a.ID, a.Block)
				}
				if a.Block == v.Block && a.ID >= v.ID {
					return fmt.Errorf("value v%d in block %d: arg v%d defined later in the same block",
						v.ID, v.Block, a.ID)
				}
			}
		}
	}
	for e, v := range f.ValueOf {
		if v == nil {
			return fmt.Errorf("ValueOf[%T@%v]: nil value", e, posOf(e.Pos()))
		}
		if !dom.Reachable[v.Block] {
			return fmt.Errorf("ValueOf[%T@%v]: value v%d in unreachable block %d", e, posOf(e.Pos()), v.ID, v.Block)
		}
	}
	return nil
}

func posOf(p token.Pos) any {
	if !p.IsValid() {
		return "-"
	}
	return int(p)
}

func (k Kind) String() string {
	switch k {
	case KUndef:
		return "undef"
	case KParam:
		return "param"
	case KConst:
		return "const"
	case KPhi:
		return "phi"
	case KPi:
		return "pi"
	case KCall:
		return "call"
	case KExtract:
		return "extract"
	case KOutDef:
		return "outdef"
	case KExpr:
		return "expr"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

package ssa

import (
	"go/ast"
	"testing"

	"crowdsky/internal/lint/loader"
)

// TestRepoWideBuild builds SSA for every function and function literal
// in the repository and asserts the verifier invariants on each — the
// acceptance gate for the construction: defs dominate uses, phi arity
// matches predecessor counts, no values in unreachable blocks.
func TestRepoWideBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	pkgs, err := loader.Load("../../../..", []string{"./..."}, loader.Options{})
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	funcs, lits := 0, 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				f := BuildFunc(fd, pkg.Info)
				if err := f.Verify(); err != nil {
					t.Errorf("%s: %s: %v", pkg.PkgPath, fd.Name.Name, err)
				}
				funcs++
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					lit, ok := n.(*ast.FuncLit)
					if !ok {
						return true
					}
					lf := BuildLit(lit, pkg.Info)
					if err := lf.Verify(); err != nil {
						t.Errorf("%s: literal at %s: %v",
							pkg.PkgPath, pkg.Fset.Position(lit.Pos()), err)
					}
					lits++
					return true
				})
			}
		}
	}
	if funcs == 0 {
		t.Fatal("no functions built; loader returned nothing useful")
	}
	t.Logf("verified %d functions and %d literals across %d packages", funcs, lits, len(pkgs))
}

package ssa

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// Problem is one forward value analysis over a Func: a join-semilattice
// of facts E and a transfer function over values. Solve runs a sparse
// worklist over the def-use chains — only values whose inputs changed
// are re-evaluated, the SSA analogue of the cfg package's block-level
// Flow solver.
//
// E must be comparable (the solver detects fixpoints with ==) and Join
// must be commutative, associative and idempotent with Bottom as its
// identity. Transfer must be monotone or the solver may not terminate
// on loops.
type Problem[E comparable] struct {
	// Bottom is the "no information yet" element every value starts at.
	Bottom E
	// Join merges facts at phi nodes.
	Join func(a, b E) E
	// Transfer computes the fact for a non-phi, non-pi value. get
	// returns the current fact of an argument.
	Transfer func(v *Value, get func(*Value) E) E
	// Refine computes the fact for a pi value from its input fact and
	// the refinement predicate. Nil means pi nodes pass their input
	// through unchanged.
	Refine func(pi *Value, in E) E
}

// Solve runs the analysis to fixpoint and returns the fact for every
// value, indexed by Value.ID.
func (p Problem[E]) Solve(f *Func) []E {
	facts := make([]E, len(f.Values))
	for i := range facts {
		facts[i] = p.Bottom
	}
	get := func(v *Value) E { return facts[v.ID] }
	eval := func(v *Value) E {
		switch v.Kind {
		case KPhi:
			out := p.Bottom
			for _, a := range v.Args {
				if a != nil {
					out = p.Join(out, facts[a.ID])
				}
			}
			return out
		case KPi:
			in := facts[v.Args[0].ID]
			if p.Refine == nil {
				return in
			}
			return p.Refine(v, in)
		default:
			return p.Transfer(v, get)
		}
	}

	// Seed in ID order (deterministic), then chase changed uses.
	inQueue := make([]bool, len(f.Values))
	queue := make([]*Value, 0, len(f.Values))
	for _, v := range f.Values {
		queue = append(queue, v)
		inQueue[v.ID] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v.ID] = false
		next := eval(v)
		if next == facts[v.ID] {
			continue
		}
		facts[v.ID] = next
		for _, u := range v.Uses {
			if !inQueue[u.ID] {
				inQueue[u.ID] = true
				queue = append(queue, u)
			}
		}
	}
	return facts
}

// ---------------------------------------------------------------------
// Nilness lattice

// Nilness is a bitmask fact about a value's nil-ness: which of {nil,
// non-nil, unknown-provenance} the value may be on some path. Zero is
// bottom ("unreached"). Join is bitwise or.
type Nilness uint8

const (
	// NilBit: the value is nil on at least one path.
	NilBit Nilness = 1 << iota
	// NonNilBit: the value is non-nil on at least one path.
	NonNilBit
	// UnknownBit: the value's provenance gives no nil information
	// (parameter, field load, external call, ...).
	UnknownBit
)

// MayBeNil reports whether a nil path or unknown provenance reaches the
// value — i.e. it is not proven non-nil.
func (n Nilness) MayBeNil() bool { return n != 0 && n&NonNilBit != n }

// IsNil reports whether the value is nil on every known path.
func (n Nilness) IsNil() bool { return n != 0 && n == NilBit }

// JoinNilness is the Nilness join (bitwise or).
func JoinNilness(a, b Nilness) Nilness { return a | b }

// RefineNilness interprets a pi predicate over the nilness fact: a
// comparison against nil narrows the mask on the refined edge.
func RefineNilness(pi *Value, in Nilness) Nilness {
	r := pi.Refine
	if r == nil || r.Y == nil || !r.Y.IsNil {
		return in
	}
	switch r.Op {
	case token.NEQ: // x != nil holds here
		if in == 0 {
			return 0
		}
		return NonNilBit
	case token.EQL: // x == nil holds here
		if in == 0 {
			return 0
		}
		return NilBit
	}
	return in
}

// ---------------------------------------------------------------------
// Taint lattice

// Taint tracks untrusted data: Tainted means the value derives from an
// untrusted source, Unbounded additionally means no bounds check has
// constrained it (cleared by pi nodes for upper-bound comparisons).
// Zero is bottom/clean. Join is bitwise or.
type Taint uint8

const (
	Tainted Taint = 1 << iota
	Unbounded
)

// JoinTaint is the Taint join (bitwise or).
func JoinTaint(a, b Taint) Taint { return a | b }

// RefineTaint clears the Unbounded bit when the branch proves an upper
// bound on the value: x < e, x <= e, or x == e.
func RefineTaint(pi *Value, in Taint) Taint {
	if r := pi.Refine; r != nil {
		switch r.Op {
		case token.LSS, token.LEQ, token.EQL:
			return in &^ Unbounded
		}
	}
	return in
}

// ---------------------------------------------------------------------
// Constant lattice

// ConstFact is the classic three-level constant lattice: Bottom (no
// information), a single known constant, or Top (conflicting values).
// It is comparable, as Problem requires: lattice equality is semantic
// (constant.Compare), arranged by konst() interning through the
// solver's Join always returning its first argument on semantic
// equality.
type ConstFact struct {
	level uint8 // 0 bottom, 1 constant, 2 top
	val   constant.Value
}

// ConstTop is the "not a constant" element.
var ConstTop = ConstFact{level: 2}

// Const wraps a known constant value.
func Const(v constant.Value) ConstFact {
	if v == nil {
		return ConstTop
	}
	return ConstFact{level: 1, val: v}
}

// IsConst reports whether the fact is a single known constant.
func (c ConstFact) IsConst() bool { return c.level == 1 }

// Value returns the constant, or nil.
func (c ConstFact) Value() constant.Value {
	if c.level == 1 {
		return c.val
	}
	return nil
}

// JoinConst merges constant facts. Semantically equal constants join to
// the first operand, keeping the result ==-stable across iterations
// even when go/constant represents equal values by distinct pointers.
func JoinConst(a, b ConstFact) ConstFact {
	switch {
	case a.level == 0:
		return b
	case b.level == 0:
		return a
	case a.level == 2 || b.level == 2:
		return ConstTop
	case a.val.Kind() == b.val.Kind() && constant.Compare(a.val, token.EQL, b.val):
		return a
	default:
		return ConstTop
	}
}

// ConstProblem is a ready-made constant-propagation Problem: constants
// flow through conversions and binary/unary operations fold when both
// operands are known. Everything else is Top.
func ConstProblem() Problem[ConstFact] {
	return Problem[ConstFact]{
		Join: JoinConst,
		Transfer: func(v *Value, get func(*Value) ConstFact) ConstFact {
			switch v.Kind {
			case KConst:
				if v.ConstVal != nil {
					return Const(v.ConstVal)
				}
				return ConstTop // nil / zero values: not a constant.Value
			case KCall:
				if v.IsConvert && len(v.Args) == 1 {
					return get(v.Args[0])
				}
				return ConstTop
			case KExpr:
				return foldExpr(v, get)
			case KUndef:
				return ConstFact{}
			default:
				return ConstTop
			}
		},
	}
}

func foldExpr(v *Value, get func(*Value) ConstFact) (out ConstFact) {
	be, ok := v.Node.(*ast.BinaryExpr)
	if !ok || len(v.Args) != 2 {
		return ConstTop
	}
	x, y := get(v.Args[0]), get(v.Args[1])
	if x.level == 0 || y.level == 0 {
		return ConstFact{}
	}
	if !x.IsConst() || !y.IsConst() || x.val.Kind() != y.val.Kind() {
		return ConstTop
	}
	// go/constant panics on malformed operations (mismatched kinds,
	// overflow in shifts); Top is the right answer for anything it
	// refuses to fold.
	defer func() {
		if recover() != nil {
			out = ConstTop
		}
	}()
	switch be.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return Const(constant.MakeBool(constant.Compare(x.val, be.Op, y.val)))
	case token.ADD, token.SUB, token.MUL, token.OR, token.AND, token.XOR:
		return Const(constant.BinaryOp(x.val, be.Op, y.val))
	}
	return ConstTop
}

// Strongly connected components and their condensation order.
package callgraph

// SCCs returns the graph's strongly connected components in bottom-up
// (callee-first) order: if any member of component A calls into
// component B (A != B), then B appears before A. Within a component,
// members keep node-ID order. The whole result is deterministic because
// Tarjan's DFS visits nodes and edges in the graph's sorted order.
//
// Bottom-up order is exactly what a summary fixpoint wants: by the time
// a component is processed, every callee outside it already has a final
// summary (Tarjan emits a component only after all components reachable
// from it).
func (g *Graph) SCCs() [][]*Node {
	type state struct {
		index, lowlink int
		onStack        bool
	}
	st := make(map[*Node]*state, len(g.Nodes))
	var stack []*Node
	var sccs [][]*Node
	next := 0

	// Iterative Tarjan: the explicit frame records how far into n.Out
	// the visit has progressed, so deep call chains cannot overflow the
	// goroutine stack.
	type frame struct {
		n  *Node
		ei int
	}
	var frames []frame
	visit := func(root *Node) {
		frames = append(frames[:0], frame{n: root})
		st[root] = &state{index: next, lowlink: next}
		next++
		stack = append(stack, root)
		st[root].onStack = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(f.n.Out) {
				callee := f.n.Out[f.ei].Callee
				f.ei++
				if st[callee] == nil {
					st[callee] = &state{index: next, lowlink: next}
					next++
					stack = append(stack, callee)
					st[callee].onStack = true
					frames = append(frames, frame{n: callee})
				} else if st[callee].onStack {
					if st[callee].index < st[f.n].lowlink {
						st[f.n].lowlink = st[callee].index
					}
				}
				continue
			}
			// Frame done: fold lowlink into the parent, pop components.
			s := st[f.n]
			if s.lowlink == s.index {
				var scc []*Node
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					st[m].onStack = false
					scc = append(scc, m)
					if m == f.n {
						break
					}
				}
				// Members in ID order (the stack pops in reverse DFS
				// order, which is not meaningful to callers).
				sortNodes(scc)
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if s.lowlink < st[p.n].lowlink {
					st[p.n].lowlink = s.lowlink
				}
			}
		}
	}
	for _, n := range g.Nodes {
		if st[n] == nil {
			visit(n)
		}
	}
	return sccs
}

func sortNodes(nodes []*Node) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].ID < nodes[j-1].ID; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

package callgraph

import (
	"path/filepath"
	"strings"
	"testing"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/loader"
)

// testGraph builds a bare Graph from node names and caller->callee pairs,
// in the sorted-node, sorted-edge form the builder guarantees.
func testGraph(t *testing.T, nodes []string, edges [][2]string) *Graph {
	t.Helper()
	g := &Graph{byID: make(map[string]*Node)}
	for _, id := range nodes {
		n := &Node{ID: id, Name: id}
		g.Nodes = append(g.Nodes, n)
		g.byID[id] = n
	}
	for _, e := range edges {
		caller, callee := g.byID[e[0]], g.byID[e[1]]
		if caller == nil || callee == nil {
			t.Fatalf("edge %v names an unknown node", e)
		}
		caller.Out = append(caller.Out, &Edge{Caller: caller, Callee: callee, Kind: EdgeStatic})
	}
	return g
}

// sccIDs renders components as "a+b" strings for comparison.
func sccIDs(sccs [][]*Node) []string {
	out := make([]string, len(sccs))
	for i, scc := range sccs {
		ids := make([]string, len(scc))
		for j, n := range scc {
			ids[j] = n.ID
		}
		out[i] = strings.Join(ids, "+")
	}
	return out
}

func TestSCCsCondensationOrder(t *testing.T) {
	cases := []struct {
		name  string
		nodes []string
		edges [][2]string
		// want is the exact bottom-up component sequence; members of a
		// component are listed in ID order joined by "+".
		want []string
	}{
		{
			name:  "chain",
			nodes: []string{"a", "b", "c"},
			edges: [][2]string{{"a", "b"}, {"b", "c"}},
			want:  []string{"c", "b", "a"},
		},
		{
			name:  "self loop is its own component",
			nodes: []string{"a", "b"},
			edges: [][2]string{{"a", "a"}, {"a", "b"}},
			want:  []string{"b", "a"},
		},
		{
			name:  "two-node cycle condenses",
			nodes: []string{"a", "b", "c"},
			edges: [][2]string{{"a", "b"}, {"b", "a"}, {"b", "c"}},
			want:  []string{"c", "a+b"},
		},
		{
			name:  "mutual recursion below a driver",
			nodes: []string{"driver", "even", "odd", "sink"},
			edges: [][2]string{
				{"driver", "even"},
				{"even", "odd"}, {"odd", "even"},
				{"odd", "sink"},
			},
			want: []string{"sink", "even+odd", "driver"},
		},
		{
			name:  "disconnected nodes each form a component",
			nodes: []string{"a", "b"},
			edges: nil,
			want:  []string{"a", "b"},
		},
		{
			name:  "diamond",
			nodes: []string{"top", "l", "r", "bot"},
			edges: [][2]string{{"top", "l"}, {"top", "r"}, {"l", "bot"}, {"r", "bot"}},
			want:  []string{"bot", "l", "r", "top"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, tc.nodes, tc.edges)
			got := sccIDs(g.SCCs())
			if strings.Join(got, " ") != strings.Join(tc.want, " ") {
				t.Fatalf("SCCs = %v, want %v", got, tc.want)
			}
			// The defining property, independent of the exact sequence:
			// every cross-component edge points backwards in the order.
			pos := make(map[*Node]int)
			for i, scc := range g.SCCs() {
				for _, n := range scc {
					pos[n] = i
				}
			}
			for _, n := range g.Nodes {
				for _, e := range n.Out {
					if pos[e.Callee] > pos[n] {
						t.Fatalf("callee %s (component %d) ordered after caller %s (component %d)",
							e.Callee.ID, pos[e.Callee], n.ID, pos[n])
					}
				}
			}
		})
	}
}

func TestSCCsDeterministic(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e", "f"}
	edges := [][2]string{
		{"a", "b"}, {"b", "c"}, {"c", "a"}, // cycle a-b-c
		{"c", "d"}, {"d", "e"}, {"e", "d"}, // cycle d-e below it
		{"e", "f"},
	}
	g := testGraph(t, nodes, edges)
	first := strings.Join(sccIDs(g.SCCs()), " ")
	for i := 0; i < 50; i++ {
		if got := strings.Join(sccIDs(g.SCCs()), " "); got != first {
			t.Fatalf("run %d: SCCs = %q, want %q", i, got, first)
		}
	}
}

// TestBottomUpFixpoint solves "reaches sink" over a graph with mutual
// recursion: the cycle members must converge to true through the
// component fixpoint, not just via a single pass.
func TestBottomUpFixpoint(t *testing.T) {
	g := testGraph(t,
		[]string{"main", "even", "odd", "sink", "stray"},
		[][2]string{
			{"main", "even"},
			{"even", "odd"}, {"odd", "even"},
			{"odd", "sink"},
		})
	got := g.BottomUp(func(n *Node, get func(*Node) any) any {
		if n.ID == "sink" {
			return true
		}
		for _, e := range n.Out {
			if v, _ := get(e.Callee).(bool); v {
				return true
			}
		}
		return false
	})
	want := map[string]bool{"main": true, "even": true, "odd": true, "sink": true, "stray": false}
	for id, w := range want {
		if v, _ := got[g.Lookup(id)].(bool); v != w {
			t.Errorf("summary[%s] = %v, want %v", id, v, w)
		}
	}
}

// TestGraphBuildDeterministic loads the hotalloc fixture twice into
// independent programs and demands byte-identical dumps: node IDs, edge
// order and external calls may not depend on map iteration or pointer
// identity.
func TestGraphBuildDeterministic(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "hotalloc")
	build := func() string {
		pkg, err := loader.LoadDir(dir, "hotalloc")
		if err != nil {
			t.Fatalf("loading fixture: %v", err)
		}
		pass := &analysis.Pass{
			Analyzer: &analysis.Analyzer{Name: "cgtest"},
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			PkgPath:  pkg.PkgPath,
			Info:     pkg.Info,
		}
		pass.SetProgram(analysis.NewProgram())
		g := Shared(pass).Graph()
		var sb strings.Builder
		g.Dump(&sb)
		return sb.String()
	}
	first := build()
	if first == "" {
		t.Fatal("empty dump")
	}
	for i := 0; i < 3; i++ {
		if got := build(); got != first {
			t.Fatalf("dump differs across builds:\n--- first\n%s\n--- run %d\n%s", first, i, got)
		}
	}
}

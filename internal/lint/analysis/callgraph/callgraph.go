// Package callgraph builds an interprocedural, CHA-style call graph over
// the packages of one skylint run, without golang.org/x/tools.
//
// The loader type-checks every package against the standard library's
// source importer, which re-checks imported packages from source: the
// same function is a *different* types.Object in its defining package's
// pass and in each importer's pass. Object identity therefore cannot key
// the graph. Nodes are keyed by stable string IDs instead —
// "pkg/path.Func", "pkg/path.(Type).Method", "pkg/path.Func.func1" — and
// dynamic call targets are matched by signature *strings* (rendered with
// a package-path qualifier), which are identical across type universes.
//
// Resolution strategy, in CHA spirit (sound-ish over-approximation,
// never context sensitive):
//
//   - static calls (package functions, concrete methods) resolve to the
//     named function directly;
//   - interface method calls resolve to every program method with the
//     same name and signature;
//   - calls through function values resolve to every address-taken
//     program function or literal with the same signature;
//   - every function literal gets a "closure" edge from its enclosing
//     function, so a literal handed to a helper (sort.Slice, shard) is
//     reachable whenever its creator is.
//
// Calls that leave the program (standard library, unresolved dynamics)
// are kept per caller as External records so effect analyzers (purity)
// can classify them without re-walking bodies.
//
// The graph also carries the hot-path annotation state scanned from
// source (see hotpath.go): //skylint:hotpath roots and
// //skylint:alloc-ok site waivers, which the hotalloc/recvcopy/purity
// analyzers consume.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"crowdsky/internal/lint/analysis"
)

// EdgeKind classifies how a call site was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call to a named function or concrete method.
	EdgeStatic EdgeKind = iota
	// EdgeClosure links a function to a literal declared in its body:
	// not a call per se, but the literal runs whenever some helper the
	// function handed it to decides to invoke it.
	EdgeClosure
	// EdgeInterface is a call through an interface method, resolved by
	// name + signature matching against every program method.
	EdgeInterface
	// EdgeDynamic is a call through a function value, resolved by
	// signature matching against address-taken functions and literals.
	EdgeDynamic
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeClosure:
		return "closure"
	case EdgeInterface:
		return "interface"
	case EdgeDynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// Node is one program function: a declared function or method, or a
// function literal.
type Node struct {
	// ID is the stable identity: "pkg/path.Func", "pkg/path.(T).Method",
	// or "<parent id>.funcN" for the N-th literal in parent's body.
	ID string
	// Name is the short form used in reported call chains:
	// "core.apply", "(skyline.Index).Dominates", "core.apply.func1".
	Name string
	// PkgPath is the import path of the defining package.
	PkgPath string
	// Pos is the declaration position (the "func" keyword).
	Pos token.Pos
	// Decl is the declaration for named functions; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal for closure nodes; nil for named functions.
	Lit *ast.FuncLit
	// Body is the function body; nil for bodyless declarations.
	Body *ast.BlockStmt
	// Pass is the analysis pass of the defining package — the one whose
	// Info covers Body and whose suppression comments apply here.
	Pass *analysis.Pass
	// Hot is the annotation scope if this node carries a
	// //skylint:hotpath comment (HotNone otherwise).
	Hot HotScope
	// HotRaw preserves an unrecognized scope argument so analyzers can
	// report the typo instead of silently ignoring the annotation.
	HotRaw string
	// Out are the resolved call edges, sorted by site position then
	// callee ID. Deterministic across runs.
	Out []*Edge
	// External are the calls that leave the program, sorted by position.
	External []*External

	sig          string // signature string, receiver excluded
	methodName   string // method name if this is a method, else ""
	addressTaken bool   // referenced outside call position, or a literal
}

// IsMethod reports whether the node is a method (named, with receiver).
func (n *Node) IsMethod() bool { return n.methodName != "" }

// Edge is one resolved call (or closure-containment) relation.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the position of the call expression (or the literal, for
	// closure edges) inside Caller.
	Site token.Pos
	Kind EdgeKind
}

// External is a call whose target is outside the analyzed program.
type External struct {
	// Site is the call position inside the caller.
	Site token.Pos
	// PkgPath is the target's package path ("sync", "fmt"); empty for
	// unresolved dynamic calls and for universe members (error.Error).
	PkgPath string
	// Recv is the receiver type's name for method calls ("Mutex"),
	// empty for package functions.
	Recv string
	// Name is the function or method name ("Lock", "Sprintf").
	Name string
	// Interface reports whether the call went through an interface.
	Interface bool
}

// String renders the external target compactly: "sync.(Mutex).Lock".
func (e *External) String() string {
	switch {
	case e.PkgPath == "" && e.Recv == "":
		return e.Name
	case e.Recv == "":
		return e.PkgPath + "." + e.Name
	case e.PkgPath == "":
		return "(" + e.Recv + ")." + e.Name
	default:
		return e.PkgPath + ".(" + e.Recv + ")." + e.Name
	}
}

// Graph is the finished call graph plus the hot-path annotation state.
type Graph struct {
	// Nodes is every program function, sorted by ID.
	Nodes []*Node
	// Fset positions every Node.Pos and Edge.Site.
	Fset *token.FileSet

	byID    map[string]*Node
	allocOK map[posKey]*AllocOK
}

// posKey addresses one source line, matching the suppression-comment
// convention of analysis.Pass.BuildIgnores.
type posKey struct {
	file string
	line int
}

// Lookup returns the node with the given ID, or nil.
func (g *Graph) Lookup(id string) *Node { return g.byID[id] }

// Builder accumulates passes and constructs the Graph once.
//
// The intended use is through a shared Program fact: every interprocedural
// analyzer calls Shared(pass) from its Run hook, so each package is
// scanned once no matter how many analyzers need the graph, and the first
// Finish hook to ask for Graph() pays the one-time resolution cost.
type Builder struct {
	passes []*analysis.Pass
	seen   map[string]bool
	graph  *Graph
}

// builderFactKey keys the shared Builder in the run's Program fact store.
const builderFactKey = "callgraph.builder"

// Shared returns the run-wide Builder, creating it on first use, and adds
// pass's package to it (deduplicated by package path).
func Shared(pass *analysis.Pass) *Builder {
	b := pass.Program().Fact(builderFactKey, func() any {
		return &Builder{seen: make(map[string]bool)}
	}).(*Builder)
	b.AddPass(pass)
	return b
}

// AddPass registers one package. Repeat additions of the same package
// path (by other analyzers of the same run) are ignored.
func (b *Builder) AddPass(pass *analysis.Pass) {
	if b.seen[pass.PkgPath] {
		return
	}
	b.seen[pass.PkgPath] = true
	b.passes = append(b.passes, pass)
	b.graph = nil
}

// Graph resolves and returns the call graph. The result is cached; the
// cache is invalidated by AddPass.
func (b *Builder) Graph() *Graph {
	if b.graph != nil {
		return b.graph
	}
	g := &Graph{
		byID:    make(map[string]*Node),
		allocOK: make(map[posKey]*AllocOK),
	}
	// Passes in deterministic order regardless of analyzer scheduling.
	passes := append([]*analysis.Pass(nil), b.passes...)
	sort.Slice(passes, func(i, j int) bool { return passes[i].PkgPath < passes[j].PkgPath })

	var sc scanner
	sc.graph = g
	for _, pass := range passes {
		if g.Fset == nil {
			g.Fset = pass.Fset
		}
		sc.collectNodes(pass)
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].ID < g.Nodes[j].ID })
	for _, pass := range passes {
		sc.scanPackage(pass)
	}
	sc.resolve()
	for _, n := range g.Nodes {
		sort.Slice(n.Out, func(i, j int) bool {
			if n.Out[i].Site != n.Out[j].Site {
				return n.Out[i].Site < n.Out[j].Site
			}
			return n.Out[i].Callee.ID < n.Out[j].Callee.ID
		})
		sort.Slice(n.External, func(i, j int) bool {
			if n.External[i].Site != n.External[j].Site {
				return n.External[i].Site < n.External[j].Site
			}
			return n.External[i].String() < n.External[j].String()
		})
	}
	b.graph = g
	return g
}

// scanner holds the intermediate state of one graph construction.
type scanner struct {
	graph *Graph
	// litNodes maps every function literal to its node.
	litNodes map[*ast.FuncLit]*Node
	// dynCalls and ifaceCalls are deferred until every package's nodes
	// and address-taken marks exist.
	dynCalls   []pendingCall
	ifaceCalls []pendingCall
}

// pendingCall is a dynamic or interface call awaiting resolution.
type pendingCall struct {
	caller *Node
	site   token.Pos
	// name is the method name for interface calls; empty for function
	// values.
	name string
	// sig is the signature string of the callee (receiver excluded).
	sig string
	// ext describes the interface's declared method for the External
	// record when the interface itself is from outside the program.
	ext *External
}

// collectNodes creates one node per declared function and per function
// literal of the package, and scans hotpath/alloc-ok annotations.
func (sc *scanner) collectNodes(pass *analysis.Pass) {
	if sc.litNodes == nil {
		sc.litNodes = make(map[*ast.FuncLit]*Node)
	}
	g := sc.graph
	for _, file := range pass.Files {
		scanAllocOK(pass, file, g.allocOK)
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				n := sc.addDecl(pass, decl)
				sc.addLits(pass, n, decl.Body)
			case *ast.GenDecl:
				// Literals in var initializers hang off a per-package
				// pseudo-node so closure edges still have a parent.
				if containsFuncLit(decl) {
					sc.addLits(pass, sc.initNode(pass), decl)
				}
			}
		}
	}
}

// initNode returns (creating on demand) the pseudo-node that owns
// package-level literals of pass's package.
func (sc *scanner) initNode(pass *analysis.Pass) *Node {
	id := pass.PkgPath + ".init"
	if n := sc.graph.byID[id]; n != nil {
		return n
	}
	n := &Node{
		ID:      id,
		Name:    pass.Pkg.Name() + ".init",
		PkgPath: pass.PkgPath,
		Pass:    pass,
	}
	sc.graph.byID[id] = n
	sc.graph.Nodes = append(sc.graph.Nodes, n)
	return n
}

func (sc *scanner) addDecl(pass *analysis.Pass, decl *ast.FuncDecl) *Node {
	obj, _ := pass.Info.Defs[decl.Name].(*types.Func)
	n := &Node{
		PkgPath: pass.PkgPath,
		Pos:     decl.Pos(),
		Decl:    decl,
		Body:    decl.Body,
		Pass:    pass,
	}
	pkgName := pass.Pkg.Name()
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		recvName := recvTypeName(pass, decl.Recv.List[0].Type)
		n.ID = pass.PkgPath + ".(" + recvName + ")." + decl.Name.Name
		n.Name = "(" + pkgName + "." + recvName + ")." + decl.Name.Name
		n.methodName = decl.Name.Name
	} else {
		n.ID = pass.PkgPath + "." + decl.Name.Name
		n.Name = pkgName + "." + decl.Name.Name
	}
	if obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			n.sig = sigString(sig)
		}
	}
	n.Hot, n.HotRaw = hotpathDirective(decl.Doc)
	sc.graph.byID[n.ID] = n
	sc.graph.Nodes = append(sc.graph.Nodes, n)
	return n
}

// addLits creates nodes for every function literal under root (including
// literals nested in other literals), parented transitively.
func (sc *scanner) addLits(pass *analysis.Pass, parent *Node, root ast.Node) {
	if root == nil {
		return
	}
	count := 0
	var walk func(ast.Node, *Node)
	walk = func(nd ast.Node, par *Node) {
		ast.Inspect(nd, func(x ast.Node) bool {
			lit, ok := x.(*ast.FuncLit)
			if !ok {
				return true
			}
			count++
			ln := &Node{
				ID:      fmt.Sprintf("%s.func%d", par.ID, count),
				Name:    fmt.Sprintf("%s.func%d", par.Name, count),
				PkgPath: pass.PkgPath,
				Pos:     lit.Pos(),
				Lit:     lit,
				Body:    lit.Body,
				Pass:    pass,
				// Literals are always address-taken: they exist to be
				// passed or stored.
				addressTaken: true,
			}
			if sig, ok := pass.Info.TypeOf(lit).(*types.Signature); ok {
				ln.sig = sigString(sig)
			}
			sc.graph.byID[ln.ID] = ln
			sc.graph.Nodes = append(sc.graph.Nodes, ln)
			sc.litNodes[lit] = ln
			walk(lit.Body, ln)
			return false // nested literals handled by the recursive walk
		})
	}
	walk(root, parent)
}

// scanPackage records call edges and address-taken marks for every
// function body of the package. Nodes of all packages must already exist.
func (sc *scanner) scanPackage(pass *analysis.Pass) {
	for _, file := range pass.Files {
		sc.markAddressTaken(pass, file)
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if n := sc.declNode(pass, decl); n != nil {
					sc.scanBody(n)
				}
			case *ast.GenDecl:
				ast.Inspect(decl, func(x ast.Node) bool {
					if lit, ok := x.(*ast.FuncLit); ok {
						sc.addEdge(sc.initNode(pass), sc.litNodes[lit], lit.Pos(), EdgeClosure)
						return false
					}
					return true
				})
			}
		}
	}
}

func (sc *scanner) declNode(pass *analysis.Pass, decl *ast.FuncDecl) *Node {
	var id string
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		id = pass.PkgPath + ".(" + recvTypeName(pass, decl.Recv.List[0].Type) + ")." + decl.Name.Name
	} else {
		id = pass.PkgPath + "." + decl.Name.Name
	}
	return sc.graph.byID[id]
}

// markAddressTaken flags every program function referenced outside call
// position anywhere in file: a plain mention of f or x.m yields a value
// that may be called later through any matching function-typed variable.
func (sc *scanner) markAddressTaken(pass *analysis.Pass, file *ast.File) {
	inCall := make(map[*ast.Ident]bool)
	ast.Inspect(file, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			inCall[fun] = true
		case *ast.SelectorExpr:
			inCall[fun.Sel] = true
		}
		return true
	})
	ast.Inspect(file, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || inCall[id] {
			return true
		}
		fn, ok := pass.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if n := sc.graph.byID[funcID(fn)]; n != nil {
			n.addressTaken = true
		}
		return true
	})
}

// scanBody walks one function unit's body, stopping at nested literals
// (they are their own nodes, connected by closure edges).
func (sc *scanner) scanBody(n *Node) {
	if n.Body == nil {
		return
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			sc.addEdge(n, sc.litNodes[x], x.Pos(), EdgeClosure)
			return false
		case *ast.CallExpr:
			sc.recordCall(n, x)
		}
		return true
	})
}

func (sc *scanner) addEdge(caller, callee *Node, site token.Pos, kind EdgeKind) {
	if caller == nil || callee == nil {
		return
	}
	caller.Out = append(caller.Out, &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind})
}

// recordCall classifies one call expression inside n.
func (sc *scanner) recordCall(n *Node, call *ast.CallExpr) {
	pass := n.Pass
	fun := ast.Unparen(call.Fun)
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		// Immediately-invoked literal: also a static edge (the closure
		// edge from scanBody covers reachability; skip the duplicate).
		return
	case *ast.Ident:
		switch obj := pass.Info.Uses[fun].(type) {
		case *types.Builtin:
			return // append/make/len/...: allocation concerns, not calls
		case *types.Func:
			sc.staticCall(n, call.Pos(), obj, false)
		default:
			// Function-typed variable (parameter, local, package var).
			sc.dynamicCall(n, call.Pos(), pass.Info.TypeOf(fun))
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				callee, _ := sel.Obj().(*types.Func)
				if callee == nil {
					return
				}
				if types.IsInterface(sel.Recv()) {
					sc.interfaceCall(n, call.Pos(), callee)
				} else {
					sc.staticCall(n, call.Pos(), callee, false)
				}
			case types.FieldVal:
				// Struct field holding a function value.
				sc.dynamicCall(n, call.Pos(), sel.Type())
			}
			return
		}
		// Qualified identifier: pkg.F(...).
		switch obj := pass.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			sc.staticCall(n, call.Pos(), obj, false)
		case *types.Builtin:
			return
		default:
			sc.dynamicCall(n, call.Pos(), pass.Info.TypeOf(fun))
		}
	default:
		// Any other function-typed expression: slice of funcs, call
		// returning a func, method expression value, ...
		sc.dynamicCall(n, call.Pos(), pass.Info.TypeOf(fun))
	}
}

// staticCall links n to a named function: an edge when the target is in
// the program, an External record otherwise.
func (sc *scanner) staticCall(n *Node, site token.Pos, callee *types.Func, viaIface bool) {
	if target := sc.graph.byID[funcID(callee)]; target != nil {
		kind := EdgeStatic
		if viaIface {
			kind = EdgeInterface
		}
		sc.addEdge(n, target, site, kind)
		return
	}
	n.External = append(n.External, externalFor(site, callee, viaIface))
}

// interfaceCall defers name+signature matching until all packages are
// scanned, and records the interface's own package as an External target
// (io.Writer.Write is an I/O effect even if no program type implements
// it).
func (sc *scanner) interfaceCall(n *Node, site token.Pos, callee *types.Func) {
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return
	}
	sc.ifaceCalls = append(sc.ifaceCalls, pendingCall{
		caller: n,
		site:   site,
		name:   callee.Name(),
		sig:    sigString(sig),
		ext:    externalFor(site, callee, true),
	})
}

// dynamicCall defers signature matching against address-taken functions.
func (sc *scanner) dynamicCall(n *Node, site token.Pos, t types.Type) {
	if t == nil {
		return
	}
	sig, _ := t.Underlying().(*types.Signature)
	if sig == nil {
		return
	}
	sc.dynCalls = append(sc.dynCalls, pendingCall{caller: n, site: site, sig: sigString(sig)})
}

// resolve links the deferred interface and function-value calls.
func (sc *scanner) resolve() {
	g := sc.graph
	// Index methods by name+sig and address-taken functions by sig. The
	// node slice is already sorted by ID, so the candidate lists — and
	// with them the emitted edges — are deterministic.
	methods := make(map[string][]*Node)
	taken := make(map[string][]*Node)
	for _, n := range g.Nodes {
		if n.IsMethod() {
			methods[n.methodName+n.sig] = append(methods[n.methodName+n.sig], n)
		}
		if n.addressTaken && n.sig != "" {
			taken[n.sig] = append(taken[n.sig], n)
		}
	}
	for i := range sc.ifaceCalls {
		c := &sc.ifaceCalls[i]
		for _, target := range methods[c.name+c.sig] {
			sc.addEdge(c.caller, target, c.site, EdgeInterface)
		}
		if c.ext != nil {
			c.caller.External = append(c.caller.External, c.ext)
		}
	}
	for i := range sc.dynCalls {
		c := &sc.dynCalls[i]
		targets := taken[c.sig]
		for _, target := range targets {
			sc.addEdge(c.caller, target, c.site, EdgeDynamic)
		}
		if len(targets) == 0 {
			c.caller.External = append(c.caller.External, &External{Site: c.site, Name: "func" + c.sig})
		}
	}
}

// containsFuncLit reports whether any function literal occurs under nd.
func containsFuncLit(nd ast.Node) bool {
	found := false
	ast.Inspect(nd, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			found = true
		}
		return !found
	})
	return found
}

// FuncID derives the stable node ID for a named function object, for
// Graph.Lookup: analyzers that resolve call targets from their own walks
// (the SSA value-flow analyzers record static callees as *types.Func) use
// it to reach the callee's node and summary.
func FuncID(fn *types.Func) string { return funcID(fn) }

// funcID derives the stable node ID for a named function object. It only
// uses package paths and names, so it agrees across the distinct type
// universes produced by the source importer.
func funcID(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if named := analysis.NamedOf(sig.Recv().Type()); named != nil {
			return pkgPath + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		return pkgPath + ".(?)." + fn.Name()
	}
	return pkgPath + "." + fn.Name()
}

// externalFor builds the External record for a call that leaves the
// program.
func externalFor(site token.Pos, fn *types.Func, viaIface bool) *External {
	ext := &External{Site: site, Name: fn.Name(), Interface: viaIface}
	if fn.Pkg() != nil {
		ext.PkgPath = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := analysis.NamedOf(sig.Recv().Type()); named != nil {
			ext.Recv = named.Obj().Name()
		}
	}
	return ext
}

// recvTypeName extracts the receiver type's name from its AST (the
// types.Info of the declaring package may lack an entry for bodyless
// declarations, so this stays syntactic).
func recvTypeName(pass *analysis.Pass, expr ast.Expr) string {
	switch expr := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(pass, expr.X)
	case *ast.Ident:
		return expr.Name
	case *ast.IndexExpr: // generic receiver: T[P]
		return recvTypeName(pass, expr.X)
	case *ast.IndexListExpr:
		return recvTypeName(pass, expr.X)
	default:
		return analysis.ExprString(expr)
	}
}

// sigString renders a signature (receiver excluded) with full package
// paths, so two views of the same function — or two compatible
// functions — produce identical strings.
func sigString(sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteByte('(')
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		t := params.At(i).Type()
		if sig.Variadic() && i == params.Len()-1 {
			b.WriteString("...")
			if sl, ok := t.(*types.Slice); ok {
				t = sl.Elem()
			}
		}
		b.WriteString(types.TypeString(t, qual))
	}
	b.WriteByte(')')
	results := sig.Results()
	if results.Len() > 0 {
		b.WriteByte('(')
		for i := 0; i < results.Len(); i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(types.TypeString(results.At(i).Type(), qual))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Dump writes the graph in a stable text form: one line per node
// ("[hot:<scope>] id"), indented lines per outgoing edge and external
// call. cmd/skylint -callgraph prints this.
func (g *Graph) Dump(w *strings.Builder) {
	for _, n := range g.Nodes {
		if n.Hot != HotNone {
			fmt.Fprintf(w, "%s [hot:%s]\n", n.ID, n.Hot)
		} else {
			fmt.Fprintf(w, "%s\n", n.ID)
		}
		for _, e := range n.Out {
			fmt.Fprintf(w, "  -> %s (%s)\n", e.Callee.ID, e.Kind)
		}
		for _, ext := range n.External {
			fmt.Fprintf(w, "  ~> %s\n", ext)
		}
	}
}

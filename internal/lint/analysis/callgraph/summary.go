// Bottom-up function-summary framework.
//
// An interprocedural analyzer models each function by a summary value
// (purity uses an effect bitmask) computed from the function's own body
// plus the summaries of its callees. Processing components of the
// condensation in callee-first order makes a single pass sufficient for
// acyclic call structure; mutual recursion (a multi-node component, or a
// self-loop) is solved by iterating the component to a fixpoint.
package callgraph

// BottomUp computes a summary for every node. compute derives n's
// summary; it reads callee summaries through get, which returns the
// final value for callees in earlier components and the current iterate
// for callees in n's own component (zero value on the first visit).
//
// Summary values must be comparable with == (bitmasks, small structs):
// the fixpoint terminates when an iteration changes no member's value,
// so compute must be monotone over its callees' summaries in the usual
// dataflow sense — growing inputs must not shrink the output —
// or cyclic components may oscillate.
func (g *Graph) BottomUp(compute func(n *Node, get func(*Node) any) any) map[*Node]any {
	out := make(map[*Node]any, len(g.Nodes))
	get := func(n *Node) any { return out[n] }
	for _, scc := range g.SCCs() {
		if len(scc) == 1 && !hasSelfEdge(scc[0]) {
			out[scc[0]] = compute(scc[0], get)
			continue
		}
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				v := compute(n, get)
				if v != out[n] {
					out[n] = v
					changed = true
				}
			}
		}
	}
	return out
}

func hasSelfEdge(n *Node) bool {
	for _, e := range n.Out {
		if e.Callee == n {
			return true
		}
	}
	return false
}

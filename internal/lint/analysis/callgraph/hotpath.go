// Hot-path annotations and reachability.
//
// A function becomes a hot-path root with a doc comment directive:
//
//	//skylint:hotpath          — compute scope: the full discipline
//	//skylint:hotpath serve    — serve scope: allocation + copy checks
//	                             only (handlers legitimately lock and
//	                             do I/O)
//
// Everything reachable from a root inherits the root's discipline. An
// individual allocation site inside hot code is waived with
//
//	//skylint:alloc-ok <reason>
//
// on the site's line or the line directly above; the reason is
// mandatory, mirroring the baseline's policy.
package callgraph

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"crowdsky/internal/lint/analysis"
)

// HotScope is the discipline attached to a //skylint:hotpath root.
type HotScope uint8

const (
	// HotNone marks an unannotated function.
	HotNone HotScope = iota
	// HotCompute is the default scope: zero allocations, no large
	// copies, no I/O, no locks, no logging anywhere reachable.
	HotCompute
	// HotServe is the relaxed scope for request handlers: allocation
	// and copy discipline apply, purity does not.
	HotServe
	// HotInvalid marks a directive whose scope argument was not
	// recognized; analyzers report it instead of guessing.
	HotInvalid
)

func (s HotScope) String() string {
	switch s {
	case HotCompute:
		return "compute"
	case HotServe:
		return "serve"
	case HotInvalid:
		return "invalid"
	default:
		return "none"
	}
}

// Directive comments follow the Go convention: they open the comment
// ("//skylint:hotpath", no space after the slashes), so prose that
// merely mentions a directive never triggers it.
var hotpathRE = regexp.MustCompile(`^//skylint:hotpath(?:\s+(\S+))?`)

// hotpathDirective parses a declaration's doc comment group.
func hotpathDirective(doc *ast.CommentGroup) (HotScope, string) {
	if doc == nil {
		return HotNone, ""
	}
	for _, c := range doc.List {
		m := hotpathRE.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		switch m[1] {
		case "", "compute":
			return HotCompute, m[1]
		case "serve":
			return HotServe, m[1]
		default:
			return HotInvalid, m[1]
		}
	}
	return HotNone, ""
}

// AllocOK is one //skylint:alloc-ok waiver.
type AllocOK struct {
	// Pos is the directive comment's position.
	Pos token.Pos
	// Reason is the justification text after the directive; analyzers
	// reject empty reasons.
	Reason string
}

var allocOKRE = regexp.MustCompile(`^//skylint:alloc-ok(?:\s+(.*))?`)

// scanAllocOK records file's alloc-ok directives into ok, keyed by the
// directive's own line and the line below it (the same convention as
// skylint:ignore: trailing comment or the line above the site).
func scanAllocOK(pass *analysis.Pass, file *ast.File, ok map[posKey]*AllocOK) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := allocOKRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			reason := m[1]
			// A later "//" starts a new directive or a fixture want
			// comment, not reason text.
			if i := strings.Index(reason, "//"); i >= 0 {
				reason = reason[:i]
			}
			w := &AllocOK{Pos: c.Pos(), Reason: strings.TrimSpace(reason)}
			pos := pass.Fset.Position(c.Pos())
			for _, line := range []int{pos.Line, pos.Line + 1} {
				ok[posKey{pos.Filename, line}] = w
			}
		}
	}
}

// AllocOKAt returns the waiver covering pos (a directive on pos's line
// or the line above), or nil.
func (g *Graph) AllocOKAt(pos token.Pos) *AllocOK {
	p := g.Fset.Position(pos)
	return g.allocOK[posKey{p.Filename, p.Line}]
}

// Roots returns the annotated hot-path roots for which keep returns
// true, in ID order. A nil keep selects every root (including invalid
// ones, so analyzers can report them).
func (g *Graph) Roots(keep func(HotScope) bool) []*Node {
	var roots []*Node
	for _, n := range g.Nodes {
		if n.Hot == HotNone {
			continue
		}
		if keep == nil || keep(n.Hot) {
			roots = append(roots, n)
		}
	}
	return roots
}

// Reach is the result of a reachability query: which nodes the selected
// roots reach, and through which first-discovered call chain.
type Reach struct {
	parent map[*Node]*Edge // discovery edge; nil for roots
	root   map[*Node]*Node // the root that first reached the node
}

// Reachable runs a breadth-first search from the roots selected by keep
// (see Roots). Traversal order is deterministic: roots in ID order,
// edges in (site, callee ID) order, so the recorded chains are stable
// across runs.
func (g *Graph) Reachable(keep func(HotScope) bool) *Reach {
	r := &Reach{
		parent: make(map[*Node]*Edge),
		root:   make(map[*Node]*Node),
	}
	queue := g.Roots(keep)
	for _, n := range queue {
		r.parent[n] = nil
		r.root[n] = n
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if _, seen := r.root[e.Callee]; seen {
				continue
			}
			r.parent[e.Callee] = e
			r.root[e.Callee] = r.root[n]
			queue = append(queue, e.Callee)
		}
	}
	return r
}

// Has reports whether n is reachable from the selected roots.
func (r *Reach) Has(n *Node) bool {
	_, ok := r.root[n]
	return ok
}

// Root returns the root that first reached n, or nil.
func (r *Reach) Root(n *Node) *Node { return r.root[n] }

// Chain returns the discovery path from n's root to n, inclusive.
func (r *Reach) Chain(n *Node) []*Node {
	if !r.Has(n) {
		return nil
	}
	var rev []*Node
	for cur := n; cur != nil; {
		rev = append(rev, cur)
		e := r.parent[cur]
		if e == nil {
			break
		}
		cur = e.Caller
	}
	chain := make([]*Node, len(rev))
	for i, n := range rev {
		chain[len(rev)-1-i] = n
	}
	return chain
}

// ChainString renders the chain to n as "root -> mid -> n" using short
// node names; hotalloc prints it in every finding.
func (r *Reach) ChainString(n *Node) string {
	chain := r.Chain(n)
	parts := make([]string, len(chain))
	for i, c := range chain {
		parts[i] = c.Name
	}
	return strings.Join(parts, " -> ")
}

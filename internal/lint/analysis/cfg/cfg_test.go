package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"crowdsky/internal/bitset"
)

// parse builds the CFG of the first function declaration in src.
func parse(t *testing.T, src string) (*Graph, *ast.FuncDecl) {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return New(fd.Body), fd
		}
	}
	t.Fatal("no function in src")
	return nil, nil
}

// exitReachable reports whether the exit block is reachable from entry.
func exitReachable(g *Graph) bool {
	return g.Reachable(g.Entry)[g.Exit.Index]
}

// callsInLiveBlocks collects the callee names of all CallExprs in blocks
// reachable from entry.
func callsInLiveBlocks(g *Graph) map[string]bool {
	live := g.Reachable(g.Entry)
	out := make(map[string]bool)
	for _, b := range g.Blocks {
		if !live[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
				return true
			})
		}
	}
	return out
}

func TestIfElseJoins(t *testing.T) {
	g, _ := parse(t, `func f(c bool) {
		if c { a() } else { b() }
		after()
	}`)
	if !exitReachable(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	calls := callsInLiveBlocks(g)
	for _, want := range []string{"a", "b", "after"} {
		if !calls[want] {
			t.Errorf("call %s not in a live block:\n%s", want, g)
		}
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g, _ := parse(t, `func f(c bool) {
		if c { return }
		after()
	}`)
	if !exitReachable(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if !callsInLiveBlocks(g)["after"] {
		t.Errorf("after() unreachable:\n%s", g)
	}
}

func TestForCondLoop(t *testing.T) {
	g, _ := parse(t, `func f(n int) {
		for i := 0; i < n; i++ { body() }
		after()
	}`)
	if !exitReachable(g) {
		t.Fatalf("exit unreachable (cond loop can run zero times):\n%s", g)
	}
	calls := callsInLiveBlocks(g)
	if !calls["body"] || !calls["after"] {
		t.Errorf("missing live calls: %v\n%s", calls, g)
	}
}

func TestInfiniteForHasNoExit(t *testing.T) {
	g, _ := parse(t, `func f() {
		for { body() }
	}`)
	if exitReachable(g) {
		t.Fatalf("for{} must not reach exit:\n%s", g)
	}
}

func TestInfiniteForWithBreakExits(t *testing.T) {
	g, _ := parse(t, `func f(c bool) {
		for {
			if c { break }
		}
		after()
	}`)
	if !exitReachable(g) {
		t.Fatalf("break must make exit reachable:\n%s", g)
	}
	if !callsInLiveBlocks(g)["after"] {
		t.Errorf("after() unreachable:\n%s", g)
	}
}

func TestLabeledBreakEscapesNestedLoop(t *testing.T) {
	g, _ := parse(t, `func f(c bool) {
	outer:
		for {
			for {
				if c { break outer }
			}
		}
		after()
	}`)
	if !exitReachable(g) {
		t.Fatalf("labeled break must make exit reachable:\n%s", g)
	}
}

func TestRangeZeroIterations(t *testing.T) {
	g, _ := parse(t, `func f(xs []int) {
		for range xs { body() }
		after()
	}`)
	if !exitReachable(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	g, _ := parse(t, `func f(x int) {
		switch x {
		case 1:
			one()
			fallthrough
		case 2:
			two()
		default:
			other()
		}
		after()
	}`)
	calls := callsInLiveBlocks(g)
	for _, want := range []string{"one", "two", "other", "after"} {
		if !calls[want] {
			t.Errorf("call %s not live: %v\n%s", want, calls, g)
		}
	}
	// With a default clause, the switch head must NOT edge straight to the
	// join: some clause always runs.
	g2, _ := parse(t, `func f(x int) {
		switch x {
		default:
			return
		}
		after()
	}`)
	if calls2 := callsInLiveBlocks(g2); calls2["after"] {
		t.Errorf("after() live despite always-returning default:\n%s", g2)
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g, _ := parse(t, `func f(x int) {
		switch x {
		case 1:
			return
		}
		after()
	}`)
	if !callsInLiveBlocks(g)["after"] {
		t.Errorf("switch without default must fall through:\n%s", g)
	}
}

func TestGotoJoinsLabel(t *testing.T) {
	g, _ := parse(t, `func f(c bool) {
		if c { goto done }
		work()
	done:
		after()
	}`)
	calls := callsInLiveBlocks(g)
	if !calls["work"] || !calls["after"] {
		t.Errorf("missing live calls: %v\n%s", calls, g)
	}
	if !exitReachable(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestGotoBackwardLoop(t *testing.T) {
	g, _ := parse(t, `func f(c bool) {
	again:
		work()
		if c { goto again }
	}`)
	if !exitReachable(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestDeferCollectedAndInBlock(t *testing.T) {
	g, _ := parse(t, `func f() {
		defer cleanup()
		work()
	}`)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	if !callsInLiveBlocks(g)["cleanup"] {
		t.Errorf("defer's call not recorded in its block:\n%s", g)
	}
}

func TestPanicEndsPath(t *testing.T) {
	g, _ := parse(t, `func f(c bool) {
		if !c {
			panic("boom")
		}
		after()
	}`)
	if !callsInLiveBlocks(g)["after"] {
		t.Errorf("after() must stay live on the non-panic path:\n%s", g)
	}
	g2, _ := parse(t, `func f() {
		panic("always")
	}`)
	if exitReachable(g2) {
		t.Errorf("unconditional panic must not reach exit:\n%s", g2)
	}
}

func TestOsExitEndsPath(t *testing.T) {
	g, _ := parse(t, `func f() {
		os.Exit(1)
	}`)
	if exitReachable(g) {
		t.Errorf("os.Exit must not reach exit:\n%s", g)
	}
}

func TestSelectCasesJoin(t *testing.T) {
	g, _ := parse(t, `func f(a, b chan int) {
		select {
		case <-a:
			one()
		case <-b:
			return
		}
		after()
	}`)
	calls := callsInLiveBlocks(g)
	if !calls["one"] || !calls["after"] {
		t.Errorf("missing live calls: %v\n%s", calls, g)
	}
}

func TestForSelectWithoutExitUnreachable(t *testing.T) {
	g, _ := parse(t, `func f(a chan int) {
		for {
			select {
			case <-a:
				handle()
			}
		}
	}`)
	if exitReachable(g) {
		t.Fatalf("for-select with no exit must not reach exit:\n%s", g)
	}
	g2, _ := parse(t, `func f(a, done chan int) {
		for {
			select {
			case <-a:
				handle()
			case <-done:
				return
			}
		}
	}`)
	if !exitReachable(g2) {
		t.Fatalf("returning select case must reach exit:\n%s", g2)
	}
}

// TestMustDataflowCancelCoverage runs the Must solver on the shape ctxleak
// cares about: fact 0 = "cancel was called". The call on only one branch
// must not survive the join; a defer right after creation must.
func TestMustDataflowCancelCoverage(t *testing.T) {
	run := func(src string) bool {
		g, _ := parse(t, src)
		flow := Flow{
			NFacts: 1,
			Meet:   Must,
			Gen: func(b *Block) bitset.Set {
				for _, n := range b.Nodes {
					found := false
					ast.Inspect(n, func(x ast.Node) bool {
						if call, ok := x.(*ast.CallExpr); ok {
							if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "cancel" {
								found = true
							}
						}
						return true
					})
					if found {
						s := bitset.New(1)
						s.Add(0)
						return s
					}
				}
				return nil
			},
		}
		res := flow.Solve(g)
		return res.In[g.Exit.Index].Has(0)
	}

	if run(`func f(c bool) {
		if c { cancel() }
	}`) {
		t.Errorf("cancel on one branch must not be a guarantee at exit")
	}
	if !run(`func f(c bool) {
		defer cancel()
		if c { return }
		work()
	}`) {
		t.Errorf("defer cancel() must guarantee the call at exit")
	}
	if !run(`func f(c bool) {
		if c {
			cancel()
			return
		}
		cancel()
	}`) {
		t.Errorf("cancel on every path must be a guarantee at exit")
	}
}

// Package cfg builds intraprocedural control-flow graphs over the
// standard library's go/ast, for the flow-sensitive skylint analyzers
// (ctxleak, wgbalance, goroleak). Like the rest of internal/lint it is a
// dependency-free miniature of its x/tools counterpart
// (golang.org/x/tools/go/cfg), covering the statement shapes that occur in
// this repository: if/else, for (with init/cond/post), range, switch and
// type switch (with fallthrough), select, labeled statements, goto,
// break/continue (labeled and bare), return, defer and panic.
//
// The graph is a set of basic blocks. Each block holds the AST nodes that
// execute unconditionally once the block is entered, in execution order,
// and edges to its possible successors. Two synthetic blocks bracket the
// function: Entry (no nodes, one successor) and Exit, which every
// `return` and the natural end of the body flow into. A statement that
// terminates the program — panic, os.Exit, log.Fatal* — ends its block
// with no successors: control never continues, and for leak analyses a
// crashing path is not a leaking path.
//
// Defer is deliberately simple: a DeferStmt appears as an ordinary node in
// the block where it executes (i.e. where the call is *registered*).
// Forward analyses that ask "is f guaranteed to be called once we pass
// this point" can treat the registration as the call, because a registered
// defer runs on every subsequent exit from the function, normal or
// panicking. The deferred calls are additionally collected in
// Graph.Defers for analyses that care.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable across builds
	// of the same function, useful for dataflow bitsets and tests).
	Index int
	// Kind is a human-readable tag ("entry", "if.then", "for.body", ...)
	// for tests and debugging; analyses should not dispatch on it.
	Kind string
	// Nodes are the statements and control expressions executed in order
	// when the block runs.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the function, in source order.
	Defers []*ast.DeferStmt
}

// New builds the control-flow graph of body. Pass the body of an
// *ast.FuncDecl or *ast.FuncLit; a nil body yields a trivial entry→exit
// graph. Function literals nested inside body are NOT traversed into —
// they have their own graphs — but the FuncLit node itself appears in the
// enclosing block (its construction is an ordinary expression).
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: make(map[string]*labelBlocks)}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	cur := b.newBlock("body")
	link(b.g.Entry, cur)
	if body != nil {
		cur = b.stmts(cur, body.List)
	}
	link(cur, b.g.Exit)
	return b.g
}

// Reachable returns the set of blocks reachable from, as a bitset indexed
// by Block.Index.
func (g *Graph) Reachable(from *Block) []bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(from)
	return seen
}

// String renders the graph compactly for tests: one line per block,
// "i(kind) -> succ,succ".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d(%s) ->", b.Index, b.Kind)
		for i, s := range b.Succs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// labelBlocks tracks the blocks a label can transfer control to.
type labelBlocks struct {
	// target is where `goto label` and the label's own statement jump to.
	target *Block
	// brk/cont are the break/continue targets when the label names a
	// for/switch/select statement; nil otherwise.
	brk, cont *Block
}

type builder struct {
	g      *Graph
	labels map[string]*labelBlocks
	// breaks/continues are the innermost targets for bare break/continue.
	breaks    []*Block
	continues []*Block
	// pendingLabel is set between a labeled statement's head and the
	// statement it labels, so for/switch/select can register their
	// break/continue blocks under the label.
	pendingLabel *labelBlocks
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur, returning the block where
// control continues (nil when the list cannot fall through).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt adds one statement to the graph starting at cur. A nil cur means
// the statement is unreachable (after return/goto); it still gets blocks —
// a label inside may make it reachable again.
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.append(cur, s.Init)
		}
		cur = b.append(cur, s.Cond)
		then := b.newBlock("if.then")
		link(cur, then)
		thenEnd := b.stmts(then, s.Body.List)
		join := b.newBlock("if.join")
		link(thenEnd, join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			link(cur, els)
			elsEnd := b.stmt(els, s.Else)
			link(elsEnd, join)
		} else {
			link(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.append(cur, s.Init)
		}
		head := b.newBlock("for.head")
		link(cur, head)
		join := b.newBlock("for.join")
		body := b.newBlock("for.body")
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			link(head, body)
			link(head, join)
		} else {
			// for {}: the join is reachable only via break.
			link(head, body)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			link(post, head)
		}
		b.registerLabel(join, post)
		b.pushLoop(join, post)
		bodyEnd := b.stmts(body, s.Body.List)
		b.popLoop()
		link(bodyEnd, post)
		return join

	case *ast.RangeStmt:
		cur = b.append(cur, s.X)
		head := b.newBlock("range.head")
		link(cur, head)
		join := b.newBlock("range.join")
		body := b.newBlock("range.body")
		link(head, body)
		link(head, join) // zero iterations
		b.registerLabel(join, head)
		b.pushLoop(join, head)
		bodyEnd := b.stmts(body, s.Body.List)
		b.popLoop()
		link(bodyEnd, head)
		return join

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.append(cur, s.Init)
		}
		if s.Tag != nil {
			cur = b.append(cur, s.Tag)
		}
		return b.switchBody(cur, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.append(cur, s.Init)
		}
		cur = b.append(cur, s.Assign)
		return b.switchBody(cur, s.Body, "typeswitch")

	case *ast.SelectStmt:
		join := b.newBlock("select.join")
		b.registerLabel(join, nil)
		b.pushBreak(join)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			link(cur, blk)
			if cc.Comm != nil {
				blk = b.stmt(blk, cc.Comm)
			}
			end := b.stmts(blk, cc.Body)
			link(end, join)
		}
		b.popBreak()
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no successor.
			_ = cur
			return b.newBlock("unreachable")
		}
		return join

	case *ast.ReturnStmt:
		cur = b.append(cur, s)
		link(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		return b.branch(cur, s)

	case *ast.LabeledStmt:
		lb := b.label(s.Label.Name)
		if lb.target == nil {
			lb.target = b.newBlock("label." + s.Label.Name)
		}
		link(cur, lb.target)
		b.pendingLabel = lb
		end := b.stmt(lb.target, s.Stmt)
		b.pendingLabel = nil
		return end

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		return b.append(cur, s)

	case *ast.ExprStmt:
		cur = b.append(cur, s)
		if IsTerminatingCall(s.X) {
			// panic/os.Exit: control never continues; a fresh block keeps
			// any following (dead) statements out of live paths.
			return nil
		}
		return cur

	case *ast.EmptyStmt:
		return cur

	default:
		// Assignments, declarations, sends, go statements, inc/dec:
		// straight-line nodes.
		return b.append(cur, s)
	}
}

// switchBody wires the case clauses of a switch/type switch. Go switch
// cases do not fall through by default; an explicit fallthrough statement
// jumps to the next clause's block.
func (b *builder) switchBody(cur *Block, body *ast.BlockStmt, kind string) *Block {
	join := b.newBlock(kind + ".join")
	b.registerLabel(join, nil)
	clauses := make([]*Block, len(body.List))
	hasDefault := false
	for i, c := range body.List {
		clauses[i] = b.newBlock(kind + ".case")
		link(cur, clauses[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		link(cur, join)
	}
	b.pushBreak(join)
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		blk := clauses[i]
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		end := b.stmtsWithFallthrough(blk, cc.Body, clauses, i)
		link(end, join)
	}
	b.popBreak()
	return join
}

// stmtsWithFallthrough is stmts, but a trailing fallthrough links to the
// next case clause instead of the join.
func (b *builder) stmtsWithFallthrough(cur *Block, list []ast.Stmt, clauses []*Block, i int) *Block {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			if i+1 < len(clauses) {
				link(cur, clauses[i+1])
			}
			return nil
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) branch(cur *Block, s *ast.BranchStmt) *Block {
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			if lb := b.label(s.Label.Name); lb.brk != nil {
				link(cur, lb.brk)
			}
		} else if n := len(b.breaks); n > 0 {
			link(cur, b.breaks[n-1])
		}
	case "continue":
		if s.Label != nil {
			if lb := b.label(s.Label.Name); lb.cont != nil {
				link(cur, lb.cont)
			}
		} else if n := len(b.continues); n > 0 {
			link(cur, b.continues[n-1])
		}
	case "goto":
		lb := b.label(s.Label.Name)
		if lb.target == nil {
			lb.target = b.newBlock("label." + s.Label.Name)
		}
		link(cur, lb.target)
	case "fallthrough":
		// Handled by stmtsWithFallthrough; a stray one ends the block.
	}
	return nil
}

func (b *builder) label(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[name] = lb
	}
	return lb
}

// registerLabel attaches break/continue targets to the label naming the
// loop/switch being built, if any.
func (b *builder) registerLabel(brk, cont *Block) {
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel.cont = cont
		b.pendingLabel = nil
	}
}

func (b *builder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(brk *Block) {
	b.breaks = append(b.breaks, brk)
	// A switch/select does not capture continue; keep the loop target by
	// pushing a sentinel copy of the current innermost one.
	if n := len(b.continues); n > 0 {
		b.continues = append(b.continues, b.continues[n-1])
	} else {
		b.continues = append(b.continues, nil)
	}
}

func (b *builder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// append adds node n to cur, allocating a fresh (unreachable) block when
// cur is nil so dead code still has a home.
func (b *builder) append(cur *Block, n ast.Node) *Block {
	if cur == nil {
		cur = b.newBlock("unreachable")
	}
	cur.Nodes = append(cur.Nodes, n)
	return cur
}

// IsTerminatingCall reports whether e is a call that never returns:
// panic(...), os.Exit(...), or log.Fatal*(...). Matching is syntactic
// (identifier names), which is exactly right for dead-path pruning — a
// local function shadowing `panic` would be vanishingly unidiomatic.
func IsTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		if pkg.Name == "os" && fun.Sel.Name == "Exit" {
			return true
		}
		if pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal") {
			return true
		}
		return false
	}
	return false
}

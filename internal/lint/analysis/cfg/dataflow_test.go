package cfg

import (
	"go/ast"
	"testing"

	"crowdsky/internal/bitset"
)

// callGen maps call names to fact bits: a block generates bit i when it
// contains a call to the ident named by bits' key i.
func callGen(bits map[string]int) func(b *Block) bitset.Set {
	n := len(bits)
	return func(b *Block) bitset.Set {
		var set bitset.Set
		for _, node := range b.Nodes {
			ast.Inspect(node, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					if bit, ok := bits[id.Name]; ok {
						if set == nil {
							set = bitset.New(n)
						}
						set.Add(bit)
					}
				}
				return true
			})
		}
		return set
	}
}

// blockCalling returns the block containing a call to name.
func blockCalling(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	gen := callGen(map[string]int{name: 0})
	for _, b := range g.Blocks {
		if s := gen(b); s != nil && s.Has(0) {
			return b
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

// TestDataflowIrreducibleLoop solves both confluence modes over a loop
// with two entry points (goto into the middle of a cycle) — the shape
// structured-loop-only solvers get wrong. pre dominates everything; onA
// is on only one of the two paths into B; the back edge B->A must carry
// onB around the cycle for May.
func TestDataflowIrreducibleLoop(t *testing.T) {
	g, _ := parse(t, `func f(c bool) {
	pre()
	if c {
		goto B
	}
A:
	onA()
	goto B
B:
	onB()
	if c {
		goto A
	}
}`)
	bits := map[string]int{"pre": 0, "onA": 1, "onB": 2}
	blkA := blockCalling(t, g, "onA")
	blkB := blockCalling(t, g, "onB")

	must := Flow{NFacts: 3, Meet: Must, Gen: callGen(bits)}.Solve(g)
	if !must.In[blkB.Index].Has(0) {
		t.Error("Must: pre not guaranteed at B despite dominating the function")
	}
	if must.In[blkB.Index].Has(1) {
		t.Error("Must: onA claimed guaranteed at B, but the direct goto skips A")
	}
	if must.In[blkA.Index].Has(2) {
		t.Error("Must: onB claimed guaranteed at A, but entry falls into A first")
	}
	if !must.In[g.Exit.Index].Has(0) {
		t.Error("Must: pre not guaranteed at exit")
	}

	may := Flow{NFacts: 3, Meet: May, Gen: callGen(bits)}.Solve(g)
	if !may.In[blkB.Index].Has(1) {
		t.Error("May: onA unseen at B despite the fall-through path")
	}
	if !may.In[blkA.Index].Has(2) {
		t.Error("May: onB unseen at A — the irreducible back edge was not iterated")
	}
}

// TestDataflowLabelledLoops checks fact propagation through labelled
// continue and break: continue outer must route through the range head
// (not the inner loop), and break outer must reach the block after the
// outer loop directly.
func TestDataflowLabelledLoops(t *testing.T) {
	g, _ := parse(t, `func g(xs []int) {
	acquire()
outer:
	for _, x := range xs {
		inner()
		for {
			if x == 0 {
				continue outer
			}
			if x == 1 {
				break outer
			}
			step()
		}
	}
	release()
}`)
	bits := map[string]int{"acquire": 0, "inner": 1, "step": 2}
	blkStep := blockCalling(t, g, "step")
	blkRelease := blockCalling(t, g, "release")

	must := Flow{NFacts: 3, Meet: Must, Gen: callGen(bits)}.Solve(g)
	if !must.In[blkRelease.Index].Has(0) {
		t.Error("Must: acquire not guaranteed at release")
	}
	if must.In[blkRelease.Index].Has(1) {
		t.Error("Must: inner claimed guaranteed at release, but the range may run zero iterations")
	}
	if must.In[blkRelease.Index].Has(2) {
		t.Error("Must: step claimed guaranteed at release, but break outer precedes it")
	}
	if !must.In[blkStep.Index].Has(1) {
		t.Error("Must: inner not guaranteed at step, but every path into the inner loop runs it")
	}

	may := Flow{NFacts: 3, Meet: May, Gen: callGen(bits)}.Solve(g)
	if !may.In[blkRelease.Index].Has(1) || !may.In[blkRelease.Index].Has(2) {
		t.Error("May: inner/step never observed at release")
	}
}

// TestDataflowKill checks the kill side of the transfer function across a
// loop: a fact generated before the loop and killed inside it must not
// survive a May join at the loop exit on the killing path, and must
// survive when the loop body may be skipped.
func TestDataflowKill(t *testing.T) {
	g, _ := parse(t, `func h(xs []int) {
	hold()
	for _, x := range xs {
		_ = x
		drop()
	}
	after()
}`)
	bits := map[string]int{"hold": 0}
	kills := map[string]int{"drop": 0}
	blkAfter := blockCalling(t, g, "after")

	must := Flow{NFacts: 1, Meet: Must, Gen: callGen(bits), Kill: callGen(kills)}.Solve(g)
	if must.In[blkAfter.Index].Has(0) {
		t.Error("Must: hold claimed to survive the loop, but an iteration drops it")
	}

	may := Flow{NFacts: 1, Meet: May, Gen: callGen(bits), Kill: callGen(kills)}.Solve(g)
	if !may.In[blkAfter.Index].Has(0) {
		t.Error("May: hold lost entirely, but the zero-iteration path keeps it")
	}
}

// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repository must build offline with the standard library only (see
// DESIGN.md), so instead of importing x/tools this package re-implements
// the small slice of its API that the skylint analyzers need. Analyzers
// written against it keep the familiar shape — a Name, a Doc string and a
// Run function over a Pass — which keeps a future migration to the real
// framework mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "skylint:ignore <name>" suppression comments. Lower-case, no spaces.
	Name string
	// Aliases are former names of the analyzer. Suppression comments
	// naming an alias keep working after a rename or subsumption
	// (nilness carries "niltrace", lockset carries "guardedby"), so
	// deprecating an analyzer never un-silences old findings.
	Aliases []string
	// Doc is a one-paragraph description, shown by skylint -help.
	Doc string
	// Run inspects the package behind pass and reports findings through
	// pass.Reportf. A returned error aborts the whole skylint run (reserve
	// it for internal failures, not findings).
	Run func(pass *Pass) error
	// Finish, when non-nil, runs once after Run has seen every package of
	// the skylint invocation. Program-wide analyzers (lockorder,
	// traceschema) accumulate facts in pass.Program().Fact during Run and
	// report from here, through the Pass each fact was recorded under, so
	// suppression comments keep working.
	Finish func(prog *Program) error
}

// Program is the cross-package state of one skylint run: every Pass of the
// run shares one Program, giving analyzers a place to accumulate facts
// (lock-order edges, event schemas) whose checks only make sense once the
// whole package set has been seen.
//
// Analyzers run package-by-package within a single goroutine, so Program
// needs no locking.
type Program struct {
	facts map[string]any
}

// NewProgram returns an empty fact store.
func NewProgram() *Program { return &Program{facts: make(map[string]any)} }

// Fact returns the fact value stored under key, creating it with init on
// first use. Keys are conventionally the analyzer name; an analyzer that
// stores several fact kinds suffixes the key ("lockorder.edges").
func (p *Program) Fact(key string, init func() any) any {
	v, ok := p.facts[key]
	if !ok {
		v = init()
		p.facts[key] = v
	}
	return v
}

// Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the import path ("crowdsky/internal/core"); fixture
	// packages loaded by analysistest use their directory name.
	PkgPath string
	// Info holds the type-checker results for Files (Types, Defs, Uses and
	// Selections are populated).
	Info *types.Info

	// report collects diagnostics; the driver sets it.
	report func(Diagnostic)
	// ignores maps file base + line to the analyzer names suppressed
	// there (see BuildIgnores).
	ignores map[ignoreKey]map[string]bool
	// prog is the run-wide fact store; the driver sets it.
	prog *Program
}

// Program returns the run-wide fact store shared by every pass of this
// skylint invocation. It is never nil once the driver has set it; a
// defensive lazy store covers hand-built passes in tests.
func (p *Pass) Program() *Program {
	if p.prog == nil {
		p.prog = NewProgram()
	}
	return p.prog
}

// SetProgram installs the shared fact store; the driver calls it before Run.
func (p *Pass) SetProgram(prog *Program) { p.prog = prog }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a finding at pos unless a "skylint:ignore" comment on
// the same line (or the line directly above) suppresses this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

type ignoreKey struct {
	file string
	line int
}

var ignoreRE = regexp.MustCompile(`skylint:ignore\s+([a-z][a-z0-9_,]*)`)

// BuildIgnores scans the package's comments for suppression directives of
// the form
//
//	// skylint:ignore <analyzer>[,<analyzer>...] [reason...]
//
// A directive suppresses the named analyzers on the line it appears on
// and, when the comment stands on a line of its own, on the following
// line. The driver calls this once per package before running analyzers.
func (p *Pass) BuildIgnores() {
	p.ignores = make(map[ignoreKey]map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				names := make(map[string]bool)
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						names[n] = true
					}
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := ignoreKey{pos.Filename, line}
					if p.ignores[key] == nil {
						p.ignores[key] = make(map[string]bool)
					}
					for n := range names {
						p.ignores[key][n] = true
					}
				}
			}
		}
	}
}

func (p *Pass) suppressed(pos token.Pos) bool {
	if p.ignores == nil {
		return false
	}
	pp := p.Fset.Position(pos)
	set := p.ignores[ignoreKey{pp.Filename, pp.Line}]
	if set[p.Analyzer.Name] || set["all"] {
		return true
	}
	for _, a := range p.Analyzer.Aliases {
		if set[a] {
			return true
		}
	}
	return false
}

// SetReporter installs the diagnostic sink; the driver calls it before Run.
func (p *Pass) SetReporter(fn func(Diagnostic)) { p.report = fn }

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// IsFloat reports whether t's underlying type is float32 or float64.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// NamedOf unwraps pointers and returns the named type behind t, or nil.
func NamedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// ExprString renders an expression compactly for matching and messages
// (selector chains and identifiers only; other expressions fall back to a
// positional placeholder, which never matches a selector chain).
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	default:
		return fmt.Sprintf("<expr@%d>", e.Pos())
	}
}

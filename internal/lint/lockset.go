package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/callgraph"
	"crowdsky/internal/lint/analysis/cfg"
)

// Lockset is the interprocedural successor of the guardedby analyzer
// (the name survives as a suppression alias). It verifies the
// "skylint:guardedby <mutex>" field annotation with a must-hold lockset
// dataflow over each function's CFG instead of the old lexical
// "Lock appears earlier in the source" approximation:
//
//   - flow sensitivity: Lock/RLock on the named mutex adds it to the
//     lockset, Unlock/RUnlock removes it, and at a join only locks held
//     on every incoming path survive. Accessing a guarded field after
//     mu.Unlock(), or under a lock taken in just one branch, is now a
//     diagnostic — both were invisible lexically.
//   - `defer mu.Unlock()` releases at function exit, so it does not end
//     the locked region; accesses inside other deferred closures are
//     checked against the lockset at their registration point.
//   - the *Locked suffix is a checked contract, not a blanket
//     exemption: a function named reapExpiredLocked may access guarded
//     fields freely, but its requirement propagates bottom-up through
//     the SCC-condensed call graph, and every call site that does not
//     hold the mutex — transitively, through other *Locked helpers —
//     is reported.
//
// Mutex identity is the final selector component before .Lock()
// (s.mu.Lock() and c.inner.mu.RLock() both name "mu"), matching how the
// annotation names its guard; RLock is accepted for reads and writes
// alike, as before.
var Lockset = &analysis.Analyzer{
	Name:    "lockset",
	Aliases: []string{"guardedby"},
	Doc: "fields annotated `skylint:guardedby mu` must only be accessed while " +
		"the named mutex is held on every path (must-hold lockset dataflow); " +
		"*Locked functions push the obligation to their call sites through the " +
		"call graph",
	Run:    locksetRun,
	Finish: locksetFinish,
}

func locksetRun(pass *analysis.Pass) error {
	callgraph.Shared(pass)
	hotPasses(pass, "lockset.passes")
	guarded := collectGuardAnnotations(pass, func(pos token.Pos, mu string) {
		pass.Reportf(pos, "skylint:guardedby names %q, but the struct has no such field", mu)
	})
	merged := pass.Program().Fact("lockset.guarded", func() any {
		return make(map[types.Object]string)
	}).(map[types.Object]string)
	for obj, mu := range guarded {
		merged[obj] = mu
	}
	return nil
}

func locksetFinish(prog *analysis.Program) error {
	b, ok := prog.Fact("callgraph.builder", func() any { return nil }).(*callgraph.Builder)
	if !ok || b == nil {
		return nil
	}
	guarded := prog.Fact("lockset.guarded", func() any {
		return make(map[types.Object]string)
	}).(map[types.Object]string)
	if len(guarded) == 0 {
		return nil
	}
	passes := prog.Fact("lockset.passes", func() any {
		return make(map[string]*analysis.Pass)
	}).(map[string]*analysis.Pass)
	g := b.Graph()

	funcs := make(map[*callgraph.Node]*lockFunc)
	lockFuncOf := func(n *callgraph.Node) *lockFunc {
		if lf, ok := funcs[n]; ok {
			return lf
		}
		lf := buildLockFunc(n, guarded)
		funcs[n] = lf
		return lf
	}

	// Phase 1: bottom-up requirement summaries. Only *Locked-named
	// functions carry the caller-holds contract; everything else reports
	// its own misses in phase 2, so its summary is empty. Summaries only
	// grow, and a cyclic component reads its in-flight members as empty
	// until the fixpoint closes.
	summaries := g.BottomUp(func(n *callgraph.Node, get func(*callgraph.Node) any) any {
		if !lockedContract(n) {
			return ""
		}
		lf := lockFuncOf(n)
		if lf == nil {
			return ""
		}
		req := make(map[string]bool)
		lf.misses(calleeRequiresFn(func(cn *callgraph.Node) string {
			s, _ := get(cn).(string)
			return s
		}), func(ev lockEvent, mu, callee string) {
			req[mu] = true
		})
		return encodeRequires(req)
	})
	finalRequires := calleeRequiresFn(func(cn *callgraph.Node) string {
		s, _ := summaries[cn].(string)
		return s
	})

	// Phase 2: report misses in every function that does not itself
	// carry the *Locked contract. Literal nodes are skipped: closures
	// are checked lexically inside their enclosing function, with the
	// lockset at the point the literal appears — the same approximation
	// a reviewer applies to `defer func() { ... }()` cleanup bodies.
	for _, n := range g.Nodes {
		pass := passes[n.PkgPath]
		if pass == nil || n.Lit != nil || lockedContract(n) {
			continue
		}
		lf := lockFuncOf(n)
		if lf == nil {
			continue
		}
		fn := n.Name
		if n.Decl != nil {
			fn = funcDesc(n.Decl)
		}
		lf.misses(finalRequires, func(ev lockEvent, mu, callee string) {
			if ev.kind == lockAccess {
				pass.Reportf(ev.pos,
					"%s is guarded by %q (skylint:guardedby) but %s does not lock it before this access; use the accessor/Snapshot path or take the lock",
					ev.obj.Name(), mu, fn)
				return
			}
			pass.Reportf(ev.pos,
				"call to %s requires %q held (skylint:guardedby): it touches guarded fields under the *Locked caller-holds contract, but %s does not lock it before this call",
				callee, mu, fn)
		})
	}
	return nil
}

// lockedContract reports whether n's accesses are the caller's
// responsibility: by the standard Go convention, a name ending in
// "Locked" declares "caller holds the lock".
func lockedContract(n *callgraph.Node) bool {
	return n.Decl != nil && strings.HasSuffix(n.Decl.Name.Name, "Locked")
}

// calleeRequiresFn adapts a summary accessor into the per-call-site
// requirement lookup the miss walk consumes: given the call position it
// yields every (callee, mutex) obligation recorded for edges at that
// site.
func calleeRequiresFn(summaryOf func(*callgraph.Node) string) func(lf *lockFunc, pos token.Pos) []calleeReq {
	return func(lf *lockFunc, pos token.Pos) []calleeReq {
		var out []calleeReq
		for _, cn := range lf.sites[pos] {
			for _, mu := range decodeRequires(summaryOf(cn)) {
				out = append(out, calleeReq{callee: cn.Name, mu: mu})
			}
		}
		return out
	}
}

type calleeReq struct {
	callee string
	mu     string
}

func encodeRequires(req map[string]bool) string {
	if len(req) == 0 {
		return ""
	}
	names := make([]string, 0, len(req))
	for mu := range req {
		names = append(names, mu)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func decodeRequires(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// ---------------------------------------------------------------------
// Per-function lockset machinery

type lockEventKind uint8

const (
	lockAcquire lockEventKind = iota // mu.Lock() / mu.RLock()
	lockRelease                      // mu.Unlock() / mu.RUnlock()
	lockAccess                       // read or write of a guarded field
	lockCall                         // any other call (requirement discharge point)
)

type lockEvent struct {
	kind lockEventKind
	name string       // mutex name (acquire/release) or guard name (access)
	obj  types.Object // accessed field, for the diagnostic
	pos  token.Pos
}

// lockItem is one entry of a block's event sequence: either a plain
// event or the event group of a DeferStmt subtree, which is simulated
// against a copy of the lockset at its registration point (the deferred
// body runs at exit, but a registered `defer mu.Unlock()` must not end
// the locked region for the statements that follow it).
type lockItem struct {
	ev    lockEvent
	group []lockEvent
}

type lockFunc struct {
	g     *cfg.Graph
	items [][]lockItem
	sites map[token.Pos][]*callgraph.Node
}

func buildLockFunc(n *callgraph.Node, guarded map[types.Object]string) *lockFunc {
	if n.Body == nil || n.Pass == nil {
		return nil
	}
	lf := &lockFunc{
		g:     cfg.New(n.Body),
		sites: make(map[token.Pos][]*callgraph.Node),
	}
	for _, e := range n.Out {
		lf.sites[e.Site] = append(lf.sites[e.Site], e.Callee)
	}
	lf.items = make([][]lockItem, len(lf.g.Blocks))
	for _, blk := range lf.g.Blocks {
		for _, node := range blk.Nodes {
			lf.items[blk.Index] = scanLockItems(lf.items[blk.Index], node, n.Pass.Info, guarded)
		}
	}
	return lf
}

// scanLockItems appends the lock-relevant events of node in source
// order. Function literals are scanned inline: the closure's body is
// treated as running where the literal appears, which keeps the
// `mu.Lock(); defer func() { ...; mu.Unlock() }()` idiom and
// goroutine-body accesses under the same lexical discipline the old
// analyzer applied.
func scanLockItems(items []lockItem, node ast.Node, info *types.Info, guarded map[types.Object]string) []lockItem {
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.DeferStmt:
			items = append(items, lockItem{group: scanDeferEvents(x.Call, info, guarded)})
			return false
		case *ast.CallExpr:
			if ev, ok := lockCallEvent(x); ok {
				items = append(items, lockItem{ev: ev})
			} else {
				items = append(items, lockItem{ev: lockEvent{kind: lockCall, pos: x.Pos()}})
			}
		case *ast.SelectorExpr:
			if obj := info.Uses[x.Sel]; obj != nil {
				if mu, ok := guarded[obj]; ok {
					items = append(items, lockItem{ev: lockEvent{kind: lockAccess, name: mu, obj: obj, pos: x.Sel.Pos()}})
				}
			}
		}
		return true
	})
	return items
}

// scanDeferEvents flattens a deferred call's subtree into one event
// group; nested defers inside a deferred closure fold in as well.
func scanDeferEvents(root ast.Node, info *types.Info, guarded map[types.Object]string) []lockEvent {
	var evs []lockEvent
	for _, it := range scanLockItems(nil, root, info, guarded) {
		if it.group != nil {
			evs = append(evs, it.group...)
		} else {
			evs = append(evs, it.ev)
		}
	}
	return evs
}

// lockCallEvent classifies mu.Lock/RLock/Unlock/RUnlock calls. The
// mutex name is the final selector component before the method:
// s.mu.Lock(), c.inner.mu.RLock(), and mu.Lock() all name their last
// path element.
func lockCallEvent(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var kind lockEventKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return lockEvent{}, false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return lockEvent{kind: kind, name: x.Sel.Name, pos: call.Pos()}, true
	case *ast.Ident:
		return lockEvent{kind: kind, name: x.Name, pos: call.Pos()}, true
	}
	return lockEvent{}, false
}

// inSets solves the forward must-hold dataflow: a mutex is in a block's
// entry set only if it is held on every path from function entry. nil
// means "not yet reached" (top); unreachable blocks keep it.
func (lf *lockFunc) inSets() []map[string]bool {
	nblocks := len(lf.g.Blocks)
	preds := make([][]int, nblocks)
	for _, blk := range lf.g.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk.Index)
		}
	}
	in := make([]map[string]bool, nblocks)
	out := make([]map[string]bool, nblocks)
	in[lf.g.Entry.Index] = map[string]bool{}
	work := []int{lf.g.Entry.Index}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		o := lf.transfer(i, in[i])
		if lockSetsEqual(o, out[i]) {
			continue
		}
		out[i] = o
		for _, s := range lf.g.Blocks[i].Succs {
			var m map[string]bool
			for _, p := range preds[s.Index] {
				if out[p] == nil {
					continue // top: identity for intersection
				}
				if m == nil {
					m = copyLockSet(out[p])
				} else {
					for mu := range m {
						if !out[p][mu] {
							delete(m, mu)
						}
					}
				}
			}
			if m != nil && !lockSetsEqual(m, in[s.Index]) {
				in[s.Index] = m
				work = append(work, s.Index)
			}
		}
	}
	return in
}

func (lf *lockFunc) transfer(blk int, in map[string]bool) map[string]bool {
	s := copyLockSet(in)
	for _, it := range lf.items[blk] {
		if it.group != nil {
			continue // deferred: runs at exit, no effect on the flow here
		}
		switch it.ev.kind {
		case lockAcquire:
			s[it.ev.name] = true
		case lockRelease:
			delete(s, it.ev.name)
		}
	}
	return s
}

// misses replays each reachable block with its solved entry set and
// calls miss for every guarded access without its mutex held and every
// call site that fails to discharge a callee's *Locked requirement.
func (lf *lockFunc) misses(requiresAt func(*lockFunc, token.Pos) []calleeReq, miss func(ev lockEvent, mu, callee string)) {
	in := lf.inSets()
	for _, blk := range lf.g.Blocks {
		if in[blk.Index] == nil {
			continue // unreachable
		}
		cur := copyLockSet(in[blk.Index])
		for _, it := range lf.items[blk.Index] {
			if it.group != nil {
				local := copyLockSet(cur)
				for _, ev := range it.group {
					lf.step(local, ev, requiresAt, miss)
				}
				continue
			}
			lf.step(cur, it.ev, requiresAt, miss)
		}
	}
}

func (lf *lockFunc) step(set map[string]bool, ev lockEvent, requiresAt func(*lockFunc, token.Pos) []calleeReq, miss func(ev lockEvent, mu, callee string)) {
	switch ev.kind {
	case lockAcquire:
		set[ev.name] = true
	case lockRelease:
		delete(set, ev.name)
	case lockAccess:
		if !set[ev.name] {
			miss(ev, ev.name, "")
		}
	case lockCall:
		for _, r := range requiresAt(lf, ev.pos) {
			if !set[r.mu] {
				miss(ev, r.mu, r.callee)
			}
		}
	}
}

func copyLockSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func lockSetsEqual(a, b map[string]bool) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdsky/internal/lint/analysis"
)

// NilTrace keeps trace emission nil-safe: Options.Tracer is nil for every
// untraced run (the documented "disabled at the cost of one pointer
// comparison" contract), so calling Emit on a Tracer-typed expression
// without first proving it non-nil is a latent panic on the untraced hot
// path — precisely where tests with tracing enabled never go.
//
// A call x.Emit(...) on an expression whose static type is the Tracer
// interface is accepted when
//
//   - it sits inside an `if x != nil { ... }` body (possibly conjoined
//     with other conditions), or
//   - an earlier `if x == nil { return/panic }` guard dominates it, or
//   - the call goes through the nil-safe helper telemetry.Emit (a plain
//     function call, which this analyzer does not match).
//
// Concrete tracer implementations (e.g. *telemetry.Collector) have
// non-nil method sets of their own and are not flagged.
var NilTrace = &analysis.Analyzer{
	Name: "niltrace",
	Doc: "Emit calls on Tracer-typed values must be nil-guarded or use the " +
		"nil-safe telemetry.Emit helper",
	Run: runNilTrace,
}

func runNilTrace(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkNilTraceInFunc(pass, fd)
		}
	}
	return nil
}

// nilGuard is one region of the function where expr is known non-nil.
type nilGuard struct {
	expr     string
	from, to token.Pos
}

func checkNilTraceInFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var guards []nilGuard
	ast.Inspect(fd, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		// `if x != nil { body }`: x is non-nil inside the body.
		for _, e := range nilComparisons(ifs.Cond, token.NEQ) {
			guards = append(guards, nilGuard{expr: e, from: ifs.Body.Pos(), to: ifs.Body.End()})
		}
		// `if x == nil { return }`: x is non-nil after the statement.
		if blockDiverges(ifs.Body) {
			for _, e := range nilComparisons(ifs.Cond, token.EQL) {
				guards = append(guards, nilGuard{expr: e, from: ifs.End(), to: fd.End()})
			}
		}
		return true
	})
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Emit" {
			return true
		}
		if !isTracerInterface(pass.TypeOf(sel.X)) {
			return true
		}
		recv := analysis.ExprString(sel.X)
		for _, g := range guards {
			if g.expr == recv && g.from <= call.Pos() && call.Pos() < g.to {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"%s.Emit called without a nil guard: %s has interface type Tracer and is nil for untraced runs; wrap in `if %s != nil` or use telemetry.Emit",
			recv, recv, recv)
		return true
	})
}

// nilComparisons returns the rendered expressions compared against nil
// with the given operator anywhere inside cond (through && / || / parens).
func nilComparisons(cond ast.Expr, op token.Token) []string {
	var out []string
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		if isNilIdent(be.Y) {
			out = append(out, analysis.ExprString(be.X))
		} else if isNilIdent(be.X) {
			out = append(out, analysis.ExprString(be.Y))
		}
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// blockDiverges reports whether the block's last statement leaves the
// enclosing scope (return, panic, continue, break, goto), making an
// `== nil` check an early-exit guard.
func blockDiverges(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	default:
		return false
	}
}

// isTracerInterface reports whether t is an interface type named Tracer
// (the telemetry.Tracer contract, or a fixture-local equivalent).
func isTracerInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	named := analysis.NamedOf(t)
	if named == nil || named.Obj().Name() != "Tracer" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}

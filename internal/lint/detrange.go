package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdsky/internal/lint/analysis"
)

// DetRange guards the determinism contracts: the |DS|-ascending evaluation
// order of Lemma 3 / Corollary 1, reproducible experiment tables, stable
// marketplace snapshots and stable metrics exposition. Go's map iteration
// order is deliberately randomized, so a `range` over a map whose body
// appends to a slice produces a differently-ordered slice on every run —
// the classic way to silently break all of the above.
//
// The analyzer flags such loops in the deterministic components (core,
// skyline, experiments, crowdserve, telemetry) unless the enclosing
// function visibly restores determinism with a sort (any call into the
// sort or slices packages after the loop starts). Loops that only
// aggregate (sum, count, write into another map) are order-insensitive and
// not flagged.
var DetRange = &analysis.Analyzer{
	Name: "detrange",
	Doc: "range over a map feeding append in deterministic algorithm paths " +
		"must be followed by a sort (map iteration order is randomized)",
	Run: runDetRange,
}

func runDetRange(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath, pass.Pkg.Name(), "core", "skyline", "experiments", "crowdserve", "telemetry") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDetRangeInFunc(pass, fd)
		}
	}
	return nil
}

func checkDetRangeInFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Sort calls anywhere in the function, by position; a sort at or after
	// the loop's start restores a deterministic order for its output.
	var sortPos []token.Pos
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				sortPos = append(sortPos, call.Pos())
			}
		}
		return true
	})
	ast.Inspect(fd, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
			return true
		}
		if !bodyAppends(rs.Body) {
			return true
		}
		for _, sp := range sortPos {
			if sp >= rs.Pos() {
				return true // sorted afterwards: deterministic again
			}
		}
		pass.Reportf(rs.Pos(),
			"range over map %s feeds append: iteration order is randomized, breaking the deterministic-order contract; sort the keys first or sort the result",
			analysis.ExprString(rs.X))
		return true
	})
}

// bodyAppends reports whether the loop body contains a call to the
// builtin append — the signature of building an ordered slice from the
// iteration.
func bodyAppends(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

package lint_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crowdsky/internal/lint"
	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/loader"
)

// TestBaselineAcrossRoots pins the path contract of lint.Run: findings are
// reported repo-relative with forward slashes, so two checkouts of the
// same tree under different absolute roots produce byte-identical findings
// — and a baseline recorded under one suppresses the same finding under
// the other.
func TestBaselineAcrossRoots(t *testing.T) {
	const src = `package p

//skylint:hotpath
func Hot() map[int]int {
	return make(map[int]int)
}
`
	writeFixture := func(t *testing.T) string {
		t.Helper()
		root := t.TempDir()
		if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Mkdir(filepath.Join(root, "p"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, "p", "p.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return root
	}
	run := func(t *testing.T, root string) []lint.Finding {
		t.Helper()
		findings, err := lint.Run(root, []string{"./..."}, []*analysis.Analyzer{lint.HotAlloc}, loader.Options{})
		if err != nil {
			t.Fatalf("lint.Run under %s: %v", root, err)
		}
		if len(findings) == 0 {
			t.Fatalf("fixture under %s produced no findings", root)
		}
		return findings
	}

	f1 := run(t, writeFixture(t))
	f2 := run(t, writeFixture(t))
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("findings differ across roots:\n%v\nvs\n%v", f1, f2)
	}
	if want := "p/p.go"; f1[0].File != want {
		t.Fatalf("finding path = %q, want repo-relative slash path %q", f1[0].File, want)
	}

	// Record the baseline against the first checkout's findings and apply
	// it to the second's: everything is suppressed, nothing is stale.
	entries := make([]lint.BaselineEntry, len(f1))
	for i, f := range f1 {
		entries[i] = lint.BaselineEntry{
			File:     f.File,
			Analyzer: f.Analyzer,
			Message:  f.Message,
			Reason:   "recorded under another checkout for the cross-root test",
		}
	}
	kept, stale := lint.ApplyBaseline(f2, entries)
	if len(kept) != 0 || len(stale) != 0 {
		t.Fatalf("baseline did not transfer across roots: kept=%v stale=%v", kept, stale)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/analysis/callgraph"
	"crowdsky/internal/lint/analysis/ssa"
)

// Nilness is the SSA-based nil-deref analyzer. It subsumes the retired
// niltrace analyzer (the name survives as an alias for suppression
// comments) and generalizes it in three directions:
//
//   - flow and path sensitivity: `if x != nil` refines x through an SSA
//     pi node on the branch edge, so a guard anywhere the deref is
//     dominated by counts, not just the syntactic `if` body;
//   - general dereference shapes: pointer loads and stores (*p, p.f),
//     nil-map writes, nil-slice indexing, calls through nil function
//     values and nil interfaces — reported whenever a nil definition
//     (literal nil, a `var` zero value, an `== nil` branch) reaches the
//     site, definitely or on at least one path;
//   - interprocedural summaries: every function gets a bottom-up
//     per-result nilness summary over the call graph, so dereferencing
//     the unchecked result of a conditionally-nil-returning function is
//     flagged at the call site. For (T, error) results the summary only
//     reflects paths where the returned error is not provably non-nil —
//     the `return nil, err` idiom does not taint callers that cannot
//     observe it.
//
// The Tracer policy is inherited from niltrace unchanged: x.Emit(...) on
// an expression whose static type is the Tracer interface must be proven
// non-nil (Options.Tracer is nil for every untraced run). Where the SSA
// builder cannot track the receiver (package-level vars, closure
// captures), the original syntactic guard matching applies as a
// fallback, so precision is a strict superset of niltrace's.
var Nilness = &analysis.Analyzer{
	Name:    "nilness",
	Aliases: []string{"niltrace"},
	Doc: "reports nil dereferences proven by SSA value flow: unguarded Emit on " +
		"Tracer values, loads/stores through nil pointers, nil-map writes, calls " +
		"through nil funcs and interfaces, and unchecked use of results from " +
		"conditionally-nil-returning functions (call-graph summaries)",
	Run:    nilnessRun,
	Finish: nilnessFinish,
}

func nilnessRun(pass *analysis.Pass) error {
	callgraph.Shared(pass)
	hotPasses(pass, "nilness.passes")
	return nil
}

func nilnessFinish(prog *analysis.Program) error {
	b, ok := prog.Fact("callgraph.builder", func() any { return nil }).(*callgraph.Builder)
	if !ok || b == nil {
		return nil
	}
	passes := prog.Fact("nilness.passes", func() any {
		return make(map[string]*analysis.Pass)
	}).(map[string]*analysis.Pass)
	g := b.Graph()
	cache := sharedSSA(prog)

	// Phase 1: bottom-up per-result nilness summaries. Callees in earlier
	// SCCs are final; in-flight members of the same SCC read as bottom
	// and the component iterates to a fixpoint (summaries only grow).
	summaries := g.BottomUp(func(n *callgraph.Node, get func(*callgraph.Node) any) any {
		f := cache.Func(n)
		if f == nil {
			return nilSummaryUnknown
		}
		facts := solveNilness(f, func(fn *types.Func) string {
			if fn == nil {
				return nilSummaryUnknown
			}
			if cn := g.Lookup(callgraph.FuncID(fn)); cn != nil {
				s, _ := get(cn).(string)
				return s // "" while cn's own SCC is still iterating: bottom
			}
			return nilSummaryUnknown
		})
		return encodeNilSummary(nodeSignature(n), f, facts)
	})
	finalSummary := func(fn *types.Func) string {
		if fn == nil {
			return nilSummaryUnknown
		}
		if n := g.Lookup(callgraph.FuncID(fn)); n != nil {
			if s, ok := summaries[n].(string); ok {
				return s
			}
		}
		return nilSummaryUnknown
	}

	// Syntactic Tracer guards per package, the fallback for receivers the
	// SSA builder does not track (globals, closure captures).
	guardsByPkg := make(map[string][]nilGuard)
	for path, pass := range passes {
		guardsByPkg[path] = collectNilGuards(pass)
	}

	// Phase 2: re-solve each function against the final summaries and
	// walk its dereference sites. Nodes are in ID order, so diagnostics
	// are deterministic.
	for _, n := range g.Nodes {
		pass := passes[n.PkgPath]
		if pass == nil || n.Body == nil {
			continue
		}
		f := cache.Func(n)
		if f == nil {
			continue
		}
		c := &nilnessCheck{
			pass:   pass,
			f:      f,
			facts:  solveNilness(f, finalSummary),
			guards: guardsByPkg[n.PkgPath],
		}
		c.walk(n.Body)
	}
	return nil
}

// ---------------------------------------------------------------------
// Intraprocedural solve

// solveNilness runs the nilness lattice over f, consulting summaryOf for
// the per-result nilness of static callees.
func solveNilness(f *ssa.Func, summaryOf func(*types.Func) string) []ssa.Nilness {
	p := ssa.Problem[ssa.Nilness]{
		Join:   ssa.JoinNilness,
		Refine: ssa.RefineNilness,
		Transfer: func(v *ssa.Value, get func(*ssa.Value) ssa.Nilness) ssa.Nilness {
			return nilnessTransfer(v, get, summaryOf)
		},
	}
	return p.Solve(f)
}

func nilnessTransfer(v *ssa.Value, get func(*ssa.Value) ssa.Nilness, summaryOf func(*types.Func) string) ssa.Nilness {
	switch v.Kind {
	case ssa.KConst:
		if v.IsNil {
			return ssa.NilBit
		}
		return ssa.NonNilBit
	case ssa.KCall:
		switch {
		case v.Builtin == "make" || v.Builtin == "new":
			return ssa.NonNilBit
		case v.Builtin != "":
			return ssa.UnknownBit
		case v.IsConvert && len(v.Args) == 1:
			return get(v.Args[0]) // conversions preserve nilness
		case v.Callee != nil:
			return resultNilness(summaryOf(v.Callee), 0)
		}
		return ssa.UnknownBit
	case ssa.KExtract:
		if len(v.Args) == 1 {
			if c := v.Args[0]; c.Kind == ssa.KCall && c.Callee != nil && !c.IsConvert && c.Builtin == "" {
				return resultNilness(summaryOf(c.Callee), v.Index)
			}
		}
		return ssa.UnknownBit
	case ssa.KExpr:
		switch node := v.Node.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				return ssa.NonNilBit // &x is never nil
			}
		case *ast.CompositeLit, *ast.FuncLit:
			return ssa.NonNilBit
		}
		return ssa.UnknownBit
	default: // KParam, KOutDef, KUndef
		return ssa.UnknownBit
	}
}

// ---------------------------------------------------------------------
// Summaries

// A nilness summary is one byte per result: '0'+Nilness bitmask, joined
// over the function's return statements. nilSummaryUnknown marks
// functions outside the program (or without a body); the empty string is
// the in-flight bottom of a cyclic component.
const nilSummaryUnknown = "?"

// resultNilness decodes result i of a summary.
func resultNilness(s string, i int) ssa.Nilness {
	if s == "" {
		return 0
	}
	if s == nilSummaryUnknown || i >= len(s) {
		return ssa.UnknownBit
	}
	return ssa.Nilness(s[i] - '0')
}

// encodeNilSummary joins the solved nilness of every returned value into
// the per-result summary string. Return statements whose trailing error
// result is provably non-nil contribute nothing to the earlier results:
// a correct caller checks the error before touching them, so the
// `return nil, err` arm must not mark the primary result nil-on-some-path.
func encodeNilSummary(sig *types.Signature, f *ssa.Func, facts []ssa.Nilness) string {
	width := 0
	if sig != nil {
		width = sig.Results().Len()
	}
	for _, vals := range f.ReturnVals {
		if len(vals) > width {
			width = len(vals)
		}
	}
	if width == 0 {
		return nilSummaryUnknown
	}
	errTrailing := sig != nil && width >= 2 && types.Identical(sig.Results().At(width-1).Type(), errorType)
	states := make([]ssa.Nilness, width)
	for _, vals := range f.ReturnVals {
		onErrPath := false
		if errTrailing && len(vals) == width {
			// The arm is an error path when the returned error cannot be
			// nil here: provably non-nil (an `err != nil` region) or of
			// unknown-but-never-nil provenance (errors.New, fmt.Errorf).
			if last := vals[width-1]; last != nil {
				if st := facts[last.ID]; st != 0 && st&ssa.NilBit == 0 {
					onErrPath = true
				}
			}
		}
		for i, v := range vals {
			if v == nil || i >= width {
				continue
			}
			if onErrPath && i < width-1 {
				continue
			}
			states[i] |= facts[v.ID]
		}
	}
	buf := make([]byte, width)
	for i, s := range states {
		buf[i] = '0' + byte(s)
	}
	return string(buf)
}

// nodeSignature resolves the type signature of a call-graph node.
func nodeSignature(n *callgraph.Node) *types.Signature {
	switch {
	case n.Decl != nil && n.Pass != nil:
		if obj, ok := n.Pass.Info.Defs[n.Decl.Name].(*types.Func); ok {
			sig, _ := obj.Type().(*types.Signature)
			return sig
		}
	case n.Lit != nil && n.Pass != nil:
		sig, _ := n.Pass.Info.TypeOf(n.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// ---------------------------------------------------------------------
// Dereference walk

type nilnessCheck struct {
	pass   *analysis.Pass
	f      *ssa.Func
	facts  []ssa.Nilness
	guards []nilGuard
	local  []nilGuard
}

// walk visits one function unit's dereference sites. Nested literals are
// their own call-graph nodes and are skipped here.
func (c *nilnessCheck) walk(body ast.Node) {
	c.local = collectCondGuards(body)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.call(x)
		case *ast.StarExpr:
			if tv, ok := c.pass.Info.Types[x]; ok && tv.IsValue() {
				c.deref(x.X, "dereference")
			}
		case *ast.SelectorExpr:
			c.selector(x)
		case *ast.IndexExpr:
			c.index(x)
		case *ast.AssignStmt:
			c.mapWrites(x)
		}
		return true
	})
}

// selector flags field loads/stores through a nil pointer base.
func (c *nilnessCheck) selector(x *ast.SelectorExpr) {
	sel, ok := c.pass.Info.Selections[x]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	t := c.pass.TypeOf(x.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		c.deref(x.X, "field access")
	}
}

// index flags indexing a nil *array. Nil-map reads are legal, map
// writes are handled by mapWrites, and nil-slice indexing is a bounds
// failure rather than a nilness one (s[i] on a nil slice panics exactly
// when it would on any empty slice), so slices are deliberately out of
// scope here.
func (c *nilnessCheck) index(x *ast.IndexExpr) {
	t := c.pass.TypeOf(x.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		c.deref(x.X, "index expression")
	}
}

// mapWrites flags assignments into a nil map.
func (c *nilnessCheck) mapWrites(a *ast.AssignStmt) {
	for _, lhs := range a.Lhs {
		ie, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		t := c.pass.TypeOf(ie.X)
		if t == nil {
			continue
		}
		if _, ok := t.Underlying().(*types.Map); ok {
			c.deref(ie.X, "map write")
		}
	}
}

func (c *nilnessCheck) call(call *ast.CallExpr) {
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Emit" && isTracerInterface(c.pass.TypeOf(fun.X)) {
			c.tracerEmit(call, fun)
			return
		}
		if sel, ok := c.pass.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				if types.IsInterface(sel.Recv()) {
					c.deref(fun.X, "interface method call")
				}
			case types.FieldVal:
				c.deref(fun, "call") // calling a function-valued field
			}
		}
	case *ast.Ident:
		switch c.pass.Info.Uses[fun].(type) {
		case *types.Func, *types.Builtin, nil:
			return
		}
		c.deref(fun, "call") // calling a function-typed variable
	}
}

// tracerEmit enforces the inherited niltrace contract: Emit on a
// Tracer-typed value must be proven non-nil, with unknown provenance
// counting as unguarded. Receivers the SSA builder tracks get the
// path-sensitive verdict; everything else falls back to the syntactic
// guard ranges.
func (c *nilnessCheck) tracerEmit(call *ast.CallExpr, sel *ast.SelectorExpr) {
	recv := analysis.ExprString(sel.X)
	if v := c.f.ValueOf[sel.X]; v != nil && v.Var != nil && !c.facts[v.ID].MayBeNil() {
		return
	}
	if c.guardedAt(recv, call.Pos()) {
		return
	}
	c.pass.Reportf(call.Pos(),
		"%s.Emit called without a nil guard: %s has interface type Tracer and is nil for untraced runs; wrap in `if %s != nil` or use telemetry.Emit",
		recv, recv, recv)
}

// deref reports when a nil definition reaches expr at a dereference.
func (c *nilnessCheck) deref(expr ast.Expr, shape string) {
	v := c.f.ValueOf[ast.Unparen(expr)]
	if v == nil {
		v = c.f.ValueOf[expr]
	}
	if v == nil {
		return
	}
	st := c.facts[v.ID]
	if st&ssa.NilBit == 0 {
		return
	}
	// The CFG does not split && / || operands into blocks, so a guard
	// and a use inside one condition share a block and the refinement is
	// invisible to the solver. The short-circuit guards collected from
	// this unit recover exactly that case.
	if c.guardedAt(analysis.ExprString(expr), expr.Pos()) {
		return
	}
	name := analysis.ExprString(expr)
	if v.Var != nil {
		name = v.Var.Name
	}
	if st.IsNil() {
		c.pass.Reportf(expr.Pos(),
			"%s is nil on every path reaching this %s; this panics at run time", name, shape)
	} else {
		c.pass.Reportf(expr.Pos(),
			"%s may be nil at this %s (nil on at least one path); add a nil check", name, shape)
	}
}

// ---------------------------------------------------------------------
// Syntactic Tracer-guard fallback (inherited from niltrace)

// nilGuard is one region of a function where expr is known non-nil.
type nilGuard struct {
	expr     string
	from, to token.Pos
}

// collectNilGuards scans every function of the package for syntactic nil
// guards: `if x != nil { body }` makes x non-nil inside the body, and an
// `if x == nil { return/panic }` early exit makes it non-nil through the
// rest of the function. Guard ranges never extend past their function,
// so one package-wide list is safe.
func collectNilGuards(pass *analysis.Pass) []nilGuard {
	var guards []nilGuard
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				ifs, ok := n.(*ast.IfStmt)
				if !ok {
					return true
				}
				for _, e := range nilComparisons(ifs.Cond, token.NEQ) {
					guards = append(guards, nilGuard{expr: e, from: ifs.Body.Pos(), to: ifs.Body.End()})
				}
				if blockDiverges(ifs.Body) {
					for _, e := range nilComparisons(ifs.Cond, token.EQL) {
						guards = append(guards, nilGuard{expr: e, from: ifs.End(), to: fd.End()})
					}
				}
				return true
			})
		}
	}
	return guards
}

// guardedAt reports whether expr (rendered) is covered by a syntactic
// guard — an if-guard from the package scan or a short-circuit guard
// from this unit — at pos.
func (c *nilnessCheck) guardedAt(expr string, pos token.Pos) bool {
	for _, g := range c.guards {
		if g.expr == expr && g.from <= pos && pos < g.to {
			return true
		}
	}
	for _, g := range c.local {
		if g.expr == expr && g.from <= pos && pos < g.to {
			return true
		}
	}
	return false
}

// collectCondGuards finds short-circuit guards inside a single unit:
// in `x != nil && use(x)` the right operand only evaluates with x
// non-nil, and dually for `x == nil || use(x)`. Unlike nilComparisons,
// only operands that dominate the right-hand side count: conjuncts of
// an && chain (each must be true for the RHS to run) and disjuncts of
// an || chain (each must be false) — a comparison nested under the
// opposite operator guarantees nothing.
func collectCondGuards(body ast.Node) []nilGuard {
	var out []nilGuard
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.LAND && be.Op != token.LOR) {
			return true
		}
		for _, e := range dominantNilChecks(be.X, be.Op) {
			out = append(out, nilGuard{expr: e, from: be.Y.Pos(), to: be.Y.End()})
		}
		return true
	})
	return out
}

// dominantNilChecks extracts the expressions proven non-nil whenever
// evaluation continues past cond in a chain of op: for && these are the
// `x != nil` conjuncts, for || the `x == nil` disjuncts.
func dominantNilChecks(cond ast.Expr, op token.Token) []string {
	cmp := token.NEQ
	if op == token.LOR {
		cmp = token.EQL
	}
	var out []string
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		be, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case op:
			walk(be.X)
			walk(be.Y)
		case cmp:
			if isNilIdent(be.Y) {
				out = append(out, analysis.ExprString(be.X))
			} else if isNilIdent(be.X) {
				out = append(out, analysis.ExprString(be.Y))
			}
		}
	}
	walk(cond)
	return out
}

// nilComparisons returns the rendered expressions compared against nil
// with the given operator anywhere inside cond (through && / || / parens).
func nilComparisons(cond ast.Expr, op token.Token) []string {
	var out []string
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		if isNilIdent(be.Y) {
			out = append(out, analysis.ExprString(be.X))
		} else if isNilIdent(be.X) {
			out = append(out, analysis.ExprString(be.Y))
		}
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// blockDiverges reports whether the block's last statement leaves the
// enclosing scope (return, panic, continue, break, goto), making an
// `== nil` check an early-exit guard.
func blockDiverges(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	default:
		return false
	}
}

// isTracerInterface reports whether t is an interface type named Tracer
// (the telemetry.Tracer contract, or a fixture-local equivalent).
func isTracerInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	named := analysis.NamedOf(t)
	if named == nil || named.Obj().Name() != "Tracer" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}

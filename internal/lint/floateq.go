package lint

import (
	"go/ast"
	"go/token"

	"crowdsky/internal/lint/analysis"
)

// FloatEq forbids == and != between floating-point values in dominance
// code (packages core and skyline). Attribute values flow through CSV
// parsing, synthetic generators and arithmetic, so exact float equality
// silently misclassifies "equal" tuples — which feeds straight into the
// degenerate-case preprocessing of Algorithm 1 and the stored-value
// seeding, where a wrong equality verdict changes which crowd questions
// are asked. Use the epsilon comparator skyline.EqEps instead.
var FloatEq = &analysis.Analyzer{
	Name: "floateq",
	Doc: "float ==/!= is forbidden in dominance code; use the epsilon " +
		"comparator skyline.EqEps",
	Run: runFloatEq,
}

func runFloatEq(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath, pass.Pkg.Name(), "core", "skyline") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.TypeOf(be.X), pass.TypeOf(be.Y)
			if xt == nil || yt == nil || !analysis.IsFloat(xt) || !analysis.IsFloat(yt) {
				return true
			}
			pass.Reportf(be.OpPos,
				"float %s comparison in dominance code: exact equality misclassifies near-equal attribute values; use skyline.EqEps",
				be.Op)
			return true
		})
	}
	return nil
}

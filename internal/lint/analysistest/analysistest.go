// Package analysistest runs a skylint analyzer over a fixture directory
// and checks its diagnostics against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest (which the
// offline build cannot import):
//
//	keys = append(keys, k) // want `regexp matching the diagnostic`
//
// A `// want` comment carries one or more quoted regular expressions
// (back-quoted or double-quoted). Every expectation must be matched by a
// diagnostic reported on its line, and every diagnostic must match an
// expectation — unexpected findings and unmatched wants both fail the
// test. Suppression directives (skylint:ignore) are honored, so fixtures
// also exercise the ignore machinery.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"crowdsky/internal/lint/analysis"
	"crowdsky/internal/lint/loader"
)

// expectation is one want regexp anchored to a (file, line).
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads dir as one fixture package, applies the analyzer and reports
// any mismatch between its diagnostics and the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := loader.LoadDir(dir, filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		PkgPath:  pkg.PkgPath,
		Info:     pkg.Info,
	}
	pass.BuildIgnores()
	pass.SetProgram(analysis.NewProgram())
	var diags []analysis.Diagnostic
	pass.SetReporter(func(d analysis.Diagnostic) { diags = append(diags, d) })
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	if a.Finish != nil {
		if err := a.Finish(pass.Program()); err != nil {
			t.Fatalf("finishing %s on %s: %v", a.Name, dir, err)
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if w := findWant(wants, filepath.Base(pos.Filename), pos.Line, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// RunMulti loads the named subdirectories of root as a multi-package
// fixture (see loader.LoadDirs: the packages may import each other by
// directory name) and applies the analyzer across all of them under one
// shared Program — Run per package, then a single Finish — so
// cross-package facts like call-graph summaries propagate exactly as in
// a real skylint invocation. Want comments are collected from every
// package.
func RunMulti(t *testing.T, root string, dirs []string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := loader.LoadDirs(root, dirs)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", root, err)
	}
	prog := analysis.NewProgram()
	var diags []analysis.Diagnostic
	var wants []*expectation
	for _, pkg := range pkgs {
		w, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, w...)
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			PkgPath:  pkg.PkgPath,
			Info:     pkg.Info,
		}
		pass.BuildIgnores()
		pass.SetProgram(prog)
		pass.SetReporter(func(d analysis.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	if a.Finish != nil {
		if err := a.Finish(prog); err != nil {
			t.Fatalf("finishing %s on %s: %v", a.Name, root, err)
		}
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := findWant(wants, filepath.Base(pos.Filename), pos.Line, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// findWant returns the first unmatched expectation on (file, line) whose
// regexp matches msg, or nil.
func findWant(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// wantTokenRE matches one quoted pattern: `...` or "..." with escapes.
var wantTokenRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants extracts every "// want" expectation from the package's
// comments. The marker may open a comment or follow other directives in
// it ("// skylint:guardedby lock // want `...`").
func collectWants(pkg *loader.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := c.Text[i+len("// want "):]
				toks := wantTokenRE.FindAllString(rest, -1)
				if len(toks) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment carries no quoted pattern", pos.Filename, pos.Line)
				}
				for _, tok := range toks {
					pat := tok
					if tok[0] == '`' {
						pat = tok[1 : len(tok)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(tok)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, tok, err)
					}
					out = append(out, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
						raw:  tok,
					})
				}
			}
		}
	}
	return out, nil
}

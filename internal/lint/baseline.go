package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// A baseline file grandfathers specific findings: each entry names one
// diagnostic (by file, analyzer and exact message — deliberately not by
// line number, which churns with every edit above it) together with a
// mandatory justification. The baseline is *checked*: an entry that no
// longer matches any finding is stale, and skylint fails on it so the file
// shrinks monotonically instead of fossilizing. Prefer a `skylint:ignore`
// comment at the site for anything long-lived; the baseline exists to land
// a new analyzer without blocking on fixes owned by someone else.
//
// Format (JSON, one array):
//
//	[
//	  {
//	    "file": "internal/crowdserve/server.go",
//	    "analyzer": "goroleak",
//	    "message": "the exact diagnostic text",
//	    "reason": "why this is acceptable, and ideally until when"
//	  }
//	]
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Reason   string `json:"reason"`
}

// LoadBaseline reads and validates a baseline file. Every entry must carry
// file, analyzer, message and a non-empty reason.
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	for i, e := range entries {
		if e.File == "" || e.Analyzer == "" || e.Message == "" {
			return nil, fmt.Errorf("lint: baseline %s entry %d: file, analyzer and message are all required", path, i)
		}
		if e.Reason == "" {
			return nil, fmt.Errorf("lint: baseline %s entry %d (%s in %s): a reason is required — the baseline is an auditable claim, not an escape hatch", path, i, e.Analyzer, e.File)
		}
	}
	return entries, nil
}

// ApplyBaseline removes findings matched by baseline entries and returns
// the survivors plus any stale entries (entries that matched nothing).
// One entry suppresses every finding with the same file, analyzer and
// message — a multi-site diagnostic needs one entry, not one per line.
// File paths on both sides are slash-normalized before comparison, so a
// baseline recorded under a Windows checkout matches findings produced
// anywhere (Run already reports repo-relative forward-slash paths).
func ApplyBaseline(findings []Finding, entries []BaselineEntry) (kept []Finding, stale []BaselineEntry) {
	used := make([]bool, len(entries))
	for _, f := range findings {
		matched := false
		ff := filepath.ToSlash(f.File)
		for i, e := range entries {
			if ff == filepath.ToSlash(e.File) && f.Analyzer == e.Analyzer && f.Message == e.Message {
				used[i] = true
				matched = true
			}
		}
		if !matched {
			kept = append(kept, f)
		}
	}
	for i, e := range entries {
		if !used[i] {
			stale = append(stale, e)
		}
	}
	return kept, stale
}

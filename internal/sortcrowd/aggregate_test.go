package sortcrowd

import (
	"math/rand"
	"testing"

	"crowdsky/internal/crowd"
)

// noisyComparisons generates every pair's comparison with error rate e
// against the true order "smaller index more preferred".
func noisyComparisons(n int, e float64, rng *rand.Rand) []Comparison {
	var out []Comparison
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			pref := crowd.First // a preferred (a < b in true order)
			if rng.Float64() < e {
				pref = crowd.Second
			}
			out = append(out, Comparison{A: a, B: b, Pref: pref})
		}
	}
	return out
}

func kendallErrors(order []int) int {
	// Inversions against the identity permutation.
	inv := 0
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if order[i] > order[j] {
				inv++
			}
		}
	}
	return inv
}

func TestCopelandPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	comps := noisyComparisons(10, 0, rng)
	order := CopelandOrder(items(10), comps)
	if kendallErrors(order) != 0 {
		t.Errorf("perfect comparisons misordered: %v", order)
	}
}

func TestBordaPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	comps := noisyComparisons(10, 0, rng)
	order := BordaOrder(items(10), comps)
	if kendallErrors(order) != 0 {
		t.Errorf("perfect comparisons misordered: %v", order)
	}
}

// TestDenseAggregationBeatsTournamentUnderNoise: with dense noisy
// comparisons (every pair judged once), Copeland scoring produces far
// fewer rank inversions than a noisy tournament — redundancy is what rank
// aggregation converts into robustness. Sparse tournament transcripts, by
// contrast, do not carry enough signal to re-rank reliably, which is why
// Baseline quality in Figure 11 tracks the per-comparison budget.
func TestDenseAggregationBeatsTournamentUnderNoise(t *testing.T) {
	const n = 32
	const noise = 0.2
	var tournamentInv, copelandInv int
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ask := func(pairs [][2]int) []crowd.Preference {
			out := make([]crowd.Preference, len(pairs))
			for i, p := range pairs {
				pref := crowd.First
				if p[0] > p[1] {
					pref = crowd.Second
				}
				if rng.Float64() < noise {
					pref = pref.Flip()
				}
				out[i] = pref
			}
			return out
		}
		tournamentInv += kendallErrors(Tournament(items(n), ask))
		dense := noisyComparisons(n, noise, rng)
		copelandInv += kendallErrors(RepairOrder(CopelandOrder(items(n), dense), dense))
	}
	if copelandInv >= tournamentInv {
		t.Errorf("dense aggregation inversions %d >= tournament %d", copelandInv, tournamentInv)
	}
}

func TestRepairOrderFixesAdjacentViolations(t *testing.T) {
	comps := []Comparison{
		{A: 1, B: 0, Pref: crowd.First}, // 1 preferred over 0
		{A: 2, B: 1, Pref: crowd.First}, // 2 preferred over 1
		{A: 2, B: 0, Pref: crowd.First}, // 2 preferred over 0
	}
	repaired := RepairOrder([]int{0, 1, 2}, comps)
	if Violations(repaired, comps) != 0 {
		t.Errorf("repair left violations: %v", repaired)
	}
	if repaired[0] != 2 || repaired[2] != 0 {
		t.Errorf("repaired = %v, want [2 1 0]", repaired)
	}
	// Repair never increases violations.
	rng := rand.New(rand.NewSource(3))
	noisy := noisyComparisons(20, 0.3, rng)
	base := BordaOrder(items(20), noisy)
	if Violations(RepairOrder(base, noisy), noisy) > Violations(base, noisy) {
		t.Errorf("repair increased violations")
	}
}

func TestAggregateNeverComparedItems(t *testing.T) {
	// Items without comparisons keep a stable fallback order.
	order := CopelandOrder([]int{3, 1, 2}, nil)
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fallback order = %v", order)
	}
	order = BordaOrder([]int{3, 1, 2}, nil)
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fallback order = %v", order)
	}
	if Violations([]int{1, 2}, []Comparison{{A: 9, B: 8, Pref: crowd.First}}) != 0 {
		t.Errorf("violations counted for absent items")
	}
}

package sortcrowd

// Bitonic sorts items into descending preference (most preferred first)
// with a bitonic sorting network (Cormen et al. [3], cited by Section 3 as
// an alternative sorting baseline). All comparators of a network stage are
// independent, so each stage is exactly one crowd round, giving
// O(log² m) rounds total — the latency-optimized counterpart to
// Tournament's O(m log m) rounds. The comparison count is O(m log² m),
// higher than tournament sort, exposing the paper's latency/cost trade-off.
//
// items lists tuple indices to sort; ask is called once per stage. The
// input slice is not modified.
func Bitonic(items []int, ask AskRound) []int {
	m := len(items)
	if m <= 1 {
		return append([]int(nil), items...)
	}
	p := 1
	for p < m {
		p <<= 1
	}
	const bye = -1
	arr := make([]int, p)
	for i := range arr {
		if i < m {
			arr[i] = items[i]
		} else {
			arr[i] = bye // byes sort to the end
		}
	}
	answers := make(cache, 2*m)

	// runStage executes one network stage: comparators[i] = {lo, hi} means
	// the more preferred element goes to index lo. Bye handling and the
	// answer cache keep crowd traffic minimal; all remaining comparisons
	// are one parallel round.
	runStage := func(comparators [][2]int) {
		type job struct {
			lo, hi int
		}
		var jobs []job
		var pairs [][2]int
		for _, c := range comparators {
			lo, hi := c[0], c[1]
			a, b := arr[lo], arr[hi]
			switch {
			case a == bye && b == bye:
				// nothing
			case b == bye:
				// already in place
			case a == bye:
				arr[lo], arr[hi] = b, a
			default:
				if pref, ok := answers.get(a, b); ok {
					if !prefers(pref) {
						arr[lo], arr[hi] = b, a
					}
				} else {
					jobs = append(jobs, job{lo, hi})
					pairs = append(pairs, [2]int{a, b})
				}
			}
		}
		if len(pairs) == 0 {
			return
		}
		prefs := ask(pairs)
		for i, j := range jobs {
			answers.put(pairs[i][0], pairs[i][1], prefs[i])
			if !prefers(prefs[i]) {
				arr[j.lo], arr[j.hi] = arr[j.hi], arr[j.lo]
			}
		}
	}

	// Standard bitonic network over p elements: for each block size k, for
	// each sub-stage j, compare elements whose indices differ in bit j,
	// direction chosen by the block's sort order. We sort "ascending by
	// preference rank", i.e. most preferred first.
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			var comparators [][2]int
			for i := 0; i < p; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				if i&k == 0 {
					comparators = append(comparators, [2]int{i, l})
				} else {
					comparators = append(comparators, [2]int{l, i})
				}
			}
			runStage(comparators)
		}
	}

	order := make([]int, 0, m)
	for _, v := range arr {
		if v != bye {
			order = append(order, v)
		}
	}
	return order
}

package sortcrowd

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crowdsky/internal/crowd"
)

// valueAsker answers comparisons from a value table (smaller = more
// preferred) and tracks question/round counts.
type valueAsker struct {
	values    []float64
	questions int
	rounds    int
}

func (va *valueAsker) ask(pairs [][2]int) []crowd.Preference {
	va.rounds++
	va.questions += len(pairs)
	out := make([]crowd.Preference, len(pairs))
	for i, p := range pairs {
		a, b := va.values[p[0]], va.values[p[1]]
		switch {
		case a < b:
			out[i] = crowd.First
		case b < a:
			out[i] = crowd.Second
		default:
			out[i] = crowd.Equal
		}
	}
	return out
}

func items(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func checkSorted(t *testing.T, name string, order []int, values []float64) {
	t.Helper()
	for i := 1; i < len(order); i++ {
		if values[order[i-1]] > values[order[i]] {
			t.Fatalf("%s: out of order at %d: %v", name, i, order)
		}
	}
}

func TestTournamentSortsCorrectly(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		n := int(rawN)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64()
		}
		va := &valueAsker{values: values}
		order := Tournament(items(n), va.ask)
		if len(order) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if values[order[i-1]] > values[order[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBitonicSortsCorrectly(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		n := int(rawN)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64()
		}
		va := &valueAsker{values: values}
		order := Bitonic(items(n), va.ask)
		if len(order) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if values[order[i-1]] > values[order[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTournamentQuestionBudget(t *testing.T) {
	// Worst-case comparisons: (n−1) + (n−1)·⌈log₂ n⌉.
	for _, n := range []int{2, 7, 16, 33, 50} {
		values := make([]float64, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range values {
			values[i] = rng.Float64()
		}
		va := &valueAsker{values: values}
		Tournament(items(n), va.ask)
		logN := 0
		for p := 1; p < n; p <<= 1 {
			logN++
		}
		budget := (n - 1) + (n-1)*logN
		if va.questions > budget {
			t.Errorf("n=%d: %d questions exceed budget %d", n, va.questions, budget)
		}
		if va.questions < n-1 {
			t.Errorf("n=%d: %d questions below the sorting lower bound n-1", n, va.questions)
		}
	}
}

func TestBitonicRoundBudget(t *testing.T) {
	// O(log² n) stages.
	for _, n := range []int{2, 8, 30, 64} {
		values := make([]float64, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range values {
			values[i] = rng.Float64()
		}
		va := &valueAsker{values: values}
		Bitonic(items(n), va.ask)
		logN := 0
		for p := 1; p < n; p <<= 1 {
			logN++
		}
		if logN == 0 {
			logN = 1
		}
		if va.rounds > logN*(logN+1)/2 {
			t.Errorf("n=%d: %d rounds exceed log² budget %d", n, va.rounds, logN*(logN+1)/2)
		}
	}
}

func TestBitonicFewerRoundsThanTournament(t *testing.T) {
	n := 64
	values := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for i := range values {
		values[i] = rng.Float64()
	}
	va1 := &valueAsker{values: values}
	Tournament(items(n), va1.ask)
	va2 := &valueAsker{values: values}
	Bitonic(items(n), va2.ask)
	if va2.rounds >= va1.rounds {
		t.Errorf("bitonic rounds %d >= tournament rounds %d", va2.rounds, va1.rounds)
	}
	if va2.questions <= va1.questions {
		t.Errorf("bitonic questions %d <= tournament questions %d (expected the trade-off)",
			va2.questions, va1.questions)
	}
}

func TestSortersHandleTies(t *testing.T) {
	values := []float64{0.5, 0.5, 0.1, 0.5, 0.9}
	for name, f := range map[string]func([]int, AskRound) []int{"tournament": Tournament, "bitonic": Bitonic} {
		va := &valueAsker{values: values}
		order := f(items(len(values)), va.ask)
		checkSorted(t, name, order, values)
		sorted := append([]int(nil), order...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("%s: order is not a permutation: %v", name, order)
			}
		}
	}
}

func TestSortersTrivialInputs(t *testing.T) {
	for name, f := range map[string]func([]int, AskRound) []int{"tournament": Tournament, "bitonic": Bitonic} {
		va := &valueAsker{values: []float64{1}}
		if got := f(nil, va.ask); len(got) != 0 {
			t.Errorf("%s(nil) = %v", name, got)
		}
		if got := f([]int{0}, va.ask); len(got) != 1 || got[0] != 0 {
			t.Errorf("%s singleton = %v", name, got)
		}
		if va.questions != 0 {
			t.Errorf("%s asked %d questions on trivial inputs", name, va.questions)
		}
	}
}

func TestCacheAvoidsRepeatQuestions(t *testing.T) {
	values := []float64{3, 1, 2, 5, 4, 0}
	va := &valueAsker{values: values}
	seen := map[[2]int]bool{}
	ask := func(pairs [][2]int) []crowd.Preference {
		for _, p := range pairs {
			a, b := p[0], p[1]
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				t.Fatalf("pair %v asked twice", p)
			}
			seen[[2]int{a, b}] = true
		}
		return va.ask(pairs)
	}
	Tournament(items(len(values)), ask)
}

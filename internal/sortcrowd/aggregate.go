package sortcrowd

import (
	"sort"

	"crowdsky/internal/crowd"
)

// This file implements rank aggregation over noisy pair-wise comparisons,
// the robustness layer of human-powered sorting (Marcus et al. [14]): when
// workers err, a single tournament path can demote a good tuple far below
// its true rank, but scoring every collected comparison — including the
// redundant ones majority voting already paid for — recovers a much more
// stable total order.

// Comparison is one observed pair-wise outcome: A versus B with the
// crowd's (possibly wrong) preference.
type Comparison struct {
	A, B int
	Pref crowd.Preference
}

// CopelandOrder ranks items by their Copeland score: wins minus losses
// over all recorded comparisons (ties contribute nothing). The result
// orders items most-preferred first; items never compared keep score zero
// and fall back to index order for determinism.
func CopelandOrder(items []int, comparisons []Comparison) []int {
	score := make(map[int]int, len(items))
	for _, c := range comparisons {
		switch c.Pref {
		case crowd.First:
			score[c.A]++
			score[c.B]--
		case crowd.Second:
			score[c.A]--
			score[c.B]++
		}
	}
	out := append([]int(nil), items...)
	sort.SliceStable(out, func(x, y int) bool {
		sx, sy := score[out[x]], score[out[y]]
		if sx != sy {
			return sx > sy
		}
		return out[x] < out[y]
	})
	return out
}

// BordaOrder ranks items by Borda-style fractional wins: each item's score
// is its win fraction over the comparisons that involve it, which corrects
// for unequal comparison counts (a tournament champion plays more matches
// than a first-round loser).
func BordaOrder(items []int, comparisons []Comparison) []int {
	wins := make(map[int]float64, len(items))
	games := make(map[int]float64, len(items))
	for _, c := range comparisons {
		games[c.A]++
		games[c.B]++
		switch c.Pref {
		case crowd.First:
			wins[c.A]++
		case crowd.Second:
			wins[c.B]++
		case crowd.Equal:
			wins[c.A] += 0.5
			wins[c.B] += 0.5
		}
	}
	frac := func(t int) float64 {
		if games[t] == 0 {
			return 0.5
		}
		return wins[t] / games[t]
	}
	out := append([]int(nil), items...)
	sort.SliceStable(out, func(x, y int) bool {
		fx, fy := frac(out[x]), frac(out[y])
		if fx != fy {
			return fx > fy
		}
		return out[x] < out[y]
	})
	return out
}

// RepairOrder improves an order by local moves: adjacent pairs with a
// recorded comparison contradicting their order are swapped, repeatedly,
// until a fixpoint or the iteration budget runs out. This is a bounded
// local Kemeny improvement — each executed swap strictly reduces the
// number of violated recorded comparisons.
func RepairOrder(order []int, comparisons []Comparison) []int {
	prefers := make(map[[2]int]crowd.Preference, 2*len(comparisons))
	for _, c := range comparisons {
		prefers[[2]int{c.A, c.B}] = c.Pref
		prefers[[2]int{c.B, c.A}] = c.Pref.Flip()
	}
	out := append([]int(nil), order...)
	maxPasses := len(out)
	if maxPasses > 64 {
		maxPasses = 64
	}
	for pass := 0; pass < maxPasses; pass++ {
		swapped := false
		for i := 1; i < len(out); i++ {
			if p, ok := prefers[[2]int{out[i-1], out[i]}]; ok && p == crowd.Second {
				out[i-1], out[i] = out[i], out[i-1]
				swapped = true
			}
		}
		if !swapped {
			break
		}
	}
	return out
}

// Violations counts recorded comparisons contradicted by the order (the
// Kemeny distance restricted to observed pairs). Lower is better.
func Violations(order []int, comparisons []Comparison) int {
	pos := make(map[int]int, len(order))
	for i, t := range order {
		pos[t] = i
	}
	v := 0
	for _, c := range comparisons {
		pa, oka := pos[c.A]
		pb, okb := pos[c.B]
		if !oka || !okb {
			continue
		}
		switch c.Pref {
		case crowd.First:
			if pa > pb {
				v++
			}
		case crowd.Second:
			if pb > pa {
				v++
			}
		}
	}
	return v
}

// Package sortcrowd implements crowd-powered sorting, the substrate of the
// paper's Baseline method (Section 3): existing sorting algorithms with the
// pair-wise comparisons replaced by crowd questions. Tournament sort is the
// baseline used throughout the evaluation ("As one of the sorting
// algorithms, tournament sort is used as a baseline", Section 6.1); a
// bitonic sorting network is provided as the latency-oriented alternative
// the paper also names.
//
// Both sorters interact with the crowd through an AskRound callback: one
// invocation is one round, and all pairs passed to it are asked in
// parallel. Answers are cached, so a pair is never asked twice.
package sortcrowd

import "crowdsky/internal/crowd"

// AskRound submits one round of pair-wise comparisons. pairs[i] compares
// tuple pairs[i][0] against pairs[i][1]; the result slice reports, in
// order, which element of each pair the crowd prefers.
type AskRound func(pairs [][2]int) []crowd.Preference

// cache stores answered comparisons symmetrically.
type cache map[[2]int]crowd.Preference

func (c cache) get(a, b int) (crowd.Preference, bool) {
	if p, ok := c[[2]int{a, b}]; ok {
		return p, true
	}
	if p, ok := c[[2]int{b, a}]; ok {
		return p.Flip(), true
	}
	return 0, false
}

func (c cache) put(a, b int, p crowd.Preference) { c[[2]int{a, b}] = p }

// prefers reports whether a should be ordered before b given a cached
// answer; Equal breaks toward the first argument (stable).
func prefers(p crowd.Preference) bool { return p == crowd.First || p == crowd.Equal }

// Tournament sorts items into descending preference (most preferred first)
// with a crowd-powered tournament sort: a selection tree is built level by
// level (each level one parallel round), then winners are extracted one at
// a time, each extraction replaying the champion's root path with
// sequential rounds. The number of comparisons is (m−1) + (m−1)·⌈log₂ m⌉
// in the worst case, less in practice because byes and cached answers are
// free.
//
// items lists tuple indices to sort; ask is called once per round. The
// input slice is not modified.
func Tournament(items []int, ask AskRound) []int {
	m := len(items)
	if m <= 1 {
		return append([]int(nil), items...)
	}
	// Size the complete binary tree: p leaves, p = next power of two.
	p := 1
	for p < m {
		p <<= 1
	}
	const bye = -1
	// tree[1] is the root; leaves occupy tree[p..2p-1].
	tree := make([]int, 2*p)
	for i := range tree {
		tree[i] = bye
	}
	leafOf := make(map[int]int, m)
	for i, it := range items {
		tree[p+i] = it
		leafOf[it] = p + i
	}
	answers := make(cache, 2*m)

	// askAll resolves a round of matches: each match is a tree node whose
	// winner must be computed from its two children. Matches with a bye or
	// with a cached answer resolve for free; the rest go to the crowd in
	// one round.
	askAll := func(nodes []int) {
		var pending []int // node indices whose comparison must be asked
		var pairs [][2]int
		for _, nd := range nodes {
			a, b := tree[2*nd], tree[2*nd+1]
			switch {
			case a == bye:
				tree[nd] = b
			case b == bye:
				tree[nd] = a
			default:
				if pref, ok := answers.get(a, b); ok {
					if prefers(pref) {
						tree[nd] = a
					} else {
						tree[nd] = b
					}
				} else {
					pending = append(pending, nd)
					pairs = append(pairs, [2]int{a, b})
				}
			}
		}
		if len(pairs) == 0 {
			return
		}
		prefs := ask(pairs)
		for i, nd := range pending {
			a, b := pairs[i][0], pairs[i][1]
			answers.put(a, b, prefs[i])
			if prefers(prefs[i]) {
				tree[nd] = a
			} else {
				tree[nd] = b
			}
		}
	}

	// Build phase: one parallel round per level.
	for width := p / 2; width >= 1; width /= 2 {
		nodes := make([]int, 0, width)
		for nd := width; nd < 2*width; nd++ {
			nodes = append(nodes, nd)
		}
		askAll(nodes)
	}

	// Extraction phase: pop the champion, turn its leaf into a bye, and
	// replay its path to the root. Path matches depend on one another
	// bottom-up, so each level is its own round (usually zero or one
	// question).
	order := make([]int, 0, m)
	for len(order) < m {
		champ := tree[1]
		order = append(order, champ)
		if len(order) == m {
			break
		}
		leaf := leafOf[champ]
		tree[leaf] = bye
		for nd := leaf / 2; nd >= 1; nd /= 2 {
			askAll([]int{nd})
		}
	}
	return order
}

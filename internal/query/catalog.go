package query

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Column is one table column. A column is either numeric (every cell
// parses as a float) or text.
type Column struct {
	Name    string
	Numeric []float64
	Text    []string
}

// IsNumeric reports whether the column holds numbers.
func (c *Column) IsNumeric() bool { return c.Numeric != nil }

// Table is an in-memory relation. Columns whose names start with an
// underscore are *latent* columns: they hold ground truth for crowd
// attributes (e.g. "_romantic" backs the crowdsourced "romantic") and are
// never matched by WHERE or SKYLINE OF directly, nor shown in results —
// they exist so simulated crowds can answer, mirroring how the paper's
// synthetic evaluation keeps crowd-attribute values "only used for
// obtaining the answers of crowds" (Section 6.1).
type Table struct {
	Name    string
	Columns []Column
	rows    int
}

// NewTable builds a table and validates column lengths.
func NewTable(name string, cols []Column) (*Table, error) {
	t := &Table{Name: name, Columns: cols}
	for i, c := range cols {
		n := len(c.Numeric)
		if !c.IsNumeric() {
			n = len(c.Text)
		}
		if i == 0 {
			t.rows = n
		} else if n != t.rows {
			return nil, fmt.Errorf("query: table %s: column %s has %d rows, want %d", name, c.Name, n, t.rows)
		}
	}
	return t, nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Column returns the named column, or nil. Latent columns are found only
// when the caller asks for the underscored name explicitly.
func (t *Table) Column(name string) *Column {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i]
		}
	}
	return nil
}

// Catalog resolves table names for the executor.
type Catalog interface {
	// Table returns the named table or an error.
	Table(name string) (*Table, error)
}

// MemCatalog is an in-memory catalog, convenient for tests and embedding.
type MemCatalog map[string]*Table

// Table implements Catalog.
func (m MemCatalog) Table(name string) (*Table, error) {
	t, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("query: unknown table %q", name)
	}
	return t, nil
}

// DirCatalog resolves table <name> to the CSV file <dir>/<name>.csv. The
// first row is the header; a column is numeric when every cell parses as a
// float.
type DirCatalog struct {
	Dir string
}

// Table implements Catalog.
func (dc DirCatalog) Table(name string) (*Table, error) {
	if strings.ContainsAny(name, `/\.`) {
		return nil, fmt.Errorf("query: invalid table name %q", name)
	}
	path := filepath.Join(dc.Dir, name+".csv")
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("query: table %q: %w", name, err)
	}
	defer f.Close()
	return ReadTable(name, f)
}

// ReadTable parses a CSV table from r.
func ReadTable(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("query: reading table %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("query: table %s has no header", name)
	}
	header := records[0]
	rows := records[1:]
	cols := make([]Column, len(header))
	for j, h := range header {
		cols[j].Name = strings.TrimSpace(h)
		numeric := make([]float64, 0, len(rows))
		isNumeric := true
		for _, rec := range rows {
			if j >= len(rec) {
				return nil, fmt.Errorf("query: table %s: short row", name)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil {
				isNumeric = false
				break
			}
			numeric = append(numeric, v)
		}
		if isNumeric && len(rows) > 0 {
			cols[j].Numeric = numeric
		} else {
			text := make([]string, len(rows))
			for i, rec := range rows {
				text[i] = rec[j]
			}
			cols[j].Text = text
		}
	}
	return NewTable(name, cols)
}

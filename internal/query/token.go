// Package query implements the declarative interface of the paper's
// motivating Example 1: a SQL dialect with a SKYLINE OF clause whose
// attributes may be missing from the stored table, in which case their
// preferences are crowdsourced.
//
//	SELECT * FROM movie_db
//	WHERE year >= 2010 AND year <= 2015
//	SKYLINE OF box_office MAX, romantic MAX
//
// The package provides the lexer, parser, catalog abstraction and executor.
// Attributes named in SKYLINE OF that exist as table columns become known
// attributes; the rest become crowd attributes answered through a
// crowd.Platform, exactly the hand-off setting of Section 2.2.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // one of , ( ) * and comparison operators
	tokKeyword
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSymbol:
		return "symbol"
	case tokKeyword:
		return "keyword"
	default:
		return "token?"
	}
}

// keywords recognized case-insensitively. SKYLINE/OF/MIN/MAX follow the
// syntax of Börzsönyi et al. that the paper's Example 1 uses; WITH/CROWD
// extends it for explicitly declared crowd attributes.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"SKYLINE": true, "OF": true, "MIN": true, "MAX": true,
	"WITH": true, "CROWD": true, "LIMIT": true,
}

// token is one lexeme with its position for error messages.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep their case
	pos  int    // byte offset in the input
}

// lexer splits a query string into tokens.
type lexer struct {
	input string
	at    int
}

// lexError reports a malformed query at a byte offset.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	//skylint:alloc-ok malformed-query error path; formatting runs once per rejected query
	return fmt.Sprintf("query: %s at offset %d", e.msg, e.pos)
}

func (lx *lexer) next() (token, error) {
	for lx.at < len(lx.input) && unicode.IsSpace(rune(lx.input[lx.at])) {
		lx.at++
	}
	if lx.at >= len(lx.input) {
		return token{kind: tokEOF, pos: lx.at}, nil
	}
	start := lx.at
	c := lx.input[lx.at]
	switch {
	case c == '\'' || c == '"':
		quote := c
		lx.at++
		var b strings.Builder
		for lx.at < len(lx.input) && lx.input[lx.at] != quote {
			b.WriteByte(lx.input[lx.at])
			lx.at++
		}
		if lx.at >= len(lx.input) {
			return token{}, &lexError{pos: start, msg: "unterminated string"}
		}
		lx.at++ // closing quote
		return token{kind: tokString, text: b.String(), pos: start}, nil

	case c == ',' || c == '(' || c == ')' || c == '*':
		lx.at++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil

	case c == '<' || c == '>' || c == '=' || c == '!':
		lx.at++
		if lx.at < len(lx.input) && lx.input[lx.at] == '=' {
			lx.at++
		}
		text := lx.input[start:lx.at]
		if text == "!" {
			return token{}, &lexError{pos: start, msg: "expected != "}
		}
		return token{kind: tokSymbol, text: text, pos: start}, nil

	case c >= '0' && c <= '9' || c == '-' || c == '.':
		lx.at++
		for lx.at < len(lx.input) {
			d := lx.input[lx.at]
			if d >= '0' && d <= '9' || d == '.' || d == 'e' || d == 'E' || d == '-' || d == '+' {
				// Accept scientific notation loosely; ParseFloat validates.
				if (d == '-' || d == '+') && !(lx.input[lx.at-1] == 'e' || lx.input[lx.at-1] == 'E') {
					break
				}
				lx.at++
			} else {
				break
			}
		}
		return token{kind: tokNumber, text: lx.input[start:lx.at], pos: start}, nil

	case isIdentStart(c):
		lx.at++
		for lx.at < len(lx.input) && isIdentPart(lx.input[lx.at]) {
			lx.at++
		}
		text := lx.input[start:lx.at]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil

	default:
		return token{}, &lexError{pos: start, msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// lexAll tokenizes the whole input.
func lexAll(input string) ([]token, error) {
	lx := &lexer{input: input}
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.kind == tokEOF {
			return out, nil
		}
	}
}

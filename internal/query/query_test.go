package query

import (
	"os"
	"strings"
	"testing"
)

func TestParseExample1(t *testing.T) {
	// The paper's motivating query (Example 1).
	q, err := Parse(`SELECT * FROM movie_db
		WHERE year >= 2010 and year <= 2015
		SKYLINE OF box_office MAX, romantic MAX`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "movie_db" {
		t.Errorf("table = %q", q.Table)
	}
	if len(q.Where) != 2 || q.Where[0].Attr != "year" || q.Where[0].Op != OpGE || q.Where[0].Number != 2010 {
		t.Errorf("where = %+v", q.Where)
	}
	if len(q.Skyline) != 2 || q.Skyline[0] != (SkylineAttr{"box_office", Max}) ||
		q.Skyline[1] != (SkylineAttr{"romantic", Max}) {
		t.Errorf("skyline = %+v", q.Skyline)
	}
	rendered := q.String()
	for _, want := range []string{"movie_db", "year >= 2010", "box_office MAX", "romantic MAX"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("String() missing %q: %s", want, rendered)
		}
	}
}

func TestParseVariants(t *testing.T) {
	cases := []string{
		"SELECT * FROM t SKYLINE OF a",                      // default MIN, no WHERE
		"select * from t skyline of a min, b max",           // lowercase keywords
		"SELECT * FROM t WHERE x = 'abc' SKYLINE OF a",      // string condition
		"SELECT * FROM t WHERE x != 'abc' SKYLINE OF a MAX", // string !=
		"SELECT * FROM t SKYLINE OF a LIMIT 3",              // limit
		"SELECT * FROM t WHERE v < -1.5 SKYLINE OF a",       // negative number
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT FROM t SKYLINE OF a",                 // empty projection
		"SELECT a, FROM t SKYLINE OF a",              // dangling comma
		"SELECT * FROM SKYLINE OF a",                 // missing table
		"SELECT * FROM t",                            // missing skyline
		"SELECT * FROM t SKYLINE OF",                 // empty attribute list
		"SELECT * FROM t SKYLINE OF a, a",            // duplicate attribute
		"SELECT * FROM t WHERE x >< 3 SKYLINE OF a",  // bad operator
		"SELECT * FROM t WHERE x < 'a' SKYLINE OF a", // string with <
		"SELECT * FROM t SKYLINE OF a LIMIT x",       // bad limit
		"SELECT * FROM t SKYLINE OF a trailing",      // trailing junk
		"SELECT * FROM t WHERE x = 'unterminated SKYLINE OF a",
		"SELECT * FROM t SKYLINE OF a; DROP",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) accepted", sql)
		}
	}
}

// movieTable builds a small movie_db with a latent "_romantic" column. The
// numbers are chosen so the expected skyline under (box_office MAX,
// romantic MAX) within 2010-2015 is {Blockbuster, Romance} — Blockbuster
// has the top box office, Romance the top romance score, and MidMovie is
// dominated by Romance on both.
func movieTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := ReadTable("movie_db", strings.NewReader(
		"title,year,box_office,_romantic\n"+
			"Blockbuster,2012,900,2\n"+
			"Romance,2011,500,9\n"+
			"MidMovie,2013,400,8\n"+
			"OldHit,2005,800,7\n"+ // filtered out by WHERE
			"Flop,2014,100,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestExecuteExample1(t *testing.T) {
	cat := MemCatalog{"movie_db": movieTable(t)}
	res, err := Run(`SELECT * FROM movie_db WHERE year >= 2010 AND year <= 2015
		SKYLINE OF box_office MAX, romantic MAX`, cat, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KnownAttrs) != 1 || res.KnownAttrs[0] != "box_office" {
		t.Errorf("known attrs = %v", res.KnownAttrs)
	}
	if len(res.CrowdAttrs) != 1 || res.CrowdAttrs[0] != "romantic" {
		t.Errorf("crowd attrs = %v", res.CrowdAttrs)
	}
	var titles []string
	for _, row := range res.Rows {
		titles = append(titles, row[0])
	}
	if len(titles) != 2 || !contains(titles, "Blockbuster") || !contains(titles, "Romance") {
		t.Errorf("skyline titles = %v, want Blockbuster and Romance", titles)
	}
	// The latent column stays hidden.
	for _, col := range res.Columns {
		if strings.HasPrefix(col, "_") {
			t.Errorf("latent column leaked: %v", res.Columns)
		}
	}
	if res.Questions == 0 {
		t.Errorf("no crowd questions were asked for the crowd attribute")
	}
}

func TestExecuteSchedulingAndLimit(t *testing.T) {
	cat := MemCatalog{"movie_db": movieTable(t)}
	for _, sched := range []Scheduling{ScheduleSerial, ScheduleDominatingSets, ScheduleSkylineLayers} {
		res, err := Run("SELECT * FROM movie_db SKYLINE OF box_office MAX, romantic MAX LIMIT 1",
			cat, ExecOptions{Scheduling: sched})
		if err != nil {
			t.Fatalf("scheduling %v: %v", sched, err)
		}
		if len(res.Rows) != 1 {
			t.Errorf("scheduling %v: LIMIT 1 returned %d rows", sched, len(res.Rows))
		}
	}
	if _, err := Run("SELECT * FROM movie_db SKYLINE OF box_office", cat, ExecOptions{Scheduling: Scheduling(9)}); err == nil {
		t.Errorf("bad scheduling accepted")
	}
}

func TestExecuteMachineOnly(t *testing.T) {
	// All skyline attributes stored: no crowd questions at all.
	cat := MemCatalog{"movie_db": movieTable(t)}
	res, err := Run("SELECT * FROM movie_db SKYLINE OF box_office MAX, year MAX", cat, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CrowdAttrs) != 0 {
		t.Errorf("crowd attrs = %v, want none", res.CrowdAttrs)
	}
	if res.Questions != 0 {
		t.Errorf("machine-only query asked %d questions", res.Questions)
	}
}

func TestExecuteErrors(t *testing.T) {
	cat := MemCatalog{"movie_db": movieTable(t)}
	cases := []string{
		"SELECT * FROM nope SKYLINE OF a",                               // unknown table
		"SELECT * FROM movie_db WHERE nope > 1 SKYLINE OF box_office",   // unknown where column
		"SELECT * FROM movie_db WHERE title > 1 SKYLINE OF box_office",  // type mismatch
		"SELECT * FROM movie_db WHERE year = 'x' SKYLINE OF box_office", // type mismatch
		"SELECT * FROM movie_db SKYLINE OF title",                       // non-numeric skyline attr
		"SELECT * FROM movie_db SKYLINE OF romantic MAX",                // no stored attribute at all
		"SELECT * FROM movie_db SKYLINE OF _romantic",                   // latent queried directly
		"SELECT * FROM movie_db WHERE _romantic > 1 SKYLINE OF year",    // latent filtered
		"SELECT * FROM movie_db SKYLINE OF box_office, mystery",         // crowd attr without latent or platform
	}
	for _, sql := range cases {
		if _, err := Run(sql, cat, ExecOptions{}); err == nil {
			t.Errorf("Run(%q) accepted", sql)
		}
	}
}

func TestDirCatalog(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(dir+"/films.csv", "title,score\nA,1\nB,2\n"); err != nil {
		t.Fatal(err)
	}
	cat := DirCatalog{Dir: dir}
	tbl, err := cat.Table("films")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 || !tbl.Column("score").IsNumeric() || tbl.Column("title").IsNumeric() {
		t.Errorf("table malformed: %+v", tbl)
	}
	if _, err := cat.Table("missing"); err == nil {
		t.Errorf("missing table accepted")
	}
	if _, err := cat.Table("../etc/passwd"); err == nil {
		t.Errorf("path traversal accepted")
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestSelectProjection(t *testing.T) {
	cat := MemCatalog{"movie_db": movieTable(t)}
	res, err := Run("SELECT title, year FROM movie_db SKYLINE OF box_office MAX, romantic MAX", cat, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "title" || res.Columns[1] != "year" {
		t.Errorf("columns = %v", res.Columns)
	}
	for _, row := range res.Rows {
		if len(row) != 2 {
			t.Errorf("row width = %d", len(row))
		}
	}
	// Projection errors.
	for _, sql := range []string{
		"SELECT nope FROM movie_db SKYLINE OF box_office",
		"SELECT _romantic FROM movie_db SKYLINE OF box_office",
		"SELECT title, title FROM movie_db SKYLINE OF box_office",
	} {
		if _, err := Run(sql, cat, ExecOptions{}); err == nil {
			t.Errorf("Run(%q) accepted", sql)
		}
	}
	// String renders the projection and re-parses.
	q, err := Parse("SELECT title, year FROM t SKYLINE OF a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "SELECT title, year FROM t") {
		t.Errorf("String() = %q", q.String())
	}
	if _, err := Parse(q.String()); err != nil {
		t.Errorf("rendered projection does not re-parse: %v", err)
	}
}

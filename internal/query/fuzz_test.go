package query

import (
	"strings"
	"testing"
)

// FuzzParse hardens the lexer/parser: arbitrary input must never panic,
// and anything that parses must render (String) into a query that
// re-parses to the same rendering — the round-trip fixpoint property.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM movie_db WHERE year >= 2010 and year <= 2015 SKYLINE OF box_office MAX, romantic MAX",
		"select * from t skyline of a",
		"SELECT * FROM t WHERE x = 'abc' SKYLINE OF a MIN, b MAX LIMIT 5",
		"SELECT * FROM t WHERE v < -1.5e3 SKYLINE OF a",
		"SELECT * FROM t SKYLINE OF",
		"SELECT * FROM t WHERE x != 'q\"uo' SKYLINE OF a",
		"\x00\x01",
		strings.Repeat("SELECT ", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", input, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("render not a fixpoint: %q vs %q", rendered, q2.String())
		}
	})
}

// FuzzReadTable hardens the CSV table reader: arbitrary input must never
// panic, and a successfully read table must have consistent column
// lengths.
func FuzzReadTable(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("title,year\nX,\"quo\"\"ted\"\n")
	f.Add("")
	f.Add("only header\n")
	f.Add("a\n\x00\n")
	f.Fuzz(func(t *testing.T, input string) {
		tbl, err := ReadTable("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		for _, c := range tbl.Columns {
			n := len(c.Numeric)
			if !c.IsNumeric() {
				n = len(c.Text)
			}
			if n != tbl.Rows() {
				t.Fatalf("column %q has %d rows, table says %d", c.Name, n, tbl.Rows())
			}
		}
	})
}

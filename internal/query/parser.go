package query

import (
	"fmt"
	"strconv"
)

// Parse turns a query string into its AST. The grammar, with keywords
// case-insensitive:
//
//	query    := SELECT ('*' | ident (',' ident)*) FROM ident
//	            [where] skyline [limit]
//	where    := WHERE cond (AND cond)*
//	cond     := ident op (number | string)
//	op       := '<' | '<=' | '>' | '>=' | '=' | '!='
//	skyline  := SKYLINE OF attr (',' attr)*
//	attr     := ident [MIN | MAX]
//	limit    := LIMIT number
//
// Attributes default to MIN when no direction is given (the convention of
// the skyline literature the paper follows).
func Parse(input string) (*Query, error) {
	tokens, err := lexAll(input)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	tokens []token
	at     int
}

func (p *parser) peek() token { return p.tokens[p.at] }

func (p *parser) advance() token {
	tok := p.tokens[p.at]
	if p.at < len(p.tokens)-1 {
		p.at++
	}
	return tok
}

func (p *parser) errorf(tok token, format string, args ...any) error {
	return fmt.Errorf("query: %s at offset %d", fmt.Sprintf(format, args...), tok.pos)
}

func (p *parser) expectKeyword(kw string) error {
	tok := p.advance()
	if tok.kind != tokKeyword || tok.text != kw {
		return p.errorf(tok, "expected %s, found %q", kw, tok.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	tok := p.advance()
	if tok.kind != tokSymbol || tok.text != sym {
		return p.errorf(tok, "expected %q, found %q", sym, tok.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	tok := p.advance()
	if tok.kind != tokIdent {
		return "", p.errorf(tok, "expected identifier, found %s %q", tok.kind, tok.text)
	}
	return tok.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var columns []string
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.advance()
	} else {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			columns = append(columns, col)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q := &Query{Table: table, Columns: columns}

	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.advance()
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, cond)
			if p.peek().kind == tokKeyword && p.peek().text == "AND" {
				p.advance()
				continue
			}
			break
		}
	}

	if err := p.expectKeyword("SKYLINE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("OF"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		attr := SkylineAttr{Name: name, Direction: Min}
		if tok := p.peek(); tok.kind == tokKeyword && (tok.text == "MIN" || tok.text == "MAX") {
			p.advance()
			if tok.text == "MAX" {
				attr.Direction = Max
			}
		}
		q.Skyline = append(q.Skyline, attr)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if len(q.Skyline) == 0 {
		return nil, p.errorf(p.peek(), "SKYLINE OF needs at least one attribute")
	}

	if tok := p.peek(); tok.kind == tokKeyword && tok.text == "LIMIT" {
		p.advance()
		numTok := p.advance()
		if numTok.kind != tokNumber {
			return nil, p.errorf(numTok, "LIMIT expects a number")
		}
		limit, err := strconv.Atoi(numTok.text)
		if err != nil || limit < 0 {
			return nil, p.errorf(numTok, "invalid LIMIT %q", numTok.text)
		}
		q.Limit = limit
	}

	if tok := p.peek(); tok.kind != tokEOF {
		return nil, p.errorf(tok, "unexpected trailing input %q", tok.text)
	}
	// Reject duplicate skyline attributes and projection columns.
	seen := make(map[string]bool)
	for _, a := range q.Skyline {
		if seen[a.Name] {
			return nil, fmt.Errorf("query: attribute %q listed twice in SKYLINE OF", a.Name)
		}
		seen[a.Name] = true
	}
	seenCol := make(map[string]bool)
	for _, c := range q.Columns {
		if seenCol[c] {
			return nil, fmt.Errorf("query: column %q listed twice in SELECT", c)
		}
		seenCol[c] = true
	}
	return q, nil
}

func (p *parser) parseCondition() (Condition, error) {
	attr, err := p.expectIdent()
	if err != nil {
		return Condition{}, err
	}
	opTok := p.advance()
	if opTok.kind != tokSymbol {
		return Condition{}, p.errorf(opTok, "expected comparison operator, found %q", opTok.text)
	}
	op := CompareOp(opTok.text)
	switch op {
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
	default:
		return Condition{}, p.errorf(opTok, "unknown operator %q", opTok.text)
	}
	valTok := p.advance()
	switch valTok.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(valTok.text, 64)
		if err != nil {
			return Condition{}, p.errorf(valTok, "invalid number %q", valTok.text)
		}
		return Condition{Attr: attr, Op: op, Number: v}, nil
	case tokString:
		if op != OpEQ && op != OpNE {
			return Condition{}, p.errorf(valTok, "string conditions support only = and !=")
		}
		return Condition{Attr: attr, Op: op, Str: valTok.text, IsString: true}, nil
	default:
		return Condition{}, p.errorf(valTok, "expected a number or string, found %q", valTok.text)
	}
}

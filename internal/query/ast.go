package query

import (
	"fmt"
	"strings"
)

// Direction is the preference direction of a skyline attribute.
type Direction int

const (
	// Min prefers smaller values.
	Min Direction = iota
	// Max prefers larger values.
	Max
)

// String returns "MIN" or "MAX".
func (d Direction) String() string {
	if d == Max {
		return "MAX"
	}
	return "MIN"
}

// CompareOp is a WHERE comparison operator.
type CompareOp string

// Supported comparison operators.
const (
	OpLT CompareOp = "<"
	OpLE CompareOp = "<="
	OpGT CompareOp = ">"
	OpGE CompareOp = ">="
	OpEQ CompareOp = "="
	OpNE CompareOp = "!="
)

// Condition is one WHERE conjunct: <attr> <op> <value>. Values are numbers
// or strings; string conditions only support = and !=.
type Condition struct {
	Attr     string
	Op       CompareOp
	Number   float64
	Str      string
	IsString bool
}

// Eval applies the condition to a value.
func (c Condition) Eval(num float64, str string, isString bool) bool {
	if c.IsString != isString {
		return false
	}
	if c.IsString {
		switch c.Op {
		case OpEQ:
			return str == c.Str
		case OpNE:
			return str != c.Str
		default:
			return false
		}
	}
	switch c.Op {
	case OpLT:
		return num < c.Number
	case OpLE:
		return num <= c.Number
	case OpGT:
		return num > c.Number
	case OpGE:
		return num >= c.Number
	case OpEQ:
		return num == c.Number
	case OpNE:
		return num != c.Number
	default:
		return false
	}
}

// SkylineAttr is one attribute of the SKYLINE OF clause.
type SkylineAttr struct {
	Name      string
	Direction Direction
}

// Query is a parsed crowd-enabled skyline query.
type Query struct {
	Table string
	// Columns is the SELECT projection; nil means * (every visible
	// column).
	Columns []string
	Where   []Condition
	Skyline []SkylineAttr
	// Limit caps the number of returned rows; 0 means no limit.
	Limit int
}

// String renders the query back as SQL-ish text (stable formatting, used
// in logs and tests).
func (q *Query) String() string {
	var b strings.Builder
	if len(q.Columns) == 0 {
		fmt.Fprintf(&b, "SELECT * FROM %s", q.Table)
	} else {
		fmt.Fprintf(&b, "SELECT %s FROM %s", strings.Join(q.Columns, ", "), q.Table)
	}
	for i, c := range q.Where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		if c.IsString {
			fmt.Fprintf(&b, "%s %s '%s'", c.Attr, c.Op, c.Str)
		} else {
			fmt.Fprintf(&b, "%s %s %g", c.Attr, c.Op, c.Number)
		}
	}
	b.WriteString(" SKYLINE OF ")
	for i, a := range q.Skyline {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Direction)
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

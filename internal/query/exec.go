package query

import (
	"fmt"
	"strconv"
	"strings"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
)

// Scheduling selects how the executor arranges crowd questions into rounds.
type Scheduling int

// Scheduling strategies (see core's CrowdSky, ParallelDSet, ParallelSL).
const (
	ScheduleSerial Scheduling = iota
	ScheduleDominatingSets
	ScheduleSkylineLayers
)

// ExecOptions configures query execution.
type ExecOptions struct {
	// Platform builds the crowd platform for the constructed dataset. The
	// dataset's latent values come from the table's underscored columns.
	// Nil defaults to a perfect simulated crowd answering from those
	// latent columns (which must then exist).
	Platform func(d *dataset.Dataset) crowd.Platform
	// Options forwards the CrowdSky algorithm configuration; the zero
	// value enables full pruning.
	Options core.Options
	// DefaultPruning applies P1+P2+P3 when Options has no pruning set.
	// It defaults to true; set Options explicitly for ablations.
	DisableDefaultPruning bool
	// Scheduling selects serial or parallel rounds.
	Scheduling Scheduling
}

// Result is the outcome of a crowd-enabled skyline query.
type Result struct {
	Query *Query
	// Columns are the visible column names of the table (latent columns
	// hidden).
	Columns []string
	// Rows renders the skyline tuples, one row per tuple, cells formatted
	// as in the source table.
	Rows [][]string
	// KnownAttrs and CrowdAttrs record how the SKYLINE OF attributes were
	// split: attributes present as table columns are machine-evaluated;
	// the rest were crowdsourced (Example 1's "romantic").
	KnownAttrs []string
	CrowdAttrs []string
	// Stats from the crowd platform.
	Questions int
	Rounds    int
	Cost      float64
	Truncated bool
}

// Execute runs a parsed query against a catalog.
func Execute(q *Query, cat Catalog, opt ExecOptions) (*Result, error) {
	tbl, err := cat.Table(q.Table)
	if err != nil {
		return nil, err
	}

	// WHERE: filter row indices.
	keep, err := filterRows(tbl, q.Where)
	if err != nil {
		return nil, err
	}

	// Split SKYLINE OF attributes into known (table column exists) and
	// crowd (missing from the table → preferences must come from crowds).
	var knownAttrs, crowdAttrs []SkylineAttr
	var knownCols []*Column
	for _, a := range q.Skyline {
		if strings.HasPrefix(a.Name, "_") {
			return nil, fmt.Errorf("query: %q is a latent column and cannot be queried directly", a.Name)
		}
		col := tbl.Column(a.Name)
		switch {
		case col == nil:
			crowdAttrs = append(crowdAttrs, a)
		case col.IsNumeric():
			knownAttrs = append(knownAttrs, a)
			knownCols = append(knownCols, col)
		default:
			return nil, fmt.Errorf("query: skyline attribute %q is not numeric", a.Name)
		}
	}
	if len(knownAttrs) == 0 {
		return nil, fmt.Errorf("query: SKYLINE OF needs at least one attribute stored in table %q", q.Table)
	}

	// Build the dataset over the filtered rows: known attributes from the
	// table (negated for MAX so smaller is always preferred), latent crowd
	// values from the underscored ground-truth columns when present.
	known := make([][]float64, len(keep))
	latent := make([][]float64, len(keep))
	names := make([]string, len(keep))
	nameCol := firstTextColumn(tbl)
	latentCols := make([]*Column, len(crowdAttrs))
	for j, a := range crowdAttrs {
		latentCols[j] = tbl.Column("_" + a.Name)
		if latentCols[j] != nil && !latentCols[j].IsNumeric() {
			return nil, fmt.Errorf("query: latent column _%s is not numeric", a.Name)
		}
	}
	for k, i := range keep {
		row := make([]float64, len(knownAttrs))
		for j, a := range knownAttrs {
			v := knownCols[j].Numeric[i]
			if a.Direction == Max {
				v = -v
			}
			row[j] = v
		}
		known[k] = row
		lrow := make([]float64, len(crowdAttrs))
		for j, a := range crowdAttrs {
			if latentCols[j] == nil {
				continue // zero; only valid with a non-simulated platform
			}
			v := latentCols[j].Numeric[i]
			if a.Direction == Max {
				v = -v
			}
			lrow[j] = v
		}
		latent[k] = lrow
		if nameCol != nil {
			names[k] = nameCol.Text[i]
		} else {
			names[k] = fmt.Sprintf("row%d", i)
		}
	}
	d, err := dataset.New(known, latent)
	if err != nil {
		return nil, err
	}
	if err := d.SetNames(names); err != nil {
		return nil, err
	}
	knownNames := make([]string, len(knownAttrs))
	for j, a := range knownAttrs {
		knownNames[j] = a.Name
	}
	crowdNames := make([]string, len(crowdAttrs))
	for j, a := range crowdAttrs {
		crowdNames[j] = a.Name
	}
	if err := d.SetAttrNames(knownNames, crowdNames); err != nil {
		return nil, err
	}

	// Crowd platform.
	var pf crowd.Platform
	if opt.Platform != nil {
		pf = opt.Platform(d)
	} else {
		for j, c := range latentCols {
			if c == nil && len(keep) > 1 {
				return nil, fmt.Errorf("query: crowd attribute %q has no latent column _%s and no platform was supplied",
					crowdAttrs[j].Name, crowdAttrs[j].Name)
			}
		}
		pf = crowd.NewPerfect(crowd.DatasetTruth{Data: d})
	}

	// Run the crowd-enabled skyline.
	opts := opt.Options
	if !opts.P1 && !opts.P2 && !opts.P3 && !opt.DisableDefaultPruning {
		opts.P1, opts.P2, opts.P3 = true, true, true
	}
	var res *core.Result
	switch opt.Scheduling {
	case ScheduleSerial:
		res = core.CrowdSky(d, pf, opts)
	case ScheduleDominatingSets:
		res = core.ParallelDSet(d, pf, opts)
	case ScheduleSkylineLayers:
		res = core.ParallelSL(d, pf, opts)
	default:
		return nil, fmt.Errorf("query: unknown scheduling %d", opt.Scheduling)
	}

	// Render.
	out := &Result{
		Query:      q,
		KnownAttrs: knownNames,
		CrowdAttrs: crowdNames,
		Questions:  res.Questions,
		Rounds:     res.Rounds,
		Cost:       res.Cost,
		Truncated:  res.Truncated,
	}
	// Projection: SELECT * keeps every visible column; an explicit list is
	// validated against the table.
	var projected []*Column
	if len(q.Columns) == 0 {
		for i := range tbl.Columns {
			if !strings.HasPrefix(tbl.Columns[i].Name, "_") {
				projected = append(projected, &tbl.Columns[i])
			}
		}
	} else {
		for _, name := range q.Columns {
			if strings.HasPrefix(name, "_") {
				return nil, fmt.Errorf("query: %q is a latent column and cannot be selected", name)
			}
			col := tbl.Column(name)
			if col == nil {
				return nil, fmt.Errorf("query: SELECT references unknown column %q", name)
			}
			projected = append(projected, col)
		}
	}
	for _, c := range projected {
		out.Columns = append(out.Columns, c.Name)
	}
	limit := len(res.Skyline)
	if q.Limit > 0 && q.Limit < limit {
		limit = q.Limit
	}
	for _, t := range res.Skyline[:limit] {
		orig := keep[t]
		row := make([]string, 0, len(out.Columns))
		for _, c := range projected {
			if c.IsNumeric() {
				row = append(row, strconv.FormatFloat(c.Numeric[orig], 'g', -1, 64))
			} else {
				row = append(row, c.Text[orig])
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Run parses and executes a query in one call.
func Run(sql string, cat Catalog, opt ExecOptions) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Execute(q, cat, opt)
}

// filterRows applies the WHERE conjuncts and returns surviving row indices.
func filterRows(tbl *Table, conds []Condition) ([]int, error) {
	cols := make([]*Column, len(conds))
	for i, c := range conds {
		if strings.HasPrefix(c.Attr, "_") {
			return nil, fmt.Errorf("query: %q is a latent column and cannot be filtered", c.Attr)
		}
		col := tbl.Column(c.Attr)
		if col == nil {
			return nil, fmt.Errorf("query: WHERE references unknown column %q", c.Attr)
		}
		if c.IsString && col.IsNumeric() {
			return nil, fmt.Errorf("query: column %q is numeric but compared to a string", c.Attr)
		}
		if !c.IsString && !col.IsNumeric() {
			return nil, fmt.Errorf("query: column %q is text but compared to a number", c.Attr)
		}
		cols[i] = col
	}
	var keep []int
	for i := 0; i < tbl.Rows(); i++ {
		ok := true
		for k, c := range conds {
			if c.IsString {
				ok = c.Eval(0, cols[k].Text[i], true)
			} else {
				ok = c.Eval(cols[k].Numeric[i], "", false)
			}
			if !ok {
				break
			}
		}
		if ok {
			keep = append(keep, i)
		}
	}
	return keep, nil
}

// firstTextColumn returns the first visible text column, used for tuple
// names.
func firstTextColumn(tbl *Table) *Column {
	for i := range tbl.Columns {
		c := &tbl.Columns[i]
		if !c.IsNumeric() && !strings.HasPrefix(c.Name, "_") {
			return c
		}
	}
	return nil
}

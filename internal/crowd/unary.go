package crowd

import "math/rand"

// This file implements the quantitative (unary) question format of
// Section 2.1, used to simulate the comparator of Lofi et al. [12]
// (Section 6.1, Figure 11): a worker is shown a single tuple and asked for
// an absolute value of its crowd attribute. The paper simulates such
// answers by sampling "from the normal distribution of [the] actual value";
// we follow that recipe with configurable spread.

// UnaryRequest asks workers for an absolute estimate of tuple Tuple's
// value on crowd attribute Attr.
type UnaryRequest struct {
	Tuple, Attr int
	Workers     int
}

// UnaryPlatform abstracts a crowdsourcing platform for unary questions.
// One Estimate call is one round.
type UnaryPlatform interface {
	// Estimate submits a batch of unary questions as one round and
	// returns one aggregated estimate per request, in order.
	Estimate(reqs []UnaryRequest) []float64
	// Stats returns the accounting accumulated so far.
	Stats() *Stats
}

// SimulatedUnary answers unary questions with truth + Gaussian noise per
// worker, averaged over the assigned workers. Sigma is the per-worker
// noise standard deviation; the paper's crowd attributes live in [0,1], for
// which the experiments use 0.15 by default (Section 6.1 gives no number;
// EXPERIMENTS.md documents the calibration).
type SimulatedUnary struct {
	Truth Truth
	Sigma float64
	Rng   *rand.Rand

	stats Stats
}

// NewSimulatedUnary returns a noisy unary-question platform.
func NewSimulatedUnary(truth Truth, sigma float64, rng *rand.Rand) *SimulatedUnary {
	return &SimulatedUnary{Truth: truth, Sigma: sigma, Rng: rng}
}

// Estimate implements UnaryPlatform.
func (u *SimulatedUnary) Estimate(reqs []UnaryRequest) []float64 {
	if len(reqs) == 0 {
		return nil
	}
	// Book the round with the same HIT model as pair-wise questions.
	asReqs := make([]Request, len(reqs))
	for i, r := range reqs {
		asReqs[i] = Request{Q: Question{A: r.Tuple, B: r.Tuple, Attr: r.Attr}, Workers: r.Workers}
	}
	u.stats.record(asReqs)

	out := make([]float64, len(reqs))
	for i, r := range reqs {
		truth := u.Truth.Value(r.Tuple, r.Attr)
		k := r.Workers
		if k < 1 {
			k = 1
		}
		sum := 0.0
		for w := 0; w < k; w++ {
			sum += truth + u.Rng.NormFloat64()*u.Sigma
		}
		out[i] = sum / float64(k)
	}
	return out
}

// Stats implements UnaryPlatform.
func (u *SimulatedUnary) Stats() *Stats { return &u.stats }

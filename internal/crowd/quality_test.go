package crowd

import (
	"math/rand"
	"testing"

	"crowdsky/internal/dataset"
)

func TestQualityTracking(t *testing.T) {
	q := NewQuality()
	// Unseen worker: prior agreement 0.5, never blocked.
	if q.Agreement(1) != 0.5 || q.Blocked(1) {
		t.Errorf("fresh worker state wrong")
	}
	// A worker agreeing 12/12 is trusted.
	for i := 0; i < 12; i++ {
		q.Observe(1, First, First)
	}
	if q.Blocked(1) || q.Agreement(1) <= 0.9 {
		t.Errorf("agreeing worker penalized: agreement %.2f", q.Agreement(1))
	}
	// A worker disagreeing 12/12 is blocked once past MinJudgments.
	for i := 0; i < 12; i++ {
		q.Observe(2, Second, First)
	}
	if !q.Blocked(2) {
		t.Errorf("disagreeing worker not blocked (agreement %.2f)", q.Agreement(2))
	}
	if q.Judgments(2) != 12 {
		t.Errorf("judgments = %d", q.Judgments(2))
	}
	blocked := q.BlockedWorkers()
	if len(blocked) != 1 || blocked[0] != 2 {
		t.Errorf("blocked = %v", blocked)
	}
	// Below MinJudgments nothing is blocked, however bad.
	q2 := NewQuality()
	for i := 0; i < 5; i++ {
		q2.Observe(3, Second, First)
	}
	if q2.Blocked(3) {
		t.Errorf("worker blocked before MinJudgments")
	}
}

// TestQualityScreensSpammers: with screening enabled, a half-spam pool's
// blocked list consists (mostly) of actual spammers, and the aggregated
// mistake rate drops versus the unscreened pool.
func TestQualityScreensSpammers(t *testing.T) {
	d := dataset.MustGenerate(dataset.GenerateConfig{
		N: 2, KnownDims: 1, CrowdDims: 1, Distribution: dataset.Independent,
	}, rand.New(rand.NewSource(1)))
	truth := DatasetTruth{Data: d}
	q := Question{A: 0, B: 1}

	run := func(withQuality bool, seed int64) (mistakes int, quality *Quality, pool *Pool) {
		rng := rand.New(rand.NewSource(seed))
		pool, err := NewPool(PoolConfig{Size: 40, Reliability: 0.95, SpammerFraction: 0.5}, rng)
		if err != nil {
			t.Fatal(err)
		}
		pf := NewSimulated(truth, pool, rng)
		if withQuality {
			pf.Quality = NewQuality()
			quality = pf.Quality
		}
		for i := 0; i < 500; i++ {
			pf.Ask([]Request{{Q: q, Workers: 5}})
		}
		return pf.Mistakes(), quality, pool
	}

	plainMistakes, _, _ := run(false, 2)
	screenedMistakes, quality, pool := run(true, 2)
	if screenedMistakes >= plainMistakes {
		t.Errorf("screening did not reduce mistakes: %d vs %d", screenedMistakes, plainMistakes)
	}
	// The blocked list should be dominated by true spammers.
	blocked := quality.BlockedWorkers()
	if len(blocked) == 0 {
		t.Fatalf("no workers blocked in a half-spam pool")
	}
	spammers := 0
	for _, id := range blocked {
		if pool.workers[id].Reliability < 0.5 {
			spammers++
		}
	}
	if spammers*10 < len(blocked)*8 {
		t.Errorf("only %d of %d blocked workers are spammers", spammers, len(blocked))
	}
}

package crowd

// EM-style worker reliability estimation over a batch of redundant votes,
// in the spirit of CDAS [11] and the Dawid–Skene family: alternate between
// (E) re-deciding every question by reliability-weighted voting and
// (M) re-estimating every worker's reliability as the agreement rate with
// those decisions. Majority agreement (package Quality) is the one-shot
// special case; the iteration sharpens estimates when spam is heavy enough
// to contaminate plain majorities.

// Vote is a single worker judgment on an identified question.
type Vote struct {
	Question Question
	Worker   int
	Pref     Preference
}

// EMResult carries the converged estimates.
type EMResult struct {
	// Answers maps each question to its reliability-weighted decision.
	Answers map[Question]Preference
	// Reliability maps each worker to the estimated correctness
	// probability (Laplace-smoothed agreement with the final decisions).
	Reliability map[int]float64
	// Iterations actually run (≤ the configured maximum).
	Iterations int
}

// EstimateReliability runs the EM iteration on a batch of votes. maxIter
// bounds the alternation (5 is plenty in practice; the fixpoint is usually
// reached in 2–3). An empty vote set yields empty maps.
func EstimateReliability(votes []Vote, maxIter int) *EMResult {
	if maxIter <= 0 {
		maxIter = 5
	}
	byQuestion := make(map[Question][]Vote)
	workers := make(map[int]bool)
	for _, v := range votes {
		byQuestion[v.Question] = append(byQuestion[v.Question], v)
		workers[v.Worker] = true
	}
	// Initialize with uniform reliability (plain majority voting).
	rel := make(map[int]float64, len(workers))
	for w := range workers {
		rel[w] = 0.7
	}
	res := &EMResult{Reliability: rel}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		// E-step: weighted decision per question. A worker's vote counts
		// with weight proportional to how far above chance (1/3 for a
		// ternary question) their reliability sits.
		answers := make(map[Question]Preference, len(byQuestion))
		for q, vs := range byQuestion {
			var score [3]float64
			for _, v := range vs {
				w := rel[v.Worker] - 1.0/3.0
				if w < 0.01 {
					w = 0.01 // never let a vote count negatively
				}
				score[v.Pref] += w
			}
			var best Preference
			switch {
			case score[First] > score[Second] && score[First] > score[Equal]:
				best = First
			case score[Second] > score[First] && score[Second] > score[Equal]:
				best = Second
			default:
				best = Equal // ties break cautiously, as in MajorityVote
			}
			answers[q] = best
		}
		// M-step: reliability = smoothed agreement with the decisions.
		agree := make(map[int]int, len(workers))
		total := make(map[int]int, len(workers))
		for q, vs := range byQuestion {
			for _, v := range vs {
				total[v.Worker]++
				if v.Pref == answers[q] {
					agree[v.Worker]++
				}
			}
		}
		next := make(map[int]float64, len(workers))
		changed := false
		for w := range workers {
			r := float64(agree[w]+1) / float64(total[w]+2)
			if diff := r - rel[w]; diff > 1e-9 || diff < -1e-9 {
				changed = true
			}
			next[w] = r
		}
		rel = next
		res.Answers = answers
		res.Reliability = rel
		if !changed {
			break
		}
	}
	return res
}

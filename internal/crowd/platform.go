package crowd

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Perfect is a Platform whose answers are always correct: every question is
// answered by the ground truth directly, regardless of the requested worker
// count (it still books the requested workers for cost accounting). It
// implements the "answers of crowds are always correct" assumption under
// which Sections 3 and 4 analyze monetary cost and latency.
type Perfect struct {
	Truth Truth
	stats Stats
}

// NewPerfect returns a perfect platform answering from truth.
func NewPerfect(truth Truth) *Perfect { return &Perfect{Truth: truth} }

// Ask implements Platform.
func (p *Perfect) Ask(reqs []Request) []Answer {
	if len(reqs) == 0 {
		return nil
	}
	p.stats.record(reqs)
	out := make([]Answer, len(reqs))
	for i, r := range reqs {
		out[i] = Answer{Q: r.Q, Pref: p.Truth.Answer(r.Q)}
	}
	return out
}

// Stats implements Platform.
func (p *Perfect) Stats() *Stats { return &p.stats }

// Simulated is a Platform that models noisy workers: each question is
// judged by the requested number of workers drawn from a Pool, each worker
// is correct with its individual reliability, and the final answer is the
// majority vote (Section 5). Within one round, repeated occurrences of the
// same question (or its flipped twin) are answered independently, as
// independent worker groups would on AMT.
type Simulated struct {
	Truth Truth
	Pool  *Pool
	Rng   *rand.Rand
	// Quality, when non-nil, tracks per-worker majority agreement and
	// screens blocked workers out of future assignments (the programmatic
	// Masters filter; see Quality).
	Quality *Quality

	stats    Stats
	mistakes int // aggregated answers that differ from truth
}

// NewSimulated returns a noisy simulated platform.
func NewSimulated(truth Truth, pool *Pool, rng *rand.Rand) *Simulated {
	return &Simulated{Truth: truth, Pool: pool, Rng: rng}
}

// Ask implements Platform.
func (s *Simulated) Ask(reqs []Request) []Answer {
	if len(reqs) == 0 {
		return nil
	}
	s.stats.record(reqs)
	out := make([]Answer, len(reqs))
	for i, r := range reqs {
		truth := s.Truth.Answer(r.Q)
		k := r.Workers
		if k < 1 {
			k = 1
		}
		workers := s.assign(k)
		votes := make([]Preference, 0, k)
		for _, w := range workers {
			votes = append(votes, w.Judge(truth, s.Rng))
		}
		pref := MajorityVote(votes)
		if s.Quality != nil {
			for vi, w := range workers {
				s.Quality.Observe(w.ID, votes[vi], pref)
			}
		}
		if pref != truth {
			s.mistakes++
		}
		out[i] = Answer{Q: r.Q, Pref: pref}
	}
	return out
}

// assign picks k workers, skipping quality-blocked ones when screening is
// enabled. If the pool cannot produce k unblocked workers within a bounded
// number of draws (everyone is blocked), it falls back to whatever the
// pool hands out — questions must not starve.
func (s *Simulated) assign(k int) []Worker {
	if s.Quality == nil {
		return s.Pool.Assign(k)
	}
	out := make([]Worker, 0, k)
	for attempts := 0; len(out) < k && attempts < 20*k+100; attempts++ {
		w := s.Pool.Assign(1)[0]
		if s.Quality.Blocked(w.ID) {
			continue
		}
		out = append(out, w)
	}
	for len(out) < k {
		out = append(out, s.Pool.Assign(1)[0])
	}
	return out
}

// Stats implements Platform.
func (s *Simulated) Stats() *Stats { return &s.stats }

// Mistakes returns the number of aggregated answers that differed from the
// ground truth so far.
func (s *Simulated) Mistakes() int { return s.mistakes }

// Interactive is a Platform that asks a human through a text prompt (used
// by cmd/crowdsky to let the operator play the crowd). Each question is
// printed on Out and a line is read from In: "1"/"a" prefers the first
// tuple, "2"/"b" the second, "=" or "e" equal.
type Interactive struct {
	In  io.Reader
	Out io.Writer
	// Describe renders a tuple for the prompt; defaults to the index.
	Describe func(tuple int) string
	// AttrName renders a crowd attribute name; defaults to the index.
	AttrName func(attr int) string

	scanner *bufio.Scanner
	stats   Stats
}

// Ask implements Platform.
func (ia *Interactive) Ask(reqs []Request) []Answer {
	if len(reqs) == 0 {
		return nil
	}
	if ia.scanner == nil {
		ia.scanner = bufio.NewScanner(ia.In)
	}
	ia.stats.record(reqs)
	desc := ia.Describe
	if desc == nil {
		desc = func(t int) string { return fmt.Sprintf("tuple %d", t) }
	}
	attr := ia.AttrName
	if attr == nil {
		attr = func(a int) string { return fmt.Sprintf("attribute %d", a) }
	}
	out := make([]Answer, len(reqs))
	for i, r := range reqs {
		fmt.Fprintf(ia.Out, "Which is preferred on %s?\n  [1] %s\n  [2] %s\n  [=] equally preferred\n> ",
			attr(r.Q.Attr), desc(r.Q.A), desc(r.Q.B))
		pref := Equal
		for ia.scanner.Scan() {
			switch strings.ToLower(strings.TrimSpace(ia.scanner.Text())) {
			case "1", "a":
				pref = First
			case "2", "b":
				pref = Second
			case "=", "e", "equal":
				pref = Equal
			default:
				fmt.Fprint(ia.Out, "please answer 1, 2 or =\n> ")
				continue
			}
			break
		}
		out[i] = Answer{Q: r.Q, Pref: pref}
	}
	return out
}

// Stats implements Platform.
func (ia *Interactive) Stats() *Stats { return &ia.stats }

// Recorder wraps a Platform and records every answer, so a crowd run (for
// example an expensive interactive session) can be replayed later with
// Replayer.
type Recorder struct {
	Inner Platform
	Log   []Answer
}

// Ask implements Platform.
func (r *Recorder) Ask(reqs []Request) []Answer {
	return r.AskCtx(context.Background(), reqs)
}

// AskCtx implements ContextPlatform, forwarding the context to the inner
// platform.
func (r *Recorder) AskCtx(ctx context.Context, reqs []Request) []Answer {
	answers := AskWithContext(ctx, r.Inner, reqs)
	r.Log = append(r.Log, answers...)
	return answers
}

// Stats implements Platform.
func (r *Recorder) Stats() *Stats { return r.Inner.Stats() }

// Replayer is a Platform that answers from a recorded log. Questions are
// matched by (A, B, Attr), symmetric under flipping; asking a question that
// was never recorded panics, which keeps replay honest.
type Replayer struct {
	answers map[Question]Preference
	stats   Stats
}

// NewReplayer builds a replayer from a recorded answer log.
func NewReplayer(log []Answer) *Replayer {
	r := &Replayer{answers: make(map[Question]Preference, len(log))}
	for _, a := range log {
		r.answers[a.Q] = a.Pref
		r.answers[Question{A: a.Q.B, B: a.Q.A, Attr: a.Q.Attr}] = a.Pref.Flip()
	}
	return r
}

// Ask implements Platform.
func (r *Replayer) Ask(reqs []Request) []Answer {
	if len(reqs) == 0 {
		return nil
	}
	r.stats.record(reqs)
	out := make([]Answer, len(reqs))
	for i, req := range reqs {
		pref, ok := r.answers[req.Q]
		if !ok {
			panic(fmt.Sprintf("crowd: replay has no answer for %+v", req.Q))
		}
		out[i] = Answer{Q: req.Q, Pref: pref}
	}
	return out
}

// Stats implements Platform.
func (r *Replayer) Stats() *Stats { return &r.stats }

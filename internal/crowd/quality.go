package crowd

import "sort"

// Quality estimates worker reliability from majority agreement and screens
// persistently disagreeing workers out of future assignments. It is the
// query-independent accuracy layer of the systems the paper builds on
// (CDAS [11], CrowdScreen [18]) and the programmatic counterpart of the
// AMT "Masters" qualification the paper relied on to filter spam
// (Section 6.2).
//
// After every aggregated answer, each participating worker's vote is
// compared against the majority outcome; a worker whose agreement rate
// (Laplace-smoothed) stays below MinAgreement after MinJudgments is
// blocked from further questions. Majority agreement is a biased but
// serviceable estimator of true reliability as long as the majority is
// usually right — the same assumption majority voting itself rests on.
type Quality struct {
	// MinJudgments is how many observed votes a worker needs before
	// screening applies (default 10).
	MinJudgments int
	// MinAgreement is the smallest acceptable agreement rate (default
	// 0.5, which rejects uniform spammers whose expected agreement is
	// about 1/3 on ternary questions).
	MinAgreement float64

	agree map[int]int
	total map[int]int
}

// NewQuality returns a tracker with the default thresholds.
func NewQuality() *Quality {
	return &Quality{MinJudgments: 10, MinAgreement: 0.5}
}

func (q *Quality) init() {
	if q.agree == nil {
		q.agree = make(map[int]int)
		q.total = make(map[int]int)
	}
	if q.MinJudgments <= 0 {
		q.MinJudgments = 10
	}
	if q.MinAgreement <= 0 {
		q.MinAgreement = 0.5
	}
}

// Observe records that the worker voted vote on a question whose
// aggregated outcome was majority.
func (q *Quality) Observe(worker int, vote, majority Preference) {
	q.init()
	q.total[worker]++
	if vote == majority {
		q.agree[worker]++
	}
}

// Agreement returns the Laplace-smoothed agreement rate of a worker
// ((agree+1) / (total+2)); unseen workers get the prior 0.5.
func (q *Quality) Agreement(worker int) float64 {
	q.init()
	return float64(q.agree[worker]+1) / float64(q.total[worker]+2)
}

// Blocked reports whether the worker has been screened out.
func (q *Quality) Blocked(worker int) bool {
	q.init()
	if q.total[worker] < q.MinJudgments {
		return false
	}
	return q.Agreement(worker) < q.MinAgreement
}

// BlockedWorkers lists the screened-out workers in ascending id order.
func (q *Quality) BlockedWorkers() []int {
	q.init()
	var out []int
	for w := range q.total {
		if q.Blocked(w) {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// Judgments returns how many votes have been observed for a worker.
func (q *Quality) Judgments(worker int) int {
	q.init()
	return q.total[worker]
}

package crowd

import "time"

// LatencyModel converts round counts into wall-clock estimates, following
// the paper's latency assumption that every round takes a fixed amount of
// time (Section 2.1) — the time for a HIT to be picked up and answered.
// The defaults come from the paper's measured per-HIT working times in the
// real-life experiments (Section 6.2): Q1 averaged 22s, Q2 49s and Q3
// 1m33s per HIT; on top of the working time, marketplace pickup adds a
// fixed overhead per round.
type LatencyModel struct {
	// WorkTime is the average time a worker spends answering one HIT.
	WorkTime time.Duration
	// Pickup is the marketplace overhead per round: posting, workers
	// noticing the HIT, and result collection.
	Pickup time.Duration
}

// Per-HIT working times the paper measured on AMT (Section 6.2).
var (
	// RectangleLatency: "the average working time per HIT was 22 secs"
	// for Q1 — easy perceptual comparisons.
	RectangleLatency = LatencyModel{WorkTime: 22 * time.Second, Pickup: 30 * time.Second}
	// MovieLatency: 49 secs for Q2 — light domain knowledge.
	MovieLatency = LatencyModel{WorkTime: 49 * time.Second, Pickup: 30 * time.Second}
	// ExpertLatency: 1 min 33 secs for Q3 — "the most difficult task".
	ExpertLatency = LatencyModel{WorkTime: 93 * time.Second, Pickup: 30 * time.Second}
)

// Estimate returns the expected wall-clock time for the given number of
// rounds: rounds run strictly one after another (each depends on the
// previous answers), questions within a round run in parallel.
func (m LatencyModel) Estimate(rounds int) time.Duration {
	if rounds < 0 {
		rounds = 0
	}
	return time.Duration(rounds) * (m.WorkTime + m.Pickup)
}

// EstimateStats applies the model to a finished run's accounting.
func (m LatencyModel) EstimateStats(s *Stats) time.Duration {
	return m.Estimate(s.Rounds())
}

package crowd

import "crowdsky/internal/dataset"

// Truth supplies ground-truth answers for simulated questions. The paper's
// synthetic evaluation derives answers from the latent crowd-attribute
// values (Section 6.1); DatasetTruth implements exactly that.
type Truth interface {
	// Answer returns the correct preference for q.
	Answer(q Question) Preference
	// Value returns the latent value of tuple i on crowd attribute j, for
	// unary-question simulation (Section 6.1, the comparison against
	// [12]). Smaller is more preferred.
	Value(i, j int) float64
}

// DatasetTruth answers questions from a dataset's latent crowd-attribute
// values. Two values within Epsilon of each other are reported as equally
// preferred; the default 0 means only exact ties are equal, matching the
// continuous synthetic data where ties have probability zero.
type DatasetTruth struct {
	Data    *dataset.Dataset
	Epsilon float64
}

// Answer implements Truth.
func (t DatasetTruth) Answer(q Question) Preference {
	a := t.Data.Latent(q.A, q.Attr)
	b := t.Data.Latent(q.B, q.Attr)
	diff := a - b
	switch {
	case diff < -t.Epsilon:
		return First
	case diff > t.Epsilon:
		return Second
	default:
		return Equal
	}
}

// Value implements Truth.
func (t DatasetTruth) Value(i, j int) float64 { return t.Data.Latent(i, j) }

package crowd

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"crowdsky/internal/dataset"
)

func toyTruth() DatasetTruth {
	return DatasetTruth{Data: dataset.Toy()}
}

func TestPreferenceFlip(t *testing.T) {
	if First.Flip() != Second || Second.Flip() != First || Equal.Flip() != Equal {
		t.Errorf("Flip wrong")
	}
	if First.String() != "first" || Second.String() != "second" || Equal.String() != "equal" {
		t.Errorf("String wrong")
	}
	if !strings.Contains(Preference(9).String(), "9") {
		t.Errorf("out-of-range String = %q", Preference(9).String())
	}
}

func TestDatasetTruth(t *testing.T) {
	tr := toyTruth()
	d := tr.Data
	f, e := d.Index("f"), d.Index("e")
	// f has the smallest latent value: most preferred.
	if tr.Answer(Question{A: f, B: e}) != First {
		t.Errorf("truth: f should beat e")
	}
	if tr.Answer(Question{A: e, B: f}) != Second {
		t.Errorf("truth: symmetric answer wrong")
	}
	if tr.Answer(Question{A: f, B: f}) != Equal {
		t.Errorf("truth: self-comparison not equal")
	}
	if tr.Value(f, 0) != d.Latent(f, 0) {
		t.Errorf("Value accessor wrong")
	}
	// Epsilon widens the equality band.
	eps := DatasetTruth{Data: d, Epsilon: 100}
	if eps.Answer(Question{A: f, B: e}) != Equal {
		t.Errorf("epsilon band ignored")
	}
}

func TestPerfectPlatform(t *testing.T) {
	pf := NewPerfect(toyTruth())
	d := dataset.Toy()
	reqs := []Request{
		{Q: Question{A: d.Index("f"), B: d.Index("e")}, Workers: 5},
		{Q: Question{A: d.Index("a"), B: d.Index("b")}, Workers: 5},
	}
	answers := pf.Ask(reqs)
	if len(answers) != 2 || answers[0].Pref != First || answers[1].Pref != Second {
		t.Errorf("perfect answers wrong: %+v", answers)
	}
	st := pf.Stats().Snapshot()
	if st.Questions != 2 || st.Rounds != 1 || st.WorkerAnswers != 10 {
		t.Errorf("stats = %+v", st)
	}
	if pf.Ask(nil) != nil || pf.Stats().Rounds() != 1 {
		t.Errorf("empty Ask consumed a round")
	}
}

func TestStatsCostFormula(t *testing.T) {
	// Section 6.2: questions pack into HITs of 5 across the whole run.
	// Two rounds of 7 and 3 questions at ω=5: ⌈10/5⌉ = 2 HITs, ×5 workers
	// ×$0.02 = $0.20.
	var s Stats
	reqs := func(k int) []Request {
		out := make([]Request, k)
		for i := range out {
			out[i] = Request{Workers: 5}
		}
		return out
	}
	s.record(reqs(7))
	s.record(reqs(3))
	if got := s.Cost(0.02); got != 0.02*5*2 {
		t.Errorf("cost = %v, want %v", got, 0.02*5*2)
	}
	// The conservative per-round packing stays available in PerRound:
	// ⌈7/5⌉×5 + ⌈3/5⌉×5 = 15 worker units.
	perRound := 0
	for _, r := range s.PerRound() {
		perRound += r.WorkerUnits
	}
	if perRound != 15 {
		t.Errorf("per-round units = %d, want 15", perRound)
	}
	if s.MaxRoundSize() != 7 {
		t.Errorf("MaxRoundSize = %d", s.MaxRoundSize())
	}
	// Mixed worker counts are grouped per ω.
	var m Stats
	m.record([]Request{{Workers: 3}, {Workers: 3}, {Workers: 7}})
	// ⌈2/5⌉×3 + ⌈1/5⌉×7 = 10 units.
	if got := m.Cost(1); got != 10 {
		t.Errorf("mixed cost = %v, want 10", got)
	}
	// Workers < 1 count as 1.
	var z Stats
	z.record([]Request{{Workers: 0}})
	if z.WorkerAnswers() != 1 {
		t.Errorf("zero-worker request booked %d answers", z.WorkerAnswers())
	}
}

func TestWorkerJudge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	perfect := Worker{Reliability: 1}
	for i := 0; i < 20; i++ {
		if perfect.Judge(First, rng) != First {
			t.Fatalf("perfect worker erred")
		}
	}
	broken := Worker{Reliability: 0}
	for i := 0; i < 20; i++ {
		if broken.Judge(Equal, rng) == Equal {
			t.Fatalf("zero-reliability worker answered correctly")
		}
	}
}

func TestPoolAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Unbounded pool.
	p, err := NewPool(PoolConfig{Reliability: 0.8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ws := p.Assign(5)
	if len(ws) != 5 || ws[0].Reliability != 0.8 {
		t.Errorf("unbounded assignment wrong: %+v", ws)
	}
	// Bounded pool hands out round-robin.
	p, err = NewPool(PoolConfig{Size: 3, Reliability: 0.9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ws = p.Assign(4)
	if ws[0].ID != 0 || ws[3].ID != 0 {
		t.Errorf("round-robin wrong: %+v", ws)
	}
	// Spammers reduce reliability.
	p, err = NewPool(PoolConfig{Size: 100, Reliability: 0.9, SpammerFraction: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	spammers := 0
	for _, w := range p.Assign(100) {
		if w.Reliability < 0.5 {
			spammers++
		}
	}
	if spammers < 20 || spammers > 80 {
		t.Errorf("spammer count = %d, want around 50", spammers)
	}
	// Validation.
	if _, err := NewPool(PoolConfig{Reliability: 1.5}, rng); err == nil {
		t.Errorf("invalid reliability accepted")
	}
	if _, err := NewPool(PoolConfig{Reliability: 0.5, SpammerFraction: -1}, rng); err == nil {
		t.Errorf("invalid spammer fraction accepted")
	}
}

func TestMajorityVote(t *testing.T) {
	cases := []struct {
		votes []Preference
		want  Preference
	}{
		{[]Preference{First, First, Second}, First},
		{[]Preference{Second, Second, First}, Second},
		{[]Preference{Equal, Equal, First}, Equal},
		{[]Preference{First, Second}, Equal},        // tie → cautious Equal
		{[]Preference{First, Second, Equal}, Equal}, /* three-way tie */
		{nil, Equal},
	}
	for _, c := range cases {
		if got := MajorityVote(c.votes); got != c.want {
			t.Errorf("MajorityVote(%v) = %v, want %v", c.votes, got, c.want)
		}
	}
}

func TestSimulatedPlatformStatistics(t *testing.T) {
	tr := toyTruth()
	rng := rand.New(rand.NewSource(3))
	pool, err := NewPool(PoolConfig{Reliability: 0.8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pf := NewSimulated(tr, pool, rng)
	d := tr.Data
	q := Question{A: d.Index("f"), B: d.Index("e")}
	correct := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		if pf.Ask([]Request{{Q: q, Workers: 5}})[0].Pref == First {
			correct++
		}
	}
	// Majority of 5 workers at p=0.8 should be right ~94% of the time.
	if correct < trials*85/100 {
		t.Errorf("5-worker majority correct only %d/%d", correct, trials)
	}
	if pf.Mistakes() != trials-correct {
		t.Errorf("mistakes = %d, want %d", pf.Mistakes(), trials-correct)
	}
	st := pf.Stats().Snapshot()
	if st.Questions != trials || st.WorkerAnswers != trials*5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInteractivePlatform(t *testing.T) {
	var out strings.Builder
	ia := &Interactive{
		In:  strings.NewReader("1\nbogus\n2\n=\n"),
		Out: &out,
	}
	answers := ia.Ask([]Request{
		{Q: Question{A: 0, B: 1}},
		{Q: Question{A: 2, B: 3}},
		{Q: Question{A: 4, B: 5}},
	})
	want := []Preference{First, Second, Equal}
	for i, a := range answers {
		if a.Pref != want[i] {
			t.Errorf("answer %d = %v, want %v", i, a.Pref, want[i])
		}
	}
	if !strings.Contains(out.String(), "please answer") {
		t.Errorf("invalid input not re-prompted")
	}
	if ia.Stats().Questions() != 3 {
		t.Errorf("interactive stats wrong")
	}
}

func TestRecorderAndReplayer(t *testing.T) {
	rec := &Recorder{Inner: NewPerfect(toyTruth())}
	d := dataset.Toy()
	q1 := Question{A: d.Index("f"), B: d.Index("e")}
	q2 := Question{A: d.Index("a"), B: d.Index("b")}
	rec.Ask([]Request{{Q: q1}})
	rec.Ask([]Request{{Q: q2}})
	if len(rec.Log) != 2 || rec.Stats().Rounds() != 2 {
		t.Fatalf("recorder log/stats wrong")
	}
	rp := NewReplayer(rec.Log)
	// Same question and its flipped twin replay consistently.
	if rp.Ask([]Request{{Q: q1}})[0].Pref != First {
		t.Errorf("replay wrong")
	}
	flipped := Question{A: q1.B, B: q1.A}
	if rp.Ask([]Request{{Q: flipped}})[0].Pref != Second {
		t.Errorf("flipped replay wrong")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("replaying an unrecorded question did not panic")
		}
	}()
	rp.Ask([]Request{{Q: Question{A: 0, B: 5, Attr: 0}}})
}

func TestSimulatedUnary(t *testing.T) {
	tr := toyTruth()
	rng := rand.New(rand.NewSource(4))
	up := NewSimulatedUnary(tr, 0, rng)
	d := tr.Data
	ests := up.Estimate([]UnaryRequest{
		{Tuple: d.Index("f"), Workers: 3},
		{Tuple: d.Index("e"), Workers: 3},
	})
	if ests[0] != d.Latent(d.Index("f"), 0) || ests[1] != d.Latent(d.Index("e"), 0) {
		t.Errorf("zero-noise estimates wrong: %v", ests)
	}
	st := up.Stats().Snapshot()
	if st.Questions != 2 || st.Rounds != 1 || st.WorkerAnswers != 6 {
		t.Errorf("unary stats = %+v", st)
	}
	if up.Estimate(nil) != nil {
		t.Errorf("empty estimate not nil")
	}
	// Noise shrinks with worker count (law of large numbers smoke test).
	noisy := NewSimulatedUnary(tr, 0.5, rand.New(rand.NewSource(5)))
	var err1, err25 float64
	truth := d.Latent(d.Index("f"), 0)
	for i := 0; i < 200; i++ {
		e1 := noisy.Estimate([]UnaryRequest{{Tuple: d.Index("f"), Workers: 1}})[0]
		e25 := noisy.Estimate([]UnaryRequest{{Tuple: d.Index("f"), Workers: 25}})[0]
		err1 += abs(e1 - truth)
		err25 += abs(e25 - truth)
	}
	if err25 >= err1 {
		t.Errorf("averaging over workers did not reduce error: %v vs %v", err25, err1)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestStatsConcurrent hammers one Stats from recording and reading
// goroutines; run with -race this is the regression test for concurrent
// monitoring reads (HTTP stats handlers, platform decorators) during a
// live run.
func TestStatsConcurrent(t *testing.T) {
	var s Stats
	const writers, readers, rounds = 4, 4, 250
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.Record([]Request{{Workers: 3}, {Workers: 5}})
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_ = s.Questions()
				_ = s.Cost(DefaultReward)
				_ = s.MaxRoundSize()
				snap := s.Snapshot()
				if snap.Questions != 2*snap.Rounds {
					t.Errorf("torn snapshot: %d questions in %d rounds", snap.Questions, snap.Rounds)
				}
			}
		}()
	}
	wg.Wait()
	if s.Questions() != 2*writers*rounds || s.Rounds() != writers*rounds {
		t.Errorf("final stats: %d questions, %d rounds", s.Questions(), s.Rounds())
	}
	if s.WorkerAnswers() != 8*writers*rounds {
		t.Errorf("worker answers = %d", s.WorkerAnswers())
	}
	if got := len(s.PerRound()); got != writers*rounds {
		t.Errorf("per-round entries = %d", got)
	}
}

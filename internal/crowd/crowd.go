// Package crowd is the crowdsourcing platform substrate: the pair-wise
// question/answer model of Section 2.1, worker pools with configurable
// reliability, a simulated platform that answers from latent ground truth
// with Bernoulli worker noise (the paper's synthetic-crowd setup), a
// perfect-oracle platform for the counting experiments of Sections 3-4, an
// interactive stdin platform, record/replay wrappers, and the AMT cost
// model of Section 6.2.
//
// The unit of exchange is the round (Section 2.1, latency): one call to
// Platform.Ask submits a batch of questions that run in parallel and
// returns their aggregated answers. Question, round, and worker accounting
// live here so no algorithm can miscount its own budget.
package crowd

import (
	"context"
	"fmt"
	"sync"
)

// Preference is the ternary outcome of a pair-wise question (s, t): the
// crowd prefers s, prefers t, or finds them equally preferred
// (Section 2.1).
type Preference int8

const (
	// First means the first tuple of the pair is preferred.
	First Preference = iota
	// Second means the second tuple of the pair is preferred.
	Second
	// Equal means the two tuples are equally preferred.
	Equal
)

// String returns "first", "second" or "equal".
func (p Preference) String() string {
	switch p {
	case First:
		return "first"
	case Second:
		return "second"
	case Equal:
		return "equal"
	default:
		return fmt.Sprintf("Preference(%d)", int(p))
	}
}

// Flip returns the preference with the roles of the pair swapped. Pair-wise
// questions are symmetric ((s,t) = (t,s), Section 2.1), so the answer to
// the swapped question is the flipped preference.
func (p Preference) Flip() Preference {
	switch p {
	case First:
		return Second
	case Second:
		return First
	default:
		return Equal
	}
}

// Question is one pair-wise micro-task: compare tuples A and B on crowd
// attribute Attr. A question with |AC| = m crowd attributes is modeled as m
// Questions that are asked in the same round (Section 3 preamble).
type Question struct {
	A, B int // tuple indices
	Attr int // crowd attribute index, 0 <= Attr < |AC|
}

// Request is a question together with the number of workers assigned to it
// by the voting policy (Section 5).
type Request struct {
	Q       Question
	Workers int
}

// Answer is the aggregated (majority-voted) crowd answer to a question.
type Answer struct {
	Q    Question
	Pref Preference
}

// Platform abstracts the crowdsourcing marketplace. One Ask call is one
// round: all submitted questions run in parallel and the call blocks until
// every answer is in (the fixed-time-per-round model of Section 2.1).
// Implementations must answer symmetric questions consistently within a
// round.
type Platform interface {
	// Ask submits a batch of questions as one round and returns one answer
	// per request, in order. Asking an empty batch is a no-op that does
	// not consume a round.
	Ask(reqs []Request) []Answer
	// Stats returns the accounting accumulated so far.
	Stats() *Stats
}

// ContextPlatform is implemented by platforms that honour a
// context.Context per round: cancellation for remote marketplaces whose
// rounds can block for minutes, and trace-span propagation so a round's
// server-side lifecycle joins the run's trace. Platform itself predates
// context plumbing and keeps its context-free Ask for simulated
// platforms that never block.
type ContextPlatform interface {
	Platform
	// AskCtx is Ask with a context carried to the marketplace.
	AskCtx(ctx context.Context, reqs []Request) []Answer
}

// AskWithContext submits one round on pf, routing through AskCtx when pf
// supports it. Decorators that wrap a Platform should implement
// ContextPlatform and forward the context to their inner platform with
// this helper, so context support survives arbitrary decorator stacks.
func AskWithContext(ctx context.Context, pf Platform, reqs []Request) []Answer {
	if cp, ok := pf.(ContextPlatform); ok {
		return cp.AskCtx(ctx, reqs)
	}
	return pf.Ask(reqs)
}

// RoundStat records the accounting of a single round.
type RoundStat struct {
	// Questions is the number of questions in the round.
	Questions int
	// WorkerUnits is Σ over distinct worker counts ω in the round of
	// ⌈count_ω / QuestionsPerHIT⌉ × ω: the number of (HIT, worker)
	// assignments that must be paid for (Section 6.2 cost formula).
	WorkerUnits int
}

// QuestionsPerHIT is the number of questions bundled into one AMT HIT in
// the paper's real-life experiments ("5 questions are issued at each
// task", Section 6.2).
const QuestionsPerHIT = 5

// DefaultReward is the paper's per-HIT-assignment reward in dollars.
const DefaultReward = 0.02

// Stats accumulates platform accounting across rounds. It is safe for
// concurrent use: recording and reading take an internal mutex, so
// monitoring decorators and HTTP stats handlers can read a live run's
// accounting while rounds record. The zero value is ready to use.
type Stats struct {
	mu            sync.Mutex
	questions     int         // skylint:guardedby mu — total questions asked
	rounds        int         // skylint:guardedby mu — total non-empty Ask calls
	workerAnswers int         // skylint:guardedby mu — total individual worker judgments
	perRound      []RoundStat // skylint:guardedby mu — per-round breakdown, in order

	// byWorkers counts questions per assigned worker count across the
	// whole run, for the HIT-packed cost model.
	byWorkers map[int]int // skylint:guardedby mu
}

// Snapshot is a consistent point-in-time copy of a run's accounting.
type Snapshot struct {
	Questions     int
	Rounds        int
	WorkerAnswers int
	PerRound      []RoundStat
}

// Record books one round containing the given requests. It is exported
// for Platform implementations living outside this package (for example
// the HTTP marketplace client in package crowdserve); in-package platforms
// call it through record.
func (s *Stats) Record(reqs []Request) { s.record(reqs) }

// record books one round containing the given requests.
func (s *Stats) record(reqs []Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.questions += len(reqs)
	s.rounds++
	if s.byWorkers == nil {
		s.byWorkers = make(map[int]int)
	}
	roundByWorkers := make(map[int]int)
	workerAnswers := 0
	for _, r := range reqs {
		w := r.Workers
		if w < 1 {
			w = 1
		}
		roundByWorkers[w]++
		s.byWorkers[w]++
		workerAnswers += w
	}
	s.workerAnswers += workerAnswers
	units := 0
	for w, count := range roundByWorkers {
		units += ((count + QuestionsPerHIT - 1) / QuestionsPerHIT) * w
	}
	s.perRound = append(s.perRound, RoundStat{Questions: len(reqs), WorkerUnits: units})
}

// Questions returns the total number of questions asked so far.
func (s *Stats) Questions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.questions
}

// Rounds returns the number of non-empty Ask calls so far.
func (s *Stats) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// WorkerAnswers returns the total number of individual worker judgments
// collected so far.
func (s *Stats) WorkerAnswers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workerAnswers
}

// PerRound returns a copy of the per-round breakdown, in round order.
func (s *Stats) PerRound() []RoundStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RoundStat(nil), s.perRound...)
}

// Snapshot returns a consistent copy of every accumulator at once.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		Questions:     s.questions,
		Rounds:        s.rounds,
		WorkerAnswers: s.workerAnswers,
		PerRound:      append([]RoundStat(nil), s.perRound...),
	}
}

// Cost returns the total monetary cost in dollars under the paper's AMT
// model: questions are packed into HITs of QuestionsPerHIT across the whole
// run and each HIT assignment pays the reward, so with a constant ω the
// cost is reward × ω × ⌈questions / 5⌉. This global packing is the reading
// that reproduces the paper's Figure 12(a) dollar amounts (a strictly
// per-round ⌈|Q_i|/5⌉ packing would overcharge the serial methods, whose
// rounds rarely fill a HIT). The per-round worker units remain available in
// PerRound for the conservative per-round model.
func (s *Stats) Cost(reward float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	units := 0
	for w, count := range s.byWorkers {
		units += ((count + QuestionsPerHIT - 1) / QuestionsPerHIT) * w
	}
	return reward * float64(units)
}

// MaxRoundSize returns the largest number of questions asked in any single
// round (the parallelism width).
func (s *Stats) MaxRoundSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0
	for _, r := range s.perRound {
		if r.Questions > m {
			m = r.Questions
		}
	}
	return m
}

package crowd

import (
	"fmt"
	"math/rand"
)

// Worker is one simulated crowd worker with an individual probability of
// answering a question correctly. An erroneous answer is uniformly one of
// the two incorrect options of the ternary question.
type Worker struct {
	ID          int
	Reliability float64 // probability of a correct answer, in [0,1]
}

// Judge returns the worker's answer to a question whose correct answer is
// truth, using rng for the error draw.
func (w Worker) Judge(truth Preference, rng *rand.Rand) Preference {
	if rng.Float64() < w.Reliability {
		return truth
	}
	// Uniformly pick one of the two wrong options.
	wrong := [2]Preference{}
	k := 0
	for _, p := range [3]Preference{First, Second, Equal} {
		if p != truth {
			wrong[k] = p
			k++
		}
	}
	return wrong[rng.Intn(2)]
}

// PoolConfig describes a simulated worker pool.
type PoolConfig struct {
	// Size is the number of workers; 0 means an unbounded pool of
	// identical workers with Reliability p.
	Size int
	// Reliability is the per-worker correctness probability p
	// (Section 5; the paper's default is 0.8).
	Reliability float64
	// SpammerFraction is the fraction of workers that answer uniformly at
	// random (reliability 1/3), modeling the spam the paper filters with
	// AMT Masters qualification. Only meaningful with Size > 0.
	SpammerFraction float64
}

// Pool is a set of simulated workers questions are assigned from.
type Pool struct {
	workers []Worker
	uniform Worker // used when the pool is unbounded
	next    int
}

// NewPool builds a pool from cfg, using rng to place spammers.
func NewPool(cfg PoolConfig, rng *rand.Rand) (*Pool, error) {
	if cfg.Reliability < 0 || cfg.Reliability > 1 {
		return nil, fmt.Errorf("crowd: reliability %v outside [0,1]", cfg.Reliability)
	}
	if cfg.SpammerFraction < 0 || cfg.SpammerFraction > 1 {
		return nil, fmt.Errorf("crowd: spammer fraction %v outside [0,1]", cfg.SpammerFraction)
	}
	p := &Pool{uniform: Worker{ID: -1, Reliability: cfg.Reliability}}
	if cfg.Size > 0 {
		p.workers = make([]Worker, cfg.Size)
		for i := range p.workers {
			rel := cfg.Reliability
			if rng.Float64() < cfg.SpammerFraction {
				rel = 1.0 / 3.0
			}
			p.workers[i] = Worker{ID: i, Reliability: rel}
		}
	}
	return p, nil
}

// Assign returns k workers for one question. A bounded pool hands workers
// out round-robin (a worker never judges the same question twice within one
// assignment); an unbounded pool returns k copies of the uniform worker.
func (p *Pool) Assign(k int) []Worker {
	out := make([]Worker, k)
	if len(p.workers) == 0 {
		for i := range out {
			out[i] = p.uniform
		}
		return out
	}
	for i := range out {
		out[i] = p.workers[p.next]
		p.next = (p.next + 1) % len(p.workers)
	}
	return out
}

// MajorityVote aggregates worker votes into a final answer: the plurality
// option wins; a tie involving Equal resolves to Equal, and a First/Second
// tie also resolves to Equal (the cautious reading — no preference could be
// established). An empty vote slice resolves to Equal.
func MajorityVote(votes []Preference) Preference {
	var counts [3]int
	for _, v := range votes {
		counts[v]++
	}
	switch {
	case counts[First] > counts[Second] && counts[First] > counts[Equal]:
		return First
	case counts[Second] > counts[First] && counts[Second] > counts[Equal]:
		return Second
	default:
		return Equal
	}
}

package crowd

import (
	"math/rand"
	"testing"
)

func TestLatencyModel(t *testing.T) {
	m := MovieLatency
	if m.Estimate(0) != 0 || m.Estimate(-3) != 0 {
		t.Errorf("degenerate rounds mis-estimated")
	}
	if m.Estimate(2) != 2*(m.WorkTime+m.Pickup) {
		t.Errorf("estimate = %v", m.Estimate(2))
	}
	var s Stats
	s.record([]Request{{Workers: 1}})
	s.record([]Request{{Workers: 1}})
	if m.EstimateStats(&s) != m.Estimate(2) {
		t.Errorf("EstimateStats mismatch")
	}
	// The paper's ordering of task difficulty: Q1 < Q2 < Q3 per-HIT time.
	if !(RectangleLatency.WorkTime < MovieLatency.WorkTime &&
		MovieLatency.WorkTime < ExpertLatency.WorkTime) {
		t.Errorf("per-HIT working times out of order")
	}
}

func TestEstimateReliabilityEmpty(t *testing.T) {
	res := EstimateReliability(nil, 0)
	if len(res.Answers) != 0 || len(res.Reliability) != 0 {
		t.Errorf("empty input produced estimates: %+v", res)
	}
}

// TestEstimateReliabilitySeparatesSpammers: good workers (90% correct) and
// spammers (uniform) vote on many questions; EM must rank every good
// worker above every spammer and answer most questions correctly.
func TestEstimateReliabilitySeparatesSpammers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const questions = 120
	good := []int{0, 1, 2}
	spam := []int{3, 4}
	var votes []Vote
	truths := make(map[Question]Preference, questions)
	prefs := [3]Preference{First, Second, Equal}
	for qi := 0; qi < questions; qi++ {
		q := Question{A: qi, B: qi + 1000}
		truth := prefs[rng.Intn(2)] // First or Second; Equal truths are rare
		truths[q] = truth
		worker := Worker{Reliability: 0.9}
		for _, w := range good {
			votes = append(votes, Vote{Question: q, Worker: w, Pref: worker.Judge(truth, rng)})
		}
		for _, w := range spam {
			votes = append(votes, Vote{Question: q, Worker: w, Pref: prefs[rng.Intn(3)]})
		}
	}
	res := EstimateReliability(votes, 8)
	for _, g := range good {
		for _, s := range spam {
			if res.Reliability[g] <= res.Reliability[s] {
				t.Errorf("good worker %d (%.2f) not above spammer %d (%.2f)",
					g, res.Reliability[g], s, res.Reliability[s])
			}
		}
	}
	correct := 0
	for q, truth := range truths {
		if res.Answers[q] == truth {
			correct++
		}
	}
	if correct < questions*95/100 {
		t.Errorf("EM answered %d/%d correctly", correct, questions)
	}
	if res.Iterations < 1 || res.Iterations > 8 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

// TestEMNoWorseThanMajority: on the same votes, EM's decisions agree with
// the truth at least as often as plain per-question majorities.
func TestEMNoWorseThanMajority(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const questions = 150
	prefs := [3]Preference{First, Second, Equal}
	var votes []Vote
	truths := make(map[Question]Preference)
	for qi := 0; qi < questions; qi++ {
		q := Question{A: qi, B: qi + 1000}
		truth := prefs[rng.Intn(2)]
		truths[q] = truth
		// 2 good workers vs 3 spammers: plain majority is fragile.
		for w := 0; w < 2; w++ {
			votes = append(votes, Vote{Question: q, Worker: w, Pref: Worker{Reliability: 0.95}.Judge(truth, rng)})
		}
		for w := 2; w < 5; w++ {
			votes = append(votes, Vote{Question: q, Worker: w, Pref: prefs[rng.Intn(3)]})
		}
	}
	res := EstimateReliability(votes, 8)
	// Plain majority per question.
	byQ := make(map[Question][]Preference)
	for _, v := range votes {
		byQ[v.Question] = append(byQ[v.Question], v.Pref)
	}
	var emCorrect, majCorrect int
	for q, truth := range truths {
		if res.Answers[q] == truth {
			emCorrect++
		}
		if MajorityVote(byQ[q]) == truth {
			majCorrect++
		}
	}
	if emCorrect < majCorrect {
		t.Errorf("EM correct %d < majority correct %d", emCorrect, majCorrect)
	}
}

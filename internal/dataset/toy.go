package dataset

// This file embeds the two worked toy datasets of the paper. They drive the
// reproduction tests of Tables 1-3 and Examples 2-8.
//
// The paper specifies the known-attribute values exactly (Figures 1a and
// 3a) and specifies the crowd-attribute preferences only as a partial order
// (the preference trees of Figures 1b, 3b and 4b). We embed latent A3
// values that realize exactly those partial orders, so a perfect simulated
// crowd reproduces every answer of the worked examples.

// Toy returns the 12-tuple dataset of Figure 1 with AK = {A1, A2} and
// AC = {A3}.
//
// Figure 1a places the tuples at:
//
//	a(2,8) b(1,6) c(4,10) d(5,7) e(4,4) f(5,9)
//	g(6,5) h(7,7) i(7,2) j(8,9) k(9,3) l(9,1)
//
// The plotted coordinates are used directly under MIN semantics: the
// paper's skyline in AK, {b,e,i,l} (Example 2), is exactly the lower-left
// staircase of these points, and every dominating set of Table 1 follows
// from coordinate-wise ≤ with at least one strict <.
//
// The latent A3 values realize the preference tree used by the worked
// examples (f most preferred, then h, e, b, k, i, l, a, c, d, g, j in a
// partial order; smaller latent value = more preferred). In particular:
//
//	f < h < e < b < a     (so f ≺ h ≺ e ≺ b ≺ a in AC)
//	e < {c, d, g, i}      (e preferred over c, d, g, i)
//	k < i < l             (k preferred over i, i preferred over l)
//	f < j                 (f preferred over j)
//
// which yields the final crowdsourced skyline {b,e,i,l,k,f,h} of Example 2.
func Toy() *Dataset {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	plotted := [][]float64{
		{2, 8},  // a
		{1, 6},  // b
		{4, 10}, // c
		{5, 7},  // d
		{4, 4},  // e
		{5, 9},  // f
		{6, 5},  // g
		{7, 7},  // h
		{7, 2},  // i
		{8, 9},  // j
		{9, 3},  // k
		{9, 1},  // l
	}
	latent := [][]float64{
		{7},   // a
		{4},   // b
		{8},   // c
		{9},   // d
		{3},   // e
		{1},   // f
		{10},  // g
		{2},   // h
		{5},   // i
		{11},  // j
		{4.5}, // k
		{6},   // l
	}
	d := MustNew(plotted, latent)
	if err := d.SetNames(names); err != nil {
		panic(err)
	}
	if err := d.SetAttrNames([]string{"A1", "A2"}, []string{"A3"}); err != nil {
		panic(err)
	}
	return d
}

// ToyAnti returns the 10-tuple anti-correlated dataset of Figure 3 with
// AK = {A1, A2} and AC = {A3}, used to motivate probing (pruning P3,
// Section 3.4).
//
// Figure 3a places the tuples at:
//
//	b(2,5) e(3,4) i(4,2) j(5,1) a(5,10) c(6,9)
//	f(7,8) d(8,7) g(9,6) h(10,5)
//
// The skyline in AK is {b,e,i,j}; each of the remaining six tuples is
// dominated by all four of them, so without probing 4x6 = 24 questions are
// needed (Section 3.4). The latent A3 values realize the Figure 3b
// preference tree — e preferred over b, i and (transitively) j, with i
// preferred over j — and make every non-skyline tuple in AK preferred over
// e in AC, so that probing reduces the workload to 3 + 6 = 9 questions.
func ToyAnti() *Dataset {
	names := []string{"b", "e", "i", "j", "a", "c", "f", "d", "g", "h"}
	plotted := [][]float64{
		{2, 5},  // b
		{3, 4},  // e
		{4, 2},  // i
		{5, 1},  // j
		{5, 10}, // a
		{6, 9},  // c
		{7, 8},  // f
		{8, 7},  // d
		{9, 6},  // g
		{10, 5}, // h
	}
	latent := [][]float64{
		{5},   // b
		{4},   // e
		{6},   // i
		{7},   // j
		{1},   // a
		{1.5}, // c
		{2},   // f
		{2.5}, // d
		{3},   // g
		{3.5}, // h
	}
	d := MustNew(plotted, latent)
	if err := d.SetNames(names); err != nil {
		panic(err)
	}
	if err := d.SetAttrNames([]string{"A1", "A2"}, []string{"A3"}); err != nil {
		panic(err)
	}
	return d
}

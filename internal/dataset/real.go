package dataset

// This file embeds the three real-life-style datasets of Section 6.2.
//
// Substitution note (see DESIGN.md): the paper scraped IMDb and ESPN and
// asked live AMT Masters workers. Neither the scraped snapshots nor the
// worker answers are published, so we embed datasets with the same shape
// and with latent crowd-attribute values curated so that the ground-truth
// crowdsourced skyline equals the result the paper reports:
//
//	Q1 (rectangles): the exact dataset the paper specifies.
//	Q2 (movies):     skyline = {Avatar, The Avengers, Inception,
//	                 The Lord of the Rings: The Fellowship of the Ring,
//	                 The Dark Knight Rises}.
//	Q3 (MLB):        skyline = {Clayton Kershaw, Bartolo Colon,
//	                 Yu Darvish, Max Scherzer}.
//
// The box-office/year and wins/strikeouts/ERA figures are realistic
// approximations of the public record; the latent scores are synthetic
// stand-ins for the crowd's aggregate preference (NOT IMDb ratings),
// chosen so a perfect simulated crowd reproduces the paper's outcome.
// All values are stored under MIN semantics (smaller preferred) by
// subtracting from a constant where the natural direction is MAX.

// Rectangles returns the Q1 dataset: 50 rectangles with sizes
// {(30+3i) x (40+5i) | i in [0,50)} (Section 6.2). AK = {width, height}
// with larger preferred; AC = {area} with larger preferred. Because both
// dimensions grow monotonically with i, the dataset is a total chain in AK;
// the paper uses it because the crowd attribute (perceived area of a
// randomly rotated image) has an exact ground truth, making accuracy
// directly measurable.
func Rectangles() *Dataset {
	const n = 50
	known := make([][]float64, n)
	latent := make([][]float64, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		w := float64(30 + 3*i)
		h := float64(40 + 5*i)
		// MIN semantics: larger width/height/area preferred, so store the
		// complement against constants exceeding the maxima (177, 285,
		// 50445).
		known[i] = []float64{200 - w, 300 - h}
		latent[i] = []float64{60000 - w*h}
		names[i] = rectName(i)
	}
	d := MustNew(known, latent)
	if err := d.SetNames(names); err != nil {
		panic(err)
	}
	if err := d.SetAttrNames([]string{"width", "height"}, []string{"area"}); err != nil {
		panic(err)
	}
	return d
}

func rectName(i int) string {
	w := 30 + 3*i
	h := 40 + 5*i
	return "rect" + itoa(w) + "x" + itoa(h)
}

// itoa is a minimal positive-integer formatter, avoiding an strconv import
// for two call sites.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// movieRow is one entry of the embedded Q2 dataset.
type movieRow struct {
	title string
	year  int     // release year, 2000-2012, larger preferred
	gross float64 // worldwide gross in $M, larger preferred
	score float64 // latent aggregate crowd preference in [0,10], larger preferred
}

// movies lists 50 popular movies released 2000-2012 (Q2). The gross figures
// approximate the public record in $M; score is the synthetic latent crowd
// preference (see file comment).
var movies = []movieRow{
	{"Avatar", 2009, 2788, 7.9},
	{"The Avengers", 2012, 1519, 8.1},
	{"Harry Potter and the Deathly Hallows - Part 2", 2011, 1342, 8.1},
	{"Transformers: Dark of the Moon", 2011, 1124, 6.2},
	{"Skyfall", 2012, 1109, 7.8},
	{"The Dark Knight Rises", 2012, 1084, 8.4},
	{"Toy Story 3", 2010, 1067, 8.3},
	{"Pirates of the Caribbean: Dead Man's Chest", 2006, 1066, 7.3},
	{"Pirates of the Caribbean: On Stranger Tides", 2011, 1046, 6.6},
	{"Alice in Wonderland", 2010, 1025, 6.4},
	{"The Hobbit: An Unexpected Journey", 2012, 1017, 7.8},
	{"Harry Potter and the Deathly Hallows - Part 1", 2010, 977, 7.7},
	{"Harry Potter and the Sorcerer's Stone", 2001, 975, 7.6},
	{"Pirates of the Caribbean: At World's End", 2007, 961, 7.1},
	{"Harry Potter and the Order of the Phoenix", 2007, 939, 7.5},
	{"Harry Potter and the Half-Blood Prince", 2009, 934, 7.6},
	{"Shrek 2", 2004, 920, 7.3},
	{"Harry Potter and the Goblet of Fire", 2005, 897, 7.7},
	{"Spider-Man 3", 2007, 891, 6.2},
	{"Ice Age: Dawn of the Dinosaurs", 2009, 886, 6.9},
	{"Harry Potter and the Chamber of Secrets", 2002, 879, 7.4},
	{"Ice Age: Continental Drift", 2012, 877, 6.6},
	{"The Lord of the Rings: The Fellowship of the Ring", 2001, 871, 8.9},
	{"Inception", 2010, 870, 8.8},
	{"Finding Nemo", 2003, 865, 8.2},
	{"Star Wars: Episode III - Revenge of the Sith", 2005, 848, 7.6},
	{"The Twilight Saga: Breaking Dawn - Part 2", 2012, 829, 5.5},
	{"Spider-Man", 2002, 825, 7.4},
	{"Shrek the Third", 2007, 799, 6.1},
	{"Spider-Man 2", 2004, 783, 7.5},
	{"The Amazing Spider-Man", 2012, 757, 6.9},
	{"The Da Vinci Code", 2006, 758, 6.6},
	{"Shrek Forever After", 2010, 752, 6.3},
	{"Madagascar 3: Europe's Most Wanted", 2012, 747, 6.9},
	{"Up", 2009, 735, 8.3},
	{"The Twilight Saga: Breaking Dawn - Part 1", 2011, 712, 4.9},
	{"Mission: Impossible - Ghost Protocol", 2011, 694, 7.4},
	{"The Hunger Games", 2012, 694, 7.2},
	{"Kung Fu Panda 2", 2011, 665, 7.2},
	{"Kung Fu Panda", 2008, 632, 7.6},
	{"Iron Man 2", 2010, 623, 6.9},
	{"Ratatouille", 2007, 623, 8.1},
	{"Iron Man", 2008, 585, 7.9},
	{"Monsters, Inc.", 2001, 577, 8.1},
	{"King Kong", 2005, 550, 7.2},
	{"WALL-E", 2008, 521, 8.4},
	{"Gladiator", 2000, 460, 8.5},
	{"Slumdog Millionaire", 2008, 378, 8.0},
	{"Jurassic Park III", 2001, 368, 5.9},
	{"The Departed", 2006, 291, 8.5},
}

// Movies returns the Q2 dataset: 50 popular movies released 2000-2012 with
// AK = {box_office, release_year} (both larger preferred) and AC = {rating}
// (larger preferred, latent).
func Movies() *Dataset {
	known := make([][]float64, len(movies))
	latent := make([][]float64, len(movies))
	names := make([]string, len(movies))
	for i, m := range movies {
		known[i] = []float64{3000 - m.gross, float64(2013 - m.year)}
		latent[i] = []float64{10 - m.score}
		names[i] = m.title
	}
	d := MustNew(known, latent)
	if err := d.SetNames(names); err != nil {
		panic(err)
	}
	if err := d.SetAttrNames([]string{"box_office", "release_year"}, []string{"rating"}); err != nil {
		panic(err)
	}
	return d
}

// pitcherRow is one entry of the embedded Q3 dataset.
type pitcherRow struct {
	name    string
	wins    int     // larger preferred
	strikes int     // strikeouts, larger preferred
	era     float64 // earned run average, smaller preferred
	value   float64 // latent "how valuable" crowd preference, larger preferred
}

// pitchers lists 40 starting pitchers with 2013-season-style statistics
// (Q3). The four intended skyline members are the Cy Young candidates the
// paper reports: Kershaw, Scherzer, Darvish, Colon.
var pitchers = []pitcherRow{
	{"Clayton Kershaw", 16, 232, 1.83, 9.6},
	{"Max Scherzer", 21, 240, 2.90, 9.2},
	{"Yu Darvish", 13, 277, 2.83, 8.8},
	{"Bartolo Colon", 18, 117, 2.65, 8.5},
	{"Adam Wainwright", 19, 219, 2.94, 8.4},
	{"Jose Fernandez", 12, 187, 2.19, 9.0},
	{"Matt Harvey", 9, 191, 2.27, 8.9},
	{"Anibal Sanchez", 14, 202, 2.57, 8.2},
	{"Chris Sale", 11, 226, 3.07, 8.3},
	{"Felix Hernandez", 12, 216, 3.04, 8.1},
	{"Cliff Lee", 14, 222, 2.87, 8.0},
	{"Hisashi Iwakuma", 14, 185, 2.66, 7.9},
	{"Zack Greinke", 15, 148, 2.63, 7.8},
	{"Jordan Zimmermann", 19, 161, 3.25, 7.7},
	{"Francisco Liriano", 16, 163, 3.02, 7.6},
	{"Madison Bumgarner", 13, 199, 2.77, 7.8},
	{"Stephen Strasburg", 8, 191, 3.00, 7.5},
	{"Homer Bailey", 11, 199, 3.49, 7.0},
	{"Mat Latos", 14, 187, 3.16, 7.2},
	{"Shelby Miller", 15, 169, 3.06, 7.3},
	{"Patrick Corbin", 14, 178, 3.41, 7.1},
	{"Gio Gonzalez", 11, 192, 3.36, 7.0},
	{"Justin Verlander", 13, 217, 3.46, 7.4},
	{"Jon Lester", 15, 177, 3.75, 7.2},
	{"C.J. Wilson", 17, 188, 3.39, 7.1},
	{"James Shields", 13, 196, 3.15, 7.3},
	{"Hyun-Jin Ryu", 14, 154, 3.00, 7.4},
	{"Travis Wood", 9, 144, 3.11, 6.5},
	{"Mike Minor", 13, 181, 3.21, 7.0},
	{"Derek Holland", 10, 189, 3.42, 6.8},
	{"Ervin Santana", 9, 161, 3.24, 6.9},
	{"Ubaldo Jimenez", 13, 194, 3.30, 7.0},
	{"A.J. Burnett", 10, 209, 3.30, 7.1},
	{"Lance Lynn", 15, 198, 3.97, 6.7},
	{"Doug Fister", 14, 159, 3.67, 6.9},
	{"Rick Porcello", 13, 142, 4.32, 6.3},
	{"Andy Pettitte", 11, 128, 3.74, 6.8},
	{"Kris Medlen", 15, 157, 3.11, 7.2},
	{"Julio Teheran", 14, 170, 3.20, 7.3},
	{"Dillon Gee", 12, 142, 3.62, 6.4},
}

// MLBPitchers returns the Q3 dataset: 40 pitchers with
// AK = {wins, strike_outs, ERA} (wins and strikeouts larger preferred, ERA
// smaller preferred) and AC = {valuable} (larger preferred, latent).
func MLBPitchers() *Dataset {
	known := make([][]float64, len(pitchers))
	latent := make([][]float64, len(pitchers))
	names := make([]string, len(pitchers))
	for i, p := range pitchers {
		known[i] = []float64{30 - float64(p.wins), 300 - float64(p.strikes), p.era}
		latent[i] = []float64{10 - p.value}
		names[i] = p.name
	}
	d := MustNew(known, latent)
	if err := d.SetNames(names); err != nil {
		panic(err)
	}
	if err := d.SetAttrNames([]string{"wins", "strike_outs", "ERA"}, []string{"valuable"}); err != nil {
		panic(err)
	}
	return d
}

package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution selects one of the synthetic data distributions of the
// skyline benchmark of Börzsönyi et al. (ICDE 2001), which the paper adopts
// for its synthetic evaluation (Section 6.1, Table 4).
type Distribution int

const (
	// Independent draws every attribute value i.i.d. uniform in [0,1].
	Independent Distribution = iota
	// AntiCorrelated draws points close to the hyperplane sum(x) = d/2, so
	// tuples good on one attribute tend to be bad on the others. This
	// distribution maximizes the skyline size and is the paper's hard case.
	AntiCorrelated
	// Correlated draws points close to the diagonal, so a few tuples
	// dominate almost everything. Not used by the paper's figures but
	// provided for completeness of the benchmark family.
	Correlated
)

// String returns the abbreviation the paper uses (IND, ANT, COR).
func (dist Distribution) String() string {
	switch dist {
	case Independent:
		return "IND"
	case AntiCorrelated:
		return "ANT"
	case Correlated:
		return "COR"
	default:
		return fmt.Sprintf("Distribution(%d)", int(dist))
	}
}

// ParseDistribution converts the paper abbreviations IND/ANT/COR into a
// Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "IND", "ind", "independent":
		return Independent, nil
	case "ANT", "ant", "anti", "anticorrelated", "anti-correlated":
		return AntiCorrelated, nil
	case "COR", "cor", "correlated":
		return Correlated, nil
	}
	return 0, fmt.Errorf("dataset: unknown distribution %q (want IND, ANT or COR)", s)
}

// GenerateConfig describes a synthetic dataset to generate, mirroring the
// parameter grid of Table 4.
type GenerateConfig struct {
	N            int          // cardinality n
	KnownDims    int          // |AK|
	CrowdDims    int          // |AC|
	Distribution Distribution // IND, ANT, or COR
}

// Generate builds a synthetic dataset from cfg using rng for all
// randomness. The known attributes follow cfg.Distribution; the latent
// crowd-attribute values are always independent uniforms, because crowd
// attributes model subjective qualities (how romantic a movie is) that have
// no reason to correlate with the known columns. All values lie in [0,1]
// and smaller is more preferred.
func Generate(cfg GenerateConfig, rng *rand.Rand) (*Dataset, error) {
	if cfg.N < 0 {
		return nil, fmt.Errorf("dataset: negative cardinality %d", cfg.N)
	}
	if cfg.KnownDims < 1 {
		return nil, fmt.Errorf("dataset: need at least one known attribute, got %d", cfg.KnownDims)
	}
	if cfg.CrowdDims < 0 {
		return nil, fmt.Errorf("dataset: negative crowd dimensionality %d", cfg.CrowdDims)
	}
	known := make([][]float64, cfg.N)
	latent := make([][]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		switch cfg.Distribution {
		case Independent:
			known[i] = uniformRow(cfg.KnownDims, rng)
		case AntiCorrelated:
			known[i] = antiCorrelatedRow(cfg.KnownDims, rng)
		case Correlated:
			known[i] = correlatedRow(cfg.KnownDims, rng)
		default:
			return nil, fmt.Errorf("dataset: unknown distribution %v", cfg.Distribution)
		}
		latent[i] = uniformRow(cfg.CrowdDims, rng)
	}
	return New(known, latent)
}

// MustGenerate is like Generate but panics on error; convenient in tests
// and benchmarks where the config is statically valid.
func MustGenerate(cfg GenerateConfig, rng *rand.Rand) *Dataset {
	d, err := Generate(cfg, rng)
	if err != nil {
		panic(err)
	}
	return d
}

func uniformRow(d int, rng *rand.Rand) []float64 {
	row := make([]float64, d)
	for j := range row {
		row[j] = rng.Float64()
	}
	return row
}

// antiCorrelatedRow follows the classic benchmark recipe of Börzsönyi et
// al.: draw a plane offset v normally concentrated around 1/2, start every
// coordinate at v (so the coordinate sum is exactly d·v), then repeatedly
// move random amounts of mass between coordinate pairs. Each tuple stays
// exactly on its hyperplane, so a gain on one attribute is always paid for
// by another — the strongly anti-correlated geometry whose skyline grows
// steeply with cardinality (Section 6.1).
func antiCorrelatedRow(d int, rng *rand.Rand) []float64 {
	if d == 1 {
		return []float64{rng.Float64()}
	}
	// Concentrate plane offsets tightly around 1/2: tuples on nearby
	// hyperplanes rarely dominate each other, which is what makes the
	// anti-correlated skyline "increase exponentially with the
	// cardinality" (Section 6.1). σ = 0.05 yields skyline fractions in the
	// 20-25% range at |AK| = 4, matching the regime the paper's Figure 7
	// discussion describes.
	var v float64
	for {
		v = rng.NormFloat64()*0.05 + 0.5
		if v >= 0 && v <= 1 {
			break
		}
	}
	row := make([]float64, d)
	for j := range row {
		row[j] = v
	}
	for k := 0; k < 4*d; k++ {
		i := rng.Intn(d)
		j := rng.Intn(d)
		if i == j {
			continue
		}
		room := row[i]
		if 1-row[j] < room {
			room = 1 - row[j]
		}
		h := rng.Float64() * room
		row[i] -= h
		row[j] += h
	}
	return row
}

// correlatedRow draws points near the main diagonal: a base value with
// small per-attribute jitter, clamped to [0,1].
func correlatedRow(d int, rng *rand.Rand) []float64 {
	base := rng.Float64()
	row := make([]float64, d)
	for j := range row {
		v := base + rng.NormFloat64()*0.05
		row[j] = math.Min(1, math.Max(0, v))
	}
	return row
}

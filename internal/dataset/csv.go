package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions controls how a CSV file maps onto a Dataset.
//
// The expected layout is a header row followed by one row per tuple. The
// NameColumn (if non-empty) supplies tuple names; KnownColumns become AK and
// CrowdColumns become AC. A column name may be prefixed with "-" to flip it
// from the internal MIN semantics to MAX semantics ("-box_office" means
// larger box office is preferred); flipped columns are stored negated.
type CSVOptions struct {
	NameColumn   string
	KnownColumns []string
	CrowdColumns []string
}

// ReadCSV parses a dataset from r according to opts.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv has no header row")
	}
	header := records[0]
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	type colSpec struct {
		idx  int
		flip bool
		name string
	}
	resolve := func(names []string) ([]colSpec, error) {
		specs := make([]colSpec, 0, len(names))
		for _, n := range names {
			flip := strings.HasPrefix(n, "-")
			base := strings.TrimPrefix(n, "-")
			idx, ok := col[base]
			if !ok {
				return nil, fmt.Errorf("dataset: csv has no column %q", base)
			}
			specs = append(specs, colSpec{idx: idx, flip: flip, name: base})
		}
		return specs, nil
	}
	knownSpecs, err := resolve(opts.KnownColumns)
	if err != nil {
		return nil, err
	}
	crowdSpecs, err := resolve(opts.CrowdColumns)
	if err != nil {
		return nil, err
	}
	if len(knownSpecs) == 0 {
		return nil, fmt.Errorf("dataset: need at least one known column")
	}
	nameIdx := -1
	if opts.NameColumn != "" {
		idx, ok := col[opts.NameColumn]
		if !ok {
			return nil, fmt.Errorf("dataset: csv has no column %q", opts.NameColumn)
		}
		nameIdx = idx
	}

	rows := records[1:]
	known := make([][]float64, len(rows))
	latent := make([][]float64, len(rows))
	var names []string
	if nameIdx >= 0 {
		names = make([]string, len(rows))
	}
	parse := func(rec []string, specs []colSpec, line int) ([]float64, error) {
		vals := make([]float64, len(specs))
		for j, s := range specs {
			if s.idx >= len(rec) {
				return nil, fmt.Errorf("dataset: csv line %d: missing column %q", line, s.name)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[s.idx]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d, column %q: %w", line, s.name, err)
			}
			if s.flip {
				v = -v
			}
			vals[j] = v
		}
		return vals, nil
	}
	for i, rec := range rows {
		line := i + 2 // 1-based, after header
		if known[i], err = parse(rec, knownSpecs, line); err != nil {
			return nil, err
		}
		if latent[i], err = parse(rec, crowdSpecs, line); err != nil {
			return nil, err
		}
		if nameIdx >= 0 {
			if nameIdx >= len(rec) {
				return nil, fmt.Errorf("dataset: csv line %d: missing name column", line)
			}
			names[i] = rec[nameIdx]
		}
	}
	d, err := New(known, latent)
	if err != nil {
		return nil, err
	}
	if names != nil {
		if err := d.SetNames(names); err != nil {
			return nil, err
		}
	}
	knownNames := make([]string, len(knownSpecs))
	for i, s := range knownSpecs {
		knownNames[i] = s.name
	}
	crowdNames := make([]string, len(crowdSpecs))
	for i, s := range crowdSpecs {
		crowdNames[i] = s.name
	}
	if err := d.SetAttrNames(knownNames, crowdNames); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteCSV writes the dataset to w with a header row. Known columns come
// first, then crowd (latent) columns, then a trailing "name" column when
// tuple names are present. Values are written exactly as stored (MIN
// semantics).
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.KnownDims()+d.CrowdDims()+1)
	for j := 0; j < d.KnownDims(); j++ {
		header = append(header, d.KnownAttrName(j))
	}
	for j := 0; j < d.CrowdDims(); j++ {
		header = append(header, d.CrowdAttrName(j))
	}
	hasNames := d.Names() != nil
	if hasNames {
		header = append(header, "name")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	rec := make([]string, 0, len(header))
	for i := 0; i < d.N(); i++ {
		rec = rec[:0]
		for j := 0; j < d.KnownDims(); j++ {
			rec = append(rec, strconv.FormatFloat(d.Known(i, j), 'g', -1, 64))
		}
		for j := 0; j < d.CrowdDims(); j++ {
			rec = append(rec, strconv.FormatFloat(d.Latent(i, j), 'g', -1, 64))
		}
		if hasNames {
			rec = append(rec, d.Name(i))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

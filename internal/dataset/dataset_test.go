package dataset

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		known   [][]float64
		latent  [][]float64
		wantErr bool
	}{
		{"ok", [][]float64{{1, 2}, {3, 4}}, [][]float64{{1}, {2}}, false},
		{"row count mismatch", [][]float64{{1}}, [][]float64{{1}, {2}}, true},
		{"ragged known", [][]float64{{1, 2}, {3}}, [][]float64{{1}, {2}}, true},
		{"ragged latent", [][]float64{{1}, {2}}, [][]float64{{1}, {2, 3}}, true},
		{"empty", nil, nil, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.known, c.latent)
			if (err != nil) != c.wantErr {
				t.Errorf("New err = %v, wantErr = %v", err, c.wantErr)
			}
		})
	}
}

func TestAccessors(t *testing.T) {
	d := MustNew([][]float64{{1, 2}, {3, 4}}, [][]float64{{5}, {6}})
	if d.N() != 2 || d.KnownDims() != 2 || d.CrowdDims() != 1 {
		t.Fatalf("shape = (%d, %d, %d)", d.N(), d.KnownDims(), d.CrowdDims())
	}
	if d.Known(1, 0) != 3 || d.Latent(0, 0) != 5 {
		t.Errorf("value accessors broken")
	}
	if d.Name(1) != "t1" {
		t.Errorf("default name = %q", d.Name(1))
	}
	if err := d.SetNames([]string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if d.Name(1) != "y" || d.Index("x") != 0 || d.Index("zz") != -1 {
		t.Errorf("named lookup broken")
	}
	if err := d.SetNames([]string{"only one"}); err == nil {
		t.Errorf("SetNames accepted wrong length")
	}
	if d.KnownAttrName(0) != "A1" || d.CrowdAttrName(0) != "A3" {
		t.Errorf("default attr names = %q, %q", d.KnownAttrName(0), d.CrowdAttrName(0))
	}
	if err := d.SetAttrNames([]string{"w", "h"}, []string{"area"}); err != nil {
		t.Fatal(err)
	}
	if d.KnownAttrName(1) != "h" || d.CrowdAttrName(0) != "area" {
		t.Errorf("attr names not applied")
	}
	if err := d.SetAttrNames([]string{"w"}, nil); err == nil {
		t.Errorf("SetAttrNames accepted wrong known length")
	}
	if !strings.Contains(d.String(), "n=2") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestSubset(t *testing.T) {
	d := MustNew([][]float64{{1}, {2}, {3}}, [][]float64{{4}, {5}, {6}})
	if err := d.SetNames([]string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	s := d.Subset([]int{2, 0})
	if s.N() != 2 || s.Known(0, 0) != 3 || s.Name(1) != "a" {
		t.Errorf("subset wrong: %v %v %v", s.N(), s.Known(0, 0), s.Name(1))
	}
}

func TestDistinctKnown(t *testing.T) {
	d := MustNew([][]float64{{1, 2}, {1, 2}}, [][]float64{{0}, {0}})
	if d.DistinctKnown() {
		t.Errorf("duplicate rows reported distinct")
	}
	d = MustNew([][]float64{{1, 2}, {1, 3}}, [][]float64{{0}, {0}})
	if !d.DistinctKnown() {
		t.Errorf("distinct rows reported duplicate")
	}
}

func TestGenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dist := range []Distribution{Independent, AntiCorrelated, Correlated} {
		d, err := Generate(GenerateConfig{N: 100, KnownDims: 3, CrowdDims: 2, Distribution: dist}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if d.N() != 100 || d.KnownDims() != 3 || d.CrowdDims() != 2 {
			t.Errorf("%v: wrong shape", dist)
		}
		for i := 0; i < d.N(); i++ {
			for j := 0; j < 3; j++ {
				if v := d.Known(i, j); v < 0 || v > 1 {
					t.Fatalf("%v: value %v outside [0,1]", dist, v)
				}
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(GenerateConfig{N: -1, KnownDims: 2}, rng); err == nil {
		t.Errorf("negative N accepted")
	}
	if _, err := Generate(GenerateConfig{N: 5, KnownDims: 0}, rng); err == nil {
		t.Errorf("zero known dims accepted")
	}
	if _, err := Generate(GenerateConfig{N: 5, KnownDims: 2, CrowdDims: -1}, rng); err == nil {
		t.Errorf("negative crowd dims accepted")
	}
	if _, err := Generate(GenerateConfig{N: 5, KnownDims: 2, Distribution: Distribution(9)}, rng); err == nil {
		t.Errorf("unknown distribution accepted")
	}
}

// TestAntiCorrelatedGeometry: each anti-correlated tuple's coordinates must
// sum to d times its plane offset, staying within [0,1] per coordinate, and
// the skyline must be substantially larger than for independent data.
func TestAntiCorrelatedGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := MustGenerate(GenerateConfig{N: 500, KnownDims: 4, CrowdDims: 0, Distribution: AntiCorrelated}, rng)
	for i := 0; i < d.N(); i++ {
		for j := 0; j < 4; j++ {
			v := d.Known(i, j)
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("coordinate %v outside [0,1]", v)
			}
		}
	}
}

func TestDistributionParsing(t *testing.T) {
	quickCheck := func(s string, want Distribution) {
		got, err := ParseDistribution(s)
		if err != nil || got != want {
			t.Errorf("ParseDistribution(%q) = %v, %v", s, got, err)
		}
	}
	quickCheck("IND", Independent)
	quickCheck("ant", AntiCorrelated)
	quickCheck("correlated", Correlated)
	if _, err := ParseDistribution("nope"); err == nil {
		t.Errorf("ParseDistribution accepted junk")
	}
	if Independent.String() != "IND" || AntiCorrelated.String() != "ANT" || Correlated.String() != "COR" {
		t.Errorf("distribution names wrong")
	}
	if !strings.Contains(Distribution(9).String(), "9") {
		t.Errorf("unknown distribution String() = %q", Distribution(9).String())
	}
}

// TestGenerateDeterminism: the same seed yields the same dataset.
func TestGenerateDeterminism(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := GenerateConfig{N: 20, KnownDims: 2, CrowdDims: 1, Distribution: AntiCorrelated}
		a := MustGenerate(cfg, rand.New(rand.NewSource(seed)))
		b := MustGenerate(cfg, rand.New(rand.NewSource(seed)))
		for i := 0; i < a.N(); i++ {
			if a.Known(i, 0) != b.Known(i, 0) || a.Latent(i, 0) != b.Latent(i, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

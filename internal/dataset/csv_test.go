package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `title,gross,year,rating
Alpha,100,2001,7.5
Beta,200,2003,8.1
Gamma,50,2010,6.0
`

func TestReadCSV(t *testing.T) {
	d, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{
		NameColumn:   "title",
		KnownColumns: []string{"-gross", "-year"},
		CrowdColumns: []string{"-rating"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 || d.KnownDims() != 2 || d.CrowdDims() != 1 {
		t.Fatalf("shape = %v", d)
	}
	// "-gross" flips to MIN semantics by negation.
	if d.Known(0, 0) != -100 || d.Known(1, 1) != -2003 || d.Latent(2, 0) != -6.0 {
		t.Errorf("values wrong: %v %v %v", d.Known(0, 0), d.Known(1, 1), d.Latent(2, 0))
	}
	if d.Name(1) != "Beta" {
		t.Errorf("name = %q", d.Name(1))
	}
	if d.KnownAttrName(0) != "gross" || d.CrowdAttrName(0) != "rating" {
		t.Errorf("attr names = %q, %q", d.KnownAttrName(0), d.CrowdAttrName(0))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		opts CSVOptions
	}{
		{"empty", "", CSVOptions{KnownColumns: []string{"x"}}},
		{"missing known column", sampleCSV, CSVOptions{KnownColumns: []string{"nope"}}},
		{"missing crowd column", sampleCSV, CSVOptions{KnownColumns: []string{"gross"}, CrowdColumns: []string{"nope"}}},
		{"missing name column", sampleCSV, CSVOptions{KnownColumns: []string{"gross"}, NameColumn: "nope"}},
		{"no known columns", sampleCSV, CSVOptions{}},
		{"non-numeric", "a,b\n1,x\n", CSVOptions{KnownColumns: []string{"b"}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.csv), c.opts); err == nil {
				t.Errorf("no error for %s", c.name)
			}
		})
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Toy()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), CSVOptions{
		NameColumn:   "name",
		KnownColumns: []string{"A1", "A2"},
		CrowdColumns: []string{"A3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() {
		t.Fatalf("round trip lost tuples: %d != %d", back.N(), d.N())
	}
	for i := 0; i < d.N(); i++ {
		if back.Known(i, 0) != d.Known(i, 0) || back.Known(i, 1) != d.Known(i, 1) ||
			back.Latent(i, 0) != d.Latent(i, 0) || back.Name(i) != d.Name(i) {
			t.Errorf("tuple %d differs after round trip", i)
		}
	}
}

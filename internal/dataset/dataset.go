// Package dataset provides the relational data model used throughout the
// CrowdSky reproduction: tuples with machine-readable known attributes (AK)
// and latent crowd attributes (AC), synthetic benchmark generators, the
// paper's worked toy datasets, and embedded real-life-style datasets.
//
// Conventions follow Section 2.2 of the paper: all attribute domains are
// positive reals, and smaller values are more preferred on every attribute.
// Datasets whose natural semantics are "larger is better" (box office,
// rating, wins, ...) are negated/flipped at construction time so the rest of
// the system only ever deals with MIN semantics.
//
// The latent crowd-attribute values are never exposed to query algorithms;
// they exist solely so a simulated crowd (package crowd) can answer pair-wise
// questions, exactly as in the paper's synthetic evaluation ("The values on
// crowd attributes were only used for obtaining the answers of crowds for
// simulated questions", Section 6.1).
package dataset

import (
	"fmt"
	"strings"
)

// Dataset is an instance of the relation R described in Section 2.2. It
// holds n tuples with |AK| known attribute values and |AC| latent crowd
// attribute values per tuple.
//
// The zero value is an empty dataset; use New or a generator to build one.
type Dataset struct {
	known  [][]float64 // known[i][j] = value of tuple i on known attribute j
	latent [][]float64 // latent[i][j] = hidden value of tuple i on crowd attribute j

	names      []string // optional human-readable tuple names
	knownNames []string // attribute names for AK
	crowdNames []string // attribute names for AC

	// crowdKnown[i][j], when the mask is set, marks tuple i's value on
	// crowd attribute j as actually stored (not missing): the engine may
	// read Latent(i, j) directly instead of asking crowds. A nil mask
	// means every crowd value is missing (the paper's hand-off default).
	crowdKnown [][]bool
}

// New constructs a dataset from per-tuple known and latent attribute value
// rows. Both slices must have the same length (one entry per tuple), every
// known row must have the same width, and every latent row must have the
// same width. The rows are used directly (not copied); callers must not
// mutate them afterwards.
func New(known, latent [][]float64) (*Dataset, error) {
	if len(known) != len(latent) {
		return nil, fmt.Errorf("dataset: %d known rows but %d latent rows", len(known), len(latent))
	}
	d := &Dataset{known: known, latent: latent}
	for i := range known {
		if len(known[i]) != len(known[0]) {
			return nil, fmt.Errorf("dataset: known row %d has width %d, want %d", i, len(known[i]), len(known[0]))
		}
		if len(latent[i]) != len(latent[0]) {
			return nil, fmt.Errorf("dataset: latent row %d has width %d, want %d", i, len(latent[i]), len(latent[0]))
		}
	}
	return d, nil
}

// MustNew is like New but panics on error. It is intended for tests and for
// embedding statically known data.
func MustNew(known, latent [][]float64) *Dataset {
	d, err := New(known, latent)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of tuples (the cardinality n of Table 4).
func (d *Dataset) N() int { return len(d.known) }

// KnownDims returns |AK|, the number of known attributes.
func (d *Dataset) KnownDims() int {
	if len(d.known) == 0 {
		return 0
	}
	return len(d.known[0])
}

// CrowdDims returns |AC|, the number of crowd attributes.
func (d *Dataset) CrowdDims() int {
	if len(d.latent) == 0 {
		return 0
	}
	return len(d.latent[0])
}

// Known returns the value of tuple i on known attribute j. Smaller is more
// preferred.
func (d *Dataset) Known(i, j int) float64 { return d.known[i][j] }

// KnownRow returns the known-attribute row of tuple i. The returned slice
// aliases internal storage and must not be modified.
func (d *Dataset) KnownRow(i int) []float64 { return d.known[i] }

// Latent returns the hidden value of tuple i on crowd attribute j. Smaller
// is more preferred. Only crowd simulators and ground-truth oracles may call
// this; query algorithms must not.
func (d *Dataset) Latent(i, j int) float64 { return d.latent[i][j] }

// SetNames attaches human-readable tuple names (e.g. movie titles). The
// slice length must equal N.
func (d *Dataset) SetNames(names []string) error {
	if len(names) != d.N() {
		return fmt.Errorf("dataset: %d names for %d tuples", len(names), d.N())
	}
	d.names = names
	return nil
}

// Name returns the display name of tuple i: the attached name if one was
// set, otherwise "t<i>".
func (d *Dataset) Name(i int) string {
	if d.names != nil {
		return d.names[i]
	}
	return fmt.Sprintf("t%d", i)
}

// Names returns the attached tuple names, or nil when none were set.
func (d *Dataset) Names() []string { return d.names }

// SetAttrNames attaches attribute names for AK and AC. Pass nil to leave a
// side unnamed.
func (d *Dataset) SetAttrNames(known, crowd []string) error {
	if known != nil && len(known) != d.KnownDims() {
		return fmt.Errorf("dataset: %d known attribute names for %d attributes", len(known), d.KnownDims())
	}
	if crowd != nil && len(crowd) != d.CrowdDims() {
		return fmt.Errorf("dataset: %d crowd attribute names for %d attributes", len(crowd), d.CrowdDims())
	}
	if known != nil {
		d.knownNames = known
	}
	if crowd != nil {
		d.crowdNames = crowd
	}
	return nil
}

// KnownAttrName returns the name of known attribute j ("A<j+1>" when unset).
func (d *Dataset) KnownAttrName(j int) string {
	if d.knownNames != nil {
		return d.knownNames[j]
	}
	return fmt.Sprintf("A%d", j+1)
}

// CrowdAttrName returns the name of crowd attribute j. Unset names continue
// the A-numbering after the known attributes, matching the paper's toy
// examples (AK={A1,A2}, AC={A3}).
func (d *Dataset) CrowdAttrName(j int) string {
	if d.crowdNames != nil {
		return d.crowdNames[j]
	}
	return fmt.Sprintf("A%d", d.KnownDims()+j+1)
}

// Index returns the index of the tuple with the given name, or -1 when no
// tuple has that name.
func (d *Dataset) Index(name string) int {
	for i, n := range d.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Subset returns a new dataset containing only the tuples whose indices are
// listed in idx, in that order. Names and attribute names are carried over.
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		known:      make([][]float64, len(idx)),
		latent:     make([][]float64, len(idx)),
		knownNames: d.knownNames,
		crowdNames: d.crowdNames,
	}
	if d.names != nil {
		sub.names = make([]string, len(idx))
	}
	for k, i := range idx {
		sub.known[k] = d.known[i]
		sub.latent[k] = d.latent[i]
		if d.names != nil {
			sub.names[k] = d.names[i]
		}
	}
	return sub
}

// String summarizes the dataset shape, e.g. "dataset(n=12, |AK|=2, |AC|=1)".
func (d *Dataset) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset(n=%d, |AK|=%d, |AC|=%d)", d.N(), d.KnownDims(), d.CrowdDims())
	return b.String()
}

// SetCrowdKnown installs the stored-value mask for the crowd attributes:
// mask[i][j] = true means tuple i's value on crowd attribute j is stored
// and need not be crowdsourced (the partial-missing scenario of Example 1:
// "When some values of tuples are missing, we can apply our proposed
// solution to only the tuples with missing values"). The mask dimensions
// must match the dataset.
func (d *Dataset) SetCrowdKnown(mask [][]bool) error {
	if len(mask) != d.N() {
		return fmt.Errorf("dataset: mask has %d rows for %d tuples", len(mask), d.N())
	}
	for i, row := range mask {
		if len(row) != d.CrowdDims() {
			return fmt.Errorf("dataset: mask row %d has %d entries for %d crowd attributes", i, len(row), d.CrowdDims())
		}
	}
	d.crowdKnown = mask
	return nil
}

// CrowdValueKnown reports whether tuple i's value on crowd attribute j is
// stored rather than missing.
func (d *Dataset) CrowdValueKnown(i, j int) bool {
	return d.crowdKnown != nil && d.crowdKnown[i][j]
}

// DistinctKnown reports whether all tuples are pair-wise distinct on AK,
// i.e. for any two tuples there is at least one known attribute on which
// they differ. The paper's pruning lemmas assume this after the
// degenerate-case pre-processing (Algorithm 1, lines 1-3).
func (d *Dataset) DistinctKnown() bool {
	for i := 0; i < d.N(); i++ {
	next:
		for j := i + 1; j < d.N(); j++ {
			for k := 0; k < d.KnownDims(); k++ {
				if d.known[i][k] != d.known[j][k] {
					continue next
				}
			}
			return false
		}
	}
	return true
}

package dataset

import (
	"sort"
	"testing"
)

// fullSkyline computes the ground-truth skyline over AK ∪ AC from stored
// values; duplicated here (instead of importing package skyline) to keep
// the dependency direction dataset ← skyline.
func fullSkyline(d *Dataset) []string {
	dominates := func(s, t int) bool {
		strict := false
		for j := 0; j < d.KnownDims(); j++ {
			switch {
			case d.Known(s, j) > d.Known(t, j):
				return false
			case d.Known(s, j) < d.Known(t, j):
				strict = true
			}
		}
		for j := 0; j < d.CrowdDims(); j++ {
			switch {
			case d.Latent(s, j) > d.Latent(t, j):
				return false
			case d.Latent(s, j) < d.Latent(t, j):
				strict = true
			}
		}
		return strict
	}
	var names []string
	for t := 0; t < d.N(); t++ {
		dominated := false
		for s := 0; s < d.N() && !dominated; s++ {
			if s != t && dominates(s, t) {
				dominated = true
			}
		}
		if !dominated {
			names = append(names, d.Name(t))
		}
	}
	sort.Strings(names)
	return names
}

func knownSkyline(d *Dataset) []string {
	dominates := func(s, t int) bool {
		strict := false
		for j := 0; j < d.KnownDims(); j++ {
			switch {
			case d.Known(s, j) > d.Known(t, j):
				return false
			case d.Known(s, j) < d.Known(t, j):
				strict = true
			}
		}
		return strict
	}
	var names []string
	for t := 0; t < d.N(); t++ {
		dominated := false
		for s := 0; s < d.N() && !dominated; s++ {
			if s != t && dominates(s, t) {
				dominated = true
			}
		}
		if !dominated {
			names = append(names, d.Name(t))
		}
	}
	sort.Strings(names)
	return names
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRectangles checks the exact Q1 dataset specification of Section 6.2
// and its chain structure.
func TestRectangles(t *testing.T) {
	d := Rectangles()
	if d.N() != 50 || d.KnownDims() != 2 || d.CrowdDims() != 1 {
		t.Fatalf("shape = %v", d)
	}
	// Widths 30+3i, heights 40+5i, area = product; MIN-encoded.
	for i := 0; i < 50; i++ {
		w := 200 - d.Known(i, 0)
		h := 300 - d.Known(i, 1)
		if w != float64(30+3*i) || h != float64(40+5*i) {
			t.Fatalf("rect %d = %vx%v", i, w, h)
		}
		area := 60000 - d.Latent(i, 0)
		if area != w*h {
			t.Fatalf("rect %d area = %v, want %v", i, area, w*h)
		}
	}
	// Both dimensions grow monotonically, so the skyline is the largest
	// rectangle only, over AK and over A alike.
	want := []string{"rect177x285"}
	if got := knownSkyline(d); !equalStrings(got, want) {
		t.Errorf("AK skyline = %v, want %v", got, want)
	}
	if got := fullSkyline(d); !equalStrings(got, want) {
		t.Errorf("full skyline = %v, want %v", got, want)
	}
}

// TestMoviesSkyline checks the Q2 curation: the ground-truth crowdsourced
// skyline is exactly the five movies the paper reports, and the AK skyline
// is {Avatar, The Avengers}.
func TestMoviesSkyline(t *testing.T) {
	d := Movies()
	if d.N() != 50 {
		t.Fatalf("n = %d, want 50", d.N())
	}
	wantAK := []string{"Avatar", "The Avengers"}
	if got := knownSkyline(d); !equalStrings(got, wantAK) {
		t.Errorf("AK skyline = %v, want %v", got, wantAK)
	}
	want := []string{
		"Avatar",
		"Inception",
		"The Avengers",
		"The Dark Knight Rises",
		"The Lord of the Rings: The Fellowship of the Ring",
	}
	if got := fullSkyline(d); !equalStrings(got, want) {
		t.Errorf("full skyline = %v, want %v (Section 6.2, Q2)", got, want)
	}
}

// TestMLBSkyline checks the Q3 curation: the ground-truth crowdsourced
// skyline is exactly the four Cy Young candidates the paper reports.
func TestMLBSkyline(t *testing.T) {
	d := MLBPitchers()
	if d.N() != 40 || d.KnownDims() != 3 {
		t.Fatalf("shape = %v", d)
	}
	want := []string{"Bartolo Colon", "Clayton Kershaw", "Max Scherzer", "Yu Darvish"}
	if got := knownSkyline(d); !equalStrings(got, want) {
		t.Errorf("AK skyline = %v, want %v", got, want)
	}
	if got := fullSkyline(d); !equalStrings(got, want) {
		t.Errorf("full skyline = %v, want %v (Section 6.2, Q3)", got, want)
	}
}

// TestRealDatasetsDistinct: the curated datasets satisfy the distinct-AK
// assumption except where the paper's pre-processing handles ties.
func TestRealDatasetsDistinct(t *testing.T) {
	for _, d := range []*Dataset{Rectangles(), MLBPitchers(), Movies()} {
		if !d.DistinctKnown() {
			t.Errorf("%v has duplicate AK rows", d)
		}
	}
}

package prefgraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkAddPreferChain grows a worst-case chain (every insertion
// extends the longest path, maximizing closure propagation).
func BenchmarkAddPreferChain(b *testing.B) {
	const n = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := New(n)
		for v := 1; v < n; v++ {
			g.AddPrefer(v-1, v)
		}
	}
}

// BenchmarkAddPreferPropagation scales the chain shape across sizes so
// the closure-propagation trajectory (quadratic in the chain length) is
// visible in BENCH_*.json diffs.
func BenchmarkAddPreferPropagation(b *testing.B) {
	for _, n := range []int{500, 1000, 2000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := New(n)
				for v := 1; v < n; v++ {
					g.AddPrefer(v-1, v)
				}
			}
		})
	}
}

// BenchmarkAddEqualMerge folds n tuples into one equivalence class,
// exercising the union-find merge and reach-set union path.
func BenchmarkAddEqualMerge(b *testing.B) {
	const n = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := New(n)
		for v := 1; v < n; v++ {
			g.AddEqual(0, v)
		}
	}
}

// BenchmarkAddPreferRandom inserts random edges, the typical CrowdSky
// answer stream shape.
func BenchmarkAddPreferRandom(b *testing.B) {
	const n = 2000
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		g := New(n)
		for k := 0; k < 3*n; k++ {
			g.AddPrefer(rng.Intn(n), rng.Intn(n))
		}
	}
}

// BenchmarkKnownQuery measures the reachability lookup the pruning methods
// hammer.
func BenchmarkKnownQuery(b *testing.B) {
	const n = 2000
	g := New(n)
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 3*n; k++ {
		g.AddPrefer(rng.Intn(n), rng.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Known(i%n, (i*31+7)%n)
	}
}

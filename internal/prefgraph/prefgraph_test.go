package prefgraph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicRelations(t *testing.T) {
	g := New(4)
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Known(0, 1) != Unknown {
		t.Errorf("fresh graph knows something")
	}
	if !g.AddPrefer(0, 1) {
		t.Fatalf("AddPrefer rejected")
	}
	if g.Known(0, 1) != Prefer || g.Known(1, 0) != Defer {
		t.Errorf("direct edge not recorded")
	}
	if !g.Prefers(0, 1) || g.Prefers(1, 0) {
		t.Errorf("Prefers wrong")
	}
	if !g.WeaklyPrefers(0, 1) || g.WeaklyPrefers(1, 0) {
		t.Errorf("WeaklyPrefers wrong")
	}
	if !g.Comparable(0, 1) || g.Comparable(0, 2) {
		t.Errorf("Comparable wrong")
	}
}

func TestTransitivity(t *testing.T) {
	g := New(5)
	g.AddPrefer(0, 1)
	g.AddPrefer(1, 2)
	g.AddPrefer(2, 3)
	if !g.Prefers(0, 3) {
		t.Errorf("transitive chain not inferred")
	}
	if g.Prefers(3, 0) || g.Comparable(0, 4) {
		t.Errorf("phantom relations")
	}
	// Adding an already-inferable edge is a no-op success.
	edges := g.Edges()
	if !g.AddPrefer(0, 2) {
		t.Errorf("re-adding inferable edge rejected")
	}
	if g.Edges() != edges {
		t.Errorf("inferable edge counted as new")
	}
}

func TestContradictions(t *testing.T) {
	g := New(3)
	g.AddPrefer(0, 1)
	g.AddPrefer(1, 2)
	if g.AddPrefer(2, 0) {
		t.Errorf("cycle-closing edge accepted")
	}
	if g.Contradictions() != 1 {
		t.Errorf("contradictions = %d, want 1", g.Contradictions())
	}
	// Graph unchanged: 0 still preferred over 2.
	if !g.Prefers(0, 2) {
		t.Errorf("contradiction mutated the graph")
	}
	if g.AddEqual(0, 2) {
		t.Errorf("equality over a strict preference accepted")
	}
	if g.Contradictions() != 2 {
		t.Errorf("contradictions = %d, want 2", g.Contradictions())
	}
}

func TestEqualityClasses(t *testing.T) {
	g := New(6)
	if !g.AddEqual(0, 1) {
		t.Fatalf("AddEqual rejected")
	}
	if g.Known(0, 1) != Equal || g.Known(1, 0) != Equal {
		t.Errorf("equality not recorded")
	}
	if !g.WeaklyPrefers(0, 1) || g.Prefers(0, 1) {
		t.Errorf("equality semantics wrong")
	}
	// Preferences transfer across the class.
	g.AddPrefer(1, 2)
	if !g.Prefers(0, 2) {
		t.Errorf("class member preference not shared")
	}
	g.AddPrefer(3, 0)
	if !g.Prefers(3, 1) {
		t.Errorf("incoming preference not shared")
	}
	// Merging classes with existing relations keeps transitivity.
	g.AddEqual(4, 5)
	g.AddPrefer(2, 4)
	if !g.Prefers(0, 5) || !g.Prefers(3, 5) {
		t.Errorf("closure across merged classes broken")
	}
	if g.Unions() != 2 {
		t.Errorf("unions = %d, want 2", g.Unions())
	}
	// Self-equality is trivially true.
	if !g.AddEqual(2, 2) {
		t.Errorf("self equality rejected")
	}
}

func TestEqualityMergeClosesOverBothSides(t *testing.T) {
	g := New(6)
	g.AddPrefer(0, 1) // 0 > 1
	g.AddPrefer(2, 3) // 2 > 3
	g.AddEqual(1, 2)  // merge middle
	if !g.Prefers(0, 3) {
		t.Errorf("0 > 1 = 2 > 3 should imply 0 > 3")
	}
	if !g.Prefers(0, 2) || !g.Prefers(1, 3) {
		t.Errorf("class-adjacent preferences missing")
	}
}

// TestAgainstBruteForce compares the incremental closure against a
// Floyd-Warshall-style reference on random edge sequences.
func TestAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 12
		g := New(n)
		// Reference: rel[i][j] ∈ {0 unknown, 1 prefer}; equality modeled by
		// a union-find of its own.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		edges := make(map[[2]int]bool)
		closure := func() [][]bool {
			reach := make([][]bool, n)
			for i := range reach {
				reach[i] = make([]bool, n)
			}
			for e := range edges {
				reach[find(e[0])][find(e[1])] = true
			}
			for k := 0; k < n; k++ {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if reach[i][find(k)] && reach[find(k)][j] {
							reach[i][j] = true
						}
					}
				}
			}
			return reach
		}
		for step := 0; step < 60; step++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			reach := closure()
			if rng.Intn(4) == 0 {
				// Try an equality.
				ok := g.AddEqual(a, b)
				wantOK := !reach[find(a)][find(b)] && !reach[find(b)][find(a)]
				if find(a) == find(b) {
					wantOK = true
				}
				if ok != wantOK {
					return false
				}
				if wantOK && find(a) != find(b) {
					// Union in the reference; redirect edges to the root.
					ra, rb := find(a), find(b)
					parent[rb] = ra
					var newEdges = make(map[[2]int]bool)
					for e := range edges {
						newEdges[[2]int{find(e[0]), find(e[1])}] = true
					}
					edges = newEdges
				}
			} else {
				ok := g.AddPrefer(a, b)
				wantOK := find(a) != find(b) && !reach[find(b)][find(a)]
				if ok != wantOK {
					return false
				}
				if wantOK {
					edges[[2]int{find(a), find(b)}] = true
				}
			}
			// Spot-check a few random queries against the reference.
			reach = closure()
			for q := 0; q < 8; q++ {
				x, y := rng.Intn(n), rng.Intn(n)
				var want Relation
				switch {
				case find(x) == find(y):
					want = Equal
				case reach[find(x)][find(y)]:
					want = Prefer
				case reach[find(y)][find(x)]:
					want = Defer
				default:
					want = Unknown
				}
				if g.Known(x, y) != want {
					t.Logf("seed %d step %d: Known(%d,%d) = %v, want %v", seed, step, x, y, g.Known(x, y), want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPreferredSet(t *testing.T) {
	g := New(5)
	g.AddPrefer(0, 1)
	g.AddPrefer(1, 2)
	g.AddPrefer(3, 4)
	var got []int
	g.PreferredSet(0).ForEach(func(i int) { got = append(got, i) })
	sort.Ints(got)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("PreferredSet(0) = %v, want [1 2]", got)
	}
}

func TestRelationString(t *testing.T) {
	if Unknown.String() != "unknown" || Prefer.String() != "prefer" ||
		Defer.String() != "defer" || Equal.String() != "equal" {
		t.Errorf("relation names wrong")
	}
	if Relation(9).String() != "relation?" {
		t.Errorf("out-of-range relation name")
	}
}

// TestReset proves a Reset graph is indistinguishable from a fresh one:
// same empty state, and the same answers after replaying a different
// insertion sequence into both.
func TestReset(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(9))
	reused := New(n)
	for step := 0; step < 200; step++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if rng.Intn(4) == 0 {
			reused.AddEqual(a, b)
		} else {
			reused.AddPrefer(a, b)
		}
	}
	reused.Reset()
	if reused.Edges() != 0 || reused.Unions() != 0 || reused.Contradictions() != 0 {
		t.Fatalf("Reset left counters: %d edges, %d unions, %d contradictions",
			reused.Edges(), reused.Unions(), reused.Contradictions())
	}
	fresh := New(n)
	for step := 0; step < 200; step++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		var okR, okF bool
		if rng.Intn(4) == 0 {
			okR, okF = reused.AddEqual(a, b), fresh.AddEqual(a, b)
		} else {
			okR, okF = reused.AddPrefer(a, b), fresh.AddPrefer(a, b)
		}
		if okR != okF {
			t.Fatalf("step %d: reset graph accepted=%v, fresh graph accepted=%v", step, okR, okF)
		}
	}
	for s := 0; s < n; s++ {
		for u := 0; u < n; u++ {
			if reused.Known(s, u) != fresh.Known(s, u) {
				t.Fatalf("Known(%d,%d) differs between reset and fresh graph", s, u)
			}
		}
	}
	if reused.Edges() != fresh.Edges() || reused.Unions() != fresh.Unions() ||
		reused.Contradictions() != fresh.Contradictions() {
		t.Fatalf("counters differ between reset and fresh graph")
	}
}

// Package prefgraph implements the preference tree T of Section 3.3: an
// incrementally maintained partial order over tuples in the crowd
// attributes, learned one crowd answer at a time.
//
// Each tuple is a node. A strict preference s ≺ t inserts an edge s → t;
// reachability (maintained as a bit-set transitive closure in both
// directions) answers "is s preferred over t?" including everything
// inferable by transitivity — the machinery behind pruning P2 (Corollary 2)
// and P3 (Section 3.4). Ternary "equally preferred" answers merge nodes
// into equivalence classes via union–find, so a preference recorded for
// either member holds for both.
//
// Crowds make mistakes (Section 5), so an insertion may contradict what is
// already known (s ≺ t arriving when t ≺ s is recorded or inferable). The
// graph is first-write-wins: the contradicting answer is dropped and
// counted, keeping T acyclic, which mirrors the paper's discussion of
// false-preference propagation.
package prefgraph

import (
	"math/bits"

	"crowdsky/internal/bitset"
)

// Relation is the known relationship between an ordered pair of nodes.
type Relation int8

const (
	// Unknown means no preference between the pair is recorded or
	// inferable yet; the tuples are indifferent (s ⊥ t).
	Unknown Relation = iota
	// Prefer means the first node is strictly preferred over the second.
	Prefer
	// Defer means the second node is strictly preferred over the first.
	Defer
	// Equal means the two nodes are equally preferred.
	Equal
)

// String returns a short human-readable form.
func (r Relation) String() string {
	switch r {
	case Unknown:
		return "unknown"
	case Prefer:
		return "prefer"
	case Defer:
		return "defer"
	case Equal:
		return "equal"
	default:
		return "relation?"
	}
}

// Graph is the preference tree T over n nodes. The zero value is unusable;
// call New.
type Graph struct {
	n      int
	parent []int // union–find parent for equality classes
	rank   []int

	// reach[r] for a class representative r: bit set of representatives
	// strictly less preferred than r (descendants). coreach[r]: strictly
	// more preferred (ancestors). Bits are kept representative-canonical:
	// after a union the surviving representative's bit is added wherever
	// the absorbed one's appears; stale bits of absorbed representatives
	// are never queried because lookups always canonicalize first.
	reach   []bitset.Set
	coreach []bitset.Set

	edges          int // accepted strict-preference insertions
	unions         int // accepted equality insertions
	contradictions int // dropped answers that conflicted with T
}

// New creates an empty preference graph over nodes 0..n-1. The 2n
// closure rows are carved from a single arena (and parent/rank share one
// backing array), so a graph costs O(1) allocations however many nodes
// it has, and rows sit adjacent in the order the propagation loops walk
// them.
func New(n int) *Graph {
	pr := make([]int, 2*n)
	rows := bitset.Carve(2*n, n)
	g := &Graph{
		n:       n,
		parent:  pr[:n:n],
		rank:    pr[n:],
		reach:   rows[:n],
		coreach: rows[n:],
	}
	for i := 0; i < n; i++ {
		g.parent[i] = i
	}
	return g
}

// Reset returns the graph to its freshly-built empty state without
// releasing the arena: every closure row is zeroed and every node is its
// own class again. Sessions that serve rounds against a fixed dataset
// reuse one graph per crowd attribute this way instead of reallocating
// 2n bit rows per run.
func (g *Graph) Reset() {
	for i := 0; i < g.n; i++ {
		g.parent[i] = i
		g.rank[i] = 0
		g.reach[i].Clear()
		g.coreach[i].Clear()
	}
	g.edges, g.unions, g.contradictions = 0, 0, 0
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

func (g *Graph) find(x int) int {
	for g.parent[x] != x {
		g.parent[x] = g.parent[g.parent[x]] // path halving
		x = g.parent[x]
	}
	return x
}

// Known returns the recorded-or-inferable relation between s and t.
//
//skylint:hotpath
func (g *Graph) Known(s, t int) Relation {
	rs, rt := g.find(s), g.find(t)
	switch {
	case rs == rt:
		return Equal
	case g.reach[rs].Has(rt):
		return Prefer
	case g.reach[rt].Has(rs):
		return Defer
	default:
		return Unknown
	}
}

// Prefers reports whether s is strictly preferred over t (directly or by
// transitivity).
//
//skylint:hotpath
func (g *Graph) Prefers(s, t int) bool {
	rs, rt := g.find(s), g.find(t)
	return rs != rt && g.reach[rs].Has(rt)
}

// WeaklyPrefers reports s ⪯ t: s strictly preferred over t, or equal.
//
//skylint:hotpath
func (g *Graph) WeaklyPrefers(s, t int) bool {
	rs, rt := g.find(s), g.find(t)
	return rs == rt || g.reach[rs].Has(rt)
}

// Comparable reports whether any relation between s and t is known.
func (g *Graph) Comparable(s, t int) bool { return g.Known(s, t) != Unknown }

// AddPrefer records the crowd answer "s is preferred over t". It returns
// false when the answer contradicts the current graph (t already preferred
// over s); the contradiction is counted and the graph is unchanged. Adding
// an already-known preference is a no-op returning true.
//
// The propagation loops iterate the bit words directly rather than going
// through ForEach: a closure over (g, v, down) would be re-created — and
// heap-allocated — on every insertion, on the per-answer hot path.
//
//skylint:hotpath
func (g *Graph) AddPrefer(s, t int) bool {
	u, v := g.find(s), g.find(t)
	if u == v || g.reach[v].Has(u) {
		g.contradictions++
		return false
	}
	if g.reach[u].Has(v) {
		return true // already known
	}
	g.edges++
	// Descendants of v (plus v) become reachable from u and every ancestor
	// of u; ancestors of u (plus u) become co-reachable from v and every
	// descendant of v.
	down := g.reach[v]
	up := g.coreach[u]

	g.extendDown(u, v, down)
	for wi, w := range up {
		for w != 0 {
			a := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			g.extendDown(a, v, down)
		}
	}

	g.extendUp(v, u, up)
	for wi, w := range down {
		for w != 0 {
			d := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			g.extendUp(d, u, up)
		}
	}
	return true
}

// extendDown makes v and its descendants (down) reachable from a: one
// fused word pass over the row instead of Add-then-Or touching it twice.
//
//skylint:hotpath
func (g *Graph) extendDown(a, v int, down bitset.Set) {
	r := g.reach[a]
	if !r.Has(v) {
		r.OrPlus(down, v)
	}
}

// extendUp makes u and its ancestors (up) co-reachable from d, fused
// like extendDown.
//
//skylint:hotpath
func (g *Graph) extendUp(d, u int, up bitset.Set) {
	c := g.coreach[d]
	if !c.Has(u) {
		c.OrPlus(up, u)
	}
}

// AddEqual records the crowd answer "s and t are equally preferred",
// merging their equivalence classes. It returns false (counting a
// contradiction, graph unchanged) when a strict preference between the two
// is already known.
//
//skylint:hotpath
func (g *Graph) AddEqual(s, t int) bool {
	u, v := g.find(s), g.find(t)
	if u == v {
		return true
	}
	if g.reach[u].Has(v) || g.reach[v].Has(u) {
		g.contradictions++
		return false
	}
	g.unions++
	// Union by rank; r survives, l is absorbed.
	r, l := u, v
	if g.rank[r] < g.rank[l] {
		r, l = l, r
	}
	if g.rank[r] == g.rank[l] {
		g.rank[r]++
	}
	g.parent[l] = r

	// The merged class inherits both reach sets in both directions.
	g.reach[r].Or(g.reach[l])
	g.coreach[r].Or(g.coreach[l])

	// Canonicalize: wherever the absorbed representative appears as a bit,
	// the surviving one must appear too, and the neighbors must see the
	// merged closure. Ancestors of the class gain r's descendants;
	// descendants gain r's ancestors. Unconditionally — a neighbor that
	// already saw r still needs the bits just inherited from l — and
	// word-wise for the same reason as AddPrefer: no per-merge closure
	// allocations.
	for wi, w := range g.coreach[r] {
		for w != 0 {
			a := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			g.reach[a].OrPlus(g.reach[r], r)
		}
	}
	for wi, w := range g.reach[r] {
		for w != 0 {
			d := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			g.coreach[d].OrPlus(g.coreach[r], r)
		}
	}
	return true
}

// Edges returns the number of accepted strict-preference insertions.
func (g *Graph) Edges() int { return g.edges }

// Unions returns the number of accepted equality insertions.
func (g *Graph) Unions() int { return g.unions }

// Contradictions returns the number of dropped conflicting answers.
func (g *Graph) Contradictions() int { return g.contradictions }

// PreferredSet returns the bit set of representatives strictly less
// preferred than s. The result aliases internal storage and must not be
// modified; bits are representative-canonical.
func (g *Graph) PreferredSet(s int) bitset.Set { return g.reach[g.find(s)] }

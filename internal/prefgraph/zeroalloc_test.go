package prefgraph

import "testing"

// TestZeroAlloc is the CI gate for the per-answer hot path: recording
// preferences — fresh, re-applied and equality merges — and querying the
// closure must not allocate. Every bit set is sized at New, and the
// propagation loops iterate words directly instead of closing over state
// (see AddPrefer), so a regression here means a closure or append crept
// back into an insertion path.
func TestZeroAlloc(t *testing.T) {
	const n = 512
	g := New(n)
	// A long chain maximizes closure propagation per insertion; the last
	// two nodes stay free for the equality merge below.
	for v := 1; v < n-2; v++ {
		if !g.AddPrefer(v-1, v) {
			t.Fatalf("chain edge %d->%d rejected", v-1, v)
		}
	}
	propagate := func() {
		g.AddPrefer(0, n/2)  // re-apply of an already-inferable edge
		g.AddEqual(n-2, n-1) // first run merges, later runs are no-ops
		g.AddPrefer(n/4, n-2)
		_ = g.Known(3, n/3)
		_ = g.Prefers(n/3, 3)
		_ = g.WeaklyPrefers(0, n-3)
	}
	if avg := testing.AllocsPerRun(200, propagate); avg != 0 {
		t.Fatalf("propagate allocated %.2f times per run; want 0", avg)
	}
}

package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Runner regenerates one experiment and writes its text rendering to w.
type Runner func(cfg Config, w io.Writer) error

// Registry maps experiment identifiers (figure/table numbers as the paper
// names them) to runners. cmd/experiments exposes it via -fig.
var Registry = map[string]Runner{
	"table1": func(cfg Config, w io.Writer) error { return RenderTable1(w) },
	"table2": func(cfg Config, w io.Writer) error { return RenderTable2(w) },
	"table3": func(cfg Config, w io.Writer) error { return RenderTable3(w) },

	"6a": figRunner(func(cfg Config) (*Figure, error) { return Fig6(cfg, "a") }),
	"6b": figRunner(func(cfg Config) (*Figure, error) { return Fig6(cfg, "b") }),
	"6c": figRunner(func(cfg Config) (*Figure, error) { return Fig6(cfg, "c") }),
	"7a": figRunner(func(cfg Config) (*Figure, error) { return Fig7(cfg, "a") }),
	"7b": figRunner(func(cfg Config) (*Figure, error) { return Fig7(cfg, "b") }),
	"7c": figRunner(func(cfg Config) (*Figure, error) { return Fig7(cfg, "c") }),
	"8a": figRunner(func(cfg Config) (*Figure, error) { return Fig8(cfg, "a") }),
	"8b": figRunner(func(cfg Config) (*Figure, error) { return Fig8(cfg, "b") }),
	"9a": figRunner(func(cfg Config) (*Figure, error) { return Fig9(cfg, "a") }),
	"9b": figRunner(func(cfg Config) (*Figure, error) { return Fig9(cfg, "b") }),

	"10a": figRunner(func(cfg Config) (*Figure, error) { return Fig10(cfg, "a") }),
	"10b": figRunner(func(cfg Config) (*Figure, error) { return Fig10(cfg, "b") }),
	"11a": figRunner(func(cfg Config) (*Figure, error) { return Fig11(cfg, "a") }),
	"11b": figRunner(func(cfg Config) (*Figure, error) { return Fig11(cfg, "b") }),

	"12a": figRunner(func(cfg Config) (*Figure, error) { return Fig12(cfg, "a") }),
	"12b": figRunner(func(cfg Config) (*Figure, error) { return Fig12(cfg, "b") }),

	"ext-roundrobin": figRunner(ExtRoundRobin),
	"ext-budget":     figRunner(ExtBudget),
	"ext-sorters":    figRunner(ExtSorters),
	"ext-screening":  figRunner(ExtScreening),

	"q-accuracy": func(cfg Config, w io.Writer) error {
		results, err := RealAccuracy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Section 6.2 accuracy on real-life queries (CrowdSky, ω=5):")
		for _, r := range results {
			fmt.Fprintf(w, "  %s: precision %.3f, recall %.3f\n", r.Query, r.Precision, r.Recall)
			fmt.Fprintf(w, "      skyline: %s\n", strings.Join(r.Skyline, "; "))
		}
		return nil
	},
}

func figRunner(f func(Config) (*Figure, error)) Runner {
	return func(cfg Config, w io.Writer) error {
		fig, err := f(cfg)
		if err != nil {
			return err
		}
		return fig.Render(w)
	}
}

// FigureBuilders maps the ids of figure-producing experiments (a subset of
// Registry — the toy tables and q-accuracy render text only) to their
// builders, for callers that want the structured Figure (CSV export,
// plotting).
var FigureBuilders = map[string]func(Config) (*Figure, error){
	"6a": func(cfg Config) (*Figure, error) { return Fig6(cfg, "a") },
	"6b": func(cfg Config) (*Figure, error) { return Fig6(cfg, "b") },
	"6c": func(cfg Config) (*Figure, error) { return Fig6(cfg, "c") },
	"7a": func(cfg Config) (*Figure, error) { return Fig7(cfg, "a") },
	"7b": func(cfg Config) (*Figure, error) { return Fig7(cfg, "b") },
	"7c": func(cfg Config) (*Figure, error) { return Fig7(cfg, "c") },
	"8a": func(cfg Config) (*Figure, error) { return Fig8(cfg, "a") },
	"8b": func(cfg Config) (*Figure, error) { return Fig8(cfg, "b") },
	"9a": func(cfg Config) (*Figure, error) { return Fig9(cfg, "a") },
	"9b": func(cfg Config) (*Figure, error) { return Fig9(cfg, "b") },

	"10a": func(cfg Config) (*Figure, error) { return Fig10(cfg, "a") },
	"10b": func(cfg Config) (*Figure, error) { return Fig10(cfg, "b") },
	"11a": func(cfg Config) (*Figure, error) { return Fig11(cfg, "a") },
	"11b": func(cfg Config) (*Figure, error) { return Fig11(cfg, "b") },
	"12a": func(cfg Config) (*Figure, error) { return Fig12(cfg, "a") },
	"12b": func(cfg Config) (*Figure, error) { return Fig12(cfg, "b") },

	"ext-roundrobin": ExtRoundRobin,
	"ext-budget":     ExtBudget,
	"ext-sorters":    ExtSorters,
	"ext-screening":  ExtScreening,
}

// IDs returns the registry keys in a stable, human-sensible order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		ra, rb := rankID(ids[a]), rankID(ids[b])
		if ra != rb {
			return ra < rb
		}
		return ids[a] < ids[b]
	})
	return ids
}

func rankID(id string) int {
	switch {
	case strings.HasPrefix(id, "table"):
		return 0
	case len(id) >= 2 && id[0] >= '6' && id[0] <= '9' && id[1] >= 'a':
		return 1
	case strings.HasPrefix(id, "1"):
		return 2
	default:
		return 3
	}
}
